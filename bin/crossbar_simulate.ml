(* Discrete-event simulation of the crossbar, compared in-line against the
   analytical solution.

     crossbar_simulate --size 8 \
       --class name=p,kind=poisson,a=1,alpha=0.5,mu=1 \
       --horizon 5e4 --service deterministic --seed 7 *)

open Cmdliner
module Sim = Crossbar_sim.Simulator
module Service = Crossbar_sim.Service

let run size classes horizon warmup service seed batches =
  if classes = [] then `Error (false, "at least one --class is required")
  else
    match
      (try Ok (Crossbar.Model.square ~size ~classes)
       with Invalid_argument m -> Error m)
    with
    | Error m -> `Error (false, m)
    | Ok model -> (
        match Service.of_string service with
        | Error m -> `Error (false, m)
        | Ok shape ->
            let analytic = Crossbar.Solver.solve model in
            Format.printf "analytic:@.%a@.@." Crossbar.Measures.pp analytic;
            let config =
              {
                (Sim.default_config model) with
                horizon;
                warmup;
                seed;
                batches;
                service = (fun _ -> shape);
              }
            in
            let result = Sim.run config in
            Format.printf "simulated (%s service, seed %d):@.%a@."
              (Service.to_string shape) seed Sim.pp_result result;
            `Ok ())

let size_arg =
  Arg.(value & opt int 8 & info [ "size" ] ~doc:"Square switch size N.")

let classes_arg =
  Arg.(
    value
    & opt_all Class_spec.converter []
    & info [ "class"; "c" ] ~doc:"Traffic class (see crossbar_calc).")

let horizon_arg =
  Arg.(value & opt float 5e4 & info [ "horizon" ] ~doc:"Measured simulated time.")

let warmup_arg =
  Arg.(value & opt float 1e3 & info [ "warmup" ] ~doc:"Discarded warmup time.")

let service_arg =
  Arg.(
    value & opt string "exponential"
    & info [ "service" ]
        ~doc:
          "Holding-time shape: exponential | deterministic | erlang-<k> | \
           hyperexponential-<scv>.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.")

let batches_arg =
  Arg.(value & opt int 20 & info [ "batches" ] ~doc:"Batch-means batches.")

let cmd =
  let doc = "simulate the asynchronous crossbar and compare with analysis" in
  Cmd.v
    (Cmd.info "crossbar_simulate" ~doc)
    Term.(
      ret
        (const run $ size_arg $ classes_arg $ horizon_arg $ warmup_arg
       $ service_arg $ seed_arg $ batches_arg))

let () = exit (Cmd.eval cmd)
