(* Discrete-event simulation of the crossbar, compared in-line against the
   analytical solution.

     crossbar_simulate --size 8 \
       --class name=p,kind=poisson,a=1,alpha=0.5,mu=1 \
       --horizon 5e4 --service deterministic --seed 7
     crossbar_simulate --size 8 --class ... --replications 16 -j 8 *)

open Cmdliner
module Sim = Crossbar_sim.Simulator
module Service = Crossbar_sim.Service

let pp_replicated model (rep : Sim.replicated) =
  let classes = Crossbar.Model.classes model in
  Format.printf "replications: %d@." rep.Sim.replications;
  Array.iteri
    (fun r (c : Crossbar.Traffic.t) ->
      let e (est : Sim.estimate) =
        Printf.sprintf "%.6g Â± %.2g" est.Sim.point est.Sim.halfwidth
      in
      Format.printf
        "%-12s time-congestion=%s call-congestion=%s E=%s@."
        c.Crossbar.Traffic.name
        (e rep.Sim.rep_time_congestion.(r))
        (e rep.Sim.rep_call_congestion.(r))
        (e rep.Sim.rep_concurrency.(r)))
    classes

let run size classes horizon warmup service seed batches replications domains =
  if classes = [] then `Error (false, "at least one --class is required")
  else
    match
      (try Ok (Crossbar.Model.square ~size ~classes)
       with Invalid_argument m -> Error m)
    with
    | Error m -> `Error (false, m)
    | Ok model -> (
        match Service.of_string service with
        | Error m -> `Error (false, m)
        | Ok shape ->
            let analytic = Crossbar.Solver.solve model in
            Format.printf "analytic:@.%a@.@." Crossbar.Measures.pp analytic;
            let config =
              {
                (Sim.default_config model) with
                horizon;
                warmup;
                seed;
                batches;
                service = (fun _ -> shape);
              }
            in
            (match replications with
            | None ->
                let result = Sim.run config in
                Format.printf "simulated (%s service, seed %d):@.%a@."
                  (Service.to_string shape) seed Sim.pp_result result
            | Some n ->
                let rep = Sim.run_replications ?domains ~replications:n config in
                Format.printf
                  "simulated (%s service, seeds %d..%d, independent \
                   replications):@."
                  (Service.to_string shape) seed
                  (seed + n - 1);
                pp_replicated model rep);
            `Ok ())

let size_arg =
  Arg.(value & opt int 8 & info [ "size" ] ~doc:"Square switch size N.")

let classes_arg =
  Arg.(
    value
    & opt_all Class_spec.converter []
    & info [ "class"; "c" ] ~doc:"Traffic class (see crossbar_calc).")

let horizon_arg =
  Arg.(value & opt float 5e4 & info [ "horizon" ] ~doc:"Measured simulated time.")

let warmup_arg =
  Arg.(value & opt float 1e3 & info [ "warmup" ] ~doc:"Discarded warmup time.")

let service_arg =
  Arg.(
    value & opt string "exponential"
    & info [ "service" ]
        ~doc:
          "Holding-time shape: exponential | deterministic | erlang-<k> | \
           hyperexponential-<scv>.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.")

let batches_arg =
  Arg.(value & opt int 20 & info [ "batches" ] ~doc:"Batch-means batches.")

let replications_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "replications" ] ~docv:"N"
        ~doc:
          "Run N independent replications (seeds seed..seed+N-1) and \
           report Student-t intervals over them instead of one \
           batch-means run. Requires N >= 2.")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "domains" ] ~docv:"D"
        ~doc:
          "Domains for --replications (default: the engine's recommended \
           pool width). Results are bit-identical for every value.")

let cmd =
  let doc = "simulate the asynchronous crossbar and compare with analysis" in
  Cmd.v
    (Cmd.info "crossbar_simulate" ~doc)
    Term.(
      ret
        (const run $ size_arg $ classes_arg $ horizon_arg $ warmup_arg
       $ service_arg $ seed_arg $ batches_arg $ replications_arg
       $ domains_arg))

let () = exit (Cmd.eval cmd)
