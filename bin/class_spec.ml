(* Command-line traffic-class specifications, shared by the CLIs.

   Syntax (comma-separated key=value pairs):
     name=voice,kind=poisson,a=1,alpha=0.3,mu=1.0
     name=video,kind=pascal,a=2,alpha=0.2,beta=0.1,mu=0.5
     name=data,kind=bernoulli,a=1,sources=10,rate=0.05,mu=2.0 *)

let parse_fields spec =
  let fields = String.split_on_char ',' spec in
  List.fold_left
    (fun acc field ->
      Result.bind acc (fun table ->
          match String.index_opt field '=' with
          | None -> Error (Printf.sprintf "field %S is not key=value" field)
          | Some i ->
              let key = String.sub field 0 i
              and value =
                String.sub field (i + 1) (String.length field - i - 1)
              in
              Ok ((String.trim key, String.trim value) :: table)))
    (Ok []) fields

let lookup table key = List.assoc_opt key table

let float_field table key =
  match lookup table key with
  | None -> Error (Printf.sprintf "missing field %S" key)
  | Some v -> (
      match float_of_string_opt v with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "field %S: not a number (%S)" key v))

let int_field table key ~default =
  match lookup table key with
  | None -> Ok default
  | Some v -> (
      match int_of_string_opt v with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "field %S: not an integer (%S)" key v))

let parse spec =
  let ( let* ) = Result.bind in
  let* table = parse_fields spec in
  let name = Option.value ~default:"traffic" (lookup table "name") in
  let kind = Option.value ~default:"poisson" (lookup table "kind") in
  let* bandwidth = int_field table "a" ~default:1 in
  let* mu = float_field table "mu" in
  try
    match String.lowercase_ascii kind with
    | "poisson" ->
        let* rate =
          match float_field table "alpha" with
          | Ok _ as ok -> ok
          | Error _ -> float_field table "rate"
        in
        Ok (Crossbar.Traffic.poisson ~name ~bandwidth ~rate ~service_rate:mu ())
    | "pascal" ->
        let* alpha = float_field table "alpha" in
        let* beta = float_field table "beta" in
        Ok (Crossbar.Traffic.pascal ~name ~bandwidth ~alpha ~beta ~service_rate:mu ())
    | "bernoulli" ->
        let* sources = int_field table "sources" ~default:0 in
        let* rate = float_field table "rate" in
        Ok
          (Crossbar.Traffic.bernoulli ~name ~bandwidth ~sources
             ~per_source_rate:rate ~service_rate:mu ())
    | "bpp" ->
        let* alpha = float_field table "alpha" in
        let* beta = float_field table "beta" in
        Ok (Crossbar.Traffic.create ~name ~bandwidth ~alpha ~beta ~service_rate:mu ())
    | other -> Error (Printf.sprintf "unknown kind %S" other)
  with Invalid_argument message -> Error message

let converter =
  let parser s =
    match parse s with Ok t -> Ok t | Error e -> Error (`Msg e)
  in
  let printer ppf t = Crossbar.Traffic.pp ppf t in
  Cmdliner.Arg.conv (parser, printer)
