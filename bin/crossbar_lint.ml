(* crossbar-lint: static-analysis pass over the crossbar sources.

   Exit codes: 0 clean, 1 findings reported, 2 usage or I/O error. *)

module Lint = Crossbar_lint
module Typed = Crossbar_lint_typed
module Json = Crossbar_engine.Json

let usage =
  "usage: crossbar_lint [options] [PATH ...]\n\
   \n\
   Parses every .ml/.mli under the given paths (default: lib bin bench\n\
   examples) with compiler-libs and enforces the R1-R6 invariants\n\
   documented in docs/LINT.md.  With --typed, additionally reads the\n\
   .cmt artifacts dune produced and runs the typed rules R7-R13\n\
   (R11-R13 close the per-function effect summaries over the call\n\
   graph: hot-path allocations, escaping raises, float domains).\n\
   \n\
   options:\n\
   \  --typed         run the Typedtree stage (R7-R13) over .cmt artifacts\n\
   \  --cmt-root DIR  where to look for .cmt files (default:\n\
   \                  _build/default when it exists, else .)\n\
   \  --cache FILE    persist per-file typed results across runs\n\
   \  --config FILE   load configuration from FILE (default: lint.json\n\
   \                  next to the working directory when present)\n\
   \  --json -        write the findings report as JSON to stdout\n\
   \  --json FILE     write the findings report as JSON to FILE\n\
   \  --sarif -       write the findings as SARIF 2.1.0 to stdout\n\
   \  --sarif FILE    write the findings as SARIF 2.1.0 to FILE\n\
   \  --rules LIST    comma-separated rule subset to run (e.g. R1,R5)\n\
   \  --stats         print cache statistics for the typed stage\n\
   \  --dump-config   print the effective configuration as JSON and exit\n\
   \  --list-rules    print the rule table and exit\n\
   \  --help          show this message\n"

let default_paths = [ "lib"; "bin"; "bench"; "examples" ]
let default_config_file = "lint.json"

let die message =
  prerr_string message;
  prerr_newline ();
  exit 2

let list_rules () =
  List.iter
    (fun rule ->
      Printf.printf "%s  %s\n    %s\n" (Lint.Rule.to_string rule)
        (Lint.Rule.title rule) (Lint.Rule.rationale rule))
    Lint.Rule.all

let write_target target text =
  match target with
  | "-" ->
      print_string text;
      print_newline ()
  | file ->
      let oc = open_out file in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc text;
          output_char oc '\n')

let () =
  let json_target = ref None in
  let sarif_target = ref None in
  let rules = ref None in
  let typed = ref false in
  let cmt_root = ref None in
  let cache_file = ref None in
  let config_file = ref None in
  let stats = ref false in
  let dump_config = ref false in
  let paths = ref [] in
  let arguments = Array.to_list Sys.argv |> List.tl in
  let rec parse = function
    | [] -> ()
    | "--help" :: _ | "-h" :: _ ->
        print_string usage;
        exit 0
    | "--list-rules" :: _ ->
        list_rules ();
        exit 0
    | "--typed" :: rest ->
        typed := true;
        parse rest
    | "--stats" :: rest ->
        stats := true;
        parse rest
    | "--dump-config" :: rest ->
        dump_config := true;
        parse rest
    | "--cmt-root" :: dir :: rest ->
        cmt_root := Some dir;
        parse rest
    | [ "--cmt-root" ] -> die "crossbar_lint: --cmt-root needs a directory"
    | "--cache" :: file :: rest ->
        cache_file := Some file;
        parse rest
    | [ "--cache" ] -> die "crossbar_lint: --cache needs a file"
    | "--config" :: file :: rest ->
        config_file := Some file;
        parse rest
    | [ "--config" ] -> die "crossbar_lint: --config needs a file"
    | "--json" :: target :: rest ->
        json_target := Some target;
        parse rest
    | [ "--json" ] -> die "crossbar_lint: --json needs a target (- or FILE)"
    | "--sarif" :: target :: rest ->
        sarif_target := Some target;
        parse rest
    | [ "--sarif" ] -> die "crossbar_lint: --sarif needs a target (- or FILE)"
    | "--rules" :: spec :: rest ->
        (match Lint.Rule.parse_list spec with
        | Ok ids -> rules := Some ids
        | Error m -> die (Printf.sprintf "crossbar_lint: %s" m));
        parse rest
    | [ "--rules" ] -> die "crossbar_lint: --rules needs a rule list"
    | flag :: _ when String.length flag > 1 && flag.[0] = '-' && flag <> "-" ->
        die (Printf.sprintf "crossbar_lint: unknown option %s\n%s" flag usage)
    | path :: rest ->
        paths := path :: !paths;
        parse rest
  in
  parse arguments;
  (match !rules with
  | Some ids
    when (not !typed)
         && List.exists
              (fun id ->
                match id with
                | Lint.Rule.R11 | Lint.Rule.R12 | Lint.Rule.R13 -> true
                | _ -> false)
              ids ->
      die
        "crossbar_lint: R11-R13 are effect-stage rules; they need .cmt \
         artifacts, so pass --typed"
  | _ -> ());
  let paths =
    match List.rev !paths with [] -> default_paths | paths -> paths
  in
  List.iter
    (fun path ->
      if not (Sys.file_exists path) then
        die (Printf.sprintf "crossbar_lint: no such path %s" path))
    paths;
  let config =
    (* An explicit --config must parse; the conventional lint.json is
       optional but, when present, malformed is still an error — silently
       linting under defaults would mask the drift. *)
    let file =
      match !config_file with
      | Some file -> Some file
      | None ->
          if Sys.file_exists default_config_file then
            Some default_config_file
          else None
    in
    match file with
    | None -> Lint.Config.default
    | Some file -> (
        match Lint.Config.load_file file with
        | Ok config -> config
        | Error m -> die (Printf.sprintf "crossbar_lint: %s: %s" file m))
  in
  let config =
    match !rules with
    | None -> config
    | Some rules -> { config with Lint.Config.rules }
  in
  if !dump_config then begin
    print_string (Json.to_string (Lint.Config.to_json config));
    print_newline ();
    exit 0
  end;
  let findings = Lint.Driver.lint ~config paths in
  let findings, typed_stats =
    if not !typed then (findings, None)
    else begin
      let cmt_root =
        match !cmt_root with
        | Some dir -> dir
        | None ->
            if Sys.file_exists "_build/default" then "_build/default" else "."
      in
      let config_hash = Lint.Config.hash config in
      let store =
        match !cache_file with
        | None -> Typed.Store.create ~config_hash
        | Some file -> (
            match Typed.Store.load ~config_hash file with
            | Ok store -> store
            | Error m -> die (Printf.sprintf "crossbar_lint: %s" m))
      in
      let cmt_index = Typed.Cmt_index.scan ~root:cmt_root in
      let typed_findings, stats =
        Typed.Driver.run ~config ~store ~cmt_index ~cmt_root paths
      in
      (match !cache_file with
      | None -> ()
      | Some file -> (
          match Typed.Store.save store file with
          | Ok () -> ()
          | Error m -> die (Printf.sprintf "crossbar_lint: %s" m)));
      List.iter
        (fun (path, reason) ->
          Printf.eprintf "crossbar_lint: warning: %s: %s\n" path reason)
        stats.Typed.Driver.errors;
      (List.sort Lint.Finding.compare (findings @ typed_findings), Some stats)
    end
  in
  (match !json_target with
  | Some target ->
      write_target target
        (Json.to_string (Lint.Finding.report_to_json findings))
  | None -> ());
  (match !sarif_target with
  | Some target -> write_target target (Lint.Sarif.to_string findings)
  | None -> ());
  if !json_target = None && !sarif_target = None then
    Lint.Driver.pp_report Format.std_formatter findings;
  (match typed_stats with
  | Some s when !stats ->
      Printf.printf
        "typed stage: %d files, %d cache hits, %d analysed, %d without .cmt\n"
        s.Typed.Driver.files s.Typed.Driver.hits s.Typed.Driver.misses
        (List.length s.Typed.Driver.missing_cmt);
      Printf.printf
        "typed stage timings: extract %.1fms, capture %.1fms (%d \
         iterations), callgraph %.1fms, effects %.1fms (%d raise + %d \
         domain iterations)\n"
        (1000. *. s.Typed.Driver.extract_s)
        (1000. *. s.Typed.Driver.capture_s)
        s.Typed.Driver.capture_iterations
        (1000. *. s.Typed.Driver.graph_s)
        (1000. *. s.Typed.Driver.effects_s)
        s.Typed.Driver.raise_iterations s.Typed.Driver.domain_iterations
  | _ -> ());
  exit (if findings = [] then 0 else 1)
