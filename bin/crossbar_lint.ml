(* crossbar-lint: static-analysis pass over the crossbar sources.

   Exit codes: 0 clean, 1 findings reported, 2 usage or I/O error. *)

module Lint = Crossbar_lint
module Json = Crossbar_engine.Json

let usage =
  "usage: crossbar_lint [options] [PATH ...]\n\
   \n\
   Parses every .ml/.mli under the given paths (default: lib bin bench\n\
   examples) with compiler-libs and enforces the R1-R6 invariants\n\
   documented in docs/LINT.md.\n\
   \n\
   options:\n\
   \  --json -        write the findings report as JSON to stdout\n\
   \  --json FILE     write the findings report as JSON to FILE\n\
   \  --rules LIST    comma-separated rule subset to run (e.g. R1,R5)\n\
   \  --list-rules    print the rule table and exit\n\
   \  --help          show this message\n"

let default_paths = [ "lib"; "bin"; "bench"; "examples" ]

let die message =
  prerr_string message;
  prerr_newline ();
  exit 2

let list_rules () =
  List.iter
    (fun rule ->
      Printf.printf "%s  %s\n    %s\n" (Lint.Rule.to_string rule)
        (Lint.Rule.title rule) (Lint.Rule.rationale rule))
    Lint.Rule.all

let parse_rules text =
  let ids =
    String.split_on_char ',' text
    |> List.filter (fun s -> String.trim s <> "")
    |> List.map (fun s ->
           match Lint.Rule.of_string s with
           | Some rule -> rule
           | None -> die (Printf.sprintf "crossbar_lint: unknown rule %S" s))
  in
  if ids = [] then die "crossbar_lint: --rules needs at least one rule id";
  ids

let () =
  let json_target = ref None in
  let rules = ref None in
  let paths = ref [] in
  let arguments = Array.to_list Sys.argv |> List.tl in
  let rec parse = function
    | [] -> ()
    | "--help" :: _ | "-h" :: _ ->
        print_string usage;
        exit 0
    | "--list-rules" :: _ ->
        list_rules ();
        exit 0
    | "--json" :: target :: rest ->
        json_target := Some target;
        parse rest
    | [ "--json" ] -> die "crossbar_lint: --json needs a target (- or FILE)"
    | "--rules" :: spec :: rest ->
        rules := Some (parse_rules spec);
        parse rest
    | [ "--rules" ] -> die "crossbar_lint: --rules needs a rule list"
    | flag :: _ when String.length flag > 1 && flag.[0] = '-' && flag <> "-" ->
        die (Printf.sprintf "crossbar_lint: unknown option %s\n%s" flag usage)
    | path :: rest ->
        paths := path :: !paths;
        parse rest
  in
  parse arguments;
  let paths =
    match List.rev !paths with [] -> default_paths | paths -> paths
  in
  List.iter
    (fun path ->
      if not (Sys.file_exists path) then
        die (Printf.sprintf "crossbar_lint: no such path %s" path))
    paths;
  let config =
    match !rules with
    | None -> Lint.Config.default
    | Some rules -> { Lint.Config.default with Lint.Config.rules }
  in
  let findings = Lint.Driver.lint ~config paths in
  (match !json_target with
  | Some "-" ->
      print_string (Json.to_string (Lint.Finding.report_to_json findings));
      print_newline ()
  | Some file ->
      let oc = open_out file in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc
            (Json.to_string (Lint.Finding.report_to_json findings));
          output_char oc '\n')
  | None -> Lint.Driver.pp_report Format.std_formatter findings);
  exit (if findings = [] then 0 else 1)
