(* Hot-tree query daemon for the asynchronous multi-rate crossbar.

   Holds solved factor trees resident and answers line-delimited JSON
   queries (docs/SERVE.md) over stdin/stdout and, with --socket, a
   Unix-domain socket.

   Example:
     echo '{"id":1,"op":"solve","tree":"t","model":{...}}' | crossbar_serve *)

open Cmdliner

let serve socket capacity domains batch_limit sequential =
  match
    (* A client that disconnects mid-write must not kill the daemon;
       write failures are handled per-connection instead. *)
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ());
    Crossbar_serve.Server.run
      ~config:
        {
          Crossbar_serve.Server.socket_path = socket;
          capacity;
          domains;
          batch_limit;
          pipelined = not sequential;
        }
      ~input:Unix.stdin ~output:Unix.stdout ()
  with
  | () -> `Ok ()
  | exception Invalid_argument message -> `Error (false, message)
  | exception Unix.Unix_error (code, fn, arg) ->
      `Error
        ( false,
          Printf.sprintf "%s %s: %s" fn arg (Unix.error_message code) )

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Also accept clients on a Unix-domain socket at $(docv) (created \
           at startup, removed on shutdown).")

let capacity_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "capacity" ] ~docv:"N"
        ~doc:
          "Keep at most $(docv) solved trees resident (least recently used \
           evicted first).  Default: unbounded.")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Serve each batch with $(docv) worker domains.  Default: \
           CROSSBAR_DOMAINS, else the machine's recommended domain count.")

let batch_limit_arg =
  Arg.(
    value & opt int 256
    & info [ "batch-limit" ] ~docv:"N"
        ~doc:"Serve at most $(docv) queued requests as one batch.")

let sequential_arg =
  Arg.(
    value & flag
    & info [ "sequential" ]
        ~doc:
          "Serve each batch inline instead of pipelining it onto a worker \
           domain.  Responses are identical either way; pipelining (the \
           default) overlaps reading the next batch with solving the \
           current one.")

let cmd =
  let doc = "hot-tree query daemon for the asynchronous multi-rate crossbar" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Reads one JSON request per line, writes one JSON response per \
         line, and keeps every solved factor tree hot: a $(b,delta) \
         against a resident tree recombines only the changed classes' \
         root-to-leaf paths, and reads ($(b,blocking), \
         $(b,shadow_costs), $(b,admit)) are answered off the resident \
         diagonal with no solve at all.  Requests queued while a batch \
         is in flight are grouped by tree and served together.  See \
         docs/SERVE.md for the protocol.";
    ]
  in
  Cmd.v
    (Cmd.info "crossbar_serve" ~doc ~man)
    Term.(
      ret
        (const serve $ socket_arg $ capacity_arg $ domains_arg
       $ batch_limit_arg $ sequential_arg))

let () = exit (Cmd.eval cmd)
