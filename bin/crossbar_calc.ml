(* Analytic calculator for the asynchronous multi-rate crossbar.

   Example:
     crossbar_calc --inputs 32 --outputs 32 \
       --class name=voice,kind=poisson,a=1,alpha=0.02,mu=1 \
       --class name=video,kind=pascal,a=2,alpha=1e-4,beta=2e-5,mu=0.25 \
       --algorithm mva --weights 1.0,0.2 *)

open Cmdliner

(* Probabilities below this are noise at the printed precision. *)
let display_floor = 1e-9

let print_occupancy model =
  let distribution = Crossbar.Occupancy.load_distribution model in
  Format.printf "busy-port distribution:@.";
  Array.iteri
    (fun j p ->
      if p > display_floor then Format.printf "  P(load = %d) = %.6g@." j p)
    distribution;
  Format.printf "99%% busy-port quantile: %d@."
    (Crossbar.Occupancy.load_quantile model ~probability:0.99)

(* All R shadow costs and closed-form gradients from one factor-tree
   solve (Revenue.shadow_costs reads every reduced switch off the solved
   diagonal) — versus the R+1 independent solves of the per-class path. *)
let print_shadow_costs model ~weights =
  let solved = Crossbar.Convolution.solve model in
  let w0 =
    Crossbar.Measures.revenue (Crossbar.Convolution.measures solved) ~weights
  in
  let deltas = Crossbar.Revenue.shadow_costs ~solved model ~weights in
  let gradients = Crossbar.Revenue.gradient ~solved model ~weights in
  Format.printf "shadow costs (one solve, %d combines):@."
    (Crossbar.Convolution.combine_count solved);
  Format.printf "  W(N) = %.8g@." w0;
  Array.iteri
    (fun r delta ->
      Format.printf "  DW_%d = W(N) - W(N - %d I) = %.8g" (r + 1)
        (Crossbar.Model.bandwidth model r)
        delta;
      (match gradients.(r) with
      | Some g -> Format.printf "   dW/drho_%d = %.8g" (r + 1) g
      | None -> Format.printf "   (bursty: no closed-form gradient)");
      Format.printf "@.")
    deltas

let solve inputs outputs classes algorithm weights occupancy shadow verbose =
  if classes = [] then `Error (false, "at least one --class is required")
  else
    match
      (try Ok (Crossbar.Model.create ~inputs ~outputs ~classes)
       with Invalid_argument m -> Error m)
    with
    | Error m -> `Error (false, m)
    | Ok model -> (
        if verbose then Format.printf "%a@." Crossbar.Model.pp model;
        let measures = Crossbar.Solver.solve ?algorithm model in
        Format.printf "%a@." Crossbar.Measures.pp measures;
        if occupancy then print_occupancy model;
        match weights with
        | [] ->
            if shadow then
              `Error (false, "--shadow-costs requires --weights")
            else `Ok ()
        | w when List.length w = List.length classes ->
            let weights = Array.of_list w in
            Format.printf "W(N) = %.8g@."
              (Crossbar.Measures.revenue measures ~weights);
            if shadow then print_shadow_costs model ~weights
            else
              Array.iteri
                (fun r _ ->
                  if Crossbar.Model.is_poisson model r then
                    Format.printf "dW/drho_%d = %.8g@." (r + 1)
                      (Crossbar.Revenue.gradient_rho model ~weights
                         ~class_index:r)
                  else
                    Format.printf "dW/d(beta_%d/mu_%d) = %.8g@." (r + 1)
                      (r + 1)
                      (Crossbar.Revenue.gradient_beta_numeric model ~weights
                         ~class_index:r))
                weights;
            `Ok ()
        | _ -> `Error (false, "--weights must match the number of classes"))

let inputs_arg =
  Arg.(value & opt int 16 & info [ "inputs"; "n1" ] ~doc:"Input port count N1.")

let outputs_arg =
  Arg.(
    value & opt int 16 & info [ "outputs"; "n2" ] ~doc:"Output port count N2.")

let classes_arg =
  Arg.(
    value
    & opt_all Class_spec.converter []
    & info [ "class"; "c" ]
        ~doc:
          "Traffic class, e.g. \
           name=voice,kind=poisson,a=1,alpha=0.02,mu=1.  Kinds: poisson, \
           pascal, bernoulli, bpp.  Repeatable.")

let algorithm_conv =
  Arg.conv
    ( (fun s ->
        match Crossbar.Solver.algorithm_of_string s with
        | Ok a -> Ok a
        | Error e -> Error (`Msg e)),
      fun ppf a ->
        Format.pp_print_string ppf (Crossbar.Solver.algorithm_to_string a) )

let algorithm_arg =
  Arg.(
    value
    & opt (some algorithm_conv) None
    & info [ "algorithm" ]
        ~doc:"brute | convolution (Algorithm 1) | mva (Algorithm 2).")

let weights_arg =
  Arg.(
    value
    & opt (list float) []
    & info [ "weights" ]
        ~doc:"Revenue weights w_r (comma separated, one per class).")

let occupancy_arg =
  Arg.(
    value & flag
    & info [ "occupancy" ] ~doc:"Also print the busy-port distribution.")

let shadow_arg =
  Arg.(
    value & flag
    & info [ "shadow-costs" ]
        ~doc:
          "Print every class's shadow cost $(b,\\\\Delta W = W(N) - W(N - a_r \
           I)) and, for Poisson classes, the closed-form revenue gradient — \
           all batched from a single factor-tree solve instead of one \
           reduced-switch re-solve per class.  Requires $(b,--weights).")

let verbose_arg =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print the model first.")

let cmd =
  let doc = "exact performance analysis of an asynchronous multi-rate crossbar" in
  Cmd.v
    (Cmd.info "crossbar_calc" ~doc)
    Term.(
      ret
        (const solve $ inputs_arg $ outputs_arg $ classes_arg $ algorithm_arg
        $ weights_arg $ occupancy_arg $ shadow_arg $ verbose_arg))

let () = exit (Cmd.eval cmd)
