(* Regenerates every figure and table of Stirpe & Pinsky (SIGCOMM '92) as
   TSV on stdout.

     crossbar_tables figure1          # one figure/table
     crossbar_tables all              # everything *)

open Cmdliner
module Paper = Crossbar_workloads.Paper
module Report = Crossbar_workloads.Report

let targets =
  let ppf = Format.std_formatter in
  [
    ( "figure1",
      fun () -> Report.print_figure ppf ~name:"Figure 1 (smooth traffic)" Paper.figure1 );
    ( "figure2",
      fun () -> Report.print_figure ppf ~name:"Figure 2 (peaky traffic)" Paper.figure2 );
    ( "figure3",
      fun () ->
        Report.print_figure ppf ~name:"Figure 3 (two classes vs one)"
          Paper.figure3 );
    ( "figure4",
      fun () ->
        Report.print_figure ~sizes:Paper.figure4_sizes ppf
          ~name:"Figure 4 (multi-rate, Table 1 loads)" Paper.figure4 );
    ("table1", fun () -> Report.print_table1 ppf);
    ("table2", fun () -> Report.print_table2 ppf);
    ("forensics", fun () -> Report.print_forensics ppf);
    ("simulation", fun () -> Report.print_simulation_check ppf);
    ("baselines", fun () -> Report.print_baselines ppf);
    ("multistage", fun () -> Report.print_multistage ppf);
    ("hotspot", fun () -> Report.print_hotspot ppf);
  ]

let run what =
  match what with
  | "all" ->
      Crossbar_workloads.Report.print_all Format.std_formatter;
      `Ok ()
  | name -> (
      match List.assoc_opt name targets with
      | Some emit ->
          emit ();
          `Ok ()
      | None ->
          `Error
            ( false,
              Printf.sprintf
                "unknown target %S (figure1..4, table1, table2, forensics, \
                 simulation, baselines, all)"
                name ))

let what_arg =
  Arg.(
    value & pos 0 string "all"
    & info [] ~docv:"TARGET"
        ~doc:
          "figure1 | figure2 | figure3 | figure4 | table1 | table2 | \
           forensics | simulation | baselines | all")

let cmd =
  let doc = "regenerate the paper's figures and tables" in
  Cmd.v (Cmd.info "crossbar_tables" ~doc) Term.(ret (const run $ what_arg))

let () = exit (Cmd.eval cmd)
