(* Regenerates every figure and table of Stirpe & Pinsky (SIGCOMM '92) as
   TSV on stdout.

     crossbar_tables figure1          # one figure/table
     crossbar_tables all              # everything
     crossbar_tables -j 4 all         # sweep figures on 4 domains
     crossbar_tables --incremental all # chain per-class deltas
     crossbar_tables --telemetry all  # solve/cache summary on stderr *)

open Cmdliner
module Paper = Crossbar_workloads.Paper
module Report = Crossbar_workloads.Report
module Engine = Crossbar_engine

let targets ?domains ?telemetry ?incremental () =
  let ppf = Format.std_formatter in
  [
    ( "figure1",
      fun () ->
        Report.print_figure ?domains ?telemetry ?incremental ppf
          ~name:"Figure 1 (smooth traffic)" Paper.figure1 );
    ( "figure2",
      fun () ->
        Report.print_figure ?domains ?telemetry ?incremental ppf
          ~name:"Figure 2 (peaky traffic)" Paper.figure2 );
    ( "figure3",
      fun () ->
        Report.print_figure ?domains ?telemetry ?incremental ppf
          ~name:"Figure 3 (two classes vs one)" Paper.figure3 );
    ( "figure4",
      fun () ->
        Report.print_figure ~sizes:Paper.figure4_sizes ?domains ?telemetry
          ?incremental ppf ~name:"Figure 4 (multi-rate, Table 1 loads)"
          Paper.figure4 );
    ("table1", fun () -> Report.print_table1 ppf);
    ( "table2",
      fun () -> Report.print_table2 ?domains ?telemetry ?incremental ppf );
    ("forensics", fun () -> Report.print_forensics ppf);
    ("simulation", fun () -> Report.print_simulation_check ppf);
    ("baselines", fun () -> Report.print_baselines ppf);
    ("multistage", fun () -> Report.print_multistage ppf);
    ("hotspot", fun () -> Report.print_hotspot ppf);
  ]

let print_telemetry_summary telemetry =
  Printf.eprintf
    "telemetry: %d solve(s), %.3fs total solver wall time, %d domain(s)\n"
    (Engine.Telemetry.count telemetry)
    (Engine.Telemetry.total_wall_seconds telemetry)
    (Engine.Pool.recommended_domains ())

let run what domains with_telemetry incremental =
  match domains with
  | Some d when d < 1 ->
      `Error (false, Printf.sprintf "-j/--domains must be >= 1 (got %d)" d)
  | _ ->
  let telemetry =
    if with_telemetry then Some (Engine.Telemetry.create ()) else None
  in
  let finish result =
    Option.iter print_telemetry_summary telemetry;
    result
  in
  let incremental = if incremental then Some true else None in
  match what with
  | "all" ->
      Report.print_all ?domains ?telemetry ?incremental Format.std_formatter;
      finish (`Ok ())
  | name -> (
      match
        List.assoc_opt name (targets ?domains ?telemetry ?incremental ())
      with
      | Some emit ->
          emit ();
          finish (`Ok ())
      | None ->
          `Error
            ( false,
              Printf.sprintf
                "unknown target %S (figure1..4, table1, table2, forensics, \
                 simulation, baselines, all)"
                name ))

let what_arg =
  Arg.(
    value & pos 0 string "all"
    & info [] ~docv:"TARGET"
        ~doc:
          "figure1 | figure2 | figure3 | figure4 | table1 | table2 | \
           forensics | simulation | baselines | all")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "domains" ] ~docv:"N"
        ~doc:
          "Domains for the figure/table sweeps (default: the engine's \
           recommended pool width; 1 forces the sequential path). Output \
           is identical for every value.")

let incremental_arg =
  Arg.(
    value & flag
    & info [ "incremental" ]
        ~doc:
          "Chain sweep points that share switch dimensions and class count \
           through the incremental convolution path (factor-tree updates: \
           any subset of classes may change between neighbouring points). \
           Output is byte-identical with and without this flag; only the \
           work per solve changes.")

let telemetry_arg =
  Arg.(
    value & flag
    & info [ "telemetry" ]
        ~doc:"Print a solve/cache telemetry summary to stderr when done.")

let cmd =
  let doc = "regenerate the paper's figures and tables" in
  Cmd.v
    (Cmd.info "crossbar_tables" ~doc)
    Term.(
      ret (const run $ what_arg $ domains_arg $ telemetry_arg $ incremental_arg))

let () = exit (Cmd.eval cmd)
