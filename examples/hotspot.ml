(* Hot-spot (non-uniform) output traffic — the companion study the paper
   cites (Pinsky & Stirpe, ICPP '91) and then generalises away by
   assuming uniform traffic.  Here the non-uniform single-rate case is
   solved *exactly at any switch size* via the symmetric-polynomial
   collapse of the port-level product form, checked against a
   matching-level chain solve (small N) and simulation (any N).

     dune exec examples/hotspot.exe *)

module Exact = Crossbar_hotspot.Exact
module Sim = Crossbar_hotspot.Sim

let () =
  let inputs = 32 and outputs = 32 in
  let rate = 0.01 (* per (input, output) pair, cold outputs *) in
  Printf.printf
    "32x32 crossbar, per-pair rate %.3g to cold outputs; output 0 is hot.\n\n"
    rate;
  Printf.printf "%-10s %-14s %-14s %-14s %-12s\n" "hotness" "hot blocking"
    "cold blocking" "overall" "carried";
  List.iter
    (fun hot_multiplier ->
      let exact =
        Exact.hotspot ~inputs ~outputs ~rate ~hot_multiplier ~service_rate:1.
      in
      Printf.printf "%-10g %-14.4f %-14.4f %-14.4f %-12.3f\n" hot_multiplier
        (Exact.output_blocking exact 0)
        (Exact.output_blocking exact (outputs - 1))
        (Exact.overall_blocking exact)
        (Exact.throughput exact))
    [ 1.; 2.; 4.; 8.; 16.; 32. ];
  print_endline
    "\nThe hot output saturates while the cold outputs barely notice —\n\
     until the hot traffic dominates the offered volume and its blocked\n\
     share drags the overall acceptance down.  The carried traffic column\n\
     shows the concentration penalty at growing offered load.";

  (* Simulation referee at the same size. *)
  let weights = Array.make outputs 1. in
  weights.(0) <- 8.;
  let exact = Exact.solve ~inputs ~rate ~weights ~service_rate:1. in
  let sim =
    Sim.run { (Sim.default_config ~inputs ~rate ~weights) with horizon = 5e4 }
  in
  Printf.printf
    "\nsimulation check (hotness 8): overall exact %.4f vs sim %.4f ± %.4f;\n\
     hot output exact %.4f vs sim %.4f\n"
    (Exact.overall_blocking exact) sim.Sim.overall_blocking
    sim.Sim.overall_halfwidth
    (Exact.output_blocking exact 0)
    sim.Sim.per_output_blocking.(0);

  (* How much capacity does the hot spot destroy?  Compare with uniform
     traffic at the same total offered rate. *)
  let hot_total = 8. +. float_of_int (outputs - 1) in
  let uniform =
    Exact.solve ~inputs
      ~rate:(rate *. hot_total /. float_of_int outputs)
      ~weights:(Array.make outputs 1.) ~service_rate:1.
  in
  Printf.printf
    "\nconcentration penalty at equal offered volume: carried %.3f (hot) vs \
     %.3f (uniform)\n"
    (Exact.throughput exact) (Exact.throughput uniform)
