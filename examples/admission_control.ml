(* Admission control on the asynchronous crossbar: can trunk reservation
   buy back the multi-rate penalty of Figure 4?

   Controlled chains lose the product form; this example solves the exact
   guarded Markov chain and cross-checks one policy in simulation.

     dune exec examples/admission_control.exe *)

module Admission = Crossbar.Admission
module Measures = Crossbar.Measures

let () =
  let model =
    Crossbar.Model.square ~size:8
      ~classes:
        [
          Crossbar.Traffic.poisson ~name:"thin" ~bandwidth:1 ~rate:2.0
            ~service_rate:1.0 ();
          Crossbar.Traffic.poisson ~name:"wide" ~bandwidth:2 ~rate:1.0
            ~service_rate:1.0 ();
        ]
  in
  Printf.printf "%-28s %-12s %-12s %-12s %s\n" "policy" "thin block"
    "wide block" "busy ports" "throughput";
  let show policy =
    let m = Admission.solve model ~policy in
    Printf.printf "%-28s %-12.4f %-12.4f %-12.3f %.4f\n"
      (Admission.describe policy)
      (Measures.class_named m "thin").Measures.blocking
      (Measures.class_named m "wide").Measures.blocking
      m.Measures.busy_ports
      (Measures.total_throughput m)
  in
  show Admission.unrestricted;
  List.iter
    (fun threshold ->
      show (Admission.trunk_reservation ~thresholds:[| threshold; 8 |]))
    [ 6; 5; 4; 3 ];
  show
    (Admission.custom ~describe:"wide-priority (thin if load<2)"
       (fun ~class_index ~load ~bandwidth:_ -> class_index = 1 || load < 2));
  print_endline
    "\nFinding: unlike trunked telephone links, where reservation is very\n\
     effective, load thresholds barely help the wideband class here.  Its\n\
     blocking is dominated by collisions on the *specific* ports a request\n\
     draws (P ~ (1-u)^4), not by running out of total capacity, so only\n\
     policies that actually depress utilization move it — and they pay\n\
     for it in thin-class blocking and total throughput.";
  (* Cross-check one controlled configuration in simulation. *)
  let policy = Admission.trunk_reservation ~thresholds:[| 4; 8 |] in
  let exact = Admission.solve model ~policy in
  let sim =
    Crossbar_sim.Simulator.run
      {
        (Crossbar_sim.Simulator.default_config model) with
        admission = policy;
        horizon = 5e4;
      }
  in
  Printf.printf
    "\nsimulation check (thin, thresholds [4;8]): exact %.4f vs simulated \
     %.4f ± %.4f\n"
    (Measures.class_named exact "thin").Measures.blocking
    sim.Crossbar_sim.Simulator.per_class.(0)
      .Crossbar_sim.Simulator.time_congestion
      .Crossbar_sim.Simulator.point
    sim.Crossbar_sim.Simulator.per_class.(0)
      .Crossbar_sim.Simulator.time_congestion
      .Crossbar_sim.Simulator.halfwidth
