(* Transient behaviour: how fast does a cold (empty) switch converge to
   the steady state the paper analyses?  Uses the exact Markov chain of
   the model with uniformisation, plus the occupancy distribution at the
   steady state.

     dune exec examples/transient_startup.exe *)

module Chain = Crossbar.Chain
module Transient = Crossbar_markov.Transient
module State_space = Crossbar_markov.State_space

let () =
  let size = 6 in
  let model =
    Crossbar.Model.square ~size
      ~classes:
        [
          Crossbar.Traffic.poisson ~name:"calls" ~bandwidth:1 ~rate:0.6
            ~service_rate:1.0 ();
          Crossbar.Traffic.pascal ~name:"bursts" ~bandwidth:2 ~alpha:0.2
            ~beta:0.1 ~service_rate:0.5 ();
        ]
  in
  let chain = Chain.arrival_chain model in
  let space = Crossbar.Model.state_space model in
  let states = State_space.size space in
  (* Cold start: everything idle. *)
  let initial = Array.make states 0. in
  initial.(State_space.index space [| 0; 0 |]) <- 1.;
  (* Reward = instantaneous availability of a specific (input, output)
     pair, whose time average is the paper's non-blocking probability. *)
  let n = float_of_int size in
  let availability =
    Array.init states (fun i ->
        let load = float_of_int (State_space.load space i) in
        (n -. load) /. n *. ((n -. load) /. n))
  in
  let steady = Crossbar.Solver.solve model in
  Printf.printf "steady-state non-blocking (class calls): %.5f\n\n"
    steady.Crossbar.Measures.per_class.(0).Crossbar.Measures.non_blocking;
  Printf.printf "%-10s %-16s\n" "t" "P(pair free at t)";
  List.iter
    (fun time ->
      Printf.printf "%-10g %.5f\n" time
        (Transient.expected_reward chain ~initial ~time ~reward:availability))
    [ 0.; 0.25; 0.5; 1.; 2.; 4.; 8.; 16. ];
  let settle =
    Transient.time_to_stationarity chain ~initial ~distance:1e-3
  in
  Printf.printf
    "\ntotal-variation distance to stationarity < 1e-3 after t ~ %.3g\n\
     (holding times have mean 1: the switch forgets its start in a few\n\
     holding times — measurements shorter than that are biased)\n"
    settle;
  (* Where does the steady state actually live?  The exact occupancy law. *)
  let distribution = Crossbar.Occupancy.load_distribution model in
  Printf.printf "\nsteady-state busy-port distribution:\n";
  let display_floor = 5e-4 in
  Array.iteri
    (fun j p ->
      if p > display_floor then Printf.printf "  P(load = %d) = %.4f\n" j p)
    distribution;
  Printf.printf "busy ports exceeded only 1%% of the time: %d of %d\n"
    (Crossbar.Occupancy.load_quantile model ~probability:0.99)
    size
