(* The asynchronous crossbar against the designs the paper's introduction
   measures it against: Patel's synchronous (slotted) crossbar and a
   multistage banyan of 2x2 elements.

     dune exec examples/baseline_comparison.exe *)

module Sync = Crossbar_baselines.Sync_crossbar
module Multi = Crossbar_baselines.Multistage

let () =
  print_endline "Saturation throughput per port (request probability 1):";
  Printf.printf "  %-8s %-18s %-18s %s\n" "N" "slotted crossbar" "banyan (2x2)"
    "banyan crosspoints vs N^2";
  List.iter
    (fun n ->
      Printf.printf "  %-8d %-18.4f %-18.4f %d vs %d\n" n
        (Sync.saturation_throughput ~size:n)
        (Multi.throughput ~switch_size:n ~fanout:2 ~request_probability:1.)
        (Multi.crosspoint_complexity ~switch_size:n ~fanout:2)
        (n * n))
    [ 8; 16; 64; 256; 1024 ];
  print_endline
    "\nThe banyan saves crosspoints (N log N vs N^2) but loses throughput\n\
     to internal blocking as it deepens; the non-blocking crossbar is the\n\
     design the paper's free-space optics make affordable.\n";

  (* The asynchronous, circuit-switched crossbar at a comparable load:
     mean holding 1, offered so that each input is busy ~60% of time. *)
  print_endline
    "Asynchronous crossbar (this paper), utilization vs per-request blocking:";
  Printf.printf "  %-14s %-14s %s\n" "offered/port" "utilization" "blocking";
  List.iter
    (fun load ->
      let n = 32 in
      let model =
        Crossbar.Model.square ~size:n
          ~classes:
            [
              Crossbar.Traffic.poisson ~name:"t" ~bandwidth:1
                ~rate:(load /. float_of_int n *. float_of_int n)
                ~service_rate:1.0 ();
            ]
      in
      let m = Crossbar.Solver.solve model in
      Printf.printf "  %-14.3f %-14.4f %.4f\n" load
        m.Crossbar.Measures.input_utilization
        m.Crossbar.Measures.per_class.(0).Crossbar.Measures.blocking)
    [ 0.01; 0.05; 0.1; 0.3; 0.6; 1.0 ];
  print_endline
    "\nUnlike the slotted designs (per-slot contention resolution), the\n\
     asynchronous switch holds circuits: blocking is the price of holding\n\
     both a specific input and output for the connection's lifetime, and\n\
     grows ~2u at utilization u.";

  (* Erlang/Engset single-resource anchors. *)
  Printf.printf
    "\nClassical anchors: Erlang-B(10 servers, 5 erl) = %.5f, Engset(10, 15 \
     sources) = %.5f\n"
    (Crossbar_baselines.Erlang.erlang_b ~servers:10 ~offered_load:5.)
    (Crossbar_baselines.Engset.time_congestion ~servers:10 ~sources:15
       ~idle_rate:0.5 ~service_rate:1.)
