(* Quickstart: model a 16x16 asynchronous optical crossbar carrying two
   traffic classes, solve it exactly, and read off the performance
   measures.

     dune exec examples/quickstart.exe *)

let () =
  (* Classes are described by their aggregate ("tilde") BPP parameters:
     requests for one particular input set arrive at rate
     alpha~ + beta~ k when k connections of the class are up. *)
  let voice =
    Crossbar.Traffic.poisson ~name:"voice" ~bandwidth:1 ~rate:0.01
      ~service_rate:1.0 ()
  in
  let video =
    (* Peaky (Pascal) sessions that need two parallel connections each. *)
    Crossbar.Traffic.pascal ~name:"video" ~bandwidth:2 ~alpha:1e-4
      ~beta:2.5e-5 ~service_rate:0.25 ()
  in
  let switch =
    Crossbar.Model.square ~size:16 ~classes:[ voice; video ]
  in
  Format.printf "%a@." Crossbar.Model.pp switch;

  (* Solve with the recommended algorithm (Algorithm 1 for small
     switches, Algorithm 2 for large ones). *)
  let measures = Crossbar.Solver.solve switch in
  Format.printf "%a@.@." Crossbar.Measures.pp measures;

  (* Individual quantities are plain record fields. *)
  let video_measures = Crossbar.Measures.class_named measures "video" in
  Format.printf "video blocking: %.4f%%@."
    (100. *. video_measures.Crossbar.Measures.blocking);
  Format.printf "video concurrent sessions: %.3f@."
    video_measures.Crossbar.Measures.concurrency;
  Format.printf "switch throughput: %.3f connections/unit time@."
    (Crossbar.Measures.total_throughput measures)
