(* Integrated services on one all-optical switch — the scenario the
   paper's introduction motivates: voice, bursty multi-rate video and
   finite-source data share a crossbar, and we quantify how each class
   experiences it.

     dune exec examples/integrated_services.exe *)

let line () = print_endline (String.make 78 '-')

let () =
  let size = 32 in
  line ();
  Printf.printf "Integrated services on a %dx%d asynchronous crossbar\n" size
    size;
  line ();
  List.iter
    (fun utilization ->
      let model =
        Crossbar_workloads.Scenarios.integrated_services ~size ~utilization
      in
      let m = Crossbar.Solver.solve model in
      Printf.printf "\nport budget %.0f%% =>\n" (100. *. utilization);
      Format.printf "%a@." Crossbar.Measures.pp m;
      let voice = Crossbar.Measures.class_named m "voice"
      and video = Crossbar.Measures.class_named m "video" in
      Printf.printf
        "  video (4 ports/stream) suffers %.1fx the voice blocking\n"
        (video.Crossbar.Measures.blocking /. voice.Crossbar.Measures.blocking))
    [ 0.02; 0.05; 0.10; 0.20 ];
  line ();
  print_endline
    "Multi-rate penalty: wideband classes pay disproportionately for their\n\
     bundle size (the Figure-4 effect) — admission control or bandwidth\n\
     reservation is needed to protect them as the switch fills.";
  (* Peakedness report: the Z-factors behind each class. *)
  line ();
  let model =
    Crossbar_workloads.Scenarios.integrated_services ~size ~utilization:0.1
  in
  Array.iteri
    (fun r (c : Crossbar.Traffic.t) ->
      let z =
        Crossbar.Traffic.peakedness
          ~beta:(Crossbar.Model.beta model r)
          ~service_rate:c.Crossbar.Traffic.service_rate
      in
      Printf.printf "%-8s per-pair Z-factor %.6f (%s)\n"
        c.Crossbar.Traffic.name z
        (match Crossbar.Traffic.statistics c with
        | Crossbar.Traffic.Smooth -> "smooth"
        | Crossbar.Traffic.Regular -> "regular"
        | Crossbar.Traffic.Peaky -> "peaky"))
    (Crossbar.Model.classes model)
