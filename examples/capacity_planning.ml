(* Capacity planning: invert the blocking curves instead of eyeballing
   them.  Finds (a) how much load a given switch admits under a blocking
   objective, and (b) how large a switch a given demand needs.

     dune exec examples/capacity_planning.exe *)

let () =
  let target = 0.005 (* the paper's "acceptable operating point" *) in

  (* (a) Load headroom of a 64x64 switch at 0.5% blocking. *)
  let base =
    Crossbar.Model.square ~size:64
      ~classes:
        [
          Crossbar.Traffic.poisson ~name:"traffic" ~bandwidth:1 ~rate:0.001
            ~service_rate:1.0 ();
        ]
  in
  let multiplier =
    Crossbar.Capacity.load_multiplier_for_blocking base ~class_index:0
      ~target
  in
  Printf.printf
    "64x64 switch, %.1f%% blocking objective:\n\
    \  admissible aggregate load alpha~ = %.6f (%.2fx the probe load)\n"
    (100. *. target)
    (0.001 *. multiplier)
    multiplier;
  let admitted =
    Crossbar.Model.map_class base 0 (fun t ->
        Crossbar.Traffic.scale_load t multiplier)
  in
  let m = Crossbar.Solver.solve admitted in
  Printf.printf "  check: blocking at that load = %.4f%%, carrying %.2f calls\n\n"
    (100. *. m.Crossbar.Measures.per_class.(0).Crossbar.Measures.blocking)
    m.Crossbar.Measures.per_class.(0).Crossbar.Measures.concurrency;

  (* (b) Dimensioning: smallest switch for a demand of ~3 concurrent
     calls plus a bursty class, at 2% blocking. *)
  let demand n =
    let nf = float_of_int n in
    [
      Crossbar.Traffic.poisson ~name:"calls" ~bandwidth:1 ~rate:(3. /. nf)
        ~service_rate:1.0 ();
      Crossbar.Traffic.pascal ~name:"bursts" ~bandwidth:1 ~alpha:(0.5 /. nf)
        ~beta:(0.2 /. nf) ~service_rate:1.0 ();
    ]
  in
  (match
     Crossbar.Capacity.smallest_square_switch ~classes:demand ~target:0.02
       ~max_size:512 ()
   with
  | Some n ->
      Printf.printf "Smallest square switch for the demand at 2%%: %dx%d\n" n n;
      let m = Crossbar.Solver.solve (Crossbar.Model.square ~size:n ~classes:(demand n)) in
      Array.iter
        (fun (c : Crossbar.Measures.per_class) ->
          Printf.printf "  %-8s blocking %.3f%%\n" c.Crossbar.Measures.name
            (100. *. c.Crossbar.Measures.blocking))
        m.Crossbar.Measures.per_class
  | None -> print_endline "no switch up to 512x512 satisfies the demand");

  (* (c) The classical anchor for comparison: how many Erlang-B servers
     carry 3 erlangs at the same objective? *)
  Printf.printf
    "\n(Erlang-B reference: %d full-access servers carry 3 erlangs at 2%%.)\n"
    (Crossbar_baselines.Erlang.servers_for_blocking ~offered_load:3.
       ~target:0.02);

  (* (d) The planning surface itself, as a parallel engine sweep: blocking
     across a (switch size x load multiplier) grid in one batched call.
     Results are deterministic — identical for any domain count — so the
     table below never depends on how many cores ran it. *)
  let module Sweep = Crossbar_engine.Sweep in
  let module Telemetry = Crossbar_engine.Telemetry in
  let sizes = [ 16; 32; 64; 128 ] and multipliers = [ 1.; 4.; 16.; 64. ] in
  let points =
    List.concat_map
      (fun n ->
        List.map
          (fun m ->
            let model =
              Crossbar.Model.square ~size:n
                ~classes:
                  [
                    Crossbar.Traffic.poisson ~name:"traffic" ~bandwidth:1
                      ~rate:(0.001 *. m) ~service_rate:1.0 ();
                  ]
            in
            Sweep.point ~label:(Printf.sprintf "N=%d m=%g" n m) model)
          multipliers)
      sizes
  in
  let telemetry = Telemetry.create () in
  let domains = Crossbar_engine.Pool.recommended_domains () in
  let outcomes = Sweep.run ~domains ~telemetry points in
  Printf.printf
    "\nPlanning surface (blocking %%, %d points swept on %d domain(s)):\n\
     N \\ load x" (List.length points) domains;
  List.iter (fun m -> Printf.printf "\t%g" m) multipliers;
  print_newline ();
  List.iteri
    (fun row n ->
      Printf.printf "%d" n;
      List.iteri
        (fun col _ ->
          let outcome = outcomes.((row * List.length multipliers) + col) in
          Printf.printf "\t%.4f%%"
            (100.
            *. (Sweep.measures outcome).Crossbar.Measures.per_class.(0)
                 .Crossbar.Measures.blocking))
        multipliers;
      print_newline ())
    sizes;
  Printf.printf "(engine: %d solve(s), %.3fs solver wall time)\n"
    (Telemetry.count telemetry)
    (Telemetry.total_wall_seconds telemetry)
