(* Multi-stage asynchronous all-optical networks — the paper's stated
   future work.  Builds a delta network of k x k asynchronous crossbars,
   estimates its end-to-end blocking two ways (the classical
   link-independence Erlang fixed point, and a Markov-chain correction
   whose building block is the paper's exact single-crossbar solution),
   and referees both against an exact event-driven simulation.

     dune exec examples/multistage_network.exe *)

module Topology = Crossbar_network.Topology
module Analysis = Crossbar_network.Analysis
module Net_sim = Crossbar_network.Sim

let () =
  Printf.printf "%-14s %-9s %-16s %-16s %-16s\n" "network" "offered"
    "simulated" "switch-markov" "link-indep";
  List.iter
    (fun (ports, fanout) ->
      let topology = Topology.create ~ports ~fanout in
      List.iter
        (fun offered ->
          let sim =
            Net_sim.run
              { (Net_sim.default_config topology ~offered) with horizon = 4e4 }
          in
          let markov =
            Analysis.switch_markov topology ~offered ~service_rate:1.
          in
          let link =
            Analysis.link_fixed_point topology ~offered ~service_rate:1.
          in
          Printf.printf "%4dx%d (s=%d)  %-9.3f %.4f ± %-7.4f %-16.4f %-16.4f\n"
            ports fanout (Topology.stages topology) offered
            sim.Net_sim.blocking sim.Net_sim.blocking_halfwidth
            markov.Analysis.end_to_end_blocking
            link.Analysis.end_to_end_blocking)
        [ 0.05; 0.2; 0.5 ])
    [ (16, 4); (64, 4); (64, 2); (256, 4) ];
  print_endline
    "\nThe link-independence approximation ignores that a switch's input\n\
     and output availabilities are positively correlated (busy calls hold\n\
     one of each), so it overestimates blocking — by ~40% relative on the\n\
     deep 2x2 fabric.  Chaining the paper's exact per-switch joint\n\
     availability with a Markov correction absorbs that correlation and\n\
     tracks the simulation within its confidence interval across loads\n\
     and depths: the single-stage analysis of Stirpe & Pinsky is exactly\n\
     the right building block for the multi-stage networks they left as\n\
     future work."
