(* Simulation vs analysis — the validation the paper lists as future
   work.  Runs the port-level discrete-event simulator against the
   product-form solution, demonstrates service-time insensitivity, and
   shows the call- vs time-congestion split for non-Poisson arrivals.

     dune exec examples/sim_vs_analysis.exe *)

module Sim = Crossbar_sim.Simulator
module Service = Crossbar_sim.Service

let () =
  let model =
    Crossbar.Model.square ~size:8
      ~classes:
        [
          Crossbar.Traffic.poisson ~name:"poisson" ~bandwidth:1 ~rate:0.8
            ~service_rate:1.0 ();
          Crossbar.Traffic.pascal ~name:"pascal" ~bandwidth:2 ~alpha:0.5
            ~beta:0.3 ~service_rate:1.0 ();
          Crossbar.Traffic.bernoulli ~name:"engset" ~bandwidth:1 ~sources:6
            ~per_source_rate:0.1 ~service_rate:1.0 ();
        ]
  in
  let analytic = Crossbar.Solver.solve model in
  Format.printf "analytic (product form):@.%a@.@." Crossbar.Measures.pp
    analytic;

  let run shape =
    Sim.run
      {
        (Sim.default_config model) with
        horizon = 1e5;
        warmup = 1e3;
        service = (fun _ -> shape);
      }
  in
  List.iter
    (fun shape ->
      let result = run shape in
      Format.printf "simulated, %s holding times:@.%a@.@."
        (Service.to_string shape)
        Sim.pp_result result)
    [ Service.Exponential; Service.Deterministic; Service.Hyperexponential 4. ];

  print_endline
    "Observations:\n\
    \  * time congestion matches the analytical blocking for every\n\
    \    holding-time distribution (insensitivity, paper Section 2);\n\
    \  * the Poisson class's call congestion equals its time congestion\n\
    \    (PASTA);\n\
    \  * the Bernoulli class is blocked *less* often than the time\n\
    \    average suggests, the Pascal class *more* — the Engset effect\n\
    \    for state-dependent arrivals.  The analytical B_r of the paper\n\
    \    is the time congestion."
