(* Revenue-oriented analysis (paper Section 4): shadow costs decide which
   traffic is worth encouraging.  A class earns w_r per accepted
   connection but displaces Delta W = W(N) - W(N - a_r I) of other
   revenue; the gradient dW/drho_r = P(N1,a) P(N2,a) B_r (w_r - Delta W)
   tells the operator whether admitting more of it pays.

     dune exec examples/revenue_admission.exe *)

let () =
  let model =
    Crossbar.Model.square ~size:32
      ~classes:
        [
          (* premium circuits: high revenue, two ports each *)
          Crossbar.Traffic.poisson ~name:"premium" ~bandwidth:2 ~rate:0.4
            ~service_rate:0.5 ();
          (* best-effort: cheap, single port, bursty *)
          Crossbar.Traffic.pascal ~name:"besteffort" ~bandwidth:1 ~alpha:1.2
            ~beta:0.4 ~service_rate:2.0 ();
        ]
  in
  let weights = [| 5.0; 0.05 |] in
  let w = Crossbar.Revenue.total model ~weights in
  Printf.printf "Average return W(N) = %.5f\n\n" w;

  Array.iteri
    (fun r (c : Crossbar.Traffic.t) ->
      let name = c.Crossbar.Traffic.name in
      let shadow =
        Crossbar.Revenue.shadow_cost model ~weights ~class_index:r
      in
      let gradient =
        if Crossbar.Model.is_poisson model r then
          Crossbar.Revenue.gradient_rho model ~weights ~class_index:r
        else Crossbar.Revenue.gradient_rho_numeric model ~weights ~class_index:r
      in
      Printf.printf "%-10s w=%-5g shadow cost DW=%-9.5f dW/drho=%-12.5g %s\n"
        name weights.(r) shadow gradient
        (if gradient > 0. then "=> admit more"
         else "=> additional load destroys revenue")
    )
    (Crossbar.Model.classes model);

  (* Burstiness is a liability: the gradient of W in the best-effort
     class's peakedness coordinate beta/mu (Table 2's experiment). *)
  let beta_gradient =
    Crossbar.Revenue.gradient_beta_numeric model ~weights ~class_index:1
  in
  Printf.printf
    "\nd W / d(beta/mu) of the bursty class = %.5g\n\
     (negative: the peakier the best-effort traffic, the more premium\n\
     revenue it displaces, even at the same mean load)\n"
    beta_gradient;

  (* Sweep the best-effort weight to find the admission break-even. *)
  print_endline "\nBreak-even analysis for best-effort pricing:";
  List.iter
    (fun w2 ->
      let weights = [| 5.0; w2 |] in
      let g =
        Crossbar.Revenue.gradient_rho_numeric model ~weights ~class_index:1
      in
      Printf.printf "  w_besteffort=%-6g dW/drho = %+10.5g %s\n" w2 g
        (if g > 0. then "(profitable)" else "(loss-making)"))
    [ 0.001; 0.005; 0.01; 0.05; 0.2 ]
