open Helpers
module Event_heap = Crossbar_sim.Event_heap
module Stats = Crossbar_sim.Stats
module Service = Crossbar_sim.Service
module Fabric = Crossbar_sim.Fabric
module Rng = Crossbar_prng.Rng

(* ---------- event heap ---------- *)

let test_heap_ordering () =
  let heap = Event_heap.create () in
  let rng = Rng.create ~seed:3 in
  let times = Array.init 500 (fun _ -> Rng.float rng) in
  Array.iteri (fun i t -> Event_heap.add heap ~time:t i) times;
  check_int "size" 500 (Event_heap.size heap);
  let last = ref neg_infinity in
  let popped = ref 0 in
  let continue = ref true in
  while !continue do
    match Event_heap.pop heap with
    | None -> continue := false
    | Some (t, _) ->
        check_bool "non-decreasing" true (t >= !last);
        last := t;
        incr popped
  done;
  check_int "all popped" 500 !popped;
  check_bool "empty" true (Event_heap.is_empty heap)

let test_heap_fifo_ties () =
  let heap = Event_heap.create () in
  Event_heap.add heap ~time:1. "first";
  Event_heap.add heap ~time:1. "second";
  Event_heap.add heap ~time:0.5 "early";
  (match Event_heap.pop heap with
  | Some (_, "early") -> ()
  | _ -> Alcotest.fail "early event first");
  (match Event_heap.pop heap with
  | Some (_, "first") -> ()
  | _ -> Alcotest.fail "ties are FIFO");
  (match Event_heap.peek heap with
  | Some (1., "second") -> ()
  | _ -> Alcotest.fail "peek leaves element");
  check_int "one left" 1 (Event_heap.size heap)

let test_heap_nan () =
  let heap = Event_heap.create () in
  check_raises_invalid "nan time" (fun () ->
      Event_heap.add heap ~time:Float.nan ())

let test_heap_pop_then_grow () =
  (* Pops vacate slots beyond [size]; a later growth spurt must neither
     resurface stale entries nor disturb ordering. *)
  let heap = Event_heap.create () in
  for i = 0 to 19 do
    Event_heap.add heap ~time:(float_of_int i) i
  done;
  for _ = 1 to 15 do
    ignore (Event_heap.pop heap)
  done;
  check_int "size after pops" 5 (Event_heap.size heap);
  for i = 20 to 99 do
    Event_heap.add heap ~time:(float_of_int i) i
  done;
  let expected = ref 15 in
  let continue = ref true in
  while !continue do
    match Event_heap.pop heap with
    | None -> continue := false
    | Some (t, payload) ->
        check_int "payload order" !expected payload;
        check_close "time order" (float_of_int !expected) t;
        incr expected
  done;
  check_int "drained completely" 100 !expected

let test_heap_drain_then_reuse () =
  (* Draining to empty drops the backing store (so the last payload is
     not pinned); the heap must keep working afterwards. *)
  let heap = Event_heap.create () in
  Event_heap.add heap ~time:1. "a";
  (match Event_heap.pop heap with
  | Some (_, "a") -> ()
  | _ -> Alcotest.fail "expected a");
  check_bool "empty" true (Event_heap.is_empty heap);
  Event_heap.add heap ~time:2. "b";
  Event_heap.add heap ~time:1.5 "c";
  (match Event_heap.pop heap with
  | Some (_, "c") -> ()
  | _ -> Alcotest.fail "expected c");
  match Event_heap.pop heap with
  | Some (_, "b") -> ()
  | _ -> Alcotest.fail "expected b"

(* ---------- stats ---------- *)

let test_welford () =
  let w = Stats.Welford.create () in
  List.iter (Stats.Welford.add w) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  check_int "count" 8 (Stats.Welford.count w);
  check_close "mean" 5. (Stats.Welford.mean w);
  (* Sample variance of that classic set is 32/7. *)
  check_close "variance" (32. /. 7.) (Stats.Welford.variance w);
  check_close "std" (sqrt (32. /. 7.)) (Stats.Welford.std w)

let test_welford_short () =
  let w = Stats.Welford.create () in
  check_close "empty variance" 0. (Stats.Welford.variance w);
  Stats.Welford.add w 42.;
  check_close "single variance" 0. (Stats.Welford.variance w);
  check_close "single mean" 42. (Stats.Welford.mean w)

let test_time_weighted () =
  let tw = Stats.Time_weighted.create ~start:0. ~value:1. in
  Stats.Time_weighted.update tw ~time:2. ~value:3.;
  Stats.Time_weighted.update tw ~time:5. ~value:0.;
  (* integral = 1*2 + 3*3 + 0*5 over [0,10] => 11/10 *)
  check_close "average" 1.1 (Stats.Time_weighted.average tw ~upto:10.);
  Stats.Time_weighted.reset tw ~time:10.;
  check_close "after reset" 0. (Stats.Time_weighted.average tw ~upto:20.);
  check_raises_invalid "backwards" (fun () ->
      Stats.Time_weighted.update tw ~time:5. ~value:1.)

let test_confidence_interval () =
  let batches = [| 10.; 12.; 11.; 9.; 13. |] in
  let mean, halfwidth = Stats.confidence_interval ~confidence:0.95 batches in
  check_close "mean" 11. mean;
  (* s = sqrt(2.5), se = s/sqrt 5, t(4,.95) = 2.776 *)
  check_abs "halfwidth" (2.776 *. sqrt 2.5 /. sqrt 5.) halfwidth ~tol:2e-3;
  check_raises_invalid "one batch" (fun () ->
      ignore (Stats.confidence_interval ~confidence:0.95 [| 1. |]))

(* ---------- service distributions ---------- *)

let sample_mean shape ~mean n =
  let rng = Rng.create ~seed:61 in
  let total = ref 0. in
  for _ = 1 to n do
    total := !total +. Service.sample shape rng ~mean
  done;
  !total /. float_of_int n

let test_service_means () =
  List.iter
    (fun shape ->
      check_abs
        (Printf.sprintf "mean of %s" (Service.to_string shape))
        2.5
        (sample_mean shape ~mean:2.5 100_000)
        ~tol:0.05)
    [
      Service.Exponential;
      Service.Deterministic;
      Service.Erlang 3;
      Service.Hyperexponential 4.;
    ]

let test_service_scv () =
  check_close "exp scv" 1. (Service.scv Service.Exponential);
  check_close "det scv" 0. (Service.scv Service.Deterministic);
  check_close "erlang scv" 0.25 (Service.scv (Service.Erlang 4));
  check_close "hyper scv" 4. (Service.scv (Service.Hyperexponential 4.));
  (* Empirical scv of the hyperexponential. *)
  let rng = Rng.create ~seed:67 in
  let xs =
    Array.init 400_000 (fun _ ->
        Service.sample (Service.Hyperexponential 4.) rng ~mean:1.)
  in
  let mean = Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs) in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs
    /. float_of_int (Array.length xs - 1)
  in
  check_abs "empirical scv" 4. (var /. (mean *. mean)) ~tol:0.15

let test_service_strings () =
  List.iter
    (fun shape ->
      match Service.of_string (Service.to_string shape) with
      | Ok parsed -> check_bool "roundtrip" true (parsed = shape)
      | Error e -> Alcotest.fail e)
    [
      Service.Exponential;
      Service.Deterministic;
      Service.Erlang 5;
      Service.Hyperexponential 2.5;
    ];
  (match Service.of_string "nonsense" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "nonsense should not parse");
  check_raises_invalid "bad erlang" (fun () ->
      ignore (Service.sample (Service.Erlang 0) (Rng.create ~seed:1) ~mean:1.));
  check_raises_invalid "bad mean" (fun () ->
      ignore (Service.sample Service.Exponential (Rng.create ~seed:1) ~mean:0.))

(* ---------- fabric ---------- *)

let test_fabric_lifecycle () =
  let fabric = Fabric.create ~inputs:4 ~outputs:3 in
  let rng = Rng.create ~seed:71 in
  check_int "idle" 0 (Fabric.busy_inputs fabric);
  check_close "full availability" 1. (Fabric.availability fabric ~bandwidth:1);
  match Fabric.try_connect fabric rng ~bandwidth:2 with
  | None -> Alcotest.fail "empty fabric must accept"
  | Some connection ->
      check_int "busy" 2 (Fabric.busy_inputs fabric);
      check_close "availability after" (2. /. 4. *. (1. /. 3.))
        (Fabric.availability fabric ~bandwidth:1);
      Fabric.release fabric connection;
      check_int "freed" 0 (Fabric.busy_inputs fabric);
      check_raises_invalid "double release" (fun () ->
          Fabric.release fabric connection)

let test_fabric_saturation () =
  let fabric = Fabric.create ~inputs:2 ~outputs:2 in
  let rng = Rng.create ~seed:73 in
  let c1 = Fabric.try_connect fabric rng ~bandwidth:2 in
  check_bool "fits" true (Option.is_some c1);
  check_bool "full" true (Fabric.try_connect fabric rng ~bandwidth:1 = None);
  check_close "no availability" 0. (Fabric.availability fabric ~bandwidth:1);
  Fabric.release fabric (Option.get c1);
  check_bool "accepts again" true
    (Fabric.try_connect fabric rng ~bandwidth:1 <> None)

let test_fabric_oversize () =
  let fabric = Fabric.create ~inputs:2 ~outputs:5 in
  let rng = Rng.create ~seed:79 in
  check_bool "too wide" true (Fabric.try_connect fabric rng ~bandwidth:3 = None)

let test_fabric_blocking_rate () =
  (* With b busy ports out of N, a bandwidth-1 request must be accepted
     with probability ((N-b)/N)^2; verify empirically. *)
  let fabric = Fabric.create ~inputs:10 ~outputs:10 in
  let rng = Rng.create ~seed:83 in
  (* Occupy 4 inputs and 4 outputs via 4 bandwidth-1 connections. *)
  let held = ref [] in
  while List.length !held < 4 do
    match Fabric.try_connect fabric rng ~bandwidth:1 with
    | Some c -> held := c :: !held
    | None -> ()
  done;
  let accepted = ref 0 and trials = 20_000 in
  for _ = 1 to trials do
    match Fabric.try_connect fabric rng ~bandwidth:1 with
    | Some c ->
        incr accepted;
        Fabric.release fabric c
    | None -> ()
  done;
  let expected = 0.6 *. 0.6 in
  check_abs "acceptance fraction" expected
    (float_of_int !accepted /. float_of_int trials)
    ~tol:0.01;
  check_close "availability formula" expected
    (Fabric.availability fabric ~bandwidth:1)

let () =
  Alcotest.run "sim-support"
    [
      ( "event-heap",
        [
          case "ordering" test_heap_ordering;
          case "fifo ties" test_heap_fifo_ties;
          case "nan rejected" test_heap_nan;
          case "pop then grow" test_heap_pop_then_grow;
          case "drain then reuse" test_heap_drain_then_reuse;
        ] );
      ( "stats",
        [
          case "welford" test_welford;
          case "welford short" test_welford_short;
          case "time weighted" test_time_weighted;
          case "confidence interval" test_confidence_interval;
        ] );
      ( "service",
        [
          case "means" test_service_means;
          case "scv" test_service_scv;
          case "string roundtrip" test_service_strings;
        ] );
      ( "fabric",
        [
          case "lifecycle" test_fabric_lifecycle;
          case "saturation" test_fabric_saturation;
          case "oversize" test_fabric_oversize;
          case "acceptance fraction" test_fabric_blocking_rate;
        ] );
    ]
