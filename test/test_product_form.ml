open Helpers
module Model = Crossbar.Model
module Brute = Crossbar.Brute
module Chain = Crossbar.Chain
module Ctmc = Crossbar_markov.Ctmc
module State_space = Crossbar_markov.State_space

(* The central soundness claims of the paper, each verified with no
   product-form assumption:
   1. the product-form pi matches an exact numerical solve of the chain;
   2. the chain is reversible (detailed balance holds);
   3. the state-dependent-service formulation has the same steady state. *)

let test_distribution_normalised () =
  List.iter
    (fun (label, model) ->
      let _, pi = Brute.distribution model in
      let total = Array.fold_left ( +. ) 0. pi in
      check_close (label ^ ": sums to 1") 1. total ~tol:1e-12;
      Array.iter
        (fun p -> check_bool (label ^ ": non-negative") true (p >= 0.))
        pi)
    (validation_models ())

let test_product_form_vs_gth () =
  List.iter
    (fun (label, model) ->
      let _, pi = Brute.distribution model in
      let pi_gth = Chain.stationary model in
      Array.iteri
        (fun i p -> check_abs (label ^ ": pi component") p pi_gth.(i) ~tol:1e-12)
        pi)
    (validation_models ())

let test_reversibility () =
  List.iter
    (fun (label, model) ->
      let chain = Chain.arrival_chain model in
      let pi = Chain.stationary model in
      check_bool
        (label ^ ": detailed balance")
        true
        (Ctmc.detailed_balance_violation chain ~pi < 1e-12))
    (validation_models ())

let test_service_view_equivalence () =
  (* The alternative formulation with unit Poisson arrivals and
     state-dependent service mu(k) = k mu / (v + delta k) must share the
     stationary distribution (paper Section 2). *)
  let model =
    Crossbar.Model.square ~size:4
      ~classes:
        [
          pascal ~name:"peaky" ~alpha:0.4 ~beta:0.2 ();
          pascal ~name:"wide" ~bandwidth:2 ~alpha:0.5 ~beta:0.1 ();
        ]
  in
  let pi_arrival = Ctmc.solve_gth (Chain.arrival_chain model) in
  let pi_service = Ctmc.solve_gth (Chain.service_view_chain model) in
  Array.iteri
    (fun i p -> check_abs "same stationary" p pi_service.(i) ~tol:1e-12)
    pi_arrival

let test_service_view_guard () =
  (* v_r + delta_r k = alpha_r + beta_r (k - 1) hits zero inside the state
     space for a finite-source class whose sources can be exhausted; the
     equivalent service rate would be infinite/negative there. *)
  let model =
    Crossbar.Model.square ~size:6
      ~classes:[ bernoulli ~sources:2 ~rate:0.5 () ]
  in
  check_raises_invalid "exhausted source rate" (fun () ->
      ignore (Chain.service_view_chain model))

let test_log_weight_consistency () =
  (* pi(k) recomputed from individual weights must match distribution. *)
  let model = mixed_model ~inputs:4 ~outputs:5 in
  let space, pi = Brute.distribution model in
  let log_g =
    Brute.log_g model ~inputs:(Model.inputs model)
      ~outputs:(Model.outputs model)
  in
  State_space.iter space (fun i k ->
      let lw =
        Brute.log_weight model ~inputs:4 ~outputs:5 (Array.copy k)
      in
      check_close "pi from weight" pi.(i) (exp (lw -. log_g)) ~tol:1e-10)

let test_empty_load_degenerate () =
  (* Zero arrival rate: all mass on the empty state. *)
  let model = Model.square ~size:3 ~classes:[ poisson 0. ] in
  let space, pi = Brute.distribution model in
  State_space.iter space (fun i k ->
      if k.(0) = 0 then check_close "empty state" 1. pi.(i)
      else check_close "loaded state" 0. pi.(i))

let test_finite_source_truncation () =
  (* A Bernoulli class with S sources puts zero mass above k = S. *)
  let model =
    Model.square ~size:6 ~classes:[ bernoulli ~sources:2 ~rate:0.5 () ]
  in
  let space, pi = Brute.distribution model in
  State_space.iter space (fun i k ->
      if k.(0) > 2 then check_close "beyond sources" 0. pi.(i))

let test_rectangular_min_constraint () =
  (* Gamma(N) is capped by min(N1, N2): a 2x9 switch holds at most 2
     single-bandwidth connections. *)
  let model =
    Model.create ~inputs:2 ~outputs:9 ~classes:[ poisson ~name:"t" 5.0 ]
  in
  let space, _ = Brute.distribution model in
  check_int "capacity-limited states" 3 (State_space.size space)

let test_gamma_shape_multirate () =
  let model =
    Model.square ~size:5
      ~classes:[ poisson ~name:"a1" 0.1; poisson ~name:"a2" ~bandwidth:2 0.1 ]
  in
  let space = Model.state_space model in
  (* k1 + 2 k2 <= 5: k2=0 -> 6, k2=1 -> 4, k2=2 -> 2. *)
  check_int "Gamma(N) size" 12 (State_space.size space)

let () =
  Alcotest.run "product-form"
    [
      ( "soundness",
        [
          case "distribution normalised" test_distribution_normalised;
          case "product form = exact chain solve" test_product_form_vs_gth;
          case "reversibility" test_reversibility;
          case "state-dependent-service equivalence"
            test_service_view_equivalence;
          case "service view guard" test_service_view_guard;
          case "log weight consistency" test_log_weight_consistency;
        ] );
      ( "structure",
        [
          case "zero load degenerate" test_empty_load_degenerate;
          case "finite source truncation" test_finite_source_truncation;
          case "rectangular min constraint" test_rectangular_min_constraint;
          case "multirate Gamma shape" test_gamma_shape_multirate;
        ] );
    ]
