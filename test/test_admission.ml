open Helpers
module Model = Crossbar.Model
module Admission = Crossbar.Admission
module Measures = Crossbar.Measures
module Simulator = Crossbar_sim.Simulator

let test_unrestricted_equals_product_form () =
  (* The guarded-chain solver with no guard must reproduce the product
     form exactly — a strong cross-check of the non-product machinery. *)
  List.iter
    (fun (label, model) ->
      let exact = Crossbar.Brute.solve model in
      let controlled = Admission.solve model ~policy:Admission.unrestricted in
      Array.iteri
        (fun r (c : Measures.per_class) ->
          check_close (label ^ ": B")
            c.Measures.non_blocking
            controlled.Measures.per_class.(r).Measures.non_blocking ~tol:1e-10;
          check_close (label ^ ": E")
            c.Measures.concurrency
            controlled.Measures.per_class.(r).Measures.concurrency ~tol:1e-10)
        exact.Measures.per_class)
    (validation_models ())

let test_full_thresholds_equal_unrestricted () =
  let model = mixed_model ~inputs:5 ~outputs:5 in
  let policy =
    Admission.trunk_reservation ~thresholds:[| 5; 5; 5 |]
  in
  let a = Admission.solve model ~policy in
  let b = Admission.solve model ~policy:Admission.unrestricted in
  Array.iteri
    (fun r (c : Measures.per_class) ->
      check_close "same B" c.Measures.non_blocking
        b.Measures.per_class.(r).Measures.non_blocking ~tol:1e-12)
    a.Measures.per_class

let protection_model =
  lazy
    (Model.square ~size:8
       ~classes:
         [
           poisson ~name:"thin" 2.0;
           poisson ~name:"wide" ~bandwidth:2 1.0;
         ])

let test_trunk_reservation_protects_wide_class () =
  let model = Lazy.force protection_model in
  let free = Admission.solve model ~policy:Admission.unrestricted in
  (* Thin traffic may not push the load beyond 4 ports; wide unrestricted. *)
  let policy = Admission.trunk_reservation ~thresholds:[| 4; 8 |] in
  let reserved = Admission.solve model ~policy in
  let blocking m name = (Measures.class_named m name).Measures.blocking in
  check_bool "wide improves" true
    (blocking reserved "wide" < blocking free "wide");
  check_bool "thin pays" true
    (blocking reserved "thin" > blocking free "thin");
  (* A finding worth pinning: the improvement is real but *small* (<1
     percentage point here), because unbuffered-crossbar blocking is
     dominated by collisions on the randomly chosen port sets, not by
     total-capacity exhaustion — load thresholds cannot buy back the
     multi-rate penalty of Figure 4.  (Contrast with trunked links, where
     reservation is very effective.) *)
  let improvement = blocking free "wide" -. blocking reserved "wide" in
  check_bool "improvement modest" true
    (improvement > 1e-4 && improvement < 0.05)

let test_reachability_restriction () =
  let model = Lazy.force protection_model in
  (* Nobody may exceed load 4: states above are unreachable. *)
  let policy = Admission.trunk_reservation ~thresholds:[| 4; 4 |] in
  let chain, members = Admission.chain model ~policy in
  let space = Model.state_space model in
  check_bool "restricted" true
    (Array.length members < Crossbar_markov.State_space.size space);
  Array.iter
    (fun i ->
      check_bool "within threshold" true
        (Crossbar_markov.State_space.load space i <= 4))
    members;
  check_int "chain size matches" (Array.length members)
    (Crossbar_markov.Ctmc.num_states chain)

let test_controlled_chain_not_reversible () =
  (* Trunk reservation breaks reversibility (hence the product form) —
     demonstrate it. *)
  let model = Lazy.force protection_model in
  let policy = Admission.trunk_reservation ~thresholds:[| 5; 8 |] in
  let chain, _ = Admission.chain model ~policy in
  let pi = Crossbar_markov.Ctmc.solve_gth chain in
  check_bool "detailed balance broken" true
    (Crossbar_markov.Ctmc.detailed_balance_violation chain ~pi > 1e-6)

let test_simulator_applies_policy () =
  let model = Lazy.force protection_model in
  let policy = Admission.trunk_reservation ~thresholds:[| 5; 8 |] in
  let exact = Admission.solve model ~policy in
  let result =
    Simulator.run
      {
        (Simulator.default_config model) with
        admission = policy;
        horizon = 4e4;
        warmup = 500.;
      }
  in
  Array.iteri
    (fun r (c : Measures.per_class) ->
      let sim = result.Simulator.per_class.(r) in
      check_abs
        (c.Measures.name ^ ": controlled congestion")
        c.Measures.blocking sim.Simulator.time_congestion.point
        ~tol:(Float.max 0.012 (5. *. sim.Simulator.time_congestion.halfwidth));
      check_abs
        (c.Measures.name ^ ": controlled concurrency")
        c.Measures.concurrency sim.Simulator.concurrency.point
        ~tol:(Float.max 0.03 (5. *. sim.Simulator.concurrency.halfwidth)))
    exact.Measures.per_class

let test_custom_policy () =
  (* Admit the bursty class only on an idle switch. *)
  let model =
    Model.square ~size:4
      ~classes:[ poisson ~name:"base" 0.5; pascal ~name:"burst" ~alpha:0.4 ~beta:0.2 () ]
  in
  let policy =
    Admission.custom ~describe:"bursty-on-idle"
      (fun ~class_index ~load ~bandwidth:_ -> class_index = 0 || load = 0)
  in
  let controlled = Admission.solve model ~policy in
  let free = Admission.solve model ~policy:Admission.unrestricted in
  check_bool "bursty suppressed" true
    ((Measures.class_named controlled "burst").Measures.concurrency
    < (Measures.class_named free "burst").Measures.concurrency);
  check_bool "describe" true
    (String.equal (Admission.describe policy) "bursty-on-idle")

let test_validation () =
  check_raises_invalid "negative threshold" (fun () ->
      ignore (Admission.trunk_reservation ~thresholds:[| -1 |]));
  let model = mixed_model ~inputs:4 ~outputs:4 in
  let short = Admission.trunk_reservation ~thresholds:[| 4 |] in
  check_raises_invalid "threshold count" (fun () ->
      ignore (Admission.solve model ~policy:short))

let admission_props =
  [
    QCheck2.Test.make ~name:"unrestricted = product form (random models)"
      ~count:60 Helpers.random_model_gen (fun model ->
        let exact = Crossbar.Brute.solve model in
        let controlled =
          Admission.solve model ~policy:Admission.unrestricted
        in
        Array.for_all2
          (fun (a : Measures.per_class) (b : Measures.per_class) ->
            Float.abs (a.Measures.non_blocking -. b.Measures.non_blocking)
            < 1e-9
            && Float.abs (a.Measures.concurrency -. b.Measures.concurrency)
               < 1e-9 *. Float.max 1. a.Measures.concurrency)
          exact.Measures.per_class controlled.Measures.per_class);
    QCheck2.Test.make ~name:"thresholds only reduce concurrency" ~count:60
      QCheck2.Gen.(pair Helpers.random_model_gen (int_range 1 4))
      (fun (model, threshold) ->
        let free = Admission.solve model ~policy:Admission.unrestricted in
        let policy =
          Admission.trunk_reservation
            ~thresholds:(Array.make (Crossbar.Model.num_classes model) threshold)
        in
        let restricted = Admission.solve model ~policy in
        restricted.Measures.busy_ports
        <= free.Measures.busy_ports +. 1e-9);
  ]

let () =
  Alcotest.run "admission"
    [
      ("properties", List.map qcheck admission_props);
      ( "admission",
        [
          case "unrestricted = product form" test_unrestricted_equals_product_form;
          case "full thresholds" test_full_thresholds_equal_unrestricted;
          case "reservation protects wide class"
            test_trunk_reservation_protects_wide_class;
          case "reachability" test_reachability_restriction;
          case "reversibility broken" test_controlled_chain_not_reversible;
          slow_case "simulator applies policy" test_simulator_applies_policy;
          case "custom policy" test_custom_policy;
          case "validation" test_validation;
        ] );
    ]
