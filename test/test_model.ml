open Helpers
module Model = Crossbar.Model
module Traffic = Crossbar.Traffic
module Special = Crossbar_numerics.Special

let test_dimensions () =
  let model = mixed_model ~inputs:6 ~outputs:4 in
  check_int "inputs" 6 (Model.inputs model);
  check_int "outputs" 4 (Model.outputs model);
  check_int "capacity" 4 (Model.capacity model);
  check_int "classes" 3 (Model.num_classes model)

let test_per_pair_scaling () =
  (* alpha_r = alpha~_r / C(N2, a_r). *)
  let model =
    Model.create ~inputs:8 ~outputs:6
      ~classes:
        [
          poisson ~name:"one" ~bandwidth:1 0.6;
          pascal ~name:"two" ~bandwidth:2 ~alpha:0.9 ~beta:0.3 ();
        ]
  in
  check_close "a=1 alpha" (0.6 /. 6.) (Model.alpha model 0);
  check_close "a=2 alpha" (0.9 /. Special.binomial 6 2) (Model.alpha model 1);
  check_close "a=2 beta" (0.3 /. 15.) (Model.beta model 1);
  check_close "rho" (0.6 /. 6.) (Model.rho model 0);
  check_close "beta/mu" (0.3 /. 15.) (Model.beta_over_mu model 1)

let test_arrival_rate () =
  let model =
    Model.square ~size:4 ~classes:[ bernoulli ~sources:3 ~rate:0.4 () ]
  in
  (* per-pair: alpha = 1.2/4 = 0.3, beta = -0.1. *)
  check_close "k=0" 0.3 (Model.arrival_rate model ~class_index:0 ~concurrent:0);
  check_close "k=2" 0.1 (Model.arrival_rate model ~class_index:0 ~concurrent:2);
  check_close "k=3 exhausted" 0.
    (Model.arrival_rate model ~class_index:0 ~concurrent:3);
  check_close "k=5 clamped" 0.
    (Model.arrival_rate model ~class_index:0 ~concurrent:5)

let test_max_concurrent () =
  let model =
    Model.square ~size:9
      ~classes:
        [
          poisson ~name:"wide" ~bandwidth:4 1.0;
          bernoulli ~name:"few" ~sources:2 ~rate:0.1 ();
        ]
  in
  check_int "by capacity" 2 (Model.max_concurrent model 0);
  check_int "by sources" 2 (Model.max_concurrent model 1)

let test_validation () =
  check_raises_invalid "zero inputs" (fun () ->
      ignore (Model.create ~inputs:0 ~outputs:2 ~classes:[ poisson 0.1 ]));
  check_raises_invalid "duplicate names" (fun () ->
      ignore
        (Model.square ~size:2
           ~classes:[ poisson ~name:"x" 0.1; poisson ~name:"x" 0.2 ]));
  (* Bernoulli with non-integral sources reachable inside the space. *)
  check_raises_invalid "non-integral bernoulli" (fun () ->
      ignore
        (Model.square ~size:8
           ~classes:
             [
               Traffic.create ~bandwidth:1 ~alpha:0.8 ~beta:(-0.32)
                 ~service_rate:1. ();
             ]));
  (* The same class is fine when the rate stays positive in-space: with
     size 2 only k <= 2 is reachable and alpha + beta k > 0 there.  The
     per-pair ratio alpha/beta is what matters; C(N2,1) scaling keeps it. *)
  let small =
    Model.square ~size:2
      ~classes:
        [
          Traffic.create ~bandwidth:1 ~alpha:0.8 ~beta:(-0.32) ~service_rate:1. ();
        ]
  in
  check_int "accepted" 1 (Model.num_classes small)

let test_map_class () =
  let model = Model.square ~size:3 ~classes:[ poisson ~name:"a" 0.3 ] in
  let doubled = Model.map_class model 0 (fun c -> Traffic.scale_load c 2.) in
  check_close "mapped" 2. (Model.alpha doubled 0 /. Model.alpha model 0);
  check_raises_invalid "bad index" (fun () ->
      ignore (Model.map_class model 5 Fun.id))

let test_state_space () =
  let model =
    Model.square ~size:4
      ~classes:[ poisson ~name:"a" 0.1; poisson ~name:"b" ~bandwidth:2 0.1 ]
  in
  let space = Model.state_space model in
  (* k1 + 2 k2 <= 4: (5 + 3 + 1) states. *)
  check_int "space size" 9 (Crossbar_markov.State_space.size space);
  (* Cached: same physical space on second call. *)
  check_bool "cached" true (Model.state_space model == space)

let test_is_poisson_groups () =
  let model = mixed_model ~inputs:4 ~outputs:4 in
  check_bool "R1" true (Model.is_poisson model 0);
  check_bool "R2 pascal" false (Model.is_poisson model 1);
  check_bool "R2 bernoulli" false (Model.is_poisson model 2)

let test_bandwidths () =
  let model = mixed_model ~inputs:4 ~outputs:4 in
  check_bool "bandwidths" true (Model.bandwidths model = [| 1; 2; 1 |]);
  check_int "bandwidth 1" 2 (Model.bandwidth model 1);
  check_close "service rate" 0.5 (Model.service_rate model 1)

let () =
  Alcotest.run "model"
    [
      ( "model",
        [
          case "dimensions" test_dimensions;
          case "per-pair scaling" test_per_pair_scaling;
          case "arrival rate" test_arrival_rate;
          case "max concurrent" test_max_concurrent;
          case "validation" test_validation;
          case "map class" test_map_class;
          case "state space" test_state_space;
          case "R1/R2 groups" test_is_poisson_groups;
          case "bandwidths" test_bandwidths;
        ] );
    ]
