open Helpers
module Rule = Crossbar_lint.Rule
module Config = Crossbar_lint.Config
module Finding = Crossbar_lint.Finding
module Sarif = Crossbar_lint.Sarif
module Typed = Crossbar_lint_typed
module Json = Crossbar_engine.Json

(* The typed stage needs real .cmt artifacts, so each suite compiles the
   fixtures with `ocamlc -bin-annot` into a scratch directory obtained
   from [Filename.temp_dir] — never inside the source tree (the
   .gitignore typed_scratch_* pattern is belt and braces for older
   binaries).  [Config.normalize] drops leading slashes consistently on
   both paths and configured prefixes, so absolute scratch paths match
   themselves. *)

(* Order is compile order: [pool.ml] first (the r10/r12 fixtures call
   it), each r9 module before the engine entry that references it, each
   r11/r13 producer module before its consumer. *)
let fixture_files =
  [
    "pool.ml";
    "r7_float_eq.ml";
    "r8_mutable.ml";
    "r9_state.ml";
    "r9_higher_order.ml";
    "r10_capture.ml";
    "r10_indirect.ml";
    "r10_guarded.ml";
    "r11_profile.ml";
    "r11_hot.ml";
    "r11_annotated.ml";
    "r12_raise.ml";
    "logspace.ml";
    "lattice.ml";
    "r13_mix.ml";
    "engine/r9_entry.ml";
    "engine/r9_ho_entry.ml";
  ]

let sh cmd =
  if Sys.command cmd <> 0 then Alcotest.failf "command failed: %s" cmd

let compile dir file =
  sh (Printf.sprintf "ocamlc -bin-annot -I %s -c %s/%s 2>/dev/null" dir dir file)

(* One temp root per logical scratch name, created on first use and
   shared by the suites that reuse the same compiled fixtures. *)
let scratch_roots : (string, string) Hashtbl.t = Hashtbl.create 4

let scratch_dir name =
  match Hashtbl.find_opt scratch_roots name with
  | Some dir -> dir
  | None ->
      let dir = Filename.temp_dir name "" in
      Hashtbl.add scratch_roots name dir;
      dir

let setup dir =
  sh (Printf.sprintf "rm -rf %s" dir);
  sh (Printf.sprintf "mkdir -p %s/engine" dir);
  List.iter
    (fun file ->
      sh (Printf.sprintf "cp lint_typed_fixtures/%s %s/%s" file dir file);
      compile dir file)
    fixture_files

let typed_config ~dir rules =
  {
    Config.default with
    rules;
    numerics_prefixes = [];
    r3_scope = Config.Paths [ dir ];
    r9_roots = [ dir ^ "/engine" ];
    hot_roots =
      [ "R11_hot.combine"; "R11_hot.unsafe_kernel"; "R11_annotated.hot" ];
  }

let index dir =
  Typed.Cmt_index.of_pairs
    (List.map
       (fun file ->
         let base = Filename.remove_extension file in
         (dir ^ "/" ^ file, dir ^ "/" ^ base ^ ".cmt"))
       fixture_files)

let run ~dir ?store rules paths =
  let config = typed_config ~dir rules in
  let store =
    match store with
    | Some store -> store
    | None -> Typed.Store.create ~config_hash:(Config.hash config)
  in
  Typed.Driver.run ~config ~store ~cmt_index:(index dir) ~cmt_root:"." paths

let count rule findings =
  List.length
    (List.filter
       (fun (f : Finding.t) -> Rule.compare f.Finding.rule rule = 0)
       findings)

let contains haystack needle =
  let n = String.length needle in
  let rec search from =
    from + n <= String.length haystack
    && (String.equal (String.sub haystack from n) needle || search (from + 1))
  in
  search 0

let mentions findings needle =
  List.exists
    (fun (f : Finding.t) -> contains f.Finding.message needle)
    findings

(* ---------- per-rule fixtures ---------- *)

let test_r7_exact_count () =
  let dir = scratch_dir "typed_scratch_rules" in
  setup dir;
  let findings, stats =
    run ~dir [ Rule.R7 ] [ dir ^ "/r7_float_eq.ml" ]
  in
  check_int "r7: analysed" 1 stats.Typed.Driver.files;
  check_bool "r7: no missing cmt" true (stats.Typed.Driver.missing_cmt = []);
  check_bool "r7: no errors" true (stats.Typed.Driver.errors = []);
  check_int "r7: count" 5 (List.length findings);
  check_int "r7: all R7" 5 (count Rule.R7 findings)

let test_r8_exact_count () =
  let dir = scratch_dir "typed_scratch_rules" in
  let findings, _ = run ~dir [ Rule.R8 ] [ dir ^ "/r8_mutable.ml" ] in
  check_int "r8: count" 6 (List.length findings);
  check_int "r8: all R8" 6 (count Rule.R8 findings)

let test_r9_exact_count () =
  let dir = scratch_dir "typed_scratch_rules" in
  let findings, _ =
    run ~dir [ Rule.R9 ]
      [ dir ^ "/r9_state.ml"; dir ^ "/engine/r9_entry.ml" ]
  in
  check_int "r9: count" 2 (List.length findings);
  check_int "r9: all R9" 2 (count Rule.R9 findings);
  List.iter
    (fun (f : Finding.t) ->
      check_bool "r9: lands on the file holding the write" true
        (String.equal f.Finding.file (dir ^ "/r9_state.ml")))
    findings;
  check_bool "r9: names the ref write" true (mentions findings "hits");
  check_bool "r9: names the record field write" true
    (mentions findings "stats.total")

(* ---------- v3 capture stage: R10 and R9's higher-order closure ---------- *)

let test_r10_exact_count () =
  let dir = scratch_dir "typed_scratch_rules" in
  let findings, stats = run ~dir [ Rule.R10 ] [ dir ^ "/r10_capture.ml" ] in
  check_bool "r10: no missing cmt" true (stats.Typed.Driver.missing_cmt = []);
  check_bool "r10: no errors" true (stats.Typed.Driver.errors = []);
  check_int "r10: count" 3 (List.length findings);
  check_int "r10: all R10" 3 (count Rule.R10 findings);
  check_bool "r10: literal lambda capture" true (mentions findings "totals");
  check_bool "r10: record-stored closure capture" true (mentions findings "log");
  check_bool "r10: partial-application capture" true
    (mentions findings "sink (a mutable");
  check_bool "r10: sanctioned Atomic stays clean" true
    (not (mentions findings "counter"))

let test_r10_indirect_chain () =
  let dir = scratch_dir "typed_scratch_rules" in
  let findings, _ = run ~dir [ Rule.R10 ] [ dir ^ "/r10_indirect.ml" ] in
  check_int "indirect: count" 1 (List.length findings);
  check_bool "indirect: names the capture" true (mentions findings "slots");
  check_bool "indirect: witnesses the forwarding chain" true
    (mentions findings "spawn_all -> Pool.run")

let test_r10_guarded_and_suppressed () =
  let dir = scratch_dir "typed_scratch_guard" in
  setup dir;
  let target = dir ^ "/r10_guarded.ml" in
  let findings, _ = run ~dir [ Rule.R10 ] [ target ] in
  check_int "guarded: clean" 0 (List.length findings);
  (* Reverting the guarded= annotation must bring the escape back with
     exactly its capture chain — the same regression the annotation in
     lib/serve/batcher.ml is protected by. *)
  let text = In_channel.with_open_bin target In_channel.input_all in
  let stripped =
    String.split_on_char '\n' text
    |> List.filter (fun line -> not (contains line "guarded="))
    |> String.concat "\n"
  in
  Out_channel.with_open_bin target (fun oc ->
      Out_channel.output_string oc stripped);
  compile dir "r10_guarded.ml";
  let findings, _ = run ~dir [ Rule.R10 ] [ target ] in
  check_int "stripped: the escape returns" 1 (List.length findings);
  check_bool "stripped: names groups" true
    (mentions findings "groups (an array)");
  check_bool "stripped: names requests" true
    (mentions findings "requests (an array)");
  check_bool "stripped: names the boundary" true (mentions findings "Pool.run");
  check_bool "stripped: disable=R10 still suppresses" true
    (not (mentions findings "noisy"))

let annotated_sites =
  [
    ("../lib/engine/pool.ml", "guarded=results");
    ("../lib/engine/sweep.ml", "guarded=points");
    ("../lib/engine/sweep.ml", "guarded=starts,points");
    ("../lib/serve/batcher.ml", "guarded=groups,requests");
    ("../lib/serve/batcher.ml", "guarded=shared");
    ("../lib/core/band_pool.ml", "guarded=mb");
    ("../lib/core/convolution.ml", "guarded=ctx,left,right,result");
  ]

let test_tree_annotations_present () =
  (* The cleaned tree passes R10 through these directives; losing one
     would resurface the finding in `dune build @lint` — this pins them
     so an accidental edit fails fast with a named site. *)
  List.iter
    (fun (file, directive) ->
      let text = In_channel.with_open_bin file In_channel.input_all in
      check_bool (file ^ " keeps " ^ directive) true (contains text directive))
    annotated_sites

(* Every [alloc=] directive sanctioning a hot-path allocation in the
   tree, with the minimum count per file.  The strip regression in
   [test_r11_annotated_strip] proves the mechanism (remove a directive,
   the finding returns at its site); this pins the real sites so losing
   one fails here *and* in `dune build @lint`. *)
let alloc_annotated_files =
  [
    ("../lib/core/convolution.ml", 14);
    ("../lib/core/band_pool.ml", 3);
    ("../lib/core/lattice.ml", 3);
    ("../lib/core/model.ml", 1);
    ("../lib/numerics/kahan.ml", 1);
    ("../lib/numerics/special.ml", 1);
  ]

let test_tree_alloc_annotations_present () =
  List.iter
    (fun (file, expected) ->
      let text = In_channel.with_open_bin file In_channel.input_all in
      let count =
        List.length
          (List.filter
             (fun line -> contains line "alloc=")
             (String.split_on_char '\n' text))
      in
      check_bool
        (Printf.sprintf "%s keeps >= %d alloc= directives" file expected)
        true (count >= expected))
    alloc_annotated_files

let test_r9_higher_order () =
  let dir = scratch_dir "typed_scratch_rules" in
  let findings, _ =
    run ~dir [ Rule.R9 ]
      [ dir ^ "/r9_higher_order.ml"; dir ^ "/engine/r9_ho_entry.ml" ]
  in
  check_int "r9 ho: only the control is flagged" 1 (List.length findings);
  check_bool "r9 ho: names the unlocked write" true (mentions findings "total");
  check_bool "r9 ho: wrapper-run callbacks stay clean" true
    (not (mentions findings "counter"))

(* ---------- v4 effect stage: R11, R12, R13 ---------- *)

let test_r11_exact_count () =
  let dir = scratch_dir "typed_scratch_rules" in
  let findings, _ =
    run ~dir [ Rule.R11 ] [ dir ^ "/r11_profile.ml"; dir ^ "/r11_hot.ml" ]
  in
  check_int "r11: count" 8 (List.length findings);
  check_int "r11: all R11" 8 (count Rule.R11 findings);
  (* Every boxed-allocation kind appears exactly where planted... *)
  check_bool "r11: boxed float" true (mentions findings "boxed float (box)");
  check_bool "r11: int ref is a record" true (mentions findings "record (cell)");
  check_bool "r11: closure" true (mentions findings "closure (bump)");
  check_bool "r11: tuple via the call chain" true
    (mentions findings "R11_hot.combine -> R11_profile.pair allocates a tuple");
  check_bool "r11: record via the call chain" true
    (mentions findings "R11_hot.combine -> R11_profile.fresh allocates a record");
  check_bool "r11: non-flat array" true (mentions findings "array (ints)");
  check_bool "r11: partial application" true
    (mentions findings "partial application (applied)");
  check_bool "r11: closure over unsafe-access scratch" true
    (mentions findings "closure (read)");
  (* ...and nothing else: float arrays are flat, [off_path] is unreached. *)
  check_bool "r11: float arrays stay clean" true
    (not (mentions findings "flat"));
  check_bool "r11: unsafe kernel scratch stays clean" true
    (not (mentions findings "array (scratch)"));
  check_bool "r11: unreached functions stay clean" true
    (not (mentions findings "spare"))

let test_r11_annotated_strip () =
  let dir = scratch_dir "typed_scratch_effects" in
  setup dir;
  let target = dir ^ "/r11_annotated.ml" in
  let findings, _ = run ~dir [ Rule.R11 ] [ target ] in
  check_int "annotated: clean" 0 (List.length findings);
  (* Reverting the alloc= directive must bring the allocation back at
     exactly its site — the regression the directives in
     lib/core/convolution.ml are protected by. *)
  let text = In_channel.with_open_bin target In_channel.input_all in
  let stripped =
    String.split_on_char '\n' text
    |> List.filter (fun line -> not (contains line "alloc="))
    |> String.concat "\n"
  in
  Out_channel.with_open_bin target (fun oc ->
      Out_channel.output_string oc stripped);
  compile dir "r11_annotated.ml";
  let findings, _ = run ~dir [ Rule.R11 ] [ target ] in
  check_int "stripped: the allocation returns" 1 (List.length findings);
  check_bool "stripped: names the cell" true
    (mentions findings "boxed float (acc)");
  check_bool "stripped: names the root" true
    (mentions findings "R11_annotated.hot")

let test_r12_exact_count () =
  let dir = scratch_dir "typed_scratch_rules" in
  let findings, stats =
    run ~dir [ Rule.R12 ] [ dir ^ "/pool.ml"; dir ^ "/r12_raise.ml" ]
  in
  check_int "r12: count" 2 (List.length findings);
  check_int "r12: all R12" 2 (count Rule.R12 findings);
  check_bool "r12: direct raise in the lambda" true
    (mentions findings "raise of Overflow escapes through the lambda direct");
  check_bool "r12: escaping callee via the fixpoint" true
    (mentions findings "risky, called from the lambda indirect");
  check_bool "r12: lambda-local handler stays clean" true
    (not (mentions findings "guarded"));
  check_bool "r12: total callees stay clean" true
    (not (mentions findings "lambda safe"));
  check_bool "r12: fixpoint iterated" true
    (stats.Typed.Driver.raise_iterations >= 1)

let test_r13_exact_count () =
  let dir = scratch_dir "typed_scratch_rules" in
  let findings, stats =
    run ~dir [ Rule.R13 ]
      [ dir ^ "/logspace.ml"; dir ^ "/lattice.ml"; dir ^ "/r13_mix.ml" ]
  in
  check_int "r13: count" 6 (List.length findings);
  check_int "r13: all R13" 6 (count Rule.R13 findings);
  check_bool "r13: log + linear add" true
    (mentions findings "bad_add adds/subtracts log-domain and linear-domain");
  check_bool "r13: linear - log sub" true
    (mentions findings "bad_sub adds/subtracts linear-domain and log-domain");
  check_bool "r13: return domain resolved across the call edge" true
    (mentions findings "indirect_add adds/subtracts log-domain");
  check_bool "r13: double exp" true (mentions findings "double_exp");
  check_bool "r13: cross-profile mantissa compare" true
    (mentions findings "cross_cmp orders rescaled mantissas");
  check_bool "r13: unchecked accessor is a mantissa producer too" true
    (mentions findings "cross_unsafe_cmp orders rescaled mantissas");
  check_bool "r13: single-domain functions stay clean" true
    (not (mentions findings "ok_"));
  check_bool "r13: fixpoint iterated" true
    (stats.Typed.Driver.domain_iterations >= 1)

let effect_rules = [ Rule.R11; Rule.R12; Rule.R13 ]

let effect_paths dir =
  [
    dir ^ "/pool.ml";
    dir ^ "/r11_profile.ml";
    dir ^ "/r11_hot.ml";
    dir ^ "/r12_raise.ml";
    dir ^ "/logspace.ml";
    dir ^ "/lattice.ml";
    dir ^ "/r13_mix.ml";
  ]

let test_effects_warm_run () =
  (* The effect fixpoints are global passes over the cached summaries: a
     warm run must re-analyse zero files and still reproduce every
     R11/R12/R13 finding — including through the persisted document,
     which is what proves the /3 schema round-trips effects. *)
  let dir = scratch_dir "typed_scratch_rules" in
  let config = typed_config ~dir effect_rules in
  let config_hash = Config.hash config in
  let store = Typed.Store.create ~config_hash in
  let run_with store =
    Typed.Driver.run ~config ~store ~cmt_index:(index dir) ~cmt_root:"."
      (effect_paths dir)
  in
  let findings1, stats1 = run_with store in
  check_int "cold: misses" 7 stats1.Typed.Driver.misses;
  check_int "cold: r11" 8 (count Rule.R11 findings1);
  check_int "cold: r12" 2 (count Rule.R12 findings1);
  check_int "cold: r13" 6 (count Rule.R13 findings1);
  let findings2, stats2 = run_with store in
  check_int "warm: hits" 7 stats2.Typed.Driver.hits;
  check_int "warm: misses" 0 stats2.Typed.Driver.misses;
  check_bool "warm: identical findings" true (findings1 = findings2);
  let cache_file = Filename.concat dir "effects_store.json" in
  (match Typed.Store.save store cache_file with
  | Ok () -> ()
  | Error m -> Alcotest.failf "save failed: %s" m);
  let reloaded =
    match Typed.Store.load ~config_hash cache_file with
    | Ok store -> store
    | Error m -> Alcotest.failf "load failed: %s" m
  in
  let findings3, stats3 = run_with reloaded in
  check_int "persisted: hits" 7 stats3.Typed.Driver.hits;
  check_int "persisted: misses" 0 stats3.Typed.Driver.misses;
  check_bool "persisted: identical findings" true (findings1 = findings3);
  Sys.remove cache_file

let test_schema_v2_rejected_and_rebuilt () =
  (* A document written under the v3 (/2) schema holds summaries with no
     effect data; the v4 store must treat it as cold — rebuild everything
     — and the rebuilt document must then load warm under /3. *)
  let dir = scratch_dir "typed_scratch_rules" in
  let config = typed_config ~dir effect_rules in
  let config_hash = Config.hash config in
  let store = Typed.Store.create ~config_hash in
  let run_with store =
    Typed.Driver.run ~config ~store ~cmt_index:(index dir) ~cmt_root:"."
      (effect_paths dir)
  in
  let findings1, _ = run_with store in
  let cache_file = Filename.concat dir "schema_store.json" in
  (match Typed.Store.save store cache_file with
  | Ok () -> ()
  | Error m -> Alcotest.failf "save failed: %s" m);
  let text = In_channel.with_open_bin cache_file In_channel.input_all in
  check_bool "document carries the /3 schema" true
    (contains text "crossbar-lint-cache/3");
  (* Forge the previous schema version around otherwise-valid content. *)
  let forged =
    let marker = "crossbar-lint-cache/3" in
    let idx =
      let rec find i =
        if i + String.length marker > String.length text then
          Alcotest.fail "schema marker missing"
        else if String.equal (String.sub text i (String.length marker)) marker
        then i
        else find (i + 1)
      in
      find 0
    in
    String.sub text 0 idx ^ "crossbar-lint-cache/2"
    ^ String.sub text
        (idx + String.length marker)
        (String.length text - idx - String.length marker)
  in
  Out_channel.with_open_bin cache_file (fun oc ->
      Out_channel.output_string oc forged);
  let rejected =
    match Typed.Store.load ~config_hash cache_file with
    | Ok store -> store
    | Error m -> Alcotest.failf "a /2 document must not error, got: %s" m
  in
  check_int "v2 document loads empty" 0 (Typed.Store.size rejected);
  let findings2, stats2 = run_with rejected in
  check_int "rebuild: misses" 7 stats2.Typed.Driver.misses;
  check_bool "rebuild: identical findings" true (findings1 = findings2);
  (match Typed.Store.save rejected cache_file with
  | Ok () -> ()
  | Error m -> Alcotest.failf "re-save failed: %s" m);
  (match Typed.Store.load ~config_hash cache_file with
  | Ok reloaded ->
      check_int "rebuilt document loads warm" 7 (Typed.Store.size reloaded)
  | Error m -> Alcotest.failf "reload failed: %s" m);
  Sys.remove cache_file

(* ---------- incremental cache ---------- *)

let test_cache_hits_and_invalidation () =
  let dir = scratch_dir "typed_scratch_cache" in
  setup dir;
  let config = typed_config ~dir [ Rule.R7 ] in
  let config_hash = Config.hash config in
  let store = Typed.Store.create ~config_hash in
  let run_with store =
    Typed.Driver.run ~config ~store ~cmt_index:(index dir) ~cmt_root:"." [ dir ]
  in
  let findings1, stats1 = run_with store in
  check_int "cold: files" 17 stats1.Typed.Driver.files;
  check_int "cold: hits" 0 stats1.Typed.Driver.hits;
  check_int "cold: misses" 17 stats1.Typed.Driver.misses;
  check_int "cold: r7 findings" 5 (List.length findings1);

  let findings2, stats2 = run_with store in
  check_int "warm: hits" 17 stats2.Typed.Driver.hits;
  check_int "warm: misses" 0 stats2.Typed.Driver.misses;
  check_bool "warm: identical findings" true (findings1 = findings2);

  (* Persistence: the store round-trips through its JSON document. *)
  let cache_file = Filename.concat dir "store.json" in
  (match Typed.Store.save store cache_file with
  | Ok () -> ()
  | Error m -> Alcotest.failf "save failed: %s" m);
  let reloaded =
    match Typed.Store.load ~config_hash cache_file with
    | Ok store -> store
    | Error m -> Alcotest.failf "load failed: %s" m
  in
  check_int "reloaded: size" 17 (Typed.Store.size reloaded);
  let _, stats3 = run_with reloaded in
  check_int "reloaded: hits" 17 stats3.Typed.Driver.hits;

  (* Editing one fixture evicts exactly that entry. *)
  let target = dir ^ "/r7_float_eq.ml" in
  let oc = open_out_gen [ Open_append ] 0o644 target in
  output_string oc "let extra = Float.equal\n";
  close_out oc;
  compile dir "r7_float_eq.ml";
  let findings4, stats4 = run_with reloaded in
  check_int "edited: hits" 16 stats4.Typed.Driver.hits;
  check_int "edited: misses" 1 stats4.Typed.Driver.misses;
  check_int "edited: r7 findings" 6 (List.length findings4);

  (* A config change invalidates the whole persisted document. *)
  let other_hash = Config.hash (typed_config ~dir [ Rule.R8 ]) in
  (match Typed.Store.load ~config_hash:other_hash cache_file with
  | Ok store -> check_int "other config: empty" 0 (Typed.Store.size store)
  | Error m -> Alcotest.failf "load under other config failed: %s" m);
  (* The capture-stage knobs feed the hash too: changing the sink list
     must re-key the document (and so re-run every per-file extraction
     the fixpoint feeds on). *)
  let sink_hash =
    Config.hash
      { (typed_config ~dir [ Rule.R7 ]) with Config.r10_sinks = [ "Exec.go" ] }
  in
  check_bool "r10_sinks feeds the config hash" true
    (not (String.equal config_hash sink_hash));
  (match Typed.Store.load ~config_hash:sink_hash cache_file with
  | Ok store -> check_int "sink config: empty" 0 (Typed.Store.size store)
  | Error m -> Alcotest.failf "load under sink config failed: %s" m);
  Sys.remove cache_file

let test_r10_warm_and_persisted () =
  (* R10 is a global pass recomputed every run from the per-file
     summaries; a warm run (all files cache hits) must reproduce the same
     findings, including through the JSON document — this is what proves
     the v2-to-v2-schema lambda/callsite data round-trips. *)
  let dir = scratch_dir "typed_scratch_r10cache" in
  setup dir;
  let config = typed_config ~dir [ Rule.R10 ] in
  let config_hash = Config.hash config in
  let paths = [ dir ^ "/r10_capture.ml"; dir ^ "/r10_indirect.ml" ] in
  let run_with store =
    Typed.Driver.run ~config ~store ~cmt_index:(index dir) ~cmt_root:"." paths
  in
  let store = Typed.Store.create ~config_hash in
  let findings1, stats1 = run_with store in
  check_int "cold: misses" 2 stats1.Typed.Driver.misses;
  check_int "cold: r10 findings" 4 (count Rule.R10 findings1);
  let findings2, stats2 = run_with store in
  check_int "warm: hits" 2 stats2.Typed.Driver.hits;
  check_int "warm: misses" 0 stats2.Typed.Driver.misses;
  check_bool "warm: identical findings" true (findings1 = findings2);
  let cache_file = Filename.concat dir "store.json" in
  (match Typed.Store.save store cache_file with
  | Ok () -> ()
  | Error m -> Alcotest.failf "save failed: %s" m);
  let reloaded =
    match Typed.Store.load ~config_hash cache_file with
    | Ok store -> store
    | Error m -> Alcotest.failf "load failed: %s" m
  in
  let findings3, stats3 = run_with reloaded in
  check_int "persisted: hits" 2 stats3.Typed.Driver.hits;
  check_bool "persisted: identical findings" true (findings1 = findings3);
  Sys.remove cache_file

(* ---------- SARIF ---------- *)

let sample_findings =
  [
    Finding.make ~rule:Rule.R1 ~file:"lib/core/solver.ml" ~line:10 ~col:4
      "float = against literal";
    Finding.make ~rule:Rule.R7 ~file:"lib/sim/event_heap.ml" ~line:3 ~col:0
      "exact float comparison";
  ]

let test_sarif_document_shape () =
  match Json.of_string (Sarif.to_string sample_findings) with
  | Error m -> Alcotest.failf "SARIF does not re-parse: %s" m
  | Ok json -> (
      check_bool "version" true
        (Json.member "version" json = Some (Json.String "2.1.0"));
      match Json.member "runs" json with
      | Some (Json.List [ run ]) -> (
          (match Json.member "tool" run with
          | Some tool -> (
              match Json.member "driver" tool with
              | Some driver ->
                  check_bool "driver name" true
                    (Json.member "name" driver
                    = Some (Json.String "crossbar-lint"));
                  (* The driver carries the whole catalogue, findings or
                     not — R11-R13 must be advertised to SARIF viewers. *)
                  let rule_ids =
                    match Json.member "rules" driver with
                    | Some (Json.List rules) ->
                        List.filter_map (Json.member "id") rules
                    | _ -> []
                  in
                  check_int "driver rules: full catalogue" 13
                    (List.length rule_ids);
                  List.iter
                    (fun id ->
                      check_bool ("driver rules include " ^ id) true
                        (List.mem (Json.String id) rule_ids))
                    [ "R11"; "R12"; "R13" ]
              | None -> Alcotest.fail "missing tool.driver")
          | None -> Alcotest.fail "missing tool");
          match Json.member "results" run with
          | Some (Json.List results) ->
              check_int "one result per finding" 2 (List.length results);
              List.iter2
                (fun (f : Finding.t) result ->
                  check_bool "ruleId" true
                    (Json.member "ruleId" result
                    = Some (Json.String (Rule.to_string f.Finding.rule))))
                sample_findings results
          | _ -> Alcotest.fail "missing results")
      | _ -> Alcotest.fail "expected exactly one run")

let test_sarif_empty_report () =
  match Json.of_string (Sarif.to_string []) with
  | Error m -> Alcotest.failf "empty SARIF does not re-parse: %s" m
  | Ok json -> (
      match Json.member "runs" json with
      | Some (Json.List [ run ]) ->
          check_bool "empty results" true
            (Json.member "results" run = Some (Json.List []))
      | _ -> Alcotest.fail "expected exactly one run")

(* ---------- config round-trip ---------- *)

let config_gen =
  let open QCheck2.Gen in
  let word = string_size ~gen:(char_range 'a' 'z') (int_range 1 8) in
  let words = list_size (int_range 0 4) word in
  let* mask = list_repeat (List.length Rule.all) bool in
  let rules =
    List.concat
      (List.map2 (fun keep rule -> if keep then [ rule ] else []) mask
         Rule.all)
  in
  let* ordering_literals = list_size (int_range 0 3) (float_range (-4.) 4.) in
  let* scope_is_paths = bool in
  let* scope_prefixes = words in
  let* numerics_prefixes = words in
  let* r2_prefixes = words in
  let* r9_roots = words in
  let* r9_lock_wrappers = words in
  let* r8_mutable_types = words in
  return
    {
      Config.default with
      rules;
      ordering_literals;
      numerics_prefixes;
      r2_prefixes;
      r3_scope =
        (if scope_is_paths then Config.Paths scope_prefixes
         else Config.Reachable_from scope_prefixes);
      r9_roots;
      r9_lock_wrappers;
      r8_mutable_types;
    }

let config_roundtrip =
  QCheck2.Test.make ~name:"config JSON roundtrip" ~count:200 config_gen
    (fun config ->
      match Config.of_json (Config.to_json config) with
      | Ok decoded ->
          decoded = config
          && String.equal (Config.hash decoded) (Config.hash config)
      | Error m -> QCheck2.Test.fail_reportf "of_json failed: %s" m)

let test_config_load_missing_file () =
  match Config.load_file "no/such/lint.json" with
  | Ok config -> check_bool "missing file is default" true (config = Config.default)
  | Error m -> Alcotest.failf "missing file should not error: %s" m

let test_config_load_malformed () =
  let file = "malformed_lint.json" in
  let oc = open_out file in
  output_string oc "{ not json";
  close_out oc;
  (match Config.load_file file with
  | Ok _ -> Alcotest.fail "malformed config accepted"
  | Error _ -> ());
  Sys.remove file

(* ---------- rule list parsing and CLI exit codes ---------- *)

let test_parse_list () =
  (match Rule.parse_list "R1,R9" with
  | Ok [ Rule.R1; Rule.R9 ] -> ()
  | Ok _ -> Alcotest.fail "parse_list R1,R9: wrong rules"
  | Error m -> Alcotest.failf "parse_list R1,R9 failed: %s" m);
  (match Rule.parse_list " R2 , R3 " with
  | Ok [ Rule.R2; Rule.R3 ] -> ()
  | _ -> Alcotest.fail "parse_list tolerates spaces");
  (match Rule.parse_list "R1,R99" with
  | Error m ->
      check_bool "unknown rule named" true
        (String.length m > 0
        && List.exists
             (fun i ->
               i + 3 <= String.length m && String.equal (String.sub m i 3) "R99")
             (List.init (String.length m - 2) Fun.id))
  | Ok _ -> Alcotest.fail "parse_list accepted R99");
  (match Rule.parse_list "R1,,R2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "parse_list accepted an empty piece");
  match Rule.parse_list "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "parse_list accepted an empty list"

let lint_exe = "../bin/crossbar_lint.exe"

let cli_status args =
  Sys.command (Printf.sprintf "%s %s >/dev/null 2>cli_err.txt" lint_exe args)

let cli_stderr () = In_channel.with_open_bin "cli_err.txt" In_channel.input_all

let test_cli_unknown_rule_exits_2 () =
  check_int "exit code" 2 (cli_status "--rules R1,R99");
  let err = cli_stderr () in
  check_bool "stderr names R99" true
    (List.exists
       (fun i ->
         i + 3 <= String.length err && String.equal (String.sub err i 3) "R99")
       (List.init (max 0 (String.length err - 2)) Fun.id));
  Sys.remove "cli_err.txt"

let test_cli_malformed_rules_exits_2 () =
  check_int "empty piece" 2 (cli_status "--rules R1,,R2");
  check_int "empty list" 2 (cli_status "--rules ''");
  check_int "missing argument" 2 (cli_status "--rules");
  Sys.remove "cli_err.txt"

let test_cli_effect_rules_need_typed () =
  (* R11-R13 are closed over .cmt-derived summaries; asking for them
     without --typed would silently lint nothing, so the CLI refuses. *)
  List.iter
    (fun rules ->
      check_int (rules ^ " without --typed") 2
        (cli_status ("--rules " ^ rules)))
    [ "R11"; "R12"; "R13"; "R1,R12" ];
  let err = cli_stderr () in
  check_bool "stderr names --typed" true (contains err "--typed");
  Sys.remove "cli_err.txt"

let () =
  Alcotest.run "lint_typed"
    [
      ( "typed rules",
        [
          case "R7 float comparisons" test_r7_exact_count;
          case "R8 top-level mutable state" test_r8_exact_count;
          case "R9 unlocked reachable writes" test_r9_exact_count;
        ] );
      ( "capture stage",
        [
          case "R10 capture shapes" test_r10_exact_count;
          case "R10 forwarding chain" test_r10_indirect_chain;
          case "R10 guarded= and disable=" test_r10_guarded_and_suppressed;
          case "tree annotations present" test_tree_annotations_present;
          case "R9 higher-order lock wrappers" test_r9_higher_order;
        ] );
      ( "effect stage",
        [
          case "R11 hot-path allocations" test_r11_exact_count;
          case "R11 alloc= directive and strip" test_r11_annotated_strip;
          case "R12 escaping raises" test_r12_exact_count;
          case "R13 cross-domain arithmetic" test_r13_exact_count;
          case "tree alloc= annotations present"
            test_tree_alloc_annotations_present;
        ] );
      ( "incremental cache",
        [
          case "hits, persistence, invalidation" test_cache_hits_and_invalidation;
          case "R10 stable across warm and persisted runs"
            test_r10_warm_and_persisted;
          case "effects stable across warm and persisted runs"
            test_effects_warm_run;
          case "v2 schema rejected and rebuilt under v3"
            test_schema_v2_rejected_and_rebuilt;
        ] );
      ( "sarif",
        [
          case "document shape" test_sarif_document_shape;
          case "empty report" test_sarif_empty_report;
        ] );
      ( "config",
        [
          qcheck config_roundtrip;
          case "missing file falls back to default" test_config_load_missing_file;
          case "malformed file errors" test_config_load_malformed;
        ] );
      ( "rules flag",
        [
          case "parse_list" test_parse_list;
          case "CLI exits 2 on unknown rule" test_cli_unknown_rule_exits_2;
          case "CLI exits 2 on malformed list" test_cli_malformed_rules_exits_2;
          case "CLI exits 2 on effect rules without --typed"
            test_cli_effect_rules_need_typed;
        ] );
    ]
