open Helpers
module Report = Crossbar_workloads.Report
module Paper = Crossbar_workloads.Paper

(* Smoke tests for the rendering layer shared by the CLI and the bench
   harness: each section must produce well-formed TSV with the expected
   row structure (the numeric content is pinned elsewhere). *)

let render f = Format.asprintf "%t" f

let non_comment_lines text =
  String.split_on_char '\n' text
  |> List.filter (fun line ->
         String.length line > 0 && line.[0] <> '#' && line.[0] <> '('
         && String.length line > 1
         && not (String.length line >= 2 && String.sub line 0 2 = "##"))

let columns line = List.length (String.split_on_char '\t' line)

let test_figure_block () =
  let text =
    render (fun ppf -> Report.print_figure ppf ~name:"Figure 1" Paper.figure1)
  in
  let rows = non_comment_lines text in
  (* Header + one row per size. *)
  check_int "rows" (1 + List.length Paper.sizes) (List.length rows);
  let widths = List.map columns rows in
  List.iter
    (fun w -> check_int "uniform columns" (1 + List.length Paper.figure1) w)
    widths

let test_figure_respects_sizes () =
  let text =
    render (fun ppf ->
        Report.print_figure ~sizes:Paper.figure4_sizes ppf ~name:"Figure 4"
          Paper.figure4)
  in
  check_int "figure 4 rows"
    (1 + List.length Paper.figure4_sizes)
    (List.length (non_comment_lines text))

let test_table1_block () =
  let text = render (fun ppf -> Report.print_table1 ppf) in
  let rows = non_comment_lines text in
  check_int "rows" (1 + List.length Paper.table1_sizes) (List.length rows);
  List.iter (fun row -> check_int "three columns" 3 (columns row)) rows

let test_table2_block () =
  let text = render (fun ppf -> Report.print_table2 ppf) in
  let rows = non_comment_lines text in
  (* Per set: header + 9 sizes. *)
  check_int "rows"
    (List.length Paper.table2_sets * (1 + List.length Paper.table2_sizes))
    (List.length rows);
  (* Every numeric row carries measured and printed columns. *)
  List.iter
    (fun row ->
      if String.contains row '|' then check_int "ten columns" 10 (columns row))
    rows

let test_forensics_block () =
  let text = render (fun ppf -> Report.print_forensics ppf) in
  let rows =
    List.filter
      (fun line -> String.contains line '\t')
      (non_comment_lines text)
  in
  (* Header + 2 sizes x 3 sets. *)
  check_int "rows" 7 (List.length rows)

let test_baselines_block () =
  let text = render (fun ppf -> Report.print_baselines ppf) in
  let rows = non_comment_lines text in
  check_int "rows" 5 (List.length rows);
  List.iter (fun row -> check_int "five columns" 5 (columns row)) rows

let () =
  Alcotest.run "report"
    [
      ( "report",
        [
          case "figure block" test_figure_block;
          case "figure sizes" test_figure_respects_sizes;
          case "table 1 block" test_table1_block;
          slow_case "table 2 block" test_table2_block;
          case "forensics block" test_forensics_block;
          case "baselines block" test_baselines_block;
        ] );
    ]
