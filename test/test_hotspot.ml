open Helpers
module Exact = Crossbar_hotspot.Exact
module Matchings = Crossbar_hotspot.Matchings
module Hotspot_sim = Crossbar_hotspot.Sim

(* ---------- matching enumeration ---------- *)

let test_matching_counts () =
  check_int "3x3" 34 (Matchings.count_matchings ~inputs:3 ~outputs:3);
  check_int "4x4" 209 (Matchings.count_matchings ~inputs:4 ~outputs:4);
  check_int "2x5" 31 (Matchings.count_matchings ~inputs:2 ~outputs:5);
  check_int "1x1" 2 (Matchings.count_matchings ~inputs:1 ~outputs:1);
  check_raises_invalid "dimensions" (fun () ->
      ignore (Matchings.count_matchings ~inputs:0 ~outputs:3))

let test_matching_chain_reversible () =
  (* The port-level chain has a product form over edges: detailed balance
     must hold at machine precision even with wildly non-uniform rates. *)
  let result =
    Matchings.solve ~inputs:3 ~rate:0.4 ~weights:[| 9.; 1.; 0.25 |]
      ~service_rate:2. ()
  in
  check_bool "reversible" true (result.Matchings.detailed_balance_violation < 1e-12)

(* ---------- exact (symmetric polynomials) vs enumeration ---------- *)

let test_exact_matches_matchings () =
  List.iter
    (fun (inputs, weights, rate, mu) ->
      let exact = Exact.solve ~inputs ~rate ~weights ~service_rate:mu in
      let brute = Matchings.solve ~inputs ~rate ~weights ~service_rate:mu () in
      check_close "mean busy" brute.Matchings.mean_busy (Exact.mean_busy exact)
        ~tol:1e-10;
      Array.iteri
        (fun j expected ->
          check_close
            (Printf.sprintf "B out%d" j)
            expected
            (Exact.output_non_blocking exact j)
            ~tol:1e-10;
          check_close
            (Printf.sprintf "util out%d" j)
            brute.Matchings.output_utilization.(j)
            (Exact.output_utilization exact j)
            ~tol:1e-10)
        brute.Matchings.output_non_blocking)
    [
      (3, [| 5.; 1.; 1.; 0.5 |], 0.2, 1.3);
      (4, [| 1.; 1.; 1. |], 0.5, 1.0);
      (2, [| 3.; 0.; 1. |], 0.8, 0.7);
      (4, [| 2.; 2.; 1.; 1. |], 0.05, 1.0);
    ]

let test_uniform_reduces_to_paper_model () =
  (* weight = 1 everywhere must reproduce the paper's (uniform) model —
     validating the count-only aggregation the paper relies on. *)
  List.iter
    (fun (n, per_pair_rate) ->
      let exact =
        Exact.solve ~inputs:n ~rate:per_pair_rate
          ~weights:(Array.make n 1.) ~service_rate:1.0
      in
      let model =
        Crossbar.Model.square ~size:n
          ~classes:
            [
              Crossbar.Traffic.poisson ~name:"t" ~bandwidth:1
                ~rate:(per_pair_rate *. float_of_int n)
                ~service_rate:1.0 ();
            ]
      in
      let paper = Crossbar.Solver.solve model in
      let c = paper.Crossbar.Measures.per_class.(0) in
      check_close "non-blocking" c.Crossbar.Measures.non_blocking
        (Exact.output_non_blocking exact 0) ~tol:1e-10;
      check_close "concurrency" c.Crossbar.Measures.concurrency
        (Exact.mean_busy exact) ~tol:1e-10)
    [ (4, 0.1); (16, 0.02); (64, 0.002) ]

(* ---------- qualitative hot-spot behaviour ---------- *)

let test_hot_output_suffers () =
  let exact =
    Exact.hotspot ~inputs:16 ~outputs:16 ~rate:0.02 ~hot_multiplier:8.
      ~service_rate:1.
  in
  let hot = Exact.output_blocking exact 0 in
  let cold = Exact.output_blocking exact 5 in
  check_bool "hot blocks more" true (hot > cold +. 0.05);
  check_bool "hot more utilised" true
    (Exact.output_utilization exact 0 > Exact.output_utilization exact 5);
  (* All cold outputs identical by symmetry. *)
  check_close "cold symmetric" cold (Exact.output_blocking exact 15) ~tol:1e-12

let test_blocking_monotone_in_hotness () =
  let blocking multiplier =
    let exact =
      Exact.hotspot ~inputs:8 ~outputs:8 ~rate:0.05 ~hot_multiplier:multiplier
        ~service_rate:1.
    in
    Exact.output_blocking exact 0
  in
  let previous = ref 0. in
  List.iter
    (fun m ->
      let b = blocking m in
      check_bool "monotone in hotness" true (b >= !previous);
      previous := b)
    [ 1.; 2.; 4.; 8.; 16. ]

let test_hotspot_hurts_everyone () =
  (* Even the cold outputs lose: the hot output's inputs-side congestion
     spills over. *)
  let uniform =
    Exact.hotspot ~inputs:8 ~outputs:8 ~rate:0.05 ~hot_multiplier:1.
      ~service_rate:1.
  in
  let skewed =
    Exact.hotspot ~inputs:8 ~outputs:8 ~rate:0.05 ~hot_multiplier:10.
      ~service_rate:1.
  in
  check_bool "overall worse" true
    (Exact.overall_blocking skewed > Exact.overall_blocking uniform);
  (* The crisp claim: at equal total offered rate, skew reduces carried
     traffic. *)
  let total_weight = 10. +. 7. in
  let uniform_same_load =
    Exact.solve ~inputs:8
      ~rate:(0.05 *. total_weight /. 8.)
      ~weights:(Array.make 8 1.) ~service_rate:1.
  in
  check_bool "skew reduces throughput" true
    (Exact.throughput skewed < Exact.throughput uniform_same_load)

let test_degenerate_cases () =
  let exact = Exact.solve ~inputs:4 ~rate:0. ~weights:[| 1.; 1. |] ~service_rate:1. in
  check_close "no load no blocking" 0. (Exact.output_blocking exact 0);
  check_close "no load no busy" 0. (Exact.mean_busy exact);
  (* A zero-weight output is never requested and never busy. *)
  let exact = Exact.solve ~inputs:3 ~rate:0.5 ~weights:[| 1.; 0. |] ~service_rate:1. in
  check_close "silent output idle" 0. (Exact.output_utilization exact 1);
  check_raises_invalid "negative weight" (fun () ->
      ignore (Exact.solve ~inputs:2 ~rate:1. ~weights:[| -1. |] ~service_rate:1.));
  check_raises_invalid "output range" (fun () ->
      ignore (Exact.output_blocking exact 7))

(* ---------- bipartite generalisation ---------- *)

let test_bipartite_matches_matchings () =
  (* Non-uniform weights on BOTH sides against enumeration. *)
  let input_weights = [| 2.; 1.; 0.5 |] in
  let output_weights = [| 4.; 1.; 1.; 0.25 |] in
  let exact =
    Exact.solve_bipartite ~rate:0.3 ~input_weights ~output_weights
      ~service_rate:1.1
  in
  let brute =
    Matchings.solve ~input_weights ~inputs:3 ~rate:0.3
      ~weights:output_weights ~service_rate:1.1 ()
  in
  check_close "mean busy" brute.Matchings.mean_busy (Exact.mean_busy exact)
    ~tol:1e-10;
  Array.iteri
    (fun j expected ->
      check_close
        (Printf.sprintf "util out%d" j)
        expected
        (Exact.output_utilization exact j)
        ~tol:1e-10)
    brute.Matchings.output_utilization

let test_bipartite_uniform_inputs_reduce () =
  (* input_weights = 1 must reproduce the one-sided solver exactly. *)
  let weights = [| 3.; 1.; 1. |] in
  let one_sided = Exact.solve ~inputs:4 ~rate:0.2 ~weights ~service_rate:1. in
  let two_sided =
    Exact.solve_bipartite ~rate:0.2 ~input_weights:(Array.make 4 1.)
      ~output_weights:weights ~service_rate:1.
  in
  check_close "same G" (Exact.log_normalization one_sided)
    (Exact.log_normalization two_sided) ~tol:1e-12;
  check_close "same hot blocking"
    (Exact.output_blocking one_sided 0)
    (Exact.output_blocking two_sided 0)
    ~tol:1e-12

let test_bipartite_consistency () =
  (* Overall acceptance must equal the weighted average of per-output and
     of per-input acceptances — three independent formulas. *)
  let input_weights = [| 1.; 2.; 3. |] in
  let output_weights = [| 5.; 1.; 1.; 1.; 0.5 |] in
  let exact =
    Exact.solve_bipartite ~rate:0.15 ~input_weights ~output_weights
      ~service_rate:0.8
  in
  let weighted_average weights f =
    let total = Array.fold_left ( +. ) 0. weights in
    let acc = ref 0. in
    Array.iteri (fun j w -> acc := !acc +. (w /. total *. f j)) weights;
    !acc
  in
  let by_output =
    weighted_average output_weights (Exact.output_non_blocking exact)
  in
  let by_input =
    weighted_average input_weights (Exact.input_non_blocking exact)
  in
  check_close "output route" (1. -. Exact.overall_blocking exact) by_output
    ~tol:1e-12;
  check_close "input route" (1. -. Exact.overall_blocking exact) by_input
    ~tol:1e-12;
  (* Busy inputs = busy outputs = mean busy. *)
  let total_in =
    Array.mapi (fun i _ -> Exact.input_utilization exact i) input_weights
    |> Array.fold_left ( +. ) 0.
  in
  let total_out =
    Array.mapi (fun j _ -> Exact.output_utilization exact j) output_weights
    |> Array.fold_left ( +. ) 0.
  in
  check_close "input side mass" (Exact.mean_busy exact) total_in ~tol:1e-12;
  check_close "output side mass" (Exact.mean_busy exact) total_out ~tol:1e-12

(* ---------- simulation referee ---------- *)

let test_sim_matches_exact () =
  let weights = Array.make 12 1. in
  weights.(0) <- 6.;
  let exact = Exact.solve ~inputs:12 ~rate:0.04 ~weights ~service_rate:1. in
  let sim =
    Hotspot_sim.run
      {
        (Hotspot_sim.default_config ~inputs:12 ~rate:0.04 ~weights) with
        horizon = 4e4;
        seed = 3;
      }
  in
  check_abs "overall" (Exact.overall_blocking exact)
    sim.Hotspot_sim.overall_blocking
    ~tol:(Float.max 0.01 (5. *. sim.Hotspot_sim.overall_halfwidth));
  check_abs "hot output" (Exact.output_blocking exact 0)
    sim.Hotspot_sim.per_output_blocking.(0)
    ~tol:0.02;
  check_abs "mean busy" (Exact.mean_busy exact) sim.Hotspot_sim.mean_busy
    ~tol:0.1

let test_sim_mechanics () =
  let weights = [| 2.; 1. |] in
  let config =
    { (Hotspot_sim.default_config ~inputs:2 ~rate:0.3 ~weights) with horizon = 3e3 }
  in
  let a = Hotspot_sim.run config and b = Hotspot_sim.run config in
  check_int "deterministic" a.Hotspot_sim.events b.Hotspot_sim.events;
  check_bool "accepted <= offered" true
    (a.Hotspot_sim.accepted <= a.Hotspot_sim.offered);
  check_raises_invalid "bad horizon" (fun () ->
      ignore (Hotspot_sim.run { config with horizon = 0. }));
  check_raises_invalid "bad weights" (fun () ->
      ignore
        (Hotspot_sim.run
           (Hotspot_sim.default_config ~inputs:2 ~rate:0.3 ~weights:[| -1. |])))

let () =
  Alcotest.run "hotspot"
    [
      ( "matchings",
        [
          case "counts" test_matching_counts;
          case "reversible" test_matching_chain_reversible;
        ] );
      ( "exact",
        [
          case "matches enumeration" test_exact_matches_matchings;
          case "uniform = paper model" test_uniform_reduces_to_paper_model;
          case "degenerate cases" test_degenerate_cases;
        ] );
      ( "behaviour",
        [
          case "hot output suffers" test_hot_output_suffers;
          case "monotone in hotness" test_blocking_monotone_in_hotness;
          case "skew hurts throughput" test_hotspot_hurts_everyone;
        ] );
      ( "bipartite",
        [
          case "matches enumeration" test_bipartite_matches_matchings;
          case "uniform inputs reduce" test_bipartite_uniform_inputs_reduce;
          case "consistency" test_bipartite_consistency;
        ] );
      ( "simulation",
        [
          slow_case "matches exact" test_sim_matches_exact;
          case "mechanics" test_sim_mechanics;
        ] );
    ]
