open Helpers
module Model = Crossbar.Model
module Brute = Crossbar.Brute
module Convolution = Crossbar.Convolution
module Mva = Crossbar.Mva
module Solver = Crossbar.Solver
module Measures = Crossbar.Measures

let check_measures_equal ?(tol = 1e-9) label (a : Measures.t) (b : Measures.t) =
  Array.iteri
    (fun r (ca : Measures.per_class) ->
      let cb = b.Measures.per_class.(r) in
      check_close
        (Printf.sprintf "%s: B[%s]" label ca.Measures.name)
        ca.Measures.non_blocking cb.Measures.non_blocking ~tol;
      check_close
        (Printf.sprintf "%s: E[%s]" label ca.Measures.name)
        ca.Measures.concurrency cb.Measures.concurrency ~tol)
    a.Measures.per_class;
  check_close (label ^ ": busy ports") a.Measures.busy_ports b.Measures.busy_ports
    ~tol

(* ---------- Algorithm 1 (convolution) vs enumeration ---------- *)

let test_convolution_matches_brute () =
  List.iter
    (fun (label, model) ->
      check_measures_equal label (Brute.solve model)
        (Convolution.measures (Convolution.solve model)))
    (validation_models ())

let test_convolution_log_g_lattice () =
  (* Every lattice point must equal the enumerated G(n1, n2). *)
  let model = mixed_model ~inputs:5 ~outputs:4 in
  let solved = Convolution.solve model in
  for n1 = 0 to 5 do
    for n2 = 0 to 4 do
      check_close
        (Printf.sprintf "log G(%d,%d)" n1 n2)
        (Brute.log_g model ~inputs:n1 ~outputs:n2)
        (Convolution.log_g solved ~inputs:n1 ~outputs:n2)
        ~tol:1e-10
    done
  done

(* ---------- Algorithm 2 (MVA) vs Algorithm 1 ---------- *)

let test_mva_matches_convolution () =
  List.iter
    (fun (label, model) ->
      check_measures_equal label
        (Convolution.measures (Convolution.solve model))
        (Mva.measures (Mva.solve model)))
    (validation_models ())

let test_mva_ratio_lattice () =
  let model = mixed_model ~inputs:4 ~outputs:5 in
  let solved = Mva.solve model in
  for n1 = 1 to 4 do
    for n2 = 0 to 5 do
      let expected =
        exp
          (Brute.log_g model ~inputs:(n1 - 1) ~outputs:n2
          -. Brute.log_g model ~inputs:n1 ~outputs:n2)
        *. float_of_int n1
      in
      check_close
        (Printf.sprintf "F1(%d,%d)" n1 n2)
        expected
        (Mva.f1 solved ~inputs:n1 ~outputs:n2)
        ~tol:1e-10
    done
  done

let test_mva_log_normalization () =
  List.iter
    (fun (label, model) ->
      check_close
        (label ^ ": log G")
        (Brute.log_g model ~inputs:(Model.inputs model)
           ~outputs:(Model.outputs model))
        (Mva.log_normalization (Mva.solve model))
        ~tol:1e-10)
    (validation_models ())

let test_as_printed_diverges () =
  (* Executable documentation: the literally-typeset equation (19) is not
     the corrected recurrence (it departs once the bursty class has any
     weight at depth >= 1). *)
  let model =
    Model.square ~size:8 ~classes:[ pascal ~alpha:0.4 ~beta:0.2 () ]
  in
  let good = (Mva.measures (Mva.solve model)).Measures.per_class.(0) in
  let bad =
    (Mva.measures (Mva.solve ~d_recurrence:Mva.As_printed model))
      .Measures.per_class.(0)
  in
  check_bool "printed equation is wrong" true
    (Float.abs (good.Measures.non_blocking -. bad.Measures.non_blocking)
    > 1e-3)

(* ---------- large systems and stability ---------- *)

let test_large_poisson_agreement () =
  (* N = 200: far beyond enumeration; the two recurrences must agree. *)
  let model = Crossbar_workloads.Paper.operating_point_model 200 in
  check_measures_equal ~tol:1e-9 "N=200"
    (Convolution.measures (Convolution.solve model))
    (Mva.measures (Mva.solve model))

let test_large_mixed_agreement () =
  let model =
    Model.square ~size:150
      ~classes:
        [
          poisson ~name:"p" 0.15;
          pascal ~name:"burst" ~alpha:0.1 ~beta:0.05 ();
          poisson ~name:"wide" ~bandwidth:2 0.2;
        ]
  in
  check_measures_equal ~tol:1e-8 "N=150 mixed"
    (Convolution.measures (Convolution.solve model))
    (Mva.measures (Mva.solve model))

let test_no_rescale_at_paper_sizes () =
  let solved =
    Convolution.solve (Crossbar_workloads.Paper.operating_point_model 128)
  in
  check_int "no dynamic rescale needed" 0 (Convolution.rescale_count solved)

let test_dynamic_scaling_fires_and_stays_correct () =
  (* Utilisation-saturating load on a large switch drives G out of the
     double range; Algorithm 1 must rescale yet still agree with MVA
     (which never needs scaling). *)
  let model =
    Model.square ~size:300 ~classes:[ poisson ~name:"hot" 2000.0 ]
  in
  let conv = Convolution.solve model in
  check_bool "rescale fired" true (Convolution.rescale_count conv > 0);
  check_measures_equal ~tol:1e-8 "scaled vs mva" (Convolution.measures conv)
    (Mva.measures (Mva.solve model))

let test_flushed_entry_detected () =
  (* Extreme load on a large switch forces repeated rescales; entries near
     the origin underflow to zero.  log_g must refuse them loudly instead
     of returning -inf into downstream blocking/revenue arithmetic. *)
  let model = Model.square ~size:64 ~classes:[ poisson ~name:"hot" 1e12 ] in
  let solved = Convolution.solve model in
  check_bool "multiple rescales fired" true
    (Convolution.rescale_count solved >= 2);
  check_raises_failure "flushed origin refused" (fun () ->
      ignore (Convolution.log_g solved ~inputs:0 ~outputs:0));
  (* The corner — and therefore every measure — stays exact and finite. *)
  check_bool "corner finite" true
    (Float.is_finite (Convolution.log_normalization solved));
  Array.iter
    (fun (c : Measures.per_class) ->
      check_bool "finite blocking" true (Float.is_finite c.Measures.blocking);
      check_bool "finite concurrency" true
        (Float.is_finite c.Measures.concurrency))
    (Convolution.measures solved).Measures.per_class

(* ---------- special cases with closed forms ---------- *)

let test_single_row_is_erlang () =
  (* A 1 x M crossbar with one a=1 Poisson class is an Erlang loss system
     with one server and offered load M rho. *)
  let m = 7 and rho_tilde = 0.8 in
  let model =
    Model.create ~inputs:1 ~outputs:m
      ~classes:[ poisson ~name:"t" rho_tilde ]
  in
  let measures = Solver.solve ~algorithm:Solver.Brute_force model in
  (* per-pair rho = rho~/M; offered to the single input = M * per-pair *)
  let offered = rho_tilde in
  let expected_blocking = offered /. (1. +. offered) in
  check_close "erlang-1 blocking" expected_blocking
    measures.Measures.per_class.(0).Measures.blocking ~tol:1e-12

let test_two_by_two_hand_computed () =
  (* G(2,2) = 1 + 4 rho + 2 rho^2 for a single a=1 Poisson class with
     per-pair load rho; B = G(1,1)/G(2,2). *)
  let rho_tilde = 0.6 in
  let rho = rho_tilde /. 2. in
  let model = Model.square ~size:2 ~classes:[ poisson rho_tilde ] in
  let g22 = 1. +. (4. *. rho) +. (2. *. rho *. rho) in
  let g11 = 1. +. rho in
  let measures = Solver.solve ~algorithm:Solver.Convolution model in
  check_close "hand-computed B" (g11 /. g22)
    measures.Measures.per_class.(0).Measures.non_blocking ~tol:1e-12;
  (* E = rho * N1 N2 * B for a = 1. *)
  check_close "hand-computed E"
    (rho *. 4. *. g11 /. g22)
    measures.Measures.per_class.(0).Measures.concurrency ~tol:1e-12

let test_solver_dispatch () =
  let model = Model.square ~size:4 ~classes:[ poisson 0.5 ] in
  let reference = Brute.solve model in
  List.iter
    (fun algorithm ->
      check_measures_equal
        (Solver.algorithm_to_string algorithm)
        reference
        (Solver.solve ~algorithm model))
    [ Solver.Brute_force; Solver.Convolution; Solver.Mean_value ];
  check_bool "recommended small" true
    (Solver.recommended model = Solver.Convolution);
  check_bool "recommended large" true
    (Solver.recommended (Crossbar_workloads.Paper.operating_point_model 64)
    = Solver.Mean_value);
  (match Solver.algorithm_of_string "mva" with
  | Ok Solver.Mean_value -> ()
  | _ -> Alcotest.fail "algorithm_of_string mva");
  match Solver.algorithm_of_string "nonsense" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "nonsense algorithm accepted"

(* ---------- randomised cross-validation ---------- *)

let random_model_gen = Helpers.random_model_gen

let algorithm_agreement_props =
  [
    QCheck2.Test.make ~name:"brute = convolution = mva on random models"
      ~count:120 random_model_gen (fun model ->
        let a = Brute.solve model in
        let b = Convolution.measures (Convolution.solve model) in
        let c = Mva.measures (Mva.solve model) in
        let close x y =
          Float.abs (x -. y) <= 1e-8 *. Float.max 1. (Float.abs x)
        in
        Array.for_all2
          (fun (pa : Measures.per_class) (pb : Measures.per_class) ->
            close pa.Measures.non_blocking pb.Measures.non_blocking
            && close pa.Measures.concurrency pb.Measures.concurrency)
          a.Measures.per_class b.Measures.per_class
        && Array.for_all2
             (fun (pb : Measures.per_class) (pc : Measures.per_class) ->
               close pb.Measures.non_blocking pc.Measures.non_blocking
               && close pb.Measures.concurrency pc.Measures.concurrency)
             b.Measures.per_class c.Measures.per_class);
    QCheck2.Test.make ~name:"probabilities stay in [0,1]" ~count:120
      random_model_gen (fun model ->
        let m = Mva.measures (Mva.solve model) in
        Array.for_all
          (fun (c : Measures.per_class) ->
            c.Measures.non_blocking >= 0.
            && c.Measures.non_blocking <= 1. +. 1e-12
            && c.Measures.concurrency >= 0.)
          m.Measures.per_class);
  ]

let () =
  Alcotest.run "algorithms"
    [
      ( "convolution",
        [
          case "matches brute force" test_convolution_matches_brute;
          case "full lattice" test_convolution_log_g_lattice;
          case "no rescale at paper sizes" test_no_rescale_at_paper_sizes;
          slow_case "dynamic scaling correctness"
            test_dynamic_scaling_fires_and_stays_correct;
          case "flushed entry detected" test_flushed_entry_detected;
        ] );
      ( "mva",
        [
          case "matches convolution" test_mva_matches_convolution;
          case "ratio lattice" test_mva_ratio_lattice;
          case "log normalization" test_mva_log_normalization;
          case "as-printed eq.19 diverges" test_as_printed_diverges;
        ] );
      ( "large-systems",
        [
          slow_case "N=200 poisson" test_large_poisson_agreement;
          slow_case "N=150 mixed" test_large_mixed_agreement;
        ] );
      ( "closed-forms",
        [
          case "1xM is Erlang" test_single_row_is_erlang;
          case "2x2 hand computed" test_two_by_two_hand_computed;
          case "solver dispatch" test_solver_dispatch;
        ] );
      ("properties", List.map qcheck algorithm_agreement_props);
    ]
