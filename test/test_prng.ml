open Helpers
module Rng = Crossbar_prng.Rng
module Variates = Crossbar_prng.Variates

let sample_floats rng n =
  Array.init n (fun _ -> Rng.float rng)

let mean xs = Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let variance xs =
  let m = mean xs in
  Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs
  /. float_of_int (Array.length xs - 1)

(* ---------- generator ---------- *)

let test_determinism () =
  let a = Rng.create ~seed:123 and b = Rng.create ~seed:123 in
  for _ = 1 to 100 do
    check_bool "same stream" true (Rng.uint64 a = Rng.uint64 b)
  done;
  let c = Rng.create ~seed:124 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.uint64 a <> Rng.uint64 c then differs := true
  done;
  check_bool "different seeds differ" true !differs

let test_copy_independent () =
  let a = Rng.create ~seed:9 in
  ignore (Rng.uint64 a);
  let b = Rng.copy a in
  check_bool "copy continues identically" true (Rng.uint64 a = Rng.uint64 b);
  ignore (Rng.uint64 a);
  (* advancing a must not affect b's next draw *)
  let a' = Rng.copy a in
  check_bool "streams now diverged" true (Rng.uint64 a' = Rng.uint64 a)

let test_float_range_and_moments () =
  let rng = Rng.create ~seed:7 in
  let xs = sample_floats rng 200_000 in
  Array.iter (fun x -> check_bool "in [0,1)" true (x >= 0. && x < 1.)) xs;
  check_abs "mean 1/2" 0.5 (mean xs) ~tol:5e-3;
  check_abs "variance 1/12" (1. /. 12.) (variance xs) ~tol:5e-3

let test_int_bounds () =
  let rng = Rng.create ~seed:11 in
  let counts = Array.make 7 0 in
  for _ = 1 to 70_000 do
    let v = Rng.int rng ~bound:7 in
    check_bool "in range" true (v >= 0 && v < 7);
    counts.(v) <- counts.(v) + 1
  done;
  (* Loose uniformity: every bucket within 10% of expectation. *)
  Array.iter
    (fun c -> check_abs "bucket" 10000. (float_of_int c) ~tol:1000.)
    counts;
  check_raises_invalid "bound 0" (fun () -> ignore (Rng.int rng ~bound:0))

let test_bool_balance () =
  let rng = Rng.create ~seed:13 in
  let trues = ref 0 in
  for _ = 1 to 100_000 do
    if Rng.bool rng then incr trues
  done;
  check_abs "balanced" 50000. (float_of_int !trues) ~tol:1500.

let test_split_streams () =
  let parent = Rng.create ~seed:21 in
  let child1 = Rng.split parent in
  let child2 = Rng.split parent in
  (* Children and parent must all produce distinct streams. *)
  let a = Rng.uint64 parent
  and b = Rng.uint64 child1
  and c = Rng.uint64 child2 in
  check_bool "parent <> child1" true (a <> b);
  check_bool "parent <> child2" true (a <> c);
  check_bool "child1 <> child2" true (b <> c);
  (* Split is deterministic given the construction sequence. *)
  let parent' = Rng.create ~seed:21 in
  let child1' = Rng.split parent' in
  check_bool "split deterministic" true (Rng.uint64 child1' = b)

(* ---------- variates ---------- *)

let test_exponential_moments () =
  let rng = Rng.create ~seed:31 in
  let xs = Array.init 200_000 (fun _ -> Variates.exponential rng ~rate:2.) in
  check_abs "mean 1/2" 0.5 (mean xs) ~tol:5e-3;
  check_abs "var 1/4" 0.25 (variance xs) ~tol:1e-2;
  Array.iter (fun x -> check_bool "positive" true (x >= 0.)) xs;
  check_raises_invalid "rate 0" (fun () ->
      ignore (Variates.exponential rng ~rate:0.))

let test_erlang_moments () =
  let rng = Rng.create ~seed:37 in
  let xs = Array.init 100_000 (fun _ -> Variates.erlang rng ~shape:4 ~rate:2.) in
  check_abs "mean k/rate" 2. (mean xs) ~tol:2e-2;
  check_abs "var k/rate^2" 1. (variance xs) ~tol:3e-2

let test_hyperexponential_moments () =
  let rng = Rng.create ~seed:41 in
  let branches = [| (0.3, 3.); (0.7, 0.7) |] in
  let expected_mean = (0.3 /. 3.) +. (0.7 /. 0.7) in
  let xs =
    Array.init 200_000 (fun _ -> Variates.hyperexponential rng ~branches)
  in
  check_abs "mixture mean" expected_mean (mean xs) ~tol:1e-2;
  check_raises_invalid "bad probabilities" (fun () ->
      ignore (Variates.hyperexponential rng ~branches:[| (0.5, 1.) |]))

let test_uniform_pareto () =
  let rng = Rng.create ~seed:43 in
  let xs = Array.init 100_000 (fun _ -> Variates.uniform rng ~lo:2. ~hi:5.) in
  Array.iter (fun x -> check_bool "in range" true (x >= 2. && x < 5.)) xs;
  check_abs "uniform mean" 3.5 (mean xs) ~tol:2e-2;
  let ps = Array.init 200_000 (fun _ -> Variates.pareto rng ~shape:3. ~scale:2.) in
  Array.iter (fun x -> check_bool "above scale" true (x >= 2.)) ps;
  check_abs "pareto mean" 3. (mean ps) ~tol:5e-2

let test_distinct_ints () =
  let rng = Rng.create ~seed:47 in
  for _ = 1 to 1000 do
    let xs = Variates.distinct_ints rng ~bound:10 ~count:4 in
    check_int "count" 4 (Array.length xs);
    let seen = Hashtbl.create 8 in
    Array.iter
      (fun x ->
        check_bool "in range" true (x >= 0 && x < 10);
        check_bool "distinct" false (Hashtbl.mem seen x);
        Hashtbl.replace seen x ())
      xs
  done;
  (* Full-range draw is a permutation of 0..n-1. *)
  let all = Variates.distinct_ints rng ~bound:6 ~count:6 in
  let sorted = Array.copy all in
  Array.sort compare sorted;
  check_bool "permutation" true (sorted = [| 0; 1; 2; 3; 4; 5 |]);
  check_int "empty" 0 (Array.length (Variates.distinct_ints rng ~bound:5 ~count:0));
  check_raises_invalid "count > bound" (fun () ->
      ignore (Variates.distinct_ints rng ~bound:3 ~count:4))

let test_distinct_ints_uniform () =
  (* Every element should be chosen ~ count/bound of the time. *)
  let rng = Rng.create ~seed:53 in
  let hits = Array.make 8 0 in
  let trials = 40_000 in
  for _ = 1 to trials do
    Array.iter
      (fun x -> hits.(x) <- hits.(x) + 1)
      (Variates.distinct_ints rng ~bound:8 ~count:2)
  done;
  let expected = float_of_int trials *. 2. /. 8. in
  Array.iter
    (fun h -> check_abs "marginal uniform" expected (float_of_int h) ~tol:(expected *. 0.05))
    hits

let () =
  Alcotest.run "prng"
    [
      ( "generator",
        [
          case "determinism" test_determinism;
          case "copy" test_copy_independent;
          case "float moments" test_float_range_and_moments;
          case "int bounds" test_int_bounds;
          case "bool balance" test_bool_balance;
          case "split streams" test_split_streams;
        ] );
      ( "variates",
        [
          case "exponential" test_exponential_moments;
          case "erlang" test_erlang_moments;
          case "hyperexponential" test_hyperexponential_moments;
          case "uniform and pareto" test_uniform_pareto;
          case "distinct ints" test_distinct_ints;
          case "distinct ints marginals" test_distinct_ints_uniform;
        ] );
    ]
