open Helpers
module Paper = Crossbar_workloads.Paper
module Printed = Crossbar_workloads.Printed
module Scenarios = Crossbar_workloads.Scenarios
module Model = Crossbar.Model
module Measures = Crossbar.Measures

let test_table1_printed_values () =
  (* The rho~ inputs exactly as printed in Table 1. *)
  let expected =
    [
      (4, 0.000600, 0.000800);
      (8, 0.000300, 0.000171);
      (16, 0.000150, 0.0000400);
      (32, 0.0000750, 0.00000967);
      (64, 0.0000375, 0.00000238);
    ]
  in
  List.iter
    (fun (n, rho1, rho2) ->
      let got1, got2 = Paper.table1_loads n in
      (* Table 1 prints three significant figures. *)
      check_close (Printf.sprintf "rho1(%d)" n) rho1 got1 ~tol:5e-3;
      check_close (Printf.sprintf "rho2(%d)" n) rho2 got2 ~tol:5e-3)
    expected;
  check_bool "sizes" true (Paper.table1_sizes = [ 4; 8; 16; 32; 64 ])

let test_series_build_models () =
  let check_series sizes series =
    List.iter
      (fun s ->
        List.iter
          (fun n ->
            let model = s.Paper.model_of_size n in
            check_int "square" (Model.inputs model) (Model.outputs model);
            check_int "size" n (Model.inputs model))
          sizes)
      series
  in
  check_series Paper.sizes (Paper.figure1 @ Paper.figure2 @ Paper.figure3);
  check_series Paper.figure4_sizes Paper.figure4

let test_series_labels_distinct () =
  List.iter
    (fun series_list ->
      let labels = List.map (fun s -> s.Paper.label) series_list in
      check_int "distinct labels"
        (List.length labels)
        (List.length (List.sort_uniq compare labels)))
    [ Paper.figure1; Paper.figure2; Paper.figure3; Paper.figure4 ]

let test_figure1_poisson_bound_is_first () =
  match Paper.figure1 with
  | first :: _ ->
      let model = first.Paper.model_of_size 8 in
      check_bool "first series poisson" true (Model.is_poisson model 0)
  | [] -> Alcotest.fail "figure1 empty"

let test_operating_point () =
  (* The headline claim: alpha~ = .0024 gives ~0.5% blocking across
     sizes. *)
  List.iter
    (fun n ->
      let model = Paper.operating_point_model n in
      let m = Crossbar.Solver.solve model in
      check_abs
        (Printf.sprintf "~0.5%% at N=%d" n)
        0.005
        m.Measures.per_class.(0).Measures.blocking
        ~tol:0.0015)
    [ 16; 32; 64; 128 ]

let test_table2_models () =
  List.iter
    (fun set ->
      let model = Paper.table2_model set 16 in
      check_int "two classes" 2 (Model.num_classes model);
      check_bool "class 1 poisson" true (Model.is_poisson model 0);
      check_bool "class 2 bursty" false (Model.is_poisson model 1);
      check_int "weights" 2 (Array.length set.Paper.weights))
    Paper.table2_sets

let test_printed_tables_well_formed () =
  List.iter
    (fun set ->
      let rows = Printed.table2_rows ~set_label:set.Paper.set_label in
      check_int "all sizes present" (List.length Paper.table2_sizes)
        (List.length rows);
      List.iter2
        (fun n (row : Printed.table2_row) ->
          check_int "row order" n row.Printed.size;
          check_bool "gradient present beyond N=1" true
            (row.Printed.gradient_beta2 <> None || n = 1))
        Paper.table2_sizes rows)
    Paper.table2_sets;
  match Printed.table2_rows ~set_label:"nope" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "unknown label should raise"

let test_integrated_services () =
  let model = Scenarios.integrated_services ~size:16 ~utilization:0.3 in
  check_int "three classes" 3 (Model.num_classes model);
  let m = Crossbar.Solver.solve model in
  (* The wide video class must see strictly more blocking than voice. *)
  let voice = Measures.class_named m "voice"
  and video = Measures.class_named m "video" in
  check_bool "video blocks more" true
    (video.Measures.blocking > voice.Measures.blocking);
  check_raises_invalid "too small" (fun () ->
      ignore (Scenarios.integrated_services ~size:4 ~utilization:0.3));
  check_raises_invalid "bad utilization" (fun () ->
      ignore (Scenarios.integrated_services ~size:16 ~utilization:0.))

let test_integrated_services_calibration () =
  (* The calibration ignores blocking, and this switch blocks ~2u even at
     low utilization (a specific input AND output must be free), with the
     4-port video bundle hit hardest — so the realised occupancy lands
     somewhat below the configured budget but must be in its vicinity. *)
  let utilization = 0.05 in
  let model = Scenarios.integrated_services ~size:32 ~utilization in
  let m = Crossbar.Solver.solve model in
  let budget = utilization *. 32. in
  check_bool "within budget vicinity" true
    (m.Measures.busy_ports > 0.6 *. budget
    && m.Measures.busy_ports <= 1.05 *. budget)

let test_hotspot_pair () =
  let model = Scenarios.hotspot_pair ~size:8 ~background:0.1 ~hotspot:0.4 in
  let m = Crossbar.Solver.solve model in
  let bg = Measures.class_named m "background"
  and hot = Measures.class_named m "hotspot" in
  (* Same bandwidth: identical blocking; concurrency scales with load. *)
  check_close "same B" bg.Measures.blocking hot.Measures.blocking;
  check_close "4x concurrency" 4.
    (hot.Measures.concurrency /. bg.Measures.concurrency)
    ~tol:1e-6

let test_shifted_beta_specs () =
  let specs =
    Scenarios.shifted_beta_specs ~rho1:0.0012 ~rho2:0.0012 ~beta2:0.0012
      ~size:4
  in
  check_int "two specs" 2 (List.length specs);
  let type2 = List.nth specs 1 in
  (* lambda(0) = lambda(1) = alpha; beta kicks in at k = 2. *)
  check_close "lambda(0)" (0.0012 /. 4.) (type2.Crossbar.General.arrival_rate 0);
  check_close "lambda(1)" (0.0012 /. 4.) (type2.Crossbar.General.arrival_rate 1);
  check_close "lambda(2)"
    ((0.0012 +. 0.0012) /. 4.)
    (type2.Crossbar.General.arrival_rate 2)

let () =
  Alcotest.run "workloads"
    [
      ( "paper",
        [
          case "table 1 printed values" test_table1_printed_values;
          case "series build" test_series_build_models;
          case "labels distinct" test_series_labels_distinct;
          case "figure 1 bound first" test_figure1_poisson_bound_is_first;
          case "operating point ~0.5%" test_operating_point;
          case "table 2 models" test_table2_models;
          case "printed tables" test_printed_tables_well_formed;
        ] );
      ( "scenarios",
        [
          case "integrated services" test_integrated_services;
          case "calibration" test_integrated_services_calibration;
          case "hotspot pair" test_hotspot_pair;
          case "shifted beta specs" test_shifted_beta_specs;
        ] );
    ]
