open Helpers
module Model = Crossbar.Model
module General = Crossbar.General
module Brute = Crossbar.Brute
module Measures = Crossbar.Measures
module Ctmc = Crossbar_markov.Ctmc
module State_space = Crossbar_markov.State_space
module Special = Crossbar_numerics.Special

let test_of_model_agrees_with_brute () =
  List.iter
    (fun (label, model) ->
      let reference = Brute.solve model in
      let result =
        General.solve ~inputs:(Model.inputs model)
          ~outputs:(Model.outputs model) ~classes:(General.of_model model)
      in
      Array.iteri
        (fun r (c : Measures.per_class) ->
          check_close (label ^ ": B") c.Measures.non_blocking
            result.General.non_blocking.(r);
          check_close (label ^ ": E") c.Measures.concurrency
            result.General.concurrency.(r))
        reference.Measures.per_class)
    (validation_models ())

(* A staircase (decidedly non-affine) arrival rate, validated against an
   exact CTMC solve built independently here. *)
let staircase k = if k < 2 then 0.8 else if k < 4 then 0.1 else 0.02

let test_custom_rate_vs_ctmc () =
  let inputs = 4 and outputs = 4 in
  let spec =
    {
      General.name = "staircase";
      bandwidth = 1;
      arrival_rate = staircase;
      service_rate = 1.0;
    }
  in
  let result = General.solve ~inputs ~outputs ~classes:[ spec ] in
  (* Independent chain: states k = 0..4, birth P(4-k,1)^2 staircase(k). *)
  let chain =
    Ctmc.build ~states:5 ~f:(fun k ->
        let up =
          if k < 4 then
            [
              ( k + 1,
                Special.permutations (inputs - k) 1
                *. Special.permutations (outputs - k) 1
                *. staircase k );
            ]
          else []
        in
        let down = if k > 0 then [ (k - 1, float_of_int k) ] else [] in
        up @ down)
  in
  let pi = Ctmc.solve_gth chain in
  let e = ref 0. in
  Array.iteri (fun k p -> e := !e +. (float_of_int k *. p)) pi;
  check_close "concurrency" !e result.General.concurrency.(0) ~tol:1e-12;
  (* Time-average availability of a specific port pair. *)
  let b = ref 0. in
  Array.iteri
    (fun k p ->
      b :=
        !b
        +. p
           *. (float_of_int (inputs - k) /. float_of_int inputs)
           *. (float_of_int (outputs - k) /. float_of_int outputs))
    pi;
  check_close "non-blocking" !b result.General.non_blocking.(0) ~tol:1e-12

let test_distribution_matches_solve () =
  let spec =
    {
      General.name = "geo";
      bandwidth = 2;
      arrival_rate = (fun k -> 0.5 /. float_of_int (k + 1));
      service_rate = 2.0;
    }
  in
  let space, pi = General.distribution ~inputs:6 ~outputs:5 ~classes:[ spec ] in
  check_close "normalised" 1. (Array.fold_left ( +. ) 0. pi) ~tol:1e-12;
  let result = General.solve ~inputs:6 ~outputs:5 ~classes:[ spec ] in
  let e = ref 0. in
  State_space.iter space (fun i k -> e := !e +. (float_of_int k.(0) *. pi.(i)));
  check_close "consistent E" !e result.General.concurrency.(0) ~tol:1e-12

let test_log_state_weight () =
  let spec =
    {
      General.name = "p";
      bandwidth = 1;
      arrival_rate = (fun _ -> 0.5);
      service_rate = 1.0;
    }
  in
  (* Poisson: weight(k) = P(n1,k) P(n2,k) rho^k / k!. *)
  let lw = General.log_state_weight ~inputs:4 ~outputs:3 ~classes:[ spec ] [| 2 |] in
  let expected = log (12. *. 6. *. (0.25 /. 2.)) in
  check_close "weight" expected lw ~tol:1e-12;
  check_bool "infeasible" true
    (General.log_state_weight ~inputs:2 ~outputs:9 ~classes:[ spec ] [| 3 |]
    = neg_infinity)

let test_load_distribution () =
  let model = mixed_model ~inputs:5 ~outputs:4 in
  let classes = General.of_model model in
  let histogram = General.load_distribution ~inputs:5 ~outputs:4 ~classes in
  check_int "support" 5 (Array.length histogram);
  check_close "normalised" 1. (Array.fold_left ( +. ) 0. histogram) ~tol:1e-12;
  Array.iter (fun p -> check_bool "non-negative" true (p >= 0.)) histogram;
  (* The histogram mean must equal the busy-port measure. *)
  let mean = ref 0. in
  Array.iteri (fun j p -> mean := !mean +. (float_of_int j *. p)) histogram;
  let measures = Brute.solve model in
  check_close "mean = busy ports" measures.Measures.busy_ports !mean ~tol:1e-10

let test_load_distribution_saturating () =
  (* Overwhelming load concentrates the histogram at full occupancy. *)
  let spec =
    {
      General.name = "hot";
      bandwidth = 1;
      arrival_rate = (fun _ -> 1e6);
      service_rate = 1.0;
    }
  in
  let histogram = General.load_distribution ~inputs:3 ~outputs:3 ~classes:[ spec ] in
  check_abs "all mass at 3" 1. histogram.(3) ~tol:1e-4

let test_g_symmetric_in_dimensions () =
  (* With per-pair rates held fixed, G(n1, n2) = G(n2, n1): the product
     form treats inputs and outputs symmetrically. *)
  let spec =
    {
      General.name = "s";
      bandwidth = 2;
      arrival_rate = (fun k -> 0.2 +. (0.05 *. float_of_int k));
      service_rate = 1.0;
    }
  in
  check_close "G(4,7) = G(7,4)"
    (General.log_g ~inputs:4 ~outputs:7 ~classes:[ spec ])
    (General.log_g ~inputs:7 ~outputs:4 ~classes:[ spec ])
    ~tol:1e-12

let test_validation () =
  let bad_bandwidth =
    {
      General.name = "x";
      bandwidth = 0;
      arrival_rate = (fun _ -> 1.);
      service_rate = 1.;
    }
  in
  check_raises_invalid "bandwidth" (fun () ->
      ignore (General.solve ~inputs:2 ~outputs:2 ~classes:[ bad_bandwidth ]));
  check_raises_invalid "empty" (fun () ->
      ignore (General.solve ~inputs:2 ~outputs:2 ~classes:[]))

let test_rate_truncation () =
  (* Once the rate hits zero, higher occupancies carry no weight even if
     the function would turn positive again. *)
  let spec =
    {
      General.name = "gap";
      bandwidth = 1;
      arrival_rate = (fun k -> if k = 1 then 0. else 1.);
      service_rate = 1.0;
    }
  in
  let space, pi = General.distribution ~inputs:4 ~outputs:4 ~classes:[ spec ] in
  State_space.iter space (fun i k ->
      if k.(0) > 1 then check_close "no weight past gap" 0. pi.(i))

let () =
  Alcotest.run "general"
    [
      ( "general",
        [
          case "BPP special case = brute" test_of_model_agrees_with_brute;
          case "staircase rate vs exact chain" test_custom_rate_vs_ctmc;
          case "distribution consistency" test_distribution_matches_solve;
          case "load distribution" test_load_distribution;
          case "load distribution saturating" test_load_distribution_saturating;
          case "G symmetric in dimensions" test_g_symmetric_in_dimensions;
          case "log state weight" test_log_state_weight;
          case "validation" test_validation;
          case "rate truncation" test_rate_truncation;
        ] );
    ]
