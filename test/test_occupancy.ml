open Helpers
module Model = Crossbar.Model
module Occupancy = Crossbar.Occupancy
module General = Crossbar.General
module Brute = Crossbar.Brute
module Measures = Crossbar.Measures
module State_space = Crossbar_markov.State_space

let test_matches_enumeration () =
  (* The knapsack route must equal the enumerated histogram exactly. *)
  List.iter
    (fun (label, model) ->
      let direct =
        General.load_distribution ~inputs:(Model.inputs model)
          ~outputs:(Model.outputs model) ~classes:(General.of_model model)
      in
      let knapsack = Occupancy.load_distribution model in
      check_int (label ^ ": support") (Array.length direct)
        (Array.length knapsack);
      Array.iteri
        (fun j p -> check_abs (label ^ ": P(load)") p knapsack.(j) ~tol:1e-12)
        direct)
    (validation_models ())

let test_class_distribution_matches_enumeration () =
  let model = mixed_model ~inputs:5 ~outputs:4 in
  let space, pi = Brute.distribution model in
  for r = 0 to Model.num_classes model - 1 do
    let expected =
      Array.make (Model.capacity model / Model.bandwidth model r + 1) 0.
    in
    State_space.iter space (fun i k ->
        expected.(k.(r)) <- expected.(k.(r)) +. pi.(i));
    let got = Occupancy.class_distribution model ~class_index:r in
    check_int "support" (Array.length expected) (Array.length got);
    Array.iteri
      (fun m p -> check_abs (Printf.sprintf "P(k_%d = %d)" r m) p got.(m) ~tol:1e-12)
      expected
  done

let test_moments_consistent () =
  let model = mixed_model ~inputs:6 ~outputs:6 in
  let measures = Crossbar.Solver.solve model in
  check_close "mean load = busy ports" measures.Measures.busy_ports
    (Occupancy.mean_load model) ~tol:1e-10;
  (* Class-distribution means must equal the concurrencies. *)
  Array.iteri
    (fun r (c : Measures.per_class) ->
      let distribution = Occupancy.class_distribution model ~class_index:r in
      let mean = ref 0. in
      Array.iteri
        (fun m p -> mean := !mean +. (float_of_int m *. p))
        distribution;
      check_close ("E[k_" ^ c.Measures.name ^ "]") c.Measures.concurrency !mean
        ~tol:1e-10)
    measures.Measures.per_class

let test_large_switch_scalability () =
  (* No enumeration: a 256x256 switch is fine, and the distribution ties
     back to the recurrence solvers. *)
  let model = Crossbar_workloads.Paper.operating_point_model 256 in
  let distribution = Occupancy.load_distribution model in
  check_int "support" 257 (Array.length distribution);
  check_close "normalised" 1. (Array.fold_left ( +. ) 0. distribution) ~tol:1e-9;
  let measures = Crossbar.Solver.solve model in
  check_close "mean ties to solver" measures.Measures.busy_ports
    (Occupancy.mean_load model) ~tol:1e-8

let test_quantiles () =
  let model =
    Model.square ~size:16 ~classes:[ poisson ~name:"t" 0.5 ]
  in
  let q50 = Occupancy.load_quantile model ~probability:0.5 in
  let q99 = Occupancy.load_quantile model ~probability:0.99 in
  check_bool "ordered" true (q50 <= q99);
  check_bool "in range" true (q99 <= 16);
  (* Cross-check against the cumulative histogram. *)
  let distribution = Occupancy.load_distribution model in
  let cumulative upto =
    let total = ref 0. in
    for j = 0 to upto do
      total := !total +. distribution.(j)
    done;
    !total
  in
  check_bool "q99 reaches 0.99" true (cumulative q99 >= 0.99);
  check_bool "q99 minimal" true (q99 = 0 || cumulative (q99 - 1) < 0.99);
  check_raises_invalid "probability 0" (fun () ->
      ignore (Occupancy.load_quantile model ~probability:0.))

let test_zero_load_degenerate () =
  let model = Model.square ~size:4 ~classes:[ poisson 0. ] in
  let distribution = Occupancy.load_distribution model in
  check_close "all idle" 1. distribution.(0) ~tol:1e-12

let occupancy_props =
  [
    QCheck2.Test.make ~name:"knapsack = enumeration on random models"
      ~count:80 Helpers.random_model_gen (fun model ->
        let direct =
          General.load_distribution ~inputs:(Model.inputs model)
            ~outputs:(Model.outputs model) ~classes:(General.of_model model)
        in
        let knapsack = Occupancy.load_distribution model in
        Array.for_all2
          (fun a b -> Float.abs (a -. b) < 1e-10)
          direct knapsack);
    QCheck2.Test.make ~name:"mean load = busy ports on random models"
      ~count:80 Helpers.random_model_gen (fun model ->
        let measures = Crossbar.Solver.solve model in
        Float.abs (Occupancy.mean_load model -. measures.Measures.busy_ports)
        < 1e-9 *. Float.max 1. measures.Measures.busy_ports);
  ]

let () =
  Alcotest.run "occupancy"
    [
      ( "occupancy",
        [
          case "load matches enumeration" test_matches_enumeration;
          case "class matches enumeration"
            test_class_distribution_matches_enumeration;
          case "moments consistent" test_moments_consistent;
          case "large switch" test_large_switch_scalability;
          case "quantiles" test_quantiles;
          case "zero load" test_zero_load_degenerate;
        ]
        @ List.map qcheck occupancy_props );
    ]
