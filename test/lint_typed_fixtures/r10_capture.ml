(* Fixture: closures crossing the Pool.run domain boundary.  [direct]
   captures an array in a literal lambda, [stored] stores the closure in
   a record field before passing it, and [partial] builds the closure by
   partial application — three R10 findings.  [atomic] captures only a
   sanctioned Atomic.t and [pure] captures nothing, so neither is
   flagged. *)

let totals = Array.make 4 0

let direct () = Pool.run ~tasks:4 (fun i -> totals.(i) <- i)

type handler = { work : int -> unit }

let log = Array.make 4 0.

let stored () =
  let h = { work = (fun i -> log.(i) <- float_of_int i) } in
  Pool.run ~tasks:4 h.work

let sink = Buffer.create 64

let emit buf i = Buffer.add_string buf (string_of_int i)

let partial () = Pool.run ~tasks:2 (emit sink)

let counter = Atomic.make 0

let atomic () = Pool.run ~tasks:2 (fun _ -> Atomic.incr counter)

let pure () = Pool.run ~tasks:2 (fun i -> i + 1)
