(* Fixture: [combine] is configured as an R11 hot root.  Its body and the
   r11_profile callees it reaches cover every boxed-allocation kind the
   effect stage records: closure, tuple, record, boxed float, non-flat
   array, partial application.  [off_path] allocates too but is never
   called from the root, so it must stay unflagged.  Float arrays are
   flat and must also stay unflagged. *)

let combine n =
  let box = ref 0.0 in
  let cell = ref 0 in
  let bump = fun y -> y + !cell in
  let t = R11_profile.pair n n in
  let r = R11_profile.fresh () in
  let ints = Array.make n 0 in
  let flat = Array.make n 0.0 in
  let applied = R11_profile.pair n in
  ignore (applied n);
  ignore (bump (fst t));
  ignore (R11_profile.bump r);
  ignore ints;
  ignore flat;
  !box

let off_path n =
  let spare = ref n in
  incr spare;
  !spare

(* [unsafe_kernel] mirrors the tree's tiled combine kernels: flat float
   scratch stays clean (float arrays are unboxed), but the per-call
   closure over the scratch is flagged. *)
let unsafe_kernel n =
  let scratch = Array.make n 0.0 in
  let read = fun i -> Array.unsafe_get scratch i in
  ignore (read 0);
  Array.unsafe_get scratch 0
