(* Fixture: a stand-in pool whose [run] matches the default r10_sinks
   pattern "Pool.run".  Sequential on purpose — only the resolved name
   matters to the capture fixpoint, not what the function does. *)

let run ~tasks f = Array.init tasks f
