(* Fixture: mirrors lib/serve's batcher escape — both captured arrays are
   frozen before the pool starts, which the guarded= directive asserts.
   The regression test strips that directive and expects R10 to come back
   naming exactly these captures.  [noisy] shows the blunt per-line
   disable= form, which survives the strip. *)

let groups = Array.make 2 0
let requests = Array.make 2 "q"

let serve () =
  (* lint: guarded=groups,requests — frozen before the pool starts *)
  Pool.run ~tasks:2 (fun g -> String.length requests.(groups.(g)))

let noisy () =
  (* lint: disable=R10 *)
  Pool.run ~tasks:2 (fun g -> groups.(g))
