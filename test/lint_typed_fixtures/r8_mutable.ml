(* Fixture: six R8 violations; sanctioned wrappers, immutable data and an
   annotated cell are legal. *)

let table = Array.make 4 0
let literal = [| 1.0; 2.0 |]
let buf = Bytes.create 8

type counter = { mutable count : int }

let shared = { count = 0 }
let names : (string, int) Hashtbl.t = Hashtbl.create 8
let cell = ref 0
let safe = Atomic.make 0
let lock = Mutex.create ()
let pure = (1, "two")
let annotated = ref 0 (* lint: domain-safe — fixture exercises suppression *)
