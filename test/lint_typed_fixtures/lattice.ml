(* Fixture: a stand-in profile store whose [get] matches the default
   r13_mantissa_producers pattern "Lattice.get" — each read yields a
   rescaled mantissa tagged with the profile it came from. *)

type t = { values : float array }

let of_array values = { values }
let get t u = t.values.(u)
