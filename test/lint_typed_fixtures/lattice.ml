(* Fixture: a stand-in profile store whose [get] and [unsafe_get] match
   the default r13_mantissa_producers patterns "Lattice.get" and
   "Lattice.unsafe_get" — each read yields a rescaled mantissa tagged
   with the profile it came from, whether or not the access is
   bounds-checked. *)

type t = { values : float array }

let of_array values = { values }
let get t u = t.values.(u)
let unsafe_get t u = Array.unsafe_get t.values u
