(* Fixture: shared state mutated by four functions.  [bump] and [touch]
   are reached from the engine entry points without a lock (two R9
   findings); [bump_locked] writes under Mutex.protect and [reset] is
   never called from an entry point, so both are legal. *)

type stats = { mutable total : int }

let lock = Mutex.create ()
let stats = { total = 0 }
let hits = ref 0
let bump () = incr hits
let touch n = stats.total <- n
let bump_locked () = Mutex.protect lock (fun () -> incr hits)
let reset () = hits := 0
