(* Fixture: v2's lexical lock tracking cannot see that the callbacks here
   run under Mutex.protect — one goes through the [with_lock] wrapper,
   one is let-bound and passed by name — so both writes to [counter]
   depend on the capture fixpoint's wrapper facts.  [unlocked_bump] is
   the control: the only R9 finding. *)

let lock = Mutex.create ()
let counter = ref 0
let total = ref 0

let with_lock f = Mutex.protect lock f

let locked_bump () = with_lock (fun () -> incr counter)

let stored_bump () =
  let work () = incr counter in
  Mutex.protect lock work

let unlocked_bump () = incr total
