(* Fixture: cross-domain float arithmetic.  The first six functions are
   violations — log+linear addition (both orders), addition through a
   return-domain resolved across a call edge, re-exponentiation of an
   already-linear value, and ordering comparisons between mantissas of
   two different profiles (through the checked and the unchecked
   accessor — both are mantissa producers).  The ok_* functions stay
   within one domain and must lint clean. *)

let bad_add a b = Logspace.of_float a +. Logspace.to_float b
let bad_sub a b = Logspace.to_float a -. Logspace.of_float b

(* [lifted]'s return domain is log only through the call edge — the
   fixpoint, not the local pass, has to resolve it. *)
let lifted a = Logspace.of_float a
let indirect_add a b = lifted a +. Logspace.to_float b
let double_exp a = Logspace.exp_log (Logspace.to_float a)
let cross_cmp g h = Lattice.get g 0 < Lattice.get h 1
let cross_unsafe_cmp g h = Lattice.unsafe_get g 0 < Lattice.get h 1

let ok_add a b = Logspace.of_float a +. Logspace.of_float b
let ok_lin a b = Logspace.to_float a +. Logspace.to_float b
let ok_exp a = Logspace.exp_log (Logspace.of_float a)
let ok_cmp g = Lattice.get g 0 < Lattice.get g 1
let ok_unsafe_cmp g = Lattice.unsafe_get g 0 < Lattice.unsafe_get g 1
