(* Fixture: five R7 violations; integer and string comparisons are legal. *)

let counter = Float.equal
let order = Float.compare
let same x y = x = y +. 0.0
let diff (x : float) y = x <> y
let cmp (x : float) y = compare x y
let ok_int (x : int) y = x = y
let ok_string x y = String.equal x y
