(* Fixture: the entry points making the higher-order writes reachable
   for the R9 call graph. *)

let run () =
  R9_higher_order.locked_bump ();
  R9_higher_order.stored_bump ();
  R9_higher_order.unlocked_bump ()
