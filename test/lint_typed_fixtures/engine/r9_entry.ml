(* Fixture: the pool entry points the R9 call graph starts from.  [run]
   reaches [R9_state.bump] through a local helper and [R9_state.touch]
   directly; [R9_state.reset] is deliberately not referenced. *)

let helper () = R9_state.bump ()

let run n =
  helper ();
  R9_state.touch n;
  R9_state.bump_locked ()
