(* Fixture: callees one hop below the R11 hot root in r11_hot.ml.  Each
   allocates a distinct boxed shape so the transitive walk — not just the
   root's own body — is what the exact-count test exercises. *)

type acc = { mutable total : int }

let pair a b = (a, b)
let fresh () = { total = 0 }

let bump acc =
  acc.total <- acc.total + 1;
  acc.total
