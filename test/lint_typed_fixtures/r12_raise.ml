(* Fixture: raise effects against the Pool.run boundary.  [direct] raises
   inside the lambda itself; [indirect] calls [risky], whose escaping
   raise the interprocedural fixpoint must carry across the call edge.
   [guarded] catches inside the lambda and [safe] calls a total function
   — both must stay clean. *)

exception Overflow

let risky x = if x > 1000 then raise Overflow else x
let total x = x + 1

let direct () =
  Pool.run ~tasks:2 (fun g -> if g > 1 then raise Overflow else g)

let indirect () = Pool.run ~tasks:2 (fun g -> risky (g * 100))
let guarded () = Pool.run ~tasks:2 (fun g -> try risky g with Overflow -> 0)
let safe () = Pool.run ~tasks:2 (fun g -> total g)
