(* Fixture: an annotated hot root.  The directive below sanctions the
   one scratch cell by name, so the configured root lints clean; the
   regression test strips the directive line and expects the finding
   back at exactly this site — the same protection the directives in
   lib/core/convolution.ml rely on. *)

let hot values =
  (* lint: alloc=acc -- one scratch cell for the whole fold *)
  let acc = ref 0.0 in
  for i = 0 to Array.length values - 1 do
    acc := !acc +. values.(i)
  done;
  !acc
