(* Fixture: a stand-in log-domain module whose names match the default
   r13 producer lists.  Bodies are irrelevant — only the resolved call
   names seed the domain lattice. *)

let of_float x = log x
let to_float x = exp x
let exp_log x = exp x
let mul a b = a +. b
