(* Fixture: the escape hides behind one layer of forwarding — only the
   capture fixpoint's sink facts connect [go]'s lambda to the boundary,
   and the finding's chain must witness the route. *)

let spawn_all f = Pool.run ~tasks:2 f

let slots = Array.make 2 0

let go () = spawn_all (fun i -> slots.(i) <- i)
