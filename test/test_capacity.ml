open Helpers
module Model = Crossbar.Model
module Capacity = Crossbar.Capacity

let test_blocking_accessor () =
  let model = Model.square ~size:4 ~classes:[ poisson 0.5 ] in
  let m = Crossbar.Solver.solve model in
  check_close "accessor"
    m.Crossbar.Measures.per_class.(0).Crossbar.Measures.blocking
    (Capacity.blocking model ~class_index:0)

let test_load_multiplier_inverts () =
  let model = Model.square ~size:16 ~classes:[ poisson 0.01 ] in
  let target = 0.005 in
  let c =
    Capacity.load_multiplier_for_blocking model ~class_index:0 ~target
  in
  check_bool "positive multiplier" true (c > 0.);
  let scaled =
    Model.map_class model 0 (fun t -> Crossbar.Traffic.scale_load t c)
  in
  check_close "achieves target" target
    (Capacity.blocking scaled ~class_index:0)
    ~tol:1e-6

let test_load_multiplier_mixed_classes () =
  let model =
    Model.square ~size:8
      ~classes:
        [ poisson ~name:"bg" 0.05; pascal ~name:"fg" ~alpha:0.01 ~beta:0.005 () ]
  in
  (* The background class alone already causes ~10% blocking on this
     switch; pick a target above that floor. *)
  let target = 0.18 in
  let c =
    Capacity.load_multiplier_for_blocking model ~class_index:1 ~target
  in
  let scaled =
    Model.map_class model 1 (fun t -> Crossbar.Traffic.scale_load t c)
  in
  check_close "bursty class at target" target
    (Capacity.blocking scaled ~class_index:1)
    ~tol:1e-6

let test_load_multiplier_guards () =
  let model = Model.square ~size:4 ~classes:[ poisson 0.5 ] in
  check_raises_invalid "target 0" (fun () ->
      ignore (Capacity.load_multiplier_for_blocking model ~class_index:0 ~target:0.))

let test_unreachable_target_fails () =
  (* Two heavy classes: class 0's blocking can't go below what class 1
     already causes. *)
  let model =
    Model.square ~size:2
      ~classes:[ poisson ~name:"t" 0.1; poisson ~name:"heavy" 50.0 ]
  in
  let floor = Capacity.blocking model ~class_index:0 in
  check_bool "floor is high" true (floor > 0.5);
  match
    Capacity.load_multiplier_for_blocking model ~class_index:0 ~target:0.01
  with
  | exception Failure _ -> ()
  | c -> Alcotest.failf "expected failure, got %g" c

let test_smallest_square_switch () =
  (* Constant *carried* load (tau/N per input set, as in Figure 4):
     growing the switch dilutes contention, so some smallest adequate N
     exists. *)
  let classes n = [ poisson (0.5 /. float_of_int n) ] in
  match
    Capacity.smallest_square_switch ~classes ~target:0.02 ~max_size:64 ()
  with
  | None -> Alcotest.fail "should find a size"
  | Some n ->
      check_bool "adequate" true
        (Capacity.blocking (Model.square ~size:n ~classes:(classes n))
           ~class_index:0
        <= 0.02);
      if n > 1 then
        check_bool "minimal" true
          (Capacity.blocking
             (Model.square ~size:(n - 1) ~classes:(classes (n - 1)))
             ~class_index:0
          > 0.02)

let test_smallest_square_switch_unreachable () =
  (* Per-pair load pinned to a constant: blocking never drops below ~2p,
     so an aggressive target is unreachable. *)
  let classes n = [ poisson (0.5 *. float_of_int n) ] in
  check_bool "unreachable" true
    (Capacity.smallest_square_switch ~classes ~target:1e-6 ~max_size:32 ()
    = None);
  check_raises_invalid "bad max size" (fun () ->
      ignore (Capacity.smallest_square_switch ~classes ~target:0.1 ~max_size:0 ()))

let () =
  Alcotest.run "capacity"
    [
      ( "capacity",
        [
          case "blocking accessor" test_blocking_accessor;
          case "load multiplier inverts" test_load_multiplier_inverts;
          case "mixed classes" test_load_multiplier_mixed_classes;
          case "guards" test_load_multiplier_guards;
          case "unreachable target" test_unreachable_target_fails;
          case "smallest switch" test_smallest_square_switch;
          case "unreachable size target" test_smallest_square_switch_unreachable;
        ] );
    ]
