open Helpers
module Pool = Crossbar_engine.Pool
module Cache = Crossbar_engine.Cache
module Clock = Crossbar_engine.Clock
module Sweep = Crossbar_engine.Sweep
module Telemetry = Crossbar_engine.Telemetry
module Json = Crossbar_engine.Json
module Model = Crossbar.Model
module Solver = Crossbar.Solver
module Measures = Crossbar.Measures

(* ---------- pool ---------- *)

let test_pool_orders_results () =
  let sequential = Pool.run ~domains:1 ~tasks:200 (fun i -> i * i) in
  let parallel = Pool.run ~domains:4 ~tasks:200 (fun i -> i * i) in
  check_bool "same results" true (sequential = parallel);
  check_int "length" 200 (Array.length parallel);
  Array.iteri (fun i v -> check_int "in index order" (i * i) v) parallel

let test_pool_empty_and_single () =
  check_int "no tasks" 0 (Array.length (Pool.run ~domains:4 ~tasks:0 Fun.id));
  check_bool "single task" true
    (Pool.run ~domains:4 ~tasks:1 (fun i -> 10 * i) = [| 0 |])

let test_pool_propagates_exception () =
  match
    Pool.run ~domains:3 ~tasks:50 (fun i ->
        if i = 25 then failwith "task 25 exploded" else i)
  with
  | _ -> Alcotest.fail "expected the task exception to propagate"
  | exception Failure message ->
      check_bool "message preserved" true
        (String.equal message "task 25 exploded")

let test_pool_rejects_bad_arguments () =
  Helpers.check_invalid_contains "domains < 1" ~substring:"domains=0"
    (fun () -> ignore (Pool.run ~domains:0 ~tasks:4 Fun.id));
  Helpers.check_invalid_contains "tasks < 0" ~substring:"tasks=-1" (fun () ->
      ignore (Pool.run ~domains:2 ~tasks:(-1) Fun.id))

let test_pool_more_domains_than_tasks () =
  (* Asking for more workers than tasks must neither deadlock nor spawn
     idle domains that disturb the results. *)
  let results = Pool.run ~domains:8 ~tasks:3 (fun i -> i + 100) in
  check_bool "all tasks served" true (results = [| 100; 101; 102 |])

let test_pool_first_failure_wins () =
  (* With several failing tasks, exactly one exception is kept and
     raised after every worker has joined; the pool stays usable. *)
  (match
     Pool.run ~domains:4 ~tasks:64 (fun i ->
         if i mod 2 = 1 then failwith (Printf.sprintf "task %d failed" i)
         else i)
   with
  | _ -> Alcotest.fail "expected a task failure to propagate"
  | exception Failure message ->
      check_bool "one of the raised failures" true
        (String.length message > String.length "task "
        && String.equal (String.sub message 0 5) "task "));
  (* The raise happened after join: the next run must work normally. *)
  let again = Pool.run ~domains:4 ~tasks:10 (fun i -> i * 2) in
  check_int "pool reusable after failure" 18 again.(9)

(* The CROSSBAR_DOMAINS override: valid values are honoured, malformed
   or non-positive values are a hard configuration error.  putenv has no
   inverse, so the original value (or a safe default) is always
   restored. *)
let with_crossbar_domains value f =
  let original = Sys.getenv_opt "CROSSBAR_DOMAINS" in
  Unix.putenv "CROSSBAR_DOMAINS" value;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "CROSSBAR_DOMAINS"
        (match original with Some v -> v | None -> "2"))
    f

let test_pool_env_override () =
  with_crossbar_domains "3" (fun () ->
      check_int "valid override honoured" 3 (Pool.recommended_domains ()));
  with_crossbar_domains " 5 " (fun () ->
      check_int "whitespace trimmed" 5 (Pool.recommended_domains ()));
  with_crossbar_domains "0" (fun () ->
      check_raises_invalid "zero domains" (fun () ->
          ignore (Pool.recommended_domains ())));
  with_crossbar_domains "-2" (fun () ->
      check_raises_invalid "negative domains" (fun () ->
          ignore (Pool.recommended_domains ())));
  with_crossbar_domains "many" (fun () ->
      check_raises_invalid "non-integer" (fun () ->
          ignore (Pool.recommended_domains ())));
  with_crossbar_domains "" (fun () ->
      check_raises_invalid "empty string" (fun () ->
          ignore (Pool.recommended_domains ())));
  (* A malformed override must also stop Pool.run's default width. *)
  with_crossbar_domains "zero" (fun () ->
      check_raises_invalid "run with malformed env" (fun () ->
          ignore (Pool.run ~tasks:2 Fun.id)))

(* ---------- cache keying ---------- *)

let two_class_model () =
  Model.square ~size:6
    ~classes:
      [ poisson ~name:"p" 0.4; pascal ~name:"q" ~alpha:0.3 ~beta:0.1 () ]

let test_cache_structural_hit () =
  let cache = Cache.create () in
  (* Two structurally equal models built independently share the key. *)
  let a = two_class_model () and b = two_class_model () in
  check_bool "equal keys" true
    (String.equal (Cache.key_of_model a) (Cache.key_of_model b));
  let solution_a, hit_a = Cache.find_or_solve cache a in
  let solution_b, hit_b = Cache.find_or_solve cache b in
  check_bool "first is a miss" false hit_a;
  check_bool "second is a hit" true hit_b;
  check_bool "same solution" true (solution_a == solution_b);
  check_int "hits" 1 (Cache.hits cache);
  check_int "misses" 1 (Cache.misses cache);
  check_close "hit rate" 0.5 (Cache.hit_rate cache)

let test_cache_perturbed_rate_misses () =
  let cache = Cache.create () in
  let base = two_class_model () in
  let perturbed =
    Model.map_class base 0 (fun c ->
        Crossbar.Traffic.with_alpha c (c.Crossbar.Traffic.alpha *. (1. +. 1e-13)))
  in
  check_bool "distinct keys" false
    (String.equal (Cache.key_of_model base) (Cache.key_of_model perturbed));
  ignore (Cache.find_or_solve cache base);
  let _, hit = Cache.find_or_solve cache perturbed in
  check_bool "perturbed rate misses" false hit;
  check_int "two entries" 2 (Cache.size cache)

let cache_hammer_prop =
  (* Many domains hammering one cache on a handful of distinct models: the
     counters must balance, the table must hold exactly the distinct keys,
     and every returned solution must be bit-identical to a direct solve. *)
  QCheck2.Test.make ~name:"cache: domains:4 hammer stays consistent" ~count:10
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 2 5) Helpers.random_model_gen)
    (fun models ->
      let models = Array.of_list models in
      let n = Array.length models in
      let direct = Array.map Solver.solve_full models in
      let distinct =
        List.length
          (List.sort_uniq String.compare
             (Array.to_list (Array.map Cache.key_of_model models)))
      in
      let cache = Cache.create () in
      let tasks = 64 in
      let results =
        Pool.run ~domains:4 ~tasks (fun i ->
            let which = i mod n in
            let solution, _hit = Cache.find_or_solve cache models.(which) in
            (which, solution))
      in
      check_int "hits + misses = tasks" tasks
        (Cache.hits cache + Cache.misses cache);
      check_int "size = distinct models" distinct (Cache.size cache);
      check_bool "at least one miss per distinct model" true
        (Cache.misses cache >= distinct);
      Array.iter
        (fun (which, (solution : Solver.solution)) ->
          check_bool "log G bit-identical to direct solve" true
            (Int64.equal
               (Int64.bits_of_float solution.Solver.log_normalization)
               (Int64.bits_of_float direct.(which).Solver.log_normalization)))
        results;
      true)

let test_cache_algorithm_in_key () =
  let model = two_class_model () in
  check_bool "algorithms key separately" false
    (String.equal
       (Cache.key_of_model ~algorithm:Solver.Convolution model)
       (Cache.key_of_model ~algorithm:Solver.Mean_value model))

(* ---------- memo capacity / eviction ---------- *)

let memo_get memo key value =
  fst (Cache.Memo.find_or_compute memo key (fun () -> value))

let test_memo_capacity_bounds_size () =
  let memo = Cache.Memo.create ~capacity:2 () in
  check_int "a" 1 (memo_get memo "a" 1);
  check_int "b" 2 (memo_get memo "b" 2);
  check_int "c" 3 (memo_get memo "c" 3);
  check_int "size stays at capacity" 2 (Cache.Memo.size memo);
  check_int "one eviction" 1 (Cache.Memo.evictions memo);
  check_int "misses" 3 (Cache.Memo.misses memo);
  check_int "hits" 0 (Cache.Memo.hits memo)

let test_memo_evicts_least_recently_used () =
  let memo = Cache.Memo.create ~capacity:2 () in
  ignore (memo_get memo "a" 1);
  ignore (memo_get memo "b" 2);
  (* Touch "a": it becomes the most recently used, so inserting "c"
     must displace "b", not "a". *)
  check_int "hit refreshes recency" 1 (memo_get memo "a" 99);
  ignore (memo_get memo "c" 3);
  check_int "a survives" 1 (memo_get memo "a" 99);
  check_int "b was evicted and recomputes" 20 (memo_get memo "b" 20);
  check_int "evictions" 2 (Cache.Memo.evictions memo)

let test_memo_unbounded_never_evicts () =
  let memo = Cache.Memo.create () in
  for i = 0 to 99 do
    ignore (memo_get memo (string_of_int i) i)
  done;
  check_int "all entries retained" 100 (Cache.Memo.size memo);
  check_int "no evictions" 0 (Cache.Memo.evictions memo)

let test_memo_clear_resets_stats () =
  (* clear returns the memo to its freshly-created state: entries AND
     statistics.  Keeping stale hit/miss counts across a clear made
     post-clear hit rates unreadable (a cleared cache reported the old
     warm rate while serving nothing but misses). *)
  let memo = Cache.Memo.create ~capacity:4 () in
  ignore (memo_get memo "a" 1);
  ignore (memo_get memo "a" 1);
  ignore (memo_get memo "b" 2);
  ignore (memo_get memo "c" 3);
  ignore (memo_get memo "d" 4);
  ignore (memo_get memo "e" 5);
  check_bool "setup saw an eviction" true (Cache.Memo.evictions memo > 0);
  Cache.Memo.clear memo;
  check_int "emptied" 0 (Cache.Memo.size memo);
  check_int "hits reset" 0 (Cache.Memo.hits memo);
  check_int "misses reset" 0 (Cache.Memo.misses memo);
  check_int "evictions reset" 0 (Cache.Memo.evictions memo);
  (* Counting restarts from zero, exactly as on a fresh memo. *)
  check_int "recomputes after clear" 7 (memo_get memo "a" 7);
  check_int "one miss since clear" 1 (Cache.Memo.misses memo);
  check_int "hit counts again" 7 (memo_get memo "a" 9);
  check_int "one hit since clear" 1 (Cache.Memo.hits memo)

let test_memo_find_and_set () =
  let memo = Cache.Memo.create ~capacity:2 () in
  check_bool "find on empty misses" true (Cache.Memo.find memo "a" = None);
  check_int "find counted the miss" 1 (Cache.Memo.misses memo);
  Cache.Memo.set memo "a" 1;
  check_bool "set then find" true (Cache.Memo.find memo "a" = Some 1);
  Cache.Memo.set memo "a" 10;
  check_bool "set overwrites in place" true
    (Cache.Memo.find memo "a" = Some 10);
  check_int "overwrite is not an insert" 1 (Cache.Memo.size memo);
  (* set participates in LRU: freshly set "b", then touch "a", then set
     "c" — "b" is the least recently used and must be the one evicted. *)
  Cache.Memo.set memo "b" 2;
  ignore (Cache.Memo.find memo "a");
  Cache.Memo.set memo "c" 3;
  check_int "capacity held" 2 (Cache.Memo.size memo);
  check_bool "a survives (recently used)" true
    (Cache.Memo.find memo "a" = Some 10);
  check_bool "b evicted" true (Cache.Memo.find memo "b" = None);
  check_int "eviction counted" 1 (Cache.Memo.evictions memo)

let test_memo_rejects_bad_capacity () =
  Helpers.check_invalid_contains "capacity 0" ~substring:"capacity=0"
    (fun () -> ignore (Cache.Memo.create ~capacity:0 ()));
  check_raises_invalid "negative capacity" (fun () ->
      ignore (Cache.create ~capacity:(-3) ()))

let test_memo_on_evict_fires_on_capacity () =
  let seen = ref [] in
  let memo =
    Cache.Memo.create ~capacity:2
      ~on_evict:(fun key value -> seen := (key, value) :: !seen)
      ()
  in
  check_int "a" 1 (memo_get memo "a" 1);
  check_int "b" 2 (memo_get memo "b" 2);
  check_bool "no eviction below capacity" true (!seen = []);
  (* "a" is LRU; inserting "c" displaces it — key and value both reach
     the callback. *)
  check_int "c" 3 (memo_get memo "c" 3);
  check_bool "victim delivered with its value" true (!seen = [ ("a", 1) ]);
  check_int "counter agrees with the callback" 1 (Cache.Memo.evictions memo);
  (* A fresh insert via [set] displaces the same way. *)
  Cache.Memo.set memo "d" 4;
  check_bool "set-displaced victim delivered" true
    (List.mem_assoc "b" !seen);
  check_int "two capacity evictions" 2 (Cache.Memo.evictions memo)

let test_memo_on_evict_quiet_on_replace_and_clear () =
  let fired = ref 0 in
  let memo =
    Cache.Memo.create ~capacity:2 ~on_evict:(fun _ _ -> incr fired) ()
  in
  Cache.Memo.set memo "a" 1;
  Cache.Memo.set memo "b" 2;
  (* In-place replacement is the caller handing over a new value — not
     displacement; clear is an explicit drop.  Neither notifies, exactly
     mirroring what [evictions] counts. *)
  Cache.Memo.set memo "a" 10;
  check_int "replace does not notify" 0 !fired;
  Cache.Memo.clear memo;
  check_int "clear does not notify" 0 !fired;
  check_int "nothing counted either" 0 (Cache.Memo.evictions memo)

let test_memo_on_evict_may_reenter () =
  (* The callback runs after the lock is released, so an on_evict that
     re-enters the memo (as the serve registry's bookkeeping may) must
     not deadlock. *)
  let memo_holder = ref None in
  let reentered = ref 0 in
  let memo =
    Cache.Memo.create ~capacity:1
      ~on_evict:(fun _ _ ->
        match !memo_holder with
        | Some memo ->
            incr reentered;
            ignore (Cache.Memo.size memo);
            ignore (Cache.Memo.find memo "probe")
        | None -> ())
      ()
  in
  memo_holder := Some memo;
  check_int "a" 1 (memo_get memo "a" 1);
  check_int "b displaces a" 2 (memo_get memo "b" 2);
  check_bool "callback re-entered the memo" true (!reentered > 0)

let test_bounded_solver_cache_still_correct () =
  (* A solver cache squeezed below the working set must recompute, never
     corrupt: every returned solution stays bit-identical to a direct
     solve. *)
  let cache = Cache.create ~capacity:2 () in
  let models =
    Array.of_list (List.map snd (Helpers.validation_models ()))
  in
  let direct = Array.map Solver.solve_full models in
  for _pass = 1 to 2 do
    Array.iteri
      (fun i model ->
        let solution, _hit = Cache.find_or_solve cache model in
        check_bool "bounded cache solution bit-identical" true
          (Int64.equal
             (Int64.bits_of_float solution.Solver.log_normalization)
             (Int64.bits_of_float direct.(i).Solver.log_normalization)))
      models
  done;
  check_int "size bounded" 2 (Cache.size cache);
  check_bool "evictions happened" true (Cache.evictions cache > 0)

(* ---------- sweep determinism ---------- *)

let bits_equal label a b =
  check_bool label true (Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))

let check_outcomes_bit_identical (seq : Sweep.outcome array)
    (par : Sweep.outcome array) =
  check_int "same count" (Array.length seq) (Array.length par);
  Array.iteri
    (fun i (a : Sweep.outcome) ->
      let b = par.(i) in
      bits_equal "log G" (Sweep.log_normalization a) (Sweep.log_normalization b);
      let ma = Sweep.measures a and mb = Sweep.measures b in
      bits_equal "busy ports" ma.Measures.busy_ports mb.Measures.busy_ports;
      Array.iteri
        (fun r (ca : Measures.per_class) ->
          let cb = mb.Measures.per_class.(r) in
          bits_equal "blocking" ca.Measures.blocking cb.Measures.blocking;
          bits_equal "concurrency" ca.Measures.concurrency
            cb.Measures.concurrency;
          bits_equal "throughput" ca.Measures.throughput cb.Measures.throughput)
        ma.Measures.per_class)
    seq

let sweep_determinism_prop =
  QCheck2.Test.make
    ~name:"sweep: domains:1 and domains:4 are bit-identical" ~count:30
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 8) Helpers.random_model_gen)
    (fun batch ->
      let points =
        List.mapi
          (fun i model -> Sweep.point ~label:(string_of_int i) model)
          batch
      in
      let seq = Sweep.run ~domains:1 points in
      let par = Sweep.run ~domains:4 points in
      check_outcomes_bit_identical seq par;
      true)

let test_sweep_warm_cache_identical () =
  (* A duplicated batch through one shared cache: second pass must be all
     hits and still bit-identical to the cold pass. *)
  let cache = Cache.create () in
  let points =
    List.concat_map
      (fun (label, model) -> [ Sweep.point ~label model ])
      (validation_models ())
  in
  let cold = Sweep.run ~domains:2 ~cache points in
  let warm = Sweep.run ~domains:2 ~cache points in
  check_outcomes_bit_identical cold warm;
  Array.iter
    (fun (o : Sweep.outcome) -> check_bool "warm hit" true o.Sweep.from_cache)
    warm

let test_sweep_single_solve_per_model () =
  (* The engine never solves the same model twice: measures and log G
     come from one solve_full, and repeats within a batch hit the cache. *)
  let cache = Cache.create () in
  let telemetry = Telemetry.create () in
  let model = two_class_model () in
  let points = List.init 5 (fun i -> Sweep.point ~label:(string_of_int i) model) in
  let outcomes = Sweep.run ~domains:1 ~cache ~telemetry points in
  check_int "one miss" 1 (Cache.misses cache);
  check_int "four hits" 4 (Cache.hits cache);
  check_int "five records" 5 (Telemetry.count telemetry);
  let solution = outcomes.(0).Sweep.solution in
  let direct = Solver.solve_full model in
  bits_equal "log G matches direct solve_full"
    solution.Solver.log_normalization direct.Solver.log_normalization;
  bits_equal "blocking matches Solver.solve"
    (Solver.solve model).Measures.per_class.(0).Measures.blocking
    solution.Solver.measures.Measures.per_class.(0).Measures.blocking

(* ---------- solve_full consistency ---------- *)

let test_solve_full_matches_components () =
  List.iter
    (fun (label, model) ->
      List.iter
        (fun algorithm ->
          let full = Solver.solve_full ~algorithm model in
          check_close
            (label ^ ": log G in one solve")
            (Solver.log_normalization ~algorithm model)
            full.Solver.log_normalization ~tol:1e-12;
          check_close
            (label ^ ": blocking in one solve")
            (Solver.solve ~algorithm model).Measures.per_class.(0)
              .Measures.blocking
            full.Solver.measures.Measures.per_class.(0).Measures.blocking
            ~tol:1e-12)
        [ Solver.Brute_force; Solver.Convolution; Solver.Mean_value ])
    [ List.hd (validation_models ()); List.nth (validation_models ()) 3 ]

(* ---------- telemetry ---------- *)

let test_telemetry_records_in_point_order () =
  let telemetry = Telemetry.create () in
  let points =
    List.map
      (fun (label, model) -> Sweep.point ~label model)
      (validation_models ())
  in
  ignore (Sweep.run ~domains:3 ~telemetry points);
  let labels = List.map (fun s -> s.Telemetry.label) (Telemetry.solves telemetry) in
  check_bool "labels in point order" true
    (labels = List.map (fun p -> p.Sweep.label) points);
  check_bool "wall time accumulates" true
    (Telemetry.total_wall_seconds telemetry >= 0.);
  List.iter
    (fun s ->
      check_bool "cells recorded" true (s.Telemetry.lattice_cells > 0);
      check_int "no rescales at these sizes" 0 s.Telemetry.rescales)
    (Telemetry.solves telemetry)

let wall_record wall =
  {
    Telemetry.label = "synthetic";
    algorithm = "convolution";
    wall_seconds = wall;
    lattice_cells = 1;
    rescales = 0;
    tree_combines = 0;
    banded_combines = 0;
    from_cache = false;
    from_incremental = false;
  }

let test_telemetry_wall_percentiles () =
  let empty = Telemetry.create () in
  let p50, p95, wall_max = Telemetry.wall_percentiles empty in
  check_close "empty p50" 0. p50;
  check_close "empty p95" 0. p95;
  check_close "empty max" 0. wall_max;
  let single = Telemetry.create () in
  Telemetry.record single (wall_record 0.5);
  let p50, p95, wall_max = Telemetry.wall_percentiles single in
  check_close "single p50" 0.5 p50;
  check_close "single p95" 0.5 p95;
  check_close "single max" 0.5 wall_max;
  (* Nearest rank over {1..4} recorded out of order: p50 is the 2nd
     smallest, p95 the 4th. *)
  let four = Telemetry.create () in
  List.iter (fun w -> Telemetry.record four (wall_record w)) [ 3.; 1.; 4.; 2. ];
  let p50, p95, wall_max = Telemetry.wall_percentiles four in
  check_close "p50 nearest rank" 2. p50;
  check_close "p95 nearest rank" 4. p95;
  check_close "max" 4. wall_max;
  (* 20 records: p95 must exclude only the top record. *)
  let twenty = Telemetry.create () in
  for i = 20 downto 1 do
    Telemetry.record twenty (wall_record (float_of_int i))
  done;
  let p50, p95, wall_max = Telemetry.wall_percentiles twenty in
  check_close "p50 of 20" 10. p50;
  check_close "p95 of 20" 19. p95;
  check_close "max of 20" 20. wall_max

let test_telemetry_clamps_negative_wall () =
  (* A non-monotonic time source could hand record a negative delta;
     it must be stored as zero so totals and percentiles never move
     backwards. *)
  let telemetry = Telemetry.create () in
  Telemetry.record telemetry (wall_record (-0.25));
  Telemetry.record telemetry (wall_record 0.5);
  (match Telemetry.solves telemetry with
  | [ first; second ] ->
      check_close "negative clamped to zero" 0. first.Telemetry.wall_seconds;
      check_close "positive untouched" 0.5 second.Telemetry.wall_seconds
  | _ -> Alcotest.fail "expected two records");
  check_close "total never negative" 0.5
    (Telemetry.total_wall_seconds telemetry);
  let p50, _, _ = Telemetry.wall_percentiles telemetry in
  check_bool "percentiles non-negative" true (p50 >= 0.)

let test_telemetry_snapshot_consistent_under_load () =
  (* to_json must take ONE locked snapshot: while another domain keeps
     recording, every emitted document must agree with itself — the
     solve count equals the record list length, and the total equals the
     sum over exactly those records. *)
  let telemetry = Telemetry.create () in
  let outcomes =
    Pool.run ~domains:2 ~tasks:2 (fun task ->
        if task = 0 then begin
          for i = 1 to 500 do
            Telemetry.record telemetry (wall_record (float_of_int i))
          done;
          true
        end
        else begin
          let consistent = ref true in
          for _ = 1 to 50 do
            match Telemetry.to_json telemetry with
            | Json.Assoc _ as json ->
                let count =
                  match Json.member "solves" json with
                  | Some (Json.Int n) -> n
                  | _ -> -1
                in
                let records =
                  match Json.member "records" json with
                  | Some (Json.List rs) -> rs
                  | _ -> []
                in
                let total =
                  match Json.member "wall_seconds" json with
                  | Some (Json.Float f) -> f
                  | _ -> -1.
                in
                let sum =
                  List.fold_left
                    (fun acc r ->
                      match Json.member "wall_seconds" r with
                      | Some (Json.Float f) -> acc +. f
                      | _ -> acc)
                    0. records
                in
                if count <> List.length records then consistent := false;
                if
                  not
                    (Int64.equal (Int64.bits_of_float total)
                       (Int64.bits_of_float sum))
                then consistent := false
            | _ -> consistent := false
          done;
          !consistent
        end)
  in
  check_bool "recorder finished" true outcomes.(0);
  check_bool "every snapshot self-consistent" true outcomes.(1);
  check_int "all records landed" 500 (Telemetry.count telemetry)

(* ---------- monotonic clock ---------- *)

let test_clock_monotonic () =
  let previous = ref (Clock.now ()) in
  for _ = 1 to 1000 do
    let t = Clock.now () in
    check_bool "never goes backwards" true (t >= !previous);
    previous := t
  done;
  check_bool "now_ns positive" true (Int64.compare (Clock.now_ns ()) 0L > 0)

let test_clock_elapsed_clamped () =
  let started = Clock.now () in
  check_bool "elapsed non-negative" true (Clock.elapsed_since started >= 0.);
  (* A start stamp from the future (the NTP-step scenario the monotonic
     clock exists to rule out) still yields zero, never a negative. *)
  check_close "future start clamps to zero" 0.
    (Clock.elapsed_since (started +. 3600.))

(* ---------- json ---------- *)

let sample_json =
  Json.Assoc
    [
      ("schema", Json.String "crossbar-bench/1");
      ("count", Json.Int 3);
      ("rate", Json.Float 0.062992125984251968);
      ("ok", Json.Bool true);
      ("nothing", Json.Null);
      ("names", Json.List [ Json.String "a\"b\\c"; Json.String "tab\there" ]);
      ("nested", Json.Assoc [ ("empty_list", Json.List []); ("empty", Json.Assoc []) ]);
    ]

let test_json_roundtrip () =
  (match Json.of_string (Json.to_string sample_json) with
  | Ok parsed -> check_bool "compact roundtrip" true (parsed = sample_json)
  | Error m -> Alcotest.failf "compact roundtrip failed: %s" m);
  match Json.of_string (Format.asprintf "%a" Json.pp sample_json) with
  | Ok parsed -> check_bool "pretty roundtrip" true (parsed = sample_json)
  | Error m -> Alcotest.failf "pretty roundtrip failed: %s" m

let test_json_float_fidelity () =
  List.iter
    (fun f ->
      match Json.of_string (Json.to_string (Json.Float f)) with
      | Ok (Json.Float g) ->
          check_bool "float bits survive" true
            (Int64.equal (Int64.bits_of_float f) (Int64.bits_of_float g))
      | _ -> Alcotest.fail "float did not roundtrip")
    [ 0.1; 1e-300; 6.02214076e23; -0.0024; Float.pi ];
  (* Non-finite floats must degrade to null, never to invalid tokens. *)
  check_bool "inf is null" true
    (String.equal (Json.to_string (Json.Float Float.infinity)) "null");
  check_bool "nan is null" true
    (String.equal (Json.to_string (Json.Float Float.nan)) "null")

let test_json_rejects_malformed () =
  List.iter
    (fun text ->
      match Json.of_string text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed JSON %S" text)
    [ "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; ""; "{\"a\" 1}"; "\"unterminated" ]

let test_json_member () =
  check_bool "member finds field" true
    (Json.member "count" sample_json = Some (Json.Int 3));
  check_bool "member misses absent" true (Json.member "absent" sample_json = None);
  check_bool "member on non-object" true (Json.member "x" (Json.Int 1) = None)

let test_telemetry_json_shape () =
  let cache = Cache.create () in
  let telemetry = Telemetry.create () in
  let model = two_class_model () in
  ignore
    (Sweep.run ~domains:1 ~cache ~telemetry
       [ Sweep.point ~label:"a" model; Sweep.point ~label:"b" model ]);
  let json = Telemetry.to_json ~cache ~domains:1 telemetry in
  (* The emitted document must re-parse and carry the schema fields the
     bench snapshot consumer checks for. *)
  (match Json.of_string (Json.to_string json) with
  | Ok reparsed -> check_bool "reparses" true (reparsed = json)
  | Error m -> Alcotest.failf "telemetry json malformed: %s" m);
  check_bool "solve count" true (Json.member "solves" json = Some (Json.Int 2));
  List.iter
    (fun field ->
      match Json.member field json with
      | Some (Json.Float v) ->
          check_bool (field ^ " non-negative") true (v >= 0.)
      | _ -> Alcotest.failf "%s missing from telemetry json" field)
    [ "wall_seconds_p50"; "wall_seconds_p95"; "wall_seconds_max" ];
  (* One miss solved the two-class model: R - 1 = 1 combine; the hit
     contributes zero, so the aggregate counter is exactly 1. *)
  check_bool "tree_combines aggregated" true
    (Json.member "tree_combines" json = Some (Json.Int 1));
  (match Json.member "cache" json with
  | Some cache_json ->
      check_bool "hits" true (Json.member "hits" cache_json = Some (Json.Int 1));
      check_bool "misses" true
        (Json.member "misses" cache_json = Some (Json.Int 1));
      check_bool "evictions" true
        (Json.member "evictions" cache_json = Some (Json.Int 0))
  | None -> Alcotest.fail "cache stats missing");
  match Json.member "records" json with
  | Some (Json.List [ first; second ]) ->
      check_bool "first label" true
        (Json.member "label" first = Some (Json.String "a"));
      check_bool "first records its combines" true
        (Json.member "tree_combines" first = Some (Json.Int 1));
      check_bool "second from cache" true
        (Json.member "from_cache" second = Some (Json.Bool true));
      check_bool "cache hit does no combines" true
        (Json.member "tree_combines" second = Some (Json.Int 0))
  | _ -> Alcotest.fail "records list missing"

let () =
  Alcotest.run "engine"
    [
      ( "pool",
        [
          case "index order" test_pool_orders_results;
          case "empty and single" test_pool_empty_and_single;
          case "more domains than tasks" test_pool_more_domains_than_tasks;
          case "exception propagation" test_pool_propagates_exception;
          case "first failure wins" test_pool_first_failure_wins;
          case "bad arguments" test_pool_rejects_bad_arguments;
          case "CROSSBAR_DOMAINS override" test_pool_env_override;
        ] );
      ( "cache",
        [
          case "structural hit" test_cache_structural_hit;
          case "perturbed rate misses" test_cache_perturbed_rate_misses;
          case "algorithm in key" test_cache_algorithm_in_key;
          qcheck cache_hammer_prop;
        ] );
      ( "memo capacity",
        [
          case "size bounded" test_memo_capacity_bounds_size;
          case "LRU eviction order" test_memo_evicts_least_recently_used;
          case "unbounded never evicts" test_memo_unbounded_never_evicts;
          case "clear resets statistics" test_memo_clear_resets_stats;
          case "find and set" test_memo_find_and_set;
          case "rejects bad capacity" test_memo_rejects_bad_capacity;
          case "on_evict fires on capacity displacement"
            test_memo_on_evict_fires_on_capacity;
          case "on_evict quiet on replace and clear"
            test_memo_on_evict_quiet_on_replace_and_clear;
          case "on_evict may re-enter the memo"
            test_memo_on_evict_may_reenter;
          case "bounded solver cache stays correct"
            test_bounded_solver_cache_still_correct;
        ] );
      ( "sweep",
        [
          case "warm cache identical" test_sweep_warm_cache_identical;
          case "single solve per model" test_sweep_single_solve_per_model;
          case "solve_full consistency" test_solve_full_matches_components;
        ] );
      ("determinism", [ qcheck sweep_determinism_prop ]);
      ( "telemetry",
        [
          case "records in point order" test_telemetry_records_in_point_order;
          case "wall-time percentiles" test_telemetry_wall_percentiles;
          case "negative wall time clamped" test_telemetry_clamps_negative_wall;
          case "snapshot consistent under load"
            test_telemetry_snapshot_consistent_under_load;
          case "json shape" test_telemetry_json_shape;
        ] );
      ( "clock",
        [
          case "monotonic" test_clock_monotonic;
          case "elapsed clamped" test_clock_elapsed_clamped;
        ] );
      ( "json",
        [
          case "roundtrip" test_json_roundtrip;
          case "float fidelity" test_json_float_fidelity;
          case "rejects malformed" test_json_rejects_malformed;
          case "member" test_json_member;
        ] );
    ]
