open Helpers
module Erlang = Crossbar_baselines.Erlang
module Engset = Crossbar_baselines.Engset
module Sync_crossbar = Crossbar_baselines.Sync_crossbar
module Multistage = Crossbar_baselines.Multistage

(* ---------- Erlang ---------- *)

let test_erlang_b_known () =
  check_close "B(0, rho) = 1" 1. (Erlang.erlang_b ~servers:0 ~offered_load:2.);
  check_close "B(1, 1) = 1/2" 0.5 (Erlang.erlang_b ~servers:1 ~offered_load:1.);
  check_close "B(2, 1) = 1/5" 0.2 (Erlang.erlang_b ~servers:2 ~offered_load:1.);
  (* Direct formula check: B(c, rho) = (rho^c/c!) / sum rho^k/k!. *)
  let direct c rho =
    let term k =
      exp
        ((float_of_int k *. log rho)
        -. Crossbar_numerics.Special.log_factorial k)
    in
    let total = ref 0. in
    for k = 0 to c do
      total := !total +. term k
    done;
    term c /. !total
  in
  List.iter
    (fun (c, rho) ->
      check_close
        (Printf.sprintf "B(%d, %g)" c rho)
        (direct c rho)
        (Erlang.erlang_b ~servers:c ~offered_load:rho)
        ~tol:1e-12)
    [ (5, 3.); (10, 8.); (20, 12.); (50, 45.) ]

let test_erlang_b_zero_load () =
  check_close "no load no blocking" 0.
    (Erlang.erlang_b ~servers:3 ~offered_load:0.)

let test_erlang_c () =
  (* Known value: C(2, 1) = 1/3. *)
  check_close "C(2,1)" (1. /. 3.) (Erlang.erlang_c ~servers:2 ~offered_load:1.);
  check_bool "C >= B" true
    (Erlang.erlang_c ~servers:5 ~offered_load:3.
    >= Erlang.erlang_b ~servers:5 ~offered_load:3.);
  check_raises_invalid "unstable" (fun () ->
      ignore (Erlang.erlang_c ~servers:2 ~offered_load:2.))

let test_servers_for_blocking () =
  let c = Erlang.servers_for_blocking ~offered_load:10. ~target:0.01 in
  check_bool "meets target" true
    (Erlang.erlang_b ~servers:c ~offered_load:10. <= 0.01);
  check_bool "minimal" true
    (Erlang.erlang_b ~servers:(c - 1) ~offered_load:10. > 0.01);
  check_raises_invalid "target 1" (fun () ->
      ignore (Erlang.servers_for_blocking ~offered_load:1. ~target:1.))

(* ---------- Engset ---------- *)

let engset_direct ~servers ~sources ~ratio =
  (* Independent re-derivation via explicit binomial weights. *)
  let weight k =
    Crossbar_numerics.Special.binomial sources k *. (ratio ** float_of_int k)
  in
  let total = ref 0. in
  for k = 0 to servers do
    total := !total +. weight k
  done;
  if sources < servers then 0. else weight servers /. !total

let test_engset_time_congestion () =
  List.iter
    (fun (servers, sources, rate) ->
      check_close
        (Printf.sprintf "E(%d servers, %d sources)" servers sources)
        (engset_direct ~servers ~sources ~ratio:rate)
        (Engset.time_congestion ~servers ~sources ~idle_rate:rate
           ~service_rate:1.)
        ~tol:1e-12)
    [ (3, 10, 0.2); (5, 8, 0.5); (2, 20, 0.1); (4, 4, 1.0) ]

let test_engset_call_congestion () =
  (* Arriving-customer theorem: call congestion = time congestion with one
     source removed. *)
  check_close "one fewer source"
    (Engset.time_congestion ~servers:3 ~sources:9 ~idle_rate:0.4
       ~service_rate:1.)
    (Engset.call_congestion ~servers:3 ~sources:10 ~idle_rate:0.4
       ~service_rate:1.);
  check_bool "call < time (smooth)" true
    (Engset.call_congestion ~servers:3 ~sources:10 ~idle_rate:0.4
       ~service_rate:1.
    < Engset.time_congestion ~servers:3 ~sources:10 ~idle_rate:0.4
        ~service_rate:1.)

let test_engset_limits () =
  (* Few sources: a group the sources cannot fill never blocks. *)
  check_close "underfilled" 0.
    (Engset.time_congestion ~servers:5 ~sources:3 ~idle_rate:1. ~service_rate:1.);
  (* Many sources with per-source rate lambda/S approaches Erlang B. *)
  let erlang = Erlang.erlang_b ~servers:4 ~offered_load:3. in
  let engset sources =
    Engset.time_congestion ~servers:4 ~sources
      ~idle_rate:(3. /. float_of_int sources)
      ~service_rate:1.
  in
  check_bool "converges upward" true
    (Float.abs (engset 2000 -. erlang) < Float.abs (engset 20 -. erlang));
  check_abs "close at 2000 sources" erlang (engset 2000) ~tol:2e-3

(* ---------- synchronous crossbar ---------- *)

let test_sync_crossbar_formulas () =
  check_close "2x2 saturated" 0.75 (Sync_crossbar.saturation_throughput ~size:2);
  check_abs "large switch -> 1 - 1/e"
    (1. -. exp (-1.))
    (Sync_crossbar.saturation_throughput ~size:4096)
    ~tol:1e-4;
  check_close "zero offered" 0.
    (Sync_crossbar.throughput ~inputs:8 ~outputs:8 ~request_probability:0.);
  check_close "accept at p=0" 1.
    (Sync_crossbar.acceptance_probability ~inputs:8 ~outputs:8
       ~request_probability:0.)

let test_sync_crossbar_monotonicity () =
  let accept p =
    Sync_crossbar.acceptance_probability ~inputs:16 ~outputs:16
      ~request_probability:p
  in
  let previous = ref (accept 0.05) in
  List.iter
    (fun p ->
      let a = accept p in
      check_bool "acceptance decreasing" true (a <= !previous);
      check_bool "within [0,1]" true (a >= 0. && a <= 1.);
      previous := a)
    [ 0.1; 0.3; 0.5; 0.8; 1.0 ]

let test_sync_crossbar_rectangular () =
  (* More outputs than inputs: nearly everything is granted. *)
  check_bool "fanout helps" true
    (Sync_crossbar.acceptance_probability ~inputs:4 ~outputs:64
       ~request_probability:1.
    > Sync_crossbar.acceptance_probability ~inputs:4 ~outputs:4
        ~request_probability:1.);
  check_raises_invalid "bad p" (fun () ->
      ignore
        (Sync_crossbar.throughput ~inputs:4 ~outputs:4 ~request_probability:1.5))

(* ---------- multistage ---------- *)

let test_multistage_stages () =
  check_int "64 = 2^6" 6 (Multistage.stages ~switch_size:64 ~fanout:2);
  check_int "64 = 4^3" 3 (Multistage.stages ~switch_size:64 ~fanout:4);
  check_raises_invalid "not a power" (fun () ->
      ignore (Multistage.stages ~switch_size:48 ~fanout:4));
  check_raises_invalid "fanout 1" (fun () ->
      ignore (Multistage.stages ~switch_size:8 ~fanout:1))

let test_multistage_single_stage_is_crossbar () =
  (* One k x k stage: same formula as the slotted crossbar. *)
  check_close "k=8, one stage"
    (Sync_crossbar.throughput ~inputs:8 ~outputs:8 ~request_probability:0.7)
    (Multistage.throughput ~switch_size:8 ~fanout:8 ~request_probability:0.7)

let test_multistage_loses_to_crossbar () =
  (* The motivation in the paper's introduction: a banyan of small
     switches blocks internally; the crossbar does not. *)
  List.iter
    (fun size ->
      check_bool
        (Printf.sprintf "banyan < crossbar at N=%d" size)
        true
        (Multistage.throughput ~switch_size:size ~fanout:2
           ~request_probability:1.
        < Sync_crossbar.throughput ~inputs:size ~outputs:size
            ~request_probability:1.))
    [ 16; 64; 256 ]

let test_multistage_degradation_with_depth () =
  let t fanout = Multistage.throughput ~switch_size:64 ~fanout ~request_probability:1. in
  (* Bigger building blocks = fewer stages = better throughput. *)
  check_bool "4x4 blocks beat 2x2" true (t 4 > t 2);
  check_bool "8x8 blocks beat 4x4" true (t 8 > t 4)

let test_crosspoint_complexity () =
  (* N log2 N vs N^2: 64 * 6 * 2 crosspoints for the banyan. *)
  check_int "banyan 64 (k=2)" (32 * 6 * 4)
    (Multistage.crosspoint_complexity ~switch_size:64 ~fanout:2);
  check_bool "cheaper than crossbar" true
    (Multistage.crosspoint_complexity ~switch_size:256 ~fanout:2 < 256 * 256)

let () =
  Alcotest.run "baselines"
    [
      ( "erlang",
        [
          case "known values" test_erlang_b_known;
          case "zero load" test_erlang_b_zero_load;
          case "erlang c" test_erlang_c;
          case "dimensioning" test_servers_for_blocking;
        ] );
      ( "engset",
        [
          case "time congestion" test_engset_time_congestion;
          case "call congestion" test_engset_call_congestion;
          case "limits" test_engset_limits;
        ] );
      ( "sync-crossbar",
        [
          case "formulas" test_sync_crossbar_formulas;
          case "monotonicity" test_sync_crossbar_monotonicity;
          case "rectangular" test_sync_crossbar_rectangular;
        ] );
      ( "multistage",
        [
          case "stages" test_multistage_stages;
          case "single stage" test_multistage_single_stage_is_crossbar;
          case "loses to crossbar" test_multistage_loses_to_crossbar;
          case "depth degradation" test_multistage_degradation_with_depth;
          case "complexity" test_crosspoint_complexity;
        ] );
    ]
