(* Shared test utilities: float comparisons with relative tolerance, qcheck
   adapters and small model builders used across suites. *)

let check_close ?(tol = 1e-9) label expected actual =
  let scale = Float.max (Float.abs expected) (Float.abs actual) in
  let close =
    if scale = 0. then true else Float.abs (expected -. actual) /. scale <= tol
  in
  if not close then
    Alcotest.failf "%s: expected %.17g, got %.17g (rel err %.3g > %.3g)" label
      expected actual
      (Float.abs (expected -. actual) /. scale)
      tol

let check_abs ?(tol = 1e-9) label expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.17g, got %.17g (abs err %.3g > %.3g)" label
      expected actual
      (Float.abs (expected -. actual))
      tol

let check_bool label expected actual = Alcotest.(check bool) label expected actual
let check_int label expected actual = Alcotest.(check int) label expected actual

let check_raises_invalid label f =
  match f () with
  | exception Invalid_argument _ -> ()
  | exception e ->
      Alcotest.failf "%s: expected Invalid_argument, got %s" label
        (Printexc.to_string e)
  | _ -> Alcotest.failf "%s: expected Invalid_argument, got success" label

(* Like [check_raises_invalid], but also requires the message to carry
   [substring] — validation errors must name the offending value. *)
let check_invalid_contains label ~substring f =
  match f () with
  | exception Invalid_argument message ->
      let contained =
        let n = String.length substring and m = String.length message in
        let rec scan i =
          i + n <= m && (String.sub message i n = substring || scan (i + 1))
        in
        scan 0
      in
      if not contained then
        Alcotest.failf "%s: Invalid_argument %S does not mention %S" label
          message substring
  | exception e ->
      Alcotest.failf "%s: expected Invalid_argument, got %s" label
        (Printexc.to_string e)
  | _ -> Alcotest.failf "%s: expected Invalid_argument, got success" label

let check_raises_failure label f =
  match f () with
  | exception Failure _ -> ()
  | exception e ->
      Alcotest.failf "%s: expected Failure, got %s" label
        (Printexc.to_string e)
  | _ -> Alcotest.failf "%s: expected Failure, got success" label

let case name f = Alcotest.test_case name `Quick f
let slow_case name f = Alcotest.test_case name `Slow f
let qcheck t = QCheck_alcotest.to_alcotest t

(* --- model builders shared by the solver suites --- *)

let poisson ?(name = "p") ?(bandwidth = 1) ?(mu = 1.0) rate =
  Crossbar.Traffic.poisson ~name ~bandwidth ~rate ~service_rate:mu ()

let pascal ?(name = "q") ?(bandwidth = 1) ?(mu = 1.0) ~alpha ~beta () =
  Crossbar.Traffic.pascal ~name ~bandwidth ~alpha ~beta ~service_rate:mu ()

let bernoulli ?(name = "b") ?(bandwidth = 1) ?(mu = 1.0) ~sources ~rate () =
  Crossbar.Traffic.bernoulli ~name ~bandwidth ~sources ~per_source_rate:rate
    ~service_rate:mu ()

let mixed_model ~inputs ~outputs =
  Crossbar.Model.create ~inputs ~outputs
    ~classes:
      [
        poisson ~name:"poisson" 0.3;
        pascal ~name:"pascal" ~bandwidth:2 ~mu:0.5 ~alpha:0.2 ~beta:0.15 ();
        bernoulli ~name:"bernoulli" ~mu:2.0 ~sources:5 ~rate:0.08 ();
      ]

(* Random small models for property-based cross-validation. *)
let random_model_gen =
  let open QCheck2.Gen in
  let* inputs = int_range 2 6 in
  let* outputs = int_range 2 6 in
  let* num_classes = int_range 1 3 in
  let class_gen index =
    let* bandwidth = int_range 1 2 in
    let* alpha = float_range 0.05 2.0 in
    let* mu = float_range 0.5 2.0 in
    let* kind = int_range 0 2 in
    let name = Printf.sprintf "c%d" index in
    match kind with
    | 0 ->
        return
          (Crossbar.Traffic.poisson ~name ~bandwidth ~rate:alpha
             ~service_rate:mu ())
    | 1 ->
        let* beta = float_range 0.01 0.5 in
        return
          (Crossbar.Traffic.pascal ~name ~bandwidth ~alpha ~beta
             ~service_rate:mu ())
    | _ ->
        let* sources = int_range 1 6 in
        return
          (Crossbar.Traffic.bernoulli ~name ~bandwidth ~sources
             ~per_source_rate:(alpha /. float_of_int sources)
             ~service_rate:mu ())
  in
  let* classes = flatten_l (List.init num_classes class_gen) in
  return (Crossbar.Model.create ~inputs ~outputs ~classes)

(* A pool of structurally diverse small models for cross-validation. *)
let validation_models () =
  [
    ("single poisson 4x4", Crossbar.Model.square ~size:4 ~classes:[ poisson 0.5 ]);
    ( "single pascal 5x5",
      Crossbar.Model.square ~size:5
        ~classes:[ pascal ~alpha:0.4 ~beta:0.3 () ] );
    ( "single bernoulli 4x4",
      Crossbar.Model.square ~size:4
        ~classes:[ bernoulli ~sources:3 ~rate:0.2 () ] );
    ("mixed 5x4", mixed_model ~inputs:5 ~outputs:4);
    ("mixed 4x7", mixed_model ~inputs:4 ~outputs:7);
    ( "multirate poisson 6x6",
      Crossbar.Model.square ~size:6
        ~classes:
          [ poisson ~name:"a1" 0.4; poisson ~name:"a3" ~bandwidth:3 0.9 ] );
    ( "wide bandwidth 7x5",
      Crossbar.Model.create ~inputs:7 ~outputs:5
        ~classes:
          [
            pascal ~name:"wide" ~bandwidth:4 ~alpha:0.6 ~beta:0.2 ();
            poisson ~name:"thin" 0.2;
          ] );
    ( "heavy load 3x3",
      Crossbar.Model.square ~size:3
        ~classes:[ poisson ~name:"hot" 4.0; pascal ~name:"burst" ~alpha:2.0 ~beta:0.9 () ]
    );
  ]
