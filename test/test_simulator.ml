open Helpers
module Model = Crossbar.Model
module Measures = Crossbar.Measures
module Simulator = Crossbar_sim.Simulator
module Service = Crossbar_sim.Service

(* Statistical tests: fixed seeds, tolerances set to ~4-5 x the typical
   confidence halfwidth so spurious failures are vanishingly rare while
   real disagreement (a wrong factor anywhere) still trips them. *)

let sim_config ?(horizon = 4e4) ?(seed = 42) model =
  { (Simulator.default_config model) with horizon; warmup = 500.; seed }

let find_class (result : Simulator.result) name =
  match
    Array.find_opt
      (fun (c : Simulator.class_result) -> String.equal c.class_name name)
      result.Simulator.per_class
  with
  | Some c -> c
  | None -> Alcotest.failf "class %s missing from simulation" name

let test_matches_analysis_mixed () =
  let model = mixed_model ~inputs:4 ~outputs:4 in
  let analytic = Crossbar.Solver.solve model in
  let result = Simulator.run (sim_config model) in
  Array.iter
    (fun (c : Measures.per_class) ->
      let sim = find_class result c.Measures.name in
      check_abs
        (c.Measures.name ^ ": time congestion")
        c.Measures.blocking sim.Simulator.time_congestion.point
        ~tol:(Float.max 0.01 (5. *. sim.Simulator.time_congestion.halfwidth));
      check_abs
        (c.Measures.name ^ ": concurrency")
        c.Measures.concurrency sim.Simulator.concurrency.point
        ~tol:(Float.max 0.02 (5. *. sim.Simulator.concurrency.halfwidth)))
    analytic.Measures.per_class;
  check_abs "busy ports" analytic.Measures.busy_ports
    result.Simulator.busy_ports.point
    ~tol:(Float.max 0.03 (5. *. result.Simulator.busy_ports.halfwidth))

let test_pasta_poisson () =
  (* For a Poisson class, call congestion = time congestion (PASTA). *)
  let model = Model.square ~size:3 ~classes:[ poisson ~name:"p" 1.0 ] in
  let result = Simulator.run (sim_config ~horizon:6e4 model) in
  let c = find_class result "p" in
  check_abs "PASTA" c.Simulator.time_congestion.point
    c.Simulator.call_congestion.point
    ~tol:
      (Float.max 0.008
         (4.
         *. (c.Simulator.time_congestion.halfwidth
            +. c.Simulator.call_congestion.halfwidth)))

let test_engset_effect_smooth () =
  (* Bernoulli class: busy sources generate no arrivals, so attempts see a
     less congested switch: call congestion < time congestion. *)
  let model =
    Model.square ~size:2 ~classes:[ bernoulli ~name:"b" ~sources:3 ~rate:1.0 () ]
  in
  let result = Simulator.run (sim_config ~horizon:6e4 model) in
  let c = find_class result "b" in
  check_bool "call < time for smooth" true
    (c.Simulator.call_congestion.point
    < c.Simulator.time_congestion.point -. 2. *. c.Simulator.call_congestion.halfwidth)

let test_engset_effect_peaky () =
  (* Pascal class: arrivals cluster when the switch is already loaded, so
     attempts fare worse than the time average. *)
  let model =
    Model.square ~size:3 ~classes:[ pascal ~name:"q" ~alpha:0.5 ~beta:0.6 () ]
  in
  let result = Simulator.run (sim_config ~horizon:6e4 model) in
  let c = find_class result "q" in
  check_bool "call > time for peaky" true
    (c.Simulator.call_congestion.point
    > c.Simulator.time_congestion.point +. 2. *. c.Simulator.call_congestion.halfwidth)

let test_insensitivity () =
  (* Same model under exponential / deterministic / hyperexponential /
     Erlang holding times: the time-congestion estimates must agree with
     the (insensitive) analytical value. *)
  let model =
    Model.square ~size:3
      ~classes:[ poisson ~name:"p" 0.8; pascal ~name:"q" ~alpha:0.3 ~beta:0.2 () ]
  in
  let analytic = Crossbar.Solver.solve model in
  List.iter
    (fun shape ->
      let config =
        { (sim_config ~horizon:5e4 model) with service = (fun _ -> shape) }
      in
      let result = Simulator.run config in
      Array.iter
        (fun (c : Measures.per_class) ->
          let sim = find_class result c.Measures.name in
          check_abs
            (Printf.sprintf "%s under %s" c.Measures.name
               (Service.to_string shape))
            c.Measures.blocking sim.Simulator.time_congestion.point
            ~tol:
              (Float.max 0.012 (5. *. sim.Simulator.time_congestion.halfwidth)))
        analytic.Measures.per_class)
    [
      Service.Exponential;
      Service.Deterministic;
      Service.Erlang 4;
      Service.Hyperexponential 3.;
    ]

let test_multirate_simulation () =
  (* Bandwidth-2 connections must hold 2 ports and match analysis. *)
  let model =
    Model.square ~size:5
      ~classes:[ poisson ~name:"thin" 0.4; poisson ~name:"wide" ~bandwidth:2 0.5 ]
  in
  let analytic = Crossbar.Solver.solve model in
  let result = Simulator.run (sim_config model) in
  let wide = find_class result "wide" in
  let wide_analytic = Measures.class_named analytic "wide" in
  check_abs "wide time congestion" wide_analytic.Measures.blocking
    wide.Simulator.time_congestion.point
    ~tol:(Float.max 0.012 (5. *. wide.Simulator.time_congestion.halfwidth));
  check_abs "wide concurrency" wide_analytic.Measures.concurrency
    wide.Simulator.concurrency.point
    ~tol:(Float.max 0.02 (5. *. wide.Simulator.concurrency.halfwidth))

let test_determinism () =
  let model = mixed_model ~inputs:3 ~outputs:3 in
  let run () = Simulator.run (sim_config ~horizon:5e3 model) in
  let a = run () and b = run () in
  check_int "same events" a.Simulator.events b.Simulator.events;
  Array.iteri
    (fun i (c : Simulator.class_result) ->
      check_int "same offered" c.Simulator.offered
        b.Simulator.per_class.(i).Simulator.offered;
      check_close "same estimate" c.Simulator.time_congestion.point
        b.Simulator.per_class.(i).Simulator.time_congestion.point)
    a.Simulator.per_class;
  let c = Simulator.run (sim_config ~horizon:5e3 ~seed:43 model) in
  check_bool "different seed differs" true
    (c.Simulator.events <> a.Simulator.events
    || c.Simulator.per_class.(0).Simulator.offered
       <> a.Simulator.per_class.(0).Simulator.offered)

let test_acceptance_bookkeeping () =
  let model = Model.square ~size:2 ~classes:[ poisson ~name:"p" 2.0 ] in
  let result = Simulator.run (sim_config ~horizon:5e3 model) in
  let c = find_class result "p" in
  check_bool "accepted <= offered" true
    (c.Simulator.accepted <= c.Simulator.offered);
  check_bool "some blocked" true (c.Simulator.accepted < c.Simulator.offered);
  check_bool "some accepted" true (c.Simulator.accepted > 0)

let test_config_validation () =
  let model = Model.square ~size:2 ~classes:[ poisson 0.1 ] in
  check_raises_invalid "bad horizon" (fun () ->
      ignore (Simulator.run { (Simulator.default_config model) with horizon = 0. }));
  check_raises_invalid "bad batches" (fun () ->
      ignore (Simulator.run { (Simulator.default_config model) with batches = 1 }));
  check_raises_invalid "bad warmup" (fun () ->
      ignore
        (Simulator.run { (Simulator.default_config model) with warmup = -1. }))

let test_retry_increases_congestion () =
  (* Retries add load: time congestion must rise above the lost-calls
     model, and the bookkeeping must balance. *)
  let model = Model.square ~size:3 ~classes:[ poisson ~name:"p" 1.5 ] in
  let base = sim_config ~horizon:3e4 model in
  let without = Simulator.run base in
  let with_retry =
    Simulator.run
      {
        base with
        retry =
          Some
            {
              Simulator.probability = 0.9;
              mean_delay = 0.2;
              max_attempts = 5;
            };
      }
  in
  let c0 = find_class without "p" and c1 = find_class with_retry "p" in
  check_bool "congestion rises" true
    (c1.Simulator.time_congestion.point
    > c0.Simulator.time_congestion.point
      +. (3. *. c1.Simulator.time_congestion.halfwidth));
  check_bool "retries happened" true (c1.Simulator.retry_attempts > 0);
  check_bool "some retries succeed" true (c1.Simulator.retry_successes > 0);
  check_bool "successes bounded" true
    (c1.Simulator.retry_successes <= c1.Simulator.retry_attempts);
  check_bool "some abandoned" true (c1.Simulator.abandoned > 0);
  (* Without a policy the retry counters stay silent. *)
  check_int "no retries" 0 c0.Simulator.retry_attempts;
  check_int "no abandonment" 0 c0.Simulator.abandoned

let test_retry_zero_probability_is_lost_calls () =
  let model = Model.square ~size:2 ~classes:[ poisson ~name:"p" 1.0 ] in
  let base = sim_config ~horizon:5e3 model in
  let lost = Simulator.run base in
  let zero_retry =
    Simulator.run
      {
        base with
        retry =
          Some
            { Simulator.probability = 0.; mean_delay = 1.; max_attempts = 3 };
      }
  in
  let c0 = find_class lost "p" and c1 = find_class zero_retry "p" in
  (* Same random draws are not guaranteed (the policy consumes randomness)
     but the estimates must agree statistically, and no retry may fire. *)
  check_int "no retry attempts" 0 c1.Simulator.retry_attempts;
  check_abs "same congestion" c0.Simulator.time_congestion.point
    c1.Simulator.time_congestion.point
    ~tol:
      (Float.max 0.02
         (5.
         *. (c0.Simulator.time_congestion.halfwidth
            +. c1.Simulator.time_congestion.halfwidth)))

let test_retry_validation () =
  let model = Model.square ~size:2 ~classes:[ poisson 0.1 ] in
  let bad policy =
    { (Simulator.default_config model) with retry = Some policy }
  in
  check_raises_invalid "probability" (fun () ->
      ignore
        (Simulator.run
           (bad { Simulator.probability = 1.5; mean_delay = 1.; max_attempts = 1 })));
  check_raises_invalid "delay" (fun () ->
      ignore
        (Simulator.run
           (bad { Simulator.probability = 0.5; mean_delay = 0.; max_attempts = 1 })));
  check_raises_invalid "attempts" (fun () ->
      ignore
        (Simulator.run
           (bad { Simulator.probability = 0.5; mean_delay = 1.; max_attempts = -1 })))

let test_replications () =
  let model = Model.square ~size:3 ~classes:[ poisson ~name:"p" 0.8 ] in
  let config = sim_config ~horizon:8e3 model in
  let combined = Simulator.run_replications ~replications:5 config in
  check_int "replication count" 5 combined.Simulator.replications;
  let analytic = Crossbar.Solver.solve model in
  let estimate = combined.Simulator.rep_time_congestion.(0) in
  check_bool "positive halfwidth" true (estimate.Simulator.halfwidth > 0.);
  check_abs "matches analysis"
    analytic.Measures.per_class.(0).Measures.blocking
    estimate.Simulator.point
    ~tol:(Float.max 0.01 (5. *. estimate.Simulator.halfwidth));
  check_raises_invalid "too few" (fun () ->
      ignore (Simulator.run_replications ~replications:1 config))

let test_zero_rate_class () =
  (* A silent class must produce no arrivals and zero congestion effect. *)
  let model =
    Model.square ~size:2
      ~classes:[ poisson ~name:"live" 0.5; poisson ~name:"silent" 0. ]
  in
  let result = Simulator.run (sim_config ~horizon:5e3 model) in
  let silent = find_class result "silent" in
  check_int "no offers" 0 silent.Simulator.offered;
  check_close "no concurrency" 0. silent.Simulator.concurrency.point

let () =
  Alcotest.run "simulator"
    [
      ( "validation",
        [
          slow_case "matches analysis (mixed)" test_matches_analysis_mixed;
          slow_case "PASTA for poisson" test_pasta_poisson;
          slow_case "engset effect (smooth)" test_engset_effect_smooth;
          slow_case "engset effect (peaky)" test_engset_effect_peaky;
          slow_case "insensitivity" test_insensitivity;
          slow_case "multi-rate" test_multirate_simulation;
        ] );
      ( "mechanics",
        [
          case "determinism" test_determinism;
          case "bookkeeping" test_acceptance_bookkeeping;
          case "config validation" test_config_validation;
          case "zero-rate class" test_zero_rate_class;
        ] );
      ( "extensions",
        [
          slow_case "retries raise congestion" test_retry_increases_congestion;
          case "zero-probability retries" test_retry_zero_probability_is_lost_calls;
          case "retry validation" test_retry_validation;
          slow_case "independent replications" test_replications;
        ] );
    ]
