(* Fixture: five R1 violations, one legal exact-zero guard. *)

let exactly_pi x = x = 3.14
let not_half x = x <> 0.5
let above_threshold x = x > 0.75
let legal_guard x = x > 0.
let float_equal_literal x = Float.equal x 0.25
let float_compare_literal x = Float.compare x 1.5
