(* Fixture: the violation below is acknowledged and suppressed. *)

(* lint: disable=R1 — fixture demonstrating line suppression *)
let exactly_pi x = x = 3.14
