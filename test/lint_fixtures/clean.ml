(* Fixture: violates none of R1-R6 under the fixture config. *)

let add a b = a +. b
let positive x = x > 0.
let guarded f = try f () with Not_found -> 0.
