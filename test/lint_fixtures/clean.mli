val add : float -> float -> float
val positive : float -> bool
val guarded : (unit -> float) -> float
