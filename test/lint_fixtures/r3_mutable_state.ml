(* Fixture: two top-level mutable cells, one annotated as domain-safe. *)

let counter = ref 0
let table : (string, int) Hashtbl.t = Hashtbl.create 16

(* lint: domain-safe — fixture: guarded by an external mutex in the harness *)
let sanctioned = ref 0

let bump () = incr counter
let remember k v = Hashtbl.replace table k v
let sanctioned_bump () = incr sanctioned
let local_state_is_fine () =
  let scratch = ref 0 in
  incr scratch;
  !scratch
