(* Fixture: two stdout writes from library code. *)

let hello () = print_endline "hello"
let report n = Printf.printf "n = %d\n" n
let to_buffer b n = Printf.bprintf b "n = %d" n
