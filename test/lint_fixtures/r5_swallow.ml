(* Fixture: two exception-swallowing handlers, one precise one. *)

let swallow_try f = try f () with _ -> 0

let swallow_match f =
  match f () with
  | x -> x
  | exception _ -> 0

let precise f = try f () with Not_found -> 0
