(* Fixture: three raw transcendental calls that must go through Logspace. *)

let a x = exp x
let b x = log x
let c x = Float.log1p x
let fine x = sqrt x
