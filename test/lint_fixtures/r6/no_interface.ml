(* Fixture: a library module with no matching .mli. *)

let answer = 42
