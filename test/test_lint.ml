open Helpers
module Rule = Crossbar_lint.Rule
module Config = Crossbar_lint.Config
module Finding = Crossbar_lint.Finding
module Driver = Crossbar_lint.Driver
module Json = Crossbar_engine.Json

(* The fixtures live under test/lint_fixtures; the production prefixes in
   Config.default are remapped onto that tree so each rule can be exercised
   in isolation with known violation counts. *)
let fixture_config rules =
  {
    Config.default with
    rules;
    numerics_prefixes = [];
    r2_prefixes = [ "lint_fixtures" ];
    r3_scope = Config.Paths [ "lint_fixtures" ];
    r4_prefixes = [ "lint_fixtures" ];
    r6_prefixes = [ "lint_fixtures/r6" ];
  }

let lint_rule rule paths = Driver.lint ~config:(fixture_config [ rule ]) paths

let check_findings label expected findings =
  check_int (label ^ ": count") (List.length expected) (List.length findings);
  List.iter2
    (fun (rule, line) (f : Finding.t) ->
      check_bool
        (Printf.sprintf "%s: rule at line %d" label line)
        true
        (Rule.compare rule f.Finding.rule = 0);
      check_int (label ^ ": line") line f.Finding.line)
    expected findings

let test_r1_float_comparisons () =
  check_findings "r1"
    [ (Rule.R1, 3); (Rule.R1, 4); (Rule.R1, 5); (Rule.R1, 7); (Rule.R1, 8) ]
    (lint_rule Rule.R1 [ "lint_fixtures/r1_float_eq.ml" ])

let test_r1_suppression () =
  check_findings "r1 suppressed" []
    (lint_rule Rule.R1 [ "lint_fixtures/r1_suppressed.ml" ])

let test_r2_raw_transcendentals () =
  check_findings "r2"
    [ (Rule.R2, 3); (Rule.R2, 4); (Rule.R2, 5) ]
    (lint_rule Rule.R2 [ "lint_fixtures/r2_raw_exp.ml" ])

let test_r3_toplevel_mutable_state () =
  (* Two bare cells flagged; the domain-safe-annotated one and the
     function-local ref are not. *)
  check_findings "r3"
    [ (Rule.R3, 3); (Rule.R3, 4) ]
    (lint_rule Rule.R3 [ "lint_fixtures/r3_mutable_state.ml" ])

let test_r4_stdout_writes () =
  check_findings "r4"
    [ (Rule.R4, 3); (Rule.R4, 4) ]
    (lint_rule Rule.R4 [ "lint_fixtures/r4_stdout.ml" ])

let test_r5_swallowed_exceptions () =
  check_findings "r5"
    [ (Rule.R5, 3); (Rule.R5, 8) ]
    (lint_rule Rule.R5 [ "lint_fixtures/r5_swallow.ml" ])

let test_r6_missing_interface () =
  let findings = lint_rule Rule.R6 [ "lint_fixtures" ] in
  check_findings "r6" [ (Rule.R6, 1) ] findings;
  let f = List.hd findings in
  check_bool "r6: names the module" true
    (String.equal f.Finding.file "lint_fixtures/r6/no_interface.ml")

let test_clean_file_has_no_findings () =
  let config =
    { (fixture_config Rule.all) with Config.r6_prefixes = [ "lint_fixtures" ] }
  in
  check_findings "clean" []
    (Driver.lint ~config
       [ "lint_fixtures/clean.ml"; "lint_fixtures/clean.mli" ])

let fixture_tree_findings () =
  Driver.lint ~config:(fixture_config Rule.all) [ "lint_fixtures" ]

let test_whole_tree_totals () =
  let findings = fixture_tree_findings () in
  (* 5 R1 + 3 R2 + 2 R3 + 2 R4 + 2 R5 + 1 R6; the typed rules R7-R10 need
     .cmt artifacts and never fire from the Parsetree driver. *)
  check_int "total" 15 (List.length findings);
  List.iter
    (fun rule ->
      let expected =
        match rule with
        | Rule.R1 -> 5
        | Rule.R2 -> 3
        | Rule.R3 | Rule.R4 | Rule.R5 -> 2
        | Rule.R6 -> 1
        | Rule.R7 | Rule.R8 | Rule.R9 | Rule.R10 | Rule.R11 | Rule.R12
        | Rule.R13 | Rule.Syntax ->
            0
      in
      check_int
        (Printf.sprintf "count for %s" (Rule.to_string rule))
        expected
        (List.length
           (List.filter
              (fun (f : Finding.t) -> Rule.compare f.Finding.rule rule = 0)
              findings)))
    Rule.all

let test_json_report_roundtrip () =
  let findings = fixture_tree_findings () in
  let text = Json.to_string (Finding.report_to_json findings) in
  match Json.of_string text with
  | Error m -> Alcotest.failf "report does not re-parse: %s" m
  | Ok json -> (
      check_bool "schema present" true
        (Json.member "schema" json = Some (Json.String Finding.schema));
      check_bool "count present" true
        (Json.member "count" json = Some (Json.Int (List.length findings)));
      match Finding.report_of_json json with
      | Error m -> Alcotest.failf "report_of_json failed: %s" m
      | Ok decoded ->
          check_bool "lossless roundtrip" true (decoded = findings))

let test_json_report_rejects_wrong_schema () =
  let doc =
    Json.Assoc
      [
        ("schema", Json.String "not-a-lint-report/9");
        ("count", Json.Int 0);
        ("findings", Json.List []);
      ]
  in
  match Finding.report_of_json doc with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a report with the wrong schema"

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          case "R1 float comparisons" test_r1_float_comparisons;
          case "R1 suppression comment" test_r1_suppression;
          case "R2 raw transcendentals" test_r2_raw_transcendentals;
          case "R3 top-level mutable state" test_r3_toplevel_mutable_state;
          case "R4 stdout writes" test_r4_stdout_writes;
          case "R5 swallowed exceptions" test_r5_swallowed_exceptions;
          case "R6 missing interface" test_r6_missing_interface;
          case "clean file" test_clean_file_has_no_findings;
          case "whole-tree totals" test_whole_tree_totals;
        ] );
      ( "json",
        [
          case "report roundtrip" test_json_report_roundtrip;
          case "rejects wrong schema" test_json_report_rejects_wrong_schema;
        ] );
    ]
