(* The factor tree is the convolution solver: every solve walks the same
   balanced combine tree, so a full build, a delta re-solve of any subset
   of classes, and a parallel build must agree bit for bit — on every
   measure, every log G lattice entry and the rescale count.  The
   leave-one-out sweep and the diagonal depth walk are then cross-checked
   against the independent oracles (Occupancy, Brute_force, the legacy
   two-solve shadow-cost path). *)

module Conv = Crossbar.Convolution
module Tree = Crossbar.Convolution.Factor_tree
module Model = Crossbar.Model
module Traffic = Crossbar.Traffic
module Solver = Crossbar.Solver
module Measures = Crossbar.Measures
module Revenue = Crossbar.Revenue
module Occupancy = Crossbar.Occupancy
module Brute = Crossbar.Brute
module State_space = Crossbar_markov.State_space
module Sweep = Crossbar_engine.Sweep

let bits = Int64.bits_of_float
let floats_identical a b = Int64.equal (bits a) (bits b)

let check_bits label a b =
  if not (floats_identical a b) then
    Alcotest.failf "%s: %.17g and %.17g differ in bits" label a b

let check_measures label (a : Measures.t) (b : Measures.t) =
  check_bits (label ^ ".busy_ports") a.Measures.busy_ports
    b.Measures.busy_ports;
  check_bits
    (label ^ ".input_utilization")
    a.Measures.input_utilization b.Measures.input_utilization;
  check_bits
    (label ^ ".output_utilization")
    a.Measures.output_utilization b.Measures.output_utilization;
  Helpers.check_int
    (label ^ ".class count")
    (Array.length a.Measures.per_class)
    (Array.length b.Measures.per_class);
  Array.iteri
    (fun r (ca : Measures.per_class) ->
      let cb = b.Measures.per_class.(r) in
      let field name = Printf.sprintf "%s.class %d.%s" label r name in
      check_bits (field "offered_load") ca.Measures.offered_load
        cb.Measures.offered_load;
      check_bits (field "non_blocking") ca.Measures.non_blocking
        cb.Measures.non_blocking;
      check_bits (field "blocking") ca.Measures.blocking cb.Measures.blocking;
      check_bits (field "concurrency") ca.Measures.concurrency
        cb.Measures.concurrency;
      check_bits (field "throughput") ca.Measures.throughput
        cb.Measures.throughput)
    a.Measures.per_class

(* Compare log G over the whole lattice; entries flushed by dynamic
   rescaling raise Failure on both sides or neither. *)
let check_lattice label model full inc =
  for n1 = 0 to Model.inputs model do
    for n2 = 0 to Model.outputs model do
      let entry t =
        match Conv.log_g t ~inputs:n1 ~outputs:n2 with
        | value -> Ok value
        | exception Failure _ -> Error ()
      in
      match (entry full, entry inc) with
      | Ok a, Ok b ->
          check_bits (Printf.sprintf "%s.log_g(%d,%d)" label n1 n2) a b
      | Error (), Error () -> ()
      | Ok _, Error () | Error (), Ok _ ->
          Alcotest.failf "%s: log_g(%d,%d) flushed on one side only" label n1
            n2
    done
  done

let check_solved label model full inc =
  check_bits
    (label ^ ".log_normalization")
    (Conv.log_normalization full) (Conv.log_normalization inc);
  Helpers.check_int (label ^ ".rescale_count") (Conv.rescale_count full)
    (Conv.rescale_count inc);
  check_measures label (Conv.measures full) (Conv.measures inc);
  check_lattice label model full inc

let scale_class r factor model =
  Model.map_class model r (fun c -> Traffic.scale_load c factor)

(* --- property: delta re-solves of ANY class subset are bit-identical --- *)

let multi_delta_gen =
  let open QCheck2.Gen in
  let* model = Helpers.random_model_gen in
  let n = Model.num_classes model in
  let* forced = int_bound (n - 1) in
  let* flips = flatten_l (List.init n (fun _ -> bool)) in
  let* factors = flatten_l (List.init n (fun _ -> float_range 0.3 3.0)) in
  let changed = ref model in
  List.iteri
    (fun r flip ->
      if flip || r = forced then
        changed := scale_class r (List.nth factors r) !changed)
    flips;
  return (model, !changed)

let prop_delta_matches_full =
  QCheck2.Test.make ~count:60
    ~name:"solve_delta bit-identical to solve (any class subset)"
    multi_delta_gen
    (fun (model, changed) ->
      let previous = Conv.solve model in
      let inc = Conv.solve_delta ~previous changed in
      let full = Conv.solve changed in
      check_solved "delta" changed full inc;
      (* Chain a second hop back: two updates vs the original build. *)
      let back = Conv.solve_delta ~previous:inc model in
      check_solved "delta back" model previous back;
      true)

(* Same property where Section 6 dynamic rescaling fires, with two
   classes changing at once. *)
let rescaling_multi_gen =
  let open QCheck2.Gen in
  let* size = int_range 24 36 in
  let* rate = float_range 1e8 1e12 in
  let* f0 = float_range 0.5 2.0 in
  let* f1 = float_range 0.5 2.0 in
  let model =
    Model.square ~size
      ~classes:
        [
          Helpers.poisson ~name:"hot" rate;
          Helpers.pascal ~name:"warm" ~bandwidth:2 ~alpha:0.2 ~beta:0.1 ();
          Helpers.poisson ~name:"mid" ~bandwidth:3 (rate /. 100.);
        ]
  in
  let changed = scale_class 1 f1 (scale_class 0 f0 model) in
  return (model, changed)

let prop_delta_matches_full_rescaled =
  QCheck2.Test.make ~count:10
    ~name:"solve_delta bit-identical under dynamic rescaling (two classes)"
    rescaling_multi_gen
    (fun (model, changed) ->
      let previous = Conv.solve model in
      if Conv.rescale_count previous = 0 then
        QCheck2.Test.fail_report "expected rescaling to fire";
      let inc = Conv.solve_delta ~previous changed in
      let full = Conv.solve changed in
      check_solved "rescaled delta" changed full inc;
      true)

(* --- exact combine counts: the tree does only the promised work --- *)

let n_class_model n =
  Model.square ~size:10
    ~classes:
      (List.init n (fun r ->
           Helpers.poisson
             ~name:(Printf.sprintf "c%d" r)
             ~bandwidth:((r mod 2) + 1)
             (0.1 +. (0.05 *. float_of_int r))))

let test_combine_counts () =
  let model = n_class_model 8 in
  let tree = Tree.build model in
  Helpers.check_int "build combines (R-1)" 7 (Tree.combines tree);
  Helpers.check_int "depth (ceil log2 R)" 3 (Tree.depth tree);
  Helpers.check_int "num_classes" 8 (Tree.num_classes tree);
  let count changes =
    let changed = List.fold_left (fun m (r, f) -> scale_class r f m) model changes in
    Tree.combines (Tree.update tree changed)
  in
  Helpers.check_int "update {0}: one root path" 3 (count [ (0, 1.5) ]);
  Helpers.check_int "update {7}: one root path" 3 (count [ (7, 1.5) ]);
  Helpers.check_int "update {0,1}: shared path" 3 (count [ (0, 1.5); (1, 0.5) ]);
  Helpers.check_int "update {0,7}: disjoint until root" 5
    (count [ (0, 1.5); (7, 0.5) ]);
  Helpers.check_int "update all: full rebuild" 7
    (count (List.init 8 (fun r -> (r, 1.5))));
  Helpers.check_int "update with no change" 0
    (Tree.combines (Tree.update tree (n_class_model 8)));
  Helpers.check_int "complement per class" 8
    (Array.length (Tree.leave_one_out tree))

let test_combine_counts_odd () =
  (* R = 5: the trailing leaf is carried up by sharing, never combined
     against a dummy — a build still costs exactly R - 1 and updating
     the carried class touches only the root combine. *)
  let model = n_class_model 5 in
  let tree = Tree.build model in
  Helpers.check_int "build combines (R-1)" 4 (Tree.combines tree);
  Helpers.check_int "depth" 3 (Tree.depth tree);
  let updated = Tree.update tree (scale_class 4 1.5 model) in
  Helpers.check_int "update carried leaf: root combine only" 1
    (Tree.combines updated);
  check_solved "carried-leaf update" (Tree.model updated)
    (Conv.solve (scale_class 4 1.5 model))
    (Conv.solve_delta ~previous:(Conv.solve model) (scale_class 4 1.5 model))

let test_update_validation () =
  let model = n_class_model 8 in
  let tree = Tree.build model in
  Helpers.check_raises_invalid "dimensions differ" (fun () ->
      let wider =
        Model.create ~inputs:11 ~outputs:10
          ~classes:(Array.to_list (Model.classes model))
      in
      ignore (Tree.update tree wider));
  Helpers.check_raises_invalid "class count differs" (fun () ->
      let fewer =
        Model.square ~size:10
          ~classes:
            (List.filteri (fun i _ -> i < 7)
               (Array.to_list (Model.classes model)))
      in
      ignore (Tree.update tree fewer));
  Helpers.check_raises_invalid "leaf index out of range" (fun () ->
      ignore (Tree.leaf tree 8))

(* --- parallel build: the pool mapper changes nothing --- *)

let test_parallel_solve_bit_identical () =
  List.iter
    (fun (label, model) ->
      let full = Conv.solve model in
      for domains = 1 to 4 do
        let par = Sweep.parallel_solve ~domains model in
        check_solved (Printf.sprintf "%s domains=%d" label domains) model full
          par
      done)
    [
      ("mixed 5x4", Helpers.mixed_model ~inputs:5 ~outputs:4);
      ("eight classes", n_class_model 8);
    ]

(* --- the depth walk: all reduced switches from one diagonal --- *)

let test_depth_zero_matches_measures () =
  List.iter
    (fun (label, model) ->
      let t = Conv.solve model in
      let at_zero = Conv.concurrencies_at_depth t ~depth:0 in
      Array.iteri
        (fun r e ->
          check_bits
            (Printf.sprintf "%s.class %d depth-0 concurrency" label r)
            (Conv.measures t).Measures.per_class.(r).Measures.concurrency e)
        at_zero;
      Helpers.check_raises_invalid "depth past capacity" (fun () ->
          ignore
            (Conv.concurrencies_at_depth t ~depth:(Model.capacity model + 1)));
      Helpers.check_raises_invalid "negative depth" (fun () ->
          ignore (Conv.concurrencies_at_depth t ~depth:(-1))))
    (Helpers.validation_models ())

(* When the reduced switch is non-empty but a wide class can no longer
   fit, the legacy [reduced_model] rejects it; physically that class
   simply contributes zero concurrency, so dropping it from the reduced
   model yields the same W (its state space is unchanged).  This
   computes W(N) - W(N - ports I) through that independent re-solve. *)
let shadow_cost_without_unfittable model ~weights ~ports =
  let capacity =
    min (Model.inputs model - ports) (Model.outputs model - ports)
  in
  let keep = ref [] in
  Array.iteri
    (fun r (c : Traffic.t) ->
      if c.Traffic.bandwidth <= capacity then keep := (r, c) :: !keep)
    (Model.classes model);
  let kept = List.rev !keep in
  let sub_model =
    Model.create ~inputs:(Model.inputs model) ~outputs:(Model.outputs model)
      ~classes:(List.map snd kept)
  in
  let sub_weights = Array.of_list (List.map (fun (r, _) -> weights.(r)) kept) in
  Revenue.total ~algorithm:Solver.Convolution model ~weights
  -. Revenue.total ~algorithm:Solver.Convolution
       (Revenue.reduced_model sub_model ~ports)
       ~weights:sub_weights

let test_shadow_costs_match_legacy () =
  List.iter
    (fun (label, model) ->
      let weights =
        Array.init (Model.num_classes model) (fun r ->
            1. /. float_of_int (r + 1))
      in
      let batched = Revenue.shadow_costs model ~weights in
      Array.iteri
        (fun r delta ->
          let expected =
            match
              Revenue.shadow_cost ~algorithm:Solver.Convolution model ~weights
                ~class_index:r
            with
            | v -> v
            | exception Invalid_argument _ ->
                shadow_cost_without_unfittable model ~weights
                  ~ports:(Model.bandwidth model r)
          in
          Helpers.check_close ~tol:1e-9
            (Printf.sprintf "%s.class %d shadow cost" label r)
            expected delta)
        batched)
    (Helpers.validation_models ())

let test_shadow_cost_emptied_switch () =
  (* Reducing by the fat class's bandwidth empties the switch: the
     reduced model does not exist and the whole return is at stake. *)
  let model =
    Model.square ~size:2
      ~classes:
        [ Helpers.poisson ~name:"fat" ~bandwidth:2 0.5; Helpers.poisson 0.3 ]
  in
  let weights = [| 1.0; 0.5 |] in
  Helpers.check_raises_invalid "reduced_model rejects empty switch" (fun () ->
      ignore (Revenue.reduced_model model ~ports:2));
  let batched = Revenue.shadow_costs model ~weights in
  let total = Revenue.total ~algorithm:Solver.Convolution model ~weights in
  Helpers.check_close ~tol:1e-12 "emptied switch charges W(N)" total
    batched.(0);
  Helpers.check_close ~tol:1e-9 "legacy path agrees"
    (Revenue.shadow_cost ~algorithm:Solver.Convolution model ~weights
       ~class_index:0)
    batched.(0)

let test_gradient_matches_gradient_rho () =
  List.iter
    (fun (label, model) ->
      let weights =
        Array.init (Model.num_classes model) (fun r ->
            1. /. float_of_int (r + 1))
      in
      let gradient = Revenue.gradient model ~weights in
      Array.iteri
        (fun r entry ->
          match entry with
          | Some value ->
              Helpers.check_bool
                (Printf.sprintf "%s.class %d closed form => poisson" label r)
                true (Model.is_poisson model r);
              Helpers.check_close ~tol:1e-9
                (Printf.sprintf "%s.class %d gradient" label r)
                (Revenue.gradient_rho ~algorithm:Solver.Convolution model
                   ~weights ~class_index:r)
                value
          | None ->
              Helpers.check_bool
                (Printf.sprintf "%s.class %d bursty => None" label r)
                false (Model.is_poisson model r))
        gradient)
    (Helpers.validation_models ())

(* --- batched marginals vs the independent oracles --- *)

let brute_marginal model ~class_index =
  let space, pi = Brute.distribution model in
  let a = Model.bandwidth model class_index in
  let probabilities = Array.make ((Model.capacity model / a) + 1) 0. in
  State_space.iter space (fun i k ->
      probabilities.(k.(class_index)) <-
        probabilities.(k.(class_index)) +. pi.(i));
  probabilities

let test_distributions_match_occupancy_and_brute () =
  List.iter
    (fun (label, model) ->
      let t = Conv.solve model in
      let distributions = Conv.per_class_distributions t in
      Helpers.check_int (label ^ ": one distribution per class")
        (Model.num_classes model)
        (Array.length distributions);
      Array.iteri
        (fun r (d : Measures.distribution) ->
          let field name = Printf.sprintf "%s.class %d.%s" label r name in
          Helpers.check_int (field "class_index") r d.Measures.class_index;
          Helpers.check_int (field "bandwidth")
            (Model.bandwidth model r)
            d.Measures.bandwidth;
          let occupancy = Occupancy.class_distribution model ~class_index:r in
          Helpers.check_int (field "length") (Array.length occupancy)
            (Array.length d.Measures.probabilities);
          Array.iteri
            (fun m p ->
              Helpers.check_close ~tol:1e-9
                (field (Printf.sprintf "p(k=%d) vs occupancy" m))
                p
                d.Measures.probabilities.(m))
            occupancy;
          let brute = brute_marginal model ~class_index:r in
          Array.iteri
            (fun m p ->
              Helpers.check_close ~tol:1e-9
                (field (Printf.sprintf "p(k=%d) vs brute" m))
                p
                d.Measures.probabilities.(m))
            brute;
          Helpers.check_close ~tol:1e-9 (field "mean = E_r")
            (Conv.measures t).Measures.per_class.(r).Measures.concurrency
            d.Measures.mean)
        distributions)
    (Helpers.validation_models ())

let test_distribution_of_weights_validation () =
  let model = Helpers.mixed_model ~inputs:5 ~outputs:4 in
  Helpers.check_raises_invalid "class index out of range" (fun () ->
      ignore
        (Measures.distribution_of_weights ~model ~class_index:9
           ~weights:[| 1. |]));
  Helpers.check_raises_invalid "empty weights" (fun () ->
      ignore
        (Measures.distribution_of_weights ~model ~class_index:0 ~weights:[||]));
  Helpers.check_raises_invalid "negative weight" (fun () ->
      ignore
        (Measures.distribution_of_weights ~model ~class_index:0
           ~weights:[| 1.; -0.5 |]));
  Helpers.check_raises_invalid "non-finite weight" (fun () ->
      ignore
        (Measures.distribution_of_weights ~model ~class_index:0
           ~weights:[| Float.nan |]));
  Helpers.check_raises_failure "all-zero weights (flushed marginal)"
    (fun () ->
      ignore
        (Measures.distribution_of_weights ~model ~class_index:0
           ~weights:[| 0.; 0. |]))

(* --- lattice edge cases --- *)

let test_single_class_models () =
  List.iter
    (fun (label, model) ->
      let t = Conv.solve model in
      let tree = Conv.tree t in
      Helpers.check_int (label ^ ": build needs no combine") 0
        (Tree.combines tree);
      Helpers.check_int (label ^ ": depth 0") 0 (Tree.depth tree);
      Helpers.check_int (label ^ ": one complement") 1
        (Array.length (Tree.leave_one_out tree));
      let brute = Brute.solve model in
      Helpers.check_close ~tol:1e-9 (label ^ ": blocking vs brute")
        brute.Measures.per_class.(0).Measures.blocking
        (Conv.measures t).Measures.per_class.(0).Measures.blocking;
      Helpers.check_close ~tol:1e-9 (label ^ ": concurrency vs brute")
        brute.Measures.per_class.(0).Measures.concurrency
        (Conv.measures t).Measures.per_class.(0).Measures.concurrency;
      let changed = scale_class 0 1.7 model in
      check_solved (label ^ ": delta on the only class") changed
        (Conv.solve changed)
        (Conv.solve_delta ~previous:t changed))
    [
      ("poisson 4x4", Model.square ~size:4 ~classes:[ Helpers.poisson 0.5 ]);
      ( "pascal 5x5",
        Model.square ~size:5 ~classes:[ Helpers.pascal ~alpha:0.4 ~beta:0.3 () ]
      );
      ( "whole-switch bandwidth 3x3",
        Model.square ~size:3
          ~classes:[ Helpers.poisson ~name:"whole" ~bandwidth:3 0.7 ] );
    ]

let test_capacity_exactly_consumed () =
  (* One connection of the fat class consumes every port: its marginal
     has exactly two support points and all solvers still agree. *)
  let model =
    Model.square ~size:3
      ~classes:
        [
          Helpers.poisson ~name:"whole" ~bandwidth:3 0.7;
          Helpers.poisson ~name:"thin" 0.4;
        ]
  in
  let t = Conv.solve model in
  Helpers.check_close ~tol:1e-9 "log G vs brute"
    (Brute.log_g model ~inputs:3 ~outputs:3)
    (Conv.log_normalization t);
  let d = (Conv.per_class_distributions t).(0) in
  Helpers.check_int "two support points" 2
    (Array.length d.Measures.probabilities);
  Helpers.check_close ~tol:1e-9 "support sums to one" 1.0
    (Array.fold_left ( +. ) 0. d.Measures.probabilities);
  let changed = scale_class 1 2.5 (scale_class 0 2.0 model) in
  check_solved "both classes change" changed
    (Conv.solve changed)
    (Conv.solve_delta ~previous:t changed)

let test_rescale_exponent_cancellation () =
  (* Loads so large the factors blow past the rescale threshold on a
     switch small enough for the log-space brute oracle: the rescale
     exponents must cancel out of every corner measure. *)
  let model =
    Model.square ~size:6
      ~classes:
        [
          Helpers.poisson ~name:"huge" 1e43;
          Helpers.poisson ~name:"side" ~bandwidth:2 (1e43 /. 7.);
        ]
  in
  let t = Conv.solve model in
  Helpers.check_bool "rescaling fired" true (Conv.rescale_count t > 0);
  Helpers.check_close ~tol:1e-9 "log G vs brute"
    (Brute.log_g model ~inputs:6 ~outputs:6)
    (Conv.log_normalization t);
  let brute = Brute.solve model in
  Array.iteri
    (fun r (c : Measures.per_class) ->
      Helpers.check_close ~tol:1e-9
        (Printf.sprintf "class %d blocking vs brute" r)
        c.Measures.blocking
        (Conv.measures t).Measures.per_class.(r).Measures.blocking;
      Helpers.check_close ~tol:1e-9
        (Printf.sprintf "class %d concurrency vs brute" r)
        c.Measures.concurrency
        (Conv.measures t).Measures.per_class.(r).Measures.concurrency)
    brute.Measures.per_class;
  (* Delta re-solves stay bit-identical on both sides of the threshold:
     shrinking the loads back out of the rescaling regime and forth. *)
  let calm = scale_class 1 1e-40 (scale_class 0 1e-40 model) in
  check_solved "rescaled -> calm" calm
    (Conv.solve calm)
    (Conv.solve_delta ~previous:t calm);
  let back = Conv.solve_delta ~previous:(Conv.solve calm) model in
  check_solved "calm -> rescaled" model t back

let () =
  Alcotest.run "factor-tree"
    [
      ( "bit-identity",
        [
          Helpers.qcheck prop_delta_matches_full;
          Helpers.qcheck prop_delta_matches_full_rescaled;
          Helpers.case "parallel build, domains 1..4"
            test_parallel_solve_bit_identical;
        ] );
      ( "combine counts",
        [
          Helpers.case "R=8 build/update/leave-one-out" test_combine_counts;
          Helpers.case "R=5 carried leaf" test_combine_counts_odd;
          Helpers.case "update rejects incompatible models"
            test_update_validation;
        ] );
      ( "depth walk",
        [
          Helpers.case "depth 0 reproduces measures bitwise"
            test_depth_zero_matches_measures;
          Helpers.case "batched shadow costs vs two-solve path"
            test_shadow_costs_match_legacy;
          Helpers.case "emptied switch charges W(N)"
            test_shadow_cost_emptied_switch;
          Helpers.case "batched gradient vs gradient_rho"
            test_gradient_matches_gradient_rho;
        ] );
      ( "marginals",
        [
          Helpers.case "per-class distributions vs occupancy and brute"
            test_distributions_match_occupancy_and_brute;
          Helpers.case "distribution_of_weights validation"
            test_distribution_of_weights_validation;
        ] );
      ( "edge cases",
        [
          Helpers.case "single-class models" test_single_class_models;
          Helpers.case "capacity exactly consumed"
            test_capacity_exactly_consumed;
          Helpers.slow_case "rescale exponent cancellation"
            test_rescale_exponent_cancellation;
        ] );
    ]
