open Helpers
module Paper = Crossbar_workloads.Paper
module Printed = Crossbar_workloads.Printed
module Scenarios = Crossbar_workloads.Scenarios
module Revenue = Crossbar.Revenue
module Measures = Crossbar.Measures
module General = Crossbar.General

(* Reproduction of Table 2.

   The exact model agrees with the printed table perfectly at N = 1 and in
   the W and dW/drho_1 columns throughout (<= 0.25% relative).  The printed
   blocking column drifts up to ~13% at N = 256 because the published
   computation delayed the bursty class's state dependence by one
   occupancy level (their printed sets 1 and 2 coincide exactly at N = 2,
   which is impossible for the exact model); the shifted-lambda variant
   reproduces their N = 1 and N = 2 rows to all printed digits.  See
   EXPERIMENTS.md. *)

let solve_row set n =
  let model = Paper.table2_model set n in
  let measures = Crossbar.Solver.solve model in
  let weights = set.Paper.weights in
  let revenue = Measures.revenue measures ~weights in
  let blocking = measures.Measures.per_class.(0).Measures.blocking in
  let gradient_rho1 = Revenue.gradient_rho model ~weights ~class_index:0 in
  (blocking, revenue, gradient_rho1)

let for_each_row ~sizes f =
  List.iter
    (fun set ->
      let rows = Printed.table2_rows ~set_label:set.Paper.set_label in
      List.iter
        (fun (row : Printed.table2_row) ->
          if List.mem row.Printed.size sizes then f set row)
        rows)
    Paper.table2_sets

let test_revenue_column () =
  (* W(N) matches the printed table to ~0.1% except where the paper's
     beta-shift artefact is amplified (set 2 near its stability corner at
     N = 256, 1.4% — see EXPERIMENTS.md); 2% bounds everything. *)
  for_each_row ~sizes:Paper.table2_sizes (fun set row ->
      let _, revenue, _ = solve_row set row.Printed.size in
      check_close
        (Printf.sprintf "%s W(%d)" set.Paper.set_label row.Printed.size)
        row.Printed.revenue revenue ~tol:2e-2)

let test_gradient_rho1_column () =
  (* dW/drho_1 matches to ~0.3% at most sizes; the same set-2 corner
     raises the worst case to 1.4%. *)
  for_each_row ~sizes:Paper.table2_sizes (fun set row ->
      let _, _, gradient = solve_row set row.Printed.size in
      check_close
        (Printf.sprintf "%s dW/drho1(%d)" set.Paper.set_label row.Printed.size)
        row.Printed.gradient_rho1 gradient ~tol:2e-2)

let test_blocking_column_small_sizes () =
  (* Exact agreement at N = 1 (beta cannot act there). *)
  for_each_row ~sizes:[ 1 ] (fun set row ->
      let blocking, _, _ = solve_row set row.Printed.size in
      check_close
        (Printf.sprintf "%s B(1)" set.Paper.set_label)
        row.Printed.blocking blocking ~tol:1e-5)

let test_blocking_column_banded () =
  (* Up to N = 64 the exact model stays within 10% of the printed values
     (measured worst case 8.1%, set 2 at N = 64). *)
  for_each_row ~sizes:[ 1; 2; 4; 8; 16; 32; 64 ] (fun set row ->
      let blocking, _, _ = solve_row set row.Printed.size in
      check_close
        (Printf.sprintf "%s B(%d) band" set.Paper.set_label row.Printed.size)
        row.Printed.blocking blocking ~tol:0.10)

let test_blocking_column_large_n_direction () =
  (* At N >= 128 the printed values systematically *undershoot* the exact
     blocking (their delayed beta weakens the burstiness penalty); the
     divergence peaks at set 2, N = 256 where the exact value is ~3.3x
     the printed one.  Pin the direction and the known worst case. *)
  for_each_row ~sizes:[ 128; 256 ] (fun set row ->
      let blocking, _, _ = solve_row set row.Printed.size in
      check_bool
        (Printf.sprintf "%s B(%d) exact >= printed" set.Paper.set_label
           row.Printed.size)
        true
        (blocking >= row.Printed.blocking -. 1e-6));
  let set2 = List.nth Paper.table2_sets 1 in
  let blocking, _, _ = solve_row set2 256 in
  check_close "set 2 N=256 known value" 0.019328911 blocking ~tol:1e-6

let test_forensic_shift_reproduces_small_n () =
  (* The shifted-lambda variant reproduces the printed blocking at
     N = 1 and N = 2 to all six printed digits, for all three sets. *)
  List.iter
    (fun set ->
      let rows = Printed.table2_rows ~set_label:set.Paper.set_label in
      List.iter
        (fun (row : Printed.table2_row) ->
          if row.Printed.size <= 2 then begin
            let n = row.Printed.size in
            let specs =
              Scenarios.shifted_beta_specs ~rho1:set.Paper.rho1
                ~rho2:set.Paper.rho2 ~beta2:set.Paper.beta2 ~size:n
            in
            let g_full = General.log_g ~inputs:n ~outputs:n ~classes:specs in
            let blocking =
              if n = 1 then 1. -. exp (0. -. g_full)
              else
                1.
                -. exp
                     (General.log_g ~inputs:(n - 1) ~outputs:(n - 1)
                        ~classes:specs
                     -. g_full)
            in
            check_close
              (Printf.sprintf "%s shifted B(%d)" set.Paper.set_label n)
              row.Printed.blocking blocking ~tol:2e-5
          end)
        rows)
    Paper.table2_sets

let test_forensic_sets_coincide_at_2 () =
  (* The tell-tale anomaly: printed sets 1 and 2 (different beta~2) have
     identical blocking at N = 2 — impossible for the exact model, exact
     for the shifted variant. *)
  let rows label = Printed.table2_rows ~set_label:label in
  let set1 = rows (List.nth Paper.table2_sets 0).Paper.set_label in
  let set2 = rows (List.nth Paper.table2_sets 1).Paper.set_label in
  let b1 = (List.nth set1 1).Printed.blocking in
  let b2 = (List.nth set2 1).Printed.blocking in
  check_close "printed sets coincide" b1 b2 ~tol:1e-12;
  (* ... while the exact model distinguishes them. *)
  let exact set =
    let blocking, _, _ = solve_row set 2 in
    blocking
  in
  let e1 = exact (List.nth Paper.table2_sets 0) in
  let e2 = exact (List.nth Paper.table2_sets 1) in
  check_bool "exact model distinguishes" true (Float.abs (e1 -. e2) > 1e-9)

let test_beta_gradient_signs () =
  (* The published qualitative conclusion: dW/d(beta2/mu2) is negative for
     N >= 4 (bursty growth loses revenue). *)
  List.iter
    (fun set ->
      List.iter
        (fun n ->
          let model = Paper.table2_model set n in
          let g =
            Revenue.gradient_beta_numeric model ~weights:set.Paper.weights
              ~class_index:1
          in
          check_bool
            (Printf.sprintf "%s dW/dbeta(%d) < 0" set.Paper.set_label n)
            true (g < 0.))
        [ 4; 8; 16; 32; 64 ])
    Paper.table2_sets

let test_figure1_shape () =
  (* Poisson curve bounds the smooth ones at every size; the spread at
     N = 128 is about 0.1 percentage points (the paper's stated gap). *)
  let curves =
    List.map
      (fun s ->
        ( s.Paper.label,
          List.map
            (fun n ->
              let m = Crossbar.Solver.solve (s.Paper.model_of_size n) in
              m.Measures.per_class.(0).Measures.blocking)
            Paper.sizes ))
      Paper.figure1
  in
  match curves with
  | (_, poisson) :: rest ->
      List.iter
        (fun (label, curve) ->
          List.iter2
            (fun p b -> check_bool (label ^ " below poisson") true (b <= p))
            poisson curve)
        rest;
      (* Gap between poisson and beta~=-4e-6 at N=128: measured 2.4e-6
         absolute (0.05% of the 0.475% operating point), consistent with
         reading the paper's "approximately 0.1%" as a relative
         difference — see EXPERIMENTS.md. *)
      let last xs = List.nth xs (List.length xs - 1) in
      let gap = last poisson -. last (snd (List.nth rest 2)) in
      check_bool "gap small and positive" true (gap > 1e-6 && gap < 1e-4)
  | [] -> Alcotest.fail "figure1 empty"

let test_figure3_shape () =
  (* Adding the Poisson class shifts the operating point upward. *)
  let blocking series n =
    let m = Crossbar.Solver.solve (series.Paper.model_of_size n) in
    (List.hd (Array.to_list m.Measures.per_class)).Measures.blocking
  in
  match Paper.figure3 with
  | [ one_class; two_class; two_class_peakier ] ->
      List.iter
        (fun n ->
          check_bool "two classes block more" true
            (blocking two_class n > blocking one_class n);
          check_bool "peakier blocks more still" true
            (blocking two_class_peakier n >= blocking two_class n))
        [ 16; 64; 128 ]
  | _ -> Alcotest.fail "figure3 should have three series"

let () =
  Alcotest.run "paper-tables"
    [
      ( "table-2",
        [
          slow_case "revenue column" test_revenue_column;
          slow_case "gradient rho1 column" test_gradient_rho1_column;
          case "blocking at N=1" test_blocking_column_small_sizes;
          slow_case "blocking band" test_blocking_column_banded;
          slow_case "blocking divergence at large N"
            test_blocking_column_large_n_direction;
          case "forensic shift (N<=2 exact)" test_forensic_shift_reproduces_small_n;
          case "forensic coincidence at N=2" test_forensic_sets_coincide_at_2;
          slow_case "beta gradient signs" test_beta_gradient_signs;
        ] );
      ( "figures",
        [
          slow_case "figure 1 shape" test_figure1_shape;
          slow_case "figure 3 shape" test_figure3_shape;
        ] );
    ]
