open Helpers
module Json = Crossbar_engine.Json
module Telemetry = Crossbar_engine.Telemetry
module Protocol = Crossbar_serve.Protocol
module Registry = Crossbar_serve.Registry
module Batcher = Crossbar_serve.Batcher
module Server = Crossbar_serve.Server
module Model = Crossbar.Model
module Traffic = Crossbar.Traffic
module Convolution = Crossbar.Convolution
module Solver = Crossbar.Solver
module Measures = Crossbar.Measures

let small_model () =
  Model.square ~size:8
    ~classes:
      [ poisson ~name:"p" 0.4; pascal ~name:"q" ~alpha:0.3 ~beta:0.1 () ]

let serialize request = Protocol.request_to_line request

let roundtrip request =
  match Protocol.request_of_line (serialize request) with
  | Ok parsed ->
      check_bool "request roundtrips" true
        (String.equal (serialize request) (serialize parsed))
  | Error message -> Alcotest.failf "roundtrip failed: %s" message

(* ---------- protocol ---------- *)

let test_protocol_roundtrips () =
  let model = small_model () in
  List.iter roundtrip
    [
      { Protocol.id = Json.Int 1; query = Protocol.Solve { tree = "t"; model } };
      {
        Protocol.id = Json.String "req-2";
        query =
          Protocol.Delta
            {
              tree = "t";
              changes =
                [
                  { Protocol.class_index = 0; alpha = Some 0.5; beta = None };
                  {
                    Protocol.class_index = 1;
                    alpha = Some 0.2;
                    beta = Some 0.05;
                  };
                ];
            };
      };
      { Protocol.id = Json.Int 3; query = Protocol.Blocking { tree = "t" } };
      {
        Protocol.id = Json.Int 4;
        query = Protocol.Shadow_costs { tree = "t"; weights = [| 1.0; 0.25 |] };
      };
      {
        Protocol.id = Json.Int 5;
        query =
          Protocol.Admit
            { tree = "t"; class_index = 1; weights = [| 1.0; 0.25 |] };
      };
      { Protocol.id = Json.Int 6; query = Protocol.Stats };
      { Protocol.id = Json.Null; query = Protocol.Shutdown };
    ]

let expect_parse_error label line =
  match Protocol.request_of_line line with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: expected a parse error for %s" label line

let test_protocol_rejects_malformed () =
  expect_parse_error "not json" "{not json";
  expect_parse_error "missing id" {|{"op":"stats"}|};
  expect_parse_error "missing op" {|{"id":1}|};
  expect_parse_error "unknown op" {|{"id":1,"op":"solve_all"}|};
  expect_parse_error "solve without model" {|{"id":1,"op":"solve","tree":"t"}|};
  expect_parse_error "delta without changes"
    {|{"id":1,"op":"delta","tree":"t"}|};
  expect_parse_error "empty changes"
    {|{"id":1,"op":"delta","tree":"t","changes":[]}|};
  expect_parse_error "change without alpha or beta"
    {|{"id":1,"op":"delta","tree":"t","changes":[{"class":0}]}|};
  expect_parse_error "weights not numbers"
    {|{"id":1,"op":"shadow_costs","tree":"t","weights":["x"]}|};
  expect_parse_error "invalid model class"
    {|{"id":1,"op":"solve","tree":"t","model":{"inputs":4,"outputs":4,"classes":[{"name":"p","bandwidth":0,"alpha":0.1,"mu":1.0}]}}|}

let test_protocol_model_roundtrip () =
  let model = small_model () in
  match Protocol.model_of_json (Protocol.model_to_json model) with
  | Error message -> Alcotest.failf "model roundtrip failed: %s" message
  | Ok parsed ->
      check_int "inputs" (Model.inputs model) (Model.inputs parsed);
      check_int "classes" (Model.num_classes model) (Model.num_classes parsed);
      (* Bit-exact rates survive the JSON float writer. *)
      Array.iter2
        (fun (a : Traffic.t) (b : Traffic.t) ->
          check_bool "alpha bits" true
            (Int64.equal
               (Int64.bits_of_float a.Traffic.alpha)
               (Int64.bits_of_float b.Traffic.alpha)))
        (Model.classes model) (Model.classes parsed)

(* ---------- registry ---------- *)

let test_registry_install_and_delta_path () =
  let registry = Registry.create () in
  let model = small_model () in
  let entry, from_hot = Registry.install registry ~name:"t" model in
  check_bool "cold install solves fresh" false from_hot;
  check_bool "solved for the model" true
    (Option.is_some (Model.class_delta (Convolution.model entry.Registry.solved) model));
  (* Rate-only change: reinstall rides the hot tree. *)
  let warmer =
    Model.map_class model 0 (fun c -> Traffic.with_alpha c 0.45)
  in
  let entry', from_hot' = Registry.install registry ~name:"t" warmer in
  check_bool "compatible reinstall is hot" true from_hot';
  (* The incremental result is bit-identical to a fresh solve. *)
  let fresh = Convolution.solve warmer in
  check_bool "hot solve bit-identical" true
    (Int64.equal
       (Int64.bits_of_float (Convolution.log_normalization entry'.Registry.solved))
       (Int64.bits_of_float (Convolution.log_normalization fresh)));
  (* A structurally different model cannot ride the old tree. *)
  let bigger =
    Model.square ~size:8
      ~classes:
        [
          poisson ~name:"p" 0.4;
          pascal ~name:"q" ~alpha:0.3 ~beta:0.1 ();
          poisson ~name:"r" 0.1;
        ]
  in
  let _, from_hot'' = Registry.install registry ~name:"t" bigger in
  check_bool "incompatible reinstall re-solves" false from_hot''

let test_registry_lru_eviction () =
  let registry = Registry.create ~capacity:2 () in
  let model = small_model () in
  ignore (Registry.install registry ~name:"a" model);
  ignore (Registry.install registry ~name:"b" model);
  check_int "two resident" 2 (Registry.size registry);
  (* Touch "a", then install "c": "b" is the LRU victim. *)
  check_bool "a found" true (Option.is_some (Registry.find registry "a"));
  ignore (Registry.install registry ~name:"c" model);
  check_int "capacity held" 2 (Registry.size registry);
  check_bool "b evicted" true (Option.is_none (Registry.find registry "b"));
  check_bool "a survives" true (Option.is_some (Registry.find registry "a"));
  match Registry.stats_json registry with
  | Json.Assoc _ as stats ->
      check_bool "evictions exposed" true
        (match Json.member "evictions" stats with
        | Some (Json.Int n) -> n >= 1
        | _ -> false)
  | _ -> Alcotest.fail "stats_json must be an object"

let test_registry_eviction_recycles () =
  let registry = Registry.create ~capacity:2 () in
  let model = small_model () in
  ignore (Registry.install registry ~name:"a" model);
  ignore (Registry.install registry ~name:"b" model);
  check_int "nothing parked below capacity" 0
    (Registry.recycle_evicted registry);
  ignore (Registry.install registry ~name:"c" model);
  check_int "the displaced tree is parked and drained" 1
    (Registry.recycle_evicted registry);
  check_int "draining empties the list" 0 (Registry.recycle_evicted registry);
  match Registry.find registry "c" with
  | None -> Alcotest.fail "c must be resident"
  | Some { Registry.solved; _ } ->
      (* Same-shape installs share a context (and so this domain's
         arena): once eviction recycling primes the free list, churning
         installs stop creating lattices — the whole loop runs in
         recycled storage. *)
      let arena =
        Convolution.arena
          (Convolution.Factor_tree.context (Convolution.tree solved))
      in
      (* Snapshot before the churn: "c" itself will be evicted and its
         lattices recycled, so the entry must not be read afterwards. *)
      let reference_log_g = Convolution.log_normalization solved in
      let drained = ref 0 in
      let created_after_warmup = ref 0 in
      let warm = 2 in
      for i = 0 to 9 do
        ignore (Registry.install registry ~name:(Printf.sprintf "n%d" i) model);
        drained := !drained + Registry.recycle_evicted registry;
        if i = warm then created_after_warmup := Convolution.Arena.created arena
      done;
      check_int "every churn install displaced one tree" 10 !drained;
      check_int "arena creations plateau under churn" !created_after_warmup
        (Convolution.Arena.created arena);
      check_bool "recycled lattices are reused" true
        (Convolution.Arena.reused arena > 0);
      (* Recycling is bit-invisible: a solve drawing on the recycled
         free list matches the solve that ran before any eviction. *)
      let last, _ = Registry.install registry ~name:"last" model in
      check_bool "post-churn solve bit-identical" true
        (Int64.equal
           (Int64.bits_of_float
              (Convolution.log_normalization last.Registry.solved))
           (Int64.bits_of_float reference_log_g))

let blocking_bits solved =
  Array.map
    (fun (c : Measures.per_class) -> Int64.bits_of_float c.Measures.blocking)
    (Convolution.measures solved).Measures.per_class

let test_registry_eviction_race_with_replace () =
  (* The batcher race: a capacity eviction of tree "a" lands between a
     group's [find "a"] and its [replace], so by drain time "a" is
     resident again and the parked pre-delta tree shares unchanged
     nodes with the live one (its superseded nodes already released by
     [solve_delta ~recycle:true]).  The drain must drop it, not recycle
     it — recycling would push live lattices into the free lists. *)
  let registry = Registry.create ~capacity:2 () in
  let model = small_model () in
  ignore (Registry.install registry ~name:"a" model);
  (* The delta group's [find], before the displacement. *)
  let held =
    match Registry.find registry "a" with
    | Some entry -> entry
    | None -> Alcotest.fail "a must be resident"
  in
  ignore (Registry.install registry ~name:"b" model);
  (* Capacity displacement parks the stalest tree: "a". *)
  ignore (Registry.install registry ~name:"c" model);
  (* The group, still holding the entry it found, updates and
     reinstalls under the same name (this displaces "b" too). *)
  let model' = Model.map_class model 0 (fun t -> Traffic.with_alpha t 0.45) in
  let solved' =
    Convolution.solve_delta ~recycle:true ~previous:held.Registry.solved model'
  in
  Registry.replace registry ~name:"a"
    { Registry.model = model'; solved = solved' };
  let expected = blocking_bits solved' in
  check_int "only the dead tree is recycled" 1
    (Registry.recycle_evicted registry);
  (* Churn installs draw on the recycled free lists; had the parked
     pre-delta "a" been recycled too, these solves would overwrite
     lattices the live "a" still reads. *)
  for i = 0 to 5 do
    check_bool "a stays resident" true
      (Option.is_some (Registry.find registry "a"));
    ignore (Registry.install registry ~name:(Printf.sprintf "r%d" i) model);
    ignore (Registry.recycle_evicted registry : int)
  done;
  match Registry.find registry "a" with
  | None -> Alcotest.fail "a must still be resident"
  | Some { Registry.solved; _ } ->
      check_bool "live tree unharmed by the drain" true
        (blocking_bits solved = expected)

let test_registry_drain_keeps_newest_generation () =
  (* The same name displaced twice between drains: only the newest
     parked generation is recycled — an older generation may share
     nodes with every newer tree built from it. *)
  let registry = Registry.create ~capacity:2 () in
  let model = small_model () in
  ignore (Registry.install registry ~name:"a" model);
  ignore (Registry.install registry ~name:"b" model);
  ignore (Registry.install registry ~name:"c" model) (* parks "a" *);
  ignore (Registry.install registry ~name:"a" model) (* parks "b" *);
  ignore (Registry.install registry ~name:"d" model) (* parks "c" *);
  ignore (Registry.install registry ~name:"e" model) (* parks "a" again *);
  (* Parked newest-first: a (2nd gen), c, b, a (1st gen).  "a" is dead
     at drain time, so its newest generation recycles and the older
     one is dropped. *)
  check_int "one generation per dead name" 3
    (Registry.recycle_evicted registry)

(* ---------- batcher ---------- *)

let execute ?(registry = Registry.create ()) requests =
  let telemetry = Telemetry.create () in
  (Batcher.execute ~domains:2 ~registry ~telemetry requests, telemetry)

let request id query = { Protocol.id = Json.Int id; query }

let solve_request ?(tree = "t") id model =
  request id (Protocol.Solve { tree; model })

let ok response =
  match Json.member "ok" response with
  | Some (Json.Bool b) -> b
  | _ -> Alcotest.fail "response missing \"ok\""

let response_float name response =
  match Json.member name response with
  | Some (Json.Float f) -> f
  | Some (Json.Int i) -> float_of_int i
  | _ -> Alcotest.failf "response missing float %S" name

let mixed_stream model =
  let weights = [| 1.0; 0.25 |] in
  [|
    solve_request 0 model;
    request 1
      (Protocol.Delta
         {
           tree = "t";
           changes = [ { Protocol.class_index = 0; alpha = Some 0.5; beta = None } ];
         });
    request 2 (Protocol.Blocking { tree = "t" });
    request 3 (Protocol.Shadow_costs { tree = "t"; weights });
    request 4 (Protocol.Admit { tree = "t"; class_index = 0; weights });
    request 5
      (Protocol.Delta
         {
           tree = "t";
           changes =
             [ { Protocol.class_index = 1; alpha = None; beta = Some 0.08 } ];
         });
    request 6 (Protocol.Blocking { tree = "t" });
  |]

let test_batched_equals_one_at_a_time () =
  let model = small_model () in
  let requests = mixed_stream model in
  let batched, _ = execute requests in
  check_int "one response per request" (Array.length requests)
    (Array.length batched.Batcher.responses);
  let replay_registry = Registry.create () in
  Array.iteri
    (fun i req ->
      let single, _ = execute ~registry:replay_registry [| req |] in
      check_bool
        (Printf.sprintf "response %d identical to unbatched replay" i)
        true
        (String.equal
           (Json.to_string batched.Batcher.responses.(i))
           (Json.to_string single.Batcher.responses.(0))))
    requests

let test_delta_matches_fresh_solve () =
  let model = small_model () in
  let changed = Model.map_class model 0 (fun c -> Traffic.with_alpha c 0.5) in
  let requests =
    [|
      solve_request 0 model;
      request 1
        (Protocol.Delta
           {
             tree = "t";
             changes =
               [ { Protocol.class_index = 0; alpha = Some 0.5; beta = None } ];
           });
    |]
  in
  let outcome, _ = execute requests in
  let delta_response = outcome.Batcher.responses.(1) in
  check_bool "delta ok" true (ok delta_response);
  check_bool "delta served hot" true
    (Json.member "from_hot" delta_response = Some (Json.Bool true));
  check_bool "changed classes reported" true
    (Json.member "changed_classes" delta_response
    = Some (Json.List [ Json.Int 0 ]));
  let fresh = Solver.solution_of_convolution (Convolution.solve changed) in
  check_bool "log G bit-identical to fresh solve" true
    (Int64.equal
       (Int64.bits_of_float (response_float "log_g" delta_response))
       (Int64.bits_of_float fresh.Solver.log_normalization))

let test_unknown_tree_and_bad_change () =
  let model = small_model () in
  let outcome, _ =
    execute
      [|
        request 0 (Protocol.Blocking { tree = "ghost" });
        solve_request 1 model;
        request 2
          (Protocol.Delta
             {
               tree = "t";
               changes =
                 [ { Protocol.class_index = 9; alpha = Some 0.1; beta = None } ];
             });
      |]
  in
  check_bool "unknown tree fails" false (ok outcome.Batcher.responses.(0));
  check_bool "solve succeeds" true (ok outcome.Batcher.responses.(1));
  check_bool "out-of-range change fails" false (ok outcome.Batcher.responses.(2));
  (* Errors must carry the request id and a message, and never leak as
     exceptions out of execute. *)
  check_bool "error id echoed" true
    (Json.member "id" outcome.Batcher.responses.(0) = Some (Json.Int 0));
  check_bool "error message present" true
    (match Json.member "error" outcome.Batcher.responses.(0) with
    | Some (Json.String _) -> true
    | _ -> false)

let test_admit_semantics () =
  let model = small_model () in
  let weights = [| 1.0; 0.25 |] in
  let outcome, _ =
    execute
      [|
        solve_request 0 model;
        request 1 (Protocol.Shadow_costs { tree = "t"; weights });
        request 2 (Protocol.Admit { tree = "t"; class_index = 1; weights });
      |]
  in
  let shadow_response = outcome.Batcher.responses.(1) in
  let admit_response = outcome.Batcher.responses.(2) in
  check_bool "both ok" true (ok shadow_response && ok admit_response);
  let shadow =
    match Json.member "shadow_costs" shadow_response with
    | Some (Json.List costs) -> (
        match List.nth costs 1 with
        | Json.Float f -> f
        | _ -> Alcotest.fail "shadow cost not a float")
    | _ -> Alcotest.fail "shadow_costs missing"
  in
  check_bool "same shadow cost both ways" true
    (Int64.equal
       (Int64.bits_of_float (response_float "shadow_cost" admit_response))
       (Int64.bits_of_float shadow));
  let weight = response_float "weight" admit_response in
  let net_gain = response_float "net_gain" admit_response in
  check_close "net gain is weight - shadow" (weight -. shadow) net_gain;
  check_bool "admit iff revenue-positive" true
    (Json.member "admit" admit_response = Some (Json.Bool (weight >= shadow)))

let test_stats_and_shutdown () =
  let model = small_model () in
  let outcome, telemetry =
    execute
      [|
        solve_request 0 model;
        request 1 Protocol.Stats;
        request 2 Protocol.Shutdown;
      |]
  in
  check_bool "shutdown flagged" true outcome.Batcher.shutdown;
  let stats = outcome.Batcher.responses.(1) in
  check_bool "stats ok" true (ok stats);
  (match Json.member "telemetry" stats with
  | Some summary ->
      check_bool "solve counted before stats" true
        (match Json.member "solves" summary with
        | Some (Json.Int n) -> n >= 1
        | _ -> false);
      check_bool "record list stripped from daemon stats" true
        (Json.member "records" summary = None)
  | None -> Alcotest.fail "stats missing telemetry");
  (match Json.member "registry" stats with
  | Some registry_stats ->
      check_bool "one resident tree" true
        (Json.member "entries" registry_stats = Some (Json.Int 1))
  | None -> Alcotest.fail "stats missing registry");
  (* Every request produced a telemetry record, stats and shutdown
     included. *)
  check_int "three records" 3 (Telemetry.count telemetry)

let test_multi_tree_batch_isolated () =
  (* Two trees in one batch: groups run on separate workers yet each
     response matches the corresponding single-tree run. *)
  let model_a = small_model () in
  let model_b =
    Model.square ~size:6
      ~classes:[ poisson ~name:"x" 0.2; pascal ~name:"y" ~alpha:0.2 ~beta:0.05 () ]
  in
  let batch =
    [|
      solve_request ~tree:"a" 0 model_a;
      solve_request ~tree:"b" 1 model_b;
      request 2 (Protocol.Blocking { tree = "a" });
      request 3 (Protocol.Blocking { tree = "b" });
    |]
  in
  let outcome, _ = execute batch in
  let solo_a, _ =
    execute [| solve_request ~tree:"a" 0 model_a; request 2 (Protocol.Blocking { tree = "a" }) |]
  in
  let solo_b, _ =
    execute [| solve_request ~tree:"b" 1 model_b; request 3 (Protocol.Blocking { tree = "b" }) |]
  in
  check_bool "tree a solve unaffected by batching" true
    (String.equal
       (Json.to_string outcome.Batcher.responses.(0))
       (Json.to_string solo_a.Batcher.responses.(0)));
  check_bool "tree a read unaffected by batching" true
    (String.equal
       (Json.to_string outcome.Batcher.responses.(2))
       (Json.to_string solo_a.Batcher.responses.(1)));
  check_bool "tree b solve unaffected by batching" true
    (String.equal
       (Json.to_string outcome.Batcher.responses.(1))
       (Json.to_string solo_b.Batcher.responses.(0)));
  check_bool "tree b read unaffected by batching" true
    (String.equal
       (Json.to_string outcome.Batcher.responses.(3))
       (Json.to_string solo_b.Batcher.responses.(1)))

let test_pipeline_shutdown_discards_inflight () =
  let registry = Registry.create () in
  let telemetry = Telemetry.create () in
  let pipeline = Batcher.Pipeline.start ~domains:1 ~registry ~telemetry () in
  Batcher.Pipeline.submit pipeline [| solve_request 0 (small_model ()) |];
  (* No [collect]: shutdown waits out the executing batch, discards its
     outcome, joins the worker and closes the pipe — the crash-cleanup
     path [Server.run]'s finalizer relies on when an exception unwinds
     past an in-flight batch. *)
  Batcher.Pipeline.shutdown pipeline;
  check_bool "notify pipe closed" true
    (match
       Unix.read (Batcher.Pipeline.descriptor pipeline) (Bytes.create 1) 0 1
     with
    | exception Unix.Unix_error (Unix.EBADF, _, _) -> true
    | _ -> false)

(* ---------- pipelined vs sequential serving ---------- *)

(* Run [Server.run] in-process over pipes, write [lines], read exactly
   one response line per request, and return the raw response bytes.
   The stream ends with a shutdown so the server exits and joins. *)
let run_server_over_pipes ~pipelined lines =
  let in_r, in_w = Unix.pipe ~cloexec:false () in
  let out_r, out_w = Unix.pipe ~cloexec:false () in
  let server =
    Domain.spawn (fun () ->
        let config =
          (* One batcher domain: the pipeline worker plus band workers
             already oversubscribe a small CI machine. *)
          { Server.default_config with domains = Some 1; pipelined }
        in
        Server.run ~config ~input:in_r ~output:out_w ())
  in
  let payload =
    Bytes.of_string (String.concat "" (List.map (fun l -> l ^ "\n") lines))
  in
  let rec write_all offset =
    if offset < Bytes.length payload then
      match Unix.write in_w payload offset (Bytes.length payload - offset) with
      | written -> write_all (offset + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all offset
  in
  write_all 0;
  Unix.close in_w;
  let expected = List.length lines in
  let buffer = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let newlines () =
    String.fold_left
      (fun acc c -> if c = '\n' then acc + 1 else acc)
      0 (Buffer.contents buffer)
  in
  let rec read_responses () =
    if newlines () < expected then
      match Unix.read out_r chunk 0 (Bytes.length chunk) with
      | 0 -> ()
      | n ->
          Buffer.add_subbytes buffer chunk 0 n;
          read_responses ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_responses ()
  in
  read_responses ();
  Domain.join server;
  Unix.close in_r;
  Unix.close out_r;
  Unix.close out_w;
  Buffer.contents buffer

let test_pipelined_matches_sequential_bytes () =
  let model = small_model () in
  (* The mixed stream is deterministic (no stats: telemetry timings
     differ run to run); pipelining may group it into different batches
     than sequential serving, and the response bytes must not care. *)
  let lines =
    Array.to_list (Array.map serialize (mixed_stream model))
    @ [ serialize (request 9 Protocol.Shutdown) ]
  in
  let pipelined = run_server_over_pipes ~pipelined:true lines in
  let sequential = run_server_over_pipes ~pipelined:false lines in
  check_int "pipelined answers every request"
    (List.length lines)
    (String.fold_left
       (fun acc c -> if c = '\n' then acc + 1 else acc)
       0 pipelined);
  check_bool "pipelined byte stream identical to sequential" true
    (String.equal pipelined sequential)

let test_server_config_validation () =
  let config batch_limit capacity domains =
    { Server.default_config with batch_limit; capacity; domains }
  in
  let input = Unix.stdin and output = Unix.stdout in
  check_invalid_contains "batch_limit names its value"
    ~substring:"batch_limit=0" (fun () ->
      Server.run ~config:(config 0 None None) ~input ~output ());
  check_invalid_contains "capacity names its value" ~substring:"capacity=-2"
    (fun () ->
      Server.run ~config:(config 16 (Some (-2)) None) ~input ~output ());
  check_invalid_contains "domains names its value" ~substring:"domains=0"
    (fun () -> Server.run ~config:(config 16 None (Some 0)) ~input ~output ())

(* ---------- end to end through the executable ---------- *)

let serve_exe = "../bin/crossbar_serve.exe"

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec loop acc =
        match input_line ic with
        | line -> loop (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      loop [])

let test_end_to_end_stdin () =
  let input = "serve_input.txt" and output = "serve_output.txt" in
  let oc = open_out input in
  output_string oc
    ({|{"id":1,"op":"solve","tree":"t","model":{"inputs":8,"outputs":8,"classes":[{"name":"p","bandwidth":1,"alpha":0.4,"mu":1.0},{"name":"q","bandwidth":2,"alpha":0.3,"beta":0.1,"mu":1.0}]}}|}
   ^ "\n" ^ {|{"id":2,"op":"blocking","tree":"t"}|} ^ "\n"
   ^ {|{"id":3,"op":"delta","tree":"t","changes":[{"class":0,"alpha":0.5}]}|}
   ^ "\n" ^ {|{"id":4,"op":"oops"}|} ^ "\n" ^ {|{"id":5,"op":"stats"}|} ^ "\n"
   ^ {|{"id":6,"op":"shutdown"}|} ^ "\n");
  close_out oc;
  let command =
    Printf.sprintf "%s --domains 2 < %s > %s 2>/dev/null" serve_exe input
      output
  in
  check_int "daemon exits cleanly" 0 (Sys.command command);
  let lines = read_lines output in
  check_int "one response per request" 6 (List.length lines);
  List.iteri
    (fun i line ->
      match Json.of_string line with
      | Error m -> Alcotest.failf "response %d is not JSON (%s): %s" i m line
      | Ok response ->
          check_bool
            (Printf.sprintf "response %d id in request order" i)
            true
            (Json.member "id" response = Some (Json.Int (i + 1)));
          let expect_ok = i <> 3 in
          check_bool
            (Printf.sprintf "response %d ok=%b" i expect_ok)
            true
            (match Json.member "ok" response with
            | Some (Json.Bool b) -> Bool.equal b expect_ok
            | _ -> false))
    lines;
  Sys.remove input;
  Sys.remove output

let test_end_to_end_eof_without_shutdown () =
  (* EOF on stdin with no socket: the daemon drains and exits 0 rather
     than hanging. *)
  let input = "serve_eof_input.txt" and output = "serve_eof_output.txt" in
  let oc = open_out input in
  output_string oc ({|{"id":1,"op":"stats"}|} ^ "\n");
  close_out oc;
  check_int "exits on EOF" 0
    (Sys.command
       (Printf.sprintf "%s < %s > %s 2>/dev/null" serve_exe input output));
  check_int "answered before exiting" 1 (List.length (read_lines output));
  Sys.remove input;
  Sys.remove output

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          case "request roundtrips" test_protocol_roundtrips;
          case "rejects malformed" test_protocol_rejects_malformed;
          case "model roundtrip" test_protocol_model_roundtrip;
        ] );
      ( "registry",
        [
          case "install and delta path" test_registry_install_and_delta_path;
          case "LRU eviction" test_registry_lru_eviction;
          case "eviction recycles into the arenas"
            test_registry_eviction_recycles;
          case "eviction racing a replace is dropped at drain"
            test_registry_eviction_race_with_replace;
          case "drain recycles only the newest generation per name"
            test_registry_drain_keeps_newest_generation;
        ] );
      ( "batcher",
        [
          case "batched equals one-at-a-time" test_batched_equals_one_at_a_time;
          case "delta matches fresh solve" test_delta_matches_fresh_solve;
          case "unknown tree and bad change" test_unknown_tree_and_bad_change;
          case "admit semantics" test_admit_semantics;
          case "stats and shutdown" test_stats_and_shutdown;
          case "multi-tree batch isolated" test_multi_tree_batch_isolated;
          case "pipeline shutdown discards an uncollected batch"
            test_pipeline_shutdown_discards_inflight;
        ] );
      ( "daemon",
        [
          case "pipelined equals sequential byte-for-byte"
            test_pipelined_matches_sequential_bytes;
          case "config validation names offending values"
            test_server_config_validation;
          case "end to end over stdin" test_end_to_end_stdin;
          case "EOF without shutdown" test_end_to_end_eof_without_shutdown;
        ] );
    ]
