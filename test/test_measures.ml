open Helpers
module Model = Crossbar.Model
module Measures = Crossbar.Measures
module Solver = Crossbar.Solver

let solve = Solver.solve ~algorithm:Solver.Convolution

let test_record_consistency () =
  let model = mixed_model ~inputs:5 ~outputs:4 in
  let m = solve model in
  Array.iter
    (fun (c : Measures.per_class) ->
      check_close "blocking = 1 - B" (1. -. c.Measures.non_blocking)
        c.Measures.blocking;
      check_bool "B in [0,1]" true
        (c.Measures.non_blocking >= 0. && c.Measures.non_blocking <= 1.))
    m.Measures.per_class;
  let busy =
    Array.fold_left
      (fun acc (c : Measures.per_class) ->
        acc +. (float_of_int c.Measures.bandwidth *. c.Measures.concurrency))
      0. m.Measures.per_class
  in
  check_close "busy ports" busy m.Measures.busy_ports;
  check_close "input util" (busy /. 5.) m.Measures.input_utilization;
  check_close "output util" (busy /. 4.) m.Measures.output_utilization

let test_throughput_littles_law () =
  (* X_r = E_r mu_r: completed connections per unit time. *)
  let model = mixed_model ~inputs:5 ~outputs:5 in
  let m = solve model in
  Array.iteri
    (fun r (c : Measures.per_class) ->
      check_close "throughput"
        (c.Measures.concurrency *. Model.service_rate model r)
        c.Measures.throughput)
    m.Measures.per_class;
  check_close "total"
    (Array.fold_left
       (fun acc (c : Measures.per_class) -> acc +. c.Measures.throughput)
       0. m.Measures.per_class)
    (Measures.total_throughput m)

let test_class_named () =
  let m = solve (mixed_model ~inputs:4 ~outputs:4) in
  let c = Measures.class_named m "pascal" in
  check_int "bandwidth" 2 c.Measures.bandwidth;
  match Measures.class_named m "nonexistent" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "missing class should raise Not_found"

let test_revenue_weighting () =
  let m = solve (mixed_model ~inputs:4 ~outputs:4) in
  let weights = [| 2.; 0.5; 1. |] in
  let expected =
    (2. *. m.Measures.per_class.(0).Measures.concurrency)
    +. (0.5 *. m.Measures.per_class.(1).Measures.concurrency)
    +. m.Measures.per_class.(2).Measures.concurrency
  in
  check_close "weighted" expected (Measures.revenue m ~weights);
  check_raises_invalid "weight mismatch" (fun () ->
      ignore (Measures.revenue m ~weights:[| 1. |]))

(* ---------- qualitative behaviour the paper reports ---------- *)

let blocking_of model = (solve model).Measures.per_class.(0).Measures.blocking

let test_blocking_monotone_in_load () =
  let blocking rate =
    blocking_of (Model.square ~size:8 ~classes:[ poisson rate ])
  in
  let previous = ref (blocking 0.01) in
  List.iter
    (fun rate ->
      let b = blocking rate in
      check_bool "monotone" true (b >= !previous);
      previous := b)
    [ 0.05; 0.1; 0.5; 1.0; 2.0; 5.0 ]

let test_poisson_upper_bounds_smooth () =
  (* Figure 1's claim: the degenerate Poisson case upper-bounds Bernoulli
     (smooth) traffic of the same alpha~. *)
  let blocking beta =
    blocking_of
      (Model.square ~size:64
         ~classes:
           [
             Crossbar.Traffic.create ~bandwidth:1 ~alpha:0.0024 ~beta
               ~service_rate:1. ();
           ])
  in
  let poisson = blocking 0. in
  List.iter
    (fun beta ->
      check_bool "smooth below poisson" true (blocking beta <= poisson))
    [ -1e-6; -2e-6; -4e-6 ]

let test_peaky_exceeds_poisson () =
  (* Figure 2's claim: Pascal traffic has higher blocking. *)
  let blocking beta =
    blocking_of
      (Model.square ~size:64
         ~classes:
           [
             Crossbar.Traffic.create ~bandwidth:1 ~alpha:0.0024 ~beta
               ~service_rate:1. ();
           ])
  in
  let poisson = blocking 0. in
  let previous = ref poisson in
  List.iter
    (fun beta ->
      let b = blocking beta in
      check_bool "peaky above poisson" true (b > poisson);
      check_bool "increasing in beta" true (b >= !previous);
      previous := b)
    [ 0.0006; 0.0012; 0.0024 ]

let test_multirate_penalty () =
  (* Figure 4's claim: at equal total load, a=2 traffic blocks (much)
     more than a=1 traffic. *)
  List.iter
    (fun n ->
      let rho1, rho2 = Crossbar_workloads.Paper.table1_loads n in
      let single =
        blocking_of
          (Model.square ~size:n ~classes:[ poisson ~name:"s" rho1 ])
      in
      let double =
        blocking_of
          (Model.square ~size:n
             ~classes:[ poisson ~name:"d" ~bandwidth:2 rho2 ])
      in
      check_bool
        (Printf.sprintf "a=2 blocks more at N=%d" n)
        true (double > single))
    [ 4; 8; 16; 32 ]

let test_poisson_limit_of_bpp () =
  (* beta -> 0 converges to the Poisson measures (the BPP unification). *)
  let poisson_m =
    solve (Model.square ~size:6 ~classes:[ poisson 0.4 ])
  in
  let bpp beta =
    solve
      (Model.square ~size:6
         ~classes:
           [
             Crossbar.Traffic.create ~bandwidth:1 ~alpha:0.4 ~beta
               ~service_rate:1. ();
           ])
  in
  let gap beta =
    Float.abs
      ((bpp beta).Measures.per_class.(0).Measures.blocking
      -. poisson_m.Measures.per_class.(0).Measures.blocking)
  in
  check_bool "converging" true (gap 1e-4 < gap 1e-2);
  check_bool "tiny at beta=1e-8" true (gap 1e-8 < 1e-8)

let test_bernoulli_class_never_exceeds_sources () =
  let model =
    Model.square ~size:8 ~classes:[ bernoulli ~sources:3 ~rate:5.0 () ]
  in
  let m = solve model in
  check_bool "E <= sources" true
    (m.Measures.per_class.(0).Measures.concurrency <= 3. +. 1e-12)

let test_saturation_limit () =
  (* Infinite load on a=1 single class: every port pair busy, E -> N. *)
  let model = Model.square ~size:4 ~classes:[ poisson 1e7 ] in
  let m = solve model in
  check_abs "E ~ N" 4. m.Measures.per_class.(0).Measures.concurrency ~tol:1e-2;
  check_abs "blocking ~ 1" 1. m.Measures.per_class.(0).Measures.blocking
    ~tol:1e-2

let () =
  Alcotest.run "measures"
    [
      ( "records",
        [
          case "consistency" test_record_consistency;
          case "throughput" test_throughput_littles_law;
          case "class_named" test_class_named;
          case "revenue weighting" test_revenue_weighting;
        ] );
      ( "qualitative",
        [
          case "monotone in load" test_blocking_monotone_in_load;
          case "poisson bounds smooth (fig 1)" test_poisson_upper_bounds_smooth;
          case "peaky exceeds poisson (fig 2)" test_peaky_exceeds_poisson;
          case "multirate penalty (fig 4)" test_multirate_penalty;
          case "poisson limit of BPP" test_poisson_limit_of_bpp;
          case "finite source cap" test_bernoulli_class_never_exceeds_sources;
          case "saturation" test_saturation_limit;
        ] );
    ]
