open Helpers
module Topology = Crossbar_network.Topology
module Analysis = Crossbar_network.Analysis
module Net_sim = Crossbar_network.Sim

(* ---------- topology ---------- *)

let test_topology_shape () =
  let t = Topology.create ~ports:64 ~fanout:4 in
  check_int "stages" 3 (Topology.stages t);
  check_int "links/level" 64 (Topology.links_per_level t);
  check_int "switches/stage" 16 (Topology.switches_per_stage t);
  check_int "crosspoints" (16 * 3 * 16) (Topology.crosspoints t);
  check_raises_invalid "not a power" (fun () ->
      ignore (Topology.create ~ports:48 ~fanout:4));
  check_raises_invalid "fanout 1" (fun () ->
      ignore (Topology.create ~ports:8 ~fanout:1))

let test_route_endpoints () =
  let t = Topology.create ~ports:27 ~fanout:3 in
  for input = 0 to 26 do
    for output = 0 to 26 do
      let route = Topology.route t ~input ~output in
      check_int "levels" 4 (Array.length route);
      check_int "starts at input" input route.(0);
      check_int "ends at output" output route.(Topology.stages t)
    done
  done;
  check_raises_invalid "bad port" (fun () ->
      ignore (Topology.route t ~input:27 ~output:0))

let test_route_self_routing_property () =
  (* Level-t label: first t output digits, last s-t input digits.  Two
     routes share a level-t link iff those digits coincide — verify via
     collision counting on a small network. *)
  let t = Topology.create ~ports:8 ~fanout:2 in
  let share_count level =
    let count = ref 0 in
    for i1 = 0 to 7 do
      for i2 = 0 to 7 do
        let r1 = Topology.route t ~input:i1 ~output:3 in
        let r2 = Topology.route t ~input:i2 ~output:3 in
        if r1.(level) = r2.(level) then incr count
      done
    done;
    !count
  in
  (* Same output: at level 3 (output port) all 8x8 pairs collide; at level
     0 only the 8 diagonal pairs do; intermediate levels interpolate by
     powers of the fanout. *)
  check_int "level 0" 8 (share_count 0);
  check_int "level 1" 16 (share_count 1);
  check_int "level 2" 32 (share_count 2);
  check_int "level 3" 64 (share_count 3)

let test_switch_of_link () =
  let t = Topology.create ~ports:16 ~fanout:2 in
  (* Links reached from the same switch differ only in digit [level]. *)
  for level = 1 to Topology.stages t do
    for link = 0 to 15 do
      let switch = Topology.switch_of_link t ~level ~link in
      check_bool "switch id in range" true
        (switch >= 0 && switch < Topology.switches_per_stage t)
    done
  done;
  check_raises_invalid "level 0" (fun () ->
      ignore (Topology.switch_of_link t ~level:0 ~link:0))

let topology_props =
  [
    QCheck2.Test.make ~name:"routes stay in range" ~count:200
      QCheck2.Gen.(triple (int_range 0 63) (int_range 0 63) (int_range 0 1))
      (fun (input, output, which) ->
        let t =
          if which = 0 then Topology.create ~ports:64 ~fanout:2
          else Topology.create ~ports:64 ~fanout:4
        in
        let route = Topology.route t ~input ~output in
        Array.for_all (fun l -> l >= 0 && l < 64) route);
    QCheck2.Test.make ~name:"same input+output => same route" ~count:100
      QCheck2.Gen.(pair (int_range 0 26) (int_range 0 26))
      (fun (input, output) ->
        let t = Topology.create ~ports:27 ~fanout:3 in
        Topology.route t ~input ~output = Topology.route t ~input ~output);
  ]

(* ---------- analysis ---------- *)

let test_zero_load () =
  let t = Topology.create ~ports:16 ~fanout:4 in
  let link = Analysis.link_fixed_point t ~offered:0. ~service_rate:1. in
  check_abs "no blocking" 0. link.Analysis.end_to_end_blocking ~tol:1e-9;
  let markov = Analysis.switch_markov t ~offered:0. ~service_rate:1. in
  check_abs "markov no blocking" 0. markov.Analysis.end_to_end_blocking
    ~tol:1e-9

let test_single_stage_markov_is_exact () =
  (* s = 1: the network is one k x k crossbar; the Markov approximation
     degenerates to the exact single-stage model with no thinning. *)
  let t = Topology.create ~ports:4 ~fanout:4 in
  let offered = 0.3 in
  let markov = Analysis.switch_markov t ~offered ~service_rate:1. in
  let model =
    Crossbar.Model.square ~size:4
      ~classes:
        [
          Crossbar.Traffic.poisson ~name:"stage" ~bandwidth:1 ~rate:offered
            ~service_rate:1. ();
        ]
  in
  let exact = Crossbar.Solver.solve model in
  check_close "exact at one stage"
    exact.Crossbar.Measures.per_class.(0).Crossbar.Measures.blocking
    markov.Analysis.end_to_end_blocking ~tol:1e-9

let test_blocking_monotone_in_load () =
  let t = Topology.create ~ports:64 ~fanout:4 in
  let blocking offered =
    (Analysis.switch_markov t ~offered ~service_rate:1.)
      .Analysis.end_to_end_blocking
  in
  let previous = ref 0. in
  List.iter
    (fun offered ->
      let b = blocking offered in
      check_bool "monotone" true (b >= !previous);
      check_bool "in range" true (b >= 0. && b <= 1.);
      previous := b)
    [ 0.01; 0.05; 0.1; 0.3; 0.6; 1.0 ]

let test_blocking_grows_with_depth () =
  (* More stages, more places to be blocked. *)
  let blocking ports fanout =
    let t = Topology.create ~ports ~fanout in
    (Analysis.link_fixed_point t ~offered:0.2 ~service_rate:1.)
      .Analysis.end_to_end_blocking
  in
  check_bool "2 stages < 3 stages" true (blocking 16 4 < blocking 64 4);
  check_bool "k=4 (3 stages) < k=2 (6 stages)" true
    (blocking 64 4 < blocking 64 2)

let test_analysis_guards () =
  let t = Topology.create ~ports:16 ~fanout:4 in
  check_raises_invalid "negative load" (fun () ->
      ignore (Analysis.link_fixed_point t ~offered:(-1.) ~service_rate:1.));
  check_raises_invalid "bad mu" (fun () ->
      ignore (Analysis.switch_markov t ~offered:1. ~service_rate:0.))

(* ---------- simulator vs analysis ---------- *)

let test_sim_matches_switch_markov () =
  (* The headline extension result: the crossbar-based Markov
     approximation tracks simulation closely where the classical link
     fixed point errs by tens of percent (see EXPERIMENTS.md). *)
  List.iter
    (fun (ports, fanout, offered) ->
      let t = Topology.create ~ports ~fanout in
      let sim =
        Net_sim.run
          { (Net_sim.default_config t ~offered) with horizon = 3e4; seed = 11 }
      in
      let markov = Analysis.switch_markov t ~offered ~service_rate:1. in
      check_abs
        (Printf.sprintf "N=%d k=%d offered=%g" ports fanout offered)
        sim.Net_sim.blocking markov.Analysis.end_to_end_blocking
        ~tol:(Float.max 0.012 (6. *. sim.Net_sim.blocking_halfwidth)))
    [ (16, 4, 0.1); (64, 4, 0.3); (64, 2, 0.1) ]

let test_link_fixed_point_overestimates_deep () =
  (* The independence approximation ignores the positive correlation of
     consecutive links and overestimates blocking, badly so for deep
     networks. *)
  let t = Topology.create ~ports:64 ~fanout:2 in
  let offered = 0.1 in
  let sim =
    Net_sim.run { (Net_sim.default_config t ~offered) with horizon = 3e4 }
  in
  let link = Analysis.link_fixed_point t ~offered ~service_rate:1. in
  check_bool "overestimates" true
    (link.Analysis.end_to_end_blocking
    > sim.Net_sim.blocking +. (10. *. sim.Net_sim.blocking_halfwidth))

let test_sim_determinism_and_counts () =
  let t = Topology.create ~ports:16 ~fanout:4 in
  let config =
    { (Net_sim.default_config t ~offered:0.2) with horizon = 3e3 }
  in
  let a = Net_sim.run config and b = Net_sim.run config in
  check_int "same events" a.Net_sim.events b.Net_sim.events;
  check_close "same blocking" a.Net_sim.blocking b.Net_sim.blocking;
  check_bool "accepted <= offered" true
    (a.Net_sim.accepted_count <= a.Net_sim.offered_count);
  let c = Net_sim.run { config with seed = 7 } in
  check_bool "seed changes the run" true
    (c.Net_sim.offered_count <> a.Net_sim.offered_count
    || c.Net_sim.events <> a.Net_sim.events)

let test_sim_insensitivity () =
  (* The exact network shares the loss-network insensitivity property. *)
  let t = Topology.create ~ports:16 ~fanout:4 in
  let base = { (Net_sim.default_config t ~offered:0.3) with horizon = 3e4 } in
  let exp_run = Net_sim.run base in
  let det_run =
    Net_sim.run { base with service = Crossbar_sim.Service.Deterministic; seed = 5 }
  in
  check_abs "insensitive" exp_run.Net_sim.blocking det_run.Net_sim.blocking
    ~tol:
      (Float.max 0.012
         (5. *. (exp_run.Net_sim.blocking_halfwidth +. det_run.Net_sim.blocking_halfwidth)))

let test_sim_guards () =
  let t = Topology.create ~ports:4 ~fanout:2 in
  check_raises_invalid "horizon" (fun () ->
      ignore (Net_sim.run { (Net_sim.default_config t ~offered:0.1) with horizon = 0. }));
  check_raises_invalid "batches" (fun () ->
      ignore (Net_sim.run { (Net_sim.default_config t ~offered:0.1) with batches = 1 }))

let () =
  Alcotest.run "network"
    [
      ( "topology",
        [
          case "shape" test_topology_shape;
          case "route endpoints" test_route_endpoints;
          case "self-routing collisions" test_route_self_routing_property;
          case "switch of link" test_switch_of_link;
        ]
        @ List.map qcheck topology_props );
      ( "analysis",
        [
          case "zero load" test_zero_load;
          case "single stage exact" test_single_stage_markov_is_exact;
          case "monotone in load" test_blocking_monotone_in_load;
          case "grows with depth" test_blocking_grows_with_depth;
          case "guards" test_analysis_guards;
        ] );
      ( "simulation",
        [
          slow_case "matches switch-markov" test_sim_matches_switch_markov;
          slow_case "link fp overestimates" test_link_fixed_point_overestimates_deep;
          case "determinism" test_sim_determinism_and_counts;
          slow_case "insensitivity" test_sim_insensitivity;
          case "guards" test_sim_guards;
        ] );
    ]
