open Helpers
module Traffic = Crossbar.Traffic

let test_constructors () =
  let p = Traffic.poisson ~name:"p" ~bandwidth:2 ~rate:0.5 ~service_rate:2. () in
  check_bool "poisson" true (Traffic.is_poisson p);
  check_close "offered load" 0.25 (Traffic.offered_load p);
  let q = Traffic.pascal ~name:"q" ~bandwidth:1 ~alpha:0.2 ~beta:0.1 ~service_rate:1. () in
  check_bool "pascal not poisson" false (Traffic.is_poisson q);
  let b =
    Traffic.bernoulli ~name:"b" ~bandwidth:1 ~sources:10 ~per_source_rate:0.3
      ~service_rate:1. ()
  in
  check_close "bernoulli alpha" 3. b.Traffic.alpha;
  check_close "bernoulli beta" (-0.3) b.Traffic.beta

let test_validation () =
  check_raises_invalid "bandwidth 0" (fun () ->
      ignore (Traffic.create ~bandwidth:0 ~alpha:1. ~beta:0. ~service_rate:1. ()));
  check_raises_invalid "negative alpha" (fun () ->
      ignore (Traffic.create ~bandwidth:1 ~alpha:(-1.) ~beta:0. ~service_rate:1. ()));
  check_raises_invalid "zero mu" (fun () ->
      ignore (Traffic.create ~bandwidth:1 ~alpha:1. ~beta:0. ~service_rate:0. ()));
  check_raises_invalid "nan beta" (fun () ->
      ignore (Traffic.create ~bandwidth:1 ~alpha:1. ~beta:Float.nan ~service_rate:1. ()));
  check_raises_invalid "pascal beta 0" (fun () ->
      ignore (Traffic.pascal ~bandwidth:1 ~alpha:1. ~beta:0. ~service_rate:1. ()));
  check_raises_invalid "bernoulli no sources" (fun () ->
      ignore
        (Traffic.bernoulli ~bandwidth:1 ~sources:0 ~per_source_rate:1.
           ~service_rate:1. ()))

let test_statistics_classification () =
  let stat ~beta =
    Traffic.statistics (Traffic.create ~bandwidth:1 ~alpha:1. ~beta ~service_rate:1. ())
  in
  check_bool "smooth" true (stat ~beta:(-0.1) = Traffic.Smooth);
  check_bool "regular" true (stat ~beta:0. = Traffic.Regular);
  check_bool "peaky" true (stat ~beta:0.5 = Traffic.Peaky)

let test_sources () =
  let b =
    Traffic.bernoulli ~bandwidth:1 ~sources:7 ~per_source_rate:0.4
      ~service_rate:1. ()
  in
  check_bool "integral sources" true (Traffic.sources b = Some 7);
  let odd = Traffic.create ~bandwidth:1 ~alpha:1. ~beta:(-0.3) ~service_rate:1. () in
  check_bool "non-integral" true (Traffic.sources odd = None);
  let p = Traffic.poisson ~bandwidth:1 ~rate:1. ~service_rate:1. () in
  check_bool "poisson has none" true (Traffic.sources p = None)

let test_updates () =
  let t = Traffic.create ~name:"x" ~bandwidth:2 ~alpha:1. ~beta:0.5 ~service_rate:2. () in
  let t' = Traffic.with_alpha t 3. in
  check_close "alpha updated" 3. t'.Traffic.alpha;
  check_close "beta kept" 0.5 t'.Traffic.beta;
  let t'' = Traffic.with_beta t (-0.25) in
  check_close "beta updated" (-0.25) t''.Traffic.beta;
  let scaled = Traffic.scale_load t 2. in
  check_close "alpha scaled" 2. scaled.Traffic.alpha;
  check_close "beta scaled" 1. scaled.Traffic.beta;
  check_raises_invalid "negative scale" (fun () ->
      ignore (Traffic.scale_load t (-1.)));
  check_raises_invalid "with_alpha negative" (fun () ->
      ignore (Traffic.with_alpha t (-2.)))

let test_bpp_statistics () =
  (* Paper's M, V, Z formulas (with mu = 1): M = a/(1-b), V = a/(1-b)^2. *)
  let alpha = 2. and beta = 0.5 and mu = 1. in
  check_close "mean" 4.
    (Traffic.infinite_server_mean ~alpha ~beta ~service_rate:mu);
  check_close "variance" 8.
    (Traffic.infinite_server_variance ~alpha ~beta ~service_rate:mu);
  check_close "peakedness" 2. (Traffic.peakedness ~beta ~service_rate:mu);
  check_close "Z = V/M" 2.
    (Traffic.infinite_server_variance ~alpha ~beta ~service_rate:mu
    /. Traffic.infinite_server_mean ~alpha ~beta ~service_rate:mu);
  (* Smooth traffic: Z < 1; regular: Z = 1. *)
  check_bool "smooth Z<1" true
    (Traffic.peakedness ~beta:(-0.5) ~service_rate:1. < 1.);
  check_close "regular Z=1" 1. (Traffic.peakedness ~beta:0. ~service_rate:1.);
  check_raises_invalid "unstable" (fun () ->
      ignore (Traffic.infinite_server_mean ~alpha:1. ~beta:2. ~service_rate:1.))

let traffic_props =
  [
    QCheck2.Test.make ~name:"scale_load scales offered load linearly" ~count:100
      QCheck2.Gen.(pair (float_range 0.01 10.) (float_range 0. 5.))
      (fun (alpha, factor) ->
        let t = Traffic.create ~bandwidth:1 ~alpha ~beta:0. ~service_rate:2. () in
        let scaled = Traffic.scale_load t factor in
        Float.abs (Traffic.offered_load scaled -. (factor *. Traffic.offered_load t))
        < 1e-12 *. Float.max 1. (factor *. alpha));
    QCheck2.Test.make ~name:"peakedness sign matches classification" ~count:100
      QCheck2.Gen.(float_range (-0.9) 0.9)
      (fun beta ->
        let z = Traffic.peakedness ~beta ~service_rate:1. in
        if beta > 0. then z > 1. else if beta < 0. then z < 1. else z = 1.);
  ]

let () =
  Alcotest.run "traffic"
    [
      ( "classes",
        [
          case "constructors" test_constructors;
          case "validation" test_validation;
          case "classification" test_statistics_classification;
          case "sources" test_sources;
          case "updates" test_updates;
          case "bpp statistics" test_bpp_statistics;
        ]
        @ List.map qcheck traffic_props );
    ]
