(* Bit-identity of the incremental solve layer.

   The contract under test is exact: Convolution.solve_incremental must
   reproduce Convolution.solve bit for bit — every measure, every log G
   lattice entry, the rescale count — because the sweep cache files both
   under the same key and callers must not be able to tell hits, full
   solves and incremental solves apart.  Likewise Sweep.run with and
   without ~incremental, at any domain count, and run_replications at
   any domain count. *)

module Conv = Crossbar.Convolution
module Model = Crossbar.Model
module Traffic = Crossbar.Traffic
module Solver = Crossbar.Solver
module Measures = Crossbar.Measures
module Sweep = Crossbar_engine.Sweep
module Cache = Crossbar_engine.Cache
module Sim = Crossbar_sim.Simulator

let bits = Int64.bits_of_float
let floats_identical a b = Int64.equal (bits a) (bits b)

let check_bits label a b =
  if not (floats_identical a b) then
    Alcotest.failf "%s: %.17g and %.17g differ in bits" label a b

let check_measures label (a : Measures.t) (b : Measures.t) =
  check_bits (label ^ ".busy_ports") a.Measures.busy_ports
    b.Measures.busy_ports;
  check_bits
    (label ^ ".input_utilization")
    a.Measures.input_utilization b.Measures.input_utilization;
  check_bits
    (label ^ ".output_utilization")
    a.Measures.output_utilization b.Measures.output_utilization;
  Helpers.check_int
    (label ^ ".class count")
    (Array.length a.Measures.per_class)
    (Array.length b.Measures.per_class);
  Array.iteri
    (fun r (ca : Measures.per_class) ->
      let cb = b.Measures.per_class.(r) in
      let field name = Printf.sprintf "%s.class %d.%s" label r name in
      check_bits (field "offered_load") ca.Measures.offered_load
        cb.Measures.offered_load;
      check_bits (field "non_blocking") ca.Measures.non_blocking
        cb.Measures.non_blocking;
      check_bits (field "blocking") ca.Measures.blocking cb.Measures.blocking;
      check_bits (field "concurrency") ca.Measures.concurrency
        cb.Measures.concurrency;
      check_bits (field "throughput") ca.Measures.throughput
        cb.Measures.throughput)
    a.Measures.per_class

(* Compare log G over the whole lattice; entries flushed by dynamic
   rescaling raise Failure on both sides or neither. *)
let check_lattice label model full inc =
  for n1 = 0 to Model.inputs model do
    for n2 = 0 to Model.outputs model do
      let entry t =
        match Conv.log_g t ~inputs:n1 ~outputs:n2 with
        | value -> Ok value
        | exception Failure _ -> Error ()
      in
      match (entry full, entry inc) with
      | Ok a, Ok b ->
          check_bits (Printf.sprintf "%s.log_g(%d,%d)" label n1 n2) a b
      | Error (), Error () -> ()
      | Ok _, Error () | Error (), Ok _ ->
          Alcotest.failf "%s: log_g(%d,%d) flushed on one side only" label n1
            n2
    done
  done

let check_solved label model full inc =
  check_bits
    (label ^ ".log_normalization")
    (Conv.log_normalization full) (Conv.log_normalization inc);
  Helpers.check_int (label ^ ".rescale_count") (Conv.rescale_count full)
    (Conv.rescale_count inc);
  check_measures label (Conv.measures full) (Conv.measures inc);
  check_lattice label model full inc

(* --- property: incremental = full on random models and perturbations --- *)

let perturbed_pair_gen =
  let open QCheck2.Gen in
  let* model = Helpers.random_model_gen in
  let* class_index = int_bound (Model.num_classes model - 1) in
  let* factor = float_range 0.3 3.0 in
  let changed =
    Model.map_class model class_index (fun c -> Traffic.scale_load c factor)
  in
  return (model, class_index, changed)

let prop_incremental_matches_full =
  QCheck2.Test.make ~count:60
    ~name:"solve_incremental bit-identical to solve (random models)"
    perturbed_pair_gen
    (fun (model, class_index, changed) ->
      let previous = Conv.solve model in
      let inc = Conv.solve_incremental ~previous ~class_index changed in
      let full = Conv.solve changed in
      check_solved "random" changed full inc;
      true)

(* Same property in the dynamic-rescaling regime: loads high enough that
   Section 6 rescaling fires (rescale_count > 0) on partial products. *)
let rescaling_pair_gen =
  let open QCheck2.Gen in
  let* size = int_range 24 36 in
  let* rate = float_range 1e8 1e12 in
  let* factor = float_range 0.5 2.0 in
  let classes rate =
    [
      Helpers.poisson ~name:"hot" rate;
      Helpers.pascal ~name:"warm" ~bandwidth:2 ~alpha:0.2 ~beta:0.1 ();
    ]
  in
  let model = Model.square ~size ~classes:(classes rate) in
  let changed =
    Model.map_class model 0 (fun c -> Traffic.scale_load c factor)
  in
  return (model, changed)

let prop_incremental_matches_full_rescaled =
  QCheck2.Test.make ~count:10
    ~name:"solve_incremental bit-identical under dynamic rescaling"
    rescaling_pair_gen
    (fun (model, changed) ->
      let previous = Conv.solve model in
      if Conv.rescale_count previous = 0 then
        QCheck2.Test.fail_report "expected rescaling to fire";
      let inc = Conv.solve_incremental ~previous ~class_index:0 changed in
      let full = Conv.solve changed in
      check_solved "rescaled" changed full inc;
      true)

(* --- deterministic cases --- *)

let test_rescale_identity () =
  let model =
    Model.square ~size:32 ~classes:[ Helpers.poisson ~name:"hot" 1e10 ]
  in
  let previous = Conv.solve model in
  Helpers.check_bool "rescaling fired" true (Conv.rescale_count previous > 0);
  let changed = Model.map_class model 0 (fun c -> Traffic.scale_load c 1.5) in
  let inc = Conv.solve_incremental ~previous ~class_index:0 changed in
  let full = Conv.solve changed in
  Helpers.check_bool "rescaling still fires" true (Conv.rescale_count full > 0);
  check_solved "rescale" changed full inc

let test_bandwidth_change () =
  let base =
    Model.square ~size:6
      ~classes:
        [
          Helpers.poisson ~name:"thin" 0.4;
          Helpers.pascal ~name:"wide" ~alpha:0.3 ~beta:0.2 ();
        ]
  in
  let changed =
    Model.map_class base 1 (fun c ->
        Traffic.create ~name:c.Traffic.name ~bandwidth:2 ~alpha:c.Traffic.alpha
          ~beta:c.Traffic.beta ~service_rate:c.Traffic.service_rate ())
  in
  (match Model.single_class_delta base changed with
  | Some 1 -> ()
  | _ -> Alcotest.fail "bandwidth change not detected as a class-1 delta");
  let previous = Conv.solve base in
  let inc = Conv.solve_incremental ~previous ~class_index:1 changed in
  let full = Conv.solve changed in
  check_solved "bandwidth" changed full inc

let test_single_class_delta_identical_is_none () =
  let model = Helpers.mixed_model ~inputs:5 ~outputs:4 in
  Helpers.check_bool "identical models give None" true
    (Model.single_class_delta model model = None)

let test_invalid_arguments () =
  let base =
    Model.square ~size:4
      ~classes:
        [ Helpers.poisson ~name:"a" 0.3; Helpers.poisson ~name:"b" 0.2 ]
  in
  let previous = Conv.solve base in
  Helpers.check_raises_invalid "dimension mismatch" (fun () ->
      let wider =
        Model.create ~inputs:5 ~outputs:4
          ~classes:(Array.to_list (Model.classes base))
      in
      Conv.solve_incremental ~previous ~class_index:0 wider);
  Helpers.check_raises_invalid "two classes changed" (fun () ->
      let both =
        Model.map_class
          (Model.map_class base 0 (fun c -> Traffic.scale_load c 2.0))
          1
          (fun c -> Traffic.scale_load c 2.0)
      in
      Conv.solve_incremental ~previous ~class_index:0 both);
  Helpers.check_raises_invalid "class index out of range" (fun () ->
      Conv.solve_incremental ~previous ~class_index:2 base)

(* --- sweep engine: ~incremental and domain count change nothing --- *)

let load_sweep_points count =
  List.init count (fun i ->
      let load = 0.1 +. (0.05 *. float_of_int i) in
      Sweep.point ~algorithm:Solver.Convolution
        ~label:(Printf.sprintf "load=%.2f" load)
        (Model.square ~size:8
           ~classes:
             [
               Helpers.poisson ~name:"bg" 0.2;
               Helpers.pascal ~name:"swept" ~alpha:load ~beta:(load /. 4.) ();
             ]))

let check_outcomes label (a : Sweep.outcome array) (b : Sweep.outcome array) =
  Helpers.check_int (label ^ ".length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i (x : Sweep.outcome) ->
      let y = b.(i) in
      let field name = Printf.sprintf "%s.point %d.%s" label i name in
      check_bits
        (field "log_normalization")
        x.Sweep.solution.Solver.log_normalization
        y.Sweep.solution.Solver.log_normalization;
      Helpers.check_int (field "rescales") x.Sweep.solution.Solver.rescales
        y.Sweep.solution.Solver.rescales;
      check_measures (field "measures") (Sweep.measures x) (Sweep.measures y))
    a

let test_sweep_incremental_bit_identical () =
  let points = load_sweep_points 12 in
  let baseline = Sweep.run ~domains:1 ~cache:(Cache.create ()) points in
  let inc1 =
    Sweep.run ~domains:1 ~cache:(Cache.create ()) ~incremental:true points
  in
  let inc3 =
    Sweep.run ~domains:3 ~cache:(Cache.create ()) ~incremental:true points
  in
  check_outcomes "incremental domains=1" baseline inc1;
  check_outcomes "incremental domains=3" baseline inc3;
  Array.iteri
    (fun i (o : Sweep.outcome) ->
      Helpers.check_bool
        (Printf.sprintf "baseline point %d not incremental" i)
        false o.Sweep.from_incremental)
    baseline;
  List.iter
    (fun (name, outcomes) ->
      Array.iteri
        (fun i (o : Sweep.outcome) ->
          Helpers.check_bool
            (Printf.sprintf "%s point %d from_incremental" name i)
            (i > 0) o.Sweep.from_incremental)
        outcomes)
    [ ("domains=1", inc1); ("domains=3", inc3) ]

(* Chains are no longer restricted to single-class deltas: here every
   point changes BOTH classes relative to its neighbour, and the whole
   run must still chain incrementally and stay bit-identical. *)
let multi_class_sweep_points count =
  List.init count (fun i ->
      let load = 0.1 +. (0.05 *. float_of_int i) in
      Sweep.point ~algorithm:Solver.Convolution
        ~label:(Printf.sprintf "load=%.2f" load)
        (Model.square ~size:8
           ~classes:
             [
               Helpers.poisson ~name:"bg" (0.2 +. (load /. 10.));
               Helpers.pascal ~name:"swept" ~alpha:load ~beta:(load /. 4.) ();
             ]))

let test_sweep_multi_class_chain () =
  let points = multi_class_sweep_points 10 in
  (match points with
  | first :: second :: _ ->
      (match Model.class_delta first.Sweep.model second.Sweep.model with
      | Some [ 0; 1 ] -> ()
      | _ -> Alcotest.fail "expected both classes to change between points")
  | _ -> assert false);
  let baseline = Sweep.run ~domains:1 ~cache:(Cache.create ()) points in
  let inc =
    Sweep.run ~domains:1 ~cache:(Cache.create ()) ~incremental:true points
  in
  check_outcomes "multi-class chain" baseline inc;
  Array.iteri
    (fun i (o : Sweep.outcome) ->
      Helpers.check_bool
        (Printf.sprintf "point %d chains incrementally" i)
        (i > 0) o.Sweep.from_incremental)
    inc

(* --- simulator: replication results independent of domain count --- *)

let check_estimates label (a : Sim.estimate array) (b : Sim.estimate array) =
  Helpers.check_int (label ^ ".length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i (x : Sim.estimate) ->
      let y = b.(i) in
      check_bits (Printf.sprintf "%s.%d.point" label i) x.Sim.point y.Sim.point;
      check_bits
        (Printf.sprintf "%s.%d.halfwidth" label i)
        x.Sim.halfwidth y.Sim.halfwidth)
    a

let test_replications_domain_independent () =
  let model = Helpers.mixed_model ~inputs:5 ~outputs:4 in
  let config =
    {
      (Sim.default_config model) with
      horizon = 500.;
      warmup = 50.;
      batches = 3;
    }
  in
  let sequential = Sim.run_replications ~domains:1 ~replications:4 config in
  let parallel = Sim.run_replications ~domains:3 ~replications:4 config in
  Helpers.check_int "replications" sequential.Sim.replications
    parallel.Sim.replications;
  check_estimates "time_congestion" sequential.Sim.rep_time_congestion
    parallel.Sim.rep_time_congestion;
  check_estimates "call_congestion" sequential.Sim.rep_call_congestion
    parallel.Sim.rep_call_congestion;
  check_estimates "concurrency" sequential.Sim.rep_concurrency
    parallel.Sim.rep_concurrency

let () =
  Alcotest.run "incremental"
    [
      ( "bit-identity",
        [
          Helpers.qcheck prop_incremental_matches_full;
          Helpers.qcheck prop_incremental_matches_full_rescaled;
          Helpers.case "rescaling regime, deterministic" test_rescale_identity;
          Helpers.case "bandwidth change re-solves one factor"
            test_bandwidth_change;
        ] );
      ( "validation",
        [
          Helpers.case "identical models are not a delta"
            test_single_class_delta_identical_is_none;
          Helpers.case "solve_incremental rejects bad inputs"
            test_invalid_arguments;
        ] );
      ( "engine",
        [
          Helpers.case "sweep incremental/domains bit-identical"
            test_sweep_incremental_bit_identical;
          Helpers.case "sweep chains multi-class deltas"
            test_sweep_multi_class_chain;
          Helpers.case "run_replications domain-independent"
            test_replications_domain_independent;
        ] );
    ]
