open Helpers
module L = Crossbar_numerics.Logspace
module Special = Crossbar_numerics.Special
module Prob = Crossbar_numerics.Prob
module Kahan = Crossbar_numerics.Kahan
module Derivative = Crossbar_numerics.Derivative
module Linalg = Crossbar_numerics.Linalg
module Roots = Crossbar_numerics.Roots

(* ---------- Logspace ---------- *)

let test_logspace_roundtrip () =
  List.iter
    (fun x -> check_close "roundtrip" x L.(to_float (of_float x)))
    [ 0.5; 1.; 3.25; 1e-200; 1e200 ];
  check_bool "zero" true (L.is_zero L.zero);
  check_close "one" 1. (L.to_float L.one)

let test_logspace_arithmetic () =
  let a = L.of_float 3. and b = L.of_float 4. in
  check_close "add" 7. L.(to_float (add a b));
  check_close "mul" 12. L.(to_float (mul a b));
  check_close "div" 0.75 L.(to_float (div a b));
  check_close "sub" 1. L.(to_float (sub b a));
  check_close "ratio" 0.75 (L.ratio a b);
  check_close "add zero" 3. L.(to_float (add a zero));
  check_close "mul zero" 0. L.(to_float (mul a zero));
  check_bool "compare" true (L.compare a b < 0)

let test_logspace_extreme () =
  (* Values far outside the double range. *)
  let huge = L.of_log 1000. and tiny = L.of_log (-1000.) in
  check_close "huge*tiny" 1. L.(to_float (mul huge tiny));
  let sum = L.sum [| huge; huge; huge |] in
  check_close "sum log" (1000. +. log 3.) (L.to_log sum) ~tol:1e-12;
  check_close "sum with zeros" (L.to_log huge)
    (L.to_log (L.sum [| L.zero; huge; L.zero |]))

let test_logspace_errors () =
  check_raises_invalid "of_float neg" (fun () -> L.of_float (-1.));
  check_raises_invalid "sub neg" (fun () -> L.(sub (of_float 1.) (of_float 2.)));
  (match L.(div one zero) with
  | exception Division_by_zero -> ()
  | _ -> Alcotest.fail "div by zero should raise");
  (* Tiny negative differences from rounding clamp to zero. *)
  let a = L.of_float 1. in
  check_bool "sub self is zero" true (L.is_zero (L.sub a a))

let logspace_props =
  let pos = QCheck2.Gen.map Float.abs (QCheck2.Gen.float_range 1e-6 1e6) in
  [
    QCheck2.Test.make ~name:"logspace add commutes" ~count:200
      QCheck2.Gen.(pair pos pos)
      (fun (x, y) ->
        let open L in
        Float.abs
          (to_log (add (of_float x) (of_float y))
          -. to_log (add (of_float y) (of_float x)))
        < 1e-12);
    QCheck2.Test.make ~name:"logspace add matches float" ~count:200
      QCheck2.Gen.(pair pos pos)
      (fun (x, y) ->
        let got = L.(to_float (add (of_float x) (of_float y))) in
        Float.abs (got -. (x +. y)) /. (x +. y) < 1e-12);
    QCheck2.Test.make ~name:"logspace sub inverts add" ~count:200
      QCheck2.Gen.(pair pos pos)
      (fun (x, y) ->
        let open L in
        let back = to_float (sub (add (of_float x) (of_float y)) (of_float y)) in
        Float.abs (back -. x) /. x < 1e-9);
  ]

(* ---------- Kahan ---------- *)

let test_kahan_catastrophic () =
  let acc = Kahan.create () in
  Kahan.add acc 1e16;
  Kahan.add acc 1.;
  Kahan.add acc (-1e16);
  check_close "compensated" 1. (Kahan.total acc);
  Kahan.reset acc;
  check_close "reset" 0. (Kahan.total acc)

let test_kahan_sum_many () =
  (* Summing n copies of 0.1 naively drifts; compensated must not. *)
  let values = Array.make 1_000_000 0.1 in
  check_close "sum 1e6 * 0.1" 100000. (Kahan.sum values) ~tol:1e-14

let test_kahan_dot () =
  check_close "dot" 32. (Kahan.dot [| 1.; 2.; 3. |] [| 4.; 5.; 6. |]);
  check_raises_invalid "dot mismatch" (fun () ->
      Kahan.dot [| 1. |] [| 1.; 2. |])

(* ---------- Special functions ---------- *)

let test_lgamma_known () =
  check_abs "lgamma 1" 0. (Special.lgamma 1.) ~tol:1e-13;
  check_abs "lgamma 2" 0. (Special.lgamma 2.) ~tol:1e-13;
  check_close "lgamma 0.5" (0.5 *. log Float.pi) (Special.lgamma 0.5) ~tol:1e-12;
  check_close "lgamma 5 = log 24" (log 24.) (Special.lgamma 5.) ~tol:1e-13;
  check_close "lgamma 101 = log 100!" (Special.log_factorial 100)
    (Special.lgamma 101.) ~tol:1e-12;
  check_raises_invalid "lgamma 0" (fun () -> Special.lgamma 0.)

let test_log_factorial () =
  check_close "0!" 0. (Special.log_factorial 0);
  check_close "5!" (log 120.) (Special.log_factorial 5) ~tol:1e-14;
  (* Table/lgamma crossover must be seamless. *)
  let step =
    Special.log_factorial 1024 -. Special.log_factorial 1023
  in
  check_close "crossover step" (log 1024.) step ~tol:1e-10;
  check_raises_invalid "negative" (fun () -> Special.log_factorial (-1))

let test_permutations () =
  check_close "P(5,2)" 20. (Special.permutations 5 2);
  check_close "P(5,0)" 1. (Special.permutations 5 0);
  check_close "P(5,5)" 120. (Special.permutations 5 5);
  check_close "P(5,6)" 0. (Special.permutations 5 6);
  check_close "log P(50,10)"
    (Special.log_factorial 50 -. Special.log_factorial 40)
    (Special.log_permutations 50 10) ~tol:1e-13;
  check_bool "log P over" true (Special.log_permutations 3 4 = neg_infinity)

let test_binomial () =
  check_close "C(10,3)" 120. (Special.binomial 10 3);
  check_close "C(10,7)" 120. (Special.binomial 10 7);
  check_close "C(10,0)" 1. (Special.binomial 10 0);
  check_close "C(10,11)" 0. (Special.binomial 10 11);
  check_close "C(52,5)" 2598960. (Special.binomial 52 5);
  check_close "log C(100,50)" (log (Special.binomial 100 50))
    (Special.log_binomial 100 50) ~tol:1e-12

let test_rising_factorial () =
  (* rising(c, k) = c (c+1) ... (c+k-1) *)
  check_close "rising(2,3)" (log (2. *. 3. *. 4.))
    (Special.log_rising_factorial 2. 3) ~tol:1e-12;
  check_close "rising(0.5,2)" (log 0.75)
    (Special.log_rising_factorial 0.5 2) ~tol:1e-12;
  check_close "rising(c,0)" 0. (Special.log_rising_factorial 3.7 0) ~tol:1e-12

let test_erf () =
  check_abs "erf 0" 0. (Special.erf 0.) ~tol:2e-7;
  check_abs "erf 1" 0.8427007929 (Special.erf 1.) ~tol:2e-7;
  check_abs "erf 2" 0.9953222650 (Special.erf 2.) ~tol:2e-7;
  check_close "erf odd" (-.Special.erf 0.7) (Special.erf (-0.7)) ~tol:1e-12;
  check_abs "erfc 1" (1. -. 0.8427007929) (Special.erfc 1.) ~tol:2e-7

(* ---------- Prob ---------- *)

let test_normal () =
  check_abs "cdf 0" 0.5 (Prob.normal_cdf 0.) ~tol:1e-9;
  check_abs "cdf 1.96" 0.975 (Prob.normal_cdf 1.96) ~tol:1e-4;
  check_abs "cdf -1.96" 0.025 (Prob.normal_cdf (-1.96)) ~tol:1e-4;
  check_abs "quantile .975" 1.959964 (Prob.normal_quantile 0.975) ~tol:1e-5;
  check_abs "quantile .5" 0. (Prob.normal_quantile 0.5) ~tol:1e-9;
  check_raises_invalid "quantile 0" (fun () -> Prob.normal_quantile 0.)

let test_incomplete_beta () =
  check_close "I_0" 0. (Prob.incomplete_beta ~a:2. ~b:3. 0.);
  check_close "I_1" 1. (Prob.incomplete_beta ~a:2. ~b:3. 1.);
  (* I_x(1, b) = 1 - (1-x)^b *)
  check_close "I_x(1,4)"
    (1. -. Float.pow 0.7 4.)
    (Prob.incomplete_beta ~a:1. ~b:4. 0.3)
    ~tol:1e-12;
  (* Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a). *)
  let a = 2.5 and b = 1.25 and x = 0.37 in
  check_close "symmetry"
    (1. -. Prob.incomplete_beta ~a:b ~b:a (1. -. x))
    (Prob.incomplete_beta ~a ~b x)
    ~tol:1e-12

let test_student_t () =
  check_abs "cdf 0" 0.5 (Prob.student_t_cdf ~df:7 0.) ~tol:1e-12;
  (* Known two-sided critical values. *)
  check_abs "t(1, .95)" 12.706 (Prob.student_t_critical ~confidence:0.95 ~df:1)
    ~tol:2e-3;
  check_abs "t(10, .95)" 2.228 (Prob.student_t_critical ~confidence:0.95 ~df:10)
    ~tol:1e-3;
  check_abs "t(30, .95)" 2.042 (Prob.student_t_critical ~confidence:0.95 ~df:30)
    ~tol:1e-3;
  check_abs "t(29, .99)" 2.756 (Prob.student_t_critical ~confidence:0.99 ~df:29)
    ~tol:1e-3;
  (* Large df approaches the normal quantile. *)
  check_abs "t(10000) ~ z" 1.9600
    (Prob.student_t_critical ~confidence:0.95 ~df:10000)
    ~tol:1e-3;
  check_raises_invalid "df 0" (fun () ->
      ignore (Prob.student_t_critical ~confidence:0.95 ~df:0))

(* ---------- Derivative ---------- *)

let test_derivative_orders () =
  let f = exp and x = 0.7 in
  let truth = exp x in
  let err scheme = Float.abs (scheme -. truth) /. truth in
  let forward = err (Derivative.forward ~f x) in
  let central = err (Derivative.central ~f x) in
  let richardson = err (Derivative.richardson ~f x) in
  check_bool "central beats forward" true (central < forward);
  check_bool "richardson near machine" true (richardson < 1e-10)

let test_derivative_trig () =
  check_abs "d sin at pi/3" (cos (Float.pi /. 3.))
    (Derivative.richardson ~f:sin (Float.pi /. 3.))
    ~tol:1e-10;
  check_abs "d x^3 at 2" 12. (Derivative.central ~f:(fun x -> x ** 3.) 2.)
    ~tol:1e-5

(* ---------- Linalg ---------- *)

let test_linalg_solve () =
  let a = [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let x = Linalg.solve a [| 3.; 5. |] in
  check_close "x0" 0.8 x.(0);
  check_close "x1" 1.4 x.(1);
  (* Pivoting: zero on the diagonal. *)
  let b = [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let y = Linalg.solve b [| 2.; 3. |] in
  check_close "pivot x0" 3. y.(0);
  check_close "pivot x1" 2. y.(1)

let test_linalg_determinant () =
  check_close "det identity" 1. (Linalg.determinant (Linalg.identity 4));
  check_close "det 2x2" (-2.)
    (Linalg.determinant [| [| 1.; 2. |]; [| 3.; 4. |] |]);
  check_close "det singular" 0.
    (Linalg.determinant [| [| 1.; 2. |]; [| 2.; 4. |] |])

let test_linalg_errors () =
  (match Linalg.solve [| [| 1.; 2. |]; [| 2.; 4. |] |] [| 1.; 1. |] with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "singular solve should fail");
  check_raises_invalid "dim mismatch" (fun () ->
      ignore (Linalg.solve (Linalg.identity 2) [| 1. |]));
  check_raises_invalid "ragged" (fun () ->
      ignore (Linalg.mat_vec [| [| 1.; 2. |]; [| 3. |] |] [| 1.; 1. |]))

let linalg_props =
  let gen =
    QCheck2.Gen.(
      array_size (return 4) (float_range (-10.) 10.))
  in
  [
    QCheck2.Test.make ~name:"solve(A, A x) = x for dominant A" ~count:100 gen
      (fun v ->
        let n = 4 in
        (* Diagonally dominant => well conditioned. *)
        let a =
          Array.init n (fun i ->
              Array.init n (fun j ->
                  if i = j then 20. +. Float.abs v.(i) else v.((i + j) mod n) /. 10.))
        in
        let x = Array.init n (fun i -> v.(i)) in
        let b = Linalg.mat_vec a x in
        let solved = Linalg.solve a b in
        Array.for_all2 (fun u w -> Float.abs (u -. w) < 1e-9) x solved);
  ]

(* ---------- Roots ---------- *)

let test_roots () =
  let f x = cos x -. x in
  let root = Roots.bisection ~f ~lo:0. ~hi:1. () in
  check_abs "bisection dottie" 0.7390851332 root ~tol:1e-9;
  let root = Roots.brent ~f ~lo:0. ~hi:1. () in
  check_abs "brent dottie" 0.7390851332 root ~tol:1e-9;
  let cube = Roots.brent ~f:(fun x -> (x *. x *. x) -. 8.) ~lo:0. ~hi:10. () in
  check_abs "brent cube root" 2. cube ~tol:1e-9;
  check_raises_invalid "not bracketed" (fun () ->
      ignore (Roots.bisection ~f:(fun x -> x +. 10.) ~lo:0. ~hi:1. ()))

let test_invert_monotone () =
  let x = Roots.invert_monotone ~f:(fun x -> x *. x) ~target:9. ~lo:0. () in
  check_abs "sqrt 9" 3. x ~tol:1e-9;
  let x = Roots.invert_monotone ~f:(fun x -> x ** 3.) ~target:1e6 ~lo:0. () in
  check_abs "cbrt 1e18" 100. x ~tol:1e-6

let () =
  Alcotest.run "numerics"
    [
      ( "logspace",
        [
          case "roundtrip" test_logspace_roundtrip;
          case "arithmetic" test_logspace_arithmetic;
          case "extreme magnitudes" test_logspace_extreme;
          case "errors" test_logspace_errors;
        ]
        @ List.map qcheck logspace_props );
      ( "kahan",
        [
          case "catastrophic cancellation" test_kahan_catastrophic;
          case "long sum" test_kahan_sum_many;
          case "dot" test_kahan_dot;
        ] );
      ( "special",
        [
          case "lgamma" test_lgamma_known;
          case "log_factorial" test_log_factorial;
          case "permutations" test_permutations;
          case "binomial" test_binomial;
          case "rising factorial" test_rising_factorial;
          case "erf" test_erf;
        ] );
      ( "prob",
        [
          case "normal" test_normal;
          case "incomplete beta" test_incomplete_beta;
          case "student t" test_student_t;
        ] );
      ( "derivative",
        [
          case "error ordering" test_derivative_orders;
          case "trig and poly" test_derivative_trig;
        ] );
      ( "linalg",
        [
          case "solve" test_linalg_solve;
          case "determinant" test_linalg_determinant;
          case "errors" test_linalg_errors;
        ]
        @ List.map qcheck linalg_props );
      ( "roots",
        [ case "brackets" test_roots; case "invert monotone" test_invert_monotone ]
      );
    ]
