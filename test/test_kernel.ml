(* The combine kernels are the solver's inner loop: the tiled dense
   kernel, the strided kernel, the banded parallel dispatch and the
   arena-recycled storage must all be bitwise-invisible — every result
   identical to the reference combine ([Convolution.combine_naive]) on
   every operand pair, in every rescaling regime, for every tile size
   and domain count.  These suites pin that contract, the one-pass
   [Lattice.normalize], and the zero-allocation arena plateau. *)

module Conv = Crossbar.Convolution
module Tree = Crossbar.Convolution.Factor_tree
module Lattice = Crossbar.Lattice
module Model = Crossbar.Model
module Traffic = Crossbar.Traffic

let bits = Int64.bits_of_float
let floats_identical a b = Int64.equal (bits a) (bits b)

let check_bits label a b =
  if not (floats_identical a b) then
    Alcotest.failf "%s: %.17g and %.17g differ in bits" label a b

(* ---------- operand construction ---------- *)

(* A profile with entries at multiples of [stride] (the invariant class
   factors satisfy), magnitudes around [10^mag].  Values come from a
   splitmix-style integer hash of (seed, u), so operands are
   reproducible without threading a generator through qcheck shrink. *)
let hashed_unit seed u =
  let h = ref (Int64.of_int ((seed * 0x9e3779b9) + (u * 0x85ebca6b))) in
  h := Int64.mul !h 0xff51afd7ed558ccdL;
  h := Int64.logxor !h (Int64.shift_right_logical !h 33);
  let mantissa = Int64.to_float (Int64.logand !h 0xfffffL) in
  0.05 +. (0.9 *. (mantissa /. 1048576.))

let make_profile ~cap ~stride ~mag seed =
  let l = Lattice.create ~stride ~capacity:cap () in
  let factor = 10. ** float_of_int mag in
  for k = 0 to cap / stride do
    Lattice.set l (k * stride) (hashed_unit seed k *. factor)
  done;
  l

let context ?tile ?threshold ?domains cap =
  Conv.context_of ?tile ?combine_threshold:threshold ?band_domains:domains
    ~inputs:cap ~outputs:(cap + 3) ()

let check_same_lattice label reference candidate =
  Helpers.check_int (label ^ ": capacity") (Lattice.capacity reference)
    (Lattice.capacity candidate);
  Helpers.check_int (label ^ ": stride") (Lattice.stride reference)
    (Lattice.stride candidate);
  Helpers.check_int (label ^ ": scale") (Lattice.scale reference)
    (Lattice.scale candidate);
  for u = 0 to Lattice.capacity reference do
    check_bits
      (Printf.sprintf "%s: entry %d" label u)
      (Lattice.get reference u) (Lattice.get candidate u)
  done

let check_combine_matches_naive label ctx a b =
  let fast = Conv.combine ctx a b in
  let naive = Conv.combine_naive ctx a b in
  check_same_lattice label naive fast

(* ---------- tiled kernel vs the reference combine ---------- *)

let operand_gen =
  let open QCheck2.Gen in
  let* cap = int_range 4 40 in
  let* tile = int_range 1 17 in
  let* sa = oneofl [ 1; 1; 1; 2; 3 ] in
  let* sb = oneofl [ 1; 1; 2; 3 ] in
  (* mag 0: plain regime.  mag ~123 per operand: the product overflows
     the rescale threshold, so the prechunk borrows chunks and the
     chunk-scaled scratch copies feed the kernel.  mag ~245: single
     entries sit near the threshold and the result needs normalize's
     one-pass chunk application too. *)
  let* mag = oneofl [ 0; 0; 123; 245 ] in
  let* seed = int_range 1 1_000_000 in
  return (cap, tile, sa, sb, mag, seed)

let combine_matches_naive =
  QCheck2.Test.make ~name:"combine is bit-identical to combine_naive"
    ~count:120 operand_gen (fun (cap, tile, sa, sb, mag, seed) ->
      let ctx = context ~tile cap in
      let a = make_profile ~cap ~stride:sa ~mag seed in
      let b = make_profile ~cap ~stride:sb ~mag (seed + 1) in
      check_combine_matches_naive
        (Printf.sprintf "cap=%d tile=%d sa=%d sb=%d mag=%d" cap tile sa sb
           mag)
        ctx a b;
      true)

(* Capacities straddling the tile boundary: cap mod tile in {-1, 0, +1}
   exercises the partial final block of both tile loops. *)
let test_tile_boundaries () =
  let tile = 8 in
  List.iter
    (fun cap ->
      List.iter
        (fun mag ->
          let ctx = context ~tile cap in
          let a = make_profile ~cap ~stride:1 ~mag 11 in
          let b = make_profile ~cap ~stride:1 ~mag 12 in
          check_combine_matches_naive
            (Printf.sprintf "boundary cap=%d tile=%d mag=%d" cap tile mag)
            ctx a b)
        [ 0; 123 ])
    [ 15; 16; 17 ]

let test_degenerate_tiles () =
  let cap = 13 in
  let a = make_profile ~cap ~stride:1 ~mag:0 21 in
  let b = make_profile ~cap ~stride:2 ~mag:0 22 in
  List.iter
    (fun tile ->
      check_combine_matches_naive
        (Printf.sprintf "tile=%d" tile)
        (context ~tile cap) a b)
    [ 1; 13; 64; 1000 ]

(* ---------- banded parallel dispatch ---------- *)

let test_banded_determinism () =
  let cap = 33 in
  List.iter
    (fun mag ->
      let a = make_profile ~cap ~stride:1 ~mag 31 in
      let b = make_profile ~cap ~stride:1 ~mag 32 in
      let sequential = context ~domains:1 cap in
      let reference = Conv.combine_naive sequential a b in
      List.iter
        (fun domains ->
          (* threshold 1: every combine runs banded. *)
          let ctx = context ~threshold:1 ~domains cap in
          let banded = Conv.combine ctx a b in
          check_same_lattice
            (Printf.sprintf "domains=%d mag=%d" domains mag)
            reference banded;
          if domains > 1 then
            Helpers.check_int
              (Printf.sprintf "domains=%d: combine was banded" domains)
              1 (Conv.banded_total ctx))
        [ 1; 2; 4 ];
      Helpers.check_int "sequential context never bands" 0
        (Conv.banded_total sequential);
      ignore (Conv.combine sequential a b);
      Helpers.check_int "below threshold still never bands" 0
        (Conv.banded_total sequential))
    [ 0; 123 ]

let test_banded_strided () =
  let cap = 29 in
  let a = make_profile ~cap ~stride:2 ~mag:0 41 in
  let b = make_profile ~cap ~stride:3 ~mag:0 42 in
  let reference = Conv.combine_naive (context cap) a b in
  List.iter
    (fun domains ->
      let ctx = context ~threshold:1 ~domains cap in
      check_same_lattice
        (Printf.sprintf "strided domains=%d" domains)
        reference (Conv.combine ctx a b))
    [ 2; 4 ]

(* More bands than outputs: the trailing bands are empty and must not
   touch the result (or crash). *)
let test_more_bands_than_outputs () =
  let cap = 3 in
  let a = make_profile ~cap ~stride:1 ~mag:0 51 in
  let b = make_profile ~cap ~stride:1 ~mag:0 52 in
  let ctx = context ~threshold:1 ~domains:8 cap in
  check_same_lattice "8 bands over 4 outputs"
    (Conv.combine_naive ctx a b)
    (Conv.combine ctx a b)

(* ---------- persistent band-worker pool ---------- *)

module Band_pool = Crossbar.Band_pool

let test_pool_runs_every_band () =
  let bands = 4 in
  let hit = Array.make bands 0 in
  Band_pool.run ~bands (fun i -> hit.(i) <- hit.(i) + 1);
  Array.iteri
    (fun i n -> Helpers.check_int (Printf.sprintf "band %d ran once" i) 1 n)
    hit;
  Helpers.check_bool "workers stay resident between dispatches" true
    (Band_pool.size () >= bands - 1)

let test_pool_shutdown_and_rewarm () =
  Band_pool.run ~bands:3 (fun _ -> ());
  Helpers.check_bool "warm before shutdown" true (Band_pool.size () >= 2);
  Band_pool.shutdown ();
  Helpers.check_int "shutdown empties the pool" 0 (Band_pool.size ());
  (* The next dispatch re-warms transparently: same API, fresh workers. *)
  let hit = Array.make 3 false in
  Band_pool.run ~bands:3 (fun i -> hit.(i) <- true);
  Helpers.check_bool "re-warmed dispatch covers every band" true
    (Array.for_all Fun.id hit);
  Helpers.check_bool "workers respawned" true (Band_pool.size () >= 2)

let test_pool_worker_exception () =
  (match Band_pool.run ~bands:2 (fun i -> if i = 1 then failwith "band boom")
   with
  | () -> Alcotest.fail "worker exception was swallowed"
  | exception Failure message ->
      Helpers.check_bool "message survives the domain hop" true
        (String.equal message "band boom"));
  (* A failed dispatch must leave the pool serviceable. *)
  let hit = Array.make 2 false in
  Band_pool.run ~bands:2 (fun i -> hit.(i) <- true);
  Helpers.check_bool "pool usable after a failure" true
    (Array.for_all Fun.id hit)

let test_pool_caller_band_wins () =
  match
    Band_pool.run ~bands:2 (fun i ->
        if i = 0 then failwith "caller band" else failwith "worker band")
  with
  | () -> Alcotest.fail "exceptions were swallowed"
  | exception Failure message ->
      Helpers.check_bool "band 0 (the caller) outranks worker bands" true
        (String.equal message "caller band")

let test_pool_degenerate () =
  Band_pool.shutdown ();
  let ran = ref false in
  Band_pool.run ~bands:1 (fun i ->
      Helpers.check_int "inline band index" 0 i;
      ran := true);
  Helpers.check_bool "bands=1 runs inline" true !ran;
  Helpers.check_int "bands=1 spawns no workers" 0 (Band_pool.size ());
  Helpers.check_raises_invalid "bands=0 rejected" (fun () ->
      Band_pool.run ~bands:0 (fun _ -> ()))

(* Operand capacities straddling the new default threshold: below it the
   combine stays sequential, at or above it the pool dispatch runs — and
   either way the result must match the reference kernel and the
   spawn-per-band oracle bit for bit. *)
let threshold_crossover_gen =
  let open QCheck2.Gen in
  let* cap = int_range 250 266 in
  let* domains = int_range 2 4 in
  let* mag = oneofl [ 0; 123 ] in
  let* seed = int_range 1 1_000_000 in
  return (cap, domains, mag, seed)

let banded_bit_identity_at_threshold =
  QCheck2.Test.make
    ~name:"pool-banded combine is bit-identical around threshold 256"
    ~count:12 threshold_crossover_gen (fun (cap, domains, mag, seed) ->
      let threshold = Conv.default_combine_threshold in
      let ctx = context ~threshold ~domains cap in
      let a = make_profile ~cap ~stride:1 ~mag seed in
      let b = make_profile ~cap ~stride:1 ~mag (seed + 1) in
      let label =
        Printf.sprintf "cap=%d domains=%d mag=%d" cap domains mag
      in
      let banded = Conv.combine ctx a b in
      let naive = Conv.combine_naive ctx a b in
      let spawned = Conv.combine_spawned ctx a b in
      check_same_lattice (label ^ " vs naive") naive banded;
      check_same_lattice (label ^ " vs spawned") naive spawned;
      Helpers.check_int
        (label ^ ": banded exactly when cap crosses the threshold")
        (if cap >= threshold then 1 else 0)
        (Conv.banded_total ctx);
      true)

(* ---------- solver-level bit identity with recycling ---------- *)

let check_solved_identical label reference candidate =
  check_bits (label ^ ": log G")
    (Conv.log_normalization reference)
    (Conv.log_normalization candidate);
  Helpers.check_int (label ^ ": rescales")
    (Conv.rescale_count reference)
    (Conv.rescale_count candidate);
  let mr = Conv.measures reference and mc = Conv.measures candidate in
  check_bits (label ^ ": busy ports") mr.Crossbar.Measures.busy_ports
    mc.Crossbar.Measures.busy_ports;
  Array.iteri
    (fun r (cr : Crossbar.Measures.per_class) ->
      let cc = mc.Crossbar.Measures.per_class.(r) in
      check_bits
        (Printf.sprintf "%s: class %d blocking" label r)
        cr.Crossbar.Measures.blocking cc.Crossbar.Measures.blocking;
      check_bits
        (Printf.sprintf "%s: class %d concurrency" label r)
        cr.Crossbar.Measures.concurrency cc.Crossbar.Measures.concurrency)
    mr.Crossbar.Measures.per_class

let nudge_model model step =
  (* Cycle which class moves so carries and multi-class deltas both
     happen across the chain.  The bernoulli class (index 2 in
     [Helpers.mixed_model]) only accepts alphas that keep the source
     count integral, so its nudges step in multiples of the per-source
     rate. *)
  let r = step mod Model.num_classes model in
  let alpha =
    if r = 2 then 0.08 *. float_of_int (1 + (step mod 4))
    else 0.1 +. (0.03 *. float_of_int step)
  in
  Model.map_class model r (fun traffic -> Traffic.with_alpha traffic alpha)

let test_update_recycle_bit_identity () =
  let model0 = Helpers.mixed_model ~inputs:6 ~outputs:5 in
  let chained = ref (Conv.solve model0) in
  let model = ref model0 in
  for step = 1 to 12 do
    model := nudge_model !model step;
    (* The chain recycles the tree it is about to drop; the fresh build
       is the oracle. *)
    chained := Conv.solve_delta ~recycle:true ~previous:!chained !model;
    check_solved_identical
      (Printf.sprintf "step %d" step)
      (Conv.solve !model) !chained
  done

let test_leave_one_out_stable_across_sweeps () =
  let model = Helpers.mixed_model ~inputs:6 ~outputs:6 in
  let tree = Conv.tree (Conv.solve model) in
  let snapshot =
    Array.map
      (fun l ->
        ( Lattice.scale l,
          Array.init (Lattice.capacity l + 1) (fun u -> Lattice.get l u) ))
      (Tree.leave_one_out tree)
  in
  (* The second sweep draws its intermediates from the first sweep's
     recycled nodes; the complements must not move a bit. *)
  let again = Tree.leave_one_out tree in
  Array.iteri
    (fun r (scale, values) ->
      Helpers.check_int
        (Printf.sprintf "complement %d scale" r)
        scale
        (Lattice.scale again.(r));
      Array.iteri
        (fun u expected ->
          check_bits
            (Printf.sprintf "complement %d entry %d" r u)
            expected
            (Lattice.get again.(r) u))
        values)
    snapshot

let test_arena_reuse_plateau () =
  let model0 = Helpers.mixed_model ~inputs:8 ~outputs:8 in
  let chained = ref (Conv.solve model0) in
  let arena = Conv.arena (Tree.context (Conv.tree !chained)) in
  let model = ref model0 in
  let warm = 3 in
  let created_after_warmup = ref 0 in
  for step = 1 to 12 do
    model := nudge_model !model step;
    chained := Conv.solve_delta ~recycle:true ~previous:!chained !model;
    if step = warm then created_after_warmup := Conv.Arena.created arena
  done;
  (* Recycled updates release as many profiles as they acquire, so once
     the free list is primed the solver creates nothing new: the whole
     steady-state loop runs in recycled Bigarray storage. *)
  Helpers.check_int "no profile created after warm-up" !created_after_warmup
    (Conv.Arena.created arena);
  Helpers.check_bool "warmed-up updates are served from the free list" true
    (Conv.Arena.reused arena > 0)

(* ---------- one-pass normalize ---------- *)

let reference_normalize l =
  while Lattice.max_abs l > Lattice.rescale_threshold do
    Lattice.rescale l
  done

let normalize_gen =
  let open QCheck2.Gen in
  let* cap = int_range 0 24 in
  let* mag = oneofl [ -10; 0; 240; 251; 280; 305 ] in
  let* seed = int_range 1 1_000_000 in
  return (cap, mag, seed)

let normalize_matches_reference =
  QCheck2.Test.make
    ~name:"one-pass normalize is bit-identical to repeated rescale"
    ~count:120 normalize_gen (fun (cap, mag, seed) ->
      let a = make_profile ~cap ~stride:1 ~mag seed in
      let b = make_profile ~cap ~stride:1 ~mag seed in
      reference_normalize a;
      Lattice.normalize b;
      check_same_lattice
        (Printf.sprintf "cap=%d mag=%d" cap mag)
        a b;
      true)

let test_normalize_non_finite () =
  let l = Lattice.create ~capacity:2 () in
  Lattice.set l 0 infinity;
  Lattice.set l 1 1.5;
  (* The reference loop would never terminate here; the one-pass version
     must return with the profile untouched. *)
  Lattice.normalize l;
  Helpers.check_int "scale untouched" 0 (Lattice.scale l);
  Helpers.check_bool "entry untouched" true (Lattice.get l 0 = infinity);
  check_bits "finite entry untouched" 1.5 (Lattice.get l 1)

(* ---------- knob validation ---------- *)

let test_knob_validation () =
  (* Every rejection names the offending knob and its value — a deploy
     log must say what was wrong, not just that something was. *)
  Helpers.check_invalid_contains "tile 0" ~substring:"tile=0" (fun () ->
      Conv.context_of ~tile:0 ~inputs:4 ~outputs:4 ());
  Helpers.check_invalid_contains "threshold 0"
    ~substring:"combine_threshold=0" (fun () ->
      Conv.context_of ~combine_threshold:0 ~inputs:4 ~outputs:4 ());
  Helpers.check_invalid_contains "band domains 0" ~substring:"band_domains=0"
    (fun () -> Conv.context_of ~band_domains:0 ~inputs:4 ~outputs:4 ());
  (* The environment override obeys the same contract as
     CROSSBAR_DOMAINS: a malformed deploy-time value fails loudly. *)
  Unix.putenv "CROSSBAR_COMBINE_THRESHOLD" "not-a-number";
  Helpers.check_invalid_contains "malformed env threshold"
    ~substring:"CROSSBAR_COMBINE_THRESHOLD=\"not-a-number\"" (fun () ->
      Conv.context_of ~inputs:4 ~outputs:4 ());
  Unix.putenv "CROSSBAR_COMBINE_THRESHOLD" "0";
  Helpers.check_invalid_contains "non-positive env threshold"
    ~substring:"CROSSBAR_COMBINE_THRESHOLD=0" (fun () ->
      Conv.context_of ~inputs:4 ~outputs:4 ());
  (* An explicit knob bypasses the environment entirely. *)
  ignore (Conv.context_of ~combine_threshold:7 ~inputs:4 ~outputs:4 ());
  Unix.putenv "CROSSBAR_COMBINE_THRESHOLD" " 5 ";
  let ctx = Conv.context_of ~band_domains:2 ~inputs:8 ~outputs:8 () in
  let a = make_profile ~cap:8 ~stride:1 ~mag:0 61 in
  let b = make_profile ~cap:8 ~stride:1 ~mag:0 62 in
  ignore (Conv.combine ctx a b);
  Helpers.check_int "trimmed env threshold bands the combine" 1
    (Conv.banded_total ctx);
  (* Restore the default so later suites in this binary see a clean
     environment (putenv cannot unset). *)
  Unix.putenv "CROSSBAR_COMBINE_THRESHOLD"
    (string_of_int Conv.default_combine_threshold)

let test_domains_knob_validation () =
  (* CROSSBAR_DOMAINS reports its offending value the same way; the
     override feeds both the engine pool and the banded kernel. *)
  let restore =
    match Sys.getenv_opt "CROSSBAR_DOMAINS" with Some v -> v | None -> "2"
  in
  Unix.putenv "CROSSBAR_DOMAINS" "three";
  Helpers.check_invalid_contains "malformed CROSSBAR_DOMAINS"
    ~substring:"CROSSBAR_DOMAINS=\"three\"" (fun () ->
      Crossbar.Domains.recommended ());
  Unix.putenv "CROSSBAR_DOMAINS" "-4";
  Helpers.check_invalid_contains "non-positive CROSSBAR_DOMAINS"
    ~substring:"CROSSBAR_DOMAINS=-4" (fun () ->
      Crossbar.Domains.recommended ());
  Unix.putenv "CROSSBAR_DOMAINS" restore

let () =
  Alcotest.run "kernel"
    [
      ( "tiled kernel",
        [
          Helpers.qcheck combine_matches_naive;
          Helpers.case "tile-boundary capacities" test_tile_boundaries;
          Helpers.case "degenerate tile sizes" test_degenerate_tiles;
        ] );
      ( "banded kernel",
        [
          Helpers.case "bit-identical across domain counts"
            test_banded_determinism;
          Helpers.case "strided operands" test_banded_strided;
          Helpers.case "more bands than outputs" test_more_bands_than_outputs;
          Helpers.qcheck banded_bit_identity_at_threshold;
        ] );
      ( "band pool",
        [
          Helpers.case "every band runs exactly once" test_pool_runs_every_band;
          Helpers.case "shutdown then transparent re-warm"
            test_pool_shutdown_and_rewarm;
          Helpers.case "worker exceptions propagate" test_pool_worker_exception;
          Helpers.case "caller band outranks worker failures"
            test_pool_caller_band_wins;
          Helpers.case "degenerate band counts" test_pool_degenerate;
        ] );
      ( "arena recycling",
        [
          Helpers.case "recycled delta chain matches fresh builds"
            test_update_recycle_bit_identity;
          Helpers.case "leave-one-out stable across sweeps"
            test_leave_one_out_stable_across_sweeps;
          Helpers.case "allocation plateau after warm-up"
            test_arena_reuse_plateau;
        ] );
      ( "normalize",
        [
          Helpers.qcheck normalize_matches_reference;
          Helpers.case "non-finite maxima left untouched"
            test_normalize_non_finite;
        ] );
      ( "knobs",
        [
          Helpers.case "validation and env override" test_knob_validation;
          Helpers.case "CROSSBAR_DOMAINS names its offending value"
            test_domains_knob_validation;
        ] );
    ]
