open Helpers
module Model = Crossbar.Model
module Revenue = Crossbar.Revenue
module Measures = Crossbar.Measures
module Solver = Crossbar.Solver

let two_class ~size ~rho1 ~rho2 ~beta2 =
  Model.square ~size
    ~classes:
      [
        poisson ~name:"one" rho1;
        Crossbar.Traffic.create ~name:"two" ~bandwidth:1 ~alpha:rho2
          ~beta:beta2 ~service_rate:1. ();
      ]

let weights = [| 1.0; 0.0001 |]

let test_total_is_weighted_concurrency () =
  let model = two_class ~size:8 ~rho1:0.3 ~rho2:0.2 ~beta2:0.1 in
  let m = Solver.solve model in
  check_close "W = sum w E" (Measures.revenue m ~weights)
    (Revenue.total model ~weights)

let test_reduced_model_preserves_per_pair () =
  let model = two_class ~size:8 ~rho1:0.3 ~rho2:0.2 ~beta2:0.1 in
  let reduced = Revenue.reduced_model model ~ports:1 in
  check_int "smaller" 7 (Model.inputs reduced);
  for r = 0 to 1 do
    check_close "per-pair alpha kept" (Model.alpha model r)
      (Model.alpha reduced r);
    check_close "per-pair beta kept" (Model.beta model r) (Model.beta reduced r)
  done;
  check_raises_invalid "reduce to nothing" (fun () ->
      ignore (Revenue.reduced_model model ~ports:8))

let test_shadow_cost_positive_here () =
  (* For these increasing-in-N workloads the marginal switch is worth
     something: W(N) > W(N-1). *)
  let model = two_class ~size:8 ~rho1:0.3 ~rho2:0.2 ~beta2:0.1 in
  let delta = Revenue.shadow_cost model ~weights ~class_index:0 in
  check_bool "positive shadow cost" true (delta > 0.);
  let w = Revenue.total model ~weights in
  let w' =
    Revenue.total (Revenue.reduced_model model ~ports:1) ~weights
  in
  check_close "delta = W - W'" (w -. w') delta

let test_closed_form_matches_numeric_poisson_only () =
  (* The paper's stated setting: R2 = 0. *)
  let model =
    Model.square ~size:6
      ~classes:[ poisson ~name:"one" 0.4; poisson ~name:"two" 0.7 ]
  in
  let weights = [| 1.0; 0.3 |] in
  List.iter
    (fun class_index ->
      check_close "closed = numeric"
        (Revenue.gradient_rho_numeric model ~weights ~class_index)
        (Revenue.gradient_rho model ~weights ~class_index)
        ~tol:1e-5)
    [ 0; 1 ]

let test_closed_form_matches_numeric_mixed () =
  (* The closed form continues to hold for the Poisson class even with a
     bursty class present (Table 2 uses it this way). *)
  let model = two_class ~size:8 ~rho1:0.3 ~rho2:0.2 ~beta2:0.1 in
  check_close "closed = numeric (mixed)"
    (Revenue.gradient_rho_numeric model ~weights ~class_index:0)
    (Revenue.gradient_rho model ~weights ~class_index:0)
    ~tol:1e-5

let test_closed_form_multirate () =
  (* And for a_r = 2 with the P(N1,a)P(N2,a) prefactor. *)
  let model =
    Model.square ~size:6
      ~classes:[ poisson ~name:"one" 0.2; poisson ~name:"wide" ~bandwidth:2 0.4 ]
  in
  let weights = [| 1.0; 0.7 |] in
  check_close "closed = numeric (a=2)"
    (Revenue.gradient_rho_numeric model ~weights ~class_index:1)
    (Revenue.gradient_rho model ~weights ~class_index:1)
    ~tol:1e-5

let test_gradient_class_kind_guards () =
  let model = two_class ~size:4 ~rho1:0.3 ~rho2:0.2 ~beta2:0.1 in
  check_raises_invalid "closed form needs poisson" (fun () ->
      ignore (Revenue.gradient_rho model ~weights ~class_index:1));
  check_raises_invalid "beta gradient needs bursty" (fun () ->
      ignore (Revenue.gradient_beta_numeric model ~weights ~class_index:0))

let test_beta_gradient_sign () =
  (* Increasing burstiness of the cheap class displaces the valuable
     class: revenue falls (Table 2's conclusion) at meaningful sizes. *)
  let model = two_class ~size:32 ~rho1:0.0012 ~rho2:0.0012 ~beta2:0.0012 in
  let g = Revenue.gradient_beta_numeric model ~weights ~class_index:1 in
  check_bool "negative gradient" true (g < 0.)

let test_economic_interpretation () =
  (* When w_r exceeds the shadow cost the gradient is positive, and vice
     versa: engineered by giving the class a huge / tiny weight. *)
  let model =
    Model.square ~size:4
      ~classes:[ poisson ~name:"one" 0.5; poisson ~name:"two" 0.5 ]
  in
  let generous = [| 10.0; 1.0 |] in
  check_bool "worth admitting" true
    (Revenue.gradient_rho model ~weights:generous ~class_index:0 > 0.);
  (* Class 1 nearly worthless but it displaces valuable class 0. *)
  let stingy = [| 10.0; 1e-6 |] in
  let model_loaded =
    Model.square ~size:4
      ~classes:[ poisson ~name:"one" 3.0; poisson ~name:"two" 3.0 ]
  in
  check_bool "not worth admitting" true
    (Revenue.gradient_rho model_loaded ~weights:stingy ~class_index:1 < 0.)

let test_gradient_via_all_algorithms () =
  let model = two_class ~size:8 ~rho1:0.3 ~rho2:0.2 ~beta2:0.1 in
  let g_conv =
    Revenue.gradient_rho ~algorithm:Solver.Convolution model ~weights
      ~class_index:0
  in
  let g_mva =
    Revenue.gradient_rho ~algorithm:Solver.Mean_value model ~weights
      ~class_index:0
  in
  check_close "algorithms agree on gradient" g_conv g_mva ~tol:1e-9

let () =
  Alcotest.run "revenue"
    [
      ( "revenue",
        [
          case "total" test_total_is_weighted_concurrency;
          case "reduced model" test_reduced_model_preserves_per_pair;
          case "shadow cost" test_shadow_cost_positive_here;
          case "closed form (R2=0)" test_closed_form_matches_numeric_poisson_only;
          case "closed form (mixed)" test_closed_form_matches_numeric_mixed;
          case "closed form (a=2)" test_closed_form_multirate;
          case "kind guards" test_gradient_class_kind_guards;
          case "beta gradient sign" test_beta_gradient_sign;
          case "economic interpretation" test_economic_interpretation;
          case "algorithm independence" test_gradient_via_all_algorithms;
        ] );
    ]
