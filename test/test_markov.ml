open Helpers
module State_space = Crossbar_markov.State_space
module Ctmc = Crossbar_markov.Ctmc

(* ---------- State spaces ---------- *)

let test_space_single_class () =
  let space = State_space.create ~weights:[| 1 |] ~capacity:5 in
  check_int "size" 6 (State_space.size space);
  check_int "dimension" 1 (State_space.dimension space);
  check_int "capacity" 5 (State_space.capacity space);
  for k = 0 to 5 do
    let i = State_space.index space [| k |] in
    check_int "roundtrip" k (State_space.state space i).(0);
    check_int "load" k (State_space.load space i)
  done

let test_space_weighted () =
  (* weights (1,2), capacity 4: k1 + 2 k2 <= 4. *)
  let space = State_space.create ~weights:[| 1; 2 |] ~capacity:4 in
  (* k2=0: k1 in 0..4 (5); k2=1: k1 in 0..2 (3); k2=2: k1=0 (1). *)
  check_int "size" 9 (State_space.size space);
  check_bool "mem" true (State_space.mem space [| 2; 1 |]);
  check_bool "not mem" false (State_space.mem space [| 3; 1 |]);
  check_int "load" 4 (State_space.load space (State_space.index space [| 2; 1 |]))

let test_space_roundtrip_all () =
  let space = State_space.create ~weights:[| 1; 2; 3 |] ~capacity:7 in
  State_space.iter space (fun i k ->
      check_int "index(state(i)) = i" i (State_space.index space (Array.copy k)));
  let counted = State_space.fold space ~init:0 ~f:(fun acc _ _ -> acc + 1) in
  check_int "fold count" (State_space.size space) counted

let test_space_errors () =
  check_raises_invalid "zero weight" (fun () ->
      ignore (State_space.create ~weights:[| 0 |] ~capacity:3));
  check_raises_invalid "negative capacity" (fun () ->
      ignore (State_space.create ~weights:[| 1 |] ~capacity:(-1)));
  let space = State_space.create ~weights:[| 1 |] ~capacity:2 in
  check_raises_invalid "state out of range" (fun () ->
      ignore (State_space.state space 99));
  (match State_space.index space [| 7 |] with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "index of absent state should raise Not_found")

let test_space_capacity_zero () =
  let space = State_space.create ~weights:[| 1; 1 |] ~capacity:0 in
  check_int "only origin" 1 (State_space.size space)

(* ---------- CTMC solvers ---------- *)

(* M/M/1/K: birth lambda, death mu; pi(k) ∝ (lambda/mu)^k. *)
let mm1k ~lambda ~mu ~k =
  Ctmc.build ~states:(k + 1) ~f:(fun i ->
      let up = if i < k then [ (i + 1, lambda) ] else [] in
      let down = if i > 0 then [ (i - 1, float_of_int 1 *. mu) ] else [] in
      up @ down)

let mm1k_exact ~lambda ~mu ~k =
  let rho = lambda /. mu in
  let weights = Array.init (k + 1) (fun i -> Float.pow rho (float_of_int i)) in
  let total = Array.fold_left ( +. ) 0. weights in
  Array.map (fun w -> w /. total) weights

let check_distribution ?(tol = 1e-10) label expected actual =
  Array.iteri
    (fun i p -> check_abs (Printf.sprintf "%s pi(%d)" label i) p actual.(i) ~tol)
    expected

let test_gth_mm1k () =
  let chain = mm1k ~lambda:0.7 ~mu:1.3 ~k:10 in
  check_distribution "gth" (mm1k_exact ~lambda:0.7 ~mu:1.3 ~k:10)
    (Ctmc.solve_gth chain)

let test_power_mm1k () =
  let chain = mm1k ~lambda:0.7 ~mu:1.3 ~k:10 in
  check_distribution "power" ~tol:1e-9
    (mm1k_exact ~lambda:0.7 ~mu:1.3 ~k:10)
    (Ctmc.solve_power chain)

let test_gauss_seidel_mm1k () =
  let chain = mm1k ~lambda:0.7 ~mu:1.3 ~k:10 in
  check_distribution "gauss-seidel" ~tol:1e-9
    (mm1k_exact ~lambda:0.7 ~mu:1.3 ~k:10)
    (Ctmc.solve_gauss_seidel chain)

let test_solvers_agree_random () =
  (* A fixed pseudo-random strongly-connected chain. *)
  let n = 12 in
  let rate i j = 0.1 +. float_of_int (((i * 7) + (j * 13)) mod 17) /. 5. in
  let chain =
    Ctmc.build ~states:n ~f:(fun i ->
        [ ((i + 1) mod n, rate i ((i + 1) mod n)); ((i + 5) mod n, rate i 5) ])
  in
  let gth = Ctmc.solve_gth chain in
  let power = Ctmc.solve_power chain in
  let gs = Ctmc.solve_gauss_seidel chain in
  Array.iteri (fun i p -> check_abs "gth=power" p power.(i) ~tol:1e-9) gth;
  Array.iteri (fun i p -> check_abs "gth=gs" p gs.(i) ~tol:1e-9) gth

let test_two_state_exact () =
  let chain = Ctmc.create ~states:2 ~transitions:[ (0, 1, 2.); (1, 0, 3.) ] in
  let pi = Ctmc.solve_gth chain in
  check_close "pi0" 0.6 pi.(0);
  check_close "pi1" 0.4 pi.(1)

let test_duplicate_transitions_merge () =
  let a =
    Ctmc.create ~states:2 ~transitions:[ (0, 1, 1.); (0, 1, 1.); (1, 0, 3.) ]
  in
  let b = Ctmc.create ~states:2 ~transitions:[ (0, 1, 2.); (1, 0, 3.) ] in
  let pa = Ctmc.solve_gth a and pb = Ctmc.solve_gth b in
  check_close "merged rates" pb.(0) pa.(0);
  check_close "exit rate" 2. (Ctmc.exit_rate a 0)

let test_reducible_fails () =
  let chain = Ctmc.create ~states:3 ~transitions:[ (0, 1, 1.); (1, 0, 1.) ] in
  check_raises_failure "gth reducible" (fun () -> ignore (Ctmc.solve_gth chain))

let test_detailed_balance () =
  (* Birth-death chains are reversible... *)
  let chain = mm1k ~lambda:0.7 ~mu:1.3 ~k:6 in
  let pi = Ctmc.solve_gth chain in
  check_bool "birth-death reversible" true
    (Ctmc.detailed_balance_violation chain ~pi < 1e-12);
  (* ... a directed 3-cycle is not. *)
  let cycle =
    Ctmc.create ~states:3
      ~transitions:[ (0, 1, 1.); (1, 2, 1.); (2, 0, 1.); (1, 0, 0.2);
                     (2, 1, 0.2); (0, 2, 0.2) ]
  in
  let pi = Ctmc.solve_gth cycle in
  check_bool "cycle not reversible" true
    (Ctmc.detailed_balance_violation cycle ~pi > 0.1)

let test_ctmc_validation () =
  check_raises_invalid "self loop" (fun () ->
      ignore (Ctmc.create ~states:2 ~transitions:[ (0, 0, 1.) ]));
  check_raises_invalid "zero rate" (fun () ->
      ignore (Ctmc.create ~states:2 ~transitions:[ (0, 1, 0.) ]));
  check_raises_invalid "out of range" (fun () ->
      ignore (Ctmc.create ~states:2 ~transitions:[ (0, 5, 1.) ]));
  check_raises_invalid "no states" (fun () ->
      ignore (Ctmc.create ~states:0 ~transitions:[]))

let test_single_state () =
  let chain = Ctmc.create ~states:1 ~transitions:[] in
  let pi = Ctmc.solve_gth chain in
  check_close "trivial" 1. pi.(0)

(* ---------- transient analysis ---------- *)

module Transient = Crossbar_markov.Transient

let test_transient_two_state_exact () =
  (* Two-state chain 0 -(a)-> 1, 1 -(b)-> 0 from state 0:
     pi_0(t) = b/(a+b) + a/(a+b) e^(-(a+b)t). *)
  let a = 2. and b = 3. in
  let chain = Ctmc.create ~states:2 ~transitions:[ (0, 1, a); (1, 0, b) ] in
  List.iter
    (fun time ->
      let pi = Transient.distribution chain ~initial:[| 1.; 0. |] ~time in
      let expected =
        (b /. (a +. b)) +. (a /. (a +. b) *. exp (-.(a +. b) *. time))
      in
      check_abs (Printf.sprintf "pi_0(%g)" time) expected pi.(0) ~tol:1e-10;
      check_abs "mass" 1. (pi.(0) +. pi.(1)) ~tol:1e-12)
    [ 0.; 0.1; 0.5; 1.; 5. ]

let test_transient_converges_to_stationary () =
  let chain = mm1k ~lambda:0.7 ~mu:1.3 ~k:6 in
  let initial = Array.make 7 0. in
  initial.(6) <- 1.;
  let stationary = Ctmc.solve_gth chain in
  let late = Transient.distribution chain ~initial ~time:200. in
  Array.iteri
    (fun i p -> check_abs "t -> infinity" p late.(i) ~tol:1e-9)
    stationary;
  (* ... monotone approach in total variation at a few checkpoints. *)
  let tv t =
    let pi = Transient.distribution chain ~initial ~time:t in
    let d = ref 0. in
    Array.iteri (fun i p -> d := !d +. Float.abs (p -. stationary.(i))) pi;
    !d
  in
  check_bool "closer at 5 than 1" true (tv 5. < tv 1.);
  check_bool "closer at 20 than 5" true (tv 20. < tv 5.)

let test_transient_reward_and_guards () =
  let chain = Ctmc.create ~states:2 ~transitions:[ (0, 1, 1.); (1, 0, 1.) ] in
  let reward = [| 1.; 0. |] in
  let at_zero =
    Transient.expected_reward chain ~initial:[| 1.; 0. |] ~time:0. ~reward
  in
  check_close "reward at 0" 1. at_zero;
  let late =
    Transient.expected_reward chain ~initial:[| 1.; 0. |] ~time:50. ~reward
  in
  check_abs "reward at infinity" 0.5 late ~tol:1e-9;
  check_raises_invalid "negative time" (fun () ->
      ignore (Transient.distribution chain ~initial:[| 1.; 0. |] ~time:(-1.)));
  check_raises_invalid "bad initial" (fun () ->
      ignore (Transient.distribution chain ~initial:[| 0.7; 0.7 |] ~time:1.))

let test_time_to_stationarity () =
  let chain = Ctmc.create ~states:2 ~transitions:[ (0, 1, 5.); (1, 0, 5.) ] in
  let t =
    Transient.time_to_stationarity chain ~initial:[| 1.; 0. |] ~distance:1e-3
  in
  (* Mixing rate 10: tv(t) = 0.5 e^(-10 t) < 1e-3 around t = 0.62; the
     doubling search returns the first power-of-two multiple past it. *)
  check_bool "bracketed" true (t > 0.3 && t < 2.6);
  check_close "already stationary" 0.
    (Transient.time_to_stationarity chain ~initial:[| 0.5; 0.5 |])

let space_props =
  [
    QCheck2.Test.make ~name:"state space size matches enumeration bound"
      ~count:100
      QCheck2.Gen.(pair (int_range 1 3) (int_range 0 10))
      (fun (weight, capacity) ->
        let space = State_space.create ~weights:[| weight |] ~capacity in
        State_space.size space = (capacity / weight) + 1);
    QCheck2.Test.make ~name:"loads never exceed capacity" ~count:50
      QCheck2.Gen.(int_range 0 12)
      (fun capacity ->
        let space = State_space.create ~weights:[| 1; 2 |] ~capacity in
        State_space.fold space ~init:true ~f:(fun acc i _ ->
            acc && State_space.load space i <= capacity));
  ]

let () =
  Alcotest.run "markov"
    [
      ( "state-space",
        [
          case "single class" test_space_single_class;
          case "weighted" test_space_weighted;
          case "roundtrip all" test_space_roundtrip_all;
          case "errors" test_space_errors;
          case "capacity zero" test_space_capacity_zero;
        ]
        @ List.map qcheck space_props );
      ( "ctmc",
        [
          case "gth mm1k" test_gth_mm1k;
          case "power mm1k" test_power_mm1k;
          case "gauss-seidel mm1k" test_gauss_seidel_mm1k;
          case "solvers agree" test_solvers_agree_random;
          case "two-state exact" test_two_state_exact;
          case "duplicate transitions merge" test_duplicate_transitions_merge;
          case "reducible fails" test_reducible_fails;
          case "detailed balance" test_detailed_balance;
          case "validation" test_ctmc_validation;
          case "single state" test_single_state;
        ] );
      ( "transient",
        [
          case "two-state exact" test_transient_two_state_exact;
          case "converges to stationary" test_transient_converges_to_stationary;
          case "rewards and guards" test_transient_reward_and_guards;
          case "time to stationarity" test_time_to_stationarity;
        ] );
    ]
