#!/usr/bin/env bash
# Doc-coverage gate over the public interfaces named in lint.json.
#
# A `val` in a .mli counts as documented when a (** ... *) block sits
# directly above its signature or anywhere between the signature and the
# next top-level item — the trailing-doc idiom used across this repo.
# The threshold and the directories measured come from lint.json's
# "doc_coverage" object, so the linter config stays the single source of
# truth; pass an alternative config path as $1.
#
# No odoc required: the check is a line-level scan, which keeps it
# runnable in the bare dune+ocamlc environment and in CI alike.
set -euo pipefail

cd "$(dirname "$0")/.."

config=${1:-lint.json}
[ -f "$config" ] || { echo "doc-coverage: $config not found" >&2; exit 2; }

threshold=$(sed -n 's/.*"doc_coverage":{"threshold":\([0-9.][0-9.]*\).*/\1/p' "$config")
paths=$(grep -o '"doc_coverage":{[^}]*}' "$config" \
  | grep -o '"paths":\[[^]]*\]' \
  | sed 's/"paths"://' | tr -d '"[]' | tr ',' ' ')
[ -n "$threshold" ] || { echo "doc-coverage: no threshold in $config" >&2; exit 2; }
[ -n "$paths" ] || { echo "doc-coverage: no paths in $config" >&2; exit 2; }

# Per-file val/doc counts.  States: [pending] a doc block immediately
# above, [open] inside a val awaiting a trailing doc before the next
# top-level item.
count_mli() {
  awk '
    function flush() { if (open) { total++; if (ok) doc++ }; open = 0; ok = 0 }
    /^\(\*\*/     { if (open) ok = 1; else pending = 1; next }
    /^val /       { flush(); open = 1; ok = pending; pending = 0;
                    if (index($0, "(**") > 0) ok = 1; next }
    /^(type|module|exception|include|open|class|external)[ \t]/ {
                    flush(); pending = 0; next }
    /^\(\*[^*]/   { flush(); pending = 0; next }
    { if (open && index($0, "(**") > 0) ok = 1 }
    END { flush(); printf "%d %d\n", total, doc }
  ' "$1"
}

total=0
documented=0
status=0
for dir in $paths; do
  [ -d "$dir" ] || { echo "doc-coverage: skipping missing dir $dir" >&2; continue; }
  for mli in $(find "$dir" -name '*.mli' | sort); do
    set -- $(count_mli "$mli")
    t=$1 d=$2
    total=$((total + t))
    documented=$((documented + d))
    if [ "$t" -gt 0 ]; then
      printf '  %-44s %3d/%-3d\n' "$mli" "$d" "$t"
    fi
  done
done

if [ "$total" -eq 0 ]; then
  echo "doc-coverage: no vals found under: $paths" >&2
  exit 2
fi

coverage=$(awk -v d="$documented" -v t="$total" 'BEGIN { printf "%.4f", d / t }')
ok=$(awk -v c="$coverage" -v th="$threshold" 'BEGIN { print (c + 1e-9 >= th) ? 1 : 0 }')
printf 'doc-coverage: %d/%d vals documented (%.1f%%), threshold %.1f%%\n' \
  "$documented" "$total" \
  "$(awk -v c="$coverage" 'BEGIN { print c * 100 }')" \
  "$(awk -v th="$threshold" 'BEGIN { print th * 100 }')"
if [ "$ok" -ne 1 ]; then
  echo "doc-coverage: below threshold — document the undocumented vals or adjust lint.json" >&2
  status=1
fi
exit "$status"
