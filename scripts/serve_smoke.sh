#!/usr/bin/env bash
# Smoke-test the crossbar_serve daemon: one query of every kind over
# stdin/stdout, then (when python3 is available) the same mixed stream
# through the Unix-domain socket.  Any ok:false response, missing
# response, or hung daemon fails the script.
#
# Usage: scripts/serve_smoke.sh [path-to-crossbar_serve.exe] [output.jsonl]
#
# The output file defaults to a temp path removed on exit, so a smoke
# run never leaves artifacts in the working tree (CI asserts this).
set -euo pipefail

SERVE="${1:-_build/default/bin/crossbar_serve.exe}"
if [ $# -ge 2 ]; then
  OUT="$2"
  CLEAN_OUT=""
else
  OUT="$(mktemp "${TMPDIR:-/tmp}/crossbar-serve-smoke-XXXXXX.jsonl")"
  CLEAN_OUT="$OUT"
fi
DAEMON=""
SOCK=""
cleanup() {
  if [ -n "$DAEMON" ]; then kill "$DAEMON" 2>/dev/null || true; fi
  if [ -n "$SOCK" ]; then rm -f "$SOCK"; fi
  if [ -n "$CLEAN_OUT" ]; then rm -f "$CLEAN_OUT"; fi
}
trap cleanup EXIT

if [ ! -x "$SERVE" ]; then
  echo "FATAL: $SERVE not built (run: dune build bin)" >&2
  exit 1
fi

MODEL='{"inputs":8,"outputs":8,"classes":[{"name":"voice","bandwidth":1,"alpha":0.5,"mu":1.0},{"name":"video","bandwidth":2,"alpha":0.3,"beta":0.1,"mu":0.5}]}'

# ---- round 1: line protocol over stdin/stdout ----
printf '%s\n' \
  "{\"id\":1,\"op\":\"solve\",\"tree\":\"smoke\",\"model\":$MODEL}" \
  '{"id":2,"op":"blocking","tree":"smoke"}' \
  '{"id":3,"op":"delta","tree":"smoke","changes":[{"class":0,"alpha":0.6}]}' \
  '{"id":4,"op":"shadow_costs","tree":"smoke","weights":[1.0,0.2]}' \
  '{"id":5,"op":"admit","tree":"smoke","class":1,"weights":[1.0,0.2]}' \
  '{"id":6,"op":"stats"}' \
  '{"id":7,"op":"shutdown"}' \
  | timeout 60 "$SERVE" --domains 2 > "$OUT"

lines=$(wc -l < "$OUT")
if [ "$lines" -ne 7 ]; then
  echo "FATAL: expected 7 responses over stdin, got $lines" >&2
  cat "$OUT" >&2
  exit 1
fi
if grep -q '"ok":false' "$OUT"; then
  echo "FATAL: a smoke query failed:" >&2
  grep '"ok":false' "$OUT" >&2
  exit 1
fi
echo "stdin round: 7/7 ok"

# ---- round 2: same stream through the Unix-domain socket ----
if ! command -v python3 >/dev/null 2>&1; then
  echo "python3 not found; skipping the socket round"
  exit 0
fi

SOCK="$(mktemp -u "${TMPDIR:-/tmp}/crossbar-serve-XXXXXX.sock")"
timeout 60 "$SERVE" --socket "$SOCK" --domains 2 >/dev/null 2>&1 < /dev/null &
DAEMON=$!

for _ in $(seq 1 50); do
  [ -S "$SOCK" ] && break
  sleep 0.1
done
if [ ! -S "$SOCK" ]; then
  echo "FATAL: daemon never bound $SOCK" >&2
  exit 1
fi

python3 - "$SOCK" <<'PYEOF'
import json, socket, sys

model = {
    "inputs": 8, "outputs": 8,
    "classes": [
        {"name": "voice", "bandwidth": 1, "alpha": 0.5, "mu": 1.0},
        {"name": "video", "bandwidth": 2, "alpha": 0.3, "beta": 0.1, "mu": 0.5},
    ],
}
requests = [
    {"id": 1, "op": "solve", "tree": "smoke", "model": model},
    {"id": 2, "op": "blocking", "tree": "smoke"},
    {"id": 3, "op": "delta", "tree": "smoke",
     "changes": [{"class": 0, "alpha": 0.6}]},
    {"id": 4, "op": "shadow_costs", "tree": "smoke", "weights": [1.0, 0.2]},
    {"id": 5, "op": "admit", "tree": "smoke", "class": 1,
     "weights": [1.0, 0.2]},
    {"id": 6, "op": "stats"},
    {"id": 7, "op": "shutdown"},
]

sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
sock.settimeout(30)
sock.connect(sys.argv[1])
sock.sendall("".join(json.dumps(r) + "\n" for r in requests).encode())

data = b""
while data.count(b"\n") < len(requests):
    chunk = sock.recv(65536)
    if not chunk:
        break
    data += chunk

lines = [line for line in data.decode().split("\n") if line.strip()]
if len(lines) != len(requests):
    sys.exit(f"FATAL: expected {len(requests)} socket responses, got {len(lines)}")
for line in lines:
    response = json.loads(line)
    if not response.get("ok"):
        sys.exit(f"FATAL: socket query failed: {response}")
print(f"socket round: {len(lines)}/{len(requests)} ok")
PYEOF

status=0
wait "$DAEMON" || status=$?
DAEMON=""
if [ "$status" -ne 0 ]; then
  echo "FATAL: daemon exited with status $status after shutdown" >&2
  exit 1
fi
if [ -e "$SOCK" ]; then
  echo "FATAL: daemon left its socket file behind" >&2
  exit 1
fi
echo "serve smoke: all rounds ok"
