module Measures = Crossbar.Measures
module Model = Crossbar.Model
module Sweep = Crossbar_engine.Sweep
module Cache = Crossbar_engine.Cache

let blocking_of_outcome outcome =
  (Sweep.measures outcome).Measures.per_class.(0).Measures.blocking

let print_figure ?(sizes = Paper.sizes) ?domains ?cache ?telemetry
    ?incremental ppf ~name series =
  (* One engine sweep over the whole (size x series) grid, in row-major
     print order; results come back in the same order regardless of how
     many domains solved them. *)
  let points =
    List.concat_map
      (fun n ->
        List.map
          (fun s ->
            Sweep.point
              ~label:(Printf.sprintf "%s N=%d" s.Paper.label n)
              (s.Paper.model_of_size n))
          series)
      sizes
  in
  let outcomes = Sweep.run ?domains ?cache ?telemetry ?incremental points in
  let width = List.length series in
  Format.fprintf ppf "# %s: blocking probability vs square switch size@." name;
  Format.fprintf ppf "N";
  List.iter (fun s -> Format.fprintf ppf "\t%s" s.Paper.label) series;
  Format.fprintf ppf "@.";
  List.iteri
    (fun row n ->
      Format.fprintf ppf "%d" n;
      List.iteri
        (fun col _ ->
          Format.fprintf ppf "\t%.8g"
            (blocking_of_outcome outcomes.((row * width) + col)))
        series;
      Format.fprintf ppf "@.")
    sizes

let print_table1 ppf =
  Format.fprintf ppf
    "# Table 1: input loads for the multi-rate comparison (as printed)@.";
  Format.fprintf ppf "N1\trho~1 (a=1)\trho~2 (a=2)@.";
  List.iter
    (fun n ->
      let rho1, rho2 = Paper.table1_loads n in
      Format.fprintf ppf "%d\t%.6g\t%.6g@." n rho1 rho2)
    Paper.table1_sizes

let table2_measured ?cache set n =
  let model = Paper.table2_model set n in
  let weights = set.Paper.weights in
  let measures =
    match cache with
    | Some cache -> (fst (Cache.find_or_solve cache model)).Crossbar.Solver.measures
    | None -> Crossbar.Solver.solve model
  in
  let revenue = Measures.revenue measures ~weights in
  let blocking = measures.Measures.per_class.(0).Measures.blocking in
  let gradient_rho1 =
    Crossbar.Revenue.gradient_rho model ~weights ~class_index:0
  in
  let gradient_beta2 =
    if n < 2 then nan
    else Crossbar.Revenue.gradient_beta_numeric model ~weights ~class_index:1
  in
  (gradient_rho1, gradient_beta2, blocking, revenue)

let print_table2 ?domains ?cache ?telemetry ?incremental ppf =
  (* Warm the cache for every (set, size) base model in parallel; the
     sequential printing loop below then hits the cache for each row
     (the revenue gradients re-solve perturbed models internally and are
     left on the direct path). *)
  let cache = match cache with Some c -> c | None -> Cache.create () in
  let points =
    List.concat_map
      (fun set ->
        List.map
          (fun n ->
            Sweep.point
              ~label:(Printf.sprintf "table2 %s N=%d" set.Paper.set_label n)
              (Paper.table2_model set n))
          Paper.table2_sizes)
      Paper.table2_sets
  in
  ignore
    (Sweep.run ?domains ~cache ?telemetry ?incremental points
      : Sweep.outcome array);
  Format.fprintf ppf
    "# Table 2: revenue analysis — measured (exact model) | paper (printed)@.";
  List.iter
    (fun set ->
      Format.fprintf ppf "## %s@." set.Paper.set_label;
      Format.fprintf ppf
        "N\tdW/drho1\tdW/d(b2/mu2)\tB(N)\tW(N)\t|\tdW/drho1\tdW/d(b2/mu2)\tB(N)\tW(N)@.";
      List.iter
        (fun (row : Printed.table2_row) ->
          let n = row.Printed.size in
          let g1, g2, b, w = table2_measured ~cache set n in
          Format.fprintf ppf
            "%d\t%.6g\t%.6g\t%.6g\t%.6g\t|\t%.6g\t%s\t%.6g\t%.6g@." n g1 g2 b w
            row.Printed.gradient_rho1
            (match row.Printed.gradient_beta2 with
            | None -> "-"
            | Some g -> Printf.sprintf "%.6g" g)
            row.Printed.blocking row.Printed.revenue)
        (Printed.table2_rows ~set_label:set.Paper.set_label))
    Paper.table2_sets

let print_forensics ppf =
  Format.fprintf ppf
    "# Table 2 forensics: printed vs exact vs shifted-beta variant (N = 1, 2)@.";
  Format.fprintf ppf "set\tN\tprinted B\texact B\tshifted B@.";
  List.iter
    (fun set ->
      List.iter
        (fun (row : Printed.table2_row) ->
          if row.Printed.size <= 2 then begin
            let n = row.Printed.size in
            let _, _, exact, _ = table2_measured set n in
            let specs =
              Scenarios.shifted_beta_specs ~rho1:set.Paper.rho1
                ~rho2:set.Paper.rho2 ~beta2:set.Paper.beta2 ~size:n
            in
            let g_full =
              Crossbar.General.log_g ~inputs:n ~outputs:n ~classes:specs
            in
            let g_reduced =
              if n = 1 then 0.
              else
                Crossbar.General.log_g ~inputs:(n - 1) ~outputs:(n - 1)
                  ~classes:specs
            in
            let shifted = 1. -. exp (g_reduced -. g_full) in
            Format.fprintf ppf "%s\t%d\t%.6g\t%.8g\t%.8g@." set.Paper.set_label
              n row.Printed.blocking exact shifted
          end)
        (Printed.table2_rows ~set_label:set.Paper.set_label))
    Paper.table2_sets;
  Format.fprintf ppf
    "(shifted variant reproduces every printed N<=2 digit; the exact model@.";
  Format.fprintf ppf
    " does not and distinguishes sets 1 and 2 at N=2 — see EXPERIMENTS.md)@."

let print_simulation_check ?(horizon = 2e4) ?(seed = 42) ppf =
  let model =
    Model.square ~size:8
      ~classes:
        [
          Crossbar.Traffic.poisson ~name:"poisson" ~bandwidth:1 ~rate:0.4
            ~service_rate:1.0 ();
          Crossbar.Traffic.pascal ~name:"pascal" ~bandwidth:2 ~alpha:0.1
            ~beta:0.05 ~service_rate:1.0 ();
        ]
  in
  let analytic = Crossbar.Solver.solve model in
  let result =
    Crossbar_sim.Simulator.run
      {
        (Crossbar_sim.Simulator.default_config model) with
        horizon;
        warmup = horizon /. 20.;
        seed;
      }
  in
  Format.fprintf ppf
    "# Simulation vs analysis (8x8 mixed workload, horizon %.3g, seed %d)@."
    horizon seed;
  Format.fprintf ppf
    "class\tanalytic blocking\tsim time congestion (±)\tanalytic E\tsim E (±)@.";
  Array.iteri
    (fun r (c : Measures.per_class) ->
      let sim = result.Crossbar_sim.Simulator.per_class.(r) in
      Format.fprintf ppf "%s\t%.6g\t%.6g (%.2g)\t%.6g\t%.6g (%.2g)@."
        c.Measures.name c.Measures.blocking
        sim.Crossbar_sim.Simulator.time_congestion.point
        sim.Crossbar_sim.Simulator.time_congestion.halfwidth
        c.Measures.concurrency sim.Crossbar_sim.Simulator.concurrency.point
        sim.Crossbar_sim.Simulator.concurrency.halfwidth)
    analytic.Measures.per_class

let print_baselines ppf =
  Format.fprintf ppf
    "# Baselines: saturation throughput per port and crosspoint cost@.";
  Format.fprintf ppf "N\tslotted crossbar\tbanyan(2x2)\tbanyan crosspoints\tN^2@.";
  List.iter
    (fun n ->
      Format.fprintf ppf "%d\t%.4f\t%.4f\t%d\t%d@." n
        (Crossbar_baselines.Sync_crossbar.saturation_throughput ~size:n)
        (Crossbar_baselines.Multistage.throughput ~switch_size:n ~fanout:2
           ~request_probability:1.)
        (Crossbar_baselines.Multistage.crosspoint_complexity ~switch_size:n
           ~fanout:2)
        (n * n))
    [ 8; 16; 64; 256 ]

let print_multistage ?(horizon = 2e4) ppf =
  Format.fprintf ppf
    "# Multi-stage extension: end-to-end blocking, simulation vs \
     approximations@.";
  Format.fprintf ppf
    "network\toffered\tsimulated (±)\tswitch-markov\tlink-independence@.";
  List.iter
    (fun (ports, fanout, offered) ->
      let topology = Crossbar_network.Topology.create ~ports ~fanout in
      let sim =
        Crossbar_network.Sim.run
          {
            (Crossbar_network.Sim.default_config topology ~offered) with
            horizon;
          }
      in
      let markov =
        Crossbar_network.Analysis.switch_markov topology ~offered
          ~service_rate:1.
      in
      let link =
        Crossbar_network.Analysis.link_fixed_point topology ~offered
          ~service_rate:1.
      in
      Format.fprintf ppf "%dx%d (s=%d)\t%.3g\t%.4f (%.4f)\t%.4f\t%.4f@." ports
        fanout
        (Crossbar_network.Topology.stages topology)
        offered sim.Crossbar_network.Sim.blocking
        sim.Crossbar_network.Sim.blocking_halfwidth
        markov.Crossbar_network.Analysis.end_to_end_blocking
        link.Crossbar_network.Analysis.end_to_end_blocking)
    [ (16, 4, 0.2); (64, 4, 0.2); (64, 2, 0.2) ]

let print_hotspot ?(horizon = 2e4) ppf =
  Format.fprintf ppf
    "# Hot-spot extension: exact non-uniform blocking vs simulation \
     (32x32, hot output 8x)@.";
  Format.fprintf ppf "hotness\thot B (exact)\tcold B (exact)\toverall exact\toverall sim (±)@.";
  let inputs = 32 and outputs = 32 and rate = 0.01 in
  List.iter
    (fun hot_multiplier ->
      let exact =
        Crossbar_hotspot.Exact.hotspot ~inputs ~outputs ~rate ~hot_multiplier
          ~service_rate:1.
      in
      let weights = Array.make outputs 1. in
      weights.(0) <- hot_multiplier;
      let sim =
        Crossbar_hotspot.Sim.run
          {
            (Crossbar_hotspot.Sim.default_config ~inputs ~rate ~weights) with
            horizon;
          }
      in
      Format.fprintf ppf "%g\t%.4f\t%.4f\t%.4f\t%.4f (%.4f)@." hot_multiplier
        (Crossbar_hotspot.Exact.output_blocking exact 0)
        (Crossbar_hotspot.Exact.output_blocking exact (outputs - 1))
        (Crossbar_hotspot.Exact.overall_blocking exact)
        sim.Crossbar_hotspot.Sim.overall_blocking
        sim.Crossbar_hotspot.Sim.overall_halfwidth)
    [ 1.; 4.; 16. ]

let print_all ?domains ?telemetry ?incremental ppf =
  (* One cache for the whole report: figure series and tables share
     operating points, so later sections reuse earlier solves. *)
  let cache = Cache.create () in
  print_figure ?domains ~cache ?telemetry ?incremental ppf
    ~name:"Figure 1 (smooth traffic)" Paper.figure1;
  Format.fprintf ppf "@.";
  print_figure ?domains ~cache ?telemetry ?incremental ppf
    ~name:"Figure 2 (peaky traffic)" Paper.figure2;
  Format.fprintf ppf "@.";
  print_figure ?domains ~cache ?telemetry ?incremental ppf
    ~name:"Figure 3 (two classes vs one)" Paper.figure3;
  Format.fprintf ppf "@.";
  print_figure ~sizes:Paper.figure4_sizes ?domains ~cache ?telemetry
    ?incremental ppf ~name:"Figure 4 (multi-rate, Table 1 loads)" Paper.figure4;
  Format.fprintf ppf "@.";
  print_table1 ppf;
  Format.fprintf ppf "@.";
  print_table2 ?domains ~cache ?telemetry ?incremental ppf;
  Format.fprintf ppf "@.";
  print_forensics ppf;
  Format.fprintf ppf "@.";
  print_simulation_check ppf;
  Format.fprintf ppf "@.";
  print_baselines ppf;
  Format.fprintf ppf "@.";
  print_multistage ppf;
  Format.fprintf ppf "@.";
  print_hotspot ppf
