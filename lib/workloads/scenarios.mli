(** Integrated-services scenarios — the multi-rate traffic mixes the
    paper's introduction motivates (voice, video, interactive data on one
    all-optical switch). *)

val aggregate_for_target :
  inputs:int -> outputs:int -> bandwidth:int -> service_rate:float ->
  mean_streams:float -> peakedness:float -> float * float
(** [(alpha~, beta~)] such that, ignoring blocking, the class carries
    [mean_streams] concurrent connections with the given peakedness
    [Z = 1/(1 - P beta/mu)] on the given switch (the unblocked occupancy
    is a linear birth-death process with mean [P alpha / (mu - P beta)],
    [P = P(N1,a) P(N2,a)]).  [peakedness = 1] yields a Poisson class;
    [< 1] smooth, [> 1] peaky.
    @raise Invalid_argument if [peakedness <= 0]. *)

val integrated_services : size:int -> utilization:float -> Crossbar.Model.t
(** A three-class mix on an [size x size] switch:

    - voice: [a = 1], Poisson, short holding times;
    - video: [a = 4] (a connection bundle per stream), Pascal (peaky —
      sessions arrive in bursts), long holding times;
    - data: [a = 1], Bernoulli (a finite population of workstations),
      medium holding times.

    [utilization] (roughly the target fraction of busy ports, in (0, 1])
    scales all three loads together.
    @raise Invalid_argument if [size < 8] (the video bundle must fit
    comfortably) or [utilization] is outside (0, 1.5]. *)

val hotspot_pair : size:int -> background:float -> hotspot:float ->
  Crossbar.Model.t
(** Two Poisson classes modelling a favoured route alongside uniform
    background traffic — a multi-class stand-in for the hot-spot analysis
    of the authors' companion paper (ICPP '91).  [background] and
    [hotspot] are aggregate offered loads. *)

val shifted_beta_specs :
  rho1:float -> rho2:float -> beta2:float -> size:int ->
  Crossbar.General.spec list
(** The Table 2 workload with the bursty class's state dependence delayed
    by one occupancy level, [lambda_2(k) = alpha_2 + beta_2 max(0, k-1)] —
    the variant that reproduces the paper's printed N = 1, 2 rows exactly
    (EXPERIMENTS.md forensics).  Solvable only by {!Crossbar.General}. *)
