(** The numbers {e printed} in the paper, transcribed for side-by-side
    comparison in the benchmark harness and EXPERIMENTS.md.

    These are the published values, not what the exact model yields — see
    the Table 2 forensics in EXPERIMENTS.md: the published computation
    demonstrably delayed the [beta] state-dependence by one occupancy
    level, so exact agreement is expected only where [beta] cannot yet
    act (N = 1, 2). *)

type table2_row = {
  size : int;
  gradient_rho1 : float; (* dW/drho_1, closed form *)
  gradient_beta2 : float option; (* dW/d(beta_2/mu_2); absent at N = 1 *)
  blocking : float; (* the B_r(N) column (blocking probability) *)
  revenue : float; (* W(N) *)
}

val table2 : (string * table2_row list) list
(** Per parameter-set rows of Table 2, keyed by the set labels of
    {!Paper.table2_sets}. *)

val table2_rows : set_label:string -> table2_row list
(** @raise Not_found for an unknown label. *)
