(** Rendering of the paper's figures and tables as text, shared by the
    [crossbar_tables] CLI and the benchmark harness.

    Each [print_*] writes a self-describing TSV block: the series the
    corresponding paper figure plots, or the table rows with this
    implementation's values side by side with the published ones.

    The figure and Table 2 sweeps run through
    {!Crossbar_engine.Sweep}: pass [?domains] to control the pool width
    (default {!Crossbar_engine.Pool.recommended_domains}), [?cache] to
    share solved models across sections, and [?telemetry] to collect
    per-solve records.  Output is byte-identical for every domain
    count.

    [?incremental] forwards to {!Crossbar_engine.Sweep.run}: points of a
    figure series that differ in a single class chain through the
    incremental convolution path.  Output is byte-identical either
    way. *)

val print_figure :
  ?sizes:int list ->
  ?domains:int ->
  ?cache:Crossbar_engine.Cache.t ->
  ?telemetry:Crossbar_engine.Telemetry.t ->
  ?incremental:bool ->
  Format.formatter ->
  name:string ->
  Paper.series list ->
  unit
(** Blocking probability of the first class of each series, for every
    size in [sizes] (default {!Paper.sizes}). *)

val print_table1 : Format.formatter -> unit

val print_table2 :
  ?domains:int ->
  ?cache:Crossbar_engine.Cache.t ->
  ?telemetry:Crossbar_engine.Telemetry.t ->
  ?incremental:bool ->
  Format.formatter ->
  unit

val print_forensics : Format.formatter -> unit
(** The Table 2 provenance analysis: printed values vs the exact model vs
    the shifted-[beta] variant at N = 1, 2 (see EXPERIMENTS.md). *)

val print_simulation_check :
  ?horizon:float -> ?seed:int -> Format.formatter -> unit
(** Analysis vs discrete-event simulation on a moderate mixed workload
    (the paper's future-work validation). *)

val print_baselines : Format.formatter -> unit
(** Slotted crossbar and banyan baselines vs the asynchronous switch. *)

val print_multistage : ?horizon:float -> Format.formatter -> unit
(** The future-work extension: multi-stage network blocking — simulation
    vs the switch-level Markov approximation (built on the paper's
    single-crossbar model) vs the classical link-independence fixed
    point. *)

val print_hotspot : ?horizon:float -> Format.formatter -> unit
(** The companion-study extension: exact hot-spot blocking (symmetric
    polynomials) vs port-level simulation. *)

val print_all :
  ?domains:int ->
  ?telemetry:Crossbar_engine.Telemetry.t ->
  ?incremental:bool ->
  Format.formatter ->
  unit
(** Every section above, in paper order (uses short simulations), with
    one shared solution cache across sections. *)
