(** The exact workloads behind every figure and table of Stirpe & Pinsky
    (SIGCOMM '92) — the single source of truth shared by the benchmark
    harness, the regression tests and the examples.

    Figures plot blocking probability against square switch size
    [N = N1 = N2]; tables print parameter sets and revenue results.  See
    DESIGN.md §4 for the experiment index and EXPERIMENTS.md for measured
    vs printed values. *)

type series = {
  label : string;
  model_of_size : int -> Crossbar.Model.t;
}
(** One curve of a figure: a family of models indexed by switch size. *)

val sizes : int list
(** The sizes sampled by the figures: powers of two from 1 to 128. *)

val figure1 : series list
(** Smooth (Bernoulli) arrival traffic vs the Poisson bound:
    [alpha~ = 0.0024], [mu = 1], [a = 1],
    [beta~ in {0, -1e-6, -2e-6, -4e-6}].  The [beta~ = 0] series is the
    degenerate Poisson upper bound. *)

val figure2 : series list
(** Peaky (Pascal) traffic vs Poisson: same operating point,
    [beta~ in {0, 0.0006, 0.0012, 0.0024}].  The paper does not print its
    [beta~] values for this figure; these are substitutes at the same
    magnitude as Table 2 (see DESIGN.md §5). *)

val figure3 : series list
(** Two classes ([R1 = 1, R2 = 1]) against one bursty class
    ([R1 = 0, R2 = 1]): Poisson load shifts the operating point while the
    relative effect of [beta~] is unchanged. *)

val figure4 : series list
(** Multi-rate comparison at constant total load [tau = 0.0048]:
    single-connection traffic ([a = 1]) vs double-connection traffic
    ([a = 2]), each analysed separately, with the loads of Table 1.
    Evaluate these only at {!figure4_sizes} — the [a = 2] class does not
    fit on smaller switches. *)

val figure4_sizes : int list
(** The sizes Figure 4 plots (Table 1's sizes plus 128). *)

val table1_sizes : int list
(** The sizes printed in Table 1: 4, 8, 16, 32, 64. *)

val table1_loads : int -> float * float
(** [(rho~_1, rho~_2)] for a given size, as {e printed} in Table 1:
    [tau/(2N)] for [a = 1] and [tau/C(N,2)] for [a = 2].  (The prose says
    [tau/C(N1,a_r)] for both — see DESIGN.md §2 item 6.) *)

type revenue_set = {
  set_label : string;
  rho1 : float; (* aggregate Poisson load, class 1 *)
  rho2 : float; (* aggregate alpha~_2 / mu_2 *)
  beta2 : float; (* aggregate beta~_2 *)
  weights : float array; (* w_1, w_2 *)
}

val table2_sets : revenue_set list
(** The three parameter sets of Table 2 ([w1 = 1], [w2 = 1e-4]). *)

val table2_sizes : int list
(** 1, 2, 4, ..., 256. *)

val table2_model : revenue_set -> int -> Crossbar.Model.t

val operating_point_model : int -> Crossbar.Model.t
(** The canonical single-Poisson-class model at the paper's "acceptable
    operating point" ([alpha~ = 0.0024] giving ~0.5% blocking). *)
