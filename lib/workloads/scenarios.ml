module Traffic = Crossbar.Traffic
module Model = Crossbar.Model
module Special = Crossbar_numerics.Special

(* With per-pair BPP parameters (alpha, beta) and P = P(N1,a) P(N2,a)
   ordered tuple pairs, the unblocked occupancy is a linear birth-death
   process with birth rate P(alpha + beta k) and death rate k mu, so
   M = P alpha / (mu - P beta)  and  Z = 1 / (1 - P beta / mu).
   These invert the scenario targets (mean streams, peakedness) into
   aggregate traffic parameters. *)
let aggregate_for_target ~inputs ~outputs ~bandwidth ~service_rate
    ~mean_streams ~peakedness =
  if not (peakedness > 0.) then invalid_arg "Scenarios: peakedness <= 0";
  let tuple_pairs =
    Special.permutations inputs bandwidth
    *. Special.permutations outputs bandwidth
  in
  let beta_pp = service_rate *. (1. -. (1. /. peakedness)) /. tuple_pairs in
  let alpha_pp =
    mean_streams *. (service_rate -. (tuple_pairs *. beta_pp)) /. tuple_pairs
  in
  let scale = Special.binomial outputs bandwidth in
  (alpha_pp *. scale, beta_pp *. scale)

(* Deliberate headroom above nominal load so overload studies can push
   the fabric past capacity. *)
let max_utilization = 1.5

let integrated_services ~size ~utilization =
  if size < 8 then invalid_arg "Scenarios.integrated_services: size < 8";
  if not (utilization > 0. && utilization <= max_utilization) then
    invalid_arg "Scenarios.integrated_services: utilization outside (0, 1.5]";
  let nf = float_of_int size in
  (* Port budget: ~50% voice, ~35% video, ~15% data. *)
  let voice_streams = 0.50 *. utilization *. nf in
  let video_streams = 0.35 *. utilization *. nf /. 4. in
  let data_streams = 0.15 *. utilization *. nf in
  let voice_alpha, _ =
    aggregate_for_target ~inputs:size ~outputs:size ~bandwidth:1
      ~service_rate:1.0 ~mean_streams:voice_streams ~peakedness:1.0
  in
  let video_alpha, video_beta =
    aggregate_for_target ~inputs:size ~outputs:size ~bandwidth:4
      ~service_rate:0.1 ~mean_streams:video_streams ~peakedness:1.5
  in
  (* Data: finite population of 2N workstations (Engset-like smooth).
     M = P S gamma / (mu + P gamma)  =>  gamma = mu M / (P (S - M)). *)
  let sources = 2 * size in
  let data_gamma_pp =
    let tuple_pairs = nf *. nf in
    0.5 *. data_streams
    /. (tuple_pairs *. (float_of_int sources -. data_streams))
  in
  let classes =
    [
      Traffic.poisson ~name:"voice" ~bandwidth:1 ~rate:voice_alpha
        ~service_rate:1.0 ();
      Traffic.pascal ~name:"video" ~bandwidth:4 ~alpha:video_alpha
        ~beta:video_beta ~service_rate:0.1 ();
      Traffic.bernoulli ~name:"data" ~bandwidth:1 ~sources
        ~per_source_rate:(data_gamma_pp *. nf)
        ~service_rate:0.5 ();
    ]
  in
  Model.square ~size ~classes

let hotspot_pair ~size ~background ~hotspot =
  Model.square ~size
    ~classes:
      [
        Traffic.poisson ~name:"background" ~bandwidth:1 ~rate:background
          ~service_rate:1.0 ();
        Traffic.poisson ~name:"hotspot" ~bandwidth:1 ~rate:hotspot
          ~service_rate:1.0 ();
      ]

let shifted_beta_specs ~rho1 ~rho2 ~beta2 ~size =
  let nf = float_of_int size in
  let alpha1 = rho1 /. nf and alpha2 = rho2 /. nf and beta2 = beta2 /. nf in
  [
    {
      Crossbar.General.name = "type1";
      bandwidth = 1;
      arrival_rate = (fun _ -> alpha1);
      service_rate = 1.0;
    };
    {
      Crossbar.General.name = "type2";
      bandwidth = 1;
      arrival_rate =
        (fun k -> alpha2 +. (beta2 *. float_of_int (max 0 (k - 1))));
      service_rate = 1.0;
    };
  ]
