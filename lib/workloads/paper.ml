module Traffic = Crossbar.Traffic
module Model = Crossbar.Model

type series = { label : string; model_of_size : int -> Model.t }

let sizes = [ 1; 2; 4; 8; 16; 32; 64; 128 ]
let base_alpha = 0.0024

let single_class_series ~label ~beta =
  {
    label;
    model_of_size =
      (fun n ->
        Model.square ~size:n
          ~classes:
            [
              Traffic.create ~name:"traffic" ~bandwidth:1 ~alpha:base_alpha
                ~beta ~service_rate:1.0 ();
            ]);
  }

let figure1 =
  List.map
    (fun beta ->
      let label =
        if Crossbar_numerics.Prob.is_zero beta then "poisson (beta~=0)"
        else Printf.sprintf "bernoulli beta~=%g" beta
      in
      single_class_series ~label ~beta)
    [ 0.; -1e-6; -2e-6; -4e-6 ]

let figure2 =
  List.map
    (fun beta ->
      let label =
        if Crossbar_numerics.Prob.is_zero beta then "poisson (beta~=0)"
        else Printf.sprintf "pascal beta~=%g" beta
      in
      single_class_series ~label ~beta)
    [ 0.; 0.0006; 0.0012; 0.0024 ]

let figure3 =
  let two_class ~label ~rho1 ~rho2 ~beta2 =
    {
      label;
      model_of_size =
        (fun n ->
          Model.square ~size:n
            ~classes:
              [
                Traffic.poisson ~name:"poisson" ~bandwidth:1 ~rate:rho1
                  ~service_rate:1.0 ();
                Traffic.create ~name:"bursty" ~bandwidth:1 ~alpha:rho2
                  ~beta:beta2 ~service_rate:1.0 ();
              ]);
    }
  and one_class ~label ~rho ~beta =
    {
      label;
      model_of_size =
        (fun n ->
          Model.square ~size:n
            ~classes:
              [
                Traffic.create ~name:"bursty" ~bandwidth:1 ~alpha:rho
                  ~beta ~service_rate:1.0 ();
              ]);
    }
  in
  [
    one_class ~label:"R1=0,R2=1 rho~=.0012 beta~=.0012" ~rho:0.0012
      ~beta:0.0012;
    two_class ~label:"R1=1,R2=1 rho~1=.0012 rho~2=.0012 beta~2=.0012"
      ~rho1:0.0012 ~rho2:0.0012 ~beta2:0.0012;
    two_class ~label:"R1=1,R2=1 rho~1=.0012 rho~2=.0012 beta~2=.0036"
      ~rho1:0.0012 ~rho2:0.0012 ~beta2:0.0036;
  ]

let total_load = 0.0048
let table1_sizes = [ 4; 8; 16; 32; 64 ]

let table1_loads n =
  let nf = float_of_int n in
  (* As printed in Table 1 (not the prose formula — see DESIGN.md). *)
  let rho1 = total_load /. (2. *. nf) in
  let rho2 = total_load /. (nf *. (nf -. 1.) /. 2.) in
  (rho1, rho2)

let figure4_sizes = table1_sizes @ [ 128 ]

let figure4 =
  [
    {
      label = "a=1 (one connection per arrival)";
      model_of_size =
        (fun n ->
          let rho1, _ = table1_loads n in
          Model.square ~size:n
            ~classes:
              [
                Traffic.poisson ~name:"single" ~bandwidth:1 ~rate:rho1
                  ~service_rate:1.0 ();
              ]);
    };
    {
      label = "a=2 (two connections per arrival)";
      model_of_size =
        (fun n ->
          let _, rho2 = table1_loads n in
          Model.square ~size:n
            ~classes:
              [
                Traffic.poisson ~name:"double" ~bandwidth:2 ~rate:rho2
                  ~service_rate:1.0 ();
              ]);
    };
  ]

type revenue_set = {
  set_label : string;
  rho1 : float;
  rho2 : float;
  beta2 : float;
  weights : float array;
}

let table2_sets =
  let weights = [| 1.0; 0.0001 |] in
  [
    {
      set_label = "set 1: rho~1=.0012 rho~2=.0012 beta~2=.0012";
      rho1 = 0.0012;
      rho2 = 0.0012;
      beta2 = 0.0012;
      weights;
    };
    {
      set_label = "set 2: beta~2 raised to .0036";
      rho1 = 0.0012;
      rho2 = 0.0012;
      beta2 = 0.0036;
      weights;
    };
    {
      set_label = "set 3: rho~2 raised to .0036";
      rho1 = 0.0012;
      rho2 = 0.0036;
      beta2 = 0.0012;
      weights;
    };
  ]

let table2_sizes = [ 1; 2; 4; 8; 16; 32; 64; 128; 256 ]

let table2_model set n =
  Model.square ~size:n
    ~classes:
      [
        Traffic.poisson ~name:"type1" ~bandwidth:1 ~rate:set.rho1
          ~service_rate:1.0 ();
        Traffic.create ~name:"type2" ~bandwidth:1 ~alpha:set.rho2
          ~beta:set.beta2 ~service_rate:1.0 ();
      ]

let operating_point_model n =
  Model.square ~size:n
    ~classes:
      [
        Traffic.poisson ~name:"traffic" ~bandwidth:1 ~rate:base_alpha
          ~service_rate:1.0 ();
      ]
