module Ctmc = Crossbar_markov.Ctmc

let count_matchings ~inputs ~outputs =
  if inputs < 1 || outputs < 1 then
    invalid_arg "Matchings.count_matchings: dimensions";
  let total = ref 0. in
  for s = 0 to min inputs outputs do
    total :=
      !total
      +. Crossbar_numerics.Special.binomial inputs s
         *. Crossbar_numerics.Special.permutations outputs s
  done;
  int_of_float (Float.round !total)

type result = {
  states : int;
  mean_busy : float;
  output_utilization : float array;
  output_non_blocking : float array;
  detailed_balance_violation : float;
}

(* A matching is an array: input -> matched output or -1. *)
let enumerate ~inputs ~outputs =
  let matchings = ref [] in
  let current = Array.make inputs (-1) in
  let output_used = Array.make outputs false in
  let rec visit input =
    if input = inputs then matchings := Array.copy current :: !matchings
    else begin
      (* input left idle *)
      current.(input) <- -1;
      visit (input + 1);
      for output = 0 to outputs - 1 do
        if not output_used.(output) then begin
          current.(input) <- output;
          output_used.(output) <- true;
          visit (input + 1);
          output_used.(output) <- false;
          current.(input) <- -1
        end
      done
    end
  in
  visit 0;
  Array.of_list !matchings

let solve ?input_weights ~inputs ~rate ~weights ~service_rate () =
  let outputs = Array.length weights in
  let input_weights =
    match input_weights with
    | Some u ->
        if Array.length u <> inputs then
          invalid_arg "Matchings.solve: input weight count";
        u
    | None -> Array.make inputs 1.
  in
  let pair_rate i j = rate *. input_weights.(i) *. weights.(j) in
  if count_matchings ~inputs ~outputs > 200_000 then
    failwith "Matchings.solve: too many matchings";
  (* Matchings using a never-requested port are unreachable; keep the
     chain irreducible by dropping them. *)
  let matchings =
    Array.of_list
      (List.filter
         (fun m ->
           let ok = ref true in
           Array.iteri
             (fun i j -> if j >= 0 && not (pair_rate i j > 0.) then ok := false)
             m;
           !ok)
         (Array.to_list (enumerate ~inputs ~outputs)))
  in
  let states = Array.length matchings in
  let index = Hashtbl.create states in
  Array.iteri (fun i m -> Hashtbl.replace index m i) matchings;
  let chain =
    Ctmc.build ~states ~f:(fun i ->
        let m = matchings.(i) in
        let output_busy = Array.make outputs false in
        Array.iter (fun j -> if j >= 0 then output_busy.(j) <- true) m;
        let transitions = ref [] in
        Array.iteri
          (fun input j ->
            if j >= 0 then begin
              (* departure *)
              let target = Array.copy m in
              target.(input) <- -1;
              transitions :=
                (Hashtbl.find index target, service_rate) :: !transitions
            end
            else
              for output = 0 to outputs - 1 do
                if (not output_busy.(output)) && pair_rate input output > 0.
                then begin
                  let target = Array.copy m in
                  target.(input) <- output;
                  transitions :=
                    (Hashtbl.find index target, pair_rate input output)
                    :: !transitions
                end
              done)
          m;
        !transitions)
  in
  let pi = Ctmc.solve_gth chain in
  let mean_busy = ref 0. in
  let output_utilization = Array.make outputs 0. in
  let output_non_blocking = Array.make outputs 0. in
  Array.iteri
    (fun i m ->
      let busy = Array.fold_left (fun acc j -> if j >= 0 then acc + 1 else acc) 0 m in
      mean_busy := !mean_busy +. (float_of_int busy *. pi.(i));
      let output_busy = Array.make outputs false in
      Array.iter (fun j -> if j >= 0 then output_busy.(j) <- true) m;
      let free_inputs = float_of_int (inputs - busy) /. float_of_int inputs in
      for output = 0 to outputs - 1 do
        if output_busy.(output) then
          output_utilization.(output) <-
            output_utilization.(output) +. pi.(i)
        else
          output_non_blocking.(output) <-
            output_non_blocking.(output) +. (pi.(i) *. free_inputs)
      done)
    matchings;
  {
    states;
    mean_busy = !mean_busy;
    output_utilization;
    output_non_blocking;
    detailed_balance_violation = Ctmc.detailed_balance_violation chain ~pi;
  }
