(** Exact analysis of the asynchronous crossbar under {e non-uniform}
    (hot-spot) output traffic — the companion study the paper cites as
    its predecessor (Pinsky & Stirpe, ICPP '91) and generalises away by
    assuming uniformity.

    Model: single-rate ([a = 1]) circuit traffic where requests for the
    (input [i], output [j]) pair arrive at rate [rate * weight.(j)] —
    every output has its own popularity weight — with exponential holding
    times of rate [service_rate] and blocked-calls-cleared.  The
    port-level state is the partial matching [M] of busy (input, output)
    pairs, and detailed balance gives the product form

    [pi(M) ∝ prod_((i,j) in M) (rate * weight.(j) / service_rate)].

    Summing over the matchings with output set [S] collapses to
    elementary symmetric polynomials of the weights:

    [G = sum_s P(N1, s) * rho^s * e_s(weights)],

    computed here by a log-domain DP in [O(N2 * capacity)] — exact
    hot-spot blocking at any switch size, no state enumeration.  The
    uniform case [weight = 1] reduces to the paper's model (a regression
    test pins this). *)

type t
(** A solved non-uniform crossbar. *)

val solve :
  inputs:int -> rate:float -> weights:float array -> service_rate:float -> t
(** [solve ~inputs ~rate ~weights ~service_rate]: [weights.(j)] is output
    [j]'s popularity multiplier ([Array.length weights] is the output
    count).
    @raise Invalid_argument for non-positive dimensions/rates or negative
    weights. *)

val hotspot :
  inputs:int -> outputs:int -> rate:float -> hot_multiplier:float ->
  service_rate:float -> t
(** The classical single-hot-spot pattern: output 0 is [hot_multiplier]
    times as popular as each of the other outputs. *)

val solve_bipartite :
  rate:float -> input_weights:float array -> output_weights:float array ->
  service_rate:float -> t
(** Full generality: pair [(i, j)] sees rate
    [rate * input_weights.(i) * output_weights.(j)] — non-uniform sources
    {e and} destinations.  The normalisation becomes
    [G = sum_s s! rho^s e_s(u) e_s(w)].  {!solve} is the special case
    [input_weights = 1]; per-input measures are exposed through
    {!input_utilization} / {!input_non_blocking}. *)

val input_utilization : t -> int -> float
(** Probability input [i] is busy. *)

val input_non_blocking : t -> int -> float
(** Probability that a request {e from} input [i] (to an output drawn by
    weight) is accepted. *)

val log_normalization : t -> float

val mean_busy : t -> float
(** Expected number of connections in progress. *)

val output_utilization : t -> int -> float
(** Probability output [j] is busy. *)

val output_non_blocking : t -> int -> float
(** Probability that a request addressed to output [j] is accepted: the
    stationary mean of [(free inputs)/N1 * 1(output j free)] — by PASTA
    (arrivals are Poisson) also the per-request acceptance. *)

val output_blocking : t -> int -> float

val overall_blocking : t -> float
(** Blocking experienced by the aggregate request stream (outputs drawn
    with probability proportional to their weights). *)

val throughput : t -> float
(** Accepted connections per unit time. *)
