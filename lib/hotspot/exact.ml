module Logspace = Crossbar_numerics.Logspace
module Special = Crossbar_numerics.Special
module Prob = Crossbar_numerics.Prob

(* All formulas below are sums over the connection count s of terms
   s! rho^s e_s(u) e_s(w) (and deleted/shifted variants), where e_s are
   elementary symmetric polynomials of the input weights u and output
   weights w — see docs/THEORY.md §7. *)

type t = {
  input_weights : float array;
  output_weights : float array;
  rho : float; (* base per-pair offered load, rate / mu *)
  service_rate : float;
  capacity : int;
  log_e_in : float array; (* log e_s(u), s = 0 .. capacity + 1 *)
  log_e_out : float array;
  log_g : float;
  deleted_in : (int, float array) Hashtbl.t;
  deleted_out : (int, float array) Hashtbl.t;
  representative_in : int array;
  representative_out : int array;
}

let log_add a b =
  Logspace.to_log (Logspace.add (Logspace.of_log a) (Logspace.of_log b))

let elementary ~top ?skip weights =
  let log_e = Array.make (top + 1) neg_infinity in
  log_e.(0) <- 0.;
  Array.iteri
    (fun j w ->
      if Some j <> skip && w > 0. then begin
        let log_w = log w in
        for s = top downto 1 do
          log_e.(s) <- log_add log_e.(s) (log_w +. log_e.(s - 1))
        done
      end)
    weights;
  log_e

let representatives weights =
  Array.mapi
    (fun j w ->
      let first = ref j in
      (try
         for j' = 0 to j - 1 do
           if weights.(j') = w then begin
             first := j';
             raise Exit
           end
         done
       with Exit -> ());
      !first)
    weights

let log_sum terms = Logspace.to_log (Logspace.sum (Array.map Logspace.of_log terms))

(* log of s! rho^s. *)
let log_prefactor t s =
  Special.log_factorial s +. (float_of_int s *. log t.rho)

let solve_bipartite ~rate ~input_weights ~output_weights ~service_rate =
  if Array.length input_weights < 1 then
    invalid_arg "Hotspot.solve_bipartite: no inputs";
  if Array.length output_weights < 1 then
    invalid_arg "Hotspot.solve_bipartite: no outputs";
  if not (rate >= 0.) then invalid_arg "Hotspot.solve_bipartite: rate < 0";
  if not (service_rate > 0.) then
    invalid_arg "Hotspot.solve_bipartite: service_rate <= 0";
  let check = Array.iter (fun w -> if not (w >= 0.) then invalid_arg "Hotspot: negative weight") in
  check input_weights;
  check output_weights;
  let input_weights = Array.copy input_weights
  and output_weights = Array.copy output_weights in
  let capacity = min (Array.length input_weights) (Array.length output_weights) in
  let top = capacity + 1 in
  let rho = if Prob.is_zero rate then 0. else rate /. service_rate in
  let partial =
    {
      input_weights;
      output_weights;
      rho;
      service_rate;
      capacity;
      log_e_in = elementary ~top input_weights;
      log_e_out = elementary ~top output_weights;
      log_g = 0.;
      deleted_in = Hashtbl.create 4;
      deleted_out = Hashtbl.create 4;
      representative_in = representatives input_weights;
      representative_out = representatives output_weights;
    }
  in
  let log_g =
    if Prob.is_zero rho then 0.
    else
      log_sum
        (Array.init (capacity + 1) (fun s ->
             log_prefactor partial s
             +. partial.log_e_in.(s)
             +. partial.log_e_out.(s)))
  in
  { partial with log_g }

let solve ~inputs ~rate ~weights ~service_rate =
  if inputs < 1 then invalid_arg "Hotspot.solve: inputs < 1";
  solve_bipartite ~rate ~input_weights:(Array.make inputs 1.)
    ~output_weights:weights ~service_rate

let hotspot ~inputs ~outputs ~rate ~hot_multiplier ~service_rate =
  if outputs < 1 then invalid_arg "Hotspot.hotspot: outputs < 1";
  if not (hot_multiplier >= 0.) then
    invalid_arg "Hotspot.hotspot: negative multiplier";
  let weights = Array.make outputs 1. in
  weights.(0) <- hot_multiplier;
  solve ~inputs ~rate ~weights ~service_rate

let log_normalization t = t.log_g

type side = Input | Output

let side_weights t = function
  | Input -> t.input_weights
  | Output -> t.output_weights

let side_elementary t = function
  | Input -> t.log_e_in
  | Output -> t.log_e_out

(* log e_s of one side with index j removed (cached per distinct weight). *)
let deleted_elementary t side j =
  let cache, key =
    match side with
    | Input -> (t.deleted_in, t.representative_in.(j))
    | Output -> (t.deleted_out, t.representative_out.(j))
  in
  match Hashtbl.find_opt cache key with
  | Some log_e -> log_e
  | None ->
      let log_e =
        elementary ~top:(t.capacity + 1) ~skip:key (side_weights t side)
      in
      Hashtbl.replace cache key log_e;
      log_e

let check_index t side j =
  if j < 0 || j >= Array.length (side_weights t side) then
    invalid_arg "Hotspot: port index out of range"

let mean_busy t =
  if Prob.is_zero t.rho then 0.
  else begin
    let mean = ref 0. in
    for s = 1 to t.capacity do
      mean :=
        !mean
        +. float_of_int s
           *. exp
                (log_prefactor t s +. t.log_e_in.(s) +. t.log_e_out.(s)
               -. t.log_g)
    done;
    !mean
  end

(* P(port j of [side] busy) = (1/G) sum_s s! rho^s w_j e_(s-1)(side - j)
   e_s(other side). *)
let utilization t side j =
  check_index t side j;
  let w = (side_weights t side).(j) in
  if Prob.is_zero t.rho || Prob.is_zero w then 0.
  else begin
    let log_e_deleted = deleted_elementary t side j in
    let other = side_elementary t (match side with Input -> Output | Output -> Input) in
    let terms =
      Array.init t.capacity (fun s' ->
          let s = s' + 1 in
          Logspace.of_log
            (log_prefactor t s +. log w +. log_e_deleted.(s - 1) +. other.(s)))
    in
    Logspace.ratio (Logspace.sum terms) (Logspace.of_log t.log_g)
  end

(* Sum over the free ports of a side, weighted by popularity:
   sum_(j free) w_j over matchings of size s contributes
   (s+1) e_(s+1)(w) — used for the acceptance formulas. *)
let non_blocking t side j =
  check_index t side j;
  if Prob.is_zero t.rho then 1.
  else begin
    let log_e_deleted = deleted_elementary t side j in
    let other_side = match side with Input -> Output | Output -> Input in
    let other = side_elementary t other_side in
    let other_total =
      Array.fold_left ( +. ) 0. (side_weights t other_side)
    in
    let terms =
      Array.init (t.capacity + 1) (fun s ->
          Logspace.of_log
            (log_prefactor t s +. log_e_deleted.(s)
            +. log (float_of_int (s + 1))
            +. other.(s + 1)))
    in
    Logspace.ratio (Logspace.sum terms)
      (Logspace.of_log (t.log_g +. log other_total))
  end

let output_utilization t j = utilization t Output j
let output_non_blocking t j = non_blocking t Output j
let output_blocking t j = 1. -. output_non_blocking t j
let input_utilization t i = utilization t Input i
let input_non_blocking t i = non_blocking t Input i

let overall_blocking t =
  if Prob.is_zero t.rho then 0.
  else begin
    (* P(random request accepted)
       = (1/(G U W)) sum_s s! rho^s (s+1)^2 e_(s+1)(u) e_(s+1)(w). *)
    let input_total = Array.fold_left ( +. ) 0. t.input_weights in
    let output_total = Array.fold_left ( +. ) 0. t.output_weights in
    if Prob.is_zero input_total || Prob.is_zero output_total then 0.
    else begin
      let terms =
        Array.init (t.capacity + 1) (fun s ->
            Logspace.of_log
              (log_prefactor t s
              +. (2. *. log (float_of_int (s + 1)))
              +. t.log_e_in.(s + 1)
              +. t.log_e_out.(s + 1)))
      in
      1.
      -. Logspace.ratio (Logspace.sum terms)
           (Logspace.of_log (t.log_g +. log input_total +. log output_total))
    end
  end

let throughput t = mean_busy t *. t.service_rate
