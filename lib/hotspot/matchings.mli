(** Brute-force validation layer for {!Exact}: the crossbar state as an
    explicit partial matching of inputs to outputs.

    Enumerates every partial matching of the [N1 x N2] bipartite port
    graph, builds the port-level CTMC (births [rate * weight.(j)] on free
    pairs, deaths [service_rate] per connection), and computes measures
    either from the product form over edges or from a GTH solve.  Only
    feasible for toy switches — that is the point: it validates both the
    symmetric-polynomial collapse of {!Exact} and, with uniform weights,
    the aggregation step of the paper's model (which tracks only
    occupancy counts). *)

val count_matchings : inputs:int -> outputs:int -> int
(** Number of partial matchings, [sum_s C(N1,s) C(N2,s) s!].
    @raise Invalid_argument for non-positive dimensions. *)

type result = {
  states : int;
  mean_busy : float;
  output_utilization : float array;
  output_non_blocking : float array;
  detailed_balance_violation : float;
      (** of the GTH solution w.r.t. the port-level chain — ~0 certifies
          the product form over edges *)
}

val solve :
  ?input_weights:float array -> inputs:int -> rate:float ->
  weights:float array -> service_rate:float -> unit -> result
(** Exact enumeration + GTH solve; pair [(i, j)] arrives at rate
    [rate * input_weights.(i) * weights.(j)] (input weights default to
    1 — the {!Exact.solve} case).
    @raise Failure if the matching count exceeds 200_000. *)
