(** Event-driven port-level simulation of the crossbar under non-uniform
    output traffic — the referee for {!Exact} at sizes where {!Matchings}
    cannot enumerate.

    Requests for pair [(i, j)] arrive as independent Poisson streams of
    rate [rate * weights.(j)]; a request is accepted iff input [i] and
    output [j] are both idle (blocked-calls-cleared), and holds both for
    an exponential time of rate [service_rate].  Since arrivals are
    Poisson, call and time congestion coincide (PASTA). *)

type config = {
  inputs : int;
  rate : float;
  weights : float array;
  service_rate : float;
  warmup : float;
  horizon : float;
  batches : int;
  confidence : float;
  seed : int;
}

val default_config :
  inputs:int -> rate:float -> weights:float array -> config
(** Unit service rate, warmup 500, horizon 2e4, 20 batches, 95%, seed 42. *)

type result = {
  offered : int;
  accepted : int;
  overall_blocking : float;
  overall_halfwidth : float;
  per_output_blocking : float array; (* point estimates from counts *)
  mean_busy : float;
  events : int;
}

val run : config -> result
(** Deterministic in [config.seed].
    @raise Invalid_argument on malformed configs. *)
