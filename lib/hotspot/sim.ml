module Rng = Crossbar_prng.Rng
module Variates = Crossbar_prng.Variates
module Event_heap = Crossbar_sim.Event_heap
module Stats = Crossbar_sim.Stats

type config = {
  inputs : int;
  rate : float;
  weights : float array;
  service_rate : float;
  warmup : float;
  horizon : float;
  batches : int;
  confidence : float;
  seed : int;
}

let default_config ~inputs ~rate ~weights =
  {
    inputs;
    rate;
    weights;
    service_rate = 1.0;
    warmup = 500.;
    horizon = 2e4;
    batches = 20;
    confidence = 0.95;
    seed = 42;
  }

type result = {
  offered : int;
  accepted : int;
  overall_blocking : float;
  overall_halfwidth : float;
  per_output_blocking : float array;
  mean_busy : float;
  events : int;
}

let run config =
  if config.inputs < 1 then invalid_arg "Hotspot_sim.run: inputs < 1";
  if Array.length config.weights < 1 then invalid_arg "Hotspot_sim.run: outputs";
  if not (config.rate >= 0.) then invalid_arg "Hotspot_sim.run: rate < 0";
  if not (config.service_rate > 0.) then
    invalid_arg "Hotspot_sim.run: service_rate <= 0";
  if not (config.horizon > 0.) then invalid_arg "Hotspot_sim.run: horizon";
  if config.batches < 2 then invalid_arg "Hotspot_sim.run: batches < 2";
  let outputs = Array.length config.weights in
  let cumulative = Array.make outputs 0. in
  let running = ref 0. in
  Array.iteri
    (fun j w ->
      if not (w >= 0.) then invalid_arg "Hotspot_sim.run: negative weight";
      running := !running +. w;
      cumulative.(j) <- !running)
    config.weights;
  let total_weight = !running in
  let total_rate = config.rate *. float_of_int config.inputs *. total_weight in
  let rng = Rng.create ~seed:config.seed in
  let input_busy = Array.make config.inputs false in
  let output_busy = Array.make outputs false in
  let busy = ref 0 in
  let departures = Event_heap.create () in
  let pick_output () =
    (* Inverse-CDF over the cumulative weights (linear scan: output counts
       in the hundreds at most, and the hot output is first). *)
    let u = Rng.float rng *. total_weight in
    let j = ref 0 in
    while cumulative.(!j) <= u && !j < outputs - 1 do
      incr j
    done;
    !j
  in
  let busy_integral = Stats.Time_weighted.create ~start:0. ~value:0. in
  let blocking_batches = ref [] and busy_batches = ref [] in
  let batch_offered = ref 0 and batch_blocked = ref 0 in
  let per_output_offered = Array.make outputs 0 in
  let per_output_blocked = Array.make outputs 0 in
  let total_offered = ref 0 and total_accepted = ref 0 in
  let close_batch ~upto =
    let fraction =
      if !batch_offered = 0 then 0.
      else float_of_int !batch_blocked /. float_of_int !batch_offered
    in
    blocking_batches := fraction :: !blocking_batches;
    busy_batches := Stats.Time_weighted.average busy_integral ~upto :: !busy_batches;
    Stats.Time_weighted.reset busy_integral ~time:upto;
    batch_offered := 0;
    batch_blocked := 0
  in
  let finish_time = config.warmup +. config.horizon in
  let batch_length = config.horizon /. float_of_int config.batches in
  let batch_start = ref config.warmup in
  let measuring = ref false in
  let now = ref 0. in
  let next_arrival =
    ref
      (if total_rate > 0. then Variates.exponential rng ~rate:total_rate
       else infinity)
  in
  let events = ref 0 in
  let continue = ref true in
  while !continue do
    let departure_time =
      match Event_heap.peek departures with Some (t, _) -> t | None -> infinity
    in
    let event_time = Float.min departure_time !next_arrival in
    if event_time >= finish_time then begin
      if !measuring then close_batch ~upto:finish_time;
      now := finish_time;
      continue := false
    end
    else begin
      now := event_time;
      incr events;
      if (not !measuring) && !now >= config.warmup then begin
        measuring := true;
        Stats.Time_weighted.reset busy_integral ~time:config.warmup;
        batch_offered := 0;
        batch_blocked := 0;
        Array.fill per_output_offered 0 outputs 0;
        Array.fill per_output_blocked 0 outputs 0;
        batch_start := config.warmup
      end;
      while !measuring && !now >= !batch_start +. batch_length do
        close_batch ~upto:(!batch_start +. batch_length);
        batch_start := !batch_start +. batch_length
      done;
      if departure_time <= !next_arrival then begin
        match Event_heap.pop departures with
        | None -> assert false
        | Some (_, (input, output)) ->
            input_busy.(input) <- false;
            output_busy.(output) <- false;
            decr busy;
            Stats.Time_weighted.update busy_integral ~time:!now
              ~value:(float_of_int !busy)
      end
      else begin
        incr total_offered;
        if !measuring then incr batch_offered;
        let input = Rng.int rng ~bound:config.inputs in
        let output = pick_output () in
        if !measuring then
          per_output_offered.(output) <- per_output_offered.(output) + 1;
        if input_busy.(input) || output_busy.(output) then begin
          if !measuring then begin
            incr batch_blocked;
            per_output_blocked.(output) <- per_output_blocked.(output) + 1
          end
        end
        else begin
          incr total_accepted;
          input_busy.(input) <- true;
          output_busy.(output) <- true;
          incr busy;
          Stats.Time_weighted.update busy_integral ~time:!now
            ~value:(float_of_int !busy);
          Event_heap.add departures
            ~time:(!now +. Variates.exponential rng ~rate:config.service_rate)
            (input, output)
        end;
        next_arrival := !now +. Variates.exponential rng ~rate:total_rate
      end
    end
  done;
  let overall_blocking, overall_halfwidth =
    Stats.confidence_interval ~confidence:config.confidence
      (Array.of_list !blocking_batches)
  in
  let mean_busy, _ =
    Stats.confidence_interval ~confidence:config.confidence
      (Array.of_list !busy_batches)
  in
  {
    offered = !total_offered;
    accepted = !total_accepted;
    overall_blocking;
    overall_halfwidth;
    per_output_blocking =
      Array.init outputs (fun j ->
          if per_output_offered.(j) = 0 then 0.
          else
            float_of_int per_output_blocked.(j)
            /. float_of_int per_output_offered.(j));
    mean_busy;
    events = !events;
  }
