(** Transient analysis of a CTMC by uniformisation.

    The paper analyses the steady state only; this module answers the
    follow-on engineering question — how quickly the switch {e reaches}
    that steady state after a load change — by computing
    [pi(t) = pi(0) e^(Q t)] as a Poisson-weighted sum of DTMC powers
    (Jensen's method), which is numerically benign (all terms are
    non-negative). *)

val distribution :
  ?tolerance:float -> Ctmc.t -> initial:float array -> time:float ->
  float array
(** State distribution at [time], starting from [initial] at time 0.
    [tolerance] bounds the truncated Poisson tail mass (default 1e-12).
    @raise Invalid_argument if [time < 0] or [initial] is not a
    distribution over the chain's states. *)

val expected_reward :
  ?tolerance:float -> Ctmc.t -> initial:float array -> time:float ->
  reward:float array -> float
(** [sum_i pi_i(t) reward.(i)] — e.g. the instantaneous non-blocking
    probability [t] after start-up. *)

val time_to_stationarity :
  ?tolerance:float -> ?distance:float -> Ctmc.t -> initial:float array ->
  float
(** Smallest [t] (by doubling search, resolution a factor of 2) at which
    the total-variation distance between [pi(t)] and the stationary
    distribution drops below [distance] (default 1e-3). *)
