type t = {
  num_states : int;
  outgoing : (int * float) array array; (* state -> (destination, rate) *)
  exit_rates : float array;
}

let of_adjacency outgoing =
  let num_states = Array.length outgoing in
  let exit_rates =
    Array.map
      (fun successors ->
        Array.fold_left (fun acc (_, rate) -> acc +. rate) 0. successors)
      outgoing
  in
  { num_states; outgoing; exit_rates }

let create ~states ~transitions =
  if states <= 0 then invalid_arg "Ctmc.create: states <= 0";
  let merged = Array.make states [] in
  List.iter
    (fun (src, dst, rate) ->
      if src < 0 || src >= states || dst < 0 || dst >= states then
        invalid_arg "Ctmc.create: state out of range";
      if src = dst then invalid_arg "Ctmc.create: self-loop";
      if not (rate > 0.) then invalid_arg "Ctmc.create: non-positive rate";
      merged.(src) <- (dst, rate) :: merged.(src))
    transitions;
  let outgoing =
    Array.map
      (fun successors ->
        (* Sum duplicate (src, dst) rates. *)
        let table = Hashtbl.create 8 in
        List.iter
          (fun (dst, rate) ->
            let current =
              Option.value ~default:0. (Hashtbl.find_opt table dst)
            in
            Hashtbl.replace table dst (current +. rate))
          successors;
        let pairs = Hashtbl.fold (fun dst rate acc -> (dst, rate) :: acc) table [] in
        Array.of_list (List.sort compare pairs))
      merged
  in
  of_adjacency outgoing

let build ~states ~f =
  let transitions = ref [] in
  for src = 0 to states - 1 do
    List.iter
      (fun (dst, rate) ->
        if rate > 0. then transitions := (src, dst, rate) :: !transitions)
      (f src)
  done;
  create ~states ~transitions:!transitions

let num_states t = t.num_states
let transitions_from t i = Array.to_list t.outgoing.(i)
let exit_rate t i = t.exit_rates.(i)

let dense_rates t =
  let n = t.num_states in
  let rates = Array.make_matrix n n 0. in
  Array.iteri
    (fun src successors ->
      Array.iter (fun (dst, rate) -> rates.(src).(dst) <- rates.(src).(dst) +. rate)
      successors)
    t.outgoing;
  rates

(* Grassmann–Taksar–Heyman elimination: no subtractions, so the result is
   accurate to near machine precision regardless of rate magnitudes. *)
let solve_gth t =
  let n = t.num_states in
  if n = 1 then [| 1. |]
  else begin
    let rates = dense_rates t in
    let eliminated_exit = Array.make n 0. in
    for k = n - 1 downto 1 do
      let total = ref 0. in
      for j = 0 to k - 1 do
        total := !total +. rates.(k).(j)
      done;
      if not (!total > 0.) then
        failwith "Ctmc.solve_gth: reducible chain (no path down from a state)";
      eliminated_exit.(k) <- !total;
      for i = 0 to k - 1 do
        let rate_ik = rates.(i).(k) in
        if rate_ik > 0. then begin
          let scale = rate_ik /. !total in
          for j = 0 to k - 1 do
            if j <> i then rates.(i).(j) <- rates.(i).(j) +. (scale *. rates.(k).(j))
          done
        end
      done
    done;
    let pi = Array.make n 0. in
    pi.(0) <- 1.;
    for k = 1 to n - 1 do
      let inflow = ref 0. in
      for i = 0 to k - 1 do
        inflow := !inflow +. (pi.(i) *. rates.(i).(k))
      done;
      pi.(k) <- !inflow /. eliminated_exit.(k)
    done;
    let total = Crossbar_numerics.Kahan.sum pi in
    Array.map (fun p -> p /. total) pi
  end

let normalise pi =
  let total = Crossbar_numerics.Kahan.sum pi in
  Array.iteri (fun i p -> pi.(i) <- p /. total) pi

let max_exit_rate t = Array.fold_left Float.max 0. t.exit_rates

let solve_power ?(tolerance = 1e-13) ?(max_iterations = 1_000_000) t =
  let n = t.num_states in
  (* Uniformisation: P = I + Q / lambda with lambda > max exit rate. *)
  let lambda = max_exit_rate t *. 1.05 +. 1e-9 in
  let pi = Array.make n (1. /. float_of_int n) in
  let next = Array.make n 0. in
  let iteration = ref 0 in
  let delta = ref infinity in
  while !delta > tolerance && !iteration < max_iterations do
    Array.fill next 0 n 0.;
    for src = 0 to n - 1 do
      let stay = 1. -. (t.exit_rates.(src) /. lambda) in
      next.(src) <- next.(src) +. (pi.(src) *. stay);
      Array.iter
        (fun (dst, rate) -> next.(dst) <- next.(dst) +. (pi.(src) *. rate /. lambda))
        t.outgoing.(src)
    done;
    normalise next;
    delta := 0.;
    for i = 0 to n - 1 do
      delta := Float.max !delta (Float.abs (next.(i) -. pi.(i)));
      pi.(i) <- next.(i)
    done;
    incr iteration
  done;
  if !delta > tolerance then failwith "Ctmc.solve_power: did not converge";
  pi

let solve_gauss_seidel ?(tolerance = 1e-13) ?(max_iterations = 100_000) t =
  let n = t.num_states in
  (* Incoming adjacency for the balance equations
     pi_j = sum_i pi_i q(i,j) / exit_j. *)
  let incoming = Array.make n [] in
  Array.iteri
    (fun src successors ->
      Array.iter
        (fun (dst, rate) -> incoming.(dst) <- (src, rate) :: incoming.(dst))
        successors)
    t.outgoing;
  let pi = Array.make n (1. /. float_of_int n) in
  let iteration = ref 0 in
  let delta = ref infinity in
  while !delta > tolerance && !iteration < max_iterations do
    delta := 0.;
    for j = 0 to n - 1 do
      if t.exit_rates.(j) > 0. then begin
        let inflow =
          List.fold_left
            (fun acc (src, rate) -> acc +. (pi.(src) *. rate))
            0. incoming.(j)
        in
        let updated = inflow /. t.exit_rates.(j) in
        delta := Float.max !delta (Float.abs (updated -. pi.(j)));
        pi.(j) <- updated
      end
    done;
    normalise pi;
    incr iteration
  done;
  if !delta > tolerance then failwith "Ctmc.solve_gauss_seidel: did not converge";
  pi

let detailed_balance_violation t ~pi =
  let rates = dense_rates t in
  let n = t.num_states in
  let worst = ref 0. in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let forward = pi.(i) *. rates.(i).(j)
      and backward = pi.(j) *. rates.(j).(i) in
      let scale = Float.max forward backward in
      if scale > 0. then
        worst := Float.max !worst (Float.abs (forward -. backward) /. scale)
    done
  done;
  !worst
