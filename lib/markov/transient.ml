module Logspace = Crossbar_numerics.Logspace
module Prob = Crossbar_numerics.Prob

(* How far below zero an entry of the initial vector may sit before it is a
   caller error rather than rounding, and how far the total mass may drift
   from 1. *)
let negative_mass_tolerance = 1e-12
let total_mass_tolerance = 1e-9

let validate_initial chain initial =
  if Array.length initial <> Ctmc.num_states chain then
    invalid_arg "Transient: initial length mismatch";
  let total = ref 0. in
  Array.iter
    (fun p ->
      if p < -.negative_mass_tolerance then
        invalid_arg "Transient: negative initial mass";
      total := !total +. p)
    initial;
  if not (Prob.approx_eq ~rel:0. ~abs:total_mass_tolerance !total 1.) then
    invalid_arg "Transient: initial mass must be 1"

(* One step of the uniformised chain: v' = v P with
   P = I + Q / lambda. *)
let dtmc_step chain ~lambda v =
  let n = Ctmc.num_states chain in
  let next = Array.make n 0. in
  for src = 0 to n - 1 do
    if v.(src) > 0. then begin
      let stay = 1. -. (Ctmc.exit_rate chain src /. lambda) in
      next.(src) <- next.(src) +. (v.(src) *. stay);
      List.iter
        (fun (dst, rate) ->
          next.(dst) <- next.(dst) +. (v.(src) *. rate /. lambda))
        (Ctmc.transitions_from chain src)
    end
  done;
  next

let distribution ?(tolerance = 1e-12) chain ~initial ~time =
  if time < 0. then invalid_arg "Transient.distribution: negative time";
  validate_initial chain initial;
  if Prob.is_zero time then Array.copy initial
  else begin
    let n = Ctmc.num_states chain in
    let lambda =
      let max_exit = ref 0. in
      for i = 0 to n - 1 do
        max_exit := Float.max !max_exit (Ctmc.exit_rate chain i)
      done;
      (!max_exit *. 1.05) +. 1e-9
    in
    let mean = lambda *. time in
    (* Poisson(m; mean) weights via logs (robust for large mean). *)
    let log_mean = Logspace.log_checked mean in
    let log_weight m =
      (float_of_int m *. log_mean)
      -. mean
      -. Crossbar_numerics.Special.log_factorial m
    in
    let result = Array.make n 0. in
    let v = ref (Array.copy initial) in
    let covered = ref 0. in
    let m = ref 0 in
    let cap =
      int_of_float (mean +. (20. *. sqrt (mean +. 1.)) +. 200.)
    in
    while 1. -. !covered > tolerance && !m <= cap do
      let weight = Logspace.exp_log (log_weight !m) in
      if weight > 0. then begin
        covered := !covered +. weight;
        Array.iteri
          (fun i p -> result.(i) <- result.(i) +. (weight *. p))
          !v
      end;
      v := dtmc_step chain ~lambda !v;
      incr m
    done;
    (* Renormalise away the truncated tail. *)
    let total = Crossbar_numerics.Kahan.sum result in
    Array.map (fun p -> p /. total) result
  end

let expected_reward ?tolerance chain ~initial ~time ~reward =
  if Array.length reward <> Ctmc.num_states chain then
    invalid_arg "Transient.expected_reward: reward length mismatch";
  let pi = distribution ?tolerance chain ~initial ~time in
  Crossbar_numerics.Kahan.dot pi reward

let total_variation a b =
  let distance = ref 0. in
  Array.iteri (fun i p -> distance := !distance +. Float.abs (p -. b.(i))) a;
  0.5 *. !distance

let time_to_stationarity ?tolerance ?(distance = 1e-3) chain ~initial =
  validate_initial chain initial;
  let stationary = Ctmc.solve_gth chain in
  if total_variation initial stationary <= distance then 0.
  else begin
    let search_ceiling = 1e9 in
    let t = ref 1e-3 in
    while
      total_variation (distribution ?tolerance chain ~initial ~time:!t) stationary
      > distance
      && !t < search_ceiling
    do
      t := !t *. 2.
    done;
    !t
  end
