type t = {
  weights : int array;
  capacity : int;
  states : int array array; (* dense index -> state vector *)
  indices : (int array, int) Hashtbl.t; (* state vector -> dense index *)
  loads : int array; (* dense index -> occupied ports *)
}

let enumerate ~weights ~capacity =
  let r = Array.length weights in
  let states = ref [] in
  let count = ref 0 in
  let current = Array.make r 0 in
  (* Depth-first enumeration class by class; states come out in
     lexicographic order of (k_1, ..., k_R). *)
  let rec visit class_index remaining =
    if class_index = r then begin
      states := Array.copy current :: !states;
      incr count
    end
    else begin
      let weight = weights.(class_index) in
      let max_count = remaining / weight in
      for k = 0 to max_count do
        current.(class_index) <- k;
        visit (class_index + 1) (remaining - (k * weight))
      done;
      current.(class_index) <- 0
    end
  in
  visit 0 capacity;
  Array.of_list (List.rev !states)

let create ~weights ~capacity =
  if capacity < 0 then invalid_arg "State_space.create: negative capacity";
  Array.iter
    (fun w -> if w <= 0 then invalid_arg "State_space.create: weight <= 0")
    weights;
  let weights = Array.copy weights in
  let states = enumerate ~weights ~capacity in
  let indices = Hashtbl.create (Array.length states) in
  Array.iteri (fun i k -> Hashtbl.replace indices k i) states;
  let loads =
    Array.map
      (fun k ->
        let total = ref 0 in
        Array.iteri (fun r count -> total := !total + (count * weights.(r))) k;
        !total)
      states
  in
  { weights; capacity; states; indices; loads }

let size t = Array.length t.states
let dimension t = Array.length t.weights
let weights t = Array.copy t.weights
let capacity t = t.capacity

let state t i =
  if i < 0 || i >= size t then invalid_arg "State_space.state: out of range";
  Array.copy t.states.(i)

let index t k =
  match Hashtbl.find_opt t.indices k with
  | Some i -> i
  | None -> raise Not_found

let mem t k = Hashtbl.mem t.indices k
let load t i = t.loads.(i)
let iter t f = Array.iteri (fun i k -> f i k) t.states

let fold t ~init ~f =
  let acc = ref init in
  Array.iteri (fun i k -> acc := f !acc i k) t.states;
  !acc
