(** Finite lattice state spaces of the form
    [{ k in N^R | sum_r k_r * w_r <= capacity }].

    This is exactly the paper's [Gamma(N)] — occupancy vectors of [R]
    traffic classes where class [r] consumes [w_r = a_r] ports out of
    [min(N1, N2)].  States are enumerated once and given dense indices so
    that Markov-chain vectors can be stored in flat arrays. *)

type t

val create : weights:int array -> capacity:int -> t
(** [create ~weights ~capacity] enumerates all vectors [k] with
    [sum k.(r) * weights.(r) <= capacity].
    @raise Invalid_argument if a weight is [<= 0] or capacity is negative. *)

val size : t -> int
(** Number of states. *)

val dimension : t -> int
(** Number of classes [R]. *)

val weights : t -> int array
(** A copy of the weight vector. *)

val capacity : t -> int

val state : t -> int -> int array
(** [state t i] is a copy of the state with index [i].
    @raise Invalid_argument if [i] is out of range. *)

val index : t -> int array -> int
(** Dense index of a state vector.
    @raise Not_found if the vector is not in the space. *)

val mem : t -> int array -> bool

val load : t -> int -> int
(** [load t i] is [sum_r k_r * w_r] for state [i] — the number of busy
    input (equivalently output) ports. *)

val iter : t -> (int -> int array -> unit) -> unit
(** [iter t f] calls [f index state] for every state.  The state array is
    shared across calls — copy it if retained. *)

val fold : t -> init:'a -> f:('a -> int -> int array -> 'a) -> 'a
