(** Sparse continuous-time Markov chains and exact steady-state solvers.

    The crossbar model is solved analytically via its product form; this
    module solves the {e same} chain numerically, with no product-form
    assumption, so the two can be cross-checked (the paper's central
    soundness claim). *)

type t
(** A finite CTMC given by its off-diagonal transition rates. *)

val create : states:int -> transitions:(int * int * float) list -> t
(** [create ~states ~transitions] builds a chain on states
    [0 .. states-1] from [(source, destination, rate)] triples.  Rates for
    repeated [(source, destination)] pairs are summed; self-loops and
    non-positive rates are rejected.
    @raise Invalid_argument on malformed input. *)

val build : states:int -> f:(int -> (int * float) list) -> t
(** [build ~states ~f] constructs the chain from a per-state successor
    function. *)

val num_states : t -> int

val transitions_from : t -> int -> (int * float) list
(** Outgoing [(destination, rate)] pairs of a state. *)

val exit_rate : t -> int -> float
(** Total outgoing rate of a state. *)

val solve_gth : t -> float array
(** Exact stationary distribution by Grassmann–Taksar–Heyman state
    elimination: subtraction-free, numerically impeccable, [O(n^3)] time
    and [O(n^2)] space.  Requires an irreducible chain.
    @raise Failure if the chain is reducible. *)

val solve_power : ?tolerance:float -> ?max_iterations:int -> t -> float array
(** Stationary distribution by power iteration on the uniformised chain.
    @raise Failure if the iteration does not converge. *)

val solve_gauss_seidel :
  ?tolerance:float -> ?max_iterations:int -> t -> float array
(** Stationary distribution by Gauss–Seidel sweeps on the balance
    equations.
    @raise Failure if the iteration does not converge. *)

val detailed_balance_violation : t -> pi:float array -> float
(** Maximum relative violation of [pi_i q(i,j) = pi_j q(j,i)] over all
    transition pairs; ~0 iff the chain is reversible w.r.t. [pi]. *)
