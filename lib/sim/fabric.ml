module Variates = Crossbar_prng.Variates
module Special = Crossbar_numerics.Special

type t = {
  input_busy : bool array;
  output_busy : bool array;
  mutable busy_count : int; (* busy inputs = busy outputs in this model *)
}

type connection = {
  input_ports : int array;
  output_ports : int array;
  mutable live : bool;
}

let create ~inputs ~outputs =
  if inputs < 1 || outputs < 1 then invalid_arg "Fabric.create: dimensions";
  {
    input_busy = Array.make inputs false;
    output_busy = Array.make outputs false;
    busy_count = 0;
  }

let inputs t = Array.length t.input_busy
let outputs t = Array.length t.output_busy
let busy_inputs t = t.busy_count

let try_connect t rng ~bandwidth =
  if bandwidth < 1 then invalid_arg "Fabric.try_connect: bandwidth < 1";
  if bandwidth > inputs t || bandwidth > outputs t then None
  else begin
    let input_ports =
      Variates.distinct_ints rng ~bound:(inputs t) ~count:bandwidth
    in
    let output_ports =
      Variates.distinct_ints rng ~bound:(outputs t) ~count:bandwidth
    in
    let clear =
      Array.for_all (fun p -> not t.input_busy.(p)) input_ports
      && Array.for_all (fun p -> not t.output_busy.(p)) output_ports
    in
    if not clear then None
    else begin
      Array.iter (fun p -> t.input_busy.(p) <- true) input_ports;
      Array.iter (fun p -> t.output_busy.(p) <- true) output_ports;
      t.busy_count <- t.busy_count + bandwidth;
      Some { input_ports; output_ports; live = true }
    end
  end

let release t connection =
  if not connection.live then invalid_arg "Fabric.release: already released";
  connection.live <- false;
  Array.iter (fun p -> t.input_busy.(p) <- false) connection.input_ports;
  Array.iter (fun p -> t.output_busy.(p) <- false) connection.output_ports;
  t.busy_count <- t.busy_count - Array.length connection.input_ports

let availability t ~bandwidth =
  let free_in = inputs t - t.busy_count
  and free_out = outputs t - t.busy_count in
  Special.binomial free_in bandwidth
  *. Special.binomial free_out bandwidth
  /. (Special.binomial (inputs t) bandwidth
     *. Special.binomial (outputs t) bandwidth)
