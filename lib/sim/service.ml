module Rng = Crossbar_prng.Rng
module Variates = Crossbar_prng.Variates

type t =
  | Exponential
  | Deterministic
  | Erlang of int
  | Hyperexponential of float

let validate = function
  | Exponential | Deterministic -> ()
  | Erlang k -> if k < 1 then invalid_arg "Service: Erlang shape < 1"
  | Hyperexponential scv ->
      if not (scv > 1.) then invalid_arg "Service: hyperexponential scv <= 1"

(* Balanced two-branch hyperexponential matching a given mean and scv:
   p1 = (1 + sqrt((c2-1)/(c2+1)))/2, rate_i = 2 p_i / mean. *)
let hyper_branches ~scv ~mean =
  let p1 = 0.5 *. (1. +. sqrt ((scv -. 1.) /. (scv +. 1.))) in
  let p2 = 1. -. p1 in
  [| (p1, 2. *. p1 /. mean); (p2, 2. *. p2 /. mean) |]

let sample t rng ~mean =
  validate t;
  if not (mean > 0.) then invalid_arg "Service.sample: mean <= 0";
  match t with
  | Exponential -> Variates.exponential rng ~rate:(1. /. mean)
  | Deterministic -> mean
  | Erlang k ->
      Variates.erlang rng ~shape:k ~rate:(float_of_int k /. mean)
  | Hyperexponential scv ->
      Variates.hyperexponential rng ~branches:(hyper_branches ~scv ~mean)

let scv = function
  | Exponential -> 1.
  | Deterministic -> 0.
  | Erlang k -> 1. /. float_of_int k
  | Hyperexponential scv -> scv

let to_string = function
  | Exponential -> "exponential"
  | Deterministic -> "deterministic"
  | Erlang k -> Printf.sprintf "erlang-%d" k
  | Hyperexponential scv -> Printf.sprintf "hyperexponential-%g" scv

let of_string s =
  match String.lowercase_ascii s with
  | "exponential" | "exp" | "m" -> Ok Exponential
  | "deterministic" | "det" | "d" -> Ok Deterministic
  | s when String.length s > 7 && String.sub s 0 7 = "erlang-" -> (
      match int_of_string_opt (String.sub s 7 (String.length s - 7)) with
      | Some k when k >= 1 -> Ok (Erlang k)
      | _ -> Error "erlang-<k> with k >= 1 expected")
  | s when String.length s > 17 && String.sub s 0 17 = "hyperexponential-" -> (
      match float_of_string_opt (String.sub s 17 (String.length s - 17)) with
      | Some scv when scv > 1. -> Ok (Hyperexponential scv)
      | _ -> Error "hyperexponential-<scv> with scv > 1 expected")
  | other -> Error (Printf.sprintf "unknown service distribution %S" other)
