(** Binary min-heap of timestamped events — the simulator's future event
    list.

    Ties are broken by insertion order, so runs are deterministic given a
    seed. *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> time:float -> 'a -> unit
(** Schedule an event.  @raise Invalid_argument for NaN times. *)

val peek : 'a t -> (float * 'a) option
(** Earliest event without removing it. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event. *)

val size : 'a t -> int
val is_empty : 'a t -> bool
