(** Port-level crossbar fabric state.

    Tracks which of the [N1] input and [N2] output ports are held by live
    connections, accepts or blocks arriving port-set requests, and
    exposes the exact conditional availability used for low-variance
    (Rao–Blackwellised) time-congestion estimation. *)

type t

type connection
(** The ports held by one accepted connection. *)

val create : inputs:int -> outputs:int -> t

val inputs : t -> int
val outputs : t -> int

val busy_inputs : t -> int
(** Currently held input ports (equals busy outputs for this model). *)

val try_connect :
  t -> Crossbar_prng.Rng.t -> bandwidth:int -> connection option
(** A request for [bandwidth] inputs and outputs chooses its specific port
    sets uniformly at random (the model's uniform traffic pattern) and is
    accepted iff every chosen port is idle — blocked-calls-cleared
    otherwise. *)

val release : t -> connection -> unit
(** Frees the ports of an accepted connection.
    @raise Invalid_argument if the connection was already released. *)

val availability : t -> bandwidth:int -> float
(** Exact probability that a uniformly chosen port-set request of the
    given bandwidth would be accepted in the current state:
    [C(N1-b,a) C(N2-b,a) / (C(N1,a) C(N2,a))] with [b] busy ports.  Its
    time average is the paper's non-blocking probability [B_r]. *)
