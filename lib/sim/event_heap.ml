type 'a entry = { time : float; sequence : int; payload : 'a }

type 'a t = {
  mutable entries : 'a entry array; (* implicit binary heap in [0, size) *)
  mutable size : int;
  mutable next_sequence : int;
}

let create () = { entries = [||]; size = 0; next_sequence = 0 }

let earlier a b =
  (* lint: disable=R7 — exact tie feeds the sequence-number tie-break *)
  a.time < b.time || (a.time = b.time && a.sequence < b.sequence)

let grow heap =
  let capacity = max 16 (2 * Array.length heap.entries) in
  if capacity > Array.length heap.entries then begin
    let fresh = Array.make capacity heap.entries.(0) in
    Array.blit heap.entries 0 fresh 0 heap.size;
    heap.entries <- fresh
  end

let rec sift_up heap i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if earlier heap.entries.(i) heap.entries.(parent) then begin
      let tmp = heap.entries.(i) in
      heap.entries.(i) <- heap.entries.(parent);
      heap.entries.(parent) <- tmp;
      sift_up heap parent
    end
  end

let rec sift_down heap i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < heap.size && earlier heap.entries.(left) heap.entries.(!smallest)
  then smallest := left;
  if right < heap.size && earlier heap.entries.(right) heap.entries.(!smallest)
  then smallest := right;
  if !smallest <> i then begin
    let tmp = heap.entries.(i) in
    heap.entries.(i) <- heap.entries.(!smallest);
    heap.entries.(!smallest) <- tmp;
    sift_down heap !smallest
  end

let add heap ~time payload =
  if Float.is_nan time then invalid_arg "Event_heap.add: NaN time";
  let entry = { time; sequence = heap.next_sequence; payload } in
  heap.next_sequence <- heap.next_sequence + 1;
  if heap.size = 0 && Array.length heap.entries = 0 then
    heap.entries <- Array.make 16 entry;
  if heap.size = Array.length heap.entries then grow heap;
  heap.entries.(heap.size) <- entry;
  heap.size <- heap.size + 1;
  sift_up heap (heap.size - 1)

let peek heap =
  if heap.size = 0 then None
  else
    let e = heap.entries.(0) in
    Some (e.time, e.payload)

let pop heap =
  if heap.size = 0 then None
  else begin
    let e = heap.entries.(0) in
    heap.size <- heap.size - 1;
    if heap.size > 0 then begin
      heap.entries.(0) <- heap.entries.(heap.size);
      (* Alias the vacated slot to a live entry so the popped payload is
         not retained until a future [add] happens to overwrite it — a
         space leak over long simulation horizons. *)
      heap.entries.(heap.size) <- heap.entries.(0);
      sift_down heap 0
    end
    else
      (* Heap drained: drop the backing store entirely rather than leave
         the last payload pinned at index 0. *)
      heap.entries <- [||];
    Some (e.time, e.payload)
  end

let size heap = heap.size
let is_empty heap = heap.size = 0
