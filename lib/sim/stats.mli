(** Simulation output analysis: running moments, time-weighted averages
    and batch-means confidence intervals. *)

module Welford : sig
  (** Numerically stable running mean and variance. *)

  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  (** Unbiased sample variance; 0 for fewer than two observations. *)

  val std : t -> float
end

module Time_weighted : sig
  (** Integral of a piecewise-constant signal — concurrency, availability
      and similar state functions of a discrete-event simulation. *)

  type t

  val create : start:float -> value:float -> t
  val update : t -> time:float -> value:float -> unit
  (** Record that the signal changed to [value] at [time].
      @raise Invalid_argument if [time] moves backwards. *)

  val average : t -> upto:float -> float
  (** Time average of the signal over [start, upto].
      @raise Invalid_argument if [upto] precedes the last update. *)

  val reset : t -> time:float -> unit
  (** Restart integration at [time], keeping the current signal value
      (used at batch boundaries). *)
end

val confidence_interval :
  confidence:float -> float array -> float * float
(** [(mean, halfwidth)] of a batch-means estimate: Student-t interval over
    the batch averages.
    @raise Invalid_argument with fewer than two batches. *)
