module Model = Crossbar.Model
module Rng = Crossbar_prng.Rng
module Variates = Crossbar_prng.Variates
module Special = Crossbar_numerics.Special

type retry_policy = {
  probability : float;
  mean_delay : float;
  max_attempts : int;
}

type config = {
  model : Model.t;
  service : int -> Service.t;
  retry : retry_policy option;
  admission : Crossbar.Admission.t;
  warmup : float;
  horizon : float;
  batches : int;
  confidence : float;
  seed : int;
}

let default_config model =
  {
    model;
    service = (fun _ -> Service.Exponential);
    retry = None;
    admission = Crossbar.Admission.unrestricted;
    warmup = 1e3;
    horizon = 1e5;
    batches = 20;
    confidence = 0.95;
    seed = 42;
  }

type estimate = { point : float; halfwidth : float }

type class_result = {
  class_name : string;
  offered : int;
  accepted : int;
  retry_attempts : int;
  retry_successes : int;
  abandoned : int;
  time_congestion : estimate;
  call_congestion : estimate;
  concurrency : estimate;
}

type result = {
  per_class : class_result array;
  busy_ports : estimate;
  events : int;
  final_time : float;
}

(* Per-class mutable simulation state. *)
type class_state = {
  index : int;
  bandwidth : int;
  tuple_count : float; (* P(N1,a) P(N2,a): ordered port-tuple pairs *)
  service_shape : Service.t;
  mean_holding : float;
  mutable concurrent : int;
  mutable next_arrival : float;
  (* batch accumulators *)
  availability_integral : Stats.Time_weighted.t;
  concurrency_integral : Stats.Time_weighted.t;
  mutable batch_offered : int;
  mutable batch_blocked : int;
  (* whole-run batch records *)
  availability_batches : float list ref;
  concurrency_batches : float list ref;
  call_blocking_batches : float list ref;
  mutable total_offered : int;
  mutable total_accepted : int;
  mutable retry_attempts : int;
  mutable retry_successes : int;
  mutable abandoned : int;
}

(* Future events: connection teardowns and (optionally) retries of
   previously blocked requests. *)
type event =
  | Departure of int * Fabric.connection
  | Retry of { class_index : int; attempts_left : int }

let request_rate model state =
  (* Total request-stream rate in the current state: per-pair lambda times
     the number of ordered (input-tuple, output-tuple) combinations. *)
  state.tuple_count
  *. Model.arrival_rate model ~class_index:state.index
       ~concurrent:state.concurrent

let schedule_arrival model rng state ~now =
  let rate = request_rate model state in
  state.next_arrival <-
    (if rate > 0. then now +. Variates.exponential rng ~rate else infinity)

let run config =
  if not (config.horizon > 0.) then invalid_arg "Simulator.run: horizon <= 0";
  if not (config.warmup >= 0.) then invalid_arg "Simulator.run: warmup < 0";
  if config.batches < 2 then invalid_arg "Simulator.run: batches < 2";
  (match config.retry with
  | None -> ()
  | Some { probability; mean_delay; max_attempts } ->
      if not (probability >= 0. && probability <= 1.) then
        invalid_arg "Simulator.run: retry probability outside [0,1]";
      if not (mean_delay > 0.) then
        invalid_arg "Simulator.run: retry mean_delay <= 0";
      if max_attempts < 0 then
        invalid_arg "Simulator.run: negative retry attempts");
  let model = config.model in
  let rng = Rng.create ~seed:config.seed in
  let service_rng = Rng.split rng in
  let fabric =
    Fabric.create ~inputs:(Model.inputs model) ~outputs:(Model.outputs model)
  in
  let num_classes = Model.num_classes model in
  let states =
    Array.init num_classes (fun r ->
        let a = Model.bandwidth model r in
        {
          index = r;
          bandwidth = a;
          tuple_count =
            Special.permutations (Model.inputs model) a
            *. Special.permutations (Model.outputs model) a;
          service_shape = config.service r;
          mean_holding = 1. /. Model.service_rate model r;
          concurrent = 0;
          next_arrival = 0.;
          availability_integral =
            Stats.Time_weighted.create ~start:0. ~value:1.;
          concurrency_integral = Stats.Time_weighted.create ~start:0. ~value:0.;
          batch_offered = 0;
          batch_blocked = 0;
          availability_batches = ref [];
          concurrency_batches = ref [];
          call_blocking_batches = ref [];
          total_offered = 0;
          total_accepted = 0;
          retry_attempts = 0;
          retry_successes = 0;
          abandoned = 0;
        })
  in
  Array.iter (fun s -> Service.validate s.service_shape) states;
  let busy_integral = Stats.Time_weighted.create ~start:0. ~value:0. in
  let busy_batches = ref [] in
  let departures = Event_heap.create () in
  Array.iter (fun s -> schedule_arrival model rng s ~now:0.) states;
  let events = ref 0 in
  (* Availability is a function of the busy-port count only; refresh every
     class's integrand when it changes. *)
  let record_state_change ~now =
    Array.iter
      (fun s ->
        (* Policy-aware availability: a state where the policy refuses the
           class contributes nothing, matching Admission.solve. *)
        let admissible =
          Crossbar.Admission.admits config.admission ~class_index:s.index
            ~load:(Fabric.busy_inputs fabric) ~bandwidth:s.bandwidth
        in
        Stats.Time_weighted.update s.availability_integral ~time:now
          ~value:
            (if admissible then Fabric.availability fabric ~bandwidth:s.bandwidth
             else 0.);
        Stats.Time_weighted.update s.concurrency_integral ~time:now
          ~value:(float_of_int s.concurrent))
      states;
    Stats.Time_weighted.update busy_integral ~time:now
      ~value:(float_of_int (Fabric.busy_inputs fabric))
  in
  let measuring = ref false in
  let batch_start = ref config.warmup in
  let batch_length = config.horizon /. float_of_int config.batches in
  let close_batch ~upto =
    Array.iter
      (fun s ->
        s.availability_batches :=
          Stats.Time_weighted.average s.availability_integral ~upto
          :: !(s.availability_batches);
        s.concurrency_batches :=
          Stats.Time_weighted.average s.concurrency_integral ~upto
          :: !(s.concurrency_batches);
        let blocked_fraction =
          if s.batch_offered = 0 then 0.
          else float_of_int s.batch_blocked /. float_of_int s.batch_offered
        in
        s.call_blocking_batches :=
          blocked_fraction :: !(s.call_blocking_batches);
        s.batch_offered <- 0;
        s.batch_blocked <- 0;
        Stats.Time_weighted.reset s.availability_integral ~time:upto;
        Stats.Time_weighted.reset s.concurrency_integral ~time:upto)
      states;
    busy_batches := Stats.Time_weighted.average busy_integral ~upto :: !busy_batches;
    Stats.Time_weighted.reset busy_integral ~time:upto
  in
  let finish_time = config.warmup +. config.horizon in
  let now = ref 0. in
  let continue = ref true in
  while !continue do
    (* Next event: earliest departure or class arrival. *)
    let next_departure = Event_heap.peek departures in
    let arrival_class = ref (-1) and arrival_time = ref infinity in
    Array.iter
      (fun s ->
        if s.next_arrival < !arrival_time then begin
          arrival_time := s.next_arrival;
          arrival_class := s.index
        end)
      states;
    let departure_time =
      match next_departure with Some (t, _) -> t | None -> infinity
    in
    let event_time = Float.min departure_time !arrival_time in
    if event_time >= finish_time then begin
      (* Close the last batch at the horizon and stop. *)
      now := finish_time;
      if !measuring then close_batch ~upto:finish_time;
      continue := false
    end
    else begin
      now := event_time;
      incr events;
      (* Warmup -> measurement transition and batch boundaries. *)
      if (not !measuring) && !now >= config.warmup then begin
        measuring := true;
        Array.iter
          (fun s ->
            Stats.Time_weighted.reset s.availability_integral
              ~time:config.warmup;
            Stats.Time_weighted.reset s.concurrency_integral
              ~time:config.warmup;
            s.batch_offered <- 0;
            s.batch_blocked <- 0)
          states;
        Stats.Time_weighted.reset busy_integral ~time:config.warmup;
        batch_start := config.warmup
      end;
      while !measuring && !now >= !batch_start +. batch_length do
        close_batch ~upto:(!batch_start +. batch_length);
        batch_start := !batch_start +. batch_length
      done;
      (* Attempt to place a connection for class [s]; shared by fresh
         arrivals and retries. *)
      let admit s =
        if
          not
            (Crossbar.Admission.admits config.admission ~class_index:s.index
               ~load:(Fabric.busy_inputs fabric) ~bandwidth:s.bandwidth)
        then false
        else begin
          match Fabric.try_connect fabric rng ~bandwidth:s.bandwidth with
          | Some connection ->
              s.concurrent <- s.concurrent + 1;
              let holding =
                Service.sample s.service_shape service_rng ~mean:s.mean_holding
              in
              Event_heap.add departures
                ~time:(!now +. holding)
                (Departure (s.index, connection));
              (* The class arrival rate changed with k_r. *)
              schedule_arrival model rng s ~now:!now;
              record_state_change ~now:!now;
              true
          | None -> false
        end
      in
      let maybe_retry s ~attempts_left =
        match config.retry with
        | Some policy when attempts_left > 0 && Rng.float rng < policy.probability
          ->
            Event_heap.add departures
              ~time:
                (!now +. Variates.exponential rng ~rate:(1. /. policy.mean_delay))
              (Retry { class_index = s.index; attempts_left = attempts_left - 1 })
        | Some _ -> s.abandoned <- s.abandoned + 1
        | None -> ()
      in
      if departure_time <= !arrival_time then begin
        match Event_heap.pop departures with
        | None -> assert false
        | Some (_, Departure (class_index, connection)) ->
            let s = states.(class_index) in
            Fabric.release fabric connection;
            s.concurrent <- s.concurrent - 1;
            schedule_arrival model rng s ~now:!now;
            record_state_change ~now:!now
        | Some (_, Retry { class_index; attempts_left }) ->
            let s = states.(class_index) in
            s.retry_attempts <- s.retry_attempts + 1;
            if admit s then s.retry_successes <- s.retry_successes + 1
            else maybe_retry s ~attempts_left
      end
      else begin
        let s = states.(!arrival_class) in
        if !measuring then s.batch_offered <- s.batch_offered + 1;
        s.total_offered <- s.total_offered + 1;
        if admit s then s.total_accepted <- s.total_accepted + 1
        else begin
          if !measuring then s.batch_blocked <- s.batch_blocked + 1;
          let attempts_left =
            match config.retry with Some p -> p.max_attempts | None -> 0
          in
          maybe_retry s ~attempts_left;
          (* The fresh-arrival stream continues regardless. *)
          schedule_arrival model rng s ~now:!now
        end
      end
    end
  done;
  let interval values =
    let point, halfwidth =
      Stats.confidence_interval ~confidence:config.confidence
        (Array.of_list values)
    in
    { point; halfwidth }
  in
  let per_class =
    Array.map
      (fun s ->
        let availability = interval !(s.availability_batches) in
        {
          class_name = (Model.classes model).(s.index).Crossbar.Traffic.name;
          offered = s.total_offered;
          accepted = s.total_accepted;
          retry_attempts = s.retry_attempts;
          retry_successes = s.retry_successes;
          abandoned = s.abandoned;
          time_congestion =
            {
              point = 1. -. availability.point;
              halfwidth = availability.halfwidth;
            };
          call_congestion = interval !(s.call_blocking_batches);
          concurrency = interval !(s.concurrency_batches);
        })
      states
  in
  {
    per_class;
    busy_ports = interval !busy_batches;
    events = !events;
    final_time = !now;
  }

type replicated = {
  replications : int;
  rep_time_congestion : estimate array;
  rep_call_congestion : estimate array;
  rep_concurrency : estimate array;
}

let run_replications ?domains ~replications config =
  if replications < 2 then
    invalid_arg "Simulator.run_replications: replications < 2";
  (* Replications are independent and each [run] is deterministic in its
     seed, so fanning them across pool domains returns the exact array a
     sequential loop would: Pool.run only redistributes which domain
     computes which index. *)
  let runs =
    Crossbar_engine.Pool.run ?domains ~tasks:replications (fun i ->
        run { config with seed = config.seed + i })
  in
  let combine select =
    Array.init (Model.num_classes config.model) (fun r ->
        let points =
          Array.map (fun run -> (select run.per_class.(r)).point) runs
        in
        let point, halfwidth =
          Stats.confidence_interval ~confidence:config.confidence points
        in
        { point; halfwidth })
  in
  {
    replications;
    rep_time_congestion = combine (fun c -> c.time_congestion);
    rep_call_congestion = combine (fun c -> c.call_congestion);
    rep_concurrency = combine (fun c -> c.concurrency);
  }

let pp_estimate ppf e =
  Format.fprintf ppf "%.6g ± %.2g" e.point e.halfwidth

let pp_result ppf r =
  Format.fprintf ppf "@[<v>";
  Array.iter
    (fun c ->
      Format.fprintf ppf
        "%-12s offered=%-9d time-congestion=%a call-congestion=%a E=%a@,"
        c.class_name c.offered pp_estimate c.time_congestion pp_estimate
        c.call_congestion pp_estimate c.concurrency)
    r.per_class;
  Format.fprintf ppf "busy ports %a; %d events to t=%.4g@]" pp_estimate
    r.busy_ports r.events r.final_time
