module Welford = struct
  type t = { mutable count : int; mutable mean : float; mutable m2 : float }

  let create () = { count = 0; mean = 0.; m2 = 0. }

  let add t x =
    t.count <- t.count + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let count t = t.count
  let mean t = t.mean

  let variance t =
    if t.count < 2 then 0.
    else
      (* Welford keeps m2 >= 0 analytically; clamp the tiny negative values
         cancellation can leave so [std] never returns NaN. *)
      Float.max 0. (t.m2 /. float_of_int (t.count - 1))

  let std t = sqrt (variance t)
end

module Time_weighted = struct
  type t = {
    mutable origin : float;
    mutable last_time : float;
    mutable value : float;
    mutable integral : float;
  }

  let create ~start ~value =
    { origin = start; last_time = start; value; integral = 0. }

  let update t ~time ~value =
    if time < t.last_time then
      invalid_arg "Time_weighted.update: time moved backwards";
    t.integral <- t.integral +. (t.value *. (time -. t.last_time));
    t.last_time <- time;
    t.value <- value

  let average t ~upto =
    if upto < t.last_time then
      invalid_arg "Time_weighted.average: upto precedes last update";
    let span = upto -. t.origin in
    (* upto >= last_time >= origin, so span is non-negative; an exactly
       empty window has no integral and the current value is the average. *)
    if Crossbar_numerics.Prob.is_zero span then t.value
    else (t.integral +. (t.value *. (upto -. t.last_time))) /. span

  let reset t ~time =
    if time < t.last_time then
      invalid_arg "Time_weighted.reset: time moved backwards";
    t.origin <- time;
    t.last_time <- time;
    t.integral <- 0.
end

let confidence_interval ~confidence batches =
  let n = Array.length batches in
  if n < 2 then invalid_arg "Stats.confidence_interval: need >= 2 batches";
  let w = Welford.create () in
  Array.iter (Welford.add w) batches;
  let mean = Welford.mean w in
  let standard_error = Welford.std w /. sqrt (float_of_int n) in
  let critical =
    Crossbar_numerics.Prob.student_t_critical ~confidence ~df:(n - 1)
  in
  (mean, critical *. standard_error)
