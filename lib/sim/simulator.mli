(** Discrete-event simulation of the asynchronous multi-rate crossbar.

    Simulates the physical switch — per-port occupancy, uniformly chosen
    port sets, asynchronous (unslotted) arrivals, blocked-calls-cleared —
    under the model's BPP state-dependent request streams, with arbitrary
    holding-time distributions.  This is the validation the paper lists
    as future work.

    Two congestion measures are reported, because they differ for
    state-dependent (non-Poisson) arrivals:

    - {e time congestion}: 1 minus the time-average probability that a
      random port set is free — this is the quantity the analytical
      [B_r] measures, estimated here in Rao–Blackwellised form;
    - {e call congestion}: the fraction of offered requests that were
      blocked — what a user of the switch experiences.  For Poisson
      classes PASTA makes the two coincide; for Bernoulli (Pascal)
      classes call congestion is lower (higher), exactly as in the
      classical Engset model. *)

type retry_policy = {
  probability : float; (** chance a blocked request tries again *)
  mean_delay : float; (** mean (exponential) pause before the retry *)
  max_attempts : int; (** retries per request beyond the first attempt *)
}
(** Departure from the model's blocked-calls-cleared assumption: real
    users redial.  Retries re-draw their port sets and add load, so
    congestion rises above the analytical prediction — an ablation of the
    modelling assumption (see the simulator tests). *)

type config = {
  model : Crossbar.Model.t;
  service : int -> Service.t;
      (** holding-time shape per class index (means come from the model) *)
  retry : retry_policy option; (** [None] = the paper's lost-calls model *)
  admission : Crossbar.Admission.t;
      (** admission policy applied before port selection
          ([Admission.unrestricted] = the paper's model) *)
  warmup : float; (** simulated time discarded before measuring *)
  horizon : float; (** measured simulated time *)
  batches : int; (** batch count for confidence intervals (>= 2) *)
  confidence : float; (** e.g. 0.95 *)
  seed : int;
}

val default_config : Crossbar.Model.t -> config
(** Exponential service, no retries, warmup [10^3], horizon [10^5], 20
    batches, 95% confidence, seed 42. *)

type estimate = {
  point : float;
  halfwidth : float; (** batch-means confidence halfwidth *)
}

type class_result = {
  class_name : string;
  offered : int; (** fresh requests generated (excluding retries) *)
  accepted : int; (** fresh requests admitted on their first attempt *)
  retry_attempts : int; (** retry attempts made (0 without a policy) *)
  retry_successes : int;
  abandoned : int;
      (** blocked requests that gave up (only counted under a retry
          policy) *)
  time_congestion : estimate;
  call_congestion : estimate;
      (** first-attempt blocking fraction, batch-means interval *)
  concurrency : estimate;
}

type result = {
  per_class : class_result array;
  busy_ports : estimate;
  events : int;
  final_time : float;
}

val run : config -> result
(** Runs one replication.  Deterministic in [config.seed].
    @raise Invalid_argument on nonsensical horizons or batch counts. *)

type replicated = {
  replications : int;
  rep_time_congestion : estimate array; (* per class *)
  rep_call_congestion : estimate array;
  rep_concurrency : estimate array;
}

val run_replications : ?domains:int -> replications:int -> config -> replicated
(** Independent-replications alternative to batch means: runs the
    simulation [replications] times with seeds [seed, seed+1, ...] and
    returns Student-t intervals over the replication estimates —
    preferable when within-run correlation is suspected.

    Replications fan out across [domains] OCaml domains (default
    {!Crossbar_engine.Pool.recommended_domains}); each replication is
    deterministic in its seed, so the result is bit-identical for every
    domain count, [~domains:1] included.
    @raise Invalid_argument if [replications < 2]. *)

val pp_result : Format.formatter -> result -> unit
