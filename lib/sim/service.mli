(** Holding-time distributions, parameterised by their mean.

    The product form is insensitive to the holding-time distribution
    (paper Section 2, citing Burman–Lehoczky–Lim); the simulator accepts
    any of these to demonstrate that property empirically. *)

type t =
  | Exponential  (** squared coefficient of variation 1 — the base model *)
  | Deterministic  (** scv 0 — smooth holding times *)
  | Erlang of int  (** sum of [k] exponential phases, scv [1/k] *)
  | Hyperexponential of float
      (** two balanced exponential branches with the given scv ([> 1]) *)

val validate : t -> unit
(** @raise Invalid_argument for [Erlang k] with [k < 1] or
    [Hyperexponential scv] with [scv <= 1]. *)

val sample : t -> Crossbar_prng.Rng.t -> mean:float -> float
(** A holding time with the given mean.
    @raise Invalid_argument if [mean <= 0] or the shape is invalid. *)

val scv : t -> float
(** Squared coefficient of variation (variance / mean^2). *)

val to_string : t -> string
val of_string : string -> (t, string) result
