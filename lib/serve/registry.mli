(** Named hot trees: the daemon's resident set of solved factor trees.

    Each entry pairs a model with its solved convolution lattice, keyed
    by a client-chosen name.  Storage is a
    {!Crossbar_engine.Cache.Memo} with optional LRU capacity: a bounded
    registry keeps the hot working set and silently evicts cold trees —
    a [delta]/read query naming an evicted tree gets an error and the
    client re-installs with [solve] (the registry cannot re-derive a
    model from a name).

    Evicted trees are not discarded: their lattices are parked and
    returned to the convolution arenas by {!recycle_evicted}, which the
    batcher calls between batches — so a capacity-bounded daemon under
    install churn recycles storage instead of growing the heap. *)

type entry = {
  model : Crossbar.Model.t;
  solved : Crossbar.Convolution.t;
}

type t

val create : ?capacity:int -> unit -> t
(** Unbounded by default; [~capacity:c] keeps at most [c] resident
    trees (LRU eviction, see {!Crossbar_engine.Cache.Memo.create}).
    @raise Invalid_argument if [capacity < 1]. *)

val install : t -> name:string -> Crossbar.Model.t -> entry * bool
(** [install t ~name model] solves [model] and stores it as [name],
    replacing any previous entry.  When the previous entry's model is
    delta-compatible (same switch shape and class count), the solve
    runs through {!Crossbar.Convolution.solve_delta} against it —
    bit-identical, [O(#changed log R)] combines — and the returned flag
    is [true]; a cold or shape-changing install performs a full build
    and returns [false].  Either warm path recycles the superseded
    tree's lattices into the convolution arenas (safe because the
    batcher shards requests per tree: nothing else reads the entry
    being replaced).
    @raise Failure as {!Crossbar.Convolution.solve}. *)

val find : t -> string -> entry option
(** Lookup by name, refreshing LRU recency; counts toward the
    registry's hit/miss statistics.  [None] means never installed — or
    evicted. *)

val replace : t -> name:string -> entry -> unit
(** Store a delta-updated entry under an existing (or new) name. *)

val recycle_evicted : t -> int
(** Drain the trees displaced by capacity pressure since the last call,
    returning each one's lattices to the convolution arenas via
    {!Crossbar.Convolution.recycle}; yields the number recycled.  Call
    only at a quiescent point — after batch workers have joined — since
    an in-flight query may still be reading a just-evicted tree.

    A parked tree whose name is resident again at drain time is dropped
    instead of recycled: an eviction that raced a concurrent
    install/delta of the same name leaves the parked pre-delta tree
    sharing nodes with the live reinstalled one, so recycling it would
    release live lattices.  Likewise only the newest parked generation
    of a name is recycled when the same name was displaced more than
    once between drains.  Dropped entries may leak a few lattices;
    they never corrupt the arenas. *)

val size : t -> int
(** Resident tree count. *)

val capacity : t -> int option
(** The bound given at {!create}; [None] when unbounded. *)

val stats_json : t -> Crossbar_engine.Json.t
(** [{"entries":..,"capacity":..,"hits":..,"misses":..,"evictions":..}]
    — the registry block of a [stats] response ([capacity] is [null]
    when unbounded). *)
