module Json = Crossbar_engine.Json
module Model = Crossbar.Model
module Traffic = Crossbar.Traffic
module Measures = Crossbar.Measures

type change = { class_index : int; alpha : float option; beta : float option }

type query =
  | Solve of { tree : string; model : Model.t }
  | Delta of { tree : string; changes : change list }
  | Blocking of { tree : string }
  | Shadow_costs of { tree : string; weights : float array }
  | Admit of { tree : string; class_index : int; weights : float array }
  | Stats
  | Shutdown

type request = { id : Json.t; query : query }

let ( let* ) = Result.bind

(* ---------- field accessors ---------- *)

let number_of_json = function
  | Json.Int i -> Some (float_of_int i)
  | Json.Float f -> Some f
  | Json.Null | Json.Bool _ | Json.String _ | Json.List _ | Json.Assoc _ ->
      None

let float_field json name =
  match Json.member name json with
  | None -> Error (Printf.sprintf "missing field %S" name)
  | Some v -> (
      match number_of_json v with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "field %S: expected a number" name))

let opt_float_field json name =
  match Json.member name json with
  | None -> Ok None
  | Some v -> (
      match number_of_json v with
      | Some f -> Ok (Some f)
      | None -> Error (Printf.sprintf "field %S: expected a number" name))

let int_field json name =
  match Json.member name json with
  | Some (Json.Int i) -> Ok i
  | Some _ -> Error (Printf.sprintf "field %S: expected an integer" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let string_field json name =
  match Json.member name json with
  | Some (Json.String s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field %S: expected a string" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let list_field json name =
  match Json.member name json with
  | Some (Json.List items) -> Ok items
  | Some _ -> Error (Printf.sprintf "field %S: expected a list" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let weights_field json =
  let* items = list_field json "weights" in
  let* weights =
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        match number_of_json item with
        | Some f -> Ok (f :: acc)
        | None -> Error "field \"weights\": expected a list of numbers")
      (Ok []) items
  in
  Ok (Array.of_list (List.rev weights))

(* ---------- model ---------- *)

let class_to_json (c : Traffic.t) =
  Json.Assoc
    [
      ("name", Json.String c.Traffic.name);
      ("bandwidth", Json.Int c.Traffic.bandwidth);
      ("alpha", Json.Float c.Traffic.alpha);
      ("beta", Json.Float c.Traffic.beta);
      ("mu", Json.Float c.Traffic.service_rate);
    ]

let class_of_json json =
  let* name = string_field json "name" in
  let* bandwidth = int_field json "bandwidth" in
  let* alpha = float_field json "alpha" in
  let* beta = opt_float_field json "beta" in
  let beta = Option.value ~default:0. beta in
  let* mu = float_field json "mu" in
  match
    Traffic.create ~name ~bandwidth ~alpha ~beta ~service_rate:mu ()
  with
  | c -> Ok c
  | exception Invalid_argument message ->
      Error (Printf.sprintf "class %S: %s" name message)

let model_to_json model =
  Json.Assoc
    [
      ("inputs", Json.Int (Model.inputs model));
      ("outputs", Json.Int (Model.outputs model));
      ( "classes",
        Json.List
          (Array.to_list (Array.map class_to_json (Model.classes model))) );
    ]

let model_of_json json =
  let* inputs = int_field json "inputs" in
  let* outputs = int_field json "outputs" in
  let* class_items = list_field json "classes" in
  let* classes =
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        let* c = class_of_json item in
        Ok (c :: acc))
      (Ok []) class_items
  in
  match Model.create ~inputs ~outputs ~classes:(List.rev classes) with
  | model -> Ok model
  | exception Invalid_argument message -> Error message

(* ---------- requests ---------- *)

let op_name = function
  | Solve _ -> "solve"
  | Delta _ -> "delta"
  | Blocking _ -> "blocking"
  | Shadow_costs _ -> "shadow_costs"
  | Admit _ -> "admit"
  | Stats -> "stats"
  | Shutdown -> "shutdown"

let tree_name = function
  | Solve { tree; _ }
  | Delta { tree; _ }
  | Blocking { tree }
  | Shadow_costs { tree; _ }
  | Admit { tree; _ } ->
      Some tree
  | Stats | Shutdown -> None

let change_of_json json =
  let* class_index = int_field json "class" in
  let* alpha = opt_float_field json "alpha" in
  let* beta = opt_float_field json "beta" in
  match (alpha, beta) with
  | None, None ->
      Error "change: at least one of \"alpha\"/\"beta\" is required"
  | _ -> Ok { class_index; alpha; beta }

let change_to_json { class_index; alpha; beta } =
  Json.Assoc
    (("class", Json.Int class_index)
    :: (match alpha with Some a -> [ ("alpha", Json.Float a) ] | None -> [])
    @ match beta with Some b -> [ ("beta", Json.Float b) ] | None -> [])

let request_of_json json =
  let* id =
    match Json.member "id" json with
    | Some id -> Ok id
    | None -> Error "missing field \"id\""
  in
  let* op = string_field json "op" in
  let tree () = string_field json "tree" in
  let* query =
    match op with
    | "solve" ->
        let* tree = tree () in
        let* model_json =
          match Json.member "model" json with
          | Some m -> Ok m
          | None -> Error "missing field \"model\""
        in
        let* model = model_of_json model_json in
        Ok (Solve { tree; model })
    | "delta" ->
        let* tree = tree () in
        let* items = list_field json "changes" in
        let* changes =
          List.fold_left
            (fun acc item ->
              let* acc = acc in
              let* c = change_of_json item in
              Ok (c :: acc))
            (Ok []) items
        in
        (match changes with
        | [] -> Error "field \"changes\": must be non-empty"
        | _ -> Ok (Delta { tree; changes = List.rev changes }))
    | "blocking" ->
        let* tree = tree () in
        Ok (Blocking { tree })
    | "shadow_costs" ->
        let* tree = tree () in
        let* weights = weights_field json in
        Ok (Shadow_costs { tree; weights })
    | "admit" ->
        let* tree = tree () in
        let* class_index = int_field json "class" in
        let* weights = weights_field json in
        Ok (Admit { tree; class_index; weights })
    | "stats" -> Ok Stats
    | "shutdown" -> Ok Shutdown
    | other -> Error (Printf.sprintf "unknown op %S" other)
  in
  Ok { id; query }

let request_of_line line =
  match Json.of_string line with
  | Error message -> Error (Printf.sprintf "malformed JSON: %s" message)
  | Ok json -> request_of_json json

let request_to_json { id; query } =
  let base = [ ("id", id); ("op", Json.String (op_name query)) ] in
  let fields =
    match query with
    | Solve { tree; model } ->
        [ ("tree", Json.String tree); ("model", model_to_json model) ]
    | Delta { tree; changes } ->
        [
          ("tree", Json.String tree);
          ("changes", Json.List (List.map change_to_json changes));
        ]
    | Blocking { tree } -> [ ("tree", Json.String tree) ]
    | Shadow_costs { tree; weights } ->
        [
          ("tree", Json.String tree);
          ( "weights",
            Json.List
              (Array.to_list (Array.map (fun w -> Json.Float w) weights)) );
        ]
    | Admit { tree; class_index; weights } ->
        [
          ("tree", Json.String tree);
          ("class", Json.Int class_index);
          ( "weights",
            Json.List
              (Array.to_list (Array.map (fun w -> Json.Float w) weights)) );
        ]
    | Stats | Shutdown -> []
  in
  Json.Assoc (base @ fields)

let request_to_line request = Json.to_string (request_to_json request)

(* ---------- responses ---------- *)

let measures_to_json (m : Measures.t) =
  Json.Assoc
    [
      ("busy_ports", Json.Float m.Measures.busy_ports);
      ("input_utilization", Json.Float m.Measures.input_utilization);
      ("output_utilization", Json.Float m.Measures.output_utilization);
      ( "per_class",
        Json.List
          (Array.to_list
             (Array.map
                (fun (c : Measures.per_class) ->
                  Json.Assoc
                    [
                      ("name", Json.String c.Measures.name);
                      ("bandwidth", Json.Int c.Measures.bandwidth);
                      ("offered_load", Json.Float c.Measures.offered_load);
                      ("non_blocking", Json.Float c.Measures.non_blocking);
                      ("blocking", Json.Float c.Measures.blocking);
                      ("concurrency", Json.Float c.Measures.concurrency);
                      ("throughput", Json.Float c.Measures.throughput);
                    ])
                m.Measures.per_class)) );
    ]

let ok_response ~id ~op fields =
  Json.Assoc
    ([ ("id", id); ("ok", Json.Bool true); ("op", Json.String op) ] @ fields)

let error_response ~id message =
  Json.Assoc
    [ ("id", id); ("ok", Json.Bool false); ("error", Json.String message) ]

let response_to_line = Json.to_string
