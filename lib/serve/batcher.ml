module Json = Crossbar_engine.Json
module Pool = Crossbar_engine.Pool
module Clock = Crossbar_engine.Clock
module Telemetry = Crossbar_engine.Telemetry
module Model = Crossbar.Model
module Traffic = Crossbar.Traffic
module Convolution = Crossbar.Convolution
module Solver = Crossbar.Solver
module Measures = Crossbar.Measures
module Revenue = Crossbar.Revenue

type outcome = { responses : Json.t array; shutdown : bool }

(* ---------- per-query handlers ---------- *)

(* Solver preconditions surface as Invalid_argument/Failure; both are
   the client's problem, not the daemon's. *)
let guard f =
  match f () with
  | response -> response
  | exception Invalid_argument message -> Error message
  | exception Failure message -> Error message

let unknown_tree tree =
  Error (Printf.sprintf "unknown tree %S (never installed, or evicted)" tree)

let apply_change model (c : Protocol.change) =
  if c.Protocol.class_index < 0 || c.Protocol.class_index >= Model.num_classes model
  then
    invalid_arg
      (Printf.sprintf "change: class %d out of range (model has %d classes)"
         c.Protocol.class_index (Model.num_classes model))
  else
    Model.map_class model c.Protocol.class_index (fun traffic ->
        let traffic =
          match c.Protocol.alpha with
          | Some alpha -> Traffic.with_alpha traffic alpha
          | None -> traffic
        in
        match c.Protocol.beta with
        | Some beta -> Traffic.with_beta traffic beta
        | None -> traffic)

let solved_fields ~tree ~from_hot (entry : Registry.entry) =
  let solution = Solver.solution_of_convolution entry.Registry.solved in
  [
    ("tree", Json.String tree);
    ("from_hot", Json.Bool from_hot);
    ("tree_combines", Json.Int solution.Solver.tree_combines);
    ("banded_combines", Json.Int solution.Solver.banded_combines);
    ("log_g", Json.Float solution.Solver.log_normalization);
    ("measures", Protocol.measures_to_json solution.Solver.measures);
  ]

let handle_solve registry ~tree model =
  guard (fun () ->
      let entry, from_hot = Registry.install registry ~name:tree model in
      Ok (solved_fields ~tree ~from_hot entry, Some (entry, from_hot)))

let handle_delta registry ~tree changes =
  match Registry.find registry tree with
  | None -> unknown_tree tree
  | Some { Registry.model; solved } ->
      guard (fun () ->
          let model' = List.fold_left apply_change model changes in
          (* [Registry.replace] below drops the previous tree, and
             requests for one tree are sharded onto a single worker, so
             the update may recycle the replaced nodes into this
             domain's arena. *)
          let solved' =
            Convolution.solve_delta ~recycle:true ~previous:solved model'
          in
          let entry = { Registry.model = model'; solved = solved' } in
          Registry.replace registry ~name:tree entry;
          let changed =
            match Model.class_delta model model' with
            | Some indices -> indices
            | None -> []
          in
          Ok
            ( solved_fields ~tree ~from_hot:true entry
              @ [
                  ( "changed_classes",
                    Json.List (List.map (fun i -> Json.Int i) changed) );
                ],
              Some (entry, true) ))

let handle_blocking registry ~tree =
  match Registry.find registry tree with
  | None -> unknown_tree tree
  | Some ({ Registry.solved; _ } as entry) ->
      guard (fun () ->
          let measures = Convolution.measures solved in
          let classes =
            Array.to_list
              (Array.map
                 (fun (c : Measures.per_class) ->
                   Json.Assoc
                     [
                       ("name", Json.String c.Measures.name);
                       ("blocking", Json.Float c.Measures.blocking);
                       ("non_blocking", Json.Float c.Measures.non_blocking);
                     ])
                 measures.Measures.per_class)
          in
          Ok
            ( [ ("tree", Json.String tree); ("classes", Json.List classes) ],
              Some (entry, true) ))

let shadow_costs_of entry ~weights =
  let { Registry.model; solved } = entry in
  let costs = Revenue.shadow_costs ~solved model ~weights in
  let revenue = Measures.revenue (Convolution.measures solved) ~weights in
  (costs, revenue)

let handle_shadow_costs registry ~tree ~weights =
  match Registry.find registry tree with
  | None -> unknown_tree tree
  | Some entry ->
      guard (fun () ->
          let costs, revenue = shadow_costs_of entry ~weights in
          Ok
            ( [
                ("tree", Json.String tree);
                ("revenue", Json.Float revenue);
                ( "shadow_costs",
                  Json.List
                    (Array.to_list
                       (Array.map (fun d -> Json.Float d) costs)) );
              ],
              Some (entry, true) ))

let handle_admit registry ~tree ~class_index ~weights =
  match Registry.find registry tree with
  | None -> unknown_tree tree
  | Some entry ->
      guard (fun () ->
          if
            class_index < 0
            || class_index >= Model.num_classes entry.Registry.model
          then
            invalid_arg
              (Printf.sprintf "admit: class %d out of range (model has %d \
                               classes)"
                 class_index
                 (Model.num_classes entry.Registry.model))
          else begin
            let costs, _ = shadow_costs_of entry ~weights in
            let weight = weights.(class_index) in
            let shadow = costs.(class_index) in
            (* Revenue-positive admission (paper Section 4): accept a
               class-r request iff the revenue it earns covers the
               revenue its port usage displaces. *)
            Ok
              ( [
                  ("tree", Json.String tree);
                  ("class", Json.Int class_index);
                  ("admit", Json.Bool (weight >= shadow));
                  ("weight", Json.Float weight);
                  ("shadow_cost", Json.Float shadow);
                  ("net_gain", Json.Float (weight -. shadow));
                ],
                Some (entry, true) )
          end)

let stats_fields ~registry ~telemetry ~domains =
  (* One consistent telemetry snapshot, minus the unbounded per-solve
     record list (a long-running daemon would make it enormous). *)
  let summary =
    match Telemetry.to_json telemetry with
    | Json.Assoc fields ->
        Json.Assoc
          (List.filter (fun (key, _) -> not (String.equal key "records")) fields)
    | other -> other
  in
  [
    ("telemetry", summary);
    ("registry", Registry.stats_json registry);
    ("domains", Json.Int domains);
  ]

(* ---------- execution ---------- *)

let handle ~registry ~telemetry ~domains (request : Protocol.request) =
  let started = Clock.now () in
  let op = Protocol.op_name request.Protocol.query in
  let tree = Protocol.tree_name request.Protocol.query in
  let outcome =
    match request.Protocol.query with
    | Protocol.Solve { tree; model } -> handle_solve registry ~tree model
    | Protocol.Delta { tree; changes } -> handle_delta registry ~tree changes
    | Protocol.Blocking { tree } -> handle_blocking registry ~tree
    | Protocol.Shadow_costs { tree; weights } ->
        handle_shadow_costs registry ~tree ~weights
    | Protocol.Admit { tree; class_index; weights } ->
        handle_admit registry ~tree ~class_index ~weights
    | Protocol.Stats -> Ok (stats_fields ~registry ~telemetry ~domains, None)
    | Protocol.Shutdown -> Ok ([], None)
  in
  let response =
    match outcome with
    | Ok (fields, _) -> Protocol.ok_response ~id:request.Protocol.id ~op fields
    | Error message -> Protocol.error_response ~id:request.Protocol.id message
  in
  let solved =
    match outcome with Ok (_, solved) -> solved | Error _ -> None
  in
  let label = match tree with Some t -> op ^ ":" ^ t | None -> op in
  let record =
    match solved with
    | Some ({ Registry.solved; _ }, from_hot) ->
        let solution = Solver.solution_of_convolution solved in
        {
          Telemetry.label;
          algorithm = Solver.algorithm_to_string solution.Solver.algorithm;
          wall_seconds = Clock.elapsed_since started;
          lattice_cells = solution.Solver.lattice_cells;
          rescales = solution.Solver.rescales;
          (* Reads off a hot tree do no combine work; only solve/delta
             actually ran the recurrence this request. *)
          tree_combines =
            (match request.Protocol.query with
            | Protocol.Solve _ | Protocol.Delta _ ->
                solution.Solver.tree_combines
            | _ -> 0);
          banded_combines =
            (match request.Protocol.query with
            | Protocol.Solve _ | Protocol.Delta _ ->
                solution.Solver.banded_combines
            | _ -> 0);
          from_cache =
            (match request.Protocol.query with
            | Protocol.Solve _ | Protocol.Delta _ -> false
            | _ -> true);
          from_incremental =
            (match request.Protocol.query with
            | Protocol.Solve _ | Protocol.Delta _ -> from_hot
            | _ -> false);
        }
    | None ->
        {
          Telemetry.label;
          algorithm = "serve";
          wall_seconds = Clock.elapsed_since started;
          lattice_cells = 0;
          rescales = 0;
          tree_combines = 0;
          banded_combines = 0;
          from_cache = false;
          from_incremental = false;
        }
  in
  Telemetry.record telemetry record;
  response

let execute ?domains ~registry ~telemetry (requests : Protocol.request array) =
  let n = Array.length requests in
  let width =
    match domains with Some d -> d | None -> Pool.recommended_domains ()
  in
  let responses = Array.make n Json.Null in
  (* Group request indices by target tree, arrival order preserved
     within each tree.  Stats/shutdown have no tree; they run in the
     caller's domain after the tree groups complete, so a stats
     response reflects the batch it arrived with. *)
  let by_tree : (string, int list) Hashtbl.t = Hashtbl.create 8 in
  let control = ref [] in
  Array.iteri
    (fun i request ->
      match Protocol.tree_name request.Protocol.query with
      | Some tree ->
          let tail =
            Option.value ~default:[] (Hashtbl.find_opt by_tree tree)
          in
          Hashtbl.replace by_tree tree (i :: tail)
      | None -> control := i :: !control)
    requests;
  let groups =
    Array.of_list
      (List.sort
         (fun (a, _) (b, _) -> String.compare a b)
         (Hashtbl.fold
            (fun tree indices acc -> (tree, List.rev indices) :: acc)
            by_tree []))
  in
  (* Per-tree worker sharding: each group walks its requests in arrival
     order on one pool worker; distinct trees run concurrently.  Results
     scatter back by request index, so responses are index-aligned no
     matter which domain served which tree. *)
  let group_responses =
    (* lint: guarded=groups,requests — both frozen before the pool starts *)
    Pool.run ~domains:width ~tasks:(Array.length groups) (fun g ->
        let _, indices = groups.(g) in
        List.map
          (fun i ->
            (i, handle ~registry ~telemetry ~domains:width requests.(i)))
          indices)
  in
  Array.iter
    (List.iter (fun (i, response) -> responses.(i) <- response))
    group_responses;
  let shutdown = ref false in
  List.iter
    (fun i ->
      (match requests.(i).Protocol.query with
      | Protocol.Shutdown -> shutdown := true
      | _ -> ());
      responses.(i) <- handle ~registry ~telemetry ~domains:width requests.(i))
    (List.rev !control);
  (* Quiescent point: the pool workers have joined, so trees evicted by
     capacity pressure during this batch have no remaining readers and
     their lattices can go back to the arenas. *)
  ignore (Registry.recycle_evicted registry : int);
  { responses; shutdown = !shutdown }

(* ---------- pipelined execution ---------- *)

module Pipeline = struct
  (* One worker domain, one batch in flight.  The server thread submits
     a batch and returns to its select loop; the worker executes it and
     pings a self-pipe byte, which the select loop watches alongside the
     client socket — reading the next batch overlaps serving the current
     one without threading callbacks through [execute]. *)

  type slot =
    | Empty  (** no batch submitted *)
    | Batch of Protocol.request array  (** submitted, not yet taken *)
    | Running  (** worker is executing *)
    | Result of outcome  (** finished; collect pending *)
    | Failed of exn  (** execute raised; collect re-raises *)
    | Quit  (** shutdown requested *)

  type shared = {
    lock : Mutex.t;
    cond : Condition.t;
    mutable slot : slot;
    notify_write : Unix.file_descr;
  }

  type t = {
    shared : shared;
    notify_read : Unix.file_descr;
    worker : unit Domain.t;
  }

  let rec ping fd bytes =
    match Unix.write fd bytes 0 1 with
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ping fd bytes

  let worker_loop ?domains ~registry ~telemetry shared =
    let bytes = Bytes.make 1 '\000' in
    let rec await () =
      match shared.slot with
      | Batch _ | Quit -> ()
      | Empty | Running | Result _ | Failed _ ->
          Condition.wait shared.cond shared.lock;
          await ()
    in
    let rec loop () =
      Mutex.lock shared.lock;
      await ();
      match shared.slot with
      | Quit -> Mutex.unlock shared.lock
      | Batch requests ->
          shared.slot <- Running;
          Mutex.unlock shared.lock;
          let finished =
            match execute ?domains ~registry ~telemetry requests with
            | outcome -> Result outcome
            | exception e -> Failed e
          in
          Mutex.lock shared.lock;
          shared.slot <- finished;
          (* Wake a [shutdown] waiting out this batch; the worker itself
             never waits while a slot it published is pending. *)
          Condition.signal shared.cond;
          Mutex.unlock shared.lock;
          (* Ping after the slot is published: the mutex hand-off above
             happens-before the select loop's read of the byte. *)
          ping shared.notify_write bytes;
          loop ()
      | Empty | Running | Result _ | Failed _ -> assert false
    in
    loop ()

  let start ?domains ~registry ~telemetry () =
    let notify_read, notify_write = Unix.pipe ~cloexec:true () in
    let shared =
      { lock = Mutex.create (); cond = Condition.create (); slot = Empty;
        notify_write }
    in
    (* Every [slot] access is under [lock]; the pipe byte only signals
       readiness, never carries data. *)
    let worker =
      (* lint: guarded=shared — slot hand-off is under shared.lock *)
      Domain.spawn (fun () -> worker_loop ?domains ~registry ~telemetry shared)
    in
    { shared; notify_read; worker }

  let descriptor t = t.notify_read

  let submit t requests =
    let shared = t.shared in
    Mutex.lock shared.lock;
    match shared.slot with
    | Empty ->
        shared.slot <- Batch requests;
        Condition.signal shared.cond;
        Mutex.unlock shared.lock
    | Batch _ | Running | Result _ | Failed _ | Quit ->
        Mutex.unlock shared.lock;
        invalid_arg "Batcher.Pipeline.submit: a batch is already in flight"

  let collect t =
    (* Drain the readiness byte first so a fresh [select] round blocks
       instead of spinning on a stale ping. *)
    let buffer = Bytes.create 1 in
    let rec drain () =
      match Unix.read t.notify_read buffer 0 1 with
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
    in
    drain ();
    let shared = t.shared in
    Mutex.lock shared.lock;
    match shared.slot with
    | Result outcome ->
        shared.slot <- Empty;
        Mutex.unlock shared.lock;
        outcome
    | Failed e ->
        shared.slot <- Empty;
        Mutex.unlock shared.lock;
        raise e
    | Empty | Batch _ | Running | Quit ->
        Mutex.unlock shared.lock;
        invalid_arg "Batcher.Pipeline.collect: no finished batch"

  let shutdown t =
    let shared = t.shared in
    Mutex.lock shared.lock;
    (* An executing batch cannot be interrupted — wait for the worker to
       publish its slot, then quit.  An unconsumed Batch/Result/Failed is
       discarded: shutdown is also the crash-cleanup path, where the
       server loop abandoned whatever was in flight, and a worker that
       never takes the batch (or a result nobody collects) must not keep
       the domain alive or leak the pipe. *)
    let rec settle () =
      match shared.slot with
      | Running ->
          Condition.wait shared.cond shared.lock;
          settle ()
      | Empty | Batch _ | Result _ | Failed _ | Quit -> ()
    in
    settle ();
    (match shared.slot with
    | Quit -> ()
    | Running -> assert false (* [settle] waited it out *)
    | Empty | Batch _ | Result _ | Failed _ ->
        shared.slot <- Quit;
        Condition.signal shared.cond);
    Mutex.unlock shared.lock;
    Domain.join t.worker;
    Unix.close t.notify_read;
    Unix.close shared.notify_write
end
