(** The crossbar_serve daemon loop.

    Serves the line-delimited JSON protocol ({!Protocol}, docs/SERVE.md)
    over a caller-supplied input/output pair — the CLI passes
    stdin/stdout — and, optionally, a Unix-domain socket accepting any
    number of concurrent clients.

    Batching: the loop blocks until at least one request is readable,
    then drains every complete line already buffered on any connection
    (up to [batch_limit]) into one batch and hands it to
    {!Batcher.execute}.  Under load, queries pile up behind the batch in
    flight and are served together off shared hot trees; an idle daemon
    answers single requests immediately.  Responses are written back to
    each request's own connection, in arrival order per connection.

    Pipelining (default): the batch executes on a {!Batcher.Pipeline}
    worker domain while this loop keeps reading and grouping the next
    batch, so socket I/O — reading and parsing requests, serializing
    and writing responses — overlaps solving.  Strictly one batch is
    in flight, and the loop writes a finished batch's responses before
    it can collect the next batch's — so the byte stream each
    connection sees is identical to sequential mode
    ([pipelined = false]), which serves each batch inline before
    reading again. *)

type config = {
  socket_path : string option;
      (** also serve a Unix-domain socket at this path (created at
          startup, unlinked on shutdown) *)
  capacity : int option;
      (** registry LRU capacity — resident hot trees ({!Registry.create}) *)
  domains : int option;
      (** batcher pool width (default
          {!Crossbar_engine.Pool.recommended_domains}) *)
  batch_limit : int;  (** max requests served as one batch *)
  pipelined : bool;
      (** execute batches on a {!Batcher.Pipeline} worker domain,
          overlapping the next batch's reads with the current batch's
          solves; [false] serves each batch inline (same responses,
          no overlap) *)
}

val default_config : config
(** No socket, unbounded registry, default pool width,
    [batch_limit = 256], pipelined. *)

val run :
  ?config:config ->
  input:Unix.file_descr ->
  output:Unix.file_descr ->
  unit ->
  unit
(** Serve until a [shutdown] request arrives, or until [input] reaches
    end-of-file with no socket configured and no socket client still
    connected.  Never raises on malformed input or solver errors (they
    become [ok:false] responses); socket clients that disconnect
    mid-response are dropped silently.
    @raise Invalid_argument if [config] is inconsistent
    ([batch_limit < 1], [capacity < 1], [domains < 1]).
    @raise Unix.Unix_error if the socket path cannot be bound. *)
