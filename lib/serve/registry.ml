module Json = Crossbar_engine.Json
module Memo = Crossbar_engine.Cache.Memo
module Model = Crossbar.Model
module Convolution = Crossbar.Convolution

type entry = { model : Model.t; solved : Convolution.t }
type t = { memo : entry Memo.t; capacity : int option }

let create ?capacity () = { memo = Memo.create ?capacity (); capacity }

let find t name = Memo.find t.memo name
let replace t ~name entry = Memo.set t.memo name entry

let install t ~name model =
  (* The lookup counts toward hit/miss statistics like any other: a
     warm install that reuses the resident tree is exactly the reuse
     the counters are meant to expose. *)
  let previous = Memo.find t.memo name in
  let solved, from_hot =
    match previous with
    | Some { solved = previous; _ }
      when Option.is_some (Model.class_delta (Convolution.model previous) model)
      ->
        (Convolution.solve_delta ~previous model, true)
    | Some _ | None -> (Convolution.solve model, false)
  in
  let entry = { model; solved } in
  Memo.set t.memo name entry;
  (entry, from_hot)

let size t = Memo.size t.memo
let capacity t = t.capacity

let stats_json t =
  Json.Assoc
    [
      ("entries", Json.Int (Memo.size t.memo));
      ( "capacity",
        match t.capacity with Some c -> Json.Int c | None -> Json.Null );
      ("hits", Json.Int (Memo.hits t.memo));
      ("misses", Json.Int (Memo.misses t.memo));
      ("evictions", Json.Int (Memo.evictions t.memo));
    ]
