module Json = Crossbar_engine.Json
module Memo = Crossbar_engine.Cache.Memo
module Model = Crossbar.Model
module Convolution = Crossbar.Convolution

type entry = { model : Model.t; solved : Convolution.t }

type t = {
  memo : entry Memo.t;
  capacity : int option;
  (* Capacity evictions are parked here (with their name) rather than
     recycled inline: the Memo callback fires on whichever domain
     triggered the displacement, possibly while batch workers still
     read the evicted tree.  [recycle_evicted] drains the list at a
     quiescent point, where the name decides whether the parked tree is
     actually dead (see below). *)
  evicted_lock : Mutex.t;
  evicted : (string * entry) list ref;
}

let create ?capacity () =
  let evicted_lock = Mutex.create () in
  let evicted = ref [] in
  let on_evict name entry =
    Mutex.lock evicted_lock;
    evicted := (name, entry) :: !evicted;
    Mutex.unlock evicted_lock
  in
  { memo = Memo.create ?capacity ~on_evict (); capacity; evicted_lock; evicted }

let recycle_evicted t =
  let drained =
    Mutex.lock t.evicted_lock;
    let drained = !(t.evicted) in
    t.evicted := [];
    Mutex.unlock t.evicted_lock;
    drained
  in
  (* An eviction can race a concurrent install/delta of the same name:
     the Memo displaces tree Y between another group's [find Y] and its
     [replace], so by drain time Y is resident again and the parked
     pre-delta tree shares unchanged nodes with the live one (and
     [solve_delta ~recycle:true] already released its superseded
     nodes).  Recycling it would push live and duplicate lattices into
     the arena free lists, corrupting later solves — so a parked entry
     is only recycled when its name is dead at drain time.  Same logic
     keeps only the newest parked entry per name ([drained] is
     newest-first): an older parked generation shares nodes with every
     newer one built from it by delta.  Dropped entries leak at worst
     (names shard trees — no cross-name sharing), never corrupt. *)
  let seen = Hashtbl.create 8 in
  List.fold_left
    (fun recycled (name, { solved; _ }) ->
      if Hashtbl.mem seen name then recycled
      else begin
        Hashtbl.add seen name ();
        if Memo.mem t.memo name then recycled
        else begin
          Convolution.recycle solved;
          recycled + 1
        end
      end)
    0 drained

let find t name = Memo.find t.memo name
let replace t ~name entry = Memo.set t.memo name entry

let install t ~name model =
  (* The lookup counts toward hit/miss statistics like any other: a
     warm install that reuses the resident tree is exactly the reuse
     the counters are meant to expose. *)
  let previous = Memo.find t.memo name in
  let solved, from_hot =
    match previous with
    | Some { solved = previous; _ }
      when Option.is_some (Model.class_delta (Convolution.model previous) model)
      ->
        (* [solve_delta ~recycle:true] returns the previous tree's
           superseded lattices to the arenas as it rebuilds; the old
           entry is dropped by [Memo.set] below, so nothing reads it
           again (names shard trees — no cross-name sharing). *)
        (Convolution.solve_delta ~recycle:true ~previous model, true)
    | Some { solved = previous; _ } ->
        (* Shape-changed reinstall: the resident tree is unreachable
           once replaced, so its lattices can seed the fresh solve. *)
        Convolution.recycle previous;
        (Convolution.solve model, false)
    | None -> (Convolution.solve model, false)
  in
  let entry = { model; solved } in
  Memo.set t.memo name entry;
  (entry, from_hot)

let size t = Memo.size t.memo
let capacity t = t.capacity

let stats_json t =
  Json.Assoc
    [
      ("entries", Json.Int (Memo.size t.memo));
      ( "capacity",
        match t.capacity with Some c -> Json.Int c | None -> Json.Null );
      ("hits", Json.Int (Memo.hits t.memo));
      ("misses", Json.Int (Memo.misses t.memo));
      ("evictions", Json.Int (Memo.evictions t.memo));
    ]
