module Json = Crossbar_engine.Json
module Memo = Crossbar_engine.Cache.Memo
module Model = Crossbar.Model
module Convolution = Crossbar.Convolution

type entry = { model : Model.t; solved : Convolution.t }

type t = {
  memo : entry Memo.t;
  capacity : int option;
  (* Capacity evictions are parked here rather than recycled inline:
     the Memo callback fires on whichever domain triggered the
     displacement, possibly while batch workers still read the evicted
     tree.  [recycle_evicted] drains the list at a quiescent point. *)
  evicted_lock : Mutex.t;
  evicted : entry list ref;
}

let create ?capacity () =
  let evicted_lock = Mutex.create () in
  let evicted = ref [] in
  let on_evict _name entry =
    Mutex.lock evicted_lock;
    evicted := entry :: !evicted;
    Mutex.unlock evicted_lock
  in
  { memo = Memo.create ?capacity ~on_evict (); capacity; evicted_lock; evicted }

let recycle_evicted t =
  let drained =
    Mutex.lock t.evicted_lock;
    let drained = !(t.evicted) in
    t.evicted := [];
    Mutex.unlock t.evicted_lock;
    drained
  in
  List.iter (fun { solved; _ } -> Convolution.recycle solved) drained;
  List.length drained

let find t name = Memo.find t.memo name
let replace t ~name entry = Memo.set t.memo name entry

let install t ~name model =
  (* The lookup counts toward hit/miss statistics like any other: a
     warm install that reuses the resident tree is exactly the reuse
     the counters are meant to expose. *)
  let previous = Memo.find t.memo name in
  let solved, from_hot =
    match previous with
    | Some { solved = previous; _ }
      when Option.is_some (Model.class_delta (Convolution.model previous) model)
      ->
        (* [solve_delta ~recycle:true] returns the previous tree's
           superseded lattices to the arenas as it rebuilds; the old
           entry is dropped by [Memo.set] below, so nothing reads it
           again (names shard trees — no cross-name sharing). *)
        (Convolution.solve_delta ~recycle:true ~previous model, true)
    | Some { solved = previous; _ } ->
        (* Shape-changed reinstall: the resident tree is unreachable
           once replaced, so its lattices can seed the fresh solve. *)
        Convolution.recycle previous;
        (Convolution.solve model, false)
    | None -> (Convolution.solve model, false)
  in
  let entry = { model; solved } in
  Memo.set t.memo name entry;
  (entry, from_hot)

let size t = Memo.size t.memo
let capacity t = t.capacity

let stats_json t =
  Json.Assoc
    [
      ("entries", Json.Int (Memo.size t.memo));
      ( "capacity",
        match t.capacity with Some c -> Json.Int c | None -> Json.Null );
      ("hits", Json.Int (Memo.hits t.memo));
      ("misses", Json.Int (Memo.misses t.memo));
      ("evictions", Json.Int (Memo.evictions t.memo));
    ]
