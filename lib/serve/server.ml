module Json = Crossbar_engine.Json
module Telemetry = Crossbar_engine.Telemetry

type config = {
  socket_path : string option;
  capacity : int option;
  domains : int option;
  batch_limit : int;
  pipelined : bool;
}

let default_config =
  {
    socket_path = None;
    capacity = None;
    domains = None;
    batch_limit = 256;
    pipelined = true;
  }

(* One input stream: the primary input or an accepted socket client.
   [carry] holds the partial line between reads. *)
type conn = {
  fd : Unix.file_descr;
  out : Unix.file_descr;
  mutable carry : string;
  mutable open_ : bool;
  primary : bool;  (** the input/output pair given to [run] *)
}

type item = Request of Protocol.request | Malformed of Json.t * string

(* Write the whole string; false if the peer is gone.  A client that
   disconnects mid-response is its own problem: the daemon drops the
   connection and keeps serving everyone else. *)
let write_all fd text =
  let bytes = Bytes.of_string text in
  let total = Bytes.length bytes in
  let rec loop offset =
    if offset >= total then true
    else
      match Unix.write fd bytes offset (total - offset) with
      | written -> loop (offset + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop offset
      | exception
          Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _)
        ->
          false
  in
  loop 0

let write_response conn response =
  if not (write_all conn.out (Protocol.response_to_line response ^ "\n")) then
    conn.open_ <- false

(* Split [conn.carry ^ chunk] into complete lines, keeping the trailing
   partial line (if any) as the new carry. *)
let push_chunk conn chunk =
  let data = conn.carry ^ chunk in
  let pieces = String.split_on_char '\n' data in
  let rec split acc = function
    | [] -> (List.rev acc, "")
    | [ last ] -> (List.rev acc, last)
    | piece :: rest -> split (piece :: acc) rest
  in
  let lines, carry = split [] pieces in
  conn.carry <- carry;
  List.filter (fun line -> not (String.equal (String.trim line) "")) lines

let parse_line line =
  match Protocol.request_of_line line with
  | Ok request -> Request request
  | Error message ->
      (* Salvage the id when the line was at least well-formed JSON, so
         the client can correlate the error with its request. *)
      let id =
        match Json.of_string line with
        | Ok json -> (
            match Json.member "id" json with Some id -> id | None -> Json.Null)
        | Error _ -> Json.Null
      in
      Malformed (id, message)

(* Read whatever is available; returns parsed items in arrival order.
   On EOF the remaining carry (a final unterminated line) is parsed
   too, and the connection is marked closed. *)
let read_available conn =
  let chunk = Bytes.create 65536 in
  match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
  | 0 ->
      conn.open_ <- false;
      let leftover = String.trim conn.carry in
      conn.carry <- "";
      if String.equal leftover "" then [] else [ parse_line leftover ]
  | n -> List.map parse_line (push_chunk conn (Bytes.sub_string chunk 0 n))
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      conn.open_ <- false;
      []

let listen_socket path =
  (* A stale socket file from a previous run would make bind fail. *)
  (match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
  | _ -> ()
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 16;
  fd

let validate config =
  if config.batch_limit < 1 then
    invalid_arg
      (Printf.sprintf "Server.run: batch_limit=%d < 1" config.batch_limit);
  (match config.capacity with
  | Some c when c < 1 ->
      invalid_arg (Printf.sprintf "Server.run: capacity=%d < 1" c)
  | Some _ | None -> ());
  match config.domains with
  | Some d when d < 1 ->
      invalid_arg (Printf.sprintf "Server.run: domains=%d < 1" d)
  | Some _ | None -> ()

let run ?(config = default_config) ~input ~output () =
  validate config;
  let registry = Registry.create ?capacity:config.capacity () in
  let telemetry = Telemetry.create () in
  let executor =
    if config.pipelined then
      Some (Batcher.Pipeline.start ?domains:config.domains ~registry ~telemetry ())
    else None
  in
  let pipeline_descriptor =
    Option.map Batcher.Pipeline.descriptor executor
  in
  let is_pipeline fd =
    match pipeline_descriptor with Some p -> p = fd | None -> false
  in
  (* The batch the pipeline worker is currently executing, kept so its
     responses can be routed back to each request's connection. *)
  let inflight : (conn * item) array option ref = ref None in
  let listen =
    Option.map (fun path -> (listen_socket path, path)) config.socket_path
  in
  let primary =
    { fd = input; out = output; carry = ""; open_ = true; primary = true }
  in
  let conns = ref [ primary ] in
  let pending : (conn * item) Queue.t = Queue.create () in
  (* Pop the oldest [batch_limit] pending items as one batch. *)
  let take_batch () =
    let batch = ref [] in
    while
      List.length !batch < config.batch_limit && not (Queue.is_empty pending)
    do
      batch := Queue.pop pending :: !batch
    done;
    Array.of_list (List.rev !batch)
  in
  (* The well-formed requests of a batch, each with its batch index —
     deterministic in the batch, so dispatch and respond can both
     derive it. *)
  let requests_of batch =
    let request_indices =
      Array.to_list
        (Array.mapi
           (fun i (_, item) ->
             match item with
             | Request r -> Some (i, r)
             | Malformed _ -> None)
           batch)
    in
    List.filter_map Fun.id request_indices
  in
  let respond batch (outcome : Batcher.outcome) =
    let by_batch_index = Hashtbl.create 16 in
    List.iteri
      (fun k (i, _) ->
        Hashtbl.replace by_batch_index i outcome.Batcher.responses.(k))
      (requests_of batch);
    Array.iteri
      (fun i (conn, item) ->
        let response =
          match item with
          | Malformed (id, message) -> Protocol.error_response ~id message
          | Request _ -> Hashtbl.find by_batch_index i
        in
        write_response conn response)
      batch;
    outcome.Batcher.shutdown
  in
  (* Serve a batch synchronously on this domain (the sequential mode,
     and the drain path once every input has closed). *)
  let flush_batch () =
    let batch = take_batch () in
    let requests = Array.of_list (List.map snd (requests_of batch)) in
    let outcome =
      Batcher.execute ?domains:config.domains ~registry ~telemetry requests
    in
    respond batch outcome
  in
  let dispatch pipeline =
    let batch = take_batch () in
    let requests = Array.of_list (List.map snd (requests_of batch)) in
    Batcher.Pipeline.submit pipeline requests;
    inflight := Some batch
  in
  let accept_client fd =
    match Unix.accept fd with
    | client, _ ->
        conns :=
          !conns
          @ [ { fd = client; out = client; carry = ""; open_ = true;
                primary = false } ]
    | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) -> ()
  in
  (* Runs exactly once, as the [Fun.protect] finalizer around the loop:
     on the normal path every exit collects the pipeline's outcome
     first, and on an exception path [Pipeline.shutdown] itself waits
     out (and discards) whatever was in flight — either way the worker
     domain is joined and the pipe, listen socket and client fds are
     closed. *)
  let cleanup () =
    (match executor with
    | Some pipeline -> Batcher.Pipeline.shutdown pipeline
    | None -> ());
    (match listen with
    | Some (fd, path) ->
        Unix.close fd;
        (match Unix.unlink path with
        | () -> ()
        | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ())
    | None -> ());
    List.iter
      (fun conn -> if not conn.primary then Unix.close conn.fd)
      !conns
  in
  let rec loop () =
    (* Drop (and close) dead socket clients; the primary stream is never
       closed here — the caller owns its descriptors. *)
    let kept, dead = List.partition (fun c -> c.open_ || c.primary) !conns in
    List.iter (fun c -> Unix.close c.fd) dead;
    conns := kept;
    let live = List.filter (fun c -> c.open_) !conns in
    let watched =
      List.map (fun c -> c.fd) live
      @ (match listen with Some (fd, _) -> [ fd ] | None -> [])
      @
      match (pipeline_descriptor, !inflight) with
      | Some fd, Some _ -> [ fd ]
      | _ -> []
    in
    match watched with
    | [] ->
        (* Inputs exhausted, no socket to accept from, nothing in flight
           (the pipeline pipe is watched while a batch runs): drain
           synchronously and stop. *)
        if Queue.is_empty pending then ()
        else if flush_batch () then ()
        else loop ()
    | _ :: _ ->
        (* Block when idle or when a batch is in flight (nothing to do
           until input or the pipeline pipe wakes us); poll when a batch
           is queued and dispatchable, so every line that arrived while
           the previous batch was being read joins it. *)
        let timeout =
          if Queue.is_empty pending || Option.is_some !inflight then -1.0
          else 0.0
        in
        let readable, _, _ =
          match Unix.select watched [] [] timeout with
          | result -> result
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        in
        (match listen with
        | Some (fd, _) when List.memq fd readable -> accept_client fd
        | Some _ | None -> ());
        List.iter
          (fun conn ->
            if List.memq conn.fd readable then
              List.iter
                (fun item -> Queue.push (conn, item) pending)
                (read_available conn))
          live;
        let nothing_more =
          not (List.exists (fun fd -> not (is_pipeline fd)) readable)
        in
        (* Collect a finished batch, hand the worker the next one, and
           only then serialize and write the finished batch's responses
           — so response writing overlaps the next batch's solves.  The
           single loop domain still writes batch N's responses before it
           can collect batch N+1, so each connection sees its responses
           in arrival order regardless. *)
        let shutdown_now =
          match (executor, !inflight) with
          | Some pipeline, Some batch when List.exists is_pipeline readable ->
              inflight := None;
              let outcome = Batcher.Pipeline.collect pipeline in
              if
                (not outcome.Batcher.shutdown)
                && (not (Queue.is_empty pending))
                && (nothing_more || Queue.length pending >= config.batch_limit)
              then dispatch pipeline;
              respond batch outcome
          | _ -> false
        in
        if shutdown_now then ()
        else if Queue.is_empty pending || Option.is_some !inflight then loop ()
        else if
          (* Flush once no more input is immediately available, or the
             batch cap is reached. *)
          nothing_more || Queue.length pending >= config.batch_limit
        then begin
          match executor with
          | Some pipeline ->
              dispatch pipeline;
              loop ()
          | None -> if flush_batch () then () else loop ()
        end
        else loop ()
  in
  Fun.protect ~finally:cleanup loop
