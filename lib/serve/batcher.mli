(** Request batching: the daemon's execution core.

    A batch is the set of requests queued while the previous batch was
    being served.  [execute] groups them by target tree — so a delta's
    single [O(#changed log R)] recombine, and the hot tree it updates,
    serve every query queued behind it instead of each query re-solving
    — and fans the per-tree groups out across an {!Crossbar_engine.Pool}
    (per-tree worker sharding: requests for one tree run sequentially in
    arrival order; distinct trees run concurrently).

    Determinism: responses come back index-aligned with the request
    array, and each group's work depends only on the registry state and
    its own requests, so a batch's responses are bit-identical to
    serving the same requests one at a time — the property the serve
    bench gates at 1 ulp. *)

type outcome = {
  responses : Crossbar_engine.Json.t array;
      (** element [i] answers request [i] *)
  shutdown : bool;  (** a [shutdown] request was present *)
}

val execute :
  ?domains:int ->
  registry:Registry.t ->
  telemetry:Crossbar_engine.Telemetry.t ->
  Protocol.request array ->
  outcome
(** Serve one batch.  Every request — including failures, [stats] and
    [shutdown] — produces exactly one response and one telemetry record
    whose [wall_seconds] is the request's service time on the monotonic
    clock ({!Crossbar_engine.Clock}).  Solver errors
    ([Invalid_argument], [Failure]) and unknown trees become [ok:false]
    responses, never exceptions: a malformed query must not take the
    daemon down.  [domains] bounds the pool
    (default {!Crossbar_engine.Pool.recommended_domains}).

    After the pool joins, the registry's capacity-evicted trees are
    drained via {!Registry.recycle_evicted} — the end of a batch is the
    daemon's quiescent point. *)

(** One-batch-in-flight pipelining: a dedicated worker domain runs
    {!execute} while the caller returns to its [select] loop to read and
    group the next batch.  Because [execute] is deterministic given the
    registry state and its request array, pipelined and sequential
    serving produce byte-identical responses — only the overlap of
    socket I/O with solving changes. *)
module Pipeline : sig
  type t

  val start :
    ?domains:int ->
    registry:Registry.t ->
    telemetry:Crossbar_engine.Telemetry.t ->
    unit ->
    t
  (** Spawn the worker domain, idle until the first {!submit}.  The
      [domains]/[registry]/[telemetry] triple is fixed for the worker's
      lifetime and passed to every {!execute} it runs. *)

  val submit : t -> Protocol.request array -> unit
  (** Hand a batch to the worker and return immediately.  Strictly one
      batch in flight: callers must {!collect} before submitting again.
      @raise Invalid_argument if a batch is already in flight. *)

  val descriptor : t -> Unix.file_descr
  (** The readiness pipe: becomes readable exactly when a submitted
      batch has finished and {!collect} will not block.  Watch it in the
      same [select] as the client socket. *)

  val collect : t -> outcome
  (** Drain the readiness byte and take the finished batch's outcome.
      Re-raises whatever {!execute} raised on the worker, on the calling
      domain.
      @raise Invalid_argument if no finished batch is pending (call only
      after {!descriptor} polls readable). *)

  val shutdown : t -> unit
  (** Stop the worker, join it, and close the pipe.  An executing batch
      is waited out first; a submitted-but-untaken batch, or a finished
      outcome nobody collected, is silently discarded — so cleanup on an
      error path (the server loop unwinding past an in-flight batch)
      still joins the domain and closes every descriptor.  On the normal
      path callers {!collect} before shutting down, so nothing is ever
      discarded.  Call at most once. *)
end
