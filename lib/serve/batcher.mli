(** Request batching: the daemon's execution core.

    A batch is the set of requests queued while the previous batch was
    being served.  [execute] groups them by target tree — so a delta's
    single [O(#changed log R)] recombine, and the hot tree it updates,
    serve every query queued behind it instead of each query re-solving
    — and fans the per-tree groups out across an {!Crossbar_engine.Pool}
    (per-tree worker sharding: requests for one tree run sequentially in
    arrival order; distinct trees run concurrently).

    Determinism: responses come back index-aligned with the request
    array, and each group's work depends only on the registry state and
    its own requests, so a batch's responses are bit-identical to
    serving the same requests one at a time — the property the serve
    bench gates at 1 ulp. *)

type outcome = {
  responses : Crossbar_engine.Json.t array;
      (** element [i] answers request [i] *)
  shutdown : bool;  (** a [shutdown] request was present *)
}

val execute :
  ?domains:int ->
  registry:Registry.t ->
  telemetry:Crossbar_engine.Telemetry.t ->
  Protocol.request array ->
  outcome
(** Serve one batch.  Every request — including failures, [stats] and
    [shutdown] — produces exactly one response and one telemetry record
    whose [wall_seconds] is the request's service time on the monotonic
    clock ({!Crossbar_engine.Clock}).  Solver errors
    ([Invalid_argument], [Failure]) and unknown trees become [ok:false]
    responses, never exceptions: a malformed query must not take the
    daemon down.  [domains] bounds the pool
    (default {!Crossbar_engine.Pool.recommended_domains}). *)
