(** The crossbar_serve wire protocol: line-delimited JSON.

    Each request is one JSON object on one line; each response is one
    JSON object on one line, carrying the request's [id] back verbatim.
    The full reference with examples lives in docs/SERVE.md.

    Requests name a {e tree} — a solved factor tree the daemon holds
    hot under a client-chosen name — and either install/replace it
    ([solve]), re-solve it after a class-subset change ([delta], served
    in [O(#changed log R)] combines via
    {!Crossbar.Convolution.solve_delta}), or read answers off it
    ([blocking], [shadow_costs], [admit]) without any solving at all. *)

module Json = Crossbar_engine.Json
(** Transparent alias: responses are plain {!Crossbar_engine.Json}
    documents. *)

type change = {
  class_index : int;
  alpha : float option;  (** new aggregate alpha, if present *)
  beta : float option;  (** new aggregate beta, if present *)
}
(** One class's parameter change in a [delta] request.  Omitted fields
    keep their current value; bandwidth/name/service-rate changes
    require a fresh [solve] (they change the factor shape or the cache
    identity in ways a delta cannot express). *)

type query =
  | Solve of { tree : string; model : Crossbar.Model.t }
      (** Solve [model] and hold it hot as [tree] (replacing any
          previous tree of that name; if the previous tree is
          delta-compatible, the solve itself reuses it). *)
  | Delta of { tree : string; changes : change list }
      (** Apply [changes] to the named hot tree and re-solve
          incrementally. *)
  | Blocking of { tree : string }  (** Per-class blocking read. *)
  | Shadow_costs of { tree : string; weights : float array }
      (** All [R] shadow costs and the weighted revenue, from the
          already-solved diagonal. *)
  | Admit of { tree : string; class_index : int; weights : float array }
      (** Revenue-positive admission decision for one class: admit iff
          the class's weight covers its shadow cost. *)
  | Stats  (** Telemetry/registry snapshot. *)
  | Shutdown  (** Answer, flush, stop the daemon. *)

type request = { id : Json.t; query : query }
(** [id] is echoed back verbatim (any JSON scalar clients choose). *)

val request_of_line : string -> (request, string) result
(** Parse one wire line.  The error string is suitable for an error
    response body. *)

val request_of_json : Json.t -> (request, string) result
(** As {!request_of_line}, from an already-parsed document. *)

val request_to_json : request -> Json.t
(** Inverse of {!request_of_json}. *)

val request_to_line : request -> string
(** Compact one-line rendering (no embedded newline) — what clients and
    the load generator put on the wire. *)

val model_to_json : Crossbar.Model.t -> Json.t
(** The [model] object of a [solve] request. *)

val model_of_json : Json.t -> (Crossbar.Model.t, string) result
(** Inverse of {!model_to_json}; the error names the offending field. *)

val measures_to_json : Crossbar.Measures.t -> Json.t
(** Per-class measures as the [measures] block of a solve/delta
    response. *)

val ok_response : id:Json.t -> op:string -> (string * Json.t) list -> Json.t
(** [{"id":id,"ok":true,"op":op,...fields}]. *)

val error_response : id:Json.t -> string -> Json.t
(** [{"id":id,"ok":false,"error":message}].  Parse failures use
    [Json.Null] as the id. *)

val response_to_line : Json.t -> string
(** Compact one-line rendering of a response. *)

val op_name : query -> string
(** The wire [op] tag: ["solve"], ["delta"], ... *)

val tree_name : query -> string option
(** The tree a query targets; [None] for [Stats]/[Shutdown]. *)
