module Rng = Crossbar_prng.Rng
module Variates = Crossbar_prng.Variates
module Service = Crossbar_sim.Service
module Event_heap = Crossbar_sim.Event_heap
module Stats = Crossbar_sim.Stats

type config = {
  topology : Topology.t;
  offered : float;
  service_rate : float;
  service : Service.t;
  warmup : float;
  horizon : float;
  batches : int;
  confidence : float;
  seed : int;
}

let default_config topology ~offered =
  {
    topology;
    offered;
    service_rate = 1.0;
    service = Service.Exponential;
    warmup = 500.;
    horizon = 2e4;
    batches = 20;
    confidence = 0.95;
    seed = 42;
  }

type result = {
  offered_count : int;
  accepted_count : int;
  blocking : float;
  blocking_halfwidth : float;
  link_occupancy : float;
  events : int;
}

let run config =
  if not (config.horizon > 0.) then invalid_arg "Sim.run: horizon <= 0";
  if not (config.warmup >= 0.) then invalid_arg "Sim.run: warmup < 0";
  if config.batches < 2 then invalid_arg "Sim.run: batches < 2";
  if not (config.offered >= 0.) then invalid_arg "Sim.run: offered < 0";
  Service.validate config.service;
  let topology = config.topology in
  let ports = Topology.ports topology in
  let levels = Topology.stages topology + 1 in
  let rng = Rng.create ~seed:config.seed in
  let service_rng = Rng.split rng in
  (* busy.(level * ports + link) *)
  let busy = Array.make (levels * ports) false in
  let busy_count = ref 0 in
  let departures = Event_heap.create () in
  let total_rate = config.offered *. float_of_int ports in
  let mean_holding = 1. /. config.service_rate in
  let occupancy =
    Stats.Time_weighted.create ~start:0. ~value:0.
  in
  let batch_offered = ref 0 and batch_blocked = ref 0 in
  let blocking_batches = ref [] and occupancy_batches = ref [] in
  let record_occupancy ~now =
    Stats.Time_weighted.update occupancy ~time:now
      ~value:(float_of_int !busy_count /. float_of_int (levels * ports))
  in
  let close_batch ~upto =
    let fraction =
      if !batch_offered = 0 then 0.
      else float_of_int !batch_blocked /. float_of_int !batch_offered
    in
    blocking_batches := fraction :: !blocking_batches;
    occupancy_batches :=
      Stats.Time_weighted.average occupancy ~upto :: !occupancy_batches;
    Stats.Time_weighted.reset occupancy ~time:upto;
    batch_offered := 0;
    batch_blocked := 0
  in
  let finish_time = config.warmup +. config.horizon in
  let batch_length = config.horizon /. float_of_int config.batches in
  let batch_start = ref config.warmup in
  let measuring = ref false in
  let now = ref 0. in
  let next_arrival =
    ref (if total_rate > 0. then Variates.exponential rng ~rate:total_rate else infinity)
  in
  let events = ref 0 in
  let total_offered = ref 0 and total_accepted = ref 0 in
  let continue = ref true in
  while !continue do
    let departure_time =
      match Event_heap.peek departures with Some (t, _) -> t | None -> infinity
    in
    let event_time = Float.min departure_time !next_arrival in
    if event_time >= finish_time then begin
      if !measuring then close_batch ~upto:finish_time;
      now := finish_time;
      continue := false
    end
    else begin
      now := event_time;
      incr events;
      if (not !measuring) && !now >= config.warmup then begin
        measuring := true;
        Stats.Time_weighted.reset occupancy ~time:config.warmup;
        batch_offered := 0;
        batch_blocked := 0;
        batch_start := config.warmup
      end;
      while !measuring && !now >= !batch_start +. batch_length do
        close_batch ~upto:(!batch_start +. batch_length);
        batch_start := !batch_start +. batch_length
      done;
      if departure_time <= !next_arrival then begin
        match Event_heap.pop departures with
        | None -> assert false
        | Some (_, route) ->
            Array.iteri
              (fun level link -> busy.((level * ports) + link) <- false)
              route;
            busy_count := !busy_count - Array.length route;
            record_occupancy ~now:!now
      end
      else begin
        incr total_offered;
        if !measuring then incr batch_offered;
        let input = Rng.int rng ~bound:ports in
        let output = Rng.int rng ~bound:ports in
        let route = Topology.route topology ~input ~output in
        let clear =
          let ok = ref true in
          Array.iteri
            (fun level link ->
              if busy.((level * ports) + link) then ok := false)
            route;
          !ok
        in
        if clear then begin
          incr total_accepted;
          Array.iteri
            (fun level link -> busy.((level * ports) + link) <- true)
            route;
          busy_count := !busy_count + Array.length route;
          let holding =
            Service.sample config.service service_rng ~mean:mean_holding
          in
          Event_heap.add departures ~time:(!now +. holding) route;
          record_occupancy ~now:!now
        end
        else if !measuring then incr batch_blocked;
        next_arrival := !now +. Variates.exponential rng ~rate:total_rate
      end
    end
  done;
  let blocking, blocking_halfwidth =
    Stats.confidence_interval ~confidence:config.confidence
      (Array.of_list !blocking_batches)
  in
  let link_occupancy, _ =
    Stats.confidence_interval ~confidence:config.confidence
      (Array.of_list !occupancy_batches)
  in
  {
    offered_count = !total_offered;
    accepted_count = !total_accepted;
    blocking;
    blocking_halfwidth;
    link_occupancy;
    events = !events;
  }
