(** Delta-network topology: [N = k^s] ports interconnected by [s] stages
    of [k x k] asynchronous crossbars.

    The paper's conclusion names "extending this analysis to asynchronous
    all-optical multi-stage networks" as future work; this module provides
    the combinatorial substrate.  A circuit from input [i] to output [o]
    traverses [s + 1] {e links} (levels 0..s): level 0 is the network
    input port, level [s] the output port, intermediate levels the
    inter-stage links.  Writing [o]'s base-[k] digits as
    [d_1 ... d_s] (most significant first), the level-[t] link of the
    route is labelled by the first [t] digits of [o] and the last [s - t]
    digits of [i] — the self-routing property of delta networks. *)

type t

val create : ports:int -> fanout:int -> t
(** [create ~ports ~fanout] describes an [N = ports] network of
    [fanout x fanout] crossbars.
    @raise Invalid_argument unless [ports] is a positive power of
    [fanout >= 2]. *)

val ports : t -> int
val fanout : t -> int

val stages : t -> int
(** [s = log_k N]. *)

val links_per_level : t -> int
(** [N] at every level. *)

val switches_per_stage : t -> int
(** [N / k]. *)

val route : t -> input:int -> output:int -> int array
(** The route's link label at each level, [s + 1] entries;
    [route.(0) = input] and [route.(stages) = output].
    @raise Invalid_argument for out-of-range ports. *)

val switch_of_link : t -> level:int -> link:int -> int
(** The stage-[level] switch (numbered within its stage) whose {e input}
    side carries the given level-[level - 1]... more precisely: the switch
    of stage [level] (1-based) that joins level [level - 1] links to
    level [level] links containing [link] on its output side.  Used by
    tests to verify that routes sharing a switch also share its port
    semantics.
    @raise Invalid_argument for [level] outside [1, stages]. *)

val crosspoints : t -> int
(** Total crosspoint count, [(N / k) * s * k^2]. *)
