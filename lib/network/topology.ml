type t = { ports : int; fanout : int; stages : int; power : int array }
(* power.(j) = fanout^j, j = 0..stages *)

let create ~ports ~fanout =
  if fanout < 2 then invalid_arg "Topology.create: fanout < 2";
  if ports < fanout then invalid_arg "Topology.create: ports < fanout";
  let rec count size acc =
    if size = 1 then acc
    else if size mod fanout <> 0 then
      invalid_arg "Topology.create: ports not a power of fanout"
    else count (size / fanout) (acc + 1)
  in
  let stages = count ports 0 in
  let power = Array.make (stages + 1) 1 in
  for j = 1 to stages do
    power.(j) <- power.(j - 1) * fanout
  done;
  { ports; fanout; stages; power }

let ports t = t.ports
let fanout t = t.fanout
let stages t = t.stages
let links_per_level t = t.ports
let switches_per_stage t = t.ports / t.fanout

let check_port t label port =
  if port < 0 || port >= t.ports then
    invalid_arg (Printf.sprintf "Topology: %s out of range" label)

(* Level-t link label: first t digits of the output, last (s - t) digits
   of the input. *)
let link_at t ~input ~output ~level =
  let tail = t.power.(t.stages - level) in
  (output / tail * tail) + (input mod tail)

let route t ~input ~output =
  check_port t "input" input;
  check_port t "output" output;
  Array.init (t.stages + 1) (fun level -> link_at t ~input ~output ~level)

let switch_of_link t ~level ~link =
  if level < 1 || level > t.stages then
    invalid_arg "Topology.switch_of_link: level outside stages";
  check_port t "link" link;
  (* A stage-[level] switch joins the k level-[level] links sharing all
     digits except digit [level] (1-based, most significant first). *)
  let tail = t.power.(t.stages - level) in
  let prefix = link / (tail * t.fanout) in
  (prefix * tail) + (link mod tail)

let crosspoints t = switches_per_stage t * t.stages * t.fanout * t.fanout
