(** Event-driven simulation of the multi-stage asynchronous circuit
    network — the referee for the approximations in {!Analysis}.

    Circuits arrive at each input as a Poisson stream, address a uniform
    output, and are admitted iff every link of their (self-routing delta)
    route is idle at that instant; admitted circuits hold all links for a
    holding time of the configured shape and mean, blocked ones are
    cleared.  No approximation is involved. *)

type config = {
  topology : Topology.t;
  offered : float; (** per-input circuit arrival rate *)
  service_rate : float;
  service : Crossbar_sim.Service.t;
  warmup : float;
  horizon : float;
  batches : int;
  confidence : float;
  seed : int;
}

val default_config : Topology.t -> offered:float -> config
(** Exponential holding times with mean 1, warmup [500], horizon [2e4],
    20 batches, 95% confidence, seed 42. *)

type result = {
  offered_count : int;
  accepted_count : int;
  blocking : float; (** blocked fraction (call congestion = time congestion: arrivals are Poisson) *)
  blocking_halfwidth : float;
  link_occupancy : float; (** time-average busy fraction over all links *)
  events : int;
}

val run : config -> result
(** Deterministic in [config.seed].
    @raise Invalid_argument on nonsensical horizons or batch counts. *)
