type result = {
  end_to_end_blocking : float;
  link_occupancy : float;
  iterations : int;
}

let validate ~offered ~service_rate =
  if not (offered >= 0.) then invalid_arg "Analysis: offered < 0";
  if not (service_rate > 0.) then invalid_arg "Analysis: service_rate <= 0"

let link_fixed_point ?(tolerance = 1e-12) topology ~offered ~service_rate =
  validate ~offered ~service_rate;
  let s = Topology.stages topology in
  let erlangs = offered /. service_rate in
  (* b = rho (1-b)^s / (1 + rho (1-b)^s): the right side is decreasing in
     b, so the fixed point is unique; bisection is unconditionally
     convergent. *)
  let residual b =
    let reduced = erlangs *. ((1. -. b) ** float_of_int s) in
    b -. (reduced /. (1. +. reduced))
  in
  let iterations = ref 0 in
  let lo = ref 0. and hi = ref 1. in
  while !hi -. !lo > tolerance do
    incr iterations;
    let mid = 0.5 *. (!lo +. !hi) in
    if residual mid < 0. then lo := mid else hi := mid
  done;
  let b = 0.5 *. (!lo +. !hi) in
  {
    end_to_end_blocking = 1. -. ((1. -. b) ** float_of_int (s + 1));
    link_occupancy = b;
    iterations = !iterations;
  }

(* One k x k crossbar under per-input-link aggregate rate [x]: the paper's
   single-stage model gives the joint pair availability and the port
   occupancy. *)
let stage_measures topology ~rate ~service_rate =
  let k = Topology.fanout topology in
  let model =
    Crossbar.Model.square ~size:k
      ~classes:
        [
          Crossbar.Traffic.poisson ~name:"stage" ~bandwidth:1 ~rate
            ~service_rate ();
        ]
  in
  let measures = Crossbar.Solver.solve model in
  let pair_free =
    measures.Crossbar.Measures.per_class.(0).Crossbar.Measures.non_blocking
  in
  let port_busy =
    measures.Crossbar.Measures.busy_ports /. float_of_int k
  in
  (pair_free, port_busy)

let acceptance ~stages ~pair_free ~port_free =
  (* Markov chain along the route's links. *)
  if port_free <= 0. then 0.
  else
    (pair_free ** float_of_int stages)
    /. (port_free ** float_of_int (stages - 1))

let switch_markov ?(tolerance = 1e-10) ?(max_iterations = 10_000) topology
    ~offered ~service_rate =
  validate ~offered ~service_rate;
  let s = Topology.stages topology in
  (* Thinned per-link offered rate x: a circuit loads a given switch only
     if the rest of its route (acceptance / this switch's own pair
     availability) admits it. *)
  let damping = 0.5 in
  let x = ref offered and converged = ref false and iterations = ref 0 in
  let last_pair = ref 1. and last_port_busy = ref 0. in
  while (not !converged) && !iterations < max_iterations do
    incr iterations;
    let pair_free, port_busy =
      stage_measures topology ~rate:!x ~service_rate
    in
    last_pair := pair_free;
    last_port_busy := port_busy;
    let rest_of_route =
      if s = 1 then 1.
      else
        let port_free = 1. -. port_busy in
        (pair_free /. port_free) ** float_of_int (s - 1)
    in
    let updated = offered *. rest_of_route in
    if Float.abs (updated -. !x) <= tolerance *. Float.max 1e-12 offered then
      converged := true;
    x := (damping *. updated) +. ((1. -. damping) *. !x)
  done;
  if not !converged then failwith "Analysis.switch_markov: no convergence";
  let accept =
    acceptance ~stages:s ~pair_free:!last_pair
      ~port_free:(1. -. !last_port_busy)
  in
  {
    end_to_end_blocking = 1. -. accept;
    link_occupancy = !last_port_busy;
    iterations = !iterations;
  }
