(** Approximate blocking analysis of the multi-stage asynchronous network
    — the paper's stated future work, built on its single-stage model.

    Uniform single-rate Poisson traffic: each of the [N] inputs offers
    circuits at rate [offered] to uniformly random outputs; a circuit
    holds one link at every level of its route simultaneously
    (holding-time mean [1 / service_rate]).  Two approximations of the
    end-to-end blocking, both in the reduced-load (Erlang fixed point)
    family:

    - {!link_fixed_point} treats every link of the route as an
      independent single-server loss group with thinned offered load —
      the classical approximation, blind to switch structure;
    - {!switch_markov} uses the paper's exact [k x k] crossbar solution
      for the {e joint} availability of each consecutive link pair
      (input, output of one switch) and chains them with a Markov
      (junction-tree) correction:
      [P(route free) ~ prod_t P(l_(t-1), l_t free) / prod_t P(l_t free)].
      At [stages = 1] this is exact.

    Both are validated against the event-driven network simulator
    ({!Sim}); see the [multistage] section of the benchmark harness. *)

type result = {
  end_to_end_blocking : float;
  link_occupancy : float; (* probability a given link is busy *)
  iterations : int; (* fixed-point iterations used *)
}

val link_fixed_point :
  ?tolerance:float -> Topology.t -> offered:float -> service_rate:float ->
  result
(** @raise Invalid_argument for negative loads or rates. *)

val switch_markov :
  ?tolerance:float -> ?max_iterations:int -> Topology.t -> offered:float ->
  service_rate:float -> result
(** @raise Failure if the damped fixed point fails to converge. *)
