(** Keyed cache of solved models.

    The sweep engine evaluates thousands of closely related models —
    figure series share sizes, revenue gradients re-solve perturbed
    copies — so solved results are memoised under a fingerprint of the
    exact model parameters and the algorithm that would run.  The cached
    value is a full {!Crossbar.Solver.solution} (measures {e and}
    normalisation from one solve), so a sweep never solves the same
    model twice for any reason.

    The cache is domain-safe: lookups and insertions are serialised by a
    mutex, while solves on a miss run outside the lock so concurrent
    misses on different keys still proceed in parallel.  Two domains
    racing on the {e same} key may both solve it; the solvers are
    deterministic, so whichever insertion wins stores the identical
    value and determinism is preserved. *)

type key = string
(** Model fingerprint: switch dimensions, resolved algorithm, and every
    class's name, bandwidth and exact (hex-printed) rate parameters.
    Structurally equal models produce equal keys; any parameter
    perturbation, however small, produces a distinct key. *)

val key_of_model :
  ?algorithm:Crossbar.Solver.algorithm -> Crossbar.Model.t -> key
(** The fingerprint under which [find_or_solve] would file the model.
    When [algorithm] is omitted the {!Crossbar.Solver.recommended}
    choice is baked into the key, since it alone determines which
    recurrence runs. *)

type t

val create : unit -> t

val find_or_solve :
  t ->
  ?algorithm:Crossbar.Solver.algorithm ->
  Crossbar.Model.t ->
  Crossbar.Solver.solution * bool
(** The cached or freshly computed solution, and whether it was a cache
    hit.  Counters update accordingly. *)

val hits : t -> int
val misses : t -> int
val size : t -> int

val hit_rate : t -> float
(** [hits / (hits + misses)]; [0.] before any lookup. *)
