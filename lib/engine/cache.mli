(** Keyed caches: a generic domain-safe memo table plus the solved-model
    cache the sweep engine runs on.

    The sweep engine evaluates thousands of closely related models —
    figure series share sizes, revenue gradients re-solve perturbed
    copies — so solved results are memoised under a fingerprint of the
    exact model parameters and the algorithm that would run.  The cached
    value is a full {!Crossbar.Solver.solution} (measures {e and}
    normalisation from one solve), so a sweep never solves the same
    model twice for any reason.

    Both layers are domain-safe: lookups and insertions are serialised by
    a mutex, while computations on a miss run outside the lock so
    concurrent misses on different keys still proceed in parallel.  Two
    domains racing on the {e same} key may both compute it; callers
    supply deterministic functions, so whichever insertion wins stores
    the identical value and determinism is preserved. *)

type key = string
(** Cache keys are opaque fingerprints; equal keys must mean equal
    results.  For models, see {!key_of_model}. *)

(** Generic string-keyed memo table.  The solver cache below is one
    instantiation; the incremental lint driver
    ([Crossbar_lint_typed.Driver]) is another, memoising per-file typed
    analyses under a source+artifact digest. *)
module Memo : sig
  type 'a t

  val create : ?capacity:int -> ?on_evict:(key -> 'a -> unit) -> unit -> 'a t
  (** Unbounded by default.  With [~capacity:c], the table holds at most
      [c] entries: inserting into a full table first evicts the
      least-recently-{e used} entry (hits refresh recency, in insertion
      order among untouched entries) — sized caches keep the working set
      of a sweep without growing across long runs.

      [on_evict] fires once per entry displaced by capacity pressure —
      after the internal lock is released, so the callback may re-enter
      the memo — with the evicted key and value.  It does {e not} fire
      for in-place replacement by {!set} (the caller supplied the new
      value knowingly) or for {!clear} (an explicit drop, not
      displacement): exactly the occasions counted by {!evictions}.
      The serve registry uses it to route evicted factor trees back to
      the convolution arenas.
      @raise Invalid_argument if [capacity < 1]; the message carries the
      offending value. *)

  val find_or_compute : 'a t -> key -> (unit -> 'a) -> 'a * bool
  (** The cached or freshly computed value, and whether it was a cache
      hit.  Counters update accordingly; the computation runs outside
      the lock. *)

  val find : 'a t -> key -> 'a option
  (** Plain lookup: counts a hit (refreshing recency) or a miss, without
      computing anything on absence — for callers like the serve
      registry whose recovery from a miss is an error response, not a
      recomputation. *)

  val mem : 'a t -> key -> bool
  (** Residency probe: whether [key] is currently in the table, without
      counting a hit or a miss and without refreshing recency — unlike
      {!find}, it leaves both the statistics and the LRU order exactly
      as they were.  For callers that need to ask "is this name resident
      {e now}?" as a pure observation (the serve registry uses it to
      detect a tree reinstalled after a capacity eviction). *)

  val set : 'a t -> key -> 'a -> unit
  (** Insert-or-replace, marking the entry most recently used.  A fresh
      insert into a full bounded table first evicts the LRU entry (as
      {!find_or_compute}); replacing an existing key never evicts.
      Neither a hit nor a miss is counted — [set] is a write, not a
      lookup. *)

  val clear : 'a t -> unit
  (** Drops every entry {e and} resets the statistics: [hits], [misses]
      and [evictions] return to 0 (so [hit_rate] describes only
      post-clear traffic), and the internal recency tick restarts with
      the table — stamps only order resident entries, so an emptied
      table has nothing for it to stay monotone against.  Dropped
      entries do not count as evictions. *)

  val hits : 'a t -> int
  val misses : 'a t -> int

  val evictions : 'a t -> int
  (** Entries displaced by capacity pressure (0 for unbounded tables). *)

  val size : 'a t -> int

  val hit_rate : 'a t -> float
  (** [hits / (hits + misses)]; [0.] before any lookup. *)
end

val key_of_model :
  ?algorithm:Crossbar.Solver.algorithm -> Crossbar.Model.t -> key
(** The fingerprint under which [find_or_solve] would file the model:
    switch dimensions, resolved algorithm, and every class's name,
    bandwidth and exact (hex-printed) rate parameters.  Structurally
    equal models produce equal keys; any parameter perturbation, however
    small, produces a distinct key.  When [algorithm] is omitted the
    {!Crossbar.Solver.recommended} choice is baked into the key, since
    it alone determines which recurrence runs. *)

type t = Crossbar.Solver.solution Memo.t

val create : ?capacity:int -> unit -> t
(** See {!Memo.create}. *)

val find_or_compute :
  t ->
  ?algorithm:Crossbar.Solver.algorithm ->
  Crossbar.Model.t ->
  (unit -> Crossbar.Solver.solution) ->
  Crossbar.Solver.solution * bool
(** [find_or_compute t model f] files [f ()] under {!key_of_model} —
    the entry point for callers that produce the solution some other
    way than {!Crossbar.Solver.solve_full} (the sweep engine's
    incremental path).  [f] must return exactly what a fresh
    [solve_full] would (bit-identical), since hits and misses must be
    indistinguishable. *)

val find_or_solve :
  t ->
  ?algorithm:Crossbar.Solver.algorithm ->
  Crossbar.Model.t ->
  Crossbar.Solver.solution * bool
(** The cached or freshly computed solution, and whether it was a cache
    hit.  Counters update accordingly. *)

val hits : t -> int
val misses : t -> int

val evictions : t -> int
(** See {!Memo.evictions}. *)

val size : t -> int

val hit_rate : t -> float
(** [hits / (hits + misses)]; [0.] before any lookup. *)

val clear : t -> unit
(** See {!Memo.clear}. *)
