external now_ns : unit -> int64 = "crossbar_clock_monotonic_ns"

let now () = Int64.to_float (now_ns ()) /. 1e9
let elapsed_since start = Float.max 0. (now () -. start)
