(** Minimal JSON tree, writer and validating parser.

    The telemetry snapshots the engine emits must be consumable by any
    downstream tooling, so the writer produces strict RFC 8259 output
    (non-finite floats are emitted as [null]) and the parser exists so
    the bench harness can re-read what it just wrote and fail loudly on
    malformed output instead of shipping a corrupt snapshot.  No
    third-party dependency is involved. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

val to_string : t -> string
(** Compact single-line rendering. *)

val pp : Format.formatter -> t -> unit
(** Indented rendering (2-space), suitable for checked-in snapshots. *)

val of_string : string -> (t, string) result
(** Strict parser for the subset {!to_string}/{!pp} emit (all of JSON
    except exotic escapes [\uXXXX] surrogate pairs are passed through
    unvalidated).  Numbers with a fractional part, exponent, or outside
    [int] range parse as [Float]. *)

val member : string -> t -> t option
(** [member key (Assoc _)] looks up a field; [None] on anything else. *)
