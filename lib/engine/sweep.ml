module Model = Crossbar.Model
module Solver = Crossbar.Solver
module Convolution = Crossbar.Convolution

type point = {
  label : string;
  model : Model.t;
  algorithm : Solver.algorithm option;
}

let point ?algorithm ?label model =
  let label =
    match label with
    | Some l -> l
    | None ->
        Printf.sprintf "%dx%d" (Model.inputs model) (Model.outputs model)
  in
  { label; model; algorithm }

type outcome = {
  point : point;
  solution : Solver.solution;
  wall_seconds : float;
  from_cache : bool;
  from_incremental : bool;
}

let measures outcome = outcome.solution.Solver.measures
let log_normalization outcome = outcome.solution.Solver.log_normalization

let is_convolution p =
  match
    match p.algorithm with Some a -> a | None -> Solver.recommended p.model
  with
  | Solver.Convolution -> true
  | Solver.Brute_force | Solver.Mean_value -> false

(* Mutable per-chain state: the last convolution lattice computed on this
   chain.  A chain is only ever walked by one domain, so no locking. *)
type chain = { mutable lattice : Convolution.t option }

let solve_point ?chain cache p =
  let started = Clock.now () in
  let from_incremental = ref false in
  let compute () =
    match chain with
    | Some c when is_convolution p ->
        let solved =
          match c.lattice with
          | Some previous -> (
              (* Delta against the last tree actually computed on this
                 chain (cache hits in between do not advance it): updates
                 are bit-identical for any base with the same shape, so
                 chains survive warm-cache gaps, and any number of
                 classes may move between points. *)
              match
                Model.class_delta (Convolution.model previous) p.model
              with
              | Some _ ->
                  from_incremental := true;
                  (* The chain is the only holder of [previous] and
                     overwrites it below, so the update may recycle the
                     replaced tree nodes into the arena: a steady-state
                     chain walk allocates no fresh profiles.  The cache
                     stores only the extracted float solution, never the
                     tree, so cached outcomes cannot alias recycled
                     storage. *)
                  Convolution.solve_delta ~recycle:true ~previous p.model
              | None -> Convolution.solve p.model)
          | None -> Convolution.solve p.model
        in
        c.lattice <- Some solved;
        Solver.solution_of_convolution solved
    | _ -> Solver.solve_full ?algorithm:p.algorithm p.model
  in
  let solution, from_cache =
    Cache.find_or_compute cache ?algorithm:p.algorithm p.model compute
  in
  {
    point = p;
    solution;
    wall_seconds = Clock.elapsed_since started;
    from_cache;
    from_incremental = !from_incremental;
  }

let record_outcome telemetry outcome =
  match telemetry with
  | None -> ()
  | Some t ->
      Telemetry.record t
        {
          Telemetry.label = outcome.point.label;
          algorithm =
            Solver.algorithm_to_string outcome.solution.Solver.algorithm;
          wall_seconds = outcome.wall_seconds;
          lattice_cells = outcome.solution.Solver.lattice_cells;
          rescales = outcome.solution.Solver.rescales;
          tree_combines =
            (if outcome.from_cache then 0
             else outcome.solution.Solver.tree_combines);
          banded_combines =
            (if outcome.from_cache then 0
             else outcome.solution.Solver.banded_combines);
          from_cache = outcome.from_cache;
          from_incremental = outcome.from_incremental;
        }

let run ?domains ?cache ?telemetry ?(incremental = false) points =
  let cache = match cache with Some c -> c | None -> Cache.create () in
  let points = Array.of_list points in
  let n = Array.length points in
  let outcomes =
    if not incremental then
      (* lint: guarded=points — built before the pool starts, never written *)
      Pool.run ?domains ~tasks:n (fun i -> solve_point cache points.(i))
    else begin
      (* Group consecutive points that share switch dimensions and class
         count (and that both resolve to the convolution solver) into
         chains — any subset of classes may differ between neighbours.
         Chains fan out across the pool; within a chain, points run
         sequentially so each can re-solve through a factor-tree update
         from its predecessor.  Updates are bit-identical to full
         solves, so outcomes do not depend on where the chain boundaries
         fall. *)
      let chainable =
        Array.init n (fun i ->
            i > 0
            && is_convolution points.(i - 1)
            && is_convolution points.(i)
            && Option.is_some
                 (Model.class_delta points.(i - 1).model points.(i).model))
      in
      let starts =
        Array.of_list
          (List.filter (fun i -> not chainable.(i)) (List.init n Fun.id))
      in
      let segments = Array.length starts in
      let bound s = if s + 1 < segments then starts.(s + 1) else n in
      let chunks =
        (* lint: guarded=starts,points — both frozen before the pool starts *)
        Pool.run ?domains ~tasks:segments (fun s ->
            let chain = { lattice = None } in
            Array.init
              (bound s - starts.(s))
              (fun j -> solve_point ~chain cache points.(starts.(s) + j)))
      in
      Array.concat (Array.to_list chunks)
    end
  in
  (* Record after the pool joins so the telemetry stream is in point
     order no matter which domain solved what. *)
  Array.iter (record_outcome telemetry) outcomes;
  outcomes

let solve_model ?cache ?telemetry ?algorithm ?label model =
  let cache = match cache with Some c -> c | None -> Cache.create () in
  let outcome = solve_point cache (point ?algorithm ?label model) in
  record_outcome telemetry outcome;
  outcome.solution

let parallel_solve ?domains model =
  (* The factor-tree build evaluates each level's nodes independently;
     handing Pool.run in as the mapper parallelises leaf construction
     and each combine level.  Pool.run returns element i = f i whatever
     the schedule, so the tree — and hence every measure — is
     bit-identical to a sequential Convolution.solve. *)
  Convolution.solve ~map:(fun f n -> Pool.run ?domains ~tasks:n f) model
