module Model = Crossbar.Model
module Solver = Crossbar.Solver

type point = {
  label : string;
  model : Model.t;
  algorithm : Solver.algorithm option;
}

let point ?algorithm ?label model =
  let label =
    match label with
    | Some l -> l
    | None ->
        Printf.sprintf "%dx%d" (Model.inputs model) (Model.outputs model)
  in
  { label; model; algorithm }

type outcome = {
  point : point;
  solution : Solver.solution;
  wall_seconds : float;
  from_cache : bool;
}

let measures outcome = outcome.solution.Solver.measures
let log_normalization outcome = outcome.solution.Solver.log_normalization

let solve_point cache p =
  let started = Unix.gettimeofday () in
  let solution, from_cache =
    Cache.find_or_solve cache ?algorithm:p.algorithm p.model
  in
  {
    point = p;
    solution;
    wall_seconds = Unix.gettimeofday () -. started;
    from_cache;
  }

let record_outcome telemetry outcome =
  match telemetry with
  | None -> ()
  | Some t ->
      Telemetry.record t
        {
          Telemetry.label = outcome.point.label;
          algorithm =
            Solver.algorithm_to_string outcome.solution.Solver.algorithm;
          wall_seconds = outcome.wall_seconds;
          lattice_cells = outcome.solution.Solver.lattice_cells;
          rescales = outcome.solution.Solver.rescales;
          from_cache = outcome.from_cache;
        }

let run ?domains ?cache ?telemetry points =
  let cache = match cache with Some c -> c | None -> Cache.create () in
  let points = Array.of_list points in
  let outcomes =
    Pool.run ?domains ~tasks:(Array.length points) (fun i ->
        solve_point cache points.(i))
  in
  (* Record after the pool joins so the telemetry stream is in point
     order no matter which domain solved what. *)
  Array.iter (record_outcome telemetry) outcomes;
  outcomes

let solve_model ?cache ?telemetry ?algorithm ?label model =
  let cache = match cache with Some c -> c | None -> Cache.create () in
  let outcome = solve_point cache (point ?algorithm ?label model) in
  record_outcome telemetry outcome;
  outcome.solution
