/* Monotonic clock for wall-time telemetry.

   CLOCK_MONOTONIC is immune to NTP steps and settimeofday, so deltas
   taken across it are always non-negative — the property the telemetry
   layer relies on for a long-running daemon.  POSIX guarantees the
   clock exists; the Windows fallback uses QueryPerformanceCounter. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>

#if defined(_WIN32)
#include <windows.h>

CAMLprim value crossbar_clock_monotonic_ns(value unit)
{
  static LARGE_INTEGER frequency;
  LARGE_INTEGER counter;
  if (frequency.QuadPart == 0)
    QueryPerformanceFrequency(&frequency);
  QueryPerformanceCounter(&counter);
  return caml_copy_int64(
      (int64_t)((double)counter.QuadPart * 1e9 / (double)frequency.QuadPart));
}

#else
#include <time.h>

CAMLprim value crossbar_clock_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec);
}

#endif
