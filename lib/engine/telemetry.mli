(** Per-solve telemetry collected by the sweep engine.

    Every solve the engine performs is recorded: what ran, how long it
    took on the wall clock, how much lattice work it implied, how many
    dynamic rescales the convolution needed, and whether the result came
    from the cache.  Records render to the JSON schema documented in
    DESIGN.md ("Telemetry schema") and consumed by
    [bench/main.exe --json]. *)

type solve = {
  label : string;  (** caller-supplied point label *)
  algorithm : string;  (** {!Crossbar.Solver.algorithm_to_string} *)
  wall_seconds : float;
      (** wall time of this [find_or_solve] call; near zero on hits *)
  lattice_cells : int;
  rescales : int;
  tree_combines : int;
      (** pairwise factor-tree combines the solve performed
          ({!Crossbar.Solver.solution}[.tree_combines]); [0] on cache
          hits and for non-convolution algorithms *)
  banded_combines : int;
      (** how many of those combines ran the banded parallel kernel
          ({!Crossbar.Solver.solution}[.banded_combines]) *)
  from_cache : bool;
  from_incremental : bool;
      (** the solve reused factor-tree nodes from the previous sweep
          point ({!Crossbar.Convolution.solve_delta}) *)
}

type t

val create : unit -> t

val record : t -> solve -> unit
(** Append a record (domain-safe).  A negative [wall_seconds] — which a
    non-monotonic time source could produce — is clamped to [0.] before
    it is stored, so totals and percentiles never move backwards; use
    {!Clock} to take wall-time deltas and the clamp never fires. *)

val solves : t -> solve list
(** Records in the order they were appended. *)

val count : t -> int

val total_wall_seconds : t -> float
(** Sum of [wall_seconds] over all records. *)

val wall_percentiles : t -> float * float * float
(** [(p50, p95, max)] of per-solve [wall_seconds], nearest-rank over all
    records; [(0., 0., 0.)] when empty. *)

val solve_to_json : solve -> Json.t

val to_json : ?cache:Cache.t -> ?domains:int -> t -> Json.t
(** The full collector as one JSON object: aggregate counters, optional
    cache hit/miss statistics and pool width, then the per-solve record
    list.  All fields derive from a {e single} locked snapshot of the
    record list, so the emitted [solves] count, totals, percentiles and
    [records] always describe the same instant even while other domains
    keep recording. *)
