type solve = {
  label : string;
  algorithm : string;
  wall_seconds : float;
  lattice_cells : int;
  rescales : int;
  from_cache : bool;
  from_incremental : bool;
}

type t = { mutex : Mutex.t; mutable rev_solves : solve list }

let create () = { mutex = Mutex.create (); rev_solves = [] }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let record t solve = locked t (fun () -> t.rev_solves <- solve :: t.rev_solves)
let solves t = locked t (fun () -> List.rev t.rev_solves)
let count t = locked t (fun () -> List.length t.rev_solves)

let total_wall_seconds t =
  locked t (fun () ->
      List.fold_left (fun acc s -> acc +. s.wall_seconds) 0. t.rev_solves)

let solve_to_json s =
  Json.Assoc
    [
      ("label", Json.String s.label);
      ("algorithm", Json.String s.algorithm);
      ("wall_seconds", Json.Float s.wall_seconds);
      ("lattice_cells", Json.Int s.lattice_cells);
      ("rescales", Json.Int s.rescales);
      ("from_cache", Json.Bool s.from_cache);
      ("from_incremental", Json.Bool s.from_incremental);
    ]

let to_json ?cache ?domains t =
  let solves = solves t in
  let base =
    [
      ("solves", Json.Int (List.length solves));
      ( "wall_seconds",
        Json.Float
          (List.fold_left (fun acc s -> acc +. s.wall_seconds) 0. solves) );
      ( "lattice_cells",
        Json.Int (List.fold_left (fun acc s -> acc + s.lattice_cells) 0 solves)
      );
      ("rescales", Json.Int (List.fold_left (fun acc s -> acc + s.rescales) 0 solves));
      ( "incremental_solves",
        Json.Int
          (List.length (List.filter (fun s -> s.from_incremental) solves)) );
    ]
  in
  let pool =
    match domains with None -> [] | Some d -> [ ("domains", Json.Int d) ]
  in
  let cache_fields =
    match cache with
    | None -> []
    | Some c ->
        [
          ( "cache",
            Json.Assoc
              [
                ("hits", Json.Int (Cache.hits c));
                ("misses", Json.Int (Cache.misses c));
                ("entries", Json.Int (Cache.size c));
                ("hit_rate", Json.Float (Cache.hit_rate c));
              ] );
        ]
  in
  Json.Assoc
    (base @ pool @ cache_fields
    @ [ ("records", Json.List (List.map solve_to_json solves)) ])
