type solve = {
  label : string;
  algorithm : string;
  wall_seconds : float;
  lattice_cells : int;
  rescales : int;
  tree_combines : int;
  banded_combines : int;
  from_cache : bool;
  from_incremental : bool;
}

type t = { mutex : Mutex.t; mutable rev_solves : solve list }

let create () = { mutex = Mutex.create (); rev_solves = [] }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let record t solve =
  (* Wall times come from Engine.Clock (monotonic), so negatives cannot
     arise from there; clamp anyway so no caller-supplied reading can
     ever make totals or percentiles go backwards. *)
  let solve =
    if solve.wall_seconds < 0. then { solve with wall_seconds = 0. }
    else solve
  in
  locked t (fun () -> t.rev_solves <- solve :: t.rev_solves)

let solves t = locked t (fun () -> List.rev t.rev_solves)
let count t = locked t (fun () -> List.length t.rev_solves)

let total_wall_seconds t =
  locked t (fun () ->
      List.fold_left (fun acc s -> acc +. s.wall_seconds) 0. t.rev_solves)

(* Nearest-rank percentile over ascending [sorted]: the smallest element
   with at least [p] of the mass at or below it. *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else begin
    let rank = int_of_float (Float.ceil (p *. float_of_int n)) in
    sorted.(min (n - 1) (max 0 (rank - 1)))
  end

(* [(p50, p95, max)] of an unsorted wall-time array (sorted in place). *)
let percentiles_of_walls walls =
  (* lint: disable=R7 — total order for sorting, not a tolerance test *)
  Array.sort Float.compare walls;
  let n = Array.length walls in
  let maximum = if n = 0 then 0. else walls.(n - 1) in
  (percentile walls 0.5, percentile walls 0.95, maximum)

let wall_percentiles t =
  let walls =
    locked t (fun () ->
        Array.of_list (List.rev_map (fun s -> s.wall_seconds) t.rev_solves))
  in
  percentiles_of_walls walls

let solve_to_json s =
  Json.Assoc
    [
      ("label", Json.String s.label);
      ("algorithm", Json.String s.algorithm);
      ("wall_seconds", Json.Float s.wall_seconds);
      ("lattice_cells", Json.Int s.lattice_cells);
      ("rescales", Json.Int s.rescales);
      ("tree_combines", Json.Int s.tree_combines);
      ("banded_combines", Json.Int s.banded_combines);
      ("from_cache", Json.Bool s.from_cache);
      ("from_incremental", Json.Bool s.from_incremental);
    ]

let to_json ?cache ?domains t =
  (* One lock acquisition for the whole document: the solve count, the
     wall-time totals, the percentiles and the record list all come from
     this single snapshot, so a record landing concurrently can never
     make the emitted fields disagree with each other. *)
  let solves = locked t (fun () -> List.rev t.rev_solves) in
  let walls = Array.of_list (List.map (fun s -> s.wall_seconds) solves) in
  let total_wall = Array.fold_left ( +. ) 0. walls in
  let p50, p95, wall_max = percentiles_of_walls walls in
  let base =
    [
      ("solves", Json.Int (List.length solves));
      ("wall_seconds", Json.Float total_wall);
      ("wall_seconds_p50", Json.Float p50);
      ("wall_seconds_p95", Json.Float p95);
      ("wall_seconds_max", Json.Float wall_max);
      ( "lattice_cells",
        Json.Int (List.fold_left (fun acc s -> acc + s.lattice_cells) 0 solves)
      );
      ("rescales", Json.Int (List.fold_left (fun acc s -> acc + s.rescales) 0 solves));
      ( "tree_combines",
        Json.Int (List.fold_left (fun acc s -> acc + s.tree_combines) 0 solves)
      );
      ( "banded_combines",
        Json.Int
          (List.fold_left (fun acc s -> acc + s.banded_combines) 0 solves) );
      ( "incremental_solves",
        Json.Int
          (List.length (List.filter (fun s -> s.from_incremental) solves)) );
    ]
  in
  let pool =
    match domains with None -> [] | Some d -> [ ("domains", Json.Int d) ]
  in
  let cache_fields =
    match cache with
    | None -> []
    | Some c ->
        [
          ( "cache",
            Json.Assoc
              [
                ("hits", Json.Int (Cache.hits c));
                ("misses", Json.Int (Cache.misses c));
                ("evictions", Json.Int (Cache.evictions c));
                ("entries", Json.Int (Cache.size c));
                ("hit_rate", Json.Float (Cache.hit_rate c));
              ] );
        ]
  in
  Json.Assoc
    (base @ pool @ cache_fields
    @ [ ("records", Json.List (List.map solve_to_json solves)) ])
