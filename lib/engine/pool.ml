(* One CROSSBAR_DOMAINS reading serves the whole tree: the pool and the
   banded combine kernel inside Crossbar.Convolution resolve their width
   through the same module, so an override scales both fan-outs. *)
let recommended_domains () = Crossbar.Domains.recommended ()

let run ?domains ~tasks f =
  if tasks < 0 then
    invalid_arg (Printf.sprintf "Pool.run: tasks=%d is negative" tasks);
  let domains =
    match domains with
    | None -> recommended_domains ()
    | Some d when d < 1 ->
        invalid_arg (Printf.sprintf "Pool.run: domains=%d < 1" d)
    | Some d -> d
  in
  let workers = min domains tasks in
  if workers <= 1 then Array.init tasks f
  else begin
    let results = Array.make tasks None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < tasks && Atomic.get failure = None then begin
          (match f i with
          | value -> results.(i) <- Some value
          | exception e ->
              ignore (Atomic.compare_and_set failure None (Some e)));
          loop ()
        end
      in
      loop ()
    in
    (* The calling domain is worker zero; spawn the rest.  Each [results]
       slot is written by exactly one worker — the Atomic counter hands
       out disjoint indices — and only read after every domain joins. *)
    (* lint: guarded=results — disjoint writes, read after join *)
    let spawned = Array.init (workers - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    (match Atomic.get failure with Some e -> raise e | None -> ());
    Array.map
      (function Some value -> value | None -> assert false)
      results
  end
