type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

(* ---------- writer ---------- *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_literal f =
  (* RFC 8259 has no inf/nan; callers treat [null] as "not measured". *)
  if not (Float.is_finite f) then "null"
  else begin
    let s = Printf.sprintf "%.17g" f in
    (* Guarantee the token re-parses as a float, not an int. *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"
  end

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_literal f)
  | String s -> escape_string b s
  | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char b ',';
          write b item)
        items;
      Buffer.add_char b ']'
  | Assoc fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_char b ',';
          escape_string b key;
          Buffer.add_char b ':';
          write b value)
        fields;
      Buffer.add_char b '}'

let to_string json =
  let b = Buffer.create 256 in
  write b json;
  Buffer.contents b

let rec pp ppf = function
  | (Null | Bool _ | Int _ | Float _ | String _) as atom ->
      Format.pp_print_string ppf (to_string atom)
  | List [] -> Format.pp_print_string ppf "[]"
  | List items ->
      Format.fprintf ppf "@[<v 2>[";
      List.iteri
        (fun i item ->
          if i > 0 then Format.fprintf ppf ",";
          Format.fprintf ppf "@,%a" pp item)
        items;
      Format.fprintf ppf "@]@,]"
  | Assoc [] -> Format.pp_print_string ppf "{}"
  | Assoc fields ->
      Format.fprintf ppf "@[<v 2>{";
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Format.fprintf ppf ",";
          Format.fprintf ppf "@,%s: %a"
            (let b = Buffer.create 16 in
             escape_string b key;
             Buffer.contents b)
            pp value)
        fields;
      Format.fprintf ppf "@]@,}"

(* ---------- parser ---------- *)

exception Malformed of string

let of_string text =
  let n = String.length text in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> raise (Malformed m)) fmt in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | Some got -> fail "expected %C at offset %d, got %C" c !pos got
    | None -> fail "expected %C at offset %d, got end of input" c !pos
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub text !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail "invalid literal at offset %d" !pos
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string at offset %d" !pos
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char b '"'; advance (); loop ()
          | Some '\\' -> Buffer.add_char b '\\'; advance (); loop ()
          | Some '/' -> Buffer.add_char b '/'; advance (); loop ()
          | Some 'n' -> Buffer.add_char b '\n'; advance (); loop ()
          | Some 'r' -> Buffer.add_char b '\r'; advance (); loop ()
          | Some 't' -> Buffer.add_char b '\t'; advance (); loop ()
          | Some 'b' -> Buffer.add_char b '\b'; advance (); loop ()
          | Some 'f' -> Buffer.add_char b '\012'; advance (); loop ()
          | Some 'u' ->
              if !pos + 4 >= n then fail "truncated \\u escape";
              let hex = String.sub text (!pos + 1) 4 in
              let code =
                match int_of_string ("0x" ^ hex) with
                | code -> code
                | exception Failure _ ->
                    fail "invalid \\u escape %S at offset %d" hex !pos
              in
              (* Pass BMP code points through as UTF-8. *)
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char b (Char.chr (0xc0 lor (code lsr 6)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
              end
              else begin
                Buffer.add_char b (Char.chr (0xe0 lor (code lsr 12)));
                Buffer.add_char b
                  (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
              end;
              pos := !pos + 5;
              loop ()
          | _ -> fail "invalid escape at offset %d" !pos)
      | Some c ->
          Buffer.add_char b c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_number_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while (match peek () with Some c -> is_number_char c | None -> false) do
      advance ()
    done;
    let token = String.sub text start (!pos - start) in
    if token = "" then fail "expected a value at offset %d" start;
    let fractional =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') token
    in
    if fractional then
      match float_of_string_opt token with
      | Some f -> Float f
      | None -> fail "malformed number %S at offset %d" token start
    else
      match int_of_string_opt token with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt token with
          | Some f -> Float f
          | None -> fail "malformed number %S at offset %d" token start)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input at offset %d" !pos
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Assoc []
        end
        else begin
          let field () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let value = parse_value () in
            (key, value)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Assoc (List.rev !fields)
        end
    | Some _ -> parse_number ()
  in
  match
    let value = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage at offset %d" !pos;
    value
  with
  | value -> Ok value
  | exception Malformed message -> Error message

let member key = function
  | Assoc fields -> List.assoc_opt key fields
  | _ -> None
