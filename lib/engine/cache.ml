module Model = Crossbar.Model
module Traffic = Crossbar.Traffic
module Solver = Crossbar.Solver

type key = string

module Memo = struct
  type 'a entry = { value : 'a; mutable stamp : int }

  type 'a t = {
    mutex : Mutex.t;
    table : (key, 'a entry) Hashtbl.t;
    capacity : int option;
    on_evict : (key -> 'a -> unit) option;
    mutable tick : int;
    mutable hits : int;
    mutable misses : int;
    mutable evictions : int;
  }

  let create ?capacity ?on_evict () =
    (match capacity with
    | Some c when c < 1 ->
        invalid_arg
          (Printf.sprintf "Cache.Memo.create: capacity=%d < 1" c)
    | Some _ | None -> ());
    {
      mutex = Mutex.create ();
      table = Hashtbl.create 64;
      capacity;
      on_evict;
      tick = 0;
      hits = 0;
      misses = 0;
      evictions = 0;
    }

  let locked t f =
    Mutex.lock t.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

  (* Both called with the lock held. *)
  let touch t entry =
    t.tick <- t.tick + 1;
    entry.stamp <- t.tick

  let evict_lru t =
    (* O(size) scan for the stalest stamp; the table never exceeds
       [capacity] entries, so bounded tables pay a bounded scan and
       unbounded ones never reach here.  Returns the victim so callers
       can notify [on_evict] after the lock is released. *)
    let victim =
      Hashtbl.fold
        (fun key entry acc ->
          match acc with
          | Some (_, held) when held.stamp <= entry.stamp -> acc
          | Some _ | None -> Some (key, entry))
        t.table None
    in
    match victim with
    | Some (key, entry) ->
        Hashtbl.remove t.table key;
        t.evictions <- t.evictions + 1;
        Some (key, entry.value)
    | None -> None

  (* Called with the lock held; accumulates victims (oldest first once
     reversed by [notify_evicted]). *)
  let rec evict_over_capacity t acc =
    match t.capacity with
    | Some c when Hashtbl.length t.table >= c -> (
        match evict_lru t with
        | Some victim -> evict_over_capacity t (victim :: acc)
        | None -> acc)
    | Some _ | None -> acc

  (* Called after the lock is released: a callback that re-enters the
     memo (or takes its own locks) cannot deadlock against [t.mutex]. *)
  let notify_evicted t victims =
    match t.on_evict with
    | None -> ()
    | Some f -> List.iter (fun (key, value) -> f key value) (List.rev victims)

  let find_or_compute t key f =
    (* Lookup and hit-count under one lock acquisition so a concurrent
       reader never observes a hit whose counter has not landed yet. *)
    let cached =
      locked t (fun () ->
          match Hashtbl.find_opt t.table key with
          | Some entry ->
              t.hits <- t.hits + 1;
              touch t entry;
              Some entry.value
          | None -> None)
    in
    match cached with
    | Some value -> (value, true)
    | None ->
        (* Compute outside the lock: misses on distinct keys stay parallel.
           Two domains racing on the same key both compute (callers supply
           deterministic functions) and the first insert wins. *)
        let value = f () in
        let victims =
          locked t (fun () ->
              t.misses <- t.misses + 1;
              if not (Hashtbl.mem t.table key) then begin
                let victims = evict_over_capacity t [] in
                t.tick <- t.tick + 1;
                Hashtbl.add t.table key { value; stamp = t.tick };
                victims
              end
              else [])
        in
        notify_evicted t victims;
        (value, false)

  let find t key =
    locked t (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some entry ->
            t.hits <- t.hits + 1;
            touch t entry;
            Some entry.value
        | None ->
            t.misses <- t.misses + 1;
            None)

  let mem t key =
    (* A residency probe, not a use: neither counter moves and the
       entry's recency is untouched, so callers can inspect the table
       (e.g. the serve registry deciding whether a parked eviction is
       stale) without perturbing LRU order or hit-rate statistics. *)
    locked t (fun () -> Hashtbl.mem t.table key)

  let set t key value =
    let victims =
      locked t (fun () ->
          match Hashtbl.find_opt t.table key with
          | Some entry ->
              (* Replacing in place never evicts (and never notifies:
                 the caller handed over the new value knowingly). *)
              let entry = { entry with value } in
              Hashtbl.replace t.table key entry;
              touch t entry;
              []
          | None ->
              let victims = evict_over_capacity t [] in
              t.tick <- t.tick + 1;
              Hashtbl.add t.table key { value; stamp = t.tick };
              victims)
    in
    notify_evicted t victims

  let clear t =
    (* The table and its statistics reset together: after a clear,
       [hit_rate] describes only post-clear traffic, and [tick] restarts
       from 0 — stamps only order the entries currently in the table, so
       an empty table has nothing to stay monotone against.  [on_evict]
       does not fire: cleared entries are dropped by the owner's
       explicit request, not displaced by capacity pressure. *)
    locked t (fun () ->
        Hashtbl.reset t.table;
        t.tick <- 0;
        t.hits <- 0;
        t.misses <- 0;
        t.evictions <- 0)
  let hits t = locked t (fun () -> t.hits)
  let misses t = locked t (fun () -> t.misses)
  let evictions t = locked t (fun () -> t.evictions)
  let size t = locked t (fun () -> Hashtbl.length t.table)

  let hit_rate t =
    locked t (fun () ->
        let total = t.hits + t.misses in
        if total = 0 then 0. else float_of_int t.hits /. float_of_int total)
end

let key_of_model ?algorithm model =
  let algorithm =
    match algorithm with Some a -> a | None -> Solver.recommended model
  in
  let b = Buffer.create 96 in
  Buffer.add_string b
    (Printf.sprintf "%dx%d|%s" (Model.inputs model) (Model.outputs model)
       (Solver.algorithm_to_string algorithm));
  Array.iter
    (fun (c : Traffic.t) ->
      (* Length-prefix the name so no class name can alias the separators;
         %h prints the exact bit pattern of each rate. *)
      Buffer.add_string b
        (Printf.sprintf "|%d:%s;%d;%h;%h;%h"
           (String.length c.Traffic.name)
           c.Traffic.name c.Traffic.bandwidth c.Traffic.alpha c.Traffic.beta
           c.Traffic.service_rate))
    (Model.classes model);
  Buffer.contents b

type t = Solver.solution Memo.t

let create ?capacity () = Memo.create ?capacity ()

let find_or_compute t ?algorithm model f =
  Memo.find_or_compute t (key_of_model ?algorithm model) f

let find_or_solve t ?algorithm model =
  find_or_compute t ?algorithm model (fun () ->
      Solver.solve_full ?algorithm model)

let hits = Memo.hits
let misses = Memo.misses
let evictions = Memo.evictions
let size = Memo.size
let hit_rate = Memo.hit_rate
let clear = Memo.clear
