(** Fixed-size domain pool for deterministic fan-out.

    [run] evaluates a pure task function over indices [0 .. tasks-1] on a
    fixed-size pool of OCaml 5 domains and returns the results in index
    order, so the output is bit-identical regardless of how many domains
    execute it (work stealing only changes {e which} domain computes an
    index, never what is computed).  When only one worker is available —
    [Domain.recommended_domain_count () = 1], an explicit [~domains:1],
    or a single task — no domain is spawned and the tasks run
    sequentially in the calling domain. *)

val recommended_domains : unit -> int
(** Pool width used when [?domains] is omitted:
    [Domain.recommended_domain_count ()] — the runtime's estimate of
    usefully parallel domains on this machine — overridable with the
    [CROSSBAR_DOMAINS] environment variable.
    @raise Invalid_argument if [CROSSBAR_DOMAINS] is set but is not an
    integer [>= 1]: a daemon misconfigured at deploy time must fail
    loudly, not run at a silently substituted width. *)

val run : ?domains:int -> tasks:int -> (int -> 'a) -> 'a array
(** [run ~tasks f] returns [[| f 0; ...; f (tasks-1) |]].  [f] must be
    safe to call from multiple domains (the solver layers are pure).  If
    any task raises, the first exception observed is re-raised in the
    caller after all domains join, and remaining un-started tasks are
    abandoned.
    @raise Invalid_argument if [tasks < 0] or [domains < 1]. *)
