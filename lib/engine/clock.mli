(** Monotonic wall-clock time for telemetry and benchmarks.

    [Unix.gettimeofday] follows the system's civil time: an NTP step or
    an operator's [date] call mid-solve makes a difference of two
    readings negative or wildly wrong.  A short sweep rarely notices; a
    long-running daemon eventually will.  Every wall-time {e delta} in
    this code base is therefore taken on the OS monotonic clock
    ([CLOCK_MONOTONIC]), which only ever moves forward.

    Timestamps ({!now}) are seconds since an unspecified origin (boot,
    typically) — meaningful only for differences, never as civil time.
    Epoch timestamps for display still come from [Unix.time]. *)

val now : unit -> float
(** Monotonic seconds since an arbitrary fixed origin.  Successive calls
    never decrease. *)

val now_ns : unit -> int64
(** The raw monotonic reading in nanoseconds. *)

val elapsed_since : float -> float
(** [elapsed_since start] is [now () -. start], clamped at [0.] — with
    [start] a previous {!now} reading the clamp never fires, but callers
    feeding telemetry get the non-negativity guarantee unconditionally. *)
