(** Batched parameter sweeps: the paper's whole evaluation is "solve the
    product-form model at many parameter points", and this module is the
    one place that does it — fanning points out across a {!Pool},
    deduplicating repeated models through a {!Cache}, and recording
    {!Telemetry} for every solve.

    Determinism: results come back in point order and each point's
    numbers depend only on the model (the solvers are pure), so a sweep
    with [~domains:1] and [~domains:n] produce bit-identical outcomes.
    Telemetry wall times naturally vary run to run; the measures never
    do. *)

type point = {
  label : string;
  model : Crossbar.Model.t;
  algorithm : Crossbar.Solver.algorithm option;
      (** [None] = {!Crossbar.Solver.recommended} *)
}

val point :
  ?algorithm:Crossbar.Solver.algorithm ->
  ?label:string ->
  Crossbar.Model.t ->
  point
(** [label] defaults to ["N1xN2"]. *)

type outcome = {
  point : point;
  solution : Crossbar.Solver.solution;
  wall_seconds : float;
  from_cache : bool;
  from_incremental : bool;
      (** solved via {!Crossbar.Convolution.solve_delta}, reusing the
          previous chain point's factor tree (identical bits, less
          work) *)
}

val measures : outcome -> Crossbar.Measures.t
val log_normalization : outcome -> float

val run :
  ?domains:int ->
  ?cache:Cache.t ->
  ?telemetry:Telemetry.t ->
  ?incremental:bool ->
  point list ->
  outcome array
(** Solve every point; [run points] returns outcomes in the same order
    as [points].  [domains] defaults to {!Pool.recommended_domains};
    pass an existing [cache] to share memoised solutions across sweeps
    (a fresh private cache is used otherwise).  When [telemetry] is
    given, one record per point is appended in point order after the
    pool joins, so the record stream is deterministic too.

    [incremental] (default [false]) groups consecutive points that
    share switch dimensions and class count (and resolve to the
    convolution solver) into chains — {e any} subset of classes may
    change between neighbouring points, in any order; each chain point
    after the first re-solves via {!Crossbar.Convolution.solve_delta},
    recombining only the changed leaves' root paths of its
    predecessor's factor tree ([O(#changed log R)] combines instead of
    [R - 1]).  Chains run sequentially; distinct chains still fan out
    across the pool.  Results are bit-identical with and without the
    flag (and for every domain count); only [from_incremental],
    [tree_combines] and wall time change. *)

val solve_model :
  ?cache:Cache.t ->
  ?telemetry:Telemetry.t ->
  ?algorithm:Crossbar.Solver.algorithm ->
  ?label:string ->
  Crossbar.Model.t ->
  Crossbar.Solver.solution
(** One-point convenience used by callers that interleave solves with
    other work but still want caching and telemetry. *)

val parallel_solve : ?domains:int -> Crossbar.Model.t -> Crossbar.Convolution.t
(** A single convolution solve whose factor-tree build fans out across a
    {!Pool}: leaves (one per class) and each combine level are
    constructed in parallel, which pays off at large class counts [R]
    where leaf construction dominates.  Bit-identical to
    {!Crossbar.Convolution.solve} for every domain count (the mapper
    only changes {e where} each node is computed, never its operands).
    [domains] defaults to {!Pool.recommended_domains}.  Do not call from
    inside another pool task (pools do not nest). *)
