(** Probability special functions: normal and Student-t distributions and the
    regularised incomplete beta function.

    Used by the simulation statistics layer to produce confidence intervals
    without any external numeric dependency. *)

val is_zero : ?eps:float -> float -> bool
(** [is_zero x] is an {e intentional} test against zero: exact by default
    ([eps = 0.], matching structural zeros such as "class has no burst
    component"), tolerance-based when [eps] is given.  NaN is never zero.
    This and the two helpers below are the sanctioned replacements for raw
    float comparisons against literals (lint rule R1). *)

val approx_eq : ?rel:float -> ?abs:float -> float -> float -> bool
(** [approx_eq a b] holds when [|a - b|] is within [abs] (default 1e-12)
    absolutely or within [rel] (default 1e-12) of the larger magnitude.
    Equal infinities compare equal; NaN compares equal to nothing. *)

val ulp_distance : float -> float -> int
(** Number of representable doubles strictly between the two arguments,
    plus one when they differ ([0] iff bit-identical up to [-0. = 0.]);
    [max_int] when either argument is NaN or the distance overflows. *)

val ulp_equal : ?ulps:int -> float -> float -> bool
(** [ulp_equal a b] holds when {!ulp_distance}[ a b <= ulps] (default 4) —
    scale-free "same value up to a few rounding steps" equality. *)

val normal_cdf : float -> float
(** Standard normal cumulative distribution function. *)

val normal_quantile : float -> float
(** Inverse of {!normal_cdf} (Acklam's rational approximation, relative
    error below 1.15e-9).
    @raise Invalid_argument outside (0, 1). *)

val log_beta : float -> float -> float
(** [log_beta a b = log (Gamma a * Gamma b / Gamma (a+b))]. *)

val incomplete_beta : a:float -> b:float -> float -> float
(** [incomplete_beta ~a ~b x] is the regularised incomplete beta function
    [I_x(a, b)], computed by the Lentz continued fraction.
    @raise Invalid_argument if [x] is outside [0, 1] or [a], [b] are not
    positive. *)

val student_t_cdf : df:int -> float -> float
(** CDF of Student's t distribution with [df] degrees of freedom. *)

val student_t_critical : confidence:float -> df:int -> float
(** Two-sided critical value [t_c] such that
    [P(|T| <= t_c) = confidence] for [T ~ t(df)].  E.g.
    [student_t_critical ~confidence:0.95 ~df:29 ≈ 2.045].
    @raise Invalid_argument if [confidence] is outside (0, 1) or [df < 1]. *)
