(** Probability special functions: normal and Student-t distributions and the
    regularised incomplete beta function.

    Used by the simulation statistics layer to produce confidence intervals
    without any external numeric dependency. *)

val normal_cdf : float -> float
(** Standard normal cumulative distribution function. *)

val normal_quantile : float -> float
(** Inverse of {!normal_cdf} (Acklam's rational approximation, relative
    error below 1.15e-9).
    @raise Invalid_argument outside (0, 1). *)

val log_beta : float -> float -> float
(** [log_beta a b = log (Gamma a * Gamma b / Gamma (a+b))]. *)

val incomplete_beta : a:float -> b:float -> float -> float
(** [incomplete_beta ~a ~b x] is the regularised incomplete beta function
    [I_x(a, b)], computed by the Lentz continued fraction.
    @raise Invalid_argument if [x] is outside [0, 1] or [a], [b] are not
    positive. *)

val student_t_cdf : df:int -> float -> float
(** CDF of Student's t distribution with [df] degrees of freedom. *)

val student_t_critical : confidence:float -> df:int -> float
(** Two-sided critical value [t_c] such that
    [P(|T| <= t_c) = confidence] for [T ~ t(df)].  E.g.
    [student_t_critical ~confidence:0.95 ~df:29 ≈ 2.045].
    @raise Invalid_argument if [confidence] is outside (0, 1) or [df < 1]. *)
