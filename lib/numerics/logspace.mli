(** Arithmetic on non-negative reals represented by their natural logarithm.

    Normalisation constants of product-form networks span hundreds of orders
    of magnitude ([P(256,k)^2] terms); this module provides exact-model
    computations that never leave the representable range.  The value [0] is
    represented by [neg_infinity]. *)

type t
(** A non-negative real number stored as its natural logarithm. *)

val zero : t
(** The number 0 (log representation: [neg_infinity]). *)

val one : t
(** The number 1 (log representation: [0.]). *)

val of_float : float -> t
(** [of_float x] represents the non-negative real [x].
    @raise Invalid_argument if [x < 0] or [x] is NaN. *)

val of_log : float -> t
(** [of_log l] represents [exp l] without evaluating the exponential. *)

val to_float : t -> float
(** [to_float v] is the represented real; may overflow to [infinity] or
    underflow to [0.] if the value leaves the double range. *)

val to_log : t -> float
(** [to_log v] is the natural logarithm of the represented value
    ([neg_infinity] for zero). *)

val is_zero : t -> bool

val mul : t -> t -> t
(** Product of the represented values (log-domain addition). *)

val div : t -> t -> t
(** Quotient of the represented values.
    @raise Division_by_zero if the divisor is zero. *)

val add : t -> t -> t
(** Sum of the represented values (log-sum-exp, stable). *)

val sub : t -> t -> t
(** Difference of the represented values.
    @raise Invalid_argument if the result would be negative beyond a small
    relative tolerance (in which case it is clamped to {!zero}). *)

val sum : t array -> t
(** Stable sum of an array: shifts by the maximum exponent before summing
    with compensated accumulation. *)

val ratio : t -> t -> float
(** [ratio a b = to_float (div a b)], the common case for performance
    measures expressed as ratios of normalisation constants. *)

val log_checked : float -> float
(** [log_checked x = to_log (of_float x)]: natural log with the domain
    check, the sanctioned replacement for raw [log] in algorithmic code
    (lint rule R2).
    @raise Invalid_argument if [x < 0] or [x] is NaN. *)

val exp_log : float -> float
(** [exp_log l = to_float (of_log l)]: exponential of a log-domain value,
    the sanctioned replacement for raw [exp] (lint rule R2); underflows to
    [0.] and overflows to [infinity] like {!to_float}. *)

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Prints as [exp(<log value>)]. *)
