(* Lanczos approximation with g = 7, n = 9 (Godfrey coefficients). *)
let lanczos_g = 7.

(* lint: domain-safe — written once at load time, read-only thereafter *)
let lanczos_coefficients =
  [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
     771.32342877765313; -176.61502916214059; 12.507343278686905;
     -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]

let rec lgamma x =
  if Float.is_nan x || x <= 0. then invalid_arg "Special.lgamma: x <= 0"
  else if x < 0.5 then
    (* Reflection keeps the series argument away from the poles. *)
    log (Float.pi /. sin (Float.pi *. x)) -. lgamma (1. -. x)
  else
    let x = x -. 1. in
    let series = ref lanczos_coefficients.(0) in
    for i = 1 to Array.length lanczos_coefficients - 1 do
      series := !series +. (lanczos_coefficients.(i) /. (x +. float_of_int i))
    done;
    let t = x +. lanczos_g +. 0.5 in
    (0.5 *. log (2. *. Float.pi))
    +. ((x +. 0.5) *. log t)
    -. t
    +. log !series

let factorial_table_size = 1024

(* Built eagerly at module init: a [lazy] here is not domain-safe —
   pool workers and banded combines racing to force it raise
   CamlinternalLazy.Undefined — and the table costs ~1k flops, far
   below the price of any synchronisation that would make the lazy
   safe. *)
(* lint: domain-safe — written only during module init, read-only after *)
let log_factorial_table =
  let table = Array.make factorial_table_size 0. in
  for n = 1 to factorial_table_size - 1 do
    table.(n) <- table.(n - 1) +. log (float_of_int n)
  done;
  table

let log_factorial n =
  if n < 0 then invalid_arg "Special.log_factorial: negative"
  else if n < factorial_table_size then log_factorial_table.(n)
  else lgamma (float_of_int n +. 1.)

let log_permutations n k =
  if n < 0 || k < 0 then invalid_arg "Special.log_permutations: negative"
  else if k > n then neg_infinity
  else log_factorial n -. log_factorial (n - k)

let permutations n k =
  if n < 0 || k < 0 then invalid_arg "Special.permutations: negative"
  else if k > n then 0.
  else begin
    (* lint: alloc=product -- one scratch cell per falling factorial *)
    let product = ref 1. in
    for i = 0 to k - 1 do
      product := !product *. float_of_int (n - i)
    done;
    !product
  end

let log_binomial n k =
  if n < 0 || k < 0 then invalid_arg "Special.log_binomial: negative"
  else if k > n then neg_infinity
  else log_factorial n -. log_factorial k -. log_factorial (n - k)

let binomial n k =
  if n < 0 || k < 0 then invalid_arg "Special.binomial: negative"
  else if k > n then 0.
  else begin
    (* Multiply ratios pairwise to stay close to the final magnitude. *)
    let k = if k > n - k then n - k else k in
    let product = ref 1. in
    for i = 1 to k do
      product := !product *. float_of_int (n - k + i) /. float_of_int i
    done;
    !product
  end

let log_rising_factorial c k =
  if c <= 0. then invalid_arg "Special.log_rising_factorial: c <= 0"
  else if k < 0 then invalid_arg "Special.log_rising_factorial: k < 0"
  else lgamma (c +. float_of_int k) -. lgamma c

(* Abramowitz & Stegun 7.1.26; |error| <= 1.5e-7. *)
let erf x =
  let sign = if x < 0. then -1. else 1. in
  let x = Float.abs x in
  let t = 1. /. (1. +. (0.3275911 *. x)) in
  (* Horner form of the published polynomial. *)
  let poly =
    t
    *. (0.254829592
       +. t
          *. (-0.284496736
             +. t *. (1.421413741 +. t *. (-1.453152027 +. t *. 1.061405429)))
       )
  in
  sign *. (1. -. (poly *. exp (-.x *. x)))

let erfc x = 1. -. erf x
