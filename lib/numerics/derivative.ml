let default_step x =
  let scale = Float.max 1. (Float.abs x) in
  Float.cbrt epsilon_float *. scale

let forward ?step ~f x =
  let h = match step with Some h -> h | None -> default_step x in
  (f (x +. h) -. f x) /. h

let central ?step ~f x =
  let h = match step with Some h -> h | None -> default_step x in
  (f (x +. h) -. f (x -. h)) /. (2. *. h)

let richardson ?step ?(levels = 4) ~f x =
  if levels < 1 then invalid_arg "Derivative.richardson: levels < 1";
  let h0 = match step with Some h -> h | None -> default_step x *. 8. in
  (* Neville tableau on central differences with step halving: entry (i,0)
     uses step h0/2^i; extrapolation removes the O(h^2) error terms. *)
  let tableau = Array.make_matrix levels levels 0. in
  for i = 0 to levels - 1 do
    let h = h0 /. Float.pow 2. (float_of_int i) in
    tableau.(i).(0) <- (f (x +. h) -. f (x -. h)) /. (2. *. h);
    for j = 1 to i do
      let factor = Float.pow 4. (float_of_int j) in
      tableau.(i).(j) <-
        ((factor *. tableau.(i).(j - 1)) -. tableau.(i - 1).(j - 1))
        /. (factor -. 1.)
    done
  done;
  tableau.(levels - 1).(levels - 1)
