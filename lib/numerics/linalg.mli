(** Dense linear algebra: Gaussian elimination with partial pivoting.

    Sized for the exact Markov-chain validation solves (state spaces up to a
    few thousand states); no external BLAS. *)

type matrix = float array array
(** Row-major dense matrix; all rows must share a length. *)

val identity : int -> matrix

val copy : matrix -> matrix

val mat_vec : matrix -> float array -> float array
(** Matrix-vector product.
    @raise Invalid_argument on dimension mismatch. *)

val transpose : matrix -> matrix

val solve : matrix -> float array -> float array
(** [solve a b] solves [a x = b] by LU with partial pivoting.  [a] and [b]
    are not modified.
    @raise Failure if [a] is (numerically) singular.
    @raise Invalid_argument on dimension mismatch. *)

val determinant : matrix -> float
(** Determinant via the same factorisation. *)
