type t = { mutable sum : float; mutable compensation : float }

(* lint: alloc=record -- one accumulator per fold, amortised over it *)
let create () = { sum = 0.; compensation = 0. }

let add acc x =
  (* Neumaier's variant: also correct when the new term dominates. *)
  let t = acc.sum +. x in
  if Float.abs acc.sum >= Float.abs x then
    acc.compensation <- acc.compensation +. (acc.sum -. t +. x)
  else acc.compensation <- acc.compensation +. (x -. t +. acc.sum);
  acc.sum <- t

let total acc = acc.sum +. acc.compensation

let reset acc =
  acc.sum <- 0.;
  acc.compensation <- 0.

(* Explicit index loops: same left-to-right accumulation order as the
   Array.iter versions (so totals are bit-identical), without the
   per-call iteration closure. *)
let sum values =
  let acc = create () in
  for i = 0 to Array.length values - 1 do
    add acc values.(i)
  done;
  total acc

let dot xs ys =
  if Array.length xs <> Array.length ys then
    invalid_arg "Kahan.dot: length mismatch";
  let acc = create () in
  for i = 0 to Array.length xs - 1 do
    add acc (xs.(i) *. ys.(i))
  done;
  total acc
