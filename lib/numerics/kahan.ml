type t = { mutable sum : float; mutable compensation : float }

let create () = { sum = 0.; compensation = 0. }

let add acc x =
  (* Neumaier's variant: also correct when the new term dominates. *)
  let t = acc.sum +. x in
  if Float.abs acc.sum >= Float.abs x then
    acc.compensation <- acc.compensation +. (acc.sum -. t +. x)
  else acc.compensation <- acc.compensation +. (x -. t +. acc.sum);
  acc.sum <- t

let total acc = acc.sum +. acc.compensation

let reset acc =
  acc.sum <- 0.;
  acc.compensation <- 0.

let sum values =
  let acc = create () in
  Array.iter (add acc) values;
  total acc

let dot xs ys =
  if Array.length xs <> Array.length ys then
    invalid_arg "Kahan.dot: length mismatch";
  let acc = create () in
  Array.iteri (fun i x -> add acc (x *. ys.(i))) xs;
  total acc
