let sign x = if x > 0. then 1 else if x < 0. then -1 else 0

let bisection ?(tolerance = 1e-12) ?(max_iterations = 200) ~f ~lo ~hi () =
  let flo = f lo and fhi = f hi in
  if sign flo * sign fhi > 0 then
    invalid_arg "Roots.bisection: root not bracketed";
  if flo = 0. then lo
  else if fhi = 0. then hi
  else begin
    let lo = ref lo and hi = ref hi and flo = ref flo in
    let iterations = ref 0 in
    while !hi -. !lo > tolerance *. Float.max 1. (Float.abs !lo)
          && !iterations < max_iterations do
      let mid = 0.5 *. (!lo +. !hi) in
      let fmid = f mid in
      if sign fmid = sign !flo then begin
        lo := mid;
        flo := fmid
      end
      else hi := mid;
      incr iterations
    done;
    0.5 *. (!lo +. !hi)
  end

let brent ?(tolerance = 1e-12) ?(max_iterations = 200) ~f ~lo ~hi () =
  let a = ref lo and b = ref hi in
  let fa = ref (f !a) and fb = ref (f !b) in
  if sign !fa * sign !fb > 0 then invalid_arg "Roots.brent: root not bracketed";
  (* Keep |f b| <= |f a|: b is the best estimate. *)
  if Float.abs !fa < Float.abs !fb then begin
    let t = !a in
    a := !b;
    b := t;
    let t = !fa in
    fa := !fb;
    fb := t
  end;
  let c = ref !a and fc = ref !fa in
  let d = ref (!b -. !a) in
  let bisected = ref true in
  let iterations = ref 0 in
  while !fb <> 0.
        && Float.abs (!b -. !a) > tolerance *. Float.max 1. (Float.abs !b)
        && !iterations < max_iterations do
    let s =
      if !fa <> !fc && !fb <> !fc then
        (* Inverse quadratic interpolation. *)
        (!a *. !fb *. !fc /. ((!fa -. !fb) *. (!fa -. !fc)))
        +. (!b *. !fa *. !fc /. ((!fb -. !fa) *. (!fb -. !fc)))
        +. (!c *. !fa *. !fb /. ((!fc -. !fa) *. (!fc -. !fb)))
      else
        (* Secant. *)
        !b -. (!fb *. (!b -. !a) /. (!fb -. !fa))
    in
    let lower = ((3. *. !a) +. !b) /. 4. and upper = !b in
    let lower, upper = if lower <= upper then (lower, upper) else (upper, lower) in
    let use_bisection =
      s < lower || s > upper
      || (!bisected && Float.abs (s -. !b) >= Float.abs (!b -. !c) /. 2.)
      || ((not !bisected) && Float.abs (s -. !b) >= Float.abs (!c -. !d) /. 2.)
    in
    let s = if use_bisection then 0.5 *. (!a +. !b) else s in
    bisected := use_bisection;
    let fs = f s in
    d := !c;
    c := !b;
    fc := !fb;
    if sign !fa * sign fs < 0 then begin
      b := s;
      fb := fs
    end
    else begin
      a := s;
      fa := fs
    end;
    if Float.abs !fa < Float.abs !fb then begin
      let t = !a in
      a := !b;
      b := t;
      let t = !fa in
      fa := !fb;
      fb := t
    end;
    incr iterations
  done;
  !b

let invert_monotone ?(tolerance = 1e-12) ~f ~target ~lo () =
  let g x = f x -. target in
  let glo = g lo in
  if glo = 0. then lo
  else if glo > 0. then
    failwith "Roots.invert_monotone: target below f(lo) for increasing f"
  else begin
    let hi = ref (Float.max (2. *. Float.abs lo) 1.) in
    let attempts = ref 0 in
    while g !hi < 0. && !attempts < 200 do
      hi := !hi *. 2.;
      incr attempts
    done;
    if g !hi < 0. then failwith "Roots.invert_monotone: no upper bracket found";
    brent ~tolerance ~f:g ~lo ~hi:!hi ()
  end
