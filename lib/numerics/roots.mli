(** Scalar root finding and monotone inversion.

    Capacity planning ("what offered load gives 0.5% blocking?",
    "how many ports for this load?") reduces to inverting monotone blocking
    curves; these solvers do that without derivatives. *)

val bisection :
  ?tolerance:float -> ?max_iterations:int -> f:(float -> float) ->
  lo:float -> hi:float -> unit -> float
(** Root of [f] in [lo, hi] by bisection.
    @raise Invalid_argument if [f lo] and [f hi] have the same strict sign. *)

val brent :
  ?tolerance:float -> ?max_iterations:int -> f:(float -> float) ->
  lo:float -> hi:float -> unit -> float
(** Brent's method (inverse quadratic interpolation with bisection
    safeguard); superlinear on smooth functions.
    @raise Invalid_argument if the root is not bracketed. *)

val invert_monotone :
  ?tolerance:float -> f:(float -> float) -> target:float -> lo:float ->
  unit -> float
(** [invert_monotone ~f ~target ~lo ()] finds [x >= lo] with
    [f x = target] for increasing [f], expanding the bracket upward from
    [lo] as needed.
    @raise Failure if no bracket is found within a huge range. *)
