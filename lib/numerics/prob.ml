(* ---------- float comparison helpers ----------
   The only sanctioned comparison points for float equality outside
   lib/numerics (lint rule R1): callers state which notion of "equal" they
   mean instead of writing a raw [= literal]. *)

let is_zero ?(eps = 0.) x = Float.abs x <= eps

let approx_eq ?(rel = 1e-12) ?(abs = 1e-12) a b =
  if Float.is_nan a || Float.is_nan b then false
  else if a = b then true (* covers equal infinities *)
  else
    let diff = Float.abs (a -. b) in
    diff <= abs || diff <= rel *. Float.max (Float.abs a) (Float.abs b)

(* Map the IEEE 754 bit pattern to a number line where adjacent floats
   differ by one: non-negative floats keep their bits, negative floats are
   reflected below zero. *)
let ulp_index x =
  let bits = Int64.bits_of_float x in
  if Int64.compare bits 0L >= 0 then bits else Int64.sub Int64.min_int bits

let ulp_distance a b =
  if Float.is_nan a || Float.is_nan b then max_int
  else begin
    let d = Int64.sub (ulp_index a) (ulp_index b) in
    let d = if Int64.compare d 0L < 0 then Int64.neg d else d in
    if Int64.compare d (Int64.of_int max_int) >= 0 || Int64.compare d 0L < 0
    then max_int (* Int64.neg min_int overflows back to min_int *)
    else Int64.to_int d
  end

let ulp_equal ?(ulps = 4) a b = ulp_distance a b <= ulps

let normal_cdf x = 0.5 *. Special.erfc (-.x /. sqrt 2.)

(* Acklam's rational approximation to the normal quantile. *)
let normal_quantile p =
  if not (p > 0. && p < 1.) then
    invalid_arg "Prob.normal_quantile: p outside (0,1)";
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  and b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  and c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  and d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let p_low = 0.02425 in
  let rational_tail q =
    (((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4))
    *. q
    +. c.(5)
  and tail_denominator q =
    ((((d.(0) *. q) +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.
  in
  if p < p_low then
    let q = sqrt (-2. *. log p) in
    rational_tail q /. tail_denominator q
  else if p <= 1. -. p_low then begin
    let q = p -. 0.5 in
    let r = q *. q in
    let numerator =
      (((((a.(0) *. r) +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4))
      *. r
      +. a.(5)
    and denominator =
      ((((((b.(0) *. r) +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r) +. b.(4))
      *. r
      +. 1.
    in
    numerator *. q /. denominator
  end
  else
    let q = sqrt (-2. *. log (1. -. p)) in
    -.(rational_tail q /. tail_denominator q)

let log_beta a b = Special.lgamma a +. Special.lgamma b -. Special.lgamma (a +. b)

(* Continued fraction for the incomplete beta function (Lentz's method). *)
let beta_continued_fraction ~a ~b x =
  let tiny = 1e-300 and epsilon = 1e-15 and max_iterations = 300 in
  let qab = a +. b and qap = a +. 1. and qam = a -. 1. in
  let c = ref 1. in
  let d = ref (1. -. (qab *. x /. qap)) in
  if Float.abs !d < tiny then d := tiny;
  d := 1. /. !d;
  let h = ref !d in
  let m = ref 1 in
  let converged = ref false in
  while (not !converged) && !m <= max_iterations do
    let mf = float_of_int !m in
    let m2 = 2. *. mf in
    (* Even step. *)
    let numerator = mf *. (b -. mf) *. x /. ((qam +. m2) *. (a +. m2)) in
    d := 1. +. (numerator *. !d);
    if Float.abs !d < tiny then d := tiny;
    c := 1. +. (numerator /. !c);
    if Float.abs !c < tiny then c := tiny;
    d := 1. /. !d;
    h := !h *. !d *. !c;
    (* Odd step. *)
    let numerator =
      -.(a +. mf) *. (qab +. mf) *. x /. ((a +. m2) *. (qap +. m2))
    in
    d := 1. +. (numerator *. !d);
    if Float.abs !d < tiny then d := tiny;
    c := 1. +. (numerator /. !c);
    if Float.abs !c < tiny then c := tiny;
    d := 1. /. !d;
    let delta = !d *. !c in
    h := !h *. delta;
    if Float.abs (delta -. 1.) < epsilon then converged := true;
    incr m
  done;
  !h

let incomplete_beta ~a ~b x =
  if not (a > 0. && b > 0.) then
    invalid_arg "Prob.incomplete_beta: a, b must be positive";
  if x < 0. || x > 1. then invalid_arg "Prob.incomplete_beta: x outside [0,1]";
  if x = 0. then 0.
  else if x = 1. then 1.
  else begin
    let front =
      exp
        ((a *. log x) +. (b *. log (1. -. x)) -. log_beta a b)
    in
    (* Use the symmetry relation to keep the continued fraction convergent. *)
    if x < (a +. 1.) /. (a +. b +. 2.) then
      front *. beta_continued_fraction ~a ~b x /. a
    else 1. -. (front *. beta_continued_fraction ~a:b ~b:a (1. -. x) /. b)
  end

let student_t_cdf ~df t =
  if df < 1 then invalid_arg "Prob.student_t_cdf: df < 1";
  let dff = float_of_int df in
  let x = dff /. (dff +. (t *. t)) in
  let tail = 0.5 *. incomplete_beta ~a:(dff /. 2.) ~b:0.5 x in
  if t > 0. then 1. -. tail else tail

let student_t_critical ~confidence ~df =
  if not (confidence > 0. && confidence < 1.) then
    invalid_arg "Prob.student_t_critical: confidence outside (0,1)";
  if df < 1 then invalid_arg "Prob.student_t_critical: df < 1";
  let target = 0.5 +. (confidence /. 2.) in
  (* The CDF is monotone; bisect on [0, hi] with an expanding bracket. *)
  let hi = ref 2. in
  while student_t_cdf ~df !hi < target && !hi < 1e8 do
    hi := !hi *. 2.
  done;
  let lo = ref 0. and hi = ref !hi in
  for _ = 1 to 200 do
    let mid = 0.5 *. (!lo +. !hi) in
    if student_t_cdf ~df mid < target then lo := mid else hi := mid
  done;
  0.5 *. (!lo +. !hi)
