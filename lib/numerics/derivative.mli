(** Numerical differentiation.

    The paper approximates the revenue gradient with respect to the bursty
    load [beta_r/mu_r] "via a forward difference" (Section 4); this module
    provides that scheme plus higher-order alternatives used to bound its
    error in the test suite. *)

val default_step : float -> float
(** [default_step x] is a step size balancing truncation and rounding error
    for central differences around [x] ([~ cbrt eps * max 1 |x|]). *)

val forward : ?step:float -> f:(float -> float) -> float -> float
(** First-order forward difference [(f (x+h) - f x) / h] — the scheme the
    paper uses for [dW/d(beta_r/mu_r)]. *)

val central : ?step:float -> f:(float -> float) -> float -> float
(** Second-order central difference [(f (x+h) - f (x-h)) / 2h]. *)

val richardson : ?step:float -> ?levels:int -> f:(float -> float) -> float -> float
(** Richardson extrapolation of the central difference; [levels] halvings
    of the step (default 4).  Accurate to near machine precision for smooth
    [f]. *)
