(** Special functions: log-gamma, factorials, binomial coefficients and
    falling factorials (permutation counts).

    The crossbar normalisation constant is built from
    [P(N, k) = N!/(N-k)!] and [C(N, k)] terms with [N] up to several
    hundred; everything here is exact in log space. *)

val lgamma : float -> float
(** [lgamma x] is [log (Gamma x)] for [x > 0] (Lanczos approximation,
    relative error below 1e-13 on the positive axis).
    @raise Invalid_argument for [x <= 0]. *)

val log_factorial : int -> float
(** [log_factorial n = log n!]; table-backed for small [n].
    @raise Invalid_argument for [n < 0]. *)

val log_permutations : int -> int -> float
(** [log_permutations n k = log (n!/(n-k)!)], the number of ordered
    selections of [k] items from [n].  Returns [neg_infinity] when
    [k > n]; @raise Invalid_argument for negative arguments. *)

val permutations : int -> int -> float
(** [permutations n k = n!/(n-k)!] as a float (may overflow for large
    arguments — use {!log_permutations} in that regime). *)

val log_binomial : int -> int -> float
(** [log_binomial n k = log (n choose k)]; [neg_infinity] when [k > n]. *)

val binomial : int -> int -> float
(** [binomial n k = n choose k] as a float, computed by a stable product. *)

val log_rising_factorial : float -> int -> float
(** [log_rising_factorial c k = log (c (c+1) ... (c+k-1))] for [c > 0];
    used for the Pascal-class weight [C(c-1+k, k) = rising(c,k)/k!]. *)

val erf : float -> float
(** Error function, absolute error below 1.3e-7 (Abramowitz & Stegun
    7.1.26 with symmetry). *)

val erfc : float -> float
(** Complementary error function, [1 - erf x]. *)
