type matrix = float array array

let dimensions m =
  let rows = Array.length m in
  let cols = if rows = 0 then 0 else Array.length m.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> cols then
        invalid_arg "Linalg: ragged matrix")
    m;
  (rows, cols)

let identity n =
  Array.init n (fun i -> Array.init n (fun j -> if i = j then 1. else 0.))

let copy m = Array.map Array.copy m

let mat_vec m v =
  let rows, cols = dimensions m in
  if cols <> Array.length v then invalid_arg "Linalg.mat_vec: dimensions";
  Array.init rows (fun i -> Kahan.dot m.(i) v)

let transpose m =
  let rows, cols = dimensions m in
  Array.init cols (fun j -> Array.init rows (fun i -> m.(i).(j)))

(* In-place LU with partial pivoting on a copy; returns the factored matrix,
   the permutation, and the permutation sign. *)
let lu_factor m =
  let rows, cols = dimensions m in
  if rows <> cols then invalid_arg "Linalg: square matrix required";
  let a = copy m in
  let n = rows in
  let perm = Array.init n Fun.id in
  let sign = ref 1. in
  for col = 0 to n - 1 do
    (* Partial pivot: largest magnitude in this column at or below row. *)
    let pivot_row = ref col in
    for row = col + 1 to n - 1 do
      if Float.abs a.(row).(col) > Float.abs a.(!pivot_row).(col) then
        pivot_row := row
    done;
    if !pivot_row <> col then begin
      let tmp = a.(col) in
      a.(col) <- a.(!pivot_row);
      a.(!pivot_row) <- tmp;
      let tmp = perm.(col) in
      perm.(col) <- perm.(!pivot_row);
      perm.(!pivot_row) <- tmp;
      sign := -. !sign
    end;
    let pivot = a.(col).(col) in
    if Float.abs pivot < 1e-300 then failwith "Linalg: singular matrix";
    for row = col + 1 to n - 1 do
      let factor = a.(row).(col) /. pivot in
      a.(row).(col) <- factor;
      for k = col + 1 to n - 1 do
        a.(row).(k) <- a.(row).(k) -. (factor *. a.(col).(k))
      done
    done
  done;
  (a, perm, !sign)

let solve m b =
  let n = Array.length m in
  if Array.length b <> n then invalid_arg "Linalg.solve: dimensions";
  let lu, perm, _ = lu_factor m in
  let x = Array.init n (fun i -> b.(perm.(i))) in
  (* Forward substitution (unit lower triangle). *)
  for i = 1 to n - 1 do
    for j = 0 to i - 1 do
      x.(i) <- x.(i) -. (lu.(i).(j) *. x.(j))
    done
  done;
  (* Back substitution. *)
  for i = n - 1 downto 0 do
    for j = i + 1 to n - 1 do
      x.(i) <- x.(i) -. (lu.(i).(j) *. x.(j))
    done;
    x.(i) <- x.(i) /. lu.(i).(i)
  done;
  x

let determinant m =
  match lu_factor m with
  | lu, _, sign ->
      let product = ref sign in
      Array.iteri (fun i row -> product := !product *. row.(i)) lu;
      !product
  | exception Failure _ -> 0.
