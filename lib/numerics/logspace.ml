type t = float (* natural log of the represented non-negative real *)

let zero = neg_infinity
let one = 0.

let of_float x =
  if Float.is_nan x || x < 0. then
    invalid_arg "Logspace.of_float: negative or NaN"
  else log x

let of_log l = l
let to_float l = exp l
let to_log l = l
let is_zero l = l = neg_infinity

let mul a b =
  (* neg_infinity + infinity would be NaN; zero absorbs. *)
  if a = neg_infinity || b = neg_infinity then neg_infinity else a +. b

let div a b =
  if b = neg_infinity then raise Division_by_zero
  else if a = neg_infinity then neg_infinity
  else a -. b

let add a b =
  if a = neg_infinity then b
  else if b = neg_infinity then a
  else
    let hi = Float.max a b and lo = Float.min a b in
    hi +. Float.log1p (exp (lo -. hi))

(* Relative slack (in log domain) below which a slightly negative
   difference is attributed to rounding and clamped to zero. *)
let sub_tolerance = 1e-12

let sub a b =
  if b = neg_infinity then a
  else if a = neg_infinity then
    invalid_arg "Logspace.sub: negative result (0 - positive)"
  else if a > b then a +. Float.log1p (-.exp (b -. a))
  else if b -. a <= sub_tolerance then neg_infinity
  else invalid_arg "Logspace.sub: negative result"

let sum values =
  let hi = Array.fold_left Float.max neg_infinity values in
  if hi = neg_infinity then neg_infinity
  else begin
    (* Compensated accumulation of the shifted exponentials. *)
    let total = ref 0. and comp = ref 0. in
    Array.iter
      (fun v ->
        let term = exp (v -. hi) in
        let t = !total +. term in
        if Float.abs !total >= Float.abs term then
          comp := !comp +. (!total -. t +. term)
        else comp := !comp +. (term -. t +. !total);
        total := t)
      values;
    hi +. log (!total +. !comp)
  end

let ratio a b = to_float (div a b)

(* Guarded scalar entry points: the raw [log]/[exp] primitives silently
   produce NaN (log of a negative) or lose the domain check; these are the
   forms lint rule R2 steers callers in lib/core and lib/markov towards. *)
let log_checked x = to_log (of_float x)
let exp_log l = to_float (of_log l)
let compare = Float.compare
let pp ppf l = Format.fprintf ppf "exp(%g)" l
