(** Compensated (Neumaier) floating-point summation.

    Accumulates long series of terms of mixed magnitude — simulation
    statistics, convolution sums — with error independent of the number of
    terms. *)

type t
(** A mutable compensated accumulator. *)

val create : unit -> t
(** A fresh accumulator holding 0. *)

val add : t -> float -> unit
(** [add acc x] adds [x] to the running sum. *)

val total : t -> float
(** Current compensated total. *)

val reset : t -> unit
(** Resets the accumulator to 0. *)

val sum : float array -> float
(** One-shot compensated sum of an array. *)

val dot : float array -> float array -> float
(** Compensated dot product.
    @raise Invalid_argument on length mismatch. *)
