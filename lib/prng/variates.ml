let exponential rng ~rate =
  if not (rate > 0.) then invalid_arg "Variates.exponential: rate <= 0";
  (* 1 - u avoids log 0 since Rng.float is in [0, 1). *)
  -.Float.log1p (-.Rng.float rng) /. rate

let erlang rng ~shape ~rate =
  if shape <= 0 then invalid_arg "Variates.erlang: shape <= 0";
  let total = ref 0. in
  for _ = 1 to shape do
    total := !total +. exponential rng ~rate
  done;
  !total

(* Slack allowed when checking that branch probabilities sum to 1. *)
let probability_sum_tolerance = 1e-9

let hyperexponential rng ~branches =
  let total_probability =
    Array.fold_left (fun acc (p, _) -> acc +. p) 0. branches
  in
  if Float.abs (total_probability -. 1.) > probability_sum_tolerance then
    invalid_arg "Variates.hyperexponential: probabilities must sum to 1";
  Array.iter
    (fun (p, rate) ->
      if p < 0. || not (rate > 0.) then
        invalid_arg "Variates.hyperexponential: bad branch")
    branches;
  let u = Rng.float rng in
  let rec pick i cumulative =
    if i = Array.length branches - 1 then branches.(i)
    else
      let p, _ = branches.(i) in
      if u < cumulative +. p then branches.(i) else pick (i + 1) (cumulative +. p)
  in
  let _, rate = pick 0 0. in
  exponential rng ~rate

let uniform rng ~lo ~hi =
  if hi < lo then invalid_arg "Variates.uniform: hi < lo";
  lo +. ((hi -. lo) *. Rng.float rng)

let pareto rng ~shape ~scale =
  if not (shape > 0. && scale > 0.) then invalid_arg "Variates.pareto: bad params";
  scale /. Float.pow (1. -. Rng.float rng) (1. /. shape)

let distinct_ints rng ~bound ~count =
  if count < 0 || bound < 0 || count > bound then
    invalid_arg "Variates.distinct_ints: count > bound";
  (* Floyd's algorithm: for j = bound-count .. bound-1, insert a random
     element of [0, j]; on collision insert j itself. *)
  let chosen = Hashtbl.create (2 * count) in
  let result = ref [] in
  for j = bound - count to bound - 1 do
    let candidate = Rng.int rng ~bound:(j + 1) in
    let value = if Hashtbl.mem chosen candidate then j else candidate in
    Hashtbl.replace chosen value ();
    result := value :: !result
  done;
  Array.of_list !result
