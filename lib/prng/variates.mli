(** Random variates over an {!Rng.t} source.

    Provides the holding-time distributions used to exercise the model's
    insensitivity property (the steady state depends on service
    distributions only through their means — paper Section 2, citing
    Burman–Lehoczky–Lim). *)

val exponential : Rng.t -> rate:float -> float
(** Exponential with rate [rate] (mean [1/rate]).
    @raise Invalid_argument if [rate <= 0]. *)

val erlang : Rng.t -> shape:int -> rate:float -> float
(** Sum of [shape] exponentials of rate [rate] (mean [shape/rate]). *)

val hyperexponential : Rng.t -> branches:(float * float) array -> float
(** Mixture of exponentials: [(probability, rate)] branches.
    @raise Invalid_argument if probabilities do not sum to ~1 or a rate is
    non-positive. *)

val uniform : Rng.t -> lo:float -> hi:float -> float

val pareto : Rng.t -> shape:float -> scale:float -> float
(** Pareto with minimum [scale] and tail index [shape]
    (mean [shape*scale/(shape-1)] for [shape > 1]). *)

val distinct_ints : Rng.t -> bound:int -> count:int -> int array
(** [count] distinct uniform integers from [0, bound) — the random port
    set of a multi-rate connection request.  Uses Floyd's algorithm:
    [O(count)] expected time, no [O(bound)] allocation.
    @raise Invalid_argument if [count > bound] or either is negative. *)
