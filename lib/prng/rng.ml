type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
  mutable splits : int; (* distinguishes successive splits of one parent *)
}

(* splitmix64: expands a 64-bit seed into independent-looking 64-bit
   values; the recommended seeder for xoshiro. *)
let splitmix64_next state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3; splits = 0 }

let copy t = { t with s0 = t.s0 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let uint64 t =
  let result = Int64.add (rotl (Int64.add t.s0 t.s3) 23) t.s0 in
  let shifted = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 shifted;
  t.s3 <- rotl t.s3 45;
  result

(* Published jump polynomial for xoshiro256++ (advances 2^128 steps). *)
let jump_constants =
  [| 0x180EC6D33CFD0ABAL; 0xD5A61266F0C9392CL; 0xA9582618E03FC9AAL;
     0x39ABDC4529B1661CL |]

let jump t =
  let s0 = ref 0L and s1 = ref 0L and s2 = ref 0L and s3 = ref 0L in
  Array.iter
    (fun constant ->
      for bit = 0 to 63 do
        if Int64.logand constant (Int64.shift_left 1L bit) <> 0L then begin
          s0 := Int64.logxor !s0 t.s0;
          s1 := Int64.logxor !s1 t.s1;
          s2 := Int64.logxor !s2 t.s2;
          s3 := Int64.logxor !s3 t.s3
        end;
        ignore (uint64 t)
      done)
    jump_constants;
  t.s0 <- !s0;
  t.s1 <- !s1;
  t.s2 <- !s2;
  t.s3 <- !s3

let split t =
  (* Jump a private copy (1 + splits) times so each successive split of the
     same parent lands in a distinct 2^128-wide stream. *)
  let child = copy t in
  for _ = 0 to t.splits do
    jump child
  done;
  t.splits <- t.splits + 1;
  child.splits <- 0;
  child

let float t =
  (* Top 53 bits scaled to [0, 1). *)
  let bits = Int64.shift_right_logical (uint64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let int t ~bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  let bound64 = Int64.of_int bound in
  (* Rejection sampling over the largest multiple of [bound] below 2^63
     (we use 63 bits so all values are non-negative as OCaml ints). *)
  let limit = Int64.sub (Int64.div Int64.max_int bound64) 1L in
  let limit = Int64.mul limit bound64 in
  let rec draw () =
    let raw = Int64.shift_right_logical (uint64 t) 1 in
    if raw >= limit then draw () else Int64.to_int (Int64.rem raw bound64)
  in
  draw ()

let bool t = Int64.logand (uint64 t) 1L = 1L
