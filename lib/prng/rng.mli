(** Deterministic pseudo-random number generation: xoshiro256++ seeded via
    splitmix64.

    Simulation experiments must be reproducible bit-for-bit from a seed and
    support independent streams for independent replications; the stdlib
    [Random] offers no stability guarantee across versions, so the
    generator is implemented here from the published reference algorithms
    (Blackman & Vigna). *)

type t
(** Mutable generator state (256 bits). *)

val create : seed:int -> t
(** Generator deterministically derived from [seed] by splitmix64 state
    expansion. *)

val copy : t -> t

val split : t -> t
(** [split t] returns a new generator 2^128 steps ahead of [t] in the
    xoshiro256++ sequence (the published jump polynomial) and leaves [t]
    itself unchanged {e except} that repeated splits of the same generator
    advance an internal stream counter so every split is distinct.  Streams
    obtained by successive splits are non-overlapping for any realistic
    draw count. *)

val uint64 : t -> int64
(** Next 64 raw bits. *)

val float : t -> float
(** Uniform in [0, 1) with 53 random bits. *)

val int : t -> bound:int -> int
(** Uniform integer in [0, bound) by rejection (no modulo bias).
    @raise Invalid_argument if [bound <= 0]. *)

val bool : t -> bool
