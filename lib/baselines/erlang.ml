let erlang_b ~servers ~offered_load =
  if servers < 0 then invalid_arg "Erlang.erlang_b: servers < 0";
  if offered_load < 0. then invalid_arg "Erlang.erlang_b: offered_load < 0";
  let b = ref 1. in
  for n = 1 to servers do
    b := offered_load *. !b /. (float_of_int n +. (offered_load *. !b))
  done;
  !b

let erlang_c ~servers ~offered_load =
  if offered_load >= float_of_int servers then
    invalid_arg "Erlang.erlang_c: offered load >= servers (unstable)";
  let b = erlang_b ~servers ~offered_load in
  let c = float_of_int servers in
  c *. b /. (c -. (offered_load *. (1. -. b)))

let servers_for_blocking ~offered_load ~target =
  if not (target > 0. && target < 1.) then
    invalid_arg "Erlang.servers_for_blocking: target outside (0,1)";
  let rec search n b =
    if b <= target then n
    else
      let n = n + 1 in
      let b = offered_load *. b /. (float_of_int n +. (offered_load *. b)) in
      search n b
  in
  search 0 1.
