(* p(k) ∝ C(sources, k) a^k for k = 0..servers, a = idle_rate/service_rate.
   Computed by a ratio recursion to avoid large binomials. *)
let occupancy_tail ~servers ~sources ~ratio =
  if servers < 0 then invalid_arg "Engset: servers < 0";
  if sources < 0 then invalid_arg "Engset: sources < 0";
  let top = min servers sources in
  let term = ref 1. and total = ref 1. and last = ref 1. in
  for k = 1 to top do
    term :=
      !term *. ratio
      *. (float_of_int (sources - k + 1) /. float_of_int k);
    total := !total +. !term;
    last := !term
  done;
  if sources < servers then 0. (* the group can never fill *)
  else !last /. !total

let validate ~idle_rate ~service_rate =
  if not (idle_rate > 0.) then invalid_arg "Engset: idle_rate <= 0";
  if not (service_rate > 0.) then invalid_arg "Engset: service_rate <= 0"

let time_congestion ~servers ~sources ~idle_rate ~service_rate =
  validate ~idle_rate ~service_rate;
  occupancy_tail ~servers ~sources ~ratio:(idle_rate /. service_rate)

let call_congestion ~servers ~sources ~idle_rate ~service_rate =
  validate ~idle_rate ~service_rate;
  (* Arriving-customer distribution = time distribution with one fewer
     source. *)
  occupancy_tail ~servers ~sources:(sources - 1)
    ~ratio:(idle_rate /. service_rate)
