(** Patel's synchronous (slotted) crossbar — the baseline design the
    paper's introduction contrasts with the asynchronous switch.

    [N1] inputs each issue a request with probability [p] per slot,
    addressed to a uniformly random one of [N2] outputs; each output
    grants one request, the rest are dropped (input buffers ignored, the
    classical memoryless analysis of Patel 1981). *)

val accepted_per_output : inputs:int -> outputs:int -> request_probability:float -> float
(** Expected grants per output per slot: [1 - (1 - p/N2)^N1].
    @raise Invalid_argument if [p] is outside [0, 1] or a dimension is
    [< 1]. *)

val throughput : inputs:int -> outputs:int -> request_probability:float -> float
(** Expected grants per {e input} per slot:
    [(N2/N1) (1 - (1 - p/N2)^N1)]. *)

val acceptance_probability : inputs:int -> outputs:int -> request_probability:float -> float
(** Probability a given request is granted ([throughput / p]); 1 when
    [p = 0]. *)

val saturation_throughput : size:int -> float
(** Per-port throughput at [p = 1] on a square [size x size] switch;
    tends to [1 - 1/e ~ 0.632] as the switch grows — the classical
    head-of-line-free slotted crossbar limit. *)
