let stages ~switch_size ~fanout =
  if fanout < 2 then invalid_arg "Multistage: fanout < 2";
  if switch_size < fanout then invalid_arg "Multistage: switch too small";
  let rec count size acc =
    if size = 1 then acc
    else if size mod fanout <> 0 then
      invalid_arg "Multistage: size not a power of fanout"
    else count (size / fanout) (acc + 1)
  in
  count switch_size 0

let throughput ~switch_size ~fanout ~request_probability =
  if not (request_probability >= 0. && request_probability <= 1.) then
    invalid_arg "Multistage: request probability outside [0,1]";
  let num_stages = stages ~switch_size ~fanout in
  let k = float_of_int fanout in
  let p = ref request_probability in
  for _ = 1 to num_stages do
    p := 1. -. Float.pow (1. -. (!p /. k)) k
  done;
  !p

let acceptance_probability ~switch_size ~fanout ~request_probability =
  if Crossbar_numerics.Prob.is_zero request_probability then 1.
  else
    throughput ~switch_size ~fanout ~request_probability
    /. request_probability

let crosspoint_complexity ~switch_size ~fanout =
  let num_stages = stages ~switch_size ~fanout in
  switch_size / fanout * num_stages * fanout * fanout
