let validate ~inputs ~outputs ~request_probability =
  if inputs < 1 || outputs < 1 then
    invalid_arg "Sync_crossbar: dimensions must be >= 1";
  if not (request_probability >= 0. && request_probability <= 1.) then
    invalid_arg "Sync_crossbar: request probability outside [0,1]"

let accepted_per_output ~inputs ~outputs ~request_probability =
  validate ~inputs ~outputs ~request_probability;
  let miss = 1. -. (request_probability /. float_of_int outputs) in
  1. -. Float.pow miss (float_of_int inputs)

let throughput ~inputs ~outputs ~request_probability =
  accepted_per_output ~inputs ~outputs ~request_probability
  *. float_of_int outputs /. float_of_int inputs

let acceptance_probability ~inputs ~outputs ~request_probability =
  if Crossbar_numerics.Prob.is_zero request_probability then begin
    validate ~inputs ~outputs ~request_probability;
    1.
  end
  else throughput ~inputs ~outputs ~request_probability /. request_probability

let saturation_throughput ~size =
  throughput ~inputs:size ~outputs:size ~request_probability:1.
