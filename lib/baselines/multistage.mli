(** Multistage interconnection network (delta/banyan) throughput — the
    [O(N log N)] alternative the paper's introduction motivates the
    crossbar against.

    An [N x N] delta network built from [k x k] unbuffered crossbars has
    [log_k N] stages; a request surviving stage [i] reaches stage [i+1].
    Patel's recurrence propagates the per-link request probability
    [p_{i+1} = 1 - (1 - p_i / k)^k]. *)

val stages : switch_size:int -> fanout:int -> int
(** [log_k N].
    @raise Invalid_argument unless [switch_size] is an exact power of
    [fanout >= 2]. *)

val throughput : switch_size:int -> fanout:int -> request_probability:float -> float
(** Per-port accepted probability after all stages. *)

val acceptance_probability : switch_size:int -> fanout:int -> request_probability:float -> float
(** [throughput / p] (1 when [p = 0]). *)

val crosspoint_complexity : switch_size:int -> fanout:int -> int
(** Total crosspoints: [(N / k) log_k N * k^2] — the [O(N log N)] cost to
    compare against the crossbar's [N^2]. *)
