(** Engset loss formulas: finite-source (smooth) traffic on a full-access
    server group.

    This is the single-resource analogue of the paper's Bernoulli class
    and exhibits the same distinction the crossbar simulator measures:
    {e time congestion} (fraction of time all servers busy) differs from
    {e call congestion} (fraction of attempts blocked) because arrivals
    from fewer idle sources are less frequent exactly when the group is
    full. *)

val time_congestion : servers:int -> sources:int -> idle_rate:float ->
  service_rate:float -> float
(** Stationary probability that all [servers] are busy, with [sources]
    independent sources each requesting at [idle_rate] while idle and
    holding for mean [1/service_rate].
    @raise Invalid_argument on non-positive rates, [servers < 0] or
    [sources < servers] making the formula degenerate ([sources] may be
    at most exhausted: if [sources <= servers] blocking is 0). *)

val call_congestion : servers:int -> sources:int -> idle_rate:float ->
  service_rate:float -> float
(** Probability an {e attempt} finds all servers busy; equals the time
    congestion of the system with one source removed (arriving customer's
    view). *)
