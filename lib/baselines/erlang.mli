(** Erlang loss formulas — the classical single-resource anchors.

    A crossbar input (or output) port group behaves like an Erlang loss
    group in limiting regimes; these formulas provide sanity bounds and
    the classic capacity-planning vocabulary the paper's model
    generalises. *)

val erlang_b : servers:int -> offered_load:float -> float
(** Blocking probability of M/M/c/c (Erlang B), by the numerically stable
    recursion [B(0) = 1], [B(n) = rho B(n-1) / (n + rho B(n-1))].
    @raise Invalid_argument if [servers < 0] or [offered_load < 0]. *)

val erlang_c : servers:int -> offered_load:float -> float
(** Probability of waiting in M/M/c (Erlang C); requires
    [offered_load < servers] for stability.
    @raise Invalid_argument when unstable. *)

val servers_for_blocking : offered_load:float -> target:float -> int
(** Smallest [c] with [erlang_b ~servers:c <= target].
    @raise Invalid_argument if [target] is outside (0, 1). *)
