module Json = Crossbar_engine.Json

type r3_scope = Reachable_from of string list | Paths of string list

type t = {
  rules : Rule.id list;
  numerics_prefixes : string list;
  ordering_literals : float list;
  r2_prefixes : string list;
  r2_allowlist : string list;
  r2_banned : string list;
  r3_scope : r3_scope;
  mutable_makers : string list;
  r4_prefixes : string list;
  stdout_names : string list;
  r6_prefixes : string list;
  r8_sanctioned_types : string list;
  r8_mutable_types : string list;
  r9_roots : string list;
  r9_lock_wrappers : string list;
  r10_sinks : string list;
  r10_guarded_types : string list;
  hot_roots : string list;
  r12_boundaries : string list;
  r13_log_producers : string list;
  r13_linear_producers : string list;
  r13_mantissa_producers : string list;
  doc_coverage_threshold : float;
  doc_coverage_paths : string list;
}

let default =
  {
    rules = Rule.all;
    numerics_prefixes = [ "lib/numerics" ];
    ordering_literals = [ 0.; 1.; -1. ];
    r2_prefixes = [ "lib/core"; "lib/markov" ];
    r2_allowlist = [];
    r2_banned =
      [
        "exp"; "log"; "log1p"; "expm1";
        "Float.exp"; "Float.log"; "Float.log1p"; "Float.expm1";
        "Stdlib.exp"; "Stdlib.log"; "Stdlib.log1p"; "Stdlib.expm1";
      ];
    r3_scope = Reachable_from [ "lib/engine" ];
    mutable_makers =
      [
        "ref"; "Hashtbl.create"; "Queue.create"; "Stack.create";
        "Buffer.create"; "Bytes.create"; "Bytes.make"; "Weak.create";
        "Stdlib.ref"; "Random.self_init";
      ];
    r4_prefixes = [ "lib" ];
    stdout_names =
      [
        "print_char"; "print_string"; "print_bytes"; "print_int";
        "print_float"; "print_endline"; "print_newline"; "stdout";
        "Printf.printf"; "Format.printf"; "Format.print_string";
        "Format.print_int"; "Format.print_float"; "Format.print_newline";
        "Format.print_space"; "Format.print_cut"; "Format.print_flush";
        "Format.std_formatter"; "Stdlib.stdout"; "Stdlib.print_string";
        "Stdlib.print_endline"; "Stdlib.print_newline"; "Stdlib.print_int";
        "Stdlib.print_float"; "Stdlib.print_char";
      ];
    r6_prefixes = [ "lib" ];
    r8_sanctioned_types =
      [
        "Stdlib.Atomic.t"; "Stdlib__Atomic.t"; "Atomic.t";
        "Stdlib.Mutex.t"; "Stdlib__Mutex.t"; "Mutex.t";
        "Stdlib.Condition.t"; "Stdlib__Condition.t"; "Condition.t";
        "Stdlib.Semaphore.Counting.t"; "Stdlib__Semaphore.Counting.t";
        "Stdlib.Domain.DLS.key"; "Stdlib__Domain.DLS.key"; "Domain.DLS.key";
      ];
    r8_mutable_types =
      [
        "Stdlib.Hashtbl.t"; "Stdlib__Hashtbl.t"; "Hashtbl.t";
        "Stdlib.Queue.t"; "Stdlib__Queue.t"; "Queue.t";
        "Stdlib.Stack.t"; "Stdlib__Stack.t"; "Stack.t";
        "Stdlib.Buffer.t"; "Stdlib__Buffer.t"; "Buffer.t";
        "Stdlib.Weak.t"; "Stdlib__Weak.t"; "Weak.t";
        "Stdlib.Random.State.t"; "Stdlib__Random.State.t"; "Random.State.t";
      ];
    r9_roots = [ "lib/engine" ];
    r9_lock_wrappers = [ "Mutex.protect"; "Stdlib.Mutex.protect"; "locked" ];
    r10_sinks =
      [ "Pool.run"; "Band_pool.run"; "Domain.spawn"; "Domain.spawn_with" ];
    r10_guarded_types =
      [
        "Crossbar_engine.Telemetry.t"; "Crossbar_engine__Telemetry.t";
        "Telemetry.t";
        "Crossbar_engine.Cache.Memo.t"; "Crossbar_engine__Cache.Memo.t";
        "Cache.Memo.t"; "Memo.t";
        "Crossbar_serve.Registry.t"; "Crossbar_serve__Registry.t";
        "Registry.t";
      ];
    hot_roots =
      [
        "Convolution.combine"; "Convolution.update";
        "Convolution.leave_one_out"; "Lattice.get"; "Lattice.set";
        "Lattice.unsafe_get"; "Lattice.unsafe_set"; "Lattice.reset";
        "Lattice.max_abs"; "Lattice.rescale"; "Lattice.normalize";
        "Lattice.add_scale"; "Lattice.apply_chunks"; "Kahan.add";
        "Kahan.total"; "Kahan.sum"; "Kahan.dot";
      ];
    r12_boundaries =
      [
        "Mutex.protect"; "Stdlib.Mutex.protect"; "locked"; "Pool.run";
        "Band_pool.run"; "Domain.spawn"; "Domain.spawn_with"; "Batcher.run";
      ];
    r13_log_producers =
      [
        "Logspace.of_float"; "Logspace.of_log"; "Logspace.to_log";
        "Logspace.log_checked"; "Logspace.mul"; "Logspace.div";
        "Logspace.add"; "Logspace.sub"; "Logspace.sum";
        "Convolution.log_g"; "Convolution.log_normalization";
      ];
    r13_linear_producers =
      [ "Logspace.to_float"; "Logspace.exp_log"; "Logspace.ratio" ];
    r13_mantissa_producers = [ "Lattice.get"; "Lattice.unsafe_get" ];
    doc_coverage_threshold = 0.9;
    doc_coverage_paths = [ "lib/lint"; "lib/lint_typed"; "lib/serve" ];
  }

let enabled t rule = rule = Rule.Syntax || List.mem rule t.rules

let normalize path =
  let path =
    if String.length path > 2 && String.sub path 0 2 = "./" then
      String.sub path 2 (String.length path - 2)
    else path
  in
  let absolute = String.length path > 0 && path.[0] = '/' in
  let body =
    String.concat "/" (String.split_on_char '/' path |> List.filter (( <> ) ""))
  in
  if absolute then "/" ^ body else body

let matches path prefixes =
  let path = normalize path in
  List.exists
    (fun prefix ->
      let prefix = normalize prefix in
      String.equal path prefix
      || String.starts_with ~prefix:(prefix ^ "/") path)
    prefixes

(* ---------- JSON (de)serialisation ---------- *)

let strings items = Json.List (List.map (fun s -> Json.String s) items)

let to_json t =
  let scope_kind, scope_prefixes =
    match t.r3_scope with
    | Reachable_from prefixes -> ("reachable_from", prefixes)
    | Paths prefixes -> ("paths", prefixes)
  in
  Json.Assoc
    [
      ("schema", Json.String "crossbar-lint-config/1");
      ( "rules",
        Json.List
          (List.map (fun r -> Json.String (Rule.to_string r)) t.rules) );
      ("numerics_prefixes", strings t.numerics_prefixes);
      ( "ordering_literals",
        Json.List (List.map (fun v -> Json.Float v) t.ordering_literals) );
      ("r2_prefixes", strings t.r2_prefixes);
      ("r2_allowlist", strings t.r2_allowlist);
      ("r2_banned", strings t.r2_banned);
      ( "r3_scope",
        Json.Assoc
          [
            ("kind", Json.String scope_kind);
            ("prefixes", strings scope_prefixes);
          ] );
      ("mutable_makers", strings t.mutable_makers);
      ("r4_prefixes", strings t.r4_prefixes);
      ("stdout_names", strings t.stdout_names);
      ("r6_prefixes", strings t.r6_prefixes);
      ("r8_sanctioned_types", strings t.r8_sanctioned_types);
      ("r8_mutable_types", strings t.r8_mutable_types);
      ("r9_roots", strings t.r9_roots);
      ("r9_lock_wrappers", strings t.r9_lock_wrappers);
      ("r10_sinks", strings t.r10_sinks);
      ("r10_guarded_types", strings t.r10_guarded_types);
      ("hot_roots", strings t.hot_roots);
      ("r12_boundaries", strings t.r12_boundaries);
      ("r13_log_producers", strings t.r13_log_producers);
      ("r13_linear_producers", strings t.r13_linear_producers);
      ("r13_mantissa_producers", strings t.r13_mantissa_producers);
      ( "doc_coverage",
        Json.Assoc
          [
            ("threshold", Json.Float t.doc_coverage_threshold);
            ("paths", strings t.doc_coverage_paths);
          ] );
    ]

let of_json json =
  let ( let* ) = Result.bind in
  let field key =
    match Json.member key json with
    | Some value -> Ok value
    | None -> Error (Printf.sprintf "config: missing field %S" key)
  in
  let string_list key =
    let* value = field key in
    match value with
    | Json.List items ->
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            match item with
            | Json.String s -> Ok (s :: acc)
            | _ -> Error (Printf.sprintf "config: %S must hold strings" key))
          (Ok []) items
        |> Result.map List.rev
    | _ -> Error (Printf.sprintf "config: %S must be a list" key)
  in
  let* schema = field "schema" in
  let* () =
    match schema with
    | Json.String "crossbar-lint-config/1" -> Ok ()
    | _ -> Error "config: missing schema \"crossbar-lint-config/1\""
  in
  let* rule_names = string_list "rules" in
  let* rules =
    List.fold_left
      (fun acc name ->
        let* acc = acc in
        match Rule.of_string name with
        | Some rule -> Ok (rule :: acc)
        | None -> Error (Printf.sprintf "config: unknown rule id %S" name))
      (Ok []) rule_names
    |> Result.map List.rev
  in
  let* numerics_prefixes = string_list "numerics_prefixes" in
  let* ordering_literals =
    let* value = field "ordering_literals" in
    match value with
    | Json.List items ->
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            match item with
            | Json.Float v -> Ok (v :: acc)
            | Json.Int v -> Ok (float_of_int v :: acc)
            | _ -> Error "config: \"ordering_literals\" must hold numbers")
          (Ok []) items
        |> Result.map List.rev
    | _ -> Error "config: \"ordering_literals\" must be a list"
  in
  let* r2_prefixes = string_list "r2_prefixes" in
  let* r2_allowlist = string_list "r2_allowlist" in
  let* r2_banned = string_list "r2_banned" in
  let* r3_scope =
    let* value = field "r3_scope" in
    let* kind =
      match Json.member "kind" value with
      | Some (Json.String kind) -> Ok kind
      | _ -> Error "config: \"r3_scope\" needs a string \"kind\""
    in
    let* prefixes =
      match Json.member "prefixes" value with
      | Some (Json.List items) ->
          List.fold_left
            (fun acc item ->
              let* acc = acc in
              match item with
              | Json.String s -> Ok (s :: acc)
              | _ -> Error "config: \"r3_scope\" prefixes must be strings")
            (Ok []) items
          |> Result.map List.rev
      | _ -> Error "config: \"r3_scope\" needs a \"prefixes\" list"
    in
    match kind with
    | "reachable_from" -> Ok (Reachable_from prefixes)
    | "paths" -> Ok (Paths prefixes)
    | other ->
        Error
          (Printf.sprintf
             "config: \"r3_scope\" kind %S is neither \"reachable_from\" nor \
              \"paths\""
             other)
  in
  let* mutable_makers = string_list "mutable_makers" in
  let* r4_prefixes = string_list "r4_prefixes" in
  let* stdout_names = string_list "stdout_names" in
  let* r6_prefixes = string_list "r6_prefixes" in
  let* r8_sanctioned_types = string_list "r8_sanctioned_types" in
  let* r8_mutable_types = string_list "r8_mutable_types" in
  let* r9_roots = string_list "r9_roots" in
  let* r9_lock_wrappers = string_list "r9_lock_wrappers" in
  let* r10_sinks = string_list "r10_sinks" in
  let* r10_guarded_types = string_list "r10_guarded_types" in
  let* hot_roots = string_list "hot_roots" in
  let* r12_boundaries = string_list "r12_boundaries" in
  let* r13_log_producers = string_list "r13_log_producers" in
  let* r13_linear_producers = string_list "r13_linear_producers" in
  let* r13_mantissa_producers = string_list "r13_mantissa_producers" in
  let* doc_coverage_threshold, doc_coverage_paths =
    let* value = field "doc_coverage" in
    let* threshold =
      match Json.member "threshold" value with
      | Some (Json.Float v) -> Ok v
      | Some (Json.Int v) -> Ok (float_of_int v)
      | _ -> Error "config: \"doc_coverage\" needs a number \"threshold\""
    in
    let* paths =
      match Json.member "paths" value with
      | Some (Json.List items) ->
          List.fold_left
            (fun acc item ->
              let* acc = acc in
              match item with
              | Json.String s -> Ok (s :: acc)
              | _ -> Error "config: \"doc_coverage\" paths must be strings")
            (Ok []) items
          |> Result.map List.rev
      | _ -> Error "config: \"doc_coverage\" needs a \"paths\" list"
    in
    Ok (threshold, paths)
  in
  Ok
    {
      rules;
      numerics_prefixes;
      ordering_literals;
      r2_prefixes;
      r2_allowlist;
      r2_banned;
      r3_scope;
      mutable_makers;
      r4_prefixes;
      stdout_names;
      r6_prefixes;
      r8_sanctioned_types;
      r8_mutable_types;
      r9_roots;
      r9_lock_wrappers;
      r10_sinks;
      r10_guarded_types;
      hot_roots;
      r12_boundaries;
      r13_log_producers;
      r13_linear_producers;
      r13_mantissa_producers;
      doc_coverage_threshold;
      doc_coverage_paths;
    }

let hash t = Digest.to_hex (Digest.string (Json.to_string (to_json t)))

let load_file path =
  if not (Sys.file_exists path) then Ok default
  else
    let ic = open_in_bin path in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Json.of_string text with
    | Error message -> Error (Printf.sprintf "%s: %s" path message)
    | Ok json -> (
        match of_json json with
        | Error message -> Error (Printf.sprintf "%s: %s" path message)
        | Ok config -> Ok config)
