type r3_scope = Reachable_from of string list | Paths of string list

type t = {
  rules : Rule.id list;
  numerics_prefixes : string list;
  ordering_literals : float list;
  r2_prefixes : string list;
  r2_allowlist : string list;
  r2_banned : string list;
  r3_scope : r3_scope;
  mutable_makers : string list;
  r4_prefixes : string list;
  stdout_names : string list;
  r6_prefixes : string list;
}

let default =
  {
    rules = Rule.all;
    numerics_prefixes = [ "lib/numerics" ];
    ordering_literals = [ 0.; 1.; -1. ];
    r2_prefixes = [ "lib/core"; "lib/markov" ];
    r2_allowlist = [];
    r2_banned =
      [
        "exp"; "log"; "log1p"; "expm1";
        "Float.exp"; "Float.log"; "Float.log1p"; "Float.expm1";
        "Stdlib.exp"; "Stdlib.log"; "Stdlib.log1p"; "Stdlib.expm1";
      ];
    r3_scope = Reachable_from [ "lib/engine" ];
    mutable_makers =
      [
        "ref"; "Hashtbl.create"; "Queue.create"; "Stack.create";
        "Buffer.create"; "Bytes.create"; "Bytes.make"; "Weak.create";
        "Stdlib.ref"; "Random.self_init";
      ];
    r4_prefixes = [ "lib" ];
    stdout_names =
      [
        "print_char"; "print_string"; "print_bytes"; "print_int";
        "print_float"; "print_endline"; "print_newline"; "stdout";
        "Printf.printf"; "Format.printf"; "Format.print_string";
        "Format.print_int"; "Format.print_float"; "Format.print_newline";
        "Format.print_space"; "Format.print_cut"; "Format.print_flush";
        "Format.std_formatter"; "Stdlib.stdout"; "Stdlib.print_string";
        "Stdlib.print_endline"; "Stdlib.print_newline"; "Stdlib.print_int";
        "Stdlib.print_float"; "Stdlib.print_char";
      ];
    r6_prefixes = [ "lib" ];
  }

let enabled t rule = rule = Rule.Syntax || List.mem rule t.rules

let normalize path =
  let path =
    if String.length path > 2 && String.sub path 0 2 = "./" then
      String.sub path 2 (String.length path - 2)
    else path
  in
  String.concat "/" (String.split_on_char '/' path |> List.filter (( <> ) ""))

let matches path prefixes =
  let path = normalize path in
  List.exists
    (fun prefix ->
      let prefix = normalize prefix in
      String.equal path prefix
      || String.starts_with ~prefix:(prefix ^ "/") path)
    prefixes
