(** Conservative compilation-unit dependency analysis used to decide where
    rule R3 (domain-safety) applies.

    References are collected syntactically from the Parsetree: every module
    path prefix of a long identifier plus module-position identifiers
    (aliases, opens, functor arguments).  Resolution is per-directory first
    (units of the same dune library refer to each other unqualified), then
    through library wrapper modules ([Crossbar_numerics.Prob] pulls in the
    whole [lib/numerics] library — an over-approximation, which is the safe
    direction for a safety rule). *)

val refs : Parsetree.structure -> string list
(** Capitalised module names referenced by one implementation, deduplicated,
    in first-occurrence order. *)

val unit_name : string -> string
(** ["lib/core/model.ml"] → ["Model"]. *)

val library_name_of_dune : string -> string option
(** Extracts the [(name ...)] atom from a dune file's text. *)

type graph

val build : read_dune:(string -> string option) -> (string * string list) list -> graph
(** [build ~read_dune files] indexes [(path, refs)] pairs; [read_dune] maps
    a dune-file path to its contents (or [None]) so the module stays free of
    direct filesystem access. *)

val reachable : graph -> roots:string list -> string -> bool
(** [reachable graph ~roots] is the membership test for the transitive
    closure of [roots] (paths) under the reference relation. *)
