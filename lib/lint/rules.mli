(** Per-file AST checks for rules R1–R5 (R6 is a file-set property handled
    by {!Driver}).  The walk is a [Parsetree] traversal via
    [Ast_iterator] — no regexes, so string and comment contents can never
    produce false positives. *)

val check :
  config:Config.t ->
  path:string ->
  r3_applies:bool ->
  Parsetree.structure ->
  Finding.t list
(** [check ~config ~path ~r3_applies ast] returns the unsuppressed findings
    for one implementation file, in source order.  [r3_applies] tells the
    walker whether [path] is in the Domain-pool reachability set (computed
    by {!Driver} over the whole file set). *)

val flatten : Longident.t -> string list
(** Components of a long identifier, outermost first. *)

val dotted : Longident.t -> string
(** [flatten] joined with ["."]. *)

val line_col : Location.t -> int * int
(** Start line (1-based) and column (0-based) of a location. *)
