let is_module_name name =
  String.length name > 0 && name.[0] >= 'A' && name.[0] <= 'Z'

(* Module components referenced by a long identifier: every prefix component
   is a module access; the final component only in module position (handled
   by callers passing ~whole:true). *)
let components ?(whole = false) acc lid =
  let parts = Rules.flatten lid in
  let rec take acc = function
    | [] -> acc
    | [ last ] -> if whole && is_module_name last then last :: acc else acc
    | head :: rest ->
        take (if is_module_name head then head :: acc else acc) rest
  in
  take acc parts

let refs structure =
  let seen = Hashtbl.create 32 in
  let found = ref [] in
  let note ?whole lid =
    List.iter
      (fun name ->
        if not (Hashtbl.mem seen name) then begin
          Hashtbl.add seen name ();
          found := name :: !found
        end)
      (components ?whole [] lid)
  in
  let open Parsetree in
  let expr_iter (it : Ast_iterator.iterator) e =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ }
    | Pexp_construct ({ txt; _ }, _)
    | Pexp_field (_, { txt; _ })
    | Pexp_setfield (_, { txt; _ }, _) ->
        note txt
    | Pexp_record (fields, _) ->
        List.iter (fun ({ Location.txt; _ }, _) -> note txt) fields
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let pat_iter (it : Ast_iterator.iterator) p =
    (match p.ppat_desc with
    | Ppat_construct ({ txt; _ }, _) -> note txt
    | Ppat_record (fields, _) ->
        List.iter (fun ({ Location.txt; _ }, _) -> note txt) fields
    | _ -> ());
    Ast_iterator.default_iterator.pat it p
  in
  let typ_iter (it : Ast_iterator.iterator) t =
    (match t.ptyp_desc with
    | Ptyp_constr ({ txt; _ }, _) | Ptyp_class ({ txt; _ }, _) -> note txt
    | _ -> ());
    Ast_iterator.default_iterator.typ it t
  in
  let module_expr_iter (it : Ast_iterator.iterator) me =
    (match me.pmod_desc with
    | Pmod_ident { txt; _ } -> note ~whole:true txt
    | _ -> ());
    Ast_iterator.default_iterator.module_expr it me
  in
  let iterator =
    {
      Ast_iterator.default_iterator with
      expr = expr_iter;
      pat = pat_iter;
      typ = typ_iter;
      module_expr = module_expr_iter;
    }
  in
  iterator.structure iterator structure;
  List.rev !found

let unit_name path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

(* Extract "(name foo)" from a dune file without an s-expression library:
   find the atom following a "(name" token. *)
let library_name_of_dune text =
  let tokens =
    String.split_on_char '\n' text
    |> List.concat_map (String.split_on_char ' ')
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (( <> ) "")
  in
  let rec scan = function
    | "(name" :: value :: _ ->
        let value =
          String.to_seq value
          |> Seq.filter (fun c -> c <> '(' && c <> ')')
          |> String.of_seq
        in
        Some value
    | _ :: rest -> scan rest
    | [] -> None
  in
  scan tokens

type graph = {
  by_dir_unit : (string * string, string) Hashtbl.t;
      (* (dir, unit name) -> path *)
  by_wrapper : (string, string list) Hashtbl.t; (* wrapper module -> paths *)
  refs_of : (string, string list) Hashtbl.t; (* path -> referenced modules *)
}

let build ~read_dune files_with_refs =
  let by_dir_unit = Hashtbl.create 64 in
  let by_wrapper = Hashtbl.create 16 in
  let refs_of = Hashtbl.create 64 in
  let wrapper_of_dir = Hashtbl.create 16 in
  List.iter
    (fun (path, refs) ->
      let dir = Filename.dirname path in
      Hashtbl.replace by_dir_unit (dir, unit_name path) path;
      Hashtbl.replace refs_of path refs;
      if not (Hashtbl.mem wrapper_of_dir dir) then
        Hashtbl.replace wrapper_of_dir dir
          (Option.bind (read_dune (Filename.concat dir "dune"))
             library_name_of_dune
          |> Option.map String.capitalize_ascii))
    files_with_refs;
  Hashtbl.iter
    (fun dir wrapper ->
      match wrapper with
      | None -> ()
      | Some wrapper ->
          let members =
            List.filter_map
              (fun (path, _) ->
                if String.equal (Filename.dirname path) dir then Some path
                else None)
              files_with_refs
          in
          let existing =
            Option.value ~default:[] (Hashtbl.find_opt by_wrapper wrapper)
          in
          Hashtbl.replace by_wrapper wrapper (members @ existing))
    wrapper_of_dir;
  { by_dir_unit; by_wrapper; refs_of }

let reachable graph ~roots =
  let visited = Hashtbl.create 64 in
  let rec visit path =
    if not (Hashtbl.mem visited path) then begin
      Hashtbl.add visited path ();
      let dir = Filename.dirname path in
      List.iter
        (fun name ->
          (match Hashtbl.find_opt graph.by_dir_unit (dir, name) with
          | Some sibling -> visit sibling
          | None -> ());
          match Hashtbl.find_opt graph.by_wrapper name with
          | Some members -> List.iter visit members
          | None -> ())
        (Option.value ~default:[] (Hashtbl.find_opt graph.refs_of path))
    end
  in
  List.iter visit roots;
  fun path -> Hashtbl.mem visited path
