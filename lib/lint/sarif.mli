(** Static Analysis Results Interchange Format (SARIF 2.1.0) rendering of a
    findings list, so CI can annotate pull requests from the lint run.  The
    document is built on the engine's JSON tree and therefore re-parses
    with [Crossbar_engine.Json.of_string] — the schema smoke test in
    [test/test_lint_typed.ml] relies on exactly that round trip. *)

val version : string
(** ["2.1.0"]. *)

val to_json : Finding.t list -> Crossbar_engine.Json.t
(** One SARIF [run] for the "crossbar-lint" driver: a [rules] table for
    every rule that fired and one error-level [result] per finding
    (1-based line and column). *)

val to_string : Finding.t list -> string
(** Compact rendering of {!to_json}. *)
