type t = {
  file_rules : Rule.id list;
  line_rules : (int, Rule.id list) Hashtbl.t;
  guard_lines : (int, string list) Hashtbl.t;
  alloc_lines : (int, string list) Hashtbl.t;
}

let empty () =
  {
    file_rules = [];
    line_rules = Hashtbl.create 4;
    guard_lines = Hashtbl.create 4;
    alloc_lines = Hashtbl.create 4;
  }

let marker = "lint:"

let parse_ids text =
  String.split_on_char ',' text |> List.filter_map Rule.of_string

let parse_names text =
  String.split_on_char ',' text
  |> List.filter_map (fun name ->
         let name = String.trim name in
         if String.equal name "" then None else Some name)

(* A directive is a whitespace-delimited word after the "lint:" marker;
   anything that is not a recognised directive (the free-form reason) is
   ignored. *)
let directives_of_line line =
  match
    let rec find from =
      match String.index_from_opt line from 'l' with
      | None -> None
      | Some i ->
          if
            i + String.length marker <= String.length line
            && String.equal (String.sub line i (String.length marker)) marker
          then Some (i + String.length marker)
          else find (i + 1)
    in
    find 0
  with
  | None -> []
  | Some start ->
      String.sub line start (String.length line - start)
      |> String.split_on_char ' '
      |> List.concat_map (String.split_on_char '\t')
      |> List.filter_map (fun word ->
             let word = String.trim word in
             if String.starts_with ~prefix:"disable-file=" word then
               Some
                 (`File
                   (parse_ids
                      (String.sub word 13 (String.length word - 13))))
             else if String.starts_with ~prefix:"disable=" word then
               Some
                 (`Line
                   (parse_ids (String.sub word 8 (String.length word - 8))))
             else if String.equal word "domain-safe" then
               Some (`Line [ Rule.R3; Rule.R8; Rule.R9 ])
             else if String.starts_with ~prefix:"guarded=" word then
               Some
                 (`Guard
                   (parse_names (String.sub word 8 (String.length word - 8))))
             else if String.starts_with ~prefix:"alloc=" word then
               Some
                 (`Alloc
                   (parse_names (String.sub word 6 (String.length word - 6))))
             else None)

let scan text =
  let file_rules = ref [] in
  let line_rules = Hashtbl.create 4 in
  let guard_lines = Hashtbl.create 4 in
  let alloc_lines = Hashtbl.create 4 in
  let add table n values =
    let existing = Option.value ~default:[] (Hashtbl.find_opt table n) in
    Hashtbl.replace table n (values @ existing)
  in
  List.iteri
    (fun i line ->
      let n = i + 1 in
      List.iter
        (function
          | `File rules -> file_rules := rules @ !file_rules
          | `Line rules ->
              (* Cover both trailing comments and comment-above style. *)
              add line_rules n rules;
              add line_rules (n + 1) rules
          | `Guard names ->
              add guard_lines n names;
              add guard_lines (n + 1) names
          | `Alloc names ->
              add alloc_lines n names;
              add alloc_lines (n + 1) names)
        (directives_of_line line))
    (String.split_on_char '\n' text);
  { file_rules = !file_rules; line_rules; guard_lines; alloc_lines }

let active t ~rule ~line =
  rule <> Rule.Syntax
  && (List.mem rule t.file_rules
     ||
     match Hashtbl.find_opt t.line_rules line with
     | Some rules -> List.mem rule rules
     | None -> false)

let guarded t ~line =
  Option.value ~default:[] (Hashtbl.find_opt t.guard_lines line)

let sanctioned_allocs t ~line =
  Option.value ~default:[] (Hashtbl.find_opt t.alloc_lines line)
