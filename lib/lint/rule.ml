type id = Syntax | R1 | R2 | R3 | R4 | R5 | R6

let all = [ R1; R2; R3; R4; R5; R6 ]

let to_string = function
  | Syntax -> "R0"
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | R5 -> "R5"
  | R6 -> "R6"

let of_string text =
  match String.uppercase_ascii (String.trim text) with
  | "R0" | "SYNTAX" -> Some Syntax
  | "R1" -> Some R1
  | "R2" -> Some R2
  | "R3" -> Some R3
  | "R4" -> Some R4
  | "R5" -> Some R5
  | "R6" -> Some R6
  | _ -> None

let title = function
  | Syntax -> "source file must parse"
  | R1 -> "no float equality or magic-literal ordering outside lib/numerics"
  | R2 -> "exp/log in core numerical code must go through Logspace/Prob"
  | R3 -> "no top-level mutable state on code reachable from Engine.Pool workers"
  | R4 -> "library code must not print to stdout"
  | R5 -> "no exception-swallowing catch-all handlers"
  | R6 -> "every library implementation has a matching interface"

let rationale = function
  | Syntax -> "a file the compiler cannot parse cannot be audited at all"
  | R1 ->
      "the product-form recurrences (Algorithms 1 and 2) are only correct \
       under tolerance/ULP comparison discipline; raw literal comparisons \
       hide rounding bugs"
  | R2 ->
      "raw exp/log silently under/overflows on the dynamic ranges the \
       normalisation constants span; the Logspace/Prob wrappers are guarded"
  | R3 ->
      "the Domain pool runs library code from several domains; unsynchronized \
       top-level state is a data race"
  | R4 ->
      "libraries must return data or take an explicit formatter so callers \
       (CLI, bench, tests) control the channel"
  | R5 ->
      "a wildcard handler swallows Out_of_memory, Stack_overflow and every \
       programming error; match the exceptions you mean and carry context"
  | R6 ->
      "an .mli is the audited surface of a module; without one every helper \
       leaks and the invariants above cannot be enforced at the boundary"

let compare = Stdlib.compare
