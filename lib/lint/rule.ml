type id =
  | Syntax
  | R1
  | R2
  | R3
  | R4
  | R5
  | R6
  | R7
  | R8
  | R9
  | R10
  | R11
  | R12
  | R13

let all = [ R1; R2; R3; R4; R5; R6; R7; R8; R9; R10; R11; R12; R13 ]
let typed = function R7 | R8 | R9 | R10 | R11 | R12 | R13 -> true | _ -> false

let to_string = function
  | Syntax -> "R0"
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | R5 -> "R5"
  | R6 -> "R6"
  | R7 -> "R7"
  | R8 -> "R8"
  | R9 -> "R9"
  | R10 -> "R10"
  | R11 -> "R11"
  | R12 -> "R12"
  | R13 -> "R13"

let of_string text =
  match String.uppercase_ascii (String.trim text) with
  | "R0" | "SYNTAX" -> Some Syntax
  | "R1" -> Some R1
  | "R2" -> Some R2
  | "R3" -> Some R3
  | "R4" -> Some R4
  | "R5" -> Some R5
  | "R6" -> Some R6
  | "R7" -> Some R7
  | "R8" -> Some R8
  | "R9" -> Some R9
  | "R10" -> Some R10
  | "R11" -> Some R11
  | "R12" -> Some R12
  | "R13" -> Some R13
  | _ -> None

let valid_ids () = String.concat ", " (List.map to_string all)

let parse_list text =
  let ( let* ) = Result.bind in
  let* ids =
    List.fold_left
      (fun acc piece ->
        let* acc = acc in
        let piece = String.trim piece in
        if String.equal piece "" then
          Error
            (Printf.sprintf
               "empty rule id in %S; expected a comma-separated list such as \
                R1,R5"
               text)
        else
          match of_string piece with
          | Some rule -> Ok (rule :: acc)
          | None ->
              Error
                (Printf.sprintf "unknown rule id %S (valid ids: %s)" piece
                   (valid_ids ())))
      (Ok [])
      (String.split_on_char ',' text)
  in
  match ids with
  | [] -> Error "empty rule list; expected at least one rule id"
  | ids -> Ok (List.rev ids)

let title = function
  | Syntax -> "source file must parse"
  | R1 -> "no float equality or magic-literal ordering outside lib/numerics"
  | R2 -> "exp/log in core numerical code must go through Logspace/Prob"
  | R3 -> "no top-level mutable state on code reachable from Engine.Pool workers"
  | R4 -> "library code must not print to stdout"
  | R5 -> "no exception-swallowing catch-all handlers"
  | R6 -> "every library implementation has a matching interface"
  | R7 -> "no float equality through Float.equal/compare or polymorphic =/compare (typed)"
  | R8 -> "no top-level value whose inferred type is mutable on pool-reachable code (typed)"
  | R9 -> "no unlocked writes to top-level mutable state reachable from Pool workers (typed)"
  | R10 ->
      "closures crossing a domain boundary must not capture unsynchronized \
       mutable state (typed)"
  | R11 -> "hot_roots call chains must be transitively allocation-free (typed)"
  | R12 ->
      "raise effects must not escape through pool, lock or batcher boundaries \
       (typed)"
  | R13 -> "no cross-domain float arithmetic: log, linear, mantissa (typed)"

let rationale = function
  | Syntax -> "a file the compiler cannot parse cannot be audited at all"
  | R1 ->
      "the product-form recurrences (Algorithms 1 and 2) are only correct \
       under tolerance/ULP comparison discipline; raw literal comparisons \
       hide rounding bugs"
  | R2 ->
      "raw exp/log silently under/overflows on the dynamic ranges the \
       normalisation constants span; the Logspace/Prob wrappers are guarded"
  | R3 ->
      "the Domain pool runs library code from several domains; unsynchronized \
       top-level state is a data race"
  | R4 ->
      "libraries must return data or take an explicit formatter so callers \
       (CLI, bench, tests) control the channel"
  | R5 ->
      "a wildcard handler swallows Out_of_memory, Stack_overflow and every \
       programming error; match the exceptions you mean and carry context"
  | R6 ->
      "an .mli is the audited surface of a module; without one every helper \
       leaks and the invariants above cannot be enforced at the boundary"
  | R7 ->
      "Float.equal/Float.compare and polymorphic = on floats are exact \
       bit-pattern comparisons the Parsetree pass cannot see through \
       aliases; typing closes R1's blind spot"
  | R8 ->
      "a top-level array, Bytes, ref or mutable-field record is shared \
       across pool domains whatever expression created it; the value's \
       inferred type, not the creator's name, is the ground truth"
  | R9 ->
      "a function reachable from Engine.Pool workers that writes sanctioned \
       top-level mutable state outside a lock-wrapped region races; the \
       typed call graph over-approximates reachability in the safe direction"
  | R10 ->
      "a lambda handed to Engine.Pool.run or Domain.spawn runs on another \
       domain; every array, ref or mutable record it closes over is shared \
       without synchronisation, so only Atomic/Mutex-guarded (or explicitly \
       annotated) captures are sound"
  | R11 ->
      "the factor-tree combine path is the inner loop of every solve; one \
       boxed float, closure or tuple per lattice cell turns the zero-alloc \
       kernel into a GC benchmark, so every allocation reachable from a \
       hot root must be sanctioned by name or removed"
  | R12 ->
      "an exception thrown inside a lambda handed to Mutex.protect, \
       Engine.Pool.run or the serve batcher unwinds mid-critical-section: \
       the lock is released but registry/batch state is half-written, and \
       every later query sees the poisoned tree"
  | R13 ->
      "log-domain magnitudes, linear probabilities and rescaled mantissas \
       share the float type but not a unit; adding log to linear, \
       re-exponentiating an exponentiated value or comparing mantissas \
       under different exponents is silently wrong at exactly the scales \
       the rescale-exponent machinery exists for"

let compare = Stdlib.compare
