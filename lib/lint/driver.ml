type parsed =
  | Impl of Parsetree.structure
  | Intf
  | Broken  (* a Syntax finding was already emitted *)

type source = { path : string; text : string; parsed : parsed }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let syntax_finding ~path exn =
  let location, detail =
    match exn with
    | Syntaxerr.Error err -> (Syntaxerr.location_of_error err, "syntax error")
    | Lexer.Error (_, loc) -> (loc, "lexing error")
    | _ -> (Location.none, "unparseable source")
  in
  let line, col = Rules.line_col location in
  Finding.make ~rule:Rule.Syntax ~file:path ~line:(max line 1) ~col
    (Printf.sprintf "%s: file does not parse with compiler-libs" detail)

let parse_source path =
  let text = read_file path in
  let lexbuf = Lexing.from_string text in
  Lexing.set_filename lexbuf path;
  Location.input_name := path;
  let is_interface = Filename.check_suffix path ".mli" in
  match
    if is_interface then begin
      ignore (Parse.interface lexbuf);
      Intf
    end
    else Impl (Parse.implementation lexbuf)
  with
  | parsed -> ({ path; text; parsed }, None)
  | exception ((Syntaxerr.Error _ | Lexer.Error _) as exn) ->
      ({ path; text; parsed = Broken }, Some (syntax_finding ~path exn))

let rec discover path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.concat_map (fun entry ->
           if String.starts_with ~prefix:"." entry || String.equal entry "_build"
           then []
           else discover (Filename.concat path entry))
  else if
    Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
  then [ Config.normalize path ]
  else []

let missing_interface_findings ~config sources =
  let scanned = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace scanned s.path ()) sources;
  List.filter_map
    (fun source ->
      if
        Filename.check_suffix source.path ".ml"
        && Config.matches source.path config.Config.r6_prefixes
      then
        let mli = source.path ^ "i" in
        if Hashtbl.mem scanned mli || Sys.file_exists mli then None
        else
          Some
            (Finding.make ~rule:Rule.R6 ~file:source.path ~line:1 ~col:0
               (Printf.sprintf
                  "library module has no interface; add %s to pin its public \
                   surface"
                  (Filename.basename mli)))
      else None)
    sources

let load_sources paths =
  let files = List.concat_map discover paths in
  let sources, syntax_findings =
    List.fold_left
      (fun (sources, findings) path ->
        let source, syntax = parse_source path in
        (source :: sources, Option.to_list syntax @ findings))
      ([], []) files
  in
  (List.rev sources, syntax_findings)

let scope_membership ~config sources =
  match config.Config.r3_scope with
  | Config.Paths prefixes -> fun path -> Config.matches path prefixes
  | Config.Reachable_from root_prefixes ->
      let impls =
        List.filter_map
          (fun s ->
            match s.parsed with
            | Impl ast -> Some (s.path, Deps.refs ast)
            | Intf | Broken -> None)
          sources
      in
      let read_dune path =
        if Sys.file_exists path && not (Sys.is_directory path) then
          Some (read_file path)
        else None
      in
      let graph = Deps.build ~read_dune impls in
      let roots =
        List.filter_map
          (fun (path, _) ->
            if Config.matches path root_prefixes then Some path else None)
          impls
      in
      Deps.reachable graph ~roots

let lint ~config paths =
  let sources, syntax_findings = load_sources paths in
  let r3_applies = scope_membership ~config sources in
  let rule_findings =
    List.concat_map
      (fun source ->
        match source.parsed with
        | Impl ast ->
            let raw =
              Rules.check ~config ~path:source.path
                ~r3_applies:(r3_applies source.path) ast
            in
            let suppressions = Suppress.scan source.text in
            List.filter
              (fun (f : Finding.t) ->
                not
                  (Suppress.active suppressions ~rule:f.Finding.rule
                     ~line:f.Finding.line))
              raw
        | Intf | Broken -> [])
      sources
  in
  let r6 =
    if Config.enabled config Rule.R6 then
      missing_interface_findings ~config sources
    else []
  in
  List.sort_uniq Finding.compare (syntax_findings @ rule_findings @ r6)

let pp_report ppf findings =
  List.iter (fun f -> Format.fprintf ppf "%a@." Finding.pp f) findings;
  match List.length findings with
  | 0 -> Format.fprintf ppf "crossbar-lint: clean@."
  | n -> Format.fprintf ppf "crossbar-lint: %d finding(s)@." n
