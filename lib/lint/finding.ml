module Json = Crossbar_engine.Json

type t = {
  rule : Rule.id;
  file : string;
  line : int;
  col : int;
  message : string;
}

let make ~rule ~file ~line ~col message = { rule; file; line; col; message }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = Rule.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.message b.message

let pp ppf t =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" t.file t.line t.col
    (Rule.to_string t.rule) t.message

let to_json t =
  Json.Assoc
    [
      ("rule", Json.String (Rule.to_string t.rule));
      ("file", Json.String t.file);
      ("line", Json.Int t.line);
      ("col", Json.Int t.col);
      ("message", Json.String t.message);
    ]

let of_json json =
  let str key =
    match Json.member key json with
    | Some (Json.String s) -> Ok s
    | _ -> Error (Printf.sprintf "finding: missing string field %S" key)
  in
  let int key =
    match Json.member key json with
    | Some (Json.Int i) -> Ok i
    | _ -> Error (Printf.sprintf "finding: missing int field %S" key)
  in
  let ( let* ) = Result.bind in
  let* rule_text = str "rule" in
  let* rule =
    match Rule.of_string rule_text with
    | Some rule -> Ok rule
    | None -> Error (Printf.sprintf "finding: unknown rule %S" rule_text)
  in
  let* file = str "file" in
  let* line = int "line" in
  let* col = int "col" in
  let* message = str "message" in
  Ok { rule; file; line; col; message }

let schema = "crossbar-lint/1"

let report_to_json findings =
  Json.Assoc
    [
      ("schema", Json.String schema);
      ("count", Json.Int (List.length findings));
      ("findings", Json.List (List.map to_json findings));
    ]

let report_of_json json =
  match Json.member "schema" json with
  | Some (Json.String s) when String.equal s schema -> (
      match Json.member "findings" json with
      | Some (Json.List items) ->
          List.fold_left
            (fun acc item ->
              match (acc, of_json item) with
              | Error _, _ -> acc
              | Ok _, Error e -> Error e
              | Ok done_, Ok f -> Ok (f :: done_))
            (Ok []) items
          |> Result.map List.rev
      | _ -> Error "report: missing findings list"
  )
  | _ -> Error (Printf.sprintf "report: missing schema %S" schema)
