(** A single lint finding: rule, position and message, plus conversions to
    and from the engine's JSON tree so tooling can consume `--json` output
    and round-trip it losslessly. *)

type t = {
  rule : Rule.id;
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 0-based, as printed by the compiler *)
  message : string;
}

val make : rule:Rule.id -> file:string -> line:int -> col:int -> string -> t
(** The positional argument is the message. *)

val compare : t -> t -> int
(** Orders by file, then line, column, rule, message. *)

val pp : Format.formatter -> t -> unit
(** Renders ["file:line:col: [Rn] message"]. *)

val to_json : t -> Crossbar_engine.Json.t
(** One finding as a flat [{rule; file; line; col; message}] object. *)

val of_json : Crossbar_engine.Json.t -> (t, string) result
(** Inverse of {!to_json}; the error names the missing or ill-typed
    field. *)

val schema : string
(** Identifier embedded in report documents, ["crossbar-lint/1"]. *)

val report_to_json : t list -> Crossbar_engine.Json.t
(** Wraps findings as [{schema; count; findings}]. *)

val report_of_json : Crossbar_engine.Json.t -> (t list, string) result
(** Inverse of {!report_to_json}; fails on schema or shape mismatch. *)
