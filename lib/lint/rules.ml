open Parsetree

let line_col (loc : Location.t) =
  let p = loc.Location.loc_start in
  (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)

let rec flatten = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (prefix, s) -> flatten prefix @ [ s ]
  | Longident.Lapply (f, _) -> flatten f

let dotted lid = String.concat "." (flatten lid)

let equality_ops = [ "="; "<>"; "=="; "!=" ]
let ordering_ops = [ "<"; ">"; "<="; ">=" ]

(* R1 also covers the functional spellings applied to a bare literal; the
   typed pass (R7) closes the remaining gap where both operands are
   expressions. *)
let float_equality_fns =
  [
    "Float.equal"; "Float.compare";
    "Stdlib.Float.equal"; "Stdlib.Float.compare";
  ]

(* The parser folds unary minus into the literal, but handle an explicit
   application of [~-.] as well so [x = -. 1.] does not slip through. *)
let float_literal expr =
  match expr.pexp_desc with
  | Pexp_constant (Pconst_float (text, None)) -> float_of_string_opt text
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Lident ("~-." | "~-"); _ }; _ },
        [ (Nolabel, { pexp_desc = Pexp_constant (Pconst_float (text, None)); _ }) ] )
    ->
      Option.map Float.neg (float_of_string_opt text)
  | _ -> None

let check ~(config : Config.t) ~path ~r3_applies structure =
  let findings = ref [] in
  let add rule loc message =
    let line, col = line_col loc in
    findings := Finding.make ~rule ~file:path ~line ~col message :: !findings
  in
  let enabled rule = Config.enabled config rule in
  let in_numerics = Config.matches path config.numerics_prefixes in
  let r1_applies = enabled Rule.R1 && not in_numerics in
  let r2_applies =
    enabled Rule.R2
    && Config.matches path config.r2_prefixes
    && not (Config.matches path config.r2_allowlist)
  in
  let r4_applies = enabled Rule.R4 && Config.matches path config.r4_prefixes in

  let check_comparison op loc lhs rhs =
    let literal =
      match float_literal lhs with
      | Some v -> Some v
      | None -> float_literal rhs
    in
    match literal with
    | None -> ()
    | Some v ->
        if List.mem op equality_ops then
          add Rule.R1 loc
            (Printf.sprintf
               "float %s against literal %g; use \
                Crossbar_numerics.Prob.{is_zero,approx_eq,ulp_equal} or a \
                named tolerance"
               op v)
        else if
          (* lint: disable=R7 — configured literals match by exact bits *)
          not (List.exists (fun a -> Float.equal a v) config.ordering_literals)
        then
          add Rule.R1 loc
            (Printf.sprintf
               "ordering %s against magic float literal %g; bind it to a \
                named constant"
               op v)
  in

  let wildcard_handler (case : case) =
    match case.pc_lhs.ppat_desc with
    | Ppat_any -> Some case.pc_lhs.ppat_loc
    | Ppat_exception { ppat_desc = Ppat_any; ppat_loc; _ } -> Some ppat_loc
    | _ -> None
  in

  let expr_iter (iterator : Ast_iterator.iterator) expr =
    (match expr.pexp_desc with
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Lident op; _ }; _ },
          [ (Nolabel, lhs); (Nolabel, rhs) ] )
      when r1_applies && (List.mem op equality_ops || List.mem op ordering_ops)
      ->
        check_comparison op expr.pexp_loc lhs rhs
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
      when r1_applies
           && List.mem (dotted txt) float_equality_fns
           && List.exists
                (fun (label, arg) ->
                  label = Asttypes.Nolabel && float_literal arg <> None)
                args ->
        let literal =
          List.find_map (fun (_, arg) -> float_literal arg) args
        in
        add Rule.R1 expr.pexp_loc
          (Printf.sprintf
             "%s against literal %g is an exact bit comparison; use \
              Crossbar_numerics.Prob.{is_zero,approx_eq,ulp_equal} or a \
              named tolerance"
             (dotted txt)
             (Option.value ~default:Float.nan literal))
    | Pexp_ident { txt; loc }
      when r2_applies && List.mem (dotted txt) config.r2_banned ->
        add Rule.R2 loc
          (Printf.sprintf
             "raw %s under/overflows on product-form dynamic ranges; route \
              through Crossbar_numerics.Logspace or Prob"
             (dotted txt))
    | Pexp_ident { txt; loc }
      when r4_applies && List.mem (dotted txt) config.stdout_names ->
        add Rule.R4 loc
          (Printf.sprintf
             "%s writes to stdout from library code; return data or take a \
              Format.formatter argument"
             (dotted txt))
    | Pexp_try (_, cases) when enabled Rule.R5 ->
        List.iter
          (fun case ->
            match wildcard_handler case with
            | Some loc ->
                add Rule.R5 loc
                  "catch-all handler swallows every exception (including \
                   Out_of_memory); match specific exceptions and carry \
                   context in the failure message"
            | None -> ())
          cases
    | Pexp_match (_, cases) when enabled Rule.R5 ->
        List.iter
          (fun case ->
            match case.pc_lhs.ppat_desc with
            | Ppat_exception { ppat_desc = Ppat_any; ppat_loc; _ } ->
                add Rule.R5 ppat_loc
                  "catch-all exception case swallows every exception; match \
                   specific exceptions and carry context"
            | _ -> ())
          cases
    | _ -> ());
    Ast_iterator.default_iterator.expr iterator expr
  in
  let iterator = { Ast_iterator.default_iterator with expr = expr_iter } in
  iterator.structure iterator structure;

  (* R3 walks structure items only: mutable state created inside a function
     body is fresh per call and therefore domain-safe. *)
  if enabled Rule.R3 && r3_applies then begin
    let rec creates_mutable expr =
      match expr.pexp_desc with
      | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
          List.mem (dotted txt) config.mutable_makers
      | Pexp_let (_, _, body)
      | Pexp_sequence (_, body)
      | Pexp_constraint (body, _)
      | Pexp_open (_, body) ->
          creates_mutable body
      | Pexp_tuple items -> List.exists creates_mutable items
      | Pexp_record (fields, extends) ->
          List.exists (fun (_, value) -> creates_mutable value) fields
          || (match extends with
             | Some base -> creates_mutable base
             | None -> false)
      | Pexp_ifthenelse (_, then_, else_) ->
          creates_mutable then_
          || (match else_ with Some e -> creates_mutable e | None -> false)
      | _ -> false
    in
    let rec walk_items items =
      List.iter
        (fun item ->
          match item.pstr_desc with
          | Pstr_value (_, bindings) ->
              List.iter
                (fun binding ->
                  if creates_mutable binding.pvb_expr then
                    add Rule.R3 binding.pvb_loc
                      "top-level mutable state is shared across pool domains; \
                       use Atomic/Mutex or annotate (* lint: domain-safe — \
                       reason *)")
                bindings
          | Pstr_module { pmb_expr; _ } -> walk_module pmb_expr
          | Pstr_recmodule bindings ->
              List.iter (fun mb -> walk_module mb.pmb_expr) bindings
          | Pstr_include { pincl_mod; _ } -> walk_module pincl_mod
          | _ -> ())
        items
    and walk_module mexpr =
      match mexpr.pmod_desc with
      | Pmod_structure items -> walk_items items
      | Pmod_constraint (inner, _) -> walk_module inner
      | _ -> ()
    in
    walk_items structure
  end;
  List.rev !findings
