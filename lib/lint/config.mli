(** Linter configuration: which rules run, where each rule applies, and the
    allowlists that make the rule set practical.  Paths are matched by
    directory-prefix (["lib/core"] covers ["lib/core/model.ml"] but not
    ["lib/core_ext/x.ml"]). *)

type r3_scope =
  | Reachable_from of string list
      (** R3 applies to every compilation unit transitively referenced from
          the files under these prefixes (the Domain-pool workers). *)
  | Paths of string list  (** R3 applies to files under these prefixes. *)

type t = {
  rules : Rule.id list;  (** Enabled rules; [Rule.Syntax] always runs. *)
  numerics_prefixes : string list;  (** Exempt from R1 (e.g. lib/numerics). *)
  ordering_literals : float list;
      (** Float literals allowed as ordering-comparison operands everywhere
          (domain guards against 0., 1., -1. are exact in IEEE 754). *)
  r2_prefixes : string list;  (** Directories where R2 applies. *)
  r2_allowlist : string list;  (** Paths exempt from R2 despite the above. *)
  r2_banned : string list;  (** Dotted names R2 forbids (exp, Float.log, ...). *)
  r3_scope : r3_scope;
  mutable_makers : string list;
      (** Dotted names whose top-level application creates shared mutable
          state ([ref], [Hashtbl.create], ...).  [Atomic.make] and [Mutex.t]
          wrapped state are deliberately absent: they are the sanctioned
          escape hatches. *)
  r4_prefixes : string list;  (** Directories where R4 applies. *)
  stdout_names : string list;  (** Dotted names R4 forbids. *)
  r6_prefixes : string list;  (** Directories where R6 applies. *)
}

val default : t
(** The repository policy described in docs/LINT.md. *)

val enabled : t -> Rule.id -> bool

val normalize : string -> string
(** Strips ["./"] and duplicate separators. *)

val matches : string -> string list -> bool
(** [matches path prefixes] is true when [path] lies under one of
    [prefixes] (component-wise, after {!normalize}). *)
