(** Linter configuration: which rules run, where each rule applies, and the
    allowlists that make the rule set practical.  Paths are matched by
    directory-prefix (["lib/core"] covers ["lib/core/model.ml"] but not
    ["lib/core_ext/x.ml"]).

    The whole policy round-trips through the engine's JSON tree so it can
    live in a checked-in [lint.json] (schema ["crossbar-lint-config/1"])
    instead of being compiled in; {!load_file} falls back to {!default}
    when the file does not exist and errors loudly when it is malformed. *)

type r3_scope =
  | Reachable_from of string list
      (** R3/R8 apply to every compilation unit transitively referenced from
          the files under these prefixes (the Domain-pool workers). *)
  | Paths of string list  (** R3/R8 apply to files under these prefixes. *)

type t = {
  rules : Rule.id list;  (** Enabled rules; [Rule.Syntax] always runs. *)
  numerics_prefixes : string list;
      (** Exempt from R1 and R7 (e.g. lib/numerics). *)
  ordering_literals : float list;
      (** Float literals allowed as ordering-comparison operands everywhere
          (domain guards against 0., 1., -1. are exact in IEEE 754). *)
  r2_prefixes : string list;  (** Directories where R2 applies. *)
  r2_allowlist : string list;  (** Paths exempt from R2 despite the above. *)
  r2_banned : string list;  (** Dotted names R2 forbids (exp, Float.log, ...). *)
  r3_scope : r3_scope;  (** Shared by R3 (untyped) and R8 (typed). *)
  mutable_makers : string list;
      (** Dotted names whose top-level application creates shared mutable
          state ([ref], [Hashtbl.create], ...).  [Atomic.make] and [Mutex.t]
          wrapped state are deliberately absent: they are the sanctioned
          escape hatches. *)
  r4_prefixes : string list;  (** Directories where R4 applies. *)
  stdout_names : string list;  (** Dotted names R4 forbids. *)
  r6_prefixes : string list;  (** Directories where R6 applies. *)
  r8_sanctioned_types : string list;
      (** Type-constructor paths R8 never flags and never recurses into
          ([Atomic.t], [Mutex.t], ...): the sanctioned synchronisation
          primitives. *)
  r8_mutable_types : string list;
      (** Abstract type-constructor paths R8 treats as mutable
          ([Hashtbl.t], [Buffer.t], ...); arrays, [bytes], refs and records
          with [mutable] fields are detected structurally. *)
  r9_roots : string list;
      (** Files whose top-level functions seed the R9 typed call graph (the
          Domain-pool entry points). *)
  r9_lock_wrappers : string list;
      (** Functions whose function-literal arguments run under a lock
          ([Mutex.protect] and repo-local helpers such as [locked]); a
          bare name matches any path ending in that component. *)
  r10_sinks : string list;
      (** Domain-boundary functions: a closure passed to one of these (or
          to a function that forwards a parameter into one) runs on
          another domain.  Matched like [r9_lock_wrappers]: ["Pool.run"]
          covers [Crossbar_engine.Pool.run] and the mangled
          [Crossbar_engine__Pool.run] spelling alike. *)
  r10_guarded_types : string list;
      (** Type-constructor paths R10 treats as safely-shareable in
          addition to [r8_sanctioned_types]: the repo's mutex-guarded
          abstractions ([Telemetry.t], [Cache.Memo.t], [Registry.t]).
          Captures of these types never need a [guarded=] annotation. *)
  hot_roots : string list;
      (** Function patterns ("Convolution.combine", "Kahan.add") whose
          transitive callees R11 requires to be allocation-free; matched
          against [Module.func] like [r9_lock_wrappers], so a bare name
          covers every module. *)
  r12_boundaries : string list;
      (** Functions whose function-literal arguments must not let a raise
          escape (R12): lock wrappers, pool/domain spawners and the serve
          batcher fan-out.  Matched like [r10_sinks]. *)
  r13_log_producers : string list;
      (** Call patterns whose float result is a log-domain magnitude. *)
  r13_linear_producers : string list;
      (** Call patterns whose float result is a linear-domain value
          (probability/ratio after exponentiation). *)
  r13_mantissa_producers : string list;
      (** Call patterns whose float result is a rescaled mantissa whose
          implicit exponent belongs to the first argument (the profile);
          R13 flags ordering comparisons between mantissas drawn from
          different sources. *)
  doc_coverage_threshold : float;
      (** Minimum fraction of documented [val] items scripts/doc_coverage.sh
          enforces over [doc_coverage_paths]. *)
  doc_coverage_paths : string list;
      (** Directories whose [.mli] files the doc-coverage gate scans. *)
}

val default : t
(** The repository policy described in docs/LINT.md. *)

val enabled : t -> Rule.id -> bool
(** Whether the rule is on this config's [rules] list. *)

val normalize : string -> string
(** Strips ["./"] and duplicate separators; a leading ["/"] survives, so
    absolute paths stay openable. *)

val matches : string -> string list -> bool
(** [matches path prefixes] is true when [path] lies under one of
    [prefixes] (component-wise, after {!normalize}). *)

val to_json : t -> Crossbar_engine.Json.t
(** The checked-in [lint.json] document shape. *)

val of_json : Crossbar_engine.Json.t -> (t, string) result
(** Inverse of {!to_json}; fails with a message naming the offending field
    on schema or shape mismatch. *)

val hash : t -> string
(** Hex digest of the canonical JSON rendering; keys the incremental lint
    cache so any policy change invalidates every cached entry. *)

val load_file : string -> (t, string) result
(** [load_file path] is {!default} when [path] does not exist, the parsed
    config when it holds a valid document, and an error mentioning [path]
    otherwise. *)
