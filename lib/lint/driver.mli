(** Orchestrates an untyped lint run: discovers [.ml]/[.mli] files under the
    given paths, parses them with compiler-libs, computes the R3 reachability
    set over the whole file set, applies the per-file rules, honours
    suppression comments, and appends the R6 interface check.

    The loading and scope plumbing ({!load_sources}, {!scope_membership}) is
    exposed so the Typedtree stage ([Crossbar_lint_typed]) shares the same
    file universe and the same R3/R8 scope instead of re-deriving either. *)

type parsed =
  | Impl of Parsetree.structure
  | Intf
  | Broken  (** a [Rule.Syntax] finding was already emitted *)

type source = { path : string; text : string; parsed : parsed }

val discover : string -> string list
(** Recursively lists [.ml]/[.mli] files under a path (a single file is
    returned as-is); skips dot-directories and [_build].  Results are
    normalized and deterministically ordered. *)

val load_sources : string list -> source list * Finding.t list
(** [load_sources paths] discovers and parses every file under [paths];
    unparseable files come back as [Broken] alongside their [Rule.Syntax]
    findings. *)

val scope_membership : config:Config.t -> source list -> string -> bool
(** The file-membership predicate for [config.r3_scope]: either a plain
    prefix match or the set of files transitively referenced from the
    scope roots (resolved through dune library wrappers).  Shared by R3
    (untyped) and R8 (typed). *)

val lint : config:Config.t -> string list -> Finding.t list
(** [lint ~config paths] runs every enabled untyped rule over the
    files/directories in [paths] and returns the surviving findings sorted
    by position.  Syntax errors surface as [Rule.Syntax] findings rather
    than exceptions; filesystem errors (unreadable path) do raise
    [Sys_error]. *)

val pp_report : Format.formatter -> Finding.t list -> unit
(** Human-readable rendering: one [file:line:col: [Rn] message] line per
    finding plus a trailing summary line. *)
