(** Orchestrates a lint run: discovers [.ml]/[.mli] files under the given
    paths, parses them with compiler-libs, computes the R3 reachability set
    over the whole file set, applies the per-file rules, honours suppression
    comments, and appends the R6 interface check. *)

val discover : string -> string list
(** Recursively lists [.ml]/[.mli] files under a path (a single file is
    returned as-is); skips dot-directories and [_build].  Results are
    normalized and deterministically ordered. *)

val lint : config:Config.t -> string list -> Finding.t list
(** [lint ~config paths] runs every enabled rule over the files/directories
    in [paths] and returns the surviving findings sorted by position.
    Syntax errors surface as [Rule.Syntax] findings rather than exceptions;
    filesystem errors (unreadable path) do raise [Sys_error]. *)

val pp_report : Format.formatter -> Finding.t list -> unit
(** Human-readable rendering: one [file:line:col: [Rn] message] line per
    finding plus a trailing summary line. *)
