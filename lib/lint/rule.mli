(** Identifiers, one-line titles and rationales for the crossbar-lint rule
    set.  [Syntax] (rendered "R0") is the pseudo-rule reported when a file
    does not parse; it cannot be disabled or suppressed.  R1-R6 run on the
    Parsetree (untyped, fast); R7-R13 need the Typedtree stage driven from
    dune-produced [.cmt] artifacts.  R11-R13 additionally need the
    interprocedural effect stage (per-function allocation, raise and
    float-domain summaries closed over the call graph). *)

type id =
  | Syntax
  | R1
  | R2
  | R3
  | R4
  | R5
  | R6
  | R7
  | R8
  | R9
  | R10
  | R11
  | R12
  | R13

val all : id list
(** The real rules R1..R13, in order ([Syntax] excluded). *)

val typed : id -> bool
(** Whether the rule needs the Typedtree stage (R7..R13). *)

val to_string : id -> string
(** ["R0"] for [Syntax], ["R1"].."R13" otherwise. *)

val of_string : string -> id option
(** Inverse of {!to_string} for the real rules; ["R0"] and unknown ids
    yield [None]. *)

val parse_list : string -> (id list, string) result
(** Parses a comma-separated rule list ("R1,R5").  Unlike {!of_string}
    folded over the pieces, this fails loudly: an unknown id is an error
    naming the offending token and the valid ids, and empty pieces
    ("R1,,R2", a trailing comma, or an empty list) are syntax errors
    rather than silently dropped. *)

val title : id -> string
(** One-line statement of the invariant. *)

val rationale : id -> string
(** Why the invariant matters for this codebase. *)

val compare : id -> id -> int
(** Orders [Syntax] first, then R1..R13. *)
