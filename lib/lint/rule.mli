(** Identifiers, one-line titles and rationales for the crossbar-lint rule
    set.  [Syntax] (rendered "R0") is the pseudo-rule reported when a file
    does not parse; it cannot be disabled or suppressed. *)

type id = Syntax | R1 | R2 | R3 | R4 | R5 | R6

val all : id list
(** The real rules R1..R6, in order ([Syntax] excluded). *)

val to_string : id -> string
val of_string : string -> id option

val title : id -> string
(** One-line statement of the invariant. *)

val rationale : id -> string
(** Why the invariant matters for this codebase. *)

val compare : id -> id -> int
