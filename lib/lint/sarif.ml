module Json = Crossbar_engine.Json

let version = "2.1.0"

let schema_uri =
  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

let rule_descriptor rule =
  Json.Assoc
    [
      ("id", Json.String (Rule.to_string rule));
      ( "shortDescription",
        Json.Assoc [ ("text", Json.String (Rule.title rule)) ] );
      ( "fullDescription",
        Json.Assoc [ ("text", Json.String (Rule.rationale rule)) ] );
    ]

let result (f : Finding.t) =
  Json.Assoc
    [
      ("ruleId", Json.String (Rule.to_string f.Finding.rule));
      ("level", Json.String "error");
      ("message", Json.Assoc [ ("text", Json.String f.Finding.message) ]);
      ( "locations",
        Json.List
          [
            Json.Assoc
              [
                ( "physicalLocation",
                  Json.Assoc
                    [
                      ( "artifactLocation",
                        Json.Assoc
                          [ ("uri", Json.String f.Finding.file) ] );
                      ( "region",
                        Json.Assoc
                          [
                            ("startLine", Json.Int (max 1 f.Finding.line));
                            (* SARIF columns are 1-based; findings carry the
                               compiler's 0-based column. *)
                            ("startColumn", Json.Int (f.Finding.col + 1));
                          ] );
                    ] );
              ];
          ] );
    ]

let to_json findings =
  (* The driver advertises the full rule catalogue, not just the rules
     with findings: a clean run still documents what was enforced
     (R11-R13 included), and viewers resolve ruleId against this list.
     [Syntax] rides along only when a file actually failed to parse. *)
  let rules_present =
    List.sort_uniq Rule.compare
      (Rule.all @ List.map (fun (f : Finding.t) -> f.Finding.rule) findings)
  in
  Json.Assoc
    [
      ("version", Json.String version);
      ("$schema", Json.String schema_uri);
      ( "runs",
        Json.List
          [
            Json.Assoc
              [
                ( "tool",
                  Json.Assoc
                    [
                      ( "driver",
                        Json.Assoc
                          [
                            ("name", Json.String "crossbar-lint");
                            ("informationUri", Json.String "docs/LINT.md");
                            ( "rules",
                              Json.List
                                (List.map rule_descriptor rules_present) );
                          ] );
                    ] );
                ("results", Json.List (List.map result findings));
              ];
          ] );
    ]

let to_string findings = Json.to_string (to_json findings)
