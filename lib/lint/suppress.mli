(** Lexical scan for in-source suppression comments.

    Recognised directives, anywhere inside a comment containing the
    ["lint:"] marker:

    - [(* lint: disable=R1,R5 — reason *)] suppresses the named rules on
      the directive's own line and on the following line (so the comment
      can trail the offending expression or sit just above it);
    - [(* lint: disable-file=R4 — reason *)] suppresses for the whole file;
    - [(* lint: domain-safe — reason *)] is shorthand for
      [disable=R3,R8,R9] — one annotation covers the untyped and typed
      shared-state rules alike;
    - [(* lint: guarded=name1,name2 — reason *)] declares the named
      captures at a domain-boundary call site to be safely guarded
      (single-writer protocol, read-only sharing, joined before reads);
      R10 skips exactly those names on the directive's own line and the
      next, leaving every other capture at the site flagged;
    - [(* lint: alloc=name1,name2 — reason *)] sanctions the named
      allocation sites (the let-bound name, or the synthetic kind name
      such as ["tuple"] when the value is anonymous) for R11 on the
      directive's own line and the next, leaving every other allocation
      reachable from a hot root flagged.

    The free-form reason is not parsed but is required by convention; the
    [Syntax] pseudo-rule can never be suppressed. *)

type t

val empty : unit -> t
(** A scan result with no directives (used for unreadable files). *)

val scan : string -> t
(** [scan source_text] collects every directive with its line number. *)

val active : t -> rule:Rule.id -> line:int -> bool
(** Whether findings for [rule] at [line] are suppressed. *)

val guarded : t -> line:int -> string list
(** Capture names declared guarded at [line] via [guarded=] directives
    (a directive covers its own line and the following one). *)

val sanctioned_allocs : t -> line:int -> string list
(** Allocation names sanctioned at [line] via [alloc=] directives
    (a directive covers its own line and the following one). *)
