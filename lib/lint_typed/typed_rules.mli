(** Typedtree-level rules (stage two of the linter).

    Where the Parsetree rules in [Crossbar_lint.Rules] see only syntax,
    these see the typechecker's output: resolved value paths, inferred
    types, and desugared applications.  One pass over a unit's [.cmt]
    yields both the R7/R8 findings for that file and the {!Summary.file}
    record — call edges, writes with lock context, the v3
    closure-capture data (lambdas, mutable captures, forwarding call
    sites), and the v4 effect data (boxed-allocation sites, unguarded
    raise sites, candidate cross-domain float operations, return
    domains) — that feeds the interprocedural R9-R13 analyses in
    {!Callgraph}, {!Capture} and {!Effects}. *)

type session
(** Mutable compiler-libs state (load path, persistent-structure caches)
    shared across the files of one run.  Reconstruction of typing
    environments from [.cmt] summaries goes through global compiler-libs
    state; a [session] re-initialises it only when a unit was compiled
    with a different load path than its predecessor. *)

val session : unit -> session

val lock_wrapper : config:Crossbar_lint.Config.t -> string -> bool
(** Whether a resolved value path names a configured lock wrapper
    ([r9_lock_wrappers]); a bare single-component pattern matches any
    path ending in that component. *)

val domain_sink : config:Crossbar_lint.Config.t -> string -> bool
(** Whether a resolved value path names a configured domain boundary
    ([r10_sinks]).  A two-component pattern such as ["Pool.run"] matches
    the plain, aliased and unit-mangled spellings of the same function
    ([Pool.run], [Crossbar_engine.Pool.run], [Crossbar_engine__Pool.run]). *)

val dotted_match : pattern:string -> string -> bool
(** The matcher behind {!domain_sink}, exposed for the effect stage's
    [hot_roots]/[r12_boundaries]/producer patterns: a bare component
    matches any path ending there, a dotted pattern additionally requires
    the short (unmangled) name of the module right above the value. *)

val analyse :
  config:Crossbar_lint.Config.t ->
  path:string ->
  r8_applies:bool ->
  session:session ->
  cmt_root:string ->
  cmt_path:string ->
  (Crossbar_lint.Finding.t list * Summary.file, string) result
(** [analyse] reads [cmt_path] (relative load-path entries inside it are
    resolved against [cmt_root]) and returns the file's R7/R8 findings —
    unfiltered by suppressions, which the driver applies — plus its R9
    summary.  [path] is the source path used in findings and summaries;
    [r8_applies] says whether the file sits in the configured R8 scope
    (shared-state rules only apply where pool workers can reach).
    Errors are soft: a missing or non-typedtree [.cmt] reports why. *)
