(** Interprocedural R9 over per-file summaries.

    Builds a typed call graph by resolving each summary's referenced
    value paths against the functions every other summary defines, walks
    it breadth-first from the functions defined under the configured
    [r9_roots] directories, and flags every unlocked write to top-level
    mutable state inside a reachable function.

    This is the cheap, always-recomputed half of R9: summaries come from
    the incremental cache, so the graph walk costs one pass over data
    already in memory.  Resolution is over-approximate in the safe
    direction — an unresolvable call edge drops reachability (missed
    edges are reported by R9 firing on the callee's own root instead),
    while lock context travels with each write, not each call site. *)

type node = { file : Summary.file; func : Summary.func }

val short_modname : string -> string
(** Trailing segment of a mangled unit name: ["Crossbar__Solver"] is
    addressed from other units as ["Solver"]. *)

val resolver : Summary.file list -> Summary.file -> string -> node option
(** [resolver files caller call] resolves a referenced value path to the
    defining function: dotted paths through a (short module name, value)
    table, bare names within [caller]'s own file.  Shared by the R9
    reachability walk and the {!Capture} escape fixpoint, so both
    analyses agree on what an edge means. *)

val findings :
  config:Crossbar_lint.Config.t ->
  ?locked_lambdas:(string * int, unit) Hashtbl.t ->
  Summary.file list ->
  Crossbar_lint.Finding.t list
(** Unsuppressed R9 findings for the whole program described by the given
    summaries, in file/line order of discovery.  [locked_lambdas] is the
    {!Capture} fixpoint's set of [(file path, lambda id)] proven to run
    under a configured lock wrapper through indirect calls — writes
    inside those lambdas are treated as locked, closing the v2
    higher-order escape hatch where a callback stored and invoked through
    [Mutex.protect m cb] was reported as unlocked. *)
