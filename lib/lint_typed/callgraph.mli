(** Interprocedural R9 over per-file summaries.

    Builds a typed call graph by resolving each summary's referenced
    value paths against the functions every other summary defines, walks
    it breadth-first from the functions defined under the configured
    [r9_roots] directories, and flags every unlocked write to top-level
    mutable state inside a reachable function.

    This is the cheap, always-recomputed half of R9: summaries come from
    the incremental cache, so the graph walk costs one pass over data
    already in memory.  Resolution is over-approximate in the safe
    direction — an unresolvable call edge drops reachability (missed
    edges are reported by R9 firing on the callee's own root instead),
    while lock context travels with each write, not each call site. *)

val findings :
  config:Crossbar_lint.Config.t ->
  Summary.file list ->
  Crossbar_lint.Finding.t list
(** Unsuppressed R9 findings for the whole program described by the given
    summaries, in file/line order of discovery. *)
