module Lint = Crossbar_lint
module Finding = Lint.Finding
module Rule = Lint.Rule

type session = { mutable loadpath : string list }

let session () = { loadpath = [] }

let line_col (loc : Location.t) =
  let p = loc.Location.loc_start in
  (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)

(* ---------- name tables ---------- *)

(* [Path.name] renders typechecker-resolved paths, so aliases and [open]s
   are already seen through; both the source ("Stdlib.Float.equal") and
   the mangled-unit ("Stdlib__Float.equal") spellings occur depending on
   how the value was reached. *)
let float_eq_names =
  [
    "Stdlib.Float.equal"; "Stdlib.Float.compare";
    "Stdlib__Float.equal"; "Stdlib__Float.compare";
    "Float.equal"; "Float.compare";
  ]

let poly_eq_names =
  [ "Stdlib.="; "Stdlib.<>"; "Stdlib.=="; "Stdlib.!="; "Stdlib.compare" ]

let mutator_names =
  [
    "Stdlib.:="; "Stdlib.incr"; "Stdlib.decr";
    "Stdlib.Array.set"; "Stdlib.Array.unsafe_set"; "Stdlib.Array.fill";
    "Stdlib.Array.blit";
    "Stdlib.Bytes.set"; "Stdlib.Bytes.unsafe_set"; "Stdlib.Bytes.fill";
    "Stdlib.Bytes.blit";
    "Stdlib.Hashtbl.add"; "Stdlib.Hashtbl.replace"; "Stdlib.Hashtbl.remove";
    "Stdlib.Hashtbl.reset"; "Stdlib.Hashtbl.clear";
    "Stdlib.Hashtbl.filter_map_inplace";
    "Stdlib.Queue.add"; "Stdlib.Queue.push"; "Stdlib.Queue.pop";
    "Stdlib.Queue.take"; "Stdlib.Queue.clear"; "Stdlib.Queue.transfer";
    "Stdlib.Stack.push"; "Stdlib.Stack.pop"; "Stdlib.Stack.clear";
    "Stdlib.Buffer.add_char"; "Stdlib.Buffer.add_string";
    "Stdlib.Buffer.add_bytes"; "Stdlib.Buffer.add_substring";
    "Stdlib.Buffer.add_buffer"; "Stdlib.Buffer.clear"; "Stdlib.Buffer.reset";
  ]

let last_component name =
  match String.rindex_opt name '.' with
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)
  | None -> name

let lock_wrapper ~(config : Lint.Config.t) name =
  List.exists
    (fun wrapper ->
      String.equal wrapper name || String.equal wrapper (last_component name))
    config.Lint.Config.r9_lock_wrappers

(* ---------- environment reconstruction ---------- *)

(* [.cmt] files store environments as summaries; rebuilding them needs the
   load path the unit was compiled with.  Re-initialising the global load
   path and the persistent-structure caches is only done when the path
   set actually changes (units of one library share it), which is what
   keeps a full-tree run fast. *)
let prepare_env ~session ~cmt_root (cmt : Cmt_format.cmt_infos) =
  let dirs =
    List.map
      (fun dir ->
        if String.equal dir "" then cmt_root
        else if Filename.is_relative dir then Filename.concat cmt_root dir
        else dir)
      cmt.Cmt_format.cmt_loadpath
  in
  let dirs =
    if List.mem Config.standard_library dirs then dirs
    else dirs @ [ Config.standard_library ]
  in
  if dirs <> session.loadpath then begin
    session.loadpath <- dirs;
    Load_path.init ~auto_include:Load_path.no_auto_include dirs;
    Env.reset_cache ();
    Envaux.reset_cache ()
  end

let env_of node_env =
  match Envaux.env_of_only_summary node_env with
  | env -> env
  | exception (Envaux.Error _ | Env.Error _ | Not_found) -> node_env

let expand env ty =
  match Ctype.expand_head env ty with
  | ty -> ty
  | exception (Env.Error _ | Not_found) -> ty

let is_float env ty =
  match Types.get_desc (expand env ty) with
  | Types.Tconstr (p, [], _) -> Path.same p Predef.path_float
  | _ -> false

(* ---------- R8: is this type mutable? ---------- *)

let rec mutable_reason ~(config : Lint.Config.t) ~depth env ty =
  if depth > 8 then None
  else
    match Types.get_desc (expand env ty) with
    | Types.Tconstr (p, _, _) ->
        let name = Path.name p in
        if Path.same p Predef.path_array || Path.same p Predef.path_floatarray
        then Some "an array"
        else if Path.same p Predef.path_bytes then Some "a Bytes buffer"
        else if List.mem name config.Lint.Config.r8_sanctioned_types then None
        else if List.mem name config.Lint.Config.r8_mutable_types then
          Some (Printf.sprintf "a mutable %s" name)
        else begin
          match Env.find_type p env with
          | decl -> (
              match decl.Types.type_kind with
              | Types.Type_record (labels, _) -> (
                  match
                    List.find_opt
                      (fun (l : Types.label_declaration) ->
                        l.Types.ld_mutable = Asttypes.Mutable)
                      labels
                  with
                  | Some l ->
                      Some
                        (Printf.sprintf "a record with mutable field %s"
                           (Ident.name l.Types.ld_id))
                  | None ->
                      (* An immutable record can still wrap a mutable
                         component type. *)
                      List.find_map
                        (fun (l : Types.label_declaration) ->
                          mutable_reason ~config ~depth:(depth + 1) env
                            l.Types.ld_type)
                        labels)
              | _ ->
                  (* Abstract or variant: trust the abstraction boundary
                     unless configured otherwise. *)
                  None)
          | exception Not_found -> None
        end
    | Types.Ttuple items ->
        List.find_map (mutable_reason ~config ~depth:(depth + 1) env) items
    | _ -> None

(* ---------- per-file analysis ---------- *)

let read_cmt cmt_path =
  match Cmt_format.read_cmt cmt_path with
  | cmt -> Ok cmt
  | exception Cmt_format.Error (Cmt_format.Not_a_typedtree m) ->
      Error (Printf.sprintf "%s: not a typedtree (%s)" cmt_path m)
  | exception Cmi_format.Error _ ->
      Error (Printf.sprintf "%s: not a .cmt artifact" cmt_path)
  | exception Sys_error m -> Error m
  | exception (End_of_file | Failure _) ->
      Error (Printf.sprintf "%s: truncated or corrupt .cmt" cmt_path)

open Typedtree

let ident_path e =
  match e.exp_desc with Texp_ident (p, _, _) -> Some p | _ -> None

(* A mutation target counts as top-level when it resolves to a module
   component ([Pdot]: some unit's export) or to one of this unit's own
   top-level values; anything else is call-frame-local and fresh per
   invocation.  Shadowing a top-level name with a local produces a false
   positive — the over-approximate (safe) direction, and suppressible. *)
let rec global_target ~toplevel e =
  match e.exp_desc with
  | Texp_ident ((Path.Pdot _ as p), _, _) -> Some (Path.name p)
  | Texp_ident (Path.Pident id, _, _) when Hashtbl.mem toplevel (Ident.name id)
    ->
      Some (Ident.name id)
  | Texp_field (inner, _, label) ->
      Option.map
        (fun base -> base ^ "." ^ label.Types.lbl_name)
        (global_target ~toplevel inner)
  | _ -> None

let analyse ~(config : Lint.Config.t) ~path ~r8_applies ~session ~cmt_root
    ~cmt_path =
  Result.bind (read_cmt cmt_path) @@ fun cmt ->
  match cmt.Cmt_format.cmt_annots with
  | Cmt_format.Implementation structure ->
      prepare_env ~session ~cmt_root cmt;
      let findings = ref [] in
      let funcs = ref [] in
      let in_numerics =
        Lint.Config.matches path config.Lint.Config.numerics_prefixes
      in
      let enabled rule = Lint.Config.enabled config rule in
      let r7_applies = enabled Rule.R7 && not in_numerics in
      let add rule loc message =
        let line, col = line_col loc in
        findings :=
          Finding.make ~rule ~file:path ~line ~col message :: !findings
      in

      (* Every top-level value name of the unit, for mutation-target
         resolution (collected up front so forward references count). *)
      let toplevel = Hashtbl.create 32 in
      let rec collect_names items =
        List.iter
          (fun item ->
            match item.str_desc with
            | Tstr_value (_, bindings) ->
                List.iter
                  (fun vb ->
                    match vb.vb_pat.pat_desc with
                    | Tpat_var (id, _) ->
                        Hashtbl.replace toplevel (Ident.name id) ()
                    | _ -> ())
                  bindings
            | Tstr_module { mb_expr = { mod_desc = Tmod_structure s; _ }; _ }
              ->
                collect_names s.str_items
            | _ -> ())
          items
      in
      collect_names structure.str_items;

      (* One iterator pass per top-level binding body serves both R7 (float
         comparisons) and the R9 summary (referenced paths + writes to
         top-level state, with lock context). *)
      let calls = ref [] in
      let mutations = ref [] in
      let lock_depth = ref 0 in
      let record_mutation loc target =
        let line, col = line_col loc in
        mutations :=
          {
            Summary.m_line = line;
            m_col = col;
            target;
            locked = !lock_depth > 0;
          }
          :: !mutations
      in
      let note_ident loc p =
        let name = Path.name p in
        if r7_applies && List.mem name float_eq_names then
          add Rule.R7 loc
            (Printf.sprintf
               "%s is an exact float comparison; use \
                Crossbar_numerics.Prob.{is_zero,approx_eq,ulp_equal} or a \
                named tolerance"
               name)
        else if
          (not (String.starts_with ~prefix:"Stdlib" name))
          && not (String.starts_with ~prefix:"CamlinternalFormat" name)
        then calls := name :: !calls
      in
      let check_apply loc fn args =
        match ident_path fn with
        | None -> ()
        | Some p -> (
            let name = Path.name p in
            (if r7_applies && List.mem name poly_eq_names then
               let on_float =
                 List.exists
                   (fun (_, arg) ->
                     match arg with
                     | Some (a : expression) ->
                         is_float (env_of a.exp_env) a.exp_type
                     | None -> false)
                   args
               in
               if on_float then
                 add Rule.R7 loc
                   (Printf.sprintf
                      "polymorphic %s applied to float operands compares bit \
                       patterns; use \
                       Crossbar_numerics.Prob.{is_zero,approx_eq,ulp_equal} \
                       or a named tolerance"
                      (last_component name)));
            if List.mem name mutator_names then
              match
                List.find_map
                  (fun (_, arg) -> Option.bind arg (global_target ~toplevel))
                  args
              with
              | Some target ->
                  record_mutation loc
                    (Printf.sprintf "%s (via %s)" target (last_component name))
              | None -> ())
      in
      let visit iterator e =
        match e.exp_desc with
        | Texp_ident (p, _, _) -> note_ident e.exp_loc p
        | Texp_apply (fn, args) -> (
            check_apply e.exp_loc fn args;
            match ident_path fn with
            | Some p when lock_wrapper ~config (Path.name p) ->
                (* The wrapper's non-function arguments (the mutex, the
                   state handle) are evaluated unlocked; only function
                   literals run under the lock. *)
                iterator.Tast_iterator.expr iterator fn;
                List.iter
                  (fun (_, arg) ->
                    match arg with
                    | Some (a : expression) -> (
                        match a.exp_desc with
                        | Texp_function _ ->
                            incr lock_depth;
                            Fun.protect
                              ~finally:(fun () -> decr lock_depth)
                              (fun () ->
                                iterator.Tast_iterator.expr iterator a)
                        | _ -> iterator.Tast_iterator.expr iterator a)
                    | None -> ())
                  args
            | _ -> Tast_iterator.default_iterator.expr iterator e)
        | Texp_setfield (target, _, label, _) ->
            (match global_target ~toplevel target with
            | Some base ->
                record_mutation e.exp_loc
                  (base ^ "." ^ label.Types.lbl_name ^ " <- ...")
            | None -> ());
            Tast_iterator.default_iterator.expr iterator e
        | _ -> Tast_iterator.default_iterator.expr iterator e
      in
      let iterator = { Tast_iterator.default_iterator with expr = visit } in
      let analyse_body vb =
        calls := [];
        mutations := [];
        lock_depth := 0;
        iterator.Tast_iterator.expr iterator vb.vb_expr;
        (List.rev !calls, List.rev !mutations)
      in

      let rec walk_items items =
        List.iter
          (fun item ->
            match item.str_desc with
            | Tstr_value (_, bindings) ->
                List.iter
                  (fun vb ->
                    (if r8_applies && enabled Rule.R8 then
                       let env = env_of vb.vb_expr.exp_env in
                       match
                         mutable_reason ~config ~depth:0 env vb.vb_expr.exp_type
                       with
                       | Some reason ->
                           add Rule.R8 vb.vb_loc
                             (Printf.sprintf
                                "top-level value's inferred type is %s, \
                                 shared across pool domains; use Atomic/Mutex \
                                 or annotate (* lint: domain-safe — reason *)"
                                reason)
                       | None -> ());
                    match vb.vb_pat.pat_desc with
                    | Tpat_var (id, _) ->
                        let line, col = line_col vb.vb_loc in
                        let calls, mutations = analyse_body vb in
                        funcs :=
                          {
                            Summary.f_name = Ident.name id;
                            f_line = line;
                            f_col = col;
                            calls;
                            mutations;
                          }
                          :: !funcs
                    | _ ->
                        (* [let () = ...] load-time blocks: R7 still
                           applies; no function summary to record. *)
                        ignore (analyse_body vb))
                  bindings
            | Tstr_module { mb_expr; _ } -> walk_module mb_expr
            | Tstr_recmodule bindings ->
                List.iter (fun mb -> walk_module mb.mb_expr) bindings
            | Tstr_include { incl_mod; _ } -> walk_module incl_mod
            | _ -> ())
          items
      and walk_module mexpr =
        match mexpr.mod_desc with
        | Tmod_structure s -> walk_items s.str_items
        | Tmod_constraint (inner, _, _, _) -> walk_module inner
        | _ -> ()
      in
      walk_items structure.str_items;

      Ok
        ( List.rev !findings,
          {
            Summary.path;
            modname = cmt.Cmt_format.cmt_modname;
            funcs = List.rev !funcs;
          } )
  | _ -> Error (Printf.sprintf "%s: no implementation typedtree" cmt_path)
