module Lint = Crossbar_lint
module Finding = Lint.Finding
module Rule = Lint.Rule

type session = { mutable loadpath : string list }

let session () = { loadpath = [] }

let line_col (loc : Location.t) =
  let p = loc.Location.loc_start in
  (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)

(* ---------- name tables ---------- *)

(* [Path.name] renders typechecker-resolved paths, so aliases and [open]s
   are already seen through; both the source ("Stdlib.Float.equal") and
   the mangled-unit ("Stdlib__Float.equal") spellings occur depending on
   how the value was reached. *)
let float_eq_names =
  [
    "Stdlib.Float.equal"; "Stdlib.Float.compare";
    "Stdlib__Float.equal"; "Stdlib__Float.compare";
    "Float.equal"; "Float.compare";
  ]

let poly_eq_names =
  [ "Stdlib.="; "Stdlib.<>"; "Stdlib.=="; "Stdlib.!="; "Stdlib.compare" ]

let mutator_names =
  [
    "Stdlib.:="; "Stdlib.incr"; "Stdlib.decr";
    "Stdlib.Array.set"; "Stdlib.Array.unsafe_set"; "Stdlib.Array.fill";
    "Stdlib.Array.blit";
    "Stdlib.Bytes.set"; "Stdlib.Bytes.unsafe_set"; "Stdlib.Bytes.fill";
    "Stdlib.Bytes.blit";
    "Stdlib.Hashtbl.add"; "Stdlib.Hashtbl.replace"; "Stdlib.Hashtbl.remove";
    "Stdlib.Hashtbl.reset"; "Stdlib.Hashtbl.clear";
    "Stdlib.Hashtbl.filter_map_inplace";
    "Stdlib.Queue.add"; "Stdlib.Queue.push"; "Stdlib.Queue.pop";
    "Stdlib.Queue.take"; "Stdlib.Queue.clear"; "Stdlib.Queue.transfer";
    "Stdlib.Stack.push"; "Stdlib.Stack.pop"; "Stdlib.Stack.clear";
    "Stdlib.Buffer.add_char"; "Stdlib.Buffer.add_string";
    "Stdlib.Buffer.add_bytes"; "Stdlib.Buffer.add_substring";
    "Stdlib.Buffer.add_buffer"; "Stdlib.Buffer.clear"; "Stdlib.Buffer.reset";
  ]

let raise_names = [ "Stdlib.raise"; "Stdlib.raise_notrace" ]
let ref_names = [ "Stdlib.ref"; "ref" ]
let addsub_names = [ "Stdlib.+."; "Stdlib.-." ]
let cmp_op_names = [ "Stdlib.<"; "Stdlib.>"; "Stdlib.<="; "Stdlib.>=" ]

(* Array builders whose result is a fresh heap block.  Float arrays and
   [floatarray] are flat (unboxed) so they are filtered by element type at
   the use site, per R11's "non-flat element types" scope. *)
let array_maker_names =
  [
    "Stdlib.Array.make"; "Stdlib.Array.init"; "Stdlib.Array.copy";
    "Stdlib.Array.map"; "Stdlib.Array.mapi"; "Stdlib.Array.append";
    "Stdlib.Array.sub"; "Stdlib.Array.of_list"; "Stdlib.Array.concat";
    "Stdlib.Array.make_matrix"; "Stdlib.Array.split";
    "Array.make"; "Array.init"; "Array.copy"; "Array.map"; "Array.mapi";
    "Array.append"; "Array.sub"; "Array.of_list"; "Array.concat";
    "Array.make_matrix"; "Array.split";
  ]

let last_component name =
  match String.rindex_opt name '.' with
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)
  | None -> name

let lock_wrapper ~(config : Lint.Config.t) name =
  List.exists
    (fun wrapper ->
      String.equal wrapper name || String.equal wrapper (last_component name))
    config.Lint.Config.r9_lock_wrappers

(* A configured pattern like "Pool.run" must match however the
   typechecker rendered the resolved path: "Pool.run" inside the defining
   library, "Crossbar_engine.Pool.run" through the alias, or the mangled
   "Crossbar_engine__Pool.run" from a direct unit reference.  Matching the
   trailing value component plus the short name of the module right above
   it covers all three; a bare single-component pattern ("locked") keeps
   the r9_lock_wrappers semantics of matching any path ending there. *)
let dotted_match ~pattern name =
  if String.equal pattern name then true
  else
    match String.rindex_opt pattern '.' with
    | None -> String.equal pattern (last_component name)
    | Some i -> (
        let pat_value = String.sub pattern (i + 1) (String.length pattern - i - 1) in
        let pat_mod = String.sub pattern 0 i in
        String.equal pat_value (last_component name)
        &&
        match String.rindex_opt name '.' with
        | None -> false
        | Some j ->
            let mod_part = String.sub name 0 j in
            let short =
              match String.rindex_opt mod_part '.' with
              | Some k ->
                  String.sub mod_part (k + 1) (String.length mod_part - k - 1)
              | None -> mod_part
            in
            (* Strip "Lib__" unit mangling off the module segment. *)
            let short =
              match String.rindex_opt short '_' with
              | Some k when k > 0 && short.[k - 1] = '_' ->
                  String.sub short (k + 1) (String.length short - k - 1)
              | _ -> short
            in
            String.equal short pat_mod)

let domain_sink ~(config : Lint.Config.t) name =
  List.exists
    (fun pattern -> dotted_match ~pattern name)
    config.Lint.Config.r10_sinks

(* ---------- environment reconstruction ---------- *)

(* [.cmt] files store environments as summaries; rebuilding them needs the
   load path the unit was compiled with.  Re-initialising the global load
   path and the persistent-structure caches is only done when the path
   set actually changes (units of one library share it), which is what
   keeps a full-tree run fast. *)
let prepare_env ~session ~cmt_root (cmt : Cmt_format.cmt_infos) =
  let dirs =
    List.map
      (fun dir ->
        if String.equal dir "" then cmt_root
        else if Filename.is_relative dir then Filename.concat cmt_root dir
        else dir)
      cmt.Cmt_format.cmt_loadpath
  in
  let dirs =
    if List.mem Config.standard_library dirs then dirs
    else dirs @ [ Config.standard_library ]
  in
  if dirs <> session.loadpath then begin
    session.loadpath <- dirs;
    Load_path.init ~auto_include:Load_path.no_auto_include dirs;
    Env.reset_cache ();
    Envaux.reset_cache ()
  end

let env_of node_env =
  match Envaux.env_of_only_summary node_env with
  | env -> env
  | exception (Envaux.Error _ | Env.Error _ | Not_found) -> node_env

let expand env ty =
  match Ctype.expand_head env ty with
  | ty -> ty
  | exception (Env.Error _ | Not_found) -> ty

let is_float env ty =
  match Types.get_desc (expand env ty) with
  | Types.Tconstr (p, [], _) -> Path.same p Predef.path_float
  | _ -> false

let is_arrow env ty =
  match Types.get_desc (expand env ty) with
  | Types.Tarrow _ -> true
  | _ -> false

(* Whether [ty] is an array/floatarray whose cells are flat floats, i.e.
   an unboxed block R11 does not count as a boxed allocation. *)
let array_elem_is_float env ty =
  match Types.get_desc (expand env ty) with
  | Types.Tconstr (p, [ elt ], _) when Path.same p Predef.path_array ->
      is_float env elt
  | Types.Tconstr (p, _, _) when Path.same p Predef.path_floatarray -> true
  | _ -> false

(* ---------- R8/R10: is this type mutable? ---------- *)

let bigarray_name name =
  String.starts_with ~prefix:"Stdlib.Bigarray." name
  || String.starts_with ~prefix:"Stdlib__Bigarray." name
  || String.starts_with ~prefix:"Bigarray." name

let rec mutable_reason ~(config : Lint.Config.t) ~depth env ty =
  if depth > 8 then None
  else
    match Types.get_desc (expand env ty) with
    | Types.Tconstr (p, _, _) ->
        let name = Path.name p in
        if Path.same p Predef.path_array || Path.same p Predef.path_floatarray
        then Some "an array"
        else if Path.same p Predef.path_bytes then Some "a Bytes buffer"
        else if List.mem name config.Lint.Config.r8_sanctioned_types then None
        else if List.mem name config.Lint.Config.r8_mutable_types then
          Some (Printf.sprintf "a mutable %s" name)
        else if bigarray_name name then Some "a Bigarray"
        else begin
          match Env.find_type p env with
          | decl -> (
              match decl.Types.type_kind with
              | Types.Type_record (labels, _) -> (
                  match
                    List.find_opt
                      (fun (l : Types.label_declaration) ->
                        l.Types.ld_mutable = Asttypes.Mutable)
                      labels
                  with
                  | Some l ->
                      Some
                        (Printf.sprintf "a record with mutable field %s"
                           (Ident.name l.Types.ld_id))
                  | None ->
                      (* An immutable record can still wrap a mutable
                         component type. *)
                      List.find_map
                        (fun (l : Types.label_declaration) ->
                          mutable_reason ~config ~depth:(depth + 1) env
                            l.Types.ld_type)
                        labels)
              | _ ->
                  (* Abstract or variant: trust the abstraction boundary
                     unless configured otherwise. *)
                  None)
          | exception Not_found -> None
        end
    | Types.Ttuple items ->
        List.find_map (mutable_reason ~config ~depth:(depth + 1) env) items
    | _ -> None

(* R10's per-capture classification: the r10_guarded_types list extends
   the sanctioned set with the repo's own mutex-guarded abstractions, so
   a [Telemetry.t] capture is clean even inside the library where the
   type is concrete (and would otherwise read as a mutable record). *)
let capture_reason ~(config : Lint.Config.t) env ty =
  match Types.get_desc (expand env ty) with
  | Types.Tconstr (p, _, _)
    when List.mem (Path.name p) config.Lint.Config.r10_guarded_types ->
      None
  | _ -> mutable_reason ~config ~depth:0 env ty

(* ---------- per-file analysis ---------- *)

let read_cmt cmt_path =
  match Cmt_format.read_cmt cmt_path with
  | cmt -> Ok cmt
  | exception Cmt_format.Error (Cmt_format.Not_a_typedtree m) ->
      Error (Printf.sprintf "%s: not a typedtree (%s)" cmt_path m)
  | exception Cmi_format.Error _ ->
      Error (Printf.sprintf "%s: not a .cmt artifact" cmt_path)
  | exception Sys_error m -> Error m
  | exception (End_of_file | Failure _) ->
      Error (Printf.sprintf "%s: truncated or corrupt .cmt" cmt_path)

open Typedtree

let ident_path e =
  match e.exp_desc with Texp_ident (p, _, _) -> Some p | _ -> None

(* A mutation target counts as top-level when it resolves to a module
   component ([Pdot]: some unit's export) or to one of this unit's own
   top-level values; anything else is call-frame-local and fresh per
   invocation.  Shadowing a top-level name with a local produces a false
   positive — the over-approximate (safe) direction, and suppressible. *)
let rec global_target ~toplevel e =
  match e.exp_desc with
  | Texp_ident ((Path.Pdot _ as p), _, _) -> Some (Path.name p)
  | Texp_ident (Path.Pident id, _, _) when Hashtbl.mem toplevel (Ident.name id)
    ->
      Some (Ident.name id)
  | Texp_field (inner, _, label) ->
      Option.map
        (fun base -> base ^ "." ^ label.Types.lbl_name)
        (global_target ~toplevel inner)
  | _ -> None

(* The curried parameter spine of a top-level binding: the maximal chain
   of single-case unguarded [fun] nodes.  Spine nodes are the function
   itself, not closures it builds, so they never become lambda records;
   their pattern idents are the function's parameters, indexed by level
   for the Arg_param edges the capture fixpoint propagates over. *)
let peel_spine expr =
  (* An optional parameter with a default, [?(stride = 1)], elaborates to
     a ["*opt*"] parameter whose body immediately lets the visible name to
     the defaulted match before the next [fun] — peel through that let so
     the remaining parameters stay on the spine (and are not misread as
     closures the function allocates). *)
  let through_default param c_rhs =
    if String.starts_with ~prefix:"*opt*" (Ident.name param) then
      match c_rhs.exp_desc with
      | Texp_let (_, vbs, body) ->
          (List.concat_map (fun vb -> pat_bound_idents vb.vb_pat) vbs, body)
      | _ -> ([], c_rhs)
    else ([], c_rhs)
  in
  let rec peel params nodes exp =
    match exp.exp_desc with
    | Texp_function
        { param; cases = [ { c_lhs; c_guard = None; c_rhs } ]; _ } ->
        let defaulted, next = through_default param c_rhs in
        let level = (param :: pat_bound_idents c_lhs) @ defaulted in
        peel (level :: params) (exp :: nodes) next
    | Texp_function _ -> (List.rev params, exp :: nodes)
    | _ -> (List.rev params, nodes)
  in
  peel [] [] expr

(* Every ident bound anywhere inside [e]: pattern idents (let, match,
   function cases) plus for-loop indices.  Free-variable computation is
   "uses minus this set" — over-approximate on shadowing in the harmless
   direction (a shadowed outer name is not reported as captured). *)
let bound_idents_within e =
  let acc = ref [] in
  let pat :
      type k. Tast_iterator.iterator -> k general_pattern -> unit =
   fun sub p ->
    acc := pat_bound_idents p @ !acc;
    Tast_iterator.default_iterator.pat sub p
  in
  let expr sub (e : expression) =
    (match e.exp_desc with
    | Texp_for (id, _, _, _, _, _) -> acc := id :: !acc
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with pat; expr } in
  it.Tast_iterator.expr it e;
  !acc

let analyse ~(config : Lint.Config.t) ~path ~r8_applies ~session ~cmt_root
    ~cmt_path =
  Result.bind (read_cmt cmt_path) @@ fun cmt ->
  match cmt.Cmt_format.cmt_annots with
  | Cmt_format.Implementation structure ->
      prepare_env ~session ~cmt_root cmt;
      let findings = ref [] in
      let funcs = ref [] in
      let in_numerics =
        Lint.Config.matches path config.Lint.Config.numerics_prefixes
      in
      let enabled rule = Lint.Config.enabled config rule in
      let r7_applies = enabled Rule.R7 && not in_numerics in
      let add rule loc message =
        let line, col = line_col loc in
        findings :=
          Finding.make ~rule ~file:path ~line ~col message :: !findings
      in

      (* Every top-level value name of the unit, for mutation-target
         resolution (collected up front so forward references count). *)
      let toplevel = Hashtbl.create 32 in
      let rec collect_names items =
        List.iter
          (fun item ->
            match item.str_desc with
            | Tstr_value (_, bindings) ->
                List.iter
                  (fun vb ->
                    match vb.vb_pat.pat_desc with
                    | Tpat_var (id, _) ->
                        Hashtbl.replace toplevel (Ident.name id) ()
                    | _ -> ())
                  bindings
            | Tstr_module { mb_expr = { mod_desc = Tmod_structure s; _ }; _ }
              ->
                collect_names s.str_items
            | _ -> ())
          items
      in
      collect_names structure.str_items;

      (* One iterator pass per top-level binding body serves R7 (float
         comparisons), the R9 summary (referenced paths + writes to
         top-level state, with lock context) and the v3 capture summary
         (lambdas with their mutable captures, call sites forwarding
         lambdas or parameters). *)
      let calls = ref [] in
      let mutations = ref [] in
      let lambdas = ref [] in
      let lock_depth = ref 0 in
      (* Lambda ids are file-scoped so [(path, lam_id)] is unique even
         when a file defines two functions of the same name. *)
      let next_lam = ref 0 in
      let fresh_lam () =
        let id = !next_lam in
        incr next_lam;
        id
      in
      (* Per-binding traversal state. *)
      let spine_nodes = ref [] in
      let param_levels = ref [] in
      let lambda_stack = ref [] in
      (* Source name (or "record.field") of a locally-bound closure to the
         location of its [fun] node ... *)
      let local_lambdas = Hashtbl.create 8 in
      (* ... resolved through the [fun]-location to lambda-id table once
         the node has been visited. *)
      let lambda_at = Hashtbl.create 8 in
      let captures_of = Hashtbl.create 8 in
      (* Call sites with lambda-literal args are recorded before their
         args are traversed (and so before those lambdas have ids); the
         pending location is resolved at end of binding. *)
      let pending_callsites = ref [] in

      (* Effect-stage (v4) per-binding state.  Allocation, raise and
         eff-call sites are extracted unconditionally (they are part of
         the cached summary); float-domain tracking is skipped inside the
         numerics libraries, whose internals mix domains by design —
         exactly the R1/R7 exemption. *)
      let track_domains = not in_numerics in
      let allocs = ref [] in
      let raises = ref [] in
      let eff_calls = ref [] in
      let seen_eff = Hashtbl.create 16 in
      let domain_sites = ref [] in
      let try_depth = ref 0 in
      (* [(line, col)] of a let-bound right-hand side to the bound name,
         so an allocation site is reported as the name it flows into. *)
      let binding_names = Hashtbl.create 16 in
      (* Local float-domain environment: ident name to inferred domain. *)
      let dom_env = Hashtbl.create 16 in

      let param_index id =
        let rec find level = function
          | [] -> None
          | idents :: rest ->
              if List.exists (Ident.same id) idents then Some level
              else find (level + 1) rest
        in
        find 0 !param_levels
      in
      let record_mutation loc target =
        let line, col = line_col loc in
        mutations :=
          {
            Summary.m_line = line;
            m_col = col;
            target;
            locked = !lock_depth > 0;
            m_lambda =
              (match !lambda_stack with id :: _ -> Some id | [] -> None);
          }
          :: !mutations
      in
      let note_ident loc p =
        let name = Path.name p in
        if r7_applies && List.mem name float_eq_names then
          add Rule.R7 loc
            (Printf.sprintf
               "%s is an exact float comparison; use \
                Crossbar_numerics.Prob.{is_zero,approx_eq,ulp_equal} or a \
                named tolerance"
               name)
        else if
          (not (String.starts_with ~prefix:"Stdlib" name))
          && not (String.starts_with ~prefix:"CamlinternalFormat" name)
        then calls := name :: !calls
      in
      let check_apply loc fn args =
        match ident_path fn with
        | None -> ()
        | Some p -> (
            let name = Path.name p in
            (if r7_applies && List.mem name poly_eq_names then
               let on_float =
                 List.exists
                   (fun (_, arg) ->
                     match arg with
                     | Some (a : expression) ->
                         is_float (env_of a.exp_env) a.exp_type
                     | None -> false)
                   args
               in
               if on_float then
                 add Rule.R7 loc
                   (Printf.sprintf
                      "polymorphic %s applied to float operands compares bit \
                       patterns; use \
                       Crossbar_numerics.Prob.{is_zero,approx_eq,ulp_equal} \
                       or a named tolerance"
                      (last_component name)));
            if List.mem name mutator_names then
              (* Only the structure argument can be the mutation target:
                 for [:=], [incr], [set] and friends that is the first
                 argument; [blit] also writes its destination, so every
                 argument stays in play there.  Value operands (the RHS
                 of [:=]) must not resolve — [phi := neg_infinity] reads
                 the global, it does not write it. *)
              let candidates =
                if String.equal (last_component name) "blit" then args
                else match args with [] -> [] | first :: _ -> [ first ]
              in
              match
                List.find_map
                  (fun (_, arg) -> Option.bind arg (global_target ~toplevel))
                  candidates
              with
              | Some target ->
                  record_mutation loc
                    (Printf.sprintf "%s (via %s)" target (last_component name))
              | None -> ())
      in

      (* The local name a closure-valued argument is reached through:
         a bare ident or one field projection off a local record. *)
      let local_closure_name e =
        match e.exp_desc with
        | Texp_ident (Path.Pident id, _, _) -> Some (Ident.name id)
        | Texp_field ({ exp_desc = Texp_ident (Path.Pident id, _, _); _ },
                      _, label) ->
            Some (Ident.name id ^ "." ^ label.Types.lbl_name)
        | _ -> None
      in

      (* Free variables of [lam] classified for mutability.  A free name
         that is itself a locally-bound closure contributes its own
         captures with the chain extended — the one-level transitive step
         that makes [let bound = fun ... in Pool.run (fun i -> bound i)]
         report the state [bound] closes over. *)
      let compute_captures lam =
        let bound = bound_idents_within lam in
        let is_bound id = List.exists (Ident.same id) bound in
        let seen = Hashtbl.create 8 in
        let out = ref [] in
        let record name line col reason via =
          if not (Hashtbl.mem seen name) then begin
            Hashtbl.replace seen name ();
            out :=
              {
                Summary.c_name = name;
                c_line = line;
                c_col = col;
                c_reason = reason;
                c_via = via;
              }
              :: !out
          end
        in
        let inherit_from name loc =
          match Hashtbl.find_opt local_lambdas name with
          | None -> false
          | Some fun_loc -> (
              match Hashtbl.find_opt lambda_at fun_loc with
              | None -> false
              | Some id ->
                  let line, col = line_col loc in
                  List.iter
                    (fun (c : Summary.capture) ->
                      record c.Summary.c_name line col c.Summary.c_reason
                        (name :: c.Summary.c_via))
                    (Option.value ~default:[]
                       (Hashtbl.find_opt captures_of id));
                  true)
        in
        let expr sub (e : expression) =
          (match e.exp_desc with
          | Texp_ident (Path.Pident id, _, _) when not (is_bound id) ->
              let name = Ident.name id in
              if not (inherit_from name e.exp_loc) then (
                match
                  capture_reason ~config (env_of e.exp_env) e.exp_type
                with
                | Some reason ->
                    let line, col = line_col e.exp_loc in
                    record name line col reason []
                | None -> ())
          | Texp_ident ((Path.Pdot _ as p), _, _) -> (
              match capture_reason ~config (env_of e.exp_env) e.exp_type with
              | Some reason ->
                  let line, col = line_col e.exp_loc in
                  record (Path.name p) line col reason []
              | None -> ())
          | _ -> ());
          Tast_iterator.default_iterator.expr sub e
        in
        let it = { Tast_iterator.default_iterator with expr } in
        it.Tast_iterator.expr it lam;
        List.rev !out
      in

      (* A partial application at an argument position builds a closure
         with no [fun] node to hang a record on; synthesise one whose
         captures are the application's own mutable operands, so
         [Pool.run (add_into buf)] still reports [buf]. *)
      let pseudo_lambda e inner_args =
        let id = fresh_lam () in
        let line, col = line_col e.exp_loc in
        let seen = Hashtbl.create 4 in
        let captures = ref [] in
        List.iter
          (fun (_, arg) ->
            match arg with
            | Some (a : expression) -> (
                let name =
                  match a.exp_desc with
                  | Texp_ident (Path.Pident id, _, _) -> Some (Ident.name id)
                  | Texp_ident ((Path.Pdot _ as p), _, _) ->
                      Some (Path.name p)
                  | _ -> None
                in
                match name with
                | Some name when not (Hashtbl.mem seen name) -> (
                    match
                      capture_reason ~config (env_of a.exp_env) a.exp_type
                    with
                    | Some reason ->
                        Hashtbl.replace seen name ();
                        let c_line, c_col = line_col a.exp_loc in
                        captures :=
                          {
                            Summary.c_name = name;
                            c_line;
                            c_col;
                            c_reason = reason;
                            c_via = [];
                          }
                          :: !captures
                    | None -> ())
                | _ -> ())
            | None -> ())
          inner_args;
        let captures = List.rev !captures in
        Hashtbl.replace captures_of id captures;
        lambdas :=
          { Summary.lam_id = id; lam_line = line; lam_col = col; captures }
          :: !lambdas;
        id
      in

      (* [`At loc] args await the lambda id assigned when the literal is
         visited; everything else is final immediately. *)
      let classify_arg (a : expression) =
        match a.exp_desc with
        | Texp_function _ -> `At (line_col a.exp_loc)
        | Texp_ident (Path.Pident id, _, _) -> (
            match param_index id with
            | Some i when is_arrow (env_of a.exp_env) a.exp_type ->
                `Known (Summary.Arg_param i)
            | _ ->
                if Hashtbl.mem local_lambdas (Ident.name id) then
                  `At_local (Ident.name id)
                else `Known Summary.Arg_other)
        | Texp_field _ -> (
            match local_closure_name a with
            | Some name when Hashtbl.mem local_lambdas name -> `At_local name
            | _ -> `Known Summary.Arg_other)
        | Texp_apply (_, inner_args)
          when is_arrow (env_of a.exp_env) a.exp_type ->
            `Known (Summary.Arg_lambda (pseudo_lambda a inner_args))
        | _ -> `Known Summary.Arg_other
      in
      let note_callsite loc fn args =
        match ident_path fn with
        | None -> ()
        | Some p ->
            let pending =
              List.map
                (fun (_, arg) ->
                  match arg with
                  | Some a -> classify_arg a
                  | None -> `Known Summary.Arg_other)
                args
            in
            let interesting =
              List.exists
                (function
                  | `Known Summary.Arg_other -> false
                  | `Known _ | `At _ | `At_local _ -> true)
                pending
            in
            if interesting then begin
              let line, col = line_col loc in
              pending_callsites :=
                (line, col, Path.name p, pending) :: !pending_callsites
            end
      in
      let note_local_closures vbs =
        List.iter
          (fun vb ->
            match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
            | Tpat_var (id, _), Texp_function _ ->
                Hashtbl.replace local_lambdas (Ident.name id)
                  (line_col vb.vb_expr.exp_loc)
            | Tpat_var (id, _), Texp_record { fields; _ } ->
                Array.iter
                  (fun ((label : Types.label_description), definition) ->
                    match definition with
                    | Overridden (_, ({ exp_desc = Texp_function _; _ } as f))
                      ->
                        Hashtbl.replace local_lambdas
                          (Ident.name id ^ "." ^ label.Types.lbl_name)
                          (line_col f.exp_loc)
                    | _ -> ())
                  fields
            | _ -> ())
          vbs
      in

      (* ---------- effect extraction (v4) ---------- *)
      let alloc_default_name = function
        | Summary.Alloc_closure -> "closure"
        | Summary.Alloc_tuple -> "tuple"
        | Summary.Alloc_record -> "record"
        | Summary.Alloc_boxed_float -> "boxed"
        | Summary.Alloc_array -> "array"
        | Summary.Alloc_partial -> "partial"
      in
      let record_alloc loc kind =
        let line, col = line_col loc in
        let name =
          match Hashtbl.find_opt binding_names (line_col loc) with
          | Some n -> n
          | None -> alloc_default_name kind
        in
        allocs :=
          { Summary.a_line = line; a_col = col; a_kind = kind; a_name = name }
          :: !allocs
      in
      let record_raise loc exn =
        if !try_depth = 0 && not in_numerics then begin
          let line, col = line_col loc in
          raises :=
            {
              Summary.r_line = line;
              r_col = col;
              r_exn = exn;
              r_lambdas = List.rev !lambda_stack;
            }
            :: !raises
        end
      in
      let record_eff_call loc name =
        if !try_depth = 0 then begin
          let stack = List.rev !lambda_stack in
          let key =
            name ^ "|" ^ String.concat "," (List.map string_of_int stack)
          in
          if not (Hashtbl.mem seen_eff key) then begin
            Hashtbl.replace seen_eff key ();
            let line, col = line_col loc in
            eff_calls :=
              {
                Summary.e_name = name;
                e_line = line;
                e_col = col;
                e_lambdas = stack;
              }
              :: !eff_calls
          end
        end
      in
      let matches_producer patterns name =
        List.exists (fun pattern -> dotted_match ~pattern name) patterns
      in
      let printable_src (e : expression) =
        match e.exp_desc with
        | Texp_ident (p, _, _) -> Path.name p
        | Texp_field ({ exp_desc = Texp_ident (p, _, _); _ }, _, label) ->
            Path.name p ^ "." ^ label.Types.lbl_name
        | _ -> "<expr>"
      in
      (* Addition/subtraction preserve a domain the other operand does not
         contradict (log_g folds a sum then subtracts a log constant);
         branch merges are strict — disagreeing arms yield [DUnknown]. *)
      let join_dom a b =
        match (a, b) with
        | Summary.Known Summary.DUnknown, d | d, Summary.Known Summary.DUnknown
          ->
            d
        | a, b when a = b -> a
        | _ -> Summary.Known Summary.DUnknown
      in
      let branch_join a b =
        if a = b then a else Summary.Known Summary.DUnknown
      in
      let rec eval_dom (e : expression) : Summary.domexpr =
        match e.exp_desc with
        | Texp_ident (Path.Pident id, _, _) ->
            Option.value
              ~default:(Summary.Known Summary.DUnknown)
              (Hashtbl.find_opt dom_env (Ident.name id))
        | Texp_apply (fn, args) -> (
            match ident_path fn with
            | None -> Summary.Known Summary.DUnknown
            | Some p ->
                let name = Path.name p in
                if matches_producer config.Lint.Config.r13_log_producers name
                then Summary.Known Summary.Log
                else if
                  matches_producer config.Lint.Config.r13_linear_producers name
                then Summary.Known Summary.Linear
                else if
                  matches_producer config.Lint.Config.r13_mantissa_producers
                    name
                then
                  let src =
                    match args with
                    | (_, Some a) :: _ -> printable_src a
                    | _ -> "<expr>"
                  in
                  Summary.Known (Summary.Mantissa src)
                else if List.mem name addsub_names then (
                  match args with
                  | [ (_, Some l); (_, Some r) ] ->
                      join_dom (eval_dom l) (eval_dom r)
                  | _ -> Summary.Known Summary.DUnknown)
                else if
                  String.starts_with ~prefix:"Stdlib" name
                  || String.starts_with ~prefix:"CamlinternalFormat" name
                then Summary.Known Summary.DUnknown
                else if is_float (env_of e.exp_env) e.exp_type then
                  (* Resolution to the callee's return domain happens in
                     the Effects fixpoint, once every summary is known. *)
                  Summary.DCall name
                else Summary.Known Summary.DUnknown)
        | Texp_let (_, vbs, body) ->
            List.iter
              (fun vb ->
                match vb.vb_pat.pat_desc with
                | Tpat_var (id, _) ->
                    Hashtbl.replace dom_env (Ident.name id)
                      (eval_dom vb.vb_expr)
                | _ -> ())
              vbs;
            eval_dom body
        | Texp_sequence (_, body) -> eval_dom body
        | Texp_ifthenelse (_, t, Some f) ->
            branch_join (eval_dom t) (eval_dom f)
        | Texp_match (_, cases, _) -> (
            match
              List.map (fun c -> eval_dom c.Typedtree.c_rhs) cases
            with
            | [] -> Summary.Known Summary.DUnknown
            | first :: rest -> List.fold_left branch_join first rest)
        | _ -> Summary.Known Summary.DUnknown
      in
      let potential_log = function
        | Summary.Known Summary.Log | Summary.DCall _ -> true
        | _ -> false
      in
      let potential_lin = function
        | Summary.Known Summary.Linear
        | Summary.Known (Summary.Mantissa _)
        | Summary.DCall _ ->
            true
        | _ -> false
      in
      let potential_mantissa = function
        | Summary.Known (Summary.Mantissa _) | Summary.DCall _ -> true
        | _ -> false
      in
      let record_domain_site loc op l r =
        let line, col = line_col loc in
        domain_sites :=
          {
            Summary.d_line = line;
            d_col = col;
            d_op = op;
            d_left = l;
            d_right = r;
          }
          :: !domain_sites
      in
      (* Candidate R13 sites: an add/sub whose operands could straddle the
         log/linear divide, a log->linear conversion of a value that may
         already be linear, and an ordering comparison of mantissas whose
         rescale exponents may differ.  Sites with [DCall] operands are
         provisional; {!Effects} resolves them against callee summaries. *)
      let note_domains (e : expression) fn args =
        match ident_path fn with
        | None -> ()
        | Some p ->
            let name = Path.name p in
            if List.mem name addsub_names then (
              match args with
              | [ (_, Some le); (_, Some re) ] ->
                  let l = eval_dom le and r = eval_dom re in
                  if
                    (potential_log l && potential_lin r)
                    || (potential_log r && potential_lin l)
                  then record_domain_site e.exp_loc Summary.Dom_add l r
              | _ -> ())
            else if
              matches_producer config.Lint.Config.r13_linear_producers name
            then (
              match args with
              | (_, Some a) :: _ -> (
                  match eval_dom a with
                  | (Summary.Known Summary.Linear | Summary.DCall _) as d ->
                      record_domain_site e.exp_loc Summary.Dom_exp d
                        (Summary.Known Summary.DUnknown)
                  | _ -> ())
              | _ -> ())
            else if List.mem name cmp_op_names then
              match args with
              | [ (_, Some le); (_, Some re) ]
                when is_float (env_of le.exp_env) le.exp_type
                     && is_float (env_of re.exp_env) re.exp_type -> (
                  let l = eval_dom le and r = eval_dom re in
                  match (l, r) with
                  | ( Summary.Known (Summary.Mantissa a),
                      Summary.Known (Summary.Mantissa b) ) ->
                      if not (String.equal a b) then
                        record_domain_site e.exp_loc Summary.Dom_cmp l r
                  | _ ->
                      if potential_mantissa l && potential_mantissa r then
                        record_domain_site e.exp_loc Summary.Dom_cmp l r)
              | _ -> ()
      in
      let note_effects (e : expression) fn args =
        match ident_path fn with
        | None -> ()
        | Some p ->
            let name = Path.name p in
            if List.mem name raise_names then
              let exn =
                match args with
                | (_, Some { exp_desc = Texp_construct (_, cd, _); _ }) :: _ ->
                    cd.Types.cstr_name
                | _ -> "<dynamic>"
              in
              record_raise e.exp_loc exn
            else begin
              (if is_arrow (env_of e.exp_env) e.exp_type then
                 record_alloc e.exp_loc Summary.Alloc_partial
               else if List.mem name ref_names then
                 let boxed =
                   match args with
                   | (_, Some (a : expression)) :: _ ->
                       is_float (env_of a.exp_env) a.exp_type
                   | _ -> false
                 in
                 record_alloc e.exp_loc
                   (if boxed then Summary.Alloc_boxed_float
                    else Summary.Alloc_record)
               else if
                 List.mem name array_maker_names
                 && not (array_elem_is_float (env_of e.exp_env) e.exp_type)
               then record_alloc e.exp_loc Summary.Alloc_array);
              if
                (not (String.starts_with ~prefix:"Stdlib" name))
                && not (String.starts_with ~prefix:"CamlinternalFormat" name)
              then record_eff_call e.exp_loc name;
              if track_domains then note_domains e fn args
            end
      in
      let rec spine_body exp =
        match exp.exp_desc with
        | Texp_function { cases = [ { c_guard = None; c_rhs; _ } ]; _ } ->
            spine_body c_rhs
        | Texp_let (_, _, body)
          when match body.exp_desc with
               | Texp_function _ -> true
               | _ -> false ->
            (* the defaulted-optional let between two spine nodes *)
            spine_body body
        | _ -> exp
      in
      let exception_match cases =
        List.exists
          (fun c ->
            match Typedtree.split_pattern c.Typedtree.c_lhs with
            | _, Some _ -> true
            | _ -> false)
          cases
      in

      let visit iterator e =
        match e.exp_desc with
        | Texp_ident (p, _, _) -> note_ident e.exp_loc p
        | Texp_function _ when not (List.memq e !spine_nodes) ->
            record_alloc e.exp_loc Summary.Alloc_closure;
            let id = fresh_lam () in
            Hashtbl.replace lambda_at (line_col e.exp_loc) id;
            let captures = compute_captures e in
            Hashtbl.replace captures_of id captures;
            let line, col = line_col e.exp_loc in
            lambdas :=
              { Summary.lam_id = id; lam_line = line; lam_col = col; captures }
              :: !lambdas;
            lambda_stack := id :: !lambda_stack;
            Fun.protect
              ~finally:(fun () -> lambda_stack := List.tl !lambda_stack)
              (fun () -> Tast_iterator.default_iterator.expr iterator e)
        | Texp_let (_, vbs, _) ->
            note_local_closures vbs;
            List.iter
              (fun vb ->
                match vb.vb_pat.pat_desc with
                | Tpat_var (id, _) ->
                    Hashtbl.replace binding_names
                      (line_col vb.vb_expr.exp_loc)
                      (Ident.name id);
                    if track_domains then
                      Hashtbl.replace dom_env (Ident.name id)
                        (eval_dom vb.vb_expr)
                | _ -> ())
              vbs;
            Tast_iterator.default_iterator.expr iterator e
        | Texp_tuple _ ->
            record_alloc e.exp_loc Summary.Alloc_tuple;
            Tast_iterator.default_iterator.expr iterator e
        | Texp_record _ ->
            record_alloc e.exp_loc Summary.Alloc_record;
            Tast_iterator.default_iterator.expr iterator e
        | Texp_construct (_, _, cargs) ->
            if
              List.exists
                (fun (a : expression) ->
                  is_float (env_of a.exp_env) a.exp_type)
                cargs
            then record_alloc e.exp_loc Summary.Alloc_boxed_float;
            Tast_iterator.default_iterator.expr iterator e
        | Texp_array items ->
            (* [[||]] is the preallocated empty atom, and float-array
               literals are flat blocks outside R11's kind scope. *)
            if
              items <> []
              && not (array_elem_is_float (env_of e.exp_env) e.exp_type)
            then record_alloc e.exp_loc Summary.Alloc_array;
            Tast_iterator.default_iterator.expr iterator e
        | Texp_try _ ->
            (* Lexical raise guard.  The whole node (handler included) is
               treated as guarded — catching-and-reraising enriched is an
               intended pattern, not an escaping effect. *)
            incr try_depth;
            Fun.protect
              ~finally:(fun () -> decr try_depth)
              (fun () -> Tast_iterator.default_iterator.expr iterator e)
        | Texp_match (_, cases, _) when exception_match cases ->
            (* [match ... with exception E -> ...] guards its scrutinee
               like [try]; the value cases ride along (over-suppression,
               the quiet direction). *)
            incr try_depth;
            Fun.protect
              ~finally:(fun () -> decr try_depth)
              (fun () -> Tast_iterator.default_iterator.expr iterator e)
        | Texp_apply (fn, args) -> (
            check_apply e.exp_loc fn args;
            note_callsite e.exp_loc fn args;
            note_effects e fn args;
            match ident_path fn with
            | Some p when lock_wrapper ~config (Path.name p) ->
                (* The wrapper's non-function arguments (the mutex, the
                   state handle) are evaluated unlocked; only function
                   literals run under the lock. *)
                iterator.Tast_iterator.expr iterator fn;
                List.iter
                  (fun (_, arg) ->
                    match arg with
                    | Some (a : expression) -> (
                        match a.exp_desc with
                        | Texp_function _ ->
                            incr lock_depth;
                            Fun.protect
                              ~finally:(fun () -> decr lock_depth)
                              (fun () ->
                                iterator.Tast_iterator.expr iterator a)
                        | _ -> iterator.Tast_iterator.expr iterator a)
                    | None -> ())
                  args
            | _ -> Tast_iterator.default_iterator.expr iterator e)
        | Texp_setfield (target, _, label, _) ->
            (match global_target ~toplevel target with
            | Some base ->
                record_mutation e.exp_loc
                  (base ^ "." ^ label.Types.lbl_name ^ " <- ...")
            | None -> ());
            Tast_iterator.default_iterator.expr iterator e
        | _ -> Tast_iterator.default_iterator.expr iterator e
      in
      let iterator = { Tast_iterator.default_iterator with expr = visit } in
      let analyse_body vb =
        calls := [];
        mutations := [];
        lambdas := [];
        lock_depth := 0;
        lambda_stack := [];
        Hashtbl.reset local_lambdas;
        Hashtbl.reset lambda_at;
        Hashtbl.reset captures_of;
        pending_callsites := [];
        allocs := [];
        raises := [];
        eff_calls := [];
        Hashtbl.reset seen_eff;
        domain_sites := [];
        try_depth := 0;
        Hashtbl.reset binding_names;
        Hashtbl.reset dom_env;
        let params, spine = peel_spine vb.vb_expr in
        param_levels := params;
        spine_nodes := spine;
        iterator.Tast_iterator.expr iterator vb.vb_expr;
        let callsites =
          List.rev_map
            (fun (line, col, callee, pending) ->
              {
                Summary.cs_line = line;
                cs_col = col;
                callee;
                args =
                  List.map
                    (function
                      | `Known kind -> kind
                      | `At loc -> (
                          match Hashtbl.find_opt lambda_at loc with
                          | Some id -> Summary.Arg_lambda id
                          | None -> Summary.Arg_other)
                      | `At_local name -> (
                          match
                            Option.bind
                              (Hashtbl.find_opt local_lambdas name)
                              (Hashtbl.find_opt lambda_at)
                          with
                          | Some id -> Summary.Arg_lambda id
                          | None -> Summary.Arg_other))
                    pending;
              })
            !pending_callsites
        in
        let callsites =
          List.filter
            (fun (c : Summary.callsite) ->
              List.exists
                (function
                  | Summary.Arg_other -> false
                  | Summary.Arg_param _ | Summary.Arg_lambda _ -> true)
                c.Summary.args)
            callsites
        in
        let ret_domain =
          if track_domains then eval_dom (spine_body vb.vb_expr)
          else Summary.Known Summary.DUnknown
        in
        ( List.rev !calls,
          List.rev !mutations,
          List.rev !lambdas,
          callsites,
          List.rev !allocs,
          List.rev !raises,
          List.rev !eff_calls,
          List.rev !domain_sites,
          ret_domain )
      in

      let rec walk_items items =
        List.iter
          (fun item ->
            match item.str_desc with
            | Tstr_value (_, bindings) ->
                List.iter
                  (fun vb ->
                    (if r8_applies && enabled Rule.R8 then
                       let env = env_of vb.vb_expr.exp_env in
                       match
                         mutable_reason ~config ~depth:0 env vb.vb_expr.exp_type
                       with
                       | Some reason ->
                           add Rule.R8 vb.vb_loc
                             (Printf.sprintf
                                "top-level value's inferred type is %s, \
                                 shared across pool domains; use Atomic/Mutex \
                                 or annotate (* lint: domain-safe — reason *)"
                                reason)
                       | None -> ());
                    match vb.vb_pat.pat_desc with
                    | Tpat_var (id, _) ->
                        let line, col = line_col vb.vb_loc in
                        let ( calls,
                              mutations,
                              lambdas,
                              callsites,
                              allocs,
                              raises,
                              eff_calls,
                              domain_sites,
                              ret_domain ) =
                          analyse_body vb
                        in
                        funcs :=
                          {
                            Summary.f_name = Ident.name id;
                            f_line = line;
                            f_col = col;
                            calls;
                            mutations;
                            lambdas;
                            callsites;
                            allocs;
                            raises;
                            eff_calls;
                            domain_sites;
                            ret_domain;
                          }
                          :: !funcs
                    | _ ->
                        (* [let () = ...] load-time blocks: R7 still
                           applies; no function summary to record. *)
                        ignore (analyse_body vb))
                  bindings
            | Tstr_module { mb_expr; _ } -> walk_module mb_expr
            | Tstr_recmodule bindings ->
                List.iter (fun mb -> walk_module mb.mb_expr) bindings
            | Tstr_include { incl_mod; _ } -> walk_module incl_mod
            | _ -> ())
          items
      and walk_module mexpr =
        match mexpr.mod_desc with
        | Tmod_structure s -> walk_items s.str_items
        | Tmod_constraint (inner, _, _, _) -> walk_module inner
        | _ -> ()
      in
      walk_items structure.str_items;

      Ok
        ( List.rev !findings,
          {
            Summary.path;
            modname = cmt.Cmt_format.cmt_modname;
            funcs = List.rev !funcs;
          } )
  | _ -> Error (Printf.sprintf "%s: no implementation typedtree" cmt_path)
