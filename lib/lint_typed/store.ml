module Json = Crossbar_engine.Json
module Finding = Crossbar_lint.Finding

let schema = "crossbar-lint-cache/3"

type entry = {
  source_digest : string;
  cmt_digest : string;
  findings : Finding.t list;
  summary : Summary.file;
}

type t = { config_hash : string; entries : (string, entry) Hashtbl.t }

let create ~config_hash = { config_hash; entries = Hashtbl.create 64 }

let lookup t ~path ~source_digest ~cmt_digest =
  match Hashtbl.find_opt t.entries path with
  | Some entry
    when String.equal entry.source_digest source_digest
         && String.equal entry.cmt_digest cmt_digest ->
      Some (entry.findings, entry.summary)
  | _ -> None

let store t ~path ~source_digest ~cmt_digest ~findings ~summary =
  Hashtbl.replace t.entries path { source_digest; cmt_digest; findings; summary }

let size t = Hashtbl.length t.entries

(* ---------- persistence ---------- *)

let entry_to_json path entry =
  Json.Assoc
    [
      ("path", Json.String path);
      ("source_digest", Json.String entry.source_digest);
      ("cmt_digest", Json.String entry.cmt_digest);
      ("findings", Json.List (List.map Finding.to_json entry.findings));
      ("summary", Summary.to_json entry.summary);
    ]

let to_json t =
  let entries =
    Hashtbl.fold (fun path entry acc -> (path, entry) :: acc) t.entries []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (path, entry) -> entry_to_json path entry)
  in
  Json.Assoc
    [
      ("schema", Json.String schema);
      ("config_hash", Json.String t.config_hash);
      ("entries", Json.List entries);
    ]

let ( let* ) = Result.bind

let str key json =
  match Json.member key json with
  | Some (Json.String s) -> Ok s
  | _ -> Error (Printf.sprintf "cache: missing string field %S" key)

let entry_of_json json =
  let* path = str "path" json in
  let* source_digest = str "source_digest" json in
  let* cmt_digest = str "cmt_digest" json in
  let* finding_items =
    match Json.member "findings" json with
    | Some (Json.List items) -> Ok items
    | _ -> Error "cache: missing list field \"findings\""
  in
  let* findings =
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        let* f = Finding.of_json item in
        Ok (f :: acc))
      (Ok []) finding_items
    |> Result.map List.rev
  in
  let* summary =
    match Json.member "summary" json with
    | Some s -> Summary.of_json s
    | None -> Error "cache: missing field \"summary\""
  in
  Ok (path, { source_digest; cmt_digest; findings; summary })

let of_json ~config_hash json =
  let* s = str "schema" json in
  if not (String.equal s schema) then
    (* A cache written by an older (or newer) linter holds summaries in
       a shape this one cannot trust; starting empty is the cold-run
       behaviour, not an error — exactly like a config-hash mismatch. *)
    Ok (create ~config_hash)
  else
  let* stored_hash = str "config_hash" json in
  let t = create ~config_hash in
  if not (String.equal stored_hash config_hash) then
    (* A config change invalidates every entry; starting empty is exactly
       the cold-run behaviour, so no special casing downstream. *)
    Ok t
  else
    let* items =
      match Json.member "entries" json with
      | Some (Json.List items) -> Ok items
      | _ -> Error "cache: missing list field \"entries\""
    in
    let* () =
      List.fold_left
        (fun acc item ->
          let* () = acc in
          let* path, entry = entry_of_json item in
          Hashtbl.replace t.entries path entry;
          Ok ())
        (Ok ()) items
    in
    Ok t

let load ~config_hash file =
  if not (Sys.file_exists file) then Ok (create ~config_hash)
  else
    match In_channel.with_open_bin file In_channel.input_all with
    | text -> (
        match Json.of_string text with
        | Ok json -> of_json ~config_hash json
        | Error m -> Error (Printf.sprintf "%s: %s" file m))
    | exception Sys_error m -> Error m

let save t file =
  match
    Out_channel.with_open_bin file (fun oc ->
        Out_channel.output_string oc (Json.to_string (to_json t)))
  with
  | () -> Ok ()
  | exception Sys_error m -> Error m
