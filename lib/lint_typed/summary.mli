(** Per-file interprocedural summary for R9: the top-level functions a
    compilation unit defines, the (unresolved) value paths each one
    references, and every write it performs against top-level mutable
    state, with the lock context the write happened under.

    Summaries are the cacheable half of the R9 analysis: extracting one
    means reading and walking the unit's [.cmt], which is the expensive
    step, while the global reachability fixpoint over all summaries is a
    cheap graph walk recomputed on every run.  They therefore round-trip
    through the engine's JSON tree as part of the persistent
    ["crossbar-lint-cache/1"] document. *)

type mutation = {
  m_line : int;
  m_col : int;
  target : string;  (** printable path of the mutated top-level value *)
  locked : bool;
      (** whether the write sits inside a function literal passed to a
          configured lock wrapper ([Mutex.protect], [locked], ...) *)
}

type func = {
  f_name : string;
  f_line : int;
  f_col : int;
  calls : string list;
      (** dotted value paths referenced by the body, as resolved by the
          typechecker (e.g. ["Solver.solve_full"], ["locked"]); resolution
          to concrete functions happens in {!Callgraph} *)
  mutations : mutation list;
}

type file = { path : string; modname : string; funcs : func list }

val to_json : file -> Crossbar_engine.Json.t
val of_json : Crossbar_engine.Json.t -> (file, string) result
