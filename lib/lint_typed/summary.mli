(** Per-file interprocedural summary for the R9/R10 global passes: the
    top-level functions a compilation unit defines, the (unresolved) value
    paths each one references, every write it performs against top-level
    mutable state with its lock context, and — new in the v3 capture
    stage — every lambda the function contains with its mutable captures,
    plus the call sites that hand lambdas (or the function's own
    parameters) to other functions.

    Summaries are the cacheable half of the typed analysis: extracting
    one means reading and walking the unit's [.cmt], which is the
    expensive step, while the global fixpoints over all summaries
    ({!Callgraph} reachability, {!Capture} escape propagation, {!Effects}
    allocation/raise/domain closure) are cheap graph walks recomputed on
    every run.  They therefore round-trip through the engine's JSON tree
    as part of the persistent ["crossbar-lint-cache/3"] document. *)

type mutation = {
  m_line : int;
  m_col : int;
  target : string;  (** printable path of the mutated top-level value *)
  locked : bool;
      (** whether the write sits inside a function literal passed directly
          to a configured lock wrapper ([Mutex.protect], [locked], ...) *)
  m_lambda : int option;
      (** innermost enclosing lambda ([{!lambda.lam_id}]), if the write
          happens inside one; lets {!Capture}'s propagated lock facts
          retroactively mark the write locked when the lambda is proven
          to run under a wrapper through an indirect call *)
}

type capture = {
  c_name : string;  (** source name (locals) or dotted path (globals) *)
  c_line : int;
  c_col : int;  (** position of one capturing use inside the lambda *)
  c_reason : string;  (** mutability classification, e.g. ["an array"] *)
  c_via : string list;
      (** names of locally-bound closures stepped through when the capture
          is inherited (the lambda captures [bound], which captures the
          array) — the chain printed in the R10 message *)
}

type lambda = {
  lam_id : int;  (** unique within the file, stable across cache loads *)
  lam_line : int;
  lam_col : int;
  captures : capture list;
      (** only unsanctioned mutable captures are recorded; a lambda whose
          captures are all immutable or Atomic/Mutex-guarded lists none *)
}

type arg_kind =
  | Arg_param of int
      (** the caller forwards its own [i]-th parameter (only recorded for
          function-typed parameters — the higher-order case) *)
  | Arg_lambda of int  (** a lambda defined in this file, by [lam_id] *)
  | Arg_other

type callsite = {
  cs_line : int;
  cs_col : int;
  callee : string;  (** dotted path as resolved by the typechecker *)
  args : arg_kind list;  (** in application order, labels included *)
}

type alloc_kind =
  | Alloc_closure  (** a [fun]/[function] literal evaluated at runtime *)
  | Alloc_tuple
  | Alloc_record  (** includes [ref] creation of non-float contents *)
  | Alloc_boxed_float
      (** a float entering a box: [ref 0.], [Some x], a float field of a
          polymorphic constructor *)
  | Alloc_array
      (** [Array.make]/[Array.map]/array literal of a non-flat element
          type (float arrays and [floatarray] are unboxed and exempt) *)
  | Alloc_partial  (** an application whose result is still a function *)

type alloc = {
  a_line : int;
  a_col : int;
  a_kind : alloc_kind;
  a_name : string;
      (** the let-bound name receiving the value when there is one,
          otherwise the kind's synthetic name (["tuple"], ["closure"],
          ...); [alloc=] directives sanction by this name *)
}

type raise_site = {
  r_line : int;
  r_col : int;
  r_exn : string;  (** constructor path, or ["<dynamic>"] *)
  r_lambdas : int list;
      (** the full stack of enclosing lambdas (outermost first); empty
          for a raise at function-body level.  Only raises outside any
          lexical [try]/exception-[match] scope are recorded *)
}

type eff_call = {
  e_name : string;  (** dotted callee path, unresolved *)
  e_line : int;
  e_col : int;
  e_lambdas : int list;  (** as {!raise_site.r_lambdas} *)
}

type domain = Linear | Log | Mantissa of string | DUnknown
(** The float-domain lattice.  [Mantissa src] is a rescaled mantissa whose
    implicit exponent belongs to the producer's first argument [src] (the
    profile expression, printed); two mantissas compare meaningfully only
    when their sources coincide. *)

type domexpr = Known of domain | DCall of string
(** A domain that may still depend on a callee's return domain: [DCall f]
    is resolved by the {!Effects} fixpoint once [f]'s summary is known. *)

type dom_op = Dom_add | Dom_exp | Dom_cmp

type domain_site = {
  d_line : int;
  d_col : int;
  d_op : dom_op;
  d_left : domexpr;
  d_right : domexpr;  (** [Known DUnknown] for the unary [Dom_exp] *)
}
(** A *candidate* cross-domain operation: recorded when the operands'
    domains could conflict pending call resolution, judged by {!Effects}. *)

type func = {
  f_name : string;
  f_line : int;
  f_col : int;
  calls : string list;
      (** dotted value paths referenced by the body, as resolved by the
          typechecker (e.g. ["Solver.solve_full"], ["locked"]); resolution
          to concrete functions happens in {!Callgraph} *)
  mutations : mutation list;
  lambdas : lambda list;
  callsites : callsite list;
      (** only call sites passing at least one [Arg_param]/[Arg_lambda]
          argument — the edges the {!Capture} fixpoint propagates over *)
  allocs : alloc list;
      (** boxed-allocation sites in the body, in source order *)
  raises : raise_site list;
      (** unguarded explicit [raise]/[raise_notrace] sites *)
  eff_calls : eff_call list;
      (** unguarded non-Stdlib application sites, deduplicated per
          (callee, lambda stack) — the edges the R12 raise fixpoint
          propagates over *)
  domain_sites : domain_site list;  (** candidate R13 violations *)
  ret_domain : domexpr;
      (** domain of the value the function returns, [Known DUnknown]
          when mixed or undetermined *)
}

type file = { path : string; modname : string; funcs : func list }

val alloc_kind_to_string : alloc_kind -> string
(** Human-readable kind for finding messages ("boxed float", ...). *)

val to_json : file -> Crossbar_engine.Json.t
(** The per-file entry body of the ["crossbar-lint-cache/3"] document. *)

val of_json : Crossbar_engine.Json.t -> (file, string) result
(** Inverse of {!to_json}; the error names the missing or ill-typed
    field.  Lossless: a round-tripped summary feeds the global passes
    identically to a freshly extracted one. *)
