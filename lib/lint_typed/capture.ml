module Lint = Crossbar_lint
module Finding = Lint.Finding
module Rule = Lint.Rule

type result = {
  r10 : Finding.t list;
  locked_lambdas : (string * int, unit) Hashtbl.t;
  iterations : int;
}

(* Facts propagated to fixpoint over the summary call graph:

   - sink fact (path, func, i): calling [func] with a closure in argument
     position [i] sends that closure across a domain boundary (the
     parameter is forwarded, possibly through further functions, into a
     configured r10_sink).  The chain string is the witness printed in
     the finding.
   - wrapper fact (path, func, i): the closure at position [i] runs under
     a configured lock wrapper — same propagation, opposite polarity:
     it *clears* R9 findings instead of raising R10 ones.

   Seeds come from call sites whose callee name matches the configured
   pattern lists directly; each round then lifts facts over one layer of
   parameter forwarding.  Facts are finite (one per function parameter
   position), so the loop terminates. *)
let analyse ~(config : Lint.Config.t) ~guarded files =
  let resolve = Callgraph.resolver files in
  let sink_facts : (string * string * int, string) Hashtbl.t =
    Hashtbl.create 16
  in
  let wrap_facts : (string * string * int, unit) Hashtbl.t =
    Hashtbl.create 16
  in
  let lambda_table : (string * int, Summary.lambda) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun (file : Summary.file) ->
      List.iter
        (fun (func : Summary.func) ->
          List.iter
            (fun (lam : Summary.lambda) ->
              Hashtbl.replace lambda_table
                (file.Summary.path, lam.Summary.lam_id)
                lam)
            func.Summary.lambdas)
        file.Summary.funcs)
    files;

  (* How the callee of one call site behaves, per argument position.
     [`Any] covers seed sinks/wrappers (any closure argument crosses);
     resolved facts are positional. *)
  let callee_roles (file : Summary.file) (cs : Summary.callsite) =
    let callee = cs.Summary.callee in
    let seed_sink = Typed_rules.domain_sink ~config callee in
    let seed_wrap = Typed_rules.lock_wrapper ~config callee in
    let resolved = resolve file callee in
    let sink_at i =
      if seed_sink then Some callee
      else
        match resolved with
        | Some (node : Callgraph.node) ->
            Hashtbl.find_opt sink_facts
              ( node.Callgraph.file.Summary.path,
                node.Callgraph.func.Summary.f_name,
                i )
        | None -> None
    in
    let wrap_at i =
      seed_wrap
      ||
      match resolved with
      | Some (node : Callgraph.node) ->
          Hashtbl.mem wrap_facts
            ( node.Callgraph.file.Summary.path,
              node.Callgraph.func.Summary.f_name,
              i )
      | None -> false
    in
    (sink_at, wrap_at)
  in

  let iterations = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    incr iterations;
    List.iter
      (fun (file : Summary.file) ->
        List.iter
          (fun (func : Summary.func) ->
            List.iter
              (fun (cs : Summary.callsite) ->
                let sink_at, wrap_at = callee_roles file cs in
                List.iteri
                  (fun i arg ->
                    match arg with
                    | Summary.Arg_param p -> (
                        let key =
                          (file.Summary.path, func.Summary.f_name, p)
                        in
                        (match sink_at i with
                        | Some chain ->
                            if not (Hashtbl.mem sink_facts key) then begin
                              Hashtbl.replace sink_facts key
                                (func.Summary.f_name ^ " -> " ^ chain);
                              changed := true
                            end
                        | None -> ());
                        if wrap_at i && not (Hashtbl.mem wrap_facts key)
                        then begin
                          Hashtbl.replace wrap_facts key ();
                          changed := true
                        end)
                    | Summary.Arg_lambda _ | Summary.Arg_other -> ())
                  cs.Summary.args)
              func.Summary.callsites)
          file.Summary.funcs)
      files
  done;

  (* Emission pass: now that facts are stable, every lambda argument at a
     sink position is an escape (an R10 finding if it captures anything
     unguarded), and every lambda argument at a wrapper position runs
     locked (clearing the R9 writes it contains). *)
  let locked_lambdas : (string * int, unit) Hashtbl.t = Hashtbl.create 16 in
  let r10 = ref [] in
  List.iter
    (fun (file : Summary.file) ->
      List.iter
        (fun (func : Summary.func) ->
          List.iter
            (fun (cs : Summary.callsite) ->
              let sink_at, wrap_at = callee_roles file cs in
              List.iteri
                (fun i arg ->
                  match arg with
                  | Summary.Arg_lambda id -> (
                      if wrap_at i then
                        Hashtbl.replace locked_lambdas
                          (file.Summary.path, id)
                          ();
                      match sink_at i with
                      | None -> ()
                      | Some chain -> (
                          match
                            Hashtbl.find_opt lambda_table
                              (file.Summary.path, id)
                          with
                          | None -> ()
                          | Some lam ->
                              let guarded_names =
                                guarded ~path:file.Summary.path
                                  ~line:cs.Summary.cs_line
                                @ guarded ~path:file.Summary.path
                                    ~line:lam.Summary.lam_line
                              in
                              let captures =
                                List.filter
                                  (fun (c : Summary.capture) ->
                                    not
                                      (List.mem c.Summary.c_name
                                         guarded_names))
                                  lam.Summary.captures
                              in
                              if captures <> [] then
                                let rendered =
                                  String.concat ", "
                                    (List.map
                                       (fun (c : Summary.capture) ->
                                         match c.Summary.c_via with
                                         | [] ->
                                             Printf.sprintf "%s (%s)"
                                               c.Summary.c_name
                                               c.Summary.c_reason
                                         | via ->
                                             Printf.sprintf
                                               "%s (%s, via %s)"
                                               c.Summary.c_name
                                               c.Summary.c_reason
                                               (String.concat " -> " via))
                                       captures)
                                in
                                r10 :=
                                  Finding.make ~rule:Rule.R10
                                    ~file:file.Summary.path
                                    ~line:cs.Summary.cs_line
                                    ~col:cs.Summary.cs_col
                                    (Printf.sprintf
                                       "closure (line %d) crosses a domain \
                                        boundary through %s capturing \
                                        unsynchronized mutable state: %s; \
                                        guard each capture with \
                                        Atomic/Mutex (or a type on the \
                                        r10_guarded_types list), or \
                                        annotate the call site with (* \
                                        lint: guarded=name — reason *)"
                                       lam.Summary.lam_line chain rendered)
                                  :: !r10))
                  | Summary.Arg_param _ | Summary.Arg_other -> ())
                cs.Summary.args)
            func.Summary.callsites)
        file.Summary.funcs)
    files;
  { r10 = List.rev !r10; locked_lambdas; iterations = !iterations }
