(** The v3 closure-capture fixpoint: the global, always-recomputed half
    of R10 and of R9's higher-order closure.

    Per-file summaries ({!Summary.lambda}, {!Summary.callsite}) record
    which lambdas exist, what mutable state each captures, and where
    lambdas or function parameters are forwarded.  This module runs a
    fixpoint over those summaries to learn, for every function parameter
    position, whether a closure passed there eventually reaches

    - a configured domain boundary ([r10_sinks]: [Pool.run],
      [Domain.spawn], ...) — the {e sink} facts; or
    - a configured lock wrapper ([r9_lock_wrappers]: [Mutex.protect],
      [locked], ...) — the {e wrapper} facts.

    Sink facts raise R10 findings: a lambda argument at a sink position
    whose capture list is non-empty (after removing names declared safe
    by a [(* lint: guarded=... *)] directive at the call site) is a
    domain-escape race, reported with the capture chain and the
    forwarding witness ("spawn_all -> Pool.run") in the message.

    Wrapper facts flow the other way: the [(file, lambda id)] set they
    prove locked feeds {!Callgraph.findings}, so a write inside a callback
    stored-then-invoked under [Mutex.protect] — which v2's purely lexical
    lock tracking reported as unlocked — is recognised as guarded.

    Like {!Callgraph}, the pass costs one walk over summaries already in
    memory; only the per-file extraction behind them is cached. *)

type result = {
  r10 : Crossbar_lint.Finding.t list;
      (** R10 findings, guarded-directive-filtered but not yet through
          the per-line [disable=] suppression filter (the driver's job) *)
  locked_lambdas : (string * int, unit) Hashtbl.t;
      (** [(file path, lambda id)] proven to run under a lock wrapper *)
  iterations : int;
      (** passes the escape fixpoint needed to stabilise, for [--stats] *)
}

val analyse :
  config:Crossbar_lint.Config.t ->
  guarded:(path:string -> line:int -> string list) ->
  Summary.file list ->
  result
(** [analyse ~config ~guarded files] runs the escape fixpoint.  [guarded]
    reports the capture names a [guarded=] suppression directive declares
    safe at a given source line (the driver backs it with
    {!Crossbar_lint.Suppress.guarded} over the scanned sources). *)
