module Lint = Crossbar_lint

type t = (string, string) Hashtbl.t

let find t source = Hashtbl.find_opt t (Lint.Config.normalize source)

let of_pairs pairs =
  let t = Hashtbl.create 16 in
  List.iter
    (fun (source, cmt) -> Hashtbl.replace t (Lint.Config.normalize source) cmt)
    pairs;
  t

(* dune stores the artifacts of library [x] under [dir/.x.objs/byte] and
   those of an executable under [dir/.x.eobjs/byte], naming each unit
   [Wrapper__Unit.cmt] (or [dune__exe__Unit.cmt]).  The source unit is the
   segment after the last "__", uncapitalized, next to the [.objs]
   directory — so the whole map can be built from filenames alone, without
   unmarshalling a single [.cmt].  Only files missed by the incremental
   cache are ever read. *)
let unit_of_artifact name =
  let base = Filename.remove_extension name in
  let rec last_segment from acc =
    match String.index_from_opt base from '_' with
    | Some i
      when i + 1 < String.length base && base.[i + 1] = '_' ->
        let rest = i + 2 in
        if rest < String.length base then last_segment rest rest else acc
    | Some i -> last_segment (i + 1) acc
    | None -> acc
  in
  let start = last_segment 0 0 in
  String.sub base start (String.length base - start)

let objs_source_dir dir =
  (* [<parent>/.lib.objs/byte] or [<parent>/.exe.eobjs/byte] -> [<parent>]. *)
  if String.equal (Filename.basename dir) "byte" then
    let objs = Filename.dirname dir in
    let base = Filename.basename objs in
    if
      String.starts_with ~prefix:"." base
      && (Filename.check_suffix base ".objs"
         || Filename.check_suffix base ".eobjs")
    then Some (Filename.dirname objs)
    else None
  else None

let scan ~root =
  let t = Hashtbl.create 64 in
  let rec walk dir =
    match Sys.readdir dir with
    | entries ->
        Array.sort String.compare entries;
        Array.iter
          (fun entry ->
            let path = Filename.concat dir entry in
            if Sys.is_directory path then walk path
            else if Filename.check_suffix entry ".cmt" then
              match objs_source_dir dir with
              | None -> ()
              | Some source_dir ->
                  let unit = unit_of_artifact entry in
                  if not (String.equal unit "") then begin
                    let source =
                      Filename.concat source_dir
                        (String.uncapitalize_ascii unit ^ ".ml")
                    in
                    if Sys.file_exists source then begin
                      (* Key by the path relative to [root], which is how
                         sources are discovered by the driver. *)
                      let key =
                        if String.starts_with ~prefix:(root ^ "/") source then
                          String.sub source
                            (String.length root + 1)
                            (String.length source - String.length root - 1)
                        else source
                      in
                      let key = Lint.Config.normalize key in
                      if not (Hashtbl.mem t key) then Hashtbl.add t key path
                    end
                  end)
          entries
    | exception Sys_error _ -> ()
  in
  if Sys.file_exists root && Sys.is_directory root then walk root;
  t
