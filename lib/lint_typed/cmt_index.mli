(** Maps source paths to the [.cmt] binary-annotation artifacts dune (or a
    bare [ocamlc -bin-annot]) produced for them.

    {!scan} derives the whole map from dune's artifact layout
    ([dir/.lib.objs/byte/Wrapper__Unit.cmt] next to [dir/unit.ml]) using
    filenames alone — no [.cmt] is unmarshalled to build the index, which
    is what keeps warm incremental runs cheap.  {!of_pairs} exists for
    tests and non-dune layouts where the association is explicit. *)

type t

val scan : root:string -> t
(** [scan ~root] walks [root] (typically ["_build/default"], or ["."] when
    already running inside the build context) and indexes every [.cmt]
    whose derived source file exists.  Keys are normalized paths relative
    to [root].  Unreadable directories are skipped silently. *)

val of_pairs : (string * string) list -> t
(** Explicit [source, cmt] associations; sources are normalized. *)

val find : t -> string -> string option
(** The artifact for a (normalized) source path, if any. *)
