module Lint = Crossbar_lint
module Finding = Lint.Finding
module Rule = Lint.Rule

type result = {
  r11 : Finding.t list;
  r12 : Finding.t list;
  r13 : Finding.t list;
  raise_iterations : int;
  domain_iterations : int;
}

let key (node : Callgraph.node) =
  (node.Callgraph.file.Summary.path, node.Callgraph.func.Summary.f_name)

let label (file : Summary.file) (func : Summary.func) =
  Callgraph.short_modname file.Summary.modname ^ "." ^ func.Summary.f_name

let hot_root ~(config : Lint.Config.t) file func =
  let name = label file func in
  List.exists
    (fun pattern -> Typed_rules.dotted_match ~pattern name)
    config.Lint.Config.hot_roots

let boundary ~(config : Lint.Config.t) callee =
  List.exists
    (fun pattern -> Typed_rules.dotted_match ~pattern callee)
    config.Lint.Config.r12_boundaries

(* ---------- R11: hot roots must be transitively allocation-free ---------- *)

let r11_findings ~config ~sanctioned resolve files =
  (* BFS from every hot root over resolved call edges, carrying the
     witness chain (root -> ... -> callee) for the message.  First
     discovery wins, so each function is reported against one chain. *)
  let chains : (string * string, string list) Hashtbl.t = Hashtbl.create 64 in
  let queue = Queue.create () in
  List.iter
    (fun (file : Summary.file) ->
      List.iter
        (fun (func : Summary.func) ->
          if hot_root ~config file func then begin
            let node = { Callgraph.file; func } in
            if not (Hashtbl.mem chains (key node)) then begin
              Hashtbl.add chains (key node) [ label file func ];
              Queue.add node queue
            end
          end)
        file.Summary.funcs)
    files;
  while not (Queue.is_empty queue) do
    let node = Queue.pop queue in
    let chain = Hashtbl.find chains (key node) in
    List.iter
      (fun call ->
        match resolve node.Callgraph.file call with
        | Some (next : Callgraph.node) when not (Hashtbl.mem chains (key next))
          ->
            Hashtbl.add chains (key next)
              (label next.Callgraph.file next.Callgraph.func :: chain);
            Queue.add next queue
        | _ -> ())
      node.Callgraph.func.Summary.calls
  done;
  let out = ref [] in
  List.iter
    (fun (file : Summary.file) ->
      List.iter
        (fun (func : Summary.func) ->
          match Hashtbl.find_opt chains (file.Summary.path, func.f_name) with
          | None -> ()
          | Some chain ->
              List.iter
                (fun (a : Summary.alloc) ->
                  let names =
                    sanctioned ~path:file.Summary.path ~line:a.Summary.a_line
                  in
                  if not (List.mem a.Summary.a_name names) then
                    out :=
                      Finding.make ~rule:Rule.R11 ~file:file.Summary.path
                        ~line:a.Summary.a_line ~col:a.Summary.a_col
                        (Printf.sprintf
                           "hot path %s allocates a %s (%s); preallocate or \
                            hoist it, or annotate the site (* lint: alloc=%s \
                            -- reason *)"
                           (String.concat " -> " (List.rev chain))
                           (Summary.alloc_kind_to_string a.Summary.a_kind)
                           a.Summary.a_name a.Summary.a_name)
                      :: !out)
                func.Summary.allocs)
        file.Summary.funcs)
    files;
  List.rev !out

(* ---------- R12: raises must not escape configured boundaries ---------- *)

let r12_findings ~config resolve files =
  (* Fixpoint over the raise effect: E(f) holds when f raises at body
     level outside any lexical guard, or calls (at body level) a function
     with E.  [why] keeps one witness per function for the message. *)
  let escapes : (string * string, string) Hashtbl.t = Hashtbl.create 64 in
  let iterations = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    incr iterations;
    List.iter
      (fun (file : Summary.file) ->
        List.iter
          (fun (func : Summary.func) ->
            let k = (file.Summary.path, func.Summary.f_name) in
            if not (Hashtbl.mem escapes k) then begin
              match
                List.find_opt
                  (fun (r : Summary.raise_site) -> r.Summary.r_lambdas = [])
                  func.Summary.raises
              with
              | Some r ->
                  Hashtbl.replace escapes k
                    (Printf.sprintf "raises %s (line %d)" r.Summary.r_exn
                       r.Summary.r_line);
                  changed := true
              | None -> (
                  match
                    List.find_opt
                      (fun (e : Summary.eff_call) ->
                        e.Summary.e_lambdas = []
                        &&
                        match resolve file e.Summary.e_name with
                        | Some (next : Callgraph.node) ->
                            Hashtbl.mem escapes (key next)
                        | None -> false)
                      func.Summary.eff_calls
                  with
                  | Some e ->
                      Hashtbl.replace escapes k
                        (Printf.sprintf "calls %s, which %s"
                           e.Summary.e_name
                           (match resolve file e.Summary.e_name with
                           | Some next -> Hashtbl.find escapes (key next)
                           | None -> "may raise"));
                      changed := true
                  | None -> ())
            end)
          file.Summary.funcs)
      files
  done;
  let out = ref [] in
  List.iter
    (fun (file : Summary.file) ->
      List.iter
        (fun (func : Summary.func) ->
          List.iter
            (fun (cs : Summary.callsite) ->
              if boundary ~config cs.Summary.callee then
                List.iter
                  (function
                    | Summary.Arg_lambda id ->
                        (* Direct raises inside the lambda (any nesting
                           depth), then body-level calls from it into
                           escaping functions. *)
                        List.iter
                          (fun (r : Summary.raise_site) ->
                            if List.mem id r.Summary.r_lambdas then
                              out :=
                                Finding.make ~rule:Rule.R12
                                  ~file:file.Summary.path
                                  ~line:r.Summary.r_line ~col:r.Summary.r_col
                                  (Printf.sprintf
                                     "raise of %s escapes through the lambda \
                                      %s passes to %s; a mid-boundary \
                                      exception poisons shared state — catch \
                                      it inside the lambda or return a result"
                                     r.Summary.r_exn func.Summary.f_name
                                     cs.Summary.callee)
                                :: !out)
                          func.Summary.raises;
                        List.iter
                          (fun (e : Summary.eff_call) ->
                            if List.mem id e.Summary.e_lambdas then
                              match resolve file e.Summary.e_name with
                              | Some (next : Callgraph.node)
                                when Hashtbl.mem escapes (key next) ->
                                  out :=
                                    Finding.make ~rule:Rule.R12
                                      ~file:file.Summary.path
                                      ~line:e.Summary.e_line
                                      ~col:e.Summary.e_col
                                      (Printf.sprintf
                                         "%s, called from the lambda %s \
                                          passes to %s, %s; a mid-boundary \
                                          exception poisons shared state — \
                                          guard the call or make the callee \
                                          total"
                                         e.Summary.e_name func.Summary.f_name
                                         cs.Summary.callee
                                         (Hashtbl.find escapes (key next)))
                                    :: !out
                              | _ -> ())
                          func.Summary.eff_calls
                    | _ -> ())
                  cs.Summary.args)
            func.Summary.callsites)
        file.Summary.funcs)
    files;
  (List.rev !out, !iterations)

(* ---------- R13: no cross-domain float arithmetic ---------- *)

let describe = function
  | Summary.Linear -> "linear-domain"
  | Summary.Log -> "log-domain"
  | Summary.Mantissa src -> Printf.sprintf "a rescaled mantissa of %s" src
  | Summary.DUnknown -> "unknown-domain"

let r13_findings resolve files =
  (* Fixpoint resolving every function's return domain: [DCall g] takes
     g's resolved domain.  A mantissa does not survive the call boundary
     (the caller cannot know which profile it came from), so it resolves
     to unknown rather than seeding false cross-exponent pairs. *)
  let resolved : (string * string, Summary.domain) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun (file : Summary.file) ->
      List.iter
        (fun (func : Summary.func) ->
          let k = (file.Summary.path, func.Summary.f_name) in
          match func.Summary.ret_domain with
          | Summary.Known d -> Hashtbl.replace resolved k d
          | Summary.DCall _ -> Hashtbl.replace resolved k Summary.DUnknown)
        file.Summary.funcs)
    files;
  let iterations = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    incr iterations;
    List.iter
      (fun (file : Summary.file) ->
        List.iter
          (fun (func : Summary.func) ->
            match func.Summary.ret_domain with
            | Summary.DCall callee -> (
                match resolve file callee with
                | Some (next : Callgraph.node) -> (
                    let k = (file.Summary.path, func.Summary.f_name) in
                    let d =
                      match Hashtbl.find_opt resolved (key next) with
                      | Some (Summary.Mantissa _) | None -> Summary.DUnknown
                      | Some d -> d
                    in
                    match Hashtbl.find_opt resolved k with
                    | Some current when current = d -> ()
                    | _ ->
                        Hashtbl.replace resolved k d;
                        changed := true)
                | None -> ())
            | Summary.Known _ -> ())
          file.Summary.funcs)
      files
  done;
  let domain_of (file : Summary.file) = function
    | Summary.Known d -> d
    | Summary.DCall callee -> (
        match resolve file callee with
        | Some (next : Callgraph.node) -> (
            match Hashtbl.find_opt resolved (key next) with
            | Some (Summary.Mantissa _) | None -> Summary.DUnknown
            | Some d -> d)
        | None -> Summary.DUnknown)
  in
  let out = ref [] in
  List.iter
    (fun (file : Summary.file) ->
      List.iter
        (fun (func : Summary.func) ->
          List.iter
            (fun (d : Summary.domain_site) ->
              let l = domain_of file d.Summary.d_left in
              let r = domain_of file d.Summary.d_right in
              let emit message =
                out :=
                  Finding.make ~rule:Rule.R13 ~file:file.Summary.path
                    ~line:d.Summary.d_line ~col:d.Summary.d_col message
                  :: !out
              in
              match d.Summary.d_op with
              | Summary.Dom_add -> (
                  match (l, r) with
                  | Summary.Log, (Summary.Linear | Summary.Mantissa _)
                  | (Summary.Linear | Summary.Mantissa _), Summary.Log ->
                      emit
                        (Printf.sprintf
                           "%s adds/subtracts %s and %s operands; convert \
                            explicitly (Logspace.to_float or \
                            Logspace.log_checked) before mixing domains"
                           func.Summary.f_name (describe l) (describe r))
                  | _ -> ())
              | Summary.Dom_exp -> (
                  match l with
                  | Summary.Linear ->
                      emit
                        (Printf.sprintf
                           "%s exponentiates a value that is already \
                            linear-domain (double exp); the operand must be \
                            a log-domain magnitude"
                           func.Summary.f_name)
                  | _ -> ())
              | Summary.Dom_cmp -> (
                  match (l, r) with
                  | Summary.Mantissa a, Summary.Mantissa b
                    when not (String.equal a b) ->
                      emit
                        (Printf.sprintf
                           "%s orders rescaled mantissas from different \
                            profiles (%s vs %s); their implicit rescale \
                            exponents differ, so compare true magnitudes \
                            (undo the profile scale) instead"
                           func.Summary.f_name a b)
                  | _ -> ()))
            func.Summary.domain_sites)
        file.Summary.funcs)
    files;
  (List.rev !out, !iterations)

let analyse ~(config : Lint.Config.t) ~sanctioned files =
  let enabled rule = Lint.Config.enabled config rule in
  let resolve = Callgraph.resolver files in
  let r11 =
    if enabled Rule.R11 then r11_findings ~config ~sanctioned resolve files
    else []
  in
  let r12, raise_iterations =
    if enabled Rule.R12 then r12_findings ~config resolve files else ([], 0)
  in
  let r13, domain_iterations =
    if enabled Rule.R13 then r13_findings resolve files else ([], 0)
  in
  { r11; r12; r13; raise_iterations; domain_iterations }
