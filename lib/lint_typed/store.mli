(** Persistent cross-run cache for the typed analysis.

    Each entry keys one source file's stage-two results (unsuppressed
    R7/R8 findings plus its R9–R13 {!Summary.file}) by the digests of the
    source text and its [.cmt] artifact; the whole document additionally
    carries the {!Crossbar_lint.Config.hash} it was produced under, so a
    config change silently invalidates everything.  Serialized as the
    ["crossbar-lint-cache/3"] JSON schema (v2 added the capture-stage
    lambda/callsite summary data; v3 adds the effect-stage allocation,
    raise and float-domain summaries, so a v2 document is rejected and
    rebuilt cold like any unknown schema). *)

type t

val schema : string
(** ["crossbar-lint-cache/3"], embedded in every saved document. *)

val create : config_hash:string -> t
(** An empty cache keyed to one config policy. *)

val lookup :
  t ->
  path:string ->
  source_digest:string ->
  cmt_digest:string ->
  (Crossbar_lint.Finding.t list * Summary.file) option
(** Hit only when both digests match the stored entry. *)

val store :
  t ->
  path:string ->
  source_digest:string ->
  cmt_digest:string ->
  findings:Crossbar_lint.Finding.t list ->
  summary:Summary.file ->
  unit
(** Replaces the file's entry unconditionally. *)

val size : t -> int
(** Number of file entries held. *)

val to_json : t -> Crossbar_engine.Json.t
(** The full persistent document, entries sorted by path for stable
    diffs. *)

val of_json :
  config_hash:string -> Crossbar_engine.Json.t -> (t, string) result
(** Parses a document; a mismatched [config_hash] or an unknown [schema]
    (an older cache file) yields an empty cache rather than an error.
    Malformed documents are errors. *)

val load : config_hash:string -> string -> (t, string) result
(** Reads a cache file; a missing file yields an empty cache. *)

val save : t -> string -> (unit, string) result
(** Writes the {!to_json} document; the error is the system message. *)
