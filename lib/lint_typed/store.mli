(** Persistent cross-run cache for the typed analysis.

    Each entry keys one source file's stage-two results (unsuppressed
    R7/R8 findings plus its R9 {!Summary.file}) by the digests of the
    source text and its [.cmt] artifact; the whole document additionally
    carries the {!Crossbar_lint.Config.hash} it was produced under, so a
    config change silently invalidates everything.  Serialized as the
    ["crossbar-lint-cache/1"] JSON schema. *)

type t

val schema : string

val create : config_hash:string -> t

val lookup :
  t ->
  path:string ->
  source_digest:string ->
  cmt_digest:string ->
  (Crossbar_lint.Finding.t list * Summary.file) option
(** Hit only when both digests match the stored entry. *)

val store :
  t ->
  path:string ->
  source_digest:string ->
  cmt_digest:string ->
  findings:Crossbar_lint.Finding.t list ->
  summary:Summary.file ->
  unit

val size : t -> int

val to_json : t -> Crossbar_engine.Json.t

val of_json :
  config_hash:string -> Crossbar_engine.Json.t -> (t, string) result
(** Parses a document; a mismatched [config_hash] yields an empty cache
    rather than an error.  Malformed documents are errors. *)

val load : config_hash:string -> string -> (t, string) result
(** Reads a cache file; a missing file yields an empty cache. *)

val save : t -> string -> (unit, string) result
