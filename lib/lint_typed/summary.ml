module Json = Crossbar_engine.Json

type mutation = {
  m_line : int;
  m_col : int;
  target : string;
  locked : bool;
  m_lambda : int option;
}

type capture = {
  c_name : string;
  c_line : int;
  c_col : int;
  c_reason : string;
  c_via : string list;
}

type lambda = {
  lam_id : int;
  lam_line : int;
  lam_col : int;
  captures : capture list;
}

type arg_kind = Arg_param of int | Arg_lambda of int | Arg_other

type callsite = {
  cs_line : int;
  cs_col : int;
  callee : string;
  args : arg_kind list;
}

type alloc_kind =
  | Alloc_closure
  | Alloc_tuple
  | Alloc_record
  | Alloc_boxed_float
  | Alloc_array
  | Alloc_partial

type alloc = { a_line : int; a_col : int; a_kind : alloc_kind; a_name : string }

type raise_site = {
  r_line : int;
  r_col : int;
  r_exn : string;
  r_lambdas : int list;
}

type eff_call = {
  e_name : string;
  e_line : int;
  e_col : int;
  e_lambdas : int list;
}

type domain = Linear | Log | Mantissa of string | DUnknown
type domexpr = Known of domain | DCall of string
type dom_op = Dom_add | Dom_exp | Dom_cmp

type domain_site = {
  d_line : int;
  d_col : int;
  d_op : dom_op;
  d_left : domexpr;
  d_right : domexpr;
}

type func = {
  f_name : string;
  f_line : int;
  f_col : int;
  calls : string list;
  mutations : mutation list;
  lambdas : lambda list;
  callsites : callsite list;
  allocs : alloc list;
  raises : raise_site list;
  eff_calls : eff_call list;
  domain_sites : domain_site list;
  ret_domain : domexpr;
}

type file = { path : string; modname : string; funcs : func list }

let alloc_kind_to_string = function
  | Alloc_closure -> "closure"
  | Alloc_tuple -> "tuple"
  | Alloc_record -> "record"
  | Alloc_boxed_float -> "boxed float"
  | Alloc_array -> "array"
  | Alloc_partial -> "partial application"

let mutation_to_json m =
  Json.Assoc
    ([
       ("line", Json.Int m.m_line);
       ("col", Json.Int m.m_col);
       ("target", Json.String m.target);
       ("locked", Json.Bool m.locked);
     ]
    @ match m.m_lambda with
      | Some id -> [ ("lambda", Json.Int id) ]
      | None -> [])

let capture_to_json c =
  Json.Assoc
    [
      ("name", Json.String c.c_name);
      ("line", Json.Int c.c_line);
      ("col", Json.Int c.c_col);
      ("reason", Json.String c.c_reason);
      ("via", Json.List (List.map (fun v -> Json.String v) c.c_via));
    ]

let lambda_to_json l =
  Json.Assoc
    [
      ("id", Json.Int l.lam_id);
      ("line", Json.Int l.lam_line);
      ("col", Json.Int l.lam_col);
      ("captures", Json.List (List.map capture_to_json l.captures));
    ]

let arg_kind_to_json = function
  | Arg_param i -> Json.Assoc [ ("param", Json.Int i) ]
  | Arg_lambda id -> Json.Assoc [ ("lambda", Json.Int id) ]
  | Arg_other -> Json.Assoc []

let callsite_to_json c =
  Json.Assoc
    [
      ("line", Json.Int c.cs_line);
      ("col", Json.Int c.cs_col);
      ("callee", Json.String c.callee);
      ("args", Json.List (List.map arg_kind_to_json c.args));
    ]

let alloc_kind_to_json kind =
  Json.String
    (match kind with
    | Alloc_closure -> "closure"
    | Alloc_tuple -> "tuple"
    | Alloc_record -> "record"
    | Alloc_boxed_float -> "boxed_float"
    | Alloc_array -> "array"
    | Alloc_partial -> "partial")

let alloc_to_json a =
  Json.Assoc
    [
      ("line", Json.Int a.a_line);
      ("col", Json.Int a.a_col);
      ("kind", alloc_kind_to_json a.a_kind);
      ("name", Json.String a.a_name);
    ]

let lambda_ids_to_json ids = Json.List (List.map (fun id -> Json.Int id) ids)

let raise_to_json r =
  Json.Assoc
    [
      ("line", Json.Int r.r_line);
      ("col", Json.Int r.r_col);
      ("exn", Json.String r.r_exn);
      ("lambdas", lambda_ids_to_json r.r_lambdas);
    ]

let eff_call_to_json e =
  Json.Assoc
    [
      ("name", Json.String e.e_name);
      ("line", Json.Int e.e_line);
      ("col", Json.Int e.e_col);
      ("lambdas", lambda_ids_to_json e.e_lambdas);
    ]

let domexpr_to_json = function
  | Known Linear -> Json.Assoc [ ("dom", Json.String "linear") ]
  | Known Log -> Json.Assoc [ ("dom", Json.String "log") ]
  | Known DUnknown -> Json.Assoc [ ("dom", Json.String "unknown") ]
  | Known (Mantissa src) ->
      Json.Assoc
        [ ("dom", Json.String "mantissa"); ("src", Json.String src) ]
  | DCall name -> Json.Assoc [ ("call", Json.String name) ]

let dom_op_to_json op =
  Json.String
    (match op with Dom_add -> "add" | Dom_exp -> "exp" | Dom_cmp -> "cmp")

let domain_site_to_json d =
  Json.Assoc
    [
      ("line", Json.Int d.d_line);
      ("col", Json.Int d.d_col);
      ("op", dom_op_to_json d.d_op);
      ("left", domexpr_to_json d.d_left);
      ("right", domexpr_to_json d.d_right);
    ]

let func_to_json f =
  Json.Assoc
    [
      ("name", Json.String f.f_name);
      ("line", Json.Int f.f_line);
      ("col", Json.Int f.f_col);
      ("calls", Json.List (List.map (fun c -> Json.String c) f.calls));
      ("mutations", Json.List (List.map mutation_to_json f.mutations));
      ("lambdas", Json.List (List.map lambda_to_json f.lambdas));
      ("callsites", Json.List (List.map callsite_to_json f.callsites));
      ("allocs", Json.List (List.map alloc_to_json f.allocs));
      ("raises", Json.List (List.map raise_to_json f.raises));
      ("eff_calls", Json.List (List.map eff_call_to_json f.eff_calls));
      ("domain_sites", Json.List (List.map domain_site_to_json f.domain_sites));
      ("ret", domexpr_to_json f.ret_domain);
    ]

let to_json t =
  Json.Assoc
    [
      ("path", Json.String t.path);
      ("modname", Json.String t.modname);
      ("funcs", Json.List (List.map func_to_json t.funcs));
    ]

let ( let* ) = Result.bind

let str key json =
  match Json.member key json with
  | Some (Json.String s) -> Ok s
  | _ -> Error (Printf.sprintf "summary: missing string field %S" key)

let int key json =
  match Json.member key json with
  | Some (Json.Int i) -> Ok i
  | _ -> Error (Printf.sprintf "summary: missing int field %S" key)

let list key json =
  match Json.member key json with
  | Some (Json.List items) -> Ok items
  | _ -> Error (Printf.sprintf "summary: missing list field %S" key)

let collect f items =
  List.fold_left
    (fun acc item ->
      let* acc = acc in
      let* value = f item in
      Ok (value :: acc))
    (Ok []) items
  |> Result.map List.rev

let mutation_of_json json =
  let* m_line = int "line" json in
  let* m_col = int "col" json in
  let* target = str "target" json in
  let* locked =
    match Json.member "locked" json with
    | Some (Json.Bool b) -> Ok b
    | _ -> Error "summary: missing bool field \"locked\""
  in
  let* m_lambda =
    match Json.member "lambda" json with
    | Some (Json.Int id) -> Ok (Some id)
    | None -> Ok None
    | Some _ -> Error "summary: mutation \"lambda\" must be an int"
  in
  Ok { m_line; m_col; target; locked; m_lambda }

let capture_of_json json =
  let* c_name = str "name" json in
  let* c_line = int "line" json in
  let* c_col = int "col" json in
  let* c_reason = str "reason" json in
  let* via_items = list "via" json in
  let* c_via =
    collect
      (function
        | Json.String s -> Ok s
        | _ -> Error "summary: capture via must hold strings")
      via_items
  in
  Ok { c_name; c_line; c_col; c_reason; c_via }

let lambda_of_json json =
  let* lam_id = int "id" json in
  let* lam_line = int "line" json in
  let* lam_col = int "col" json in
  let* capture_items = list "captures" json in
  let* captures = collect capture_of_json capture_items in
  Ok { lam_id; lam_line; lam_col; captures }

let arg_kind_of_json json =
  match (Json.member "param" json, Json.member "lambda" json) with
  | Some (Json.Int i), _ -> Ok (Arg_param i)
  | _, Some (Json.Int id) -> Ok (Arg_lambda id)
  | _ -> Ok Arg_other

let callsite_of_json json =
  let* cs_line = int "line" json in
  let* cs_col = int "col" json in
  let* callee = str "callee" json in
  let* arg_items = list "args" json in
  let* args = collect arg_kind_of_json arg_items in
  Ok { cs_line; cs_col; callee; args }

let alloc_kind_of_json = function
  | Json.String "closure" -> Ok Alloc_closure
  | Json.String "tuple" -> Ok Alloc_tuple
  | Json.String "record" -> Ok Alloc_record
  | Json.String "boxed_float" -> Ok Alloc_boxed_float
  | Json.String "array" -> Ok Alloc_array
  | Json.String "partial" -> Ok Alloc_partial
  | _ -> Error "summary: unknown alloc kind"

let alloc_of_json json =
  let* a_line = int "line" json in
  let* a_col = int "col" json in
  let* kind_json =
    match Json.member "kind" json with
    | Some value -> Ok value
    | None -> Error "summary: alloc missing \"kind\""
  in
  let* a_kind = alloc_kind_of_json kind_json in
  let* a_name = str "name" json in
  Ok { a_line; a_col; a_kind; a_name }

let lambda_ids_of_json key json =
  let* items = list key json in
  collect
    (function
      | Json.Int id -> Ok id
      | _ -> Error "summary: lambda ids must be ints")
    items

let raise_of_json json =
  let* r_line = int "line" json in
  let* r_col = int "col" json in
  let* r_exn = str "exn" json in
  let* r_lambdas = lambda_ids_of_json "lambdas" json in
  Ok { r_line; r_col; r_exn; r_lambdas }

let eff_call_of_json json =
  let* e_name = str "name" json in
  let* e_line = int "line" json in
  let* e_col = int "col" json in
  let* e_lambdas = lambda_ids_of_json "lambdas" json in
  Ok { e_name; e_line; e_col; e_lambdas }

let domexpr_of_json json =
  match (Json.member "dom" json, Json.member "call" json) with
  | Some (Json.String "linear"), _ -> Ok (Known Linear)
  | Some (Json.String "log"), _ -> Ok (Known Log)
  | Some (Json.String "unknown"), _ -> Ok (Known DUnknown)
  | Some (Json.String "mantissa"), _ -> (
      match Json.member "src" json with
      | Some (Json.String src) -> Ok (Known (Mantissa src))
      | _ -> Error "summary: mantissa domain needs a \"src\"")
  | _, Some (Json.String name) -> Ok (DCall name)
  | _ -> Error "summary: malformed domain expression"

let dom_op_of_json = function
  | Json.String "add" -> Ok Dom_add
  | Json.String "exp" -> Ok Dom_exp
  | Json.String "cmp" -> Ok Dom_cmp
  | _ -> Error "summary: unknown domain op"

let domain_site_of_json json =
  let* d_line = int "line" json in
  let* d_col = int "col" json in
  let* op_json =
    match Json.member "op" json with
    | Some value -> Ok value
    | None -> Error "summary: domain site missing \"op\""
  in
  let* d_op = dom_op_of_json op_json in
  let* d_left =
    match Json.member "left" json with
    | Some value -> domexpr_of_json value
    | None -> Error "summary: domain site missing \"left\""
  in
  let* d_right =
    match Json.member "right" json with
    | Some value -> domexpr_of_json value
    | None -> Error "summary: domain site missing \"right\""
  in
  Ok { d_line; d_col; d_op; d_left; d_right }

let func_of_json json =
  let* f_name = str "name" json in
  let* f_line = int "line" json in
  let* f_col = int "col" json in
  let* call_items = list "calls" json in
  let* calls =
    collect
      (function
        | Json.String s -> Ok s
        | _ -> Error "summary: calls must hold strings")
      call_items
  in
  let* mutation_items = list "mutations" json in
  let* mutations = collect mutation_of_json mutation_items in
  let* lambda_items = list "lambdas" json in
  let* lambdas = collect lambda_of_json lambda_items in
  let* callsite_items = list "callsites" json in
  let* callsites = collect callsite_of_json callsite_items in
  let* alloc_items = list "allocs" json in
  let* allocs = collect alloc_of_json alloc_items in
  let* raise_items = list "raises" json in
  let* raises = collect raise_of_json raise_items in
  let* eff_call_items = list "eff_calls" json in
  let* eff_calls = collect eff_call_of_json eff_call_items in
  let* domain_site_items = list "domain_sites" json in
  let* domain_sites = collect domain_site_of_json domain_site_items in
  let* ret_domain =
    match Json.member "ret" json with
    | Some value -> domexpr_of_json value
    | None -> Error "summary: func missing \"ret\""
  in
  Ok
    {
      f_name;
      f_line;
      f_col;
      calls;
      mutations;
      lambdas;
      callsites;
      allocs;
      raises;
      eff_calls;
      domain_sites;
      ret_domain;
    }

let of_json json =
  let* path = str "path" json in
  let* modname = str "modname" json in
  let* func_items = list "funcs" json in
  let* funcs = collect func_of_json func_items in
  Ok { path; modname; funcs }
