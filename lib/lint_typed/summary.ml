module Json = Crossbar_engine.Json

type mutation = {
  m_line : int;
  m_col : int;
  target : string;
  locked : bool;
}

type func = {
  f_name : string;
  f_line : int;
  f_col : int;
  calls : string list;
  mutations : mutation list;
}

type file = { path : string; modname : string; funcs : func list }

let mutation_to_json m =
  Json.Assoc
    [
      ("line", Json.Int m.m_line);
      ("col", Json.Int m.m_col);
      ("target", Json.String m.target);
      ("locked", Json.Bool m.locked);
    ]

let func_to_json f =
  Json.Assoc
    [
      ("name", Json.String f.f_name);
      ("line", Json.Int f.f_line);
      ("col", Json.Int f.f_col);
      ("calls", Json.List (List.map (fun c -> Json.String c) f.calls));
      ("mutations", Json.List (List.map mutation_to_json f.mutations));
    ]

let to_json t =
  Json.Assoc
    [
      ("path", Json.String t.path);
      ("modname", Json.String t.modname);
      ("funcs", Json.List (List.map func_to_json t.funcs));
    ]

let ( let* ) = Result.bind

let str key json =
  match Json.member key json with
  | Some (Json.String s) -> Ok s
  | _ -> Error (Printf.sprintf "summary: missing string field %S" key)

let int key json =
  match Json.member key json with
  | Some (Json.Int i) -> Ok i
  | _ -> Error (Printf.sprintf "summary: missing int field %S" key)

let list key json =
  match Json.member key json with
  | Some (Json.List items) -> Ok items
  | _ -> Error (Printf.sprintf "summary: missing list field %S" key)

let collect f items =
  List.fold_left
    (fun acc item ->
      let* acc = acc in
      let* value = f item in
      Ok (value :: acc))
    (Ok []) items
  |> Result.map List.rev

let mutation_of_json json =
  let* m_line = int "line" json in
  let* m_col = int "col" json in
  let* target = str "target" json in
  let* locked =
    match Json.member "locked" json with
    | Some (Json.Bool b) -> Ok b
    | _ -> Error "summary: missing bool field \"locked\""
  in
  Ok { m_line; m_col; target; locked }

let func_of_json json =
  let* f_name = str "name" json in
  let* f_line = int "line" json in
  let* f_col = int "col" json in
  let* call_items = list "calls" json in
  let* calls =
    collect
      (function
        | Json.String s -> Ok s
        | _ -> Error "summary: calls must hold strings")
      call_items
  in
  let* mutation_items = list "mutations" json in
  let* mutations = collect mutation_of_json mutation_items in
  Ok { f_name; f_line; f_col; calls; mutations }

let of_json json =
  let* path = str "path" json in
  let* modname = str "modname" json in
  let* func_items = list "funcs" json in
  let* funcs = collect func_of_json func_items in
  Ok { path; modname; funcs }
