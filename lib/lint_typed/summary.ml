module Json = Crossbar_engine.Json

type mutation = {
  m_line : int;
  m_col : int;
  target : string;
  locked : bool;
  m_lambda : int option;
}

type capture = {
  c_name : string;
  c_line : int;
  c_col : int;
  c_reason : string;
  c_via : string list;
}

type lambda = {
  lam_id : int;
  lam_line : int;
  lam_col : int;
  captures : capture list;
}

type arg_kind = Arg_param of int | Arg_lambda of int | Arg_other

type callsite = {
  cs_line : int;
  cs_col : int;
  callee : string;
  args : arg_kind list;
}

type func = {
  f_name : string;
  f_line : int;
  f_col : int;
  calls : string list;
  mutations : mutation list;
  lambdas : lambda list;
  callsites : callsite list;
}

type file = { path : string; modname : string; funcs : func list }

let mutation_to_json m =
  Json.Assoc
    ([
       ("line", Json.Int m.m_line);
       ("col", Json.Int m.m_col);
       ("target", Json.String m.target);
       ("locked", Json.Bool m.locked);
     ]
    @ match m.m_lambda with
      | Some id -> [ ("lambda", Json.Int id) ]
      | None -> [])

let capture_to_json c =
  Json.Assoc
    [
      ("name", Json.String c.c_name);
      ("line", Json.Int c.c_line);
      ("col", Json.Int c.c_col);
      ("reason", Json.String c.c_reason);
      ("via", Json.List (List.map (fun v -> Json.String v) c.c_via));
    ]

let lambda_to_json l =
  Json.Assoc
    [
      ("id", Json.Int l.lam_id);
      ("line", Json.Int l.lam_line);
      ("col", Json.Int l.lam_col);
      ("captures", Json.List (List.map capture_to_json l.captures));
    ]

let arg_kind_to_json = function
  | Arg_param i -> Json.Assoc [ ("param", Json.Int i) ]
  | Arg_lambda id -> Json.Assoc [ ("lambda", Json.Int id) ]
  | Arg_other -> Json.Assoc []

let callsite_to_json c =
  Json.Assoc
    [
      ("line", Json.Int c.cs_line);
      ("col", Json.Int c.cs_col);
      ("callee", Json.String c.callee);
      ("args", Json.List (List.map arg_kind_to_json c.args));
    ]

let func_to_json f =
  Json.Assoc
    [
      ("name", Json.String f.f_name);
      ("line", Json.Int f.f_line);
      ("col", Json.Int f.f_col);
      ("calls", Json.List (List.map (fun c -> Json.String c) f.calls));
      ("mutations", Json.List (List.map mutation_to_json f.mutations));
      ("lambdas", Json.List (List.map lambda_to_json f.lambdas));
      ("callsites", Json.List (List.map callsite_to_json f.callsites));
    ]

let to_json t =
  Json.Assoc
    [
      ("path", Json.String t.path);
      ("modname", Json.String t.modname);
      ("funcs", Json.List (List.map func_to_json t.funcs));
    ]

let ( let* ) = Result.bind

let str key json =
  match Json.member key json with
  | Some (Json.String s) -> Ok s
  | _ -> Error (Printf.sprintf "summary: missing string field %S" key)

let int key json =
  match Json.member key json with
  | Some (Json.Int i) -> Ok i
  | _ -> Error (Printf.sprintf "summary: missing int field %S" key)

let list key json =
  match Json.member key json with
  | Some (Json.List items) -> Ok items
  | _ -> Error (Printf.sprintf "summary: missing list field %S" key)

let collect f items =
  List.fold_left
    (fun acc item ->
      let* acc = acc in
      let* value = f item in
      Ok (value :: acc))
    (Ok []) items
  |> Result.map List.rev

let mutation_of_json json =
  let* m_line = int "line" json in
  let* m_col = int "col" json in
  let* target = str "target" json in
  let* locked =
    match Json.member "locked" json with
    | Some (Json.Bool b) -> Ok b
    | _ -> Error "summary: missing bool field \"locked\""
  in
  let* m_lambda =
    match Json.member "lambda" json with
    | Some (Json.Int id) -> Ok (Some id)
    | None -> Ok None
    | Some _ -> Error "summary: mutation \"lambda\" must be an int"
  in
  Ok { m_line; m_col; target; locked; m_lambda }

let capture_of_json json =
  let* c_name = str "name" json in
  let* c_line = int "line" json in
  let* c_col = int "col" json in
  let* c_reason = str "reason" json in
  let* via_items = list "via" json in
  let* c_via =
    collect
      (function
        | Json.String s -> Ok s
        | _ -> Error "summary: capture via must hold strings")
      via_items
  in
  Ok { c_name; c_line; c_col; c_reason; c_via }

let lambda_of_json json =
  let* lam_id = int "id" json in
  let* lam_line = int "line" json in
  let* lam_col = int "col" json in
  let* capture_items = list "captures" json in
  let* captures = collect capture_of_json capture_items in
  Ok { lam_id; lam_line; lam_col; captures }

let arg_kind_of_json json =
  match (Json.member "param" json, Json.member "lambda" json) with
  | Some (Json.Int i), _ -> Ok (Arg_param i)
  | _, Some (Json.Int id) -> Ok (Arg_lambda id)
  | _ -> Ok Arg_other

let callsite_of_json json =
  let* cs_line = int "line" json in
  let* cs_col = int "col" json in
  let* callee = str "callee" json in
  let* arg_items = list "args" json in
  let* args = collect arg_kind_of_json arg_items in
  Ok { cs_line; cs_col; callee; args }

let func_of_json json =
  let* f_name = str "name" json in
  let* f_line = int "line" json in
  let* f_col = int "col" json in
  let* call_items = list "calls" json in
  let* calls =
    collect
      (function
        | Json.String s -> Ok s
        | _ -> Error "summary: calls must hold strings")
      call_items
  in
  let* mutation_items = list "mutations" json in
  let* mutations = collect mutation_of_json mutation_items in
  let* lambda_items = list "lambdas" json in
  let* lambdas = collect lambda_of_json lambda_items in
  let* callsite_items = list "callsites" json in
  let* callsites = collect callsite_of_json callsite_items in
  Ok { f_name; f_line; f_col; calls; mutations; lambdas; callsites }

let of_json json =
  let* path = str "path" json in
  let* modname = str "modname" json in
  let* func_items = list "funcs" json in
  let* funcs = collect func_of_json func_items in
  Ok { path; modname; funcs }
