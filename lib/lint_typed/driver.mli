(** Orchestrates the typed (stage-two) lint pass.

    For every implementation file stage one discovered under the given
    paths, looks up its [.cmt] artifact, consults the persistent
    {!Store} under the file's source and artifact digests, analyses only
    the misses through {!Typed_rules}, then recomputes the global passes
    over the full summary set — cached and fresh alike: the {!Capture}
    escape fixpoint (R10 findings plus locked-lambda facts) and the
    {!Callgraph} R9 reachability consuming those facts — and filters
    everything through the shared suppression directives.

    The caller owns the store: load it before, save it after, and the
    warm-run property (only modified files re-analysed) follows from the
    digests alone. *)

type stats = {
  files : int;  (** implementation files considered *)
  hits : int;  (** files served from the persistent store *)
  misses : int;  (** files actually re-analysed this run *)
  missing_cmt : string list;
      (** sources with no artifact in the index — stale build tree *)
  errors : (string * string) list;
      (** [(path, reason)] for artifacts that failed to analyse *)
}

val run :
  config:Crossbar_lint.Config.t ->
  store:Store.t ->
  cmt_index:Cmt_index.t ->
  cmt_root:string ->
  string list ->
  Crossbar_lint.Finding.t list * stats
(** Findings are sorted by position and already suppression-filtered;
    [stats] reports the cache economy so callers (and tests) can assert
    incrementality. *)
