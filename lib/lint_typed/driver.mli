(** Orchestrates the typed (stage-two) lint pass.

    For every implementation file stage one discovered under the given
    paths, looks up its [.cmt] artifact, consults the persistent
    {!Store} under the file's source and artifact digests, analyses only
    the misses through {!Typed_rules}, then recomputes the global passes
    over the full summary set — cached and fresh alike: the {!Capture}
    escape fixpoint (R10 findings plus locked-lambda facts), the
    {!Callgraph} R9 reachability consuming those facts, and the
    {!Effects} stage (R11 allocation walk, R12 raise fixpoint, R13
    domain resolution) — and filters everything through the shared
    suppression directives.

    The caller owns the store: load it before, save it after, and the
    warm-run property (only modified files re-analysed) follows from the
    digests alone. *)

type stats = {
  files : int;  (** implementation files considered *)
  hits : int;  (** files served from the persistent store *)
  misses : int;  (** files actually re-analysed this run *)
  missing_cmt : string list;
      (** sources with no artifact in the index — stale build tree *)
  errors : (string * string) list;
      (** [(path, reason)] for artifacts that failed to analyse *)
  extract_s : float;
      (** processor seconds in the per-file extraction loop (cache
          lookups included) *)
  capture_s : float;  (** processor seconds in the {!Capture} fixpoint *)
  graph_s : float;  (** processor seconds in the {!Callgraph} R9 walk *)
  effects_s : float;  (** processor seconds in the {!Effects} stage *)
  capture_iterations : int;
      (** passes the capture fixpoint took (0 when R9/R10 are off) *)
  raise_iterations : int;
      (** passes the R12 raise fixpoint took (0 when R12 is off) *)
  domain_iterations : int;
      (** passes the R13 domain fixpoint took (0 when R13 is off) *)
}

val run :
  config:Crossbar_lint.Config.t ->
  store:Store.t ->
  cmt_index:Cmt_index.t ->
  cmt_root:string ->
  string list ->
  Crossbar_lint.Finding.t list * stats
(** Findings are sorted by position and already suppression-filtered;
    [stats] reports the cache economy so callers (and tests) can assert
    incrementality. *)
