module Lint = Crossbar_lint
module Finding = Lint.Finding
module Rule = Lint.Rule

(* The unit name "Crossbar__Solver" is addressed from other units as
   "Solver"; same trailing-segment convention as {!Cmt_index}. *)
let short_modname modname =
  let rec last_start from acc =
    match String.index_from_opt modname from '_' with
    | Some i when i + 1 < String.length modname && modname.[i + 1] = '_' ->
        let rest = i + 2 in
        if rest < String.length modname then last_start rest rest else acc
    | Some i -> last_start (i + 1) acc
    | None -> acc
  in
  let start = last_start 0 0 in
  String.sub modname start (String.length modname - start)

type node = { file : Summary.file; func : Summary.func }

let split_call call =
  (* The defining unit is the segment next to the value: a library-wrapped
     reference arrives as "Crossbar.Lattice.create", and "Lattice" — not
     the wrapper "Crossbar" — is what [short_modname] yields for the
     defining file.  Plain "Lattice.create" splits identically. *)
  match String.rindex_opt call '.' with
  | None -> (None, call)
  | Some i ->
      let value = String.sub call (i + 1) (String.length call - i - 1) in
      let modname =
        let upto = String.sub call 0 i in
        match String.rindex_opt upto '.' with
        | Some j -> String.sub upto (j + 1) (String.length upto - j - 1)
        | None -> upto
      in
      (Some modname, value)

let resolver files =
  (* Two resolution tables: (short module name, value) for cross-module
     references and (file path, value) for same-module ones.  First
     definition wins, matching link order for duplicate unit names. *)
  let by_module = Hashtbl.create 64 in
  let by_file = Hashtbl.create 64 in
  List.iter
    (fun (file : Summary.file) ->
      let short = short_modname file.Summary.modname in
      List.iter
        (fun (func : Summary.func) ->
          let node = { file; func } in
          let mkey = (short, func.Summary.f_name) in
          if not (Hashtbl.mem by_module mkey) then
            Hashtbl.add by_module mkey node;
          let fkey = (file.Summary.path, func.Summary.f_name) in
          if not (Hashtbl.mem by_file fkey) then Hashtbl.add by_file fkey node)
        file.Summary.funcs)
    files;
  fun (caller : Summary.file) call ->
    match split_call call with
    | Some modname, value -> Hashtbl.find_opt by_module (modname, value)
    | None, value -> Hashtbl.find_opt by_file (caller.Summary.path, value)

let findings ~(config : Lint.Config.t) ?(locked_lambdas = Hashtbl.create 0)
    files =
  let resolve = resolver files in

  (* BFS over resolved calls from every function defined under an R9 root
     directory.  [via] records one witness path step for the message. *)
  let reachable : (string * string, string) Hashtbl.t = Hashtbl.create 64 in
  let key (node : node) =
    (node.file.Summary.path, node.func.Summary.f_name)
  in
  let queue = Queue.create () in
  List.iter
    (fun (file : Summary.file) ->
      if Lint.Config.matches file.Summary.path config.Lint.Config.r9_roots
      then
        List.iter
          (fun (func : Summary.func) ->
            let node = { file; func } in
            if not (Hashtbl.mem reachable (key node)) then begin
              Hashtbl.add reachable (key node) func.Summary.f_name;
              Queue.add node queue
            end)
          file.Summary.funcs)
    files;
  while not (Queue.is_empty queue) do
    let node = Queue.pop queue in
    let root = Hashtbl.find reachable (key node) in
    List.iter
      (fun call ->
        match resolve node.file call with
        | Some next when not (Hashtbl.mem reachable (key next)) ->
            Hashtbl.add reachable (key next) root;
            Queue.add next queue
        | _ -> ())
      node.func.Summary.calls
  done;

  (* A write is locked either lexically (a literal under a wrapper, seen
     per-file) or because the capture fixpoint proved the lambda holding
     it runs under a wrapper reached through an indirect call —
     [locked_lambdas] carries that second, global fact set. *)
  let write_locked (file : Summary.file) (m : Summary.mutation) =
    m.Summary.locked
    ||
    match m.Summary.m_lambda with
    | Some id -> Hashtbl.mem locked_lambdas (file.Summary.path, id)
    | None -> false
  in
  let out = ref [] in
  List.iter
    (fun (file : Summary.file) ->
      List.iter
        (fun (func : Summary.func) ->
          match Hashtbl.find_opt reachable (file.Summary.path, func.f_name) with
          | None -> ()
          | Some root ->
              List.iter
                (fun (m : Summary.mutation) ->
                  if not (write_locked file m) then
                    out :=
                      Finding.make ~rule:Rule.R9 ~file:file.Summary.path
                        ~line:m.Summary.m_line ~col:m.Summary.m_col
                        (Printf.sprintf
                           "%s writes top-level state %s outside a \
                            lock-wrapped region and is reachable from engine \
                            entry point %s; wrap the write in Mutex.protect \
                            or a configured lock wrapper"
                           func.Summary.f_name m.Summary.target root)
                      :: !out)
                func.Summary.mutations)
        file.Summary.funcs)
    files;
  List.rev !out
