module Lint = Crossbar_lint
module Memo = Crossbar_engine.Cache.Memo
module Finding = Lint.Finding
module Rule = Lint.Rule

type stats = {
  files : int;
  hits : int;
  misses : int;
  missing_cmt : string list;
  errors : (string * string) list;
  extract_s : float;
  capture_s : float;
  graph_s : float;
  effects_s : float;
  capture_iterations : int;
  raise_iterations : int;
  domain_iterations : int;
}

(* [Sys.time] (processor time) is enough for coarse per-stage attribution
   and keeps the library off Unix. *)
let timed f =
  let t0 = Sys.time () in
  let value = f () in
  (value, Sys.time () -. t0)

let digest_string s = Digest.to_hex (Digest.string s)

let digest_file path =
  match Digest.file path with
  | d -> Some (Digest.to_hex d)
  | exception Sys_error _ -> None

let run ~(config : Lint.Config.t) ~store ~cmt_index ~cmt_root paths =
  let sources, _syntax = Lint.Driver.load_sources paths in
  let impls =
    List.filter
      (fun (s : Lint.Driver.source) ->
        match s.Lint.Driver.parsed with
        | Lint.Driver.Impl _ -> true
        | Lint.Driver.Intf | Lint.Driver.Broken -> false)
      sources
  in
  let in_scope = Lint.Driver.scope_membership ~config sources in
  let session = Typed_rules.session () in
  let memo : (Finding.t list * Summary.file, string) result Memo.t =
    Memo.create ()
  in
  let hits = ref 0 in
  let missing = ref [] in
  let errors = ref [] in
  let results, extract_s =
    timed @@ fun () ->
    List.filter_map
      (fun (s : Lint.Driver.source) ->
        let path = s.Lint.Driver.path in
        match Cmt_index.find cmt_index path with
        | None ->
            missing := path :: !missing;
            None
        | Some cmt_path -> (
            let source_digest = digest_string s.Lint.Driver.text in
            match digest_file cmt_path with
            | None ->
                missing := path :: !missing;
                None
            | Some cmt_digest -> (
                match Store.lookup store ~path ~source_digest ~cmt_digest with
                | Some (findings, summary) ->
                    incr hits;
                    Some (s, findings, summary)
                | None -> (
                    (* The in-process memo only matters when one run names
                       the same file twice (overlapping path arguments);
                       the digests make the key self-invalidating either
                       way. *)
                    let key =
                      String.concat "\x00" [ path; source_digest; cmt_digest ]
                    in
                    let result, _was_memo_hit =
                      Memo.find_or_compute memo key (fun () ->
                          Typed_rules.analyse ~config ~path
                            ~r8_applies:(in_scope path) ~session ~cmt_root
                            ~cmt_path)
                    in
                    match result with
                    | Ok (findings, summary) ->
                        Store.store store ~path ~source_digest ~cmt_digest
                          ~findings ~summary;
                        Some (s, findings, summary)
                    | Error m ->
                        errors := (path, m) :: !errors;
                        None))))
      impls
  in
  let summaries = List.map (fun (_, _, summary) -> summary) results in
  (* Suppression directives apply to typed findings exactly as to untyped
     ones; R9/R10 findings land on the file holding the write or the
     call site, so its own source text is the one scanned.  The scan also
     backs the capture pass's [guarded=] lookups, so it runs first. *)
  let by_path = Hashtbl.create 64 in
  List.iter
    (fun ((s : Lint.Driver.source), _, _) ->
      Hashtbl.replace by_path s.Lint.Driver.path
        (Lint.Suppress.scan s.Lint.Driver.text))
    results;
  let guarded ~path ~line =
    match Hashtbl.find_opt by_path path with
    | Some suppress -> Lint.Suppress.guarded suppress ~line
    | None -> []
  in
  (* The capture fixpoint serves both typed global rules: R10 consumes
     its escape findings, R9 its locked-lambda facts.  Either rule being
     enabled pays for the (cheap, in-memory) pass. *)
  let capture, capture_s =
    timed @@ fun () ->
    if
      Lint.Config.enabled config Rule.R9
      || Lint.Config.enabled config Rule.R10
    then Some (Capture.analyse ~config ~guarded summaries)
    else None
  in
  let r10 =
    match capture with
    | Some c when Lint.Config.enabled config Rule.R10 -> c.Capture.r10
    | Some _ | None -> []
  in
  let r9, graph_s =
    timed @@ fun () ->
    if Lint.Config.enabled config Rule.R9 then
      let locked_lambdas =
        match capture with
        | Some c -> Some c.Capture.locked_lambdas
        | None -> None
      in
      Callgraph.findings ~config ?locked_lambdas summaries
    else []
  in
  (* Stage three: the effect/domain closures behind R11-R13, backed by
     the same suppression scans for [alloc=] sanctions. *)
  let sanctioned ~path ~line =
    match Hashtbl.find_opt by_path path with
    | Some suppress -> Lint.Suppress.sanctioned_allocs suppress ~line
    | None -> []
  in
  let effects, effects_s =
    timed @@ fun () ->
    if
      Lint.Config.enabled config Rule.R11
      || Lint.Config.enabled config Rule.R12
      || Lint.Config.enabled config Rule.R13
    then Some (Effects.analyse ~config ~sanctioned summaries)
    else None
  in
  let effect_findings =
    match effects with
    | Some e -> e.Effects.r11 @ e.Effects.r12 @ e.Effects.r13
    | None -> []
  in
  let survives (f : Finding.t) =
    match Hashtbl.find_opt by_path f.Finding.file with
    | Some suppress ->
        not
          (Lint.Suppress.active suppress ~rule:f.Finding.rule
             ~line:f.Finding.line)
    | None -> true
  in
  let findings =
    List.concat_map (fun (_, findings, _) -> findings) results
    @ r9 @ r10 @ effect_findings
    |> List.filter survives
    |> List.sort Finding.compare
  in
  ( findings,
    {
      files = List.length impls;
      hits = !hits;
      misses = Memo.misses memo;
      missing_cmt = List.rev !missing;
      errors = List.rev !errors;
      extract_s;
      capture_s;
      graph_s;
      effects_s;
      capture_iterations =
        (match capture with Some c -> c.Capture.iterations | None -> 0);
      raise_iterations =
        (match effects with Some e -> e.Effects.raise_iterations | None -> 0);
      domain_iterations =
        (match effects with
        | Some e -> e.Effects.domain_iterations
        | None -> 0);
    } )
