(** Interprocedural effect and float-domain analysis (stage three): the
    global half of R11/R12/R13 over the per-file effect summaries.

    Like {!Callgraph} and {!Capture}, this stage is cheap and always
    recomputed: summaries come from the incremental cache, and the three
    closures here are graph walks over data already in memory —

    - {b R11}: a breadth-first walk over resolved call edges from every
      function matching a [hot_roots] pattern; every boxed-allocation
      site in a reached function is flagged with the full witness chain
      (root -> ... -> callee) unless an [(* lint: alloc=name -- ... *)]
      directive sanctions it by name;
    - {b R12}: a fixpoint over the escaping-raise effect (a function
      raises at body level, or calls one that does), then a check that no
      lambda handed to a configured [r12_boundaries] function carries the
      effect — a mid-boundary exception unwinds with locks released but
      registry/batch state half-written;
    - {b R13}: a fixpoint resolving every function's return domain
      through [DCall] references, then a judgment of each recorded
      candidate site: log+linear addition, re-exponentiation of an
      already-linear value, and ordering comparisons between rescaled
      mantissas of different profiles. *)

type result = {
  r11 : Crossbar_lint.Finding.t list;
  r12 : Crossbar_lint.Finding.t list;
  r13 : Crossbar_lint.Finding.t list;
  raise_iterations : int;
      (** passes the R12 escape fixpoint needed to stabilise (0 when R12
          is disabled) *)
  domain_iterations : int;
      (** passes the R13 return-domain fixpoint needed to stabilise (0
          when R13 is disabled) *)
}

val analyse :
  config:Crossbar_lint.Config.t ->
  sanctioned:(path:string -> line:int -> string list) ->
  Summary.file list ->
  result
(** Unsuppressed R11/R12/R13 findings for the whole program described by
    the summaries; each rule runs only when enabled in [config].
    [sanctioned ~path ~line] returns the allocation names an [alloc=]
    directive sanctions at that line (the driver backs it with the
    per-file {!Crossbar_lint.Suppress} scans). *)
