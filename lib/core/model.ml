type t = {
  inputs : int;
  outputs : int;
  classes : Traffic.t array;
  per_pair_alpha : float array;
  per_pair_beta : float array;
  mutable space : Crossbar_markov.State_space.t option; (* lazy cache *)
}

let choose = Crossbar_numerics.Special.binomial

let validate_bernoulli ~capacity (traffic : Traffic.t) =
  if traffic.Traffic.beta < 0. then begin
    let max_k = capacity / traffic.Traffic.bandwidth in
    let s = traffic.Traffic.alpha /. -.traffic.Traffic.beta in
    let integral = Float.abs (s -. Float.round s) < 1e-9 *. Float.max 1. s in
    (* lambda(k) must stay non-negative for every k that can be exceeded,
       unless it hits zero exactly at an integer source count (finite
       source), in which case states beyond it have zero weight. *)
    if (not integral) && s < float_of_int (max_k - 1) then
      invalid_arg
        (Printf.sprintf
           "Model.create: bernoulli class %S reaches a negative arrival \
            rate inside the state space (alpha/|beta| = %g, max k = %d); \
            use an integral source count"
           traffic.Traffic.name s max_k)
  end

let create ~inputs ~outputs ~classes =
  if inputs < 1 || outputs < 1 then
    invalid_arg "Model.create: switch dimensions must be >= 1";
  let classes = Array.of_list classes in
  let names = Hashtbl.create 8 in
  Array.iter
    (fun (c : Traffic.t) ->
      if Hashtbl.mem names c.Traffic.name then
        invalid_arg
          (Printf.sprintf "Model.create: duplicate class name %S"
             c.Traffic.name);
      Hashtbl.replace names c.Traffic.name ())
    classes;
  let capacity = min inputs outputs in
  Array.iter
    (fun (c : Traffic.t) ->
      if c.Traffic.bandwidth > capacity then
        invalid_arg
          (Printf.sprintf
             "Model.create: class %S needs %d ports but the switch has only \
              %d on one side"
             c.Traffic.name c.Traffic.bandwidth capacity))
    classes;
  Array.iter (validate_bernoulli ~capacity) classes;
  let scale (c : Traffic.t) value = value /. choose outputs c.Traffic.bandwidth in
  let per_pair_alpha = Array.map (fun c -> scale c c.Traffic.alpha) classes in
  let per_pair_beta = Array.map (fun c -> scale c c.Traffic.beta) classes in
  { inputs; outputs; classes; per_pair_alpha; per_pair_beta; space = None }

let square ~size ~classes = create ~inputs:size ~outputs:size ~classes
let inputs t = t.inputs
let outputs t = t.outputs
let capacity t = min t.inputs t.outputs
let classes t = Array.copy t.classes
let num_classes t = Array.length t.classes
let bandwidth t r = t.classes.(r).Traffic.bandwidth
let bandwidths t = Array.map (fun (c : Traffic.t) -> c.Traffic.bandwidth) t.classes
let service_rate t r = t.classes.(r).Traffic.service_rate
let alpha t r = t.per_pair_alpha.(r)
let beta t r = t.per_pair_beta.(r)
let rho t r = t.per_pair_alpha.(r) /. service_rate t r
let beta_over_mu t r = t.per_pair_beta.(r) /. service_rate t r

let arrival_rate t ~class_index ~concurrent =
  let rate =
    t.per_pair_alpha.(class_index)
    +. (t.per_pair_beta.(class_index) *. float_of_int concurrent)
  in
  Float.max 0. rate

let max_concurrent t r =
  let by_capacity = capacity t / bandwidth t r in
  match Traffic.sources t.classes.(r) with
  | Some s -> min by_capacity s
  | None -> by_capacity

let is_poisson t r = Crossbar_numerics.Prob.is_zero t.per_pair_beta.(r)

let map_class t r f =
  if r < 0 || r >= num_classes t then invalid_arg "Model.map_class: index";
  let classes =
    Array.to_list (Array.mapi (fun i c -> if i = r then f c else c) t.classes)
  in
  create ~inputs:t.inputs ~outputs:t.outputs ~classes

let class_delta a b =
  if
    a.inputs <> b.inputs || a.outputs <> b.outputs
    || Array.length a.classes <> Array.length b.classes
  then None
  else begin
    (* lint: alloc=changed -- one cell plus the O(#changed) index list *)
    let changed = ref [] in
    for r = Array.length a.classes - 1 downto 0 do
      if not (Traffic.equal a.classes.(r) b.classes.(r)) then
        changed := r :: !changed
    done;
    Some !changed
  end

let single_class_delta a b =
  match class_delta a b with Some [ r ] -> Some r | Some _ | None -> None

let state_space t =
  match t.space with
  | Some space -> space
  | None ->
      let space =
        Crossbar_markov.State_space.create ~weights:(bandwidths t)
          ~capacity:(capacity t)
      in
      t.space <- Some space;
      space

let pp ppf t =
  Format.fprintf ppf "@[<v>%dx%d crossbar, %d class(es):@," t.inputs t.outputs
    (num_classes t);
  Array.iter (fun c -> Format.fprintf ppf "  %a@," Traffic.pp c) t.classes;
  Format.fprintf ppf "@]"
