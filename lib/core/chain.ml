module Special = Crossbar_numerics.Special
module State_space = Crossbar_markov.State_space
module Ctmc = Crossbar_markov.Ctmc

let max_exact_states = 20_000

let check_size space =
  if State_space.size space > max_exact_states then
    failwith
      (Printf.sprintf "Chain: state space too large for exact solve (%d)"
         (State_space.size space))

(* Common structure: per-state successor list with class-specific birth
   rates supplied by [birth] and death rates by [death]. *)
let build model ~birth ~death =
  let space = Model.state_space model in
  check_size space;
  let n1 = Model.inputs model and n2 = Model.outputs model in
  let num_classes = Model.num_classes model in
  Ctmc.build ~states:(State_space.size space) ~f:(fun i ->
      let k = State_space.state space i in
      let load = State_space.load space i in
      let transitions = ref [] in
      for r = 0 to num_classes - 1 do
        let a = Model.bandwidth model r in
        (* Birth: a_r free inputs and outputs must exist. *)
        if load + a <= min n1 n2 then begin
          let rate =
            Special.permutations (n1 - load) a
            *. Special.permutations (n2 - load) a
            *. birth ~class_index:r ~concurrent:k.(r)
          in
          if rate > 0. then begin
            let target = Array.copy k in
            target.(r) <- target.(r) + 1;
            transitions := (State_space.index space target, rate) :: !transitions
          end
        end;
        (* Death. *)
        if k.(r) > 0 then begin
          let rate = death ~class_index:r ~concurrent:k.(r) in
          if rate > 0. then begin
            let target = Array.copy k in
            target.(r) <- target.(r) - 1;
            transitions := (State_space.index space target, rate) :: !transitions
          end
        end
      done;
      !transitions)

let arrival_chain model =
  build model
    ~birth:(fun ~class_index ~concurrent ->
      Model.arrival_rate model ~class_index ~concurrent)
    ~death:(fun ~class_index ~concurrent ->
      float_of_int concurrent *. Model.service_rate model class_index)

let service_view_chain model =
  (* v_r = alpha_r - beta_r, delta_r = beta_r gives
     mu_r(k) = k mu_r / (v_r + delta_r k), matching the BPP chain. *)
  let v r = Model.alpha model r -. Model.beta model r in
  let delta r = Model.beta model r in
  for r = 0 to Model.num_classes model - 1 do
    let max_k = Model.capacity model / Model.bandwidth model r in
    for k = 1 to max_k do
      if v r +. (delta r *. float_of_int k) <= 0. then
        invalid_arg
          "Chain.service_view_chain: v_r + delta_r k <= 0 in the state space"
    done
  done;
  build model
    ~birth:(fun ~class_index:_ ~concurrent:_ -> 1.)
    ~death:(fun ~class_index ~concurrent ->
      let k = float_of_int concurrent in
      k
      *. Model.service_rate model class_index
      /. (v class_index +. (delta class_index *. k)))

let stationary model = Ctmc.solve_gth (arrival_chain model)
