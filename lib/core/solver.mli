(** Uniform front-end over the three evaluation engines. *)

type algorithm =
  | Brute_force  (** direct enumeration of [Gamma(N)] — validation only *)
  | Convolution  (** the paper's Algorithm 1 (with dynamic scaling) *)
  | Mean_value  (** the paper's Algorithm 2 (ratio recurrences) *)

val algorithm_of_string : string -> (algorithm, string) result
val algorithm_to_string : algorithm -> string

val recommended : Model.t -> algorithm
(** The paper's guidance: Algorithm 1 for small crossbars
    ([min(N1,N2) <= 32]), Algorithm 2 for larger ones. *)

val solve : ?algorithm:algorithm -> Model.t -> Measures.t
(** Evaluate the model; default algorithm is {!recommended}. *)

val log_normalization : ?algorithm:algorithm -> Model.t -> float
(** [log G(N)] — brute force is excluded from the default choice here
    only by the state-space guard it applies itself. *)
