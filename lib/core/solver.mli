(** Uniform front-end over the three evaluation engines. *)

type algorithm =
  | Brute_force  (** direct enumeration of [Gamma(N)] — validation only *)
  | Convolution  (** the paper's Algorithm 1 (with dynamic scaling) *)
  | Mean_value  (** the paper's Algorithm 2 (ratio recurrences) *)

val algorithm_of_string : string -> (algorithm, string) result
val algorithm_to_string : algorithm -> string

val recommended : Model.t -> algorithm
(** The paper's guidance: Algorithm 1 for small crossbars
    ([min(N1,N2) <= 32]), Algorithm 2 for larger ones. *)

type solution = {
  algorithm : algorithm;  (** the algorithm that actually ran *)
  measures : Measures.t;
  log_normalization : float;  (** [log G(N1, N2)] from the same solve *)
  lattice_cells : int;
      (** lattice points computed: [(N1+1)(N2+1)] for the two
          recurrence algorithms, [0] for enumeration *)
  rescales : int;
      (** {!Convolution} dynamic-rescale events; [0] for the others *)
  tree_combines : int;
      (** pairwise factor-tree combines the {!Convolution} solve
          performed ([R - 1] for a full build, [O(#changed log R)] for a
          {!Convolution.solve_delta}); [0] for the other algorithms *)
  banded_combines : int;
      (** how many of those combines ran the banded parallel kernel
          (non-zero only at or above the context's capacity threshold —
          see {!Convolution.context_of}); [0] for the other
          algorithms *)
}

val solution_of_convolution : Convolution.t -> solution
(** Packages an already-solved convolution lattice (e.g. one produced by
    {!Convolution.solve_incremental}) as a {!solution}, without
    re-running anything. *)

val solve_full : ?algorithm:algorithm -> Model.t -> solution
(** Evaluate the model once and return both the performance measures and
    the log-normalisation constant, plus solve metadata.  Callers that
    need measures {e and} [log G] (sweep engines, caches) must use this
    instead of pairing {!solve} with {!log_normalization}, which would
    run the recurrence twice. *)

val solve : ?algorithm:algorithm -> Model.t -> Measures.t
(** Evaluate the model; default algorithm is {!recommended}. *)

val log_normalization : ?algorithm:algorithm -> Model.t -> float
(** [log G(N)] — brute force is excluded from the default choice here
    only by the state-space guard it applies itself. *)
