type t = {
  name : string;
  bandwidth : int;
  alpha : float;
  beta : float;
  service_rate : float;
}

type statistics = Smooth | Regular | Peaky

let create ?(name = "traffic") ~bandwidth ~alpha ~beta ~service_rate () =
  if bandwidth < 1 then invalid_arg "Traffic.create: bandwidth < 1";
  if Float.is_nan alpha || alpha < 0. then
    invalid_arg "Traffic.create: alpha < 0";
  if Float.is_nan beta then invalid_arg "Traffic.create: beta is NaN";
  if not (service_rate > 0.) then
    invalid_arg "Traffic.create: service_rate <= 0";
  { name; bandwidth; alpha; beta; service_rate }

let poisson ?name ~bandwidth ~rate ~service_rate () =
  create ?name ~bandwidth ~alpha:rate ~beta:0. ~service_rate ()

let pascal ?name ~bandwidth ~alpha ~beta ~service_rate () =
  if not (beta > 0.) then invalid_arg "Traffic.pascal: beta <= 0";
  create ?name ~bandwidth ~alpha ~beta ~service_rate ()

let bernoulli ?name ~bandwidth ~sources ~per_source_rate ~service_rate () =
  if sources < 1 then invalid_arg "Traffic.bernoulli: sources < 1";
  if not (per_source_rate > 0.) then
    invalid_arg "Traffic.bernoulli: per_source_rate <= 0";
  create ?name ~bandwidth
    ~alpha:(float_of_int sources *. per_source_rate)
    ~beta:(-.per_source_rate) ~service_rate ()

let statistics t =
  if t.beta < 0. then Smooth
  else if Crossbar_numerics.Prob.is_zero t.beta then Regular
  else Peaky

let is_poisson t = Crossbar_numerics.Prob.is_zero t.beta
let offered_load t = t.alpha /. t.service_rate

let sources t =
  if t.beta >= 0. then None
  else begin
    let s = t.alpha /. -.t.beta in
    let rounded = Float.round s in
    if Float.abs (s -. rounded) < 1e-9 *. Float.max 1. s then
      Some (int_of_float rounded)
    else None
  end

(* Exact structural equality: rates compare by bit pattern, so a class
   rebuilt from the same parameters is equal and any perturbation,
   however small, is not (mirroring the sweep cache's model keys). *)
let float_bits_equal a b =
  Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let equal a b =
  String.equal a.name b.name
  && Int.equal a.bandwidth b.bandwidth
  && float_bits_equal a.alpha b.alpha
  && float_bits_equal a.beta b.beta
  && float_bits_equal a.service_rate b.service_rate

let with_alpha t alpha =
  create ~name:t.name ~bandwidth:t.bandwidth ~alpha ~beta:t.beta
    ~service_rate:t.service_rate ()

let with_beta t beta =
  create ~name:t.name ~bandwidth:t.bandwidth ~alpha:t.alpha ~beta
    ~service_rate:t.service_rate ()

let scale_load t c =
  if not (c >= 0.) then invalid_arg "Traffic.scale_load: negative factor";
  create ~name:t.name ~bandwidth:t.bandwidth ~alpha:(t.alpha *. c)
    ~beta:(t.beta *. c) ~service_rate:t.service_rate ()

let infinite_server_mean ~alpha ~beta ~service_rate =
  if not (beta < service_rate) then
    invalid_arg "Traffic.infinite_server_mean: beta >= mu (unstable)";
  alpha /. (service_rate -. beta)

let infinite_server_variance ~alpha ~beta ~service_rate =
  if not (beta < service_rate) then
    invalid_arg "Traffic.infinite_server_variance: beta >= mu (unstable)";
  let scaled = beta /. service_rate in
  alpha /. service_rate /. ((1. -. scaled) *. (1. -. scaled))

let peakedness ~beta ~service_rate =
  if not (beta < service_rate) then
    invalid_arg "Traffic.peakedness: beta >= mu (unstable)";
  1. /. (1. -. (beta /. service_rate))

let pp ppf t =
  let kind =
    match statistics t with
    | Smooth -> "bernoulli"
    | Regular -> "poisson"
    | Peaky -> "pascal"
  in
  Format.fprintf ppf
    "@[<h>%s: %s a=%d alpha~=%g beta~=%g mu=%g@]" t.name kind t.bandwidth
    t.alpha t.beta t.service_rate
