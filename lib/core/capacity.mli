(** Capacity planning on top of the analytic solvers.

    Answers the two dimensioning questions a switch designer asks of this
    model: how much load fits under a blocking objective, and how large a
    crossbar a given traffic mix needs.  (The paper's figures are drawn at
    the "acceptable operating point" of 0.5% blocking; these routines find
    such operating points instead of eyeballing them.) *)

val blocking : ?algorithm:Solver.algorithm -> Model.t -> class_index:int -> float
(** Convenience accessor: the blocking probability [1 - B_r]. *)

val load_multiplier_for_blocking :
  ?algorithm:Solver.algorithm -> Model.t -> class_index:int ->
  target:float -> float
(** The factor [c] such that scaling class [class_index]'s arrival
    parameters ([alpha], [beta]) by [c] drives that class's blocking
    probability to [target].  Blocking is increasing in the class's own
    load, so the answer is unique.
    @raise Failure if [target] is below the blocking caused by the other
    classes alone, or above what any finite load can reach. *)

val smallest_square_switch :
  ?algorithm:Solver.algorithm -> classes:(int -> Traffic.t list) ->
  target:float -> max_size:int -> unit -> int option
(** The smallest [N] (testing [1 .. max_size]) such that every class of
    [classes N] sees blocking at most [target] on an [N x N] crossbar;
    [None] if even [max_size] does not suffice.  [classes] receives the
    candidate size so that size-dependent loads (e.g. the paper's
    constant total load [tau / C(N, a)]) can be expressed. *)
