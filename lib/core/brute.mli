(** Brute-force evaluation of the product form by state-space enumeration.

    Computes [G(N)] and every measure directly from the definition
    (paper equations 2–3), entirely in log space.  Exponential in the
    number of classes and switch size, so only practical for validation —
    this module is the oracle against which {!Convolution} (Algorithm 1)
    and {!Mva} (Algorithm 2) are tested. *)

val max_states : int
(** Safety bound on the enumerated state count (2_000_000). *)

val log_weight : Model.t -> inputs:int -> outputs:int -> int array -> float
(** [log_weight model ~inputs ~outputs k] is
    [log (Psi(k) * prod_r Phi_r(k_r))] evaluated with the model's
    per-pair parameters but the {e given} switch dimensions —
    [neg_infinity] for infeasible states. *)

val log_g : Model.t -> inputs:int -> outputs:int -> float
(** [log G(n1, n2)]: the normalisation function at possibly reduced
    dimensions (needed for [B_r = G(N - a_r I)/G(N)]).
    @raise Failure if the state space exceeds {!max_states}. *)

val distribution : Model.t -> Crossbar_markov.State_space.t * float array
(** The explicit stationary distribution [pi(k)] over [Gamma(N)], indexed
    by the returned state space. *)

val solve : Model.t -> Measures.t
(** All performance measures by direct summation. *)
