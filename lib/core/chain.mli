(** The crossbar model as an explicit continuous-time Markov chain.

    Builds the {e actual} chain of paper Section 2 over [Gamma(N)] —
    acceptance intensity
    [q(k, k + 1_r) = P(N1 - kA, a_r) P(N2 - kA, a_r) lambda_r(k_r)],
    completion intensity [q(k, k - 1_r) = k_r mu_r] — so that the
    product-form solution can be validated against a numerically exact
    solve with no product-form assumption, and reversibility can be
    checked directly. *)

val arrival_chain : Model.t -> Crossbar_markov.Ctmc.t
(** The chain with BPP state-dependent arrivals and exponential service,
    states indexed by [Model.state_space].
    @raise Failure if the state space is too large to solve exactly. *)

val service_view_chain : Model.t -> Crossbar_markov.Ctmc.t
(** The paper's equivalent formulation: unit-rate Poisson arrivals and
    state-dependent service [mu_r(k) = k mu_r / (v_r + delta_r k)] with
    [v_r = alpha_r - beta_r], [delta_r = beta_r].  Shares its stationary
    distribution with {!arrival_chain}.
    @raise Invalid_argument if some [v_r + delta_r k <= 0] inside the
    state space (the equivalence needs positive service rates). *)

val stationary : Model.t -> float array
(** GTH solve of {!arrival_chain}, indexed like [Model.state_space] —
    the reference distribution for the product-form tests. *)
