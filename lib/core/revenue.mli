(** Revenue-oriented performance analysis (paper Section 4).

    An accepted class-[r] connection earns revenue [w_r]; the average
    return [W(N) = sum_r w_r E_r(N)] is the weighted throughput (with
    [w_r = gamma_r mu_r]).  The gradient of [W] with respect to a class's
    offered load decides whether admitting more of that class pays:
    a request is accepted with probability [B_r(N)], earns [w_r], and
    displaces [Delta W = W(N) - W(N - a_r I)] — the {e shadow cost}. *)

val total : ?algorithm:Solver.algorithm -> Model.t -> weights:float array -> float
(** The average return [W(N)]. *)

val reduced_model : Model.t -> ports:int -> Model.t
(** The model on an [(N1 - ports) x (N2 - ports)] switch with the {e same
    per-pair} parameters — the "[N - a_r I]" system of the shadow-cost
    formula.  (Aggregate parameters are rescaled by
    [C(N2 - ports, a) / C(N2, a)] so the per-pair ones stay put.)
    @raise Invalid_argument if the reduction empties the switch. *)

val shadow_cost :
  ?algorithm:Solver.algorithm -> Model.t -> weights:float array ->
  class_index:int -> float
(** [Delta W(N) = W(N) - W(N - a_r I)], the historical two-solve path
    (per class: one full and one reduced-switch solve).  Prefer
    {!shadow_costs}, which batches all [R] of them out of one solve. *)

val shadow_costs :
  ?solved:Convolution.t -> Model.t -> weights:float array -> float array
(** All [R] shadow costs [Delta_r W(N) = W(N) - W(N - a_r I)] from a
    {e single} convolution solve: {!reduced_model} preserves the
    per-pair parameters, so every reduced switch's measures are read off
    deeper entries of the already-solved diagonal
    ({!Convolution.concurrencies_at_depth}) — [O(R)] chain walks instead
    of [R + 1] independent solves.  Classes whose reduction would empty
    the switch get [Delta_r = W(N)] (the whole return is at stake), where
    {!shadow_cost} raises.  Pass [?solved] to reuse an existing solve of
    {e the same} model (e.g. from a sweep point).
    @raise Invalid_argument on weight-count mismatch, or if [?solved]
    came from a different model (exact, bit-level comparison). *)

val gradient :
  ?solved:Convolution.t -> Model.t -> weights:float array ->
  float option array
(** Closed-form revenue gradient for every class at once, powered by
    {!shadow_costs} — one solve for the whole vector instead of the
    [2R + 1] solves of calling {!gradient_rho} per class.  Element [r] is
    [Some (P(N1,a_r) P(N2,a_r) B_r(N) (w_r - Delta_r W))] for Poisson
    classes and [None] for bursty ones (the paper found no closed form;
    use {!gradient_beta_numeric}).
    @raise Invalid_argument as {!shadow_costs}. *)

val gradient_rho :
  ?algorithm:Solver.algorithm -> Model.t -> weights:float array ->
  class_index:int -> float
(** Closed-form gradient of [W] w.r.t. the per-pair Poisson load [rho_r]:
    [P(N1,a_r) P(N2,a_r) B_r(N) (w_r - Delta W(N))] (the paper prints the
    [a_r = 1] case, [N1 N2 B_r (w_r - Delta W)]).
    @raise Invalid_argument if class [r] is not Poisson (the paper found
    no closed form for bursty classes — use {!gradient_beta_numeric}). *)

val gradient_rho_numeric :
  ?algorithm:Solver.algorithm -> ?step:float -> Model.t ->
  weights:float array -> class_index:int -> float
(** Central-difference gradient w.r.t. the per-pair [rho_r] (any class);
    used to validate {!gradient_rho}. *)

val gradient_beta_numeric :
  ?algorithm:Solver.algorithm -> ?step:float -> Model.t ->
  weights:float array -> class_index:int -> float
(** Forward-difference gradient w.r.t. the per-pair bursty load
    [beta_r / mu_r] — exactly the paper's numerical scheme for Table 2.
    @raise Invalid_argument if class [r] is Poisson. *)
