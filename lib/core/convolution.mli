(** Algorithm 1: the convolution recurrence on the normalisation function
    (paper Section 5, with the dynamic scaling of Section 6).

    The paper's recurrence acts on [Q(N) = G(N)/(N1! N2!)], whose values
    span more orders of magnitude than a double.  We therefore store the
    lattice in the pre-scaled form [G(n1, n2) * omega] — equivalent to the
    paper's scaled [omega Q] with a deterministic factorial component folded
    in — and apply the adaptive power-of-two rescale of Section 6 whenever
    an entry threatens the representable range.  Performance measures are
    ratios, so the scale cancels (paper Section 6).

    Complexity [O(N1 N2 (R1 + R2))] time, [O(N1 N2 (1 + R2))] space. *)

type t
(** A solved lattice. *)

val solve : Model.t -> t
(** Runs the recurrence over the full [(N1+1) x (N2+1)] lattice and
    derives all measures.
    @raise Failure if a single recurrence step overflows even after
    rescaling (pathological bandwidths); use {!Mva} in that regime. *)

val model : t -> Model.t

val measures : t -> Measures.t
(** Measures from Step 3 of Algorithm 1 (with the corrected [E_r]
    prefactor — see DESIGN.md). *)

val log_g : t -> inputs:int -> outputs:int -> float
(** [log G(n1, n2)] read off the lattice.  Entries near the corner — the
    ones measures use — are always exact.
    @raise Invalid_argument outside the lattice.
    @raise Failure if dynamic rescaling flushed the requested entry to
    zero (it lies hundreds of orders of magnitude below the corner); the
    sentinel [neg_infinity] is never returned, so downstream arithmetic
    cannot be corrupted silently. *)

val log_normalization : t -> float
(** [log G(N1, N2)]. *)

val rescale_count : t -> int
(** Number of adaptive rescale events (0 for all workloads in the paper). *)
