(** Algorithm 1: the convolution solution of the normalisation function
    (paper Section 5, with the dynamic scaling of Section 6), in
    class-factored form over a balanced combine tree.

    The paper's recurrence acts on [Q(N) = G(N)/(N1! N2!)].  Matching
    coefficients shows [G] factors per class:
    [G(n1,n2) = sum_u H(u) P(n1,u) P(n2,u)] with
    [H = h_1 * ... * h_R] a one-dimensional convolution over used
    bandwidth of per-class generating sequences (DESIGN.md,
    "Class-factored convolution").  Each factor is held corner-tilted
    in a flat {!Lattice} profile with its own Section 6 rescale
    exponent.  The factors are multiplied along one fixed shape — the
    balanced binary {!Factor_tree} — which {e is} the solver: a full
    solve combines bottom-up ([R - 1] combines), a re-solve after
    changing any subset of classes recombines only the changed leaves'
    root paths ([O(#changed log R)] combines), and both walk identical
    operand pairs in identical order, hence bit-identical results on
    every measure and [log G].

    The pairwise combine runs as a cache-blocked kernel over the
    {!Lattice} Bigarrays with per-domain scratch arenas ({!Arena}), so a
    warmed-up re-solve loop performs no major-heap allocation; above a
    capacity threshold a single combine's output is split into
    deterministic row bands computed by parallel domains, bit-identical
    to the sequential kernel (DESIGN.md, "Combine kernels").

    Complexity: [O(cap^2 R)] time for a full solve with
    [cap = min N1 N2], [O(cap^2 #changed log R)] for a re-solve via
    {!solve_delta}, [O(cap R)] space (the tree holds [2R - 1] nodes). *)

(** Per-domain scratch for the combine hot path: two operand-sized
    profiles for chunk-scaled copies, the chunk counts of the current
    prechunk, and a free list of result-sized profiles recycled by
    [Factor_tree.update ~recycle] and the leave-one-out sweep.  Arenas
    are reached through a [Domain.DLS] key held by the context, so
    combines issued concurrently — by the banded kernel's own domains or
    an [Engine.Pool] mapper — never share scratch. *)
module Arena : sig
  type t

  val create : cap:int -> t
  (** Fresh arena for profiles of capacity [cap], with an empty free
      list. *)

  val acquire : t -> cap:int -> stride:int -> Lattice.t
  (** Pops a recycled profile ({!Lattice.reset} to the all-zero state,
      indistinguishable from a fresh create) or creates one of capacity
      [cap]. *)

  val release : t -> Lattice.t -> unit
  (** Hands a profile back for reuse.  Ownership is never inferred: the
      caller must guarantee no live structure still references it. *)

  val created : t -> int
  (** Profiles this arena has created (misses). *)

  val reused : t -> int
  (** Acquisitions served from the free list (hits).  In a warmed-up
      [update ~recycle:true] loop this is the only counter that moves. *)

  val pooled : t -> int
  (** Profiles currently on the free list. *)
end

type context
(** Combine environment for one switch size: the precomputed weight
    grids, kernel tile size, banding threshold and domain count, the
    per-domain {!Arena} key and the banded-combine counter.
    {!Factor_tree.build} resolves its context through a bounded
    process-wide cache keyed on the dimensions and resolved knobs, so
    repeated solves of one switch shape share the grids and — through
    the shared arenas — each other's recycled profiles.  {!context_of}
    always builds a fresh, unshared context. *)

val default_combine_threshold : int
(** The built-in banding threshold (256) used when neither the
    [combine_threshold] parameter nor [CROSSBAR_COMBINE_THRESHOLD] is
    given — the capacity where a dense combine's cost overtakes a
    {!Band_pool} dispatch on the calibration hardware (DESIGN.md). *)

val context_of :
  ?tile:int ->
  ?combine_threshold:int ->
  ?band_domains:int ->
  inputs:int ->
  outputs:int ->
  unit ->
  context
(** [tile] is the kernel block edge (default 64 entries);
    [combine_threshold] the capacity at or above which a single combine
    is banded across domains (default: the [CROSSBAR_COMBINE_THRESHOLD]
    environment variable, else 256 — calibrated against the persistent
    {!Band_pool} dispatch cost, see DESIGN.md); [band_domains] the
    number of bands (default {!Domains.recommended}).  Banding is
    disabled whenever [band_domains = 1].
    @raise Invalid_argument if any knob — parameter or environment
    override — is not [>= 1]; the message names the offending knob and
    its value. *)

val context_capacity : context -> int
(** [min inputs outputs]. *)

val arena : context -> Arena.t
(** The calling domain's arena (created on first use). *)

val banded_total : context -> int
(** Combines this context has run through the banded parallel kernel,
    across all solves and domains. *)

val combine : context -> Lattice.t -> Lattice.t -> Lattice.t
(** The tilted convolution
    [(A * B)(u+v) = sum A(u) B(v) w1(u,v) w2(u,v)], as the solver runs
    it: cache-blocked kernel, unchecked accessors, arena scratch and
    result, banded across domains at or above the context's threshold.
    Operands are never mutated.  Each output accumulates its terms in
    strictly increasing [v], so the result is a bit-identical function
    of the operands regardless of tile size, banding, or which domain
    runs it — and equal to {!combine_naive} on every operand pair.
    Operand capacities must equal the context's. *)

val combine_naive : context -> Lattice.t -> Lattice.t -> Lattice.t
(** The pre-kernel reference combine — checked accessors, per-term chunk
    application, fresh result, no tiling, no bands — kept as the
    bit-identity oracle for {!combine} in tests and benchmarks.  Never
    called by the solver. *)

val combine_spawned : context -> Lattice.t -> Lattice.t -> Lattice.t
(** The spawn-dispatch banded combine (one fresh domain per band, as
    before the persistent {!Band_pool}): the same arena, prechunk and
    kernel path as {!combine}, but every combine is banded (no
    threshold test) over [Domain.spawn] whenever the context has
    [band_domains > 1].  Bit-identical to {!combine}; kept only as the
    dispatch-latency baseline for the bench [band_latency] section and
    the dispatch bit-identity tests.  Never called by the solver. *)

(** The balanced combine tree over tilted class factors.  Leaves are the
    per-class profiles [C_r] in class order; each internal node caches
    the tilted convolution of its children together with its rescale
    exponent.  A trailing odd node at any level is carried upward by
    physical sharing, so a build performs exactly [R - 1] combines. *)
module Factor_tree : sig
  type t

  val build : ?map:((int -> Lattice.t) -> int -> Lattice.t array) -> Model.t -> t
  (** Builds all leaves, then one level at a time bottom-up.  [map]
      (default: sequential [Array.init]) evaluates the independent node
      constructions of each level and may run them in parallel — e.g.
      [Engine.Sweep.parallel_solve] passes a {!Engine.Pool} mapper.  The
      result is a pure function of the model alone: any [map] that
      returns element [i] = [f i] yields bit-identical trees.
      @raise Failure if a single recurrence step overflows even after
      rescaling (pathological bandwidths); use {!Mva} in that regime. *)

  val update : ?recycle:bool -> t -> Model.t -> t
  (** [update t model] re-solves after {e any} per-class change: leaves
      whose {!Traffic.equal} comparison against [t]'s model differs are
      rebuilt and only their ancestor paths recombined —
      [O(#changed log R)] combines, against unchanged nodes shared
      physically with [t] (which is never mutated).  Bit-identical to
      [build model] at every node, for any subset of changed classes,
      including in the dynamic-rescaling regime.

      [~recycle:true] additionally promises that the caller drops [t]:
      every node the update replaces (changed leaves and the recombined
      internal nodes above them) returns to the calling domain's arena
      free list, so a steady-state update loop allocates nothing on the
      major heap.  The next acquire resets those nodes, corrupting [t] —
      never the returned tree, which shares only untouched nodes.
      Default [false].
      @raise Invalid_argument if the switch dimensions or class count
      differ (no factor state can be shared).
      @raise Failure as {!build}. *)

  val leave_one_out : t -> Lattice.t array
  (** All leave-one-out complements [H_{-r} = prod_{s<>r} C_s] in one
      top-down prefix x suffix sweep of [2(R-1) - 2] combines (see
      docs/THEORY.md): the complement of a node is its parent's
      complement combined with its sibling, and at the leaves the
      complement is exactly [H_{-r}].  Element [r] feeds class [r]'s
      marginal distribution and shadow cost.  Sweep intermediates that
      do not survive into the returned row are recycled through the
      arena. *)

  val root : t -> Lattice.t
  (** The full product [H] (the unit profile for a zero-class model). *)

  val leaf : t -> int -> Lattice.t
  (** The tilted factor [C_r].
      @raise Invalid_argument if the class index is out of range. *)

  val model : t -> Model.t
  val num_classes : t -> int

  val combines : t -> int
  (** Number of pairwise combines performed by the {!build} or {!update}
      that produced this tree ([R - 1] for a build, 0 for an update with
      no changed class). *)

  val banded : t -> int
  (** How many of those combines ran the banded parallel kernel (0 below
      the context threshold — the telemetry [banded_combines]
      counter). *)

  val context : t -> context
  (** The combine context shared by every re-solve of this tree. *)

  val depth : t -> int
  (** Number of combine levels above the leaves ([ceil log2 R]). *)
end

type t
(** A solved model: the factor tree and the measure diagonal. *)

val solve : ?map:((int -> Lattice.t) -> int -> Lattice.t array) -> Model.t -> t
(** Builds the factor tree (see {!Factor_tree.build}, including the
    parallel [map] hook) and derives all measures from one shared
    diagonal pass.
    @raise Failure as {!Factor_tree.build}. *)

val solve_delta : ?recycle:bool -> previous:t -> Model.t -> t
(** [solve_delta ~previous model] re-solves [model] through
    {!Factor_tree.update} on [previous]'s tree: any subset of classes
    may change, in any order across successive calls.  Bit-identical to
    [solve model] — same measures, same [log_g] on every lattice point,
    same {!rescale_count}.  [~recycle] is {!Factor_tree.update}'s: with
    [true] the caller promises to drop [previous] entirely — its
    replaced tree nodes {e and its measure diagonal} go back to the
    arena free list (the solved measures, already extracted as floats,
    stay valid).
    @raise Invalid_argument if the switch dimensions or class count
    differ.
    @raise Failure as {!solve}. *)

val recycle : t -> unit
(** Returns every lattice a dropped solve owns — all leaves, every
    internal combine result (trailing-carry aliases are released once,
    at their home position), and the measure diagonal — to the calling
    domain's arena free list for its context.  Contexts are shared
    process-wide per switch shape, so the next build of that shape
    acquires the recycled profiles instead of allocating.  The caller
    must guarantee nothing else references [t]: e.g. the serve registry
    recycles an evicted tree only after the batch that evicted it has
    fully drained. *)

val solve_incremental : previous:t -> class_index:int -> Model.t -> t
(** [solve_incremental ~previous ~class_index model] is {!solve_delta}
    restricted to the single changed class [class_index] — kept for
    callers that want the stricter validation.
    @raise Invalid_argument if the switch dimensions or class count
    differ, [class_index] is out of range, or any {e other} class
    differs from [previous]'s model (exact, bit-level comparison).
    @raise Failure as {!solve}. *)

val model : t -> Model.t

val measures : t -> Measures.t
(** Measures from Step 3 of Algorithm 1 (with the corrected [E_r]
    prefactor — see DESIGN.md). *)

val tree : t -> Factor_tree.t
(** The underlying factor tree (shared, never mutated). *)

val combine_count : t -> int
(** {!Factor_tree.combines} of the solve that produced [t] — the
    telemetry [tree_combines] counter. *)

val banded_combine_count : t -> int
(** {!Factor_tree.banded} of the solve that produced [t] — the telemetry
    [banded_combines] counter. *)

val per_class_distributions : t -> Measures.distribution array
(** The full marginal occupancy distribution [p(k_r = j)] of every
    class, batched from one {!Factor_tree.leave_one_out} sweep: class
    [r]'s weights are [C_r(j a_r) . H_{-r}] contracted through the
    corner weight grids, normalised over [j].  [O(R)] combines total
    instead of [R] independent solves; agrees with
    {!Occupancy.class_distribution} to rounding.
    @raise Failure if dynamic rescaling flushed an entire marginal (the
    distribution lies too far below the corner to represent). *)

val concurrencies_at_depth : t -> depth:int -> float array
(** [concurrencies_at_depth t ~depth] evaluates every class's expected
    concurrency [E_r] on the reduced switch [(N1 - depth) x (N2 - depth)]
    {e from the already-solved diagonal}: reduced models preserve the
    per-pair BPP parameters, so [G_reduced(j) = diag.(depth + j)] and no
    re-solve is needed.  [depth = 0] reproduces the measures of {!solve}
    bit for bit; positive depths power {!Revenue.shadow_costs}, all [R]
    of them from this single solve.
    @raise Invalid_argument if [depth] lies outside [0 .. min N1 N2]. *)

val log_g : t -> inputs:int -> outputs:int -> float
(** [log G(n1, n2)], evaluated from the factored form in [O(cap)].
    Entries near the corner — the ones measures use — are always exact.
    @raise Invalid_argument outside the lattice.
    @raise Failure if dynamic rescaling flushed the requested entry to
    zero (it lies hundreds of orders of magnitude below the corner); the
    sentinel [neg_infinity] is never returned, so downstream arithmetic
    cannot be corrupted silently. *)

val log_normalization : t -> float
(** [log G(N1, N2)]. *)

val rescale_count : t -> int
(** Number of adaptive rescale chunks folded into [H] across all partial
    products (0 for all workloads in the paper). *)
