(** Algorithm 1: the convolution solution of the normalisation function
    (paper Section 5, with the dynamic scaling of Section 6), in
    class-factored form.

    The paper's recurrence acts on [Q(N) = G(N)/(N1! N2!)].  Matching
    coefficients shows [G] factors per class:
    [G(n1,n2) = sum_u H(u) P(n1,u) P(n2,u)] with
    [H = h_1 * ... * h_R] a one-dimensional convolution over used
    bandwidth of per-class generating sequences (DESIGN.md,
    "Class-factored convolution").  Each factor is held corner-tilted
    in a flat {!Lattice} profile with its own Section 6 rescale
    exponent; a full solve left-folds the factors, and
    {!solve_incremental} reuses the prefix products up to the one
    changed class — the same operation sequence, hence bit-identical
    results on every measure and [log G].

    Complexity: [O(cap^2 R)] time for a full solve with
    [cap = min N1 N2], [O(cap^2)] for an incremental re-solve of the
    last class, [O(cap R)] space. *)

type t
(** A solved model: tilted factors, prefix products, and the measure
    diagonal. *)

val solve : Model.t -> t
(** Builds every class factor and folds them into [H], then derives all
    measures from one shared diagonal pass.
    @raise Failure if a single recurrence step overflows even after
    rescaling (pathological bandwidths); use {!Mva} in that regime. *)

val solve_incremental : previous:t -> class_index:int -> Model.t -> t
(** [solve_incremental ~previous ~class_index model] re-solves [model],
    which must differ from [previous]'s model in at most the class
    [class_index], by rebuilding only that class's factor and refolding
    from it; prefix products before the changed class are shared with
    [previous].  The result is bit-identical to [solve model] — same
    measures, same [log_g] on every lattice point, same
    {!rescale_count}.  The saving is largest when the changed class is
    last (one combine instead of [R]), the layout the sweep engine
    arranges for single-class load sweeps.
    @raise Invalid_argument if the switch dimensions or class count
    differ, [class_index] is out of range, or any {e other} class
    differs from [previous]'s model (exact, bit-level comparison).
    @raise Failure as {!solve}. *)

val model : t -> Model.t

val measures : t -> Measures.t
(** Measures from Step 3 of Algorithm 1 (with the corrected [E_r]
    prefactor — see DESIGN.md). *)

val log_g : t -> inputs:int -> outputs:int -> float
(** [log G(n1, n2)], evaluated from the factored form in [O(cap)].
    Entries near the corner — the ones measures use — are always exact.
    @raise Invalid_argument outside the lattice.
    @raise Failure if dynamic rescaling flushed the requested entry to
    zero (it lies hundreds of orders of magnitude below the corner); the
    sentinel [neg_infinity] is never returned, so downstream arithmetic
    cannot be corrupted silently. *)

val log_normalization : t -> float
(** [log G(N1, N2)]. *)

val rescale_count : t -> int
(** Number of adaptive rescale chunks folded into [H] across all partial
    products (0 for all workloads in the paper). *)
