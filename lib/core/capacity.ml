let blocking ?algorithm model ~class_index =
  let measures = Solver.solve ?algorithm model in
  measures.Measures.per_class.(class_index).Measures.blocking

let load_multiplier_for_blocking ?algorithm model ~class_index ~target =
  if not (target > 0. && target < 1.) then
    invalid_arg "Capacity.load_multiplier_for_blocking: target outside (0,1)";
  let blocking_at c =
    let scaled =
      Model.map_class model class_index (fun t -> Traffic.scale_load t c)
    in
    blocking ?algorithm scaled ~class_index
  in
  Crossbar_numerics.Roots.invert_monotone ~tolerance:1e-10 ~f:blocking_at
    ~target ~lo:0. ()

let smallest_square_switch ?algorithm ~classes ~target ~max_size () =
  if max_size < 1 then invalid_arg "Capacity.smallest_square_switch: max_size";
  let fits n =
    let model = Model.square ~size:n ~classes:(classes n) in
    let measures = Solver.solve ?algorithm model in
    Array.for_all
      (fun c -> c.Measures.blocking <= target)
      measures.Measures.per_class
  in
  let rec search n = if n > max_size then None else if fits n then Some n else search (n + 1) in
  search 1
