(** Deploy-time domain-count resolution.

    One reading of the [CROSSBAR_DOMAINS] override serves every layer
    that fans work out across OCaml 5 domains: [Engine.Pool] (sweep
    points, batches, replications) and the banded combine kernel inside
    {!Convolution} (row bands of a single large combine). *)

val recommended : unit -> int
(** [Domain.recommended_domain_count ()] — the runtime's estimate of
    usefully parallel domains on this machine — overridable with the
    [CROSSBAR_DOMAINS] environment variable.
    @raise Invalid_argument if [CROSSBAR_DOMAINS] is set but is not an
    integer [>= 1]: a daemon misconfigured at deploy time must fail
    loudly, not run at a silently substituted width. *)
