module Special = Crossbar_numerics.Special
module Logspace = Crossbar_numerics.Logspace

type t = {
  model : Model.t;
  f1 : float array array;
  f2 : float array array;
  measures : Measures.t;
}

(* L_{1r}(p): the product of F-steps along the lattice path from p - a_r I
   to p, excluding the final F_1(p) step — i.e. Q(n1-a, n2-a)/Q(n1-1, n2).
   Zero when the class does not fit at p. *)
let path_excluding_last ~f1 ~f2 ~a n1 n2 =
  if n1 < a || n2 < a then 0.
  else begin
    let product = ref 1. in
    for m = 1 to a do
      product := !product *. f2.(n1 - a).(n2 - a + m)
    done;
    for m = 1 to a - 1 do
      product := !product *. f1.(n1 - a + m).(n2)
    done;
    !product
  end

(* H_r(p) = Q(p - a_r I)/Q(p): full path product. *)
let h_ratio ~f1 ~f2 ~a n1 n2 =
  if n1 < a || n2 < a then 0.
  else begin
    let product = ref 1. in
    for m = 1 to a do
      product := !product *. f1.(n1 - a + m).(n2 - a)
    done;
    for m = 1 to a do
      product := !product *. f2.(n1).(n2 - a + m)
    done;
    !product
  end

type d_recurrence = Corrected | As_printed

let solve ?(d_recurrence = Corrected) model =
  let n1_max = Model.inputs model and n2_max = Model.outputs model in
  let num_classes = Model.num_classes model in
  let f1 = Array.make_matrix (n1_max + 1) (n2_max + 1) 0. in
  let f2 = Array.make_matrix (n1_max + 1) (n2_max + 1) 0. in
  let bursty =
    List.filter
      (fun r -> not (Model.is_poisson model r))
      (List.init num_classes Fun.id)
  in
  (* D_r(p) = sum_m (beta_r/mu_r)^m Q(p - m a_r I)/Q(p); base value 1.
     In [As_printed] mode we instead run the recurrence exactly as typeset
     in the paper's equation (19), D_r(p) = H_r(p) + (beta/mu) D_r(p-aI)
     with D_r(0) = 0 and the Step-1 special case at the origin — this is
     dimensionally inconsistent (see DESIGN.md) but reproduces the paper's
     printed Table 2, pinning down the provenance of its numbers. *)
  let d_default = match d_recurrence with Corrected -> 1. | As_printed -> 0. in
  let d =
    List.map
      (fun r -> (r, Array.make_matrix (n1_max + 1) (n2_max + 1) d_default))
      bursty
  in
  let d_at r n1 n2 =
    match d_recurrence with
    | Corrected -> if n1 < 0 || n2 < 0 then 1. else (List.assoc r d).(n1).(n2)
    | As_printed ->
        (* The paper's Step 1 initialises F_i(1) with the full class sum,
           which is equivalent to D_r(0,0) = 1 at that one point. *)
        if n1 = 0 && n2 = 0 then 1.
        else if n1 < 0 || n2 < 0 then 0.
        else (List.assoc r d).(n1).(n2)
  in
  for n1 = 0 to n1_max do
    for n2 = 0 to n2_max do
      if n1 = 0 && n2 = 0 then ()
      else if n1 = 0 then f2.(0).(n2) <- float_of_int n2
      else if n2 = 0 then f1.(n1).(0) <- float_of_int n1
      else begin
        (* Equation (18) solved for F_1 at the new point. *)
        let denominator = ref 1. in
        for r = 0 to num_classes - 1 do
          let a = Model.bandwidth model r in
          let rho = Model.rho model r in
          let l = path_excluding_last ~f1 ~f2 ~a n1 n2 in
          if l > 0. then begin
            let d_term =
              if Model.is_poisson model r then 1.
              else d_at r (n1 - a) (n2 - a)
            in
            denominator :=
              !denominator +. (float_of_int a *. rho *. l *. d_term)
          end
        done;
        f1.(n1).(n2) <- float_of_int n1 /. !denominator;
        (* Exact cross-ratio propagation (see interface). *)
        f2.(n1).(n2) <- f1.(n1).(n2) *. f2.(n1 - 1).(n2) /. f1.(n1).(n2 - 1)
      end;
      (* Update the D lattices once both ratios at p are known. *)
      List.iter
        (fun (r, d_lattice) ->
          let a = Model.bandwidth model r in
          let h = h_ratio ~f1 ~f2 ~a n1 n2 in
          if h > 0. then
            d_lattice.(n1).(n2) <-
              (match d_recurrence with
              | Corrected ->
                  1.
                  +. Model.beta_over_mu model r *. h
                     *. d_at r (n1 - a) (n2 - a)
              | As_printed ->
                  h
                  +. Model.beta_over_mu model r
                     *. (if n1 - a < 0 || n2 - a < 0 then 0.
                         else (List.assoc r d).(n1 - a).(n2 - a))))
        d
    done
  done;
  let non_blocking =
    Array.init num_classes (fun r ->
        let a = Model.bandwidth model r in
        h_ratio ~f1 ~f2 ~a n1_max n2_max
        /. (Special.permutations n1_max a *. Special.permutations n2_max a))
  in
  let concurrency =
    Array.init num_classes (fun r ->
        let a = Model.bandwidth model r in
        let rho = Model.rho model r in
        let b_over_mu = Model.beta_over_mu model r in
        let depth = min n1_max n2_max / a in
        (* E_r(p) = H_r(p) (rho_r + (beta_r/mu_r) E_r(p - a_r I)) up the
           class diagonal. *)
        let e = ref 0. in
        for m = depth downto 0 do
          let p1 = n1_max - (m * a) and p2 = n2_max - (m * a) in
          let h = h_ratio ~f1 ~f2 ~a p1 p2 in
          e := h *. (rho +. (b_over_mu *. !e))
        done;
        !e)
  in
  let measures = Measures.of_concurrencies ~model ~non_blocking ~concurrency in
  { model; f1; f2; measures }

let model t = t.model
let measures t = t.measures

let check_bounds t ~inputs ~outputs =
  if
    inputs < 0 || outputs < 0
    || inputs > Model.inputs t.model
    || outputs > Model.outputs t.model
  then invalid_arg "Mva: outside lattice"

let f1 t ~inputs ~outputs =
  check_bounds t ~inputs ~outputs;
  t.f1.(inputs).(outputs)

let f2 t ~inputs ~outputs =
  check_bounds t ~inputs ~outputs;
  t.f2.(inputs).(outputs)

(* log Q(N) = - sum of log F steps along a path from the origin; then
   log G = log Q + log N1! + log N2!. *)
let log_normalization t =
  let n1_max = Model.inputs t.model and n2_max = Model.outputs t.model in
  let log_q = ref 0. in
  for n1 = 1 to n1_max do
    log_q := !log_q -. Logspace.log_checked t.f1.(n1).(0)
  done;
  for n2 = 1 to n2_max do
    log_q := !log_q -. Logspace.log_checked t.f2.(n1_max).(n2)
  done;
  !log_q +. Special.log_factorial n1_max +. Special.log_factorial n2_max
