(** Admission control on top of the crossbar model.

    Figure 4 of the paper shows wideband ([a_r > 1]) traffic suffering
    disproportionate blocking; the classical remedy in circuit switching
    is {e trunk reservation}: refuse narrowband connections once the load
    crosses a threshold, keeping headroom for wide ones.  Controlled
    chains lose the product form, so this module solves the {e exact}
    guarded Markov chain (GTH on the reachable state set) — feasible for
    the small-to-moderate switches where admission policy design happens —
    and the simulator applies the same policies at any size. *)

type t
(** An admission policy: a predicate on (class, current load). *)

val unrestricted : t
(** Admit whenever the ports are available — the paper's model. *)

val trunk_reservation : thresholds:int array -> t
(** [trunk_reservation ~thresholds] admits a class-[r] connection only if
    the load {e after} acceptance stays within [thresholds.(r)] busy
    ports.  Setting a class's threshold to the switch capacity leaves it
    unrestricted; lower thresholds reserve the remaining ports for the
    other classes.
    @raise Invalid_argument on negative thresholds. *)

val custom : describe:string -> (class_index:int -> load:int -> bandwidth:int -> bool) -> t
(** Arbitrary predicate: [load] is the current number of busy input
    (= output) ports, [bandwidth] the requesting class's [a_r]. *)

val admits : t -> class_index:int -> load:int -> bandwidth:int -> bool
val describe : t -> string

val chain : Model.t -> policy:t -> Crossbar_markov.Ctmc.t * int array
(** The guarded chain restricted to the states reachable from empty,
    together with the map from its state indices to the indices of
    [Model.state_space].
    @raise Invalid_argument if [thresholds] length mismatches the model.
    @raise Failure if the state space is too large for an exact solve. *)

val solve : Model.t -> policy:t -> Measures.t
(** Exact measures of the controlled switch.  [non_blocking] is the
    stationary probability that a class-[r] request is {e admitted and}
    finds its ports free (for Poisson classes, by PASTA, exactly the
    per-request acceptance probability). *)
