(* Deploy-time domain-count resolution, shared by Engine.Pool (sweep
   fan-out) and the banded combine kernel in Convolution (intra-combine
   fan-out), so both honour the same CROSSBAR_DOMAINS override. *)

let recommended () =
  match Sys.getenv_opt "CROSSBAR_DOMAINS" with
  | None -> Domain.recommended_domain_count ()
  | Some text -> (
      (* A deploy-time override that does not parse, or asks for a
         nonsensical width, is a misconfiguration: fail loudly rather
         than silently running at some other width. *)
      match int_of_string_opt (String.trim text) with
      | Some d when d >= 1 -> d
      | Some d ->
          invalid_arg
            (Printf.sprintf
               "Domains.recommended: CROSSBAR_DOMAINS=%d must be >= 1" d)
      | None ->
          invalid_arg
            (Printf.sprintf
               "Domains.recommended: CROSSBAR_DOMAINS=%S is not an integer"
               text))
