module Special = Crossbar_numerics.Special

let total ?algorithm model ~weights =
  Measures.revenue (Solver.solve ?algorithm model) ~weights

let reduced_model model ~ports =
  let inputs = Model.inputs model - ports
  and outputs = Model.outputs model - ports in
  if inputs < 1 || outputs < 1 then
    invalid_arg "Revenue.reduced_model: reduction empties the switch";
  let rescale (c : Traffic.t) =
    let ratio =
      Special.binomial outputs c.Traffic.bandwidth
      /. Special.binomial (Model.outputs model) c.Traffic.bandwidth
    in
    Traffic.with_beta
      (Traffic.with_alpha c (c.Traffic.alpha *. ratio))
      (c.Traffic.beta *. ratio)
  in
  Model.create ~inputs ~outputs
    ~classes:(List.map rescale (Array.to_list (Model.classes model)))

let shadow_cost ?algorithm model ~weights ~class_index =
  let a = Model.bandwidth model class_index in
  let here = total ?algorithm model ~weights in
  if Model.inputs model - a < 1 || Model.outputs model - a < 1 then here
  else here -. total ?algorithm (reduced_model model ~ports:a) ~weights

(* All R shadow costs out of a single solve: [reduced_model] preserves
   the per-pair parameters, so the reduced switch's normalisations are
   deeper entries of the SAME solved diagonal and
   W(N - dI) = sum_r w_r E_r evaluated at reservation depth d
   (Convolution.concurrencies_at_depth) — no re-solve per class. *)
let solved_for ?solved model =
  match solved with
  | None -> Convolution.solve model
  | Some t ->
      (match Model.class_delta (Convolution.model t) model with
      | Some [] -> t
      | Some _ | None ->
          invalid_arg
            "Revenue.shadow_costs: ~solved was produced from a different \
             model")

let shadow_costs ?solved model ~weights =
  let num = Model.num_classes model in
  if Array.length weights <> num then
    invalid_arg "Revenue.shadow_costs: weight count mismatch";
  let t = solved_for ?solved model in
  let value_at depth =
    let e = Convolution.concurrencies_at_depth t ~depth in
    let w = ref 0. in
    Array.iteri (fun r er -> w := !w +. (weights.(r) *. er)) e;
    !w
  in
  let w0 = value_at 0 in
  let memo = Hashtbl.create 8 in
  Array.init num (fun r ->
      let a = Model.bandwidth model r in
      if Model.inputs model - a < 1 || Model.outputs model - a < 1 then w0
      else
        let reduced =
          match Hashtbl.find_opt memo a with
          | Some v -> v
          | None ->
              let v = value_at a in
              Hashtbl.add memo a v;
              v
        in
        w0 -. reduced)

let gradient ?solved model ~weights =
  let t = solved_for ?solved model in
  let deltas = shadow_costs ~solved:t model ~weights in
  let measures = Convolution.measures t in
  Array.mapi
    (fun r (c : Measures.per_class) ->
      if not (Model.is_poisson model r) then None
      else
        let a = Model.bandwidth model r in
        Some
          (Special.permutations (Model.inputs model) a
          *. Special.permutations (Model.outputs model) a
          *. c.Measures.non_blocking
          *. (weights.(r) -. deltas.(r))))
    measures.Measures.per_class

let gradient_rho ?algorithm model ~weights ~class_index =
  if not (Model.is_poisson model class_index) then
    invalid_arg "Revenue.gradient_rho: closed form requires a Poisson class";
  let a = Model.bandwidth model class_index in
  let measures = Solver.solve ?algorithm model in
  let non_blocking = measures.Measures.per_class.(class_index).Measures.non_blocking in
  let delta = shadow_cost ?algorithm model ~weights ~class_index in
  Special.permutations (Model.inputs model) a
  *. Special.permutations (Model.outputs model) a
  *. non_blocking
  *. (weights.(class_index) -. delta)

(* Rebuild the model with the per-pair rho_r of one class set to [value]
   (holding mu and therefore alpha's scaling fixed). *)
let with_per_pair_rho model ~class_index value =
  let a = Model.bandwidth model class_index in
  let mu = Model.service_rate model class_index in
  let aggregate = value *. mu *. Special.binomial (Model.outputs model) a in
  Model.map_class model class_index (fun c -> Traffic.with_alpha c aggregate)

let with_per_pair_beta_over_mu model ~class_index value =
  let a = Model.bandwidth model class_index in
  let mu = Model.service_rate model class_index in
  let aggregate = value *. mu *. Special.binomial (Model.outputs model) a in
  Model.map_class model class_index (fun c -> Traffic.with_beta c aggregate)

(* The loads perturbed here are minuscule (rho ~ 1e-5), so the step must be
   relative to the coordinate, not to 1. *)
let relative_step x = 1e-4 *. Float.max (Float.abs x) 1e-9

let gradient_rho_numeric ?algorithm ?step model ~weights ~class_index =
  let rho = Model.rho model class_index in
  let step = match step with Some s -> s | None -> relative_step rho in
  let w value =
    total ?algorithm (with_per_pair_rho model ~class_index value) ~weights
  in
  Crossbar_numerics.Derivative.central ~step ~f:w rho

let gradient_beta_numeric ?algorithm ?step model ~weights ~class_index =
  if Model.is_poisson model class_index then
    invalid_arg "Revenue.gradient_beta_numeric: class is Poisson";
  let coordinate = Model.beta_over_mu model class_index in
  let step =
    match step with Some s -> s | None -> relative_step coordinate
  in
  let w value =
    total ?algorithm
      (with_per_pair_beta_over_mu model ~class_index value)
      ~weights
  in
  Crossbar_numerics.Derivative.forward ~step ~f:w coordinate
