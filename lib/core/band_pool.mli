(** Persistent band-worker pool for intra-combine row banding.

    A lazily-started, process-wide set of worker domains parked on
    per-worker mailboxes (mutex + condvar hand-off, atomic completion
    flag).  Dispatching a band costs one lock/signal per worker —
    roughly an order of magnitude less than the [Domain.spawn]
    round-trip the banded combine kernel paid before — which is what
    lets {!Convolution}'s banding threshold sit near the point where
    the tiled kernel stops scaling instead of far above it.

    The pool is shared by the whole process and grows on demand to the
    largest [bands - 1] ever requested.  Dispatch is serialised: a
    {!run} that finds another fan-out in flight (nested banding, or a
    concurrent domain) executes its bands inline in band order, which
    is observationally identical because band functions must write
    disjoint state. *)

val run : bands:int -> (int -> unit) -> unit
(** [run ~bands f] evaluates [f 0 .. f (bands - 1)], band 0 on the
    calling domain and the rest on pool workers, and returns when every
    band has finished.  [f] must confine its writes per band (bands
    run concurrently and in any order).

    If any band raises, every remaining band is still awaited before
    the exception is re-raised — the caller's own exception first,
    else the lowest-banded worker's.  The pool survives failures and
    serves subsequent runs normally.

    [bands = 1] runs [f 0] inline without touching the pool.  Raises
    [Invalid_argument] if [bands < 1]. *)

val size : unit -> int
(** Number of worker domains currently parked in the pool (0 until the
    first multi-band {!run}, then the high-water mark of [bands - 1]
    requested so far, until {!shutdown}). *)

val shutdown : unit -> unit
(** Quit and join every pool worker.  Subsequent {!run}s re-warm the
    pool transparently; idle processes (or tests asserting domain
    hygiene) can call this to drop the parked domains. *)
