(* Persistent band-worker pool.

   [combine_banded] used to pay a full [Domain.spawn] round-trip
   (~0.8 ms best case, several ms under load on this class of machine)
   for every banded combine, which forced the banding threshold far
   above where the tiled kernel stops scaling.  This module keeps a
   lazily-started, process-wide set of worker domains parked on
   per-worker mailboxes so a band fan-out costs one mutex/condvar
   hand-off per worker (~0.1 ms round-trip cold, microseconds once the
   completion spin window hides the wake latency) instead of a domain
   spawn.

   Dispatch protocol, per worker:
   - the dispatcher (holding the global [dispatch_lock]) writes the job
     closure and band index into the worker's mailbox under the
     mailbox lock, flips its state to [Armed] and signals;
   - the worker wakes, flips the state back to [Idle], runs the job
     outside the lock, records any exception, publishes completion
     through the [done_] atomic, and signals in case the dispatcher
     already gave up spinning and parked on the condvar;
   - the dispatcher runs band 0 itself, then collects each worker by
     spinning briefly on [done_] (bands are work-balanced, so the skew
     is small) before falling back to the condvar.

   Failure semantics match [Engine.Pool.run]: every band is awaited
   before anything is raised (workers may still be writing into the
   caller's buffers), then the caller's own exception wins, else the
   lowest-banded worker failure is re-raised.

   Nested or concurrent dispatch (a second domain — or a band job
   itself — calling [run] while a fan-out is in flight) falls back to
   running the bands inline in band order, which is bit-identical
   because bands write disjoint rows. *)

(* Sentinel stored in [failed] between jobs so the field never needs an
   option box on the hot dispatch path. *)
exception No_failure

type state = Idle | Armed | Quit

type mailbox = {
  lock : Mutex.t;
  signal : Condition.t;
  mutable state : state; (* protected by [lock] *)
  done_ : bool Atomic.t; (* completion flag for the last armed job *)
  mutable job : int -> unit; (* written under [lock] before [Armed] *)
  mutable band : int; (* ditto *)
  mutable failed : exn; (* written by the worker before [done_] *)
}

let ignore_band (_ : int) = ()

(* Serialises dispatch and pool growth/shutdown.  Held for the whole
   fan-out so a concurrent [run] sees [try_lock] fail and degrades to
   the inline sequential path instead of racing for mailboxes. *)
let dispatch_lock = Mutex.create ()

let workers : (mailbox * unit Domain.t) array Atomic.t = Atomic.make [||]

let rec worker_wait mb =
  match mb.state with
  | Armed ->
      mb.state <- Idle;
      false
  | Quit -> true
  | Idle ->
      Condition.wait mb.signal mb.lock;
      worker_wait mb

let rec worker_loop mb =
  Mutex.lock mb.lock;
  let quit = worker_wait mb in
  Mutex.unlock mb.lock;
  if not quit then begin
    (match mb.job mb.band with () -> () | exception e -> mb.failed <- e);
    (* Drop the closure so the operands it captures are not kept live
       until the next dispatch. *)
    mb.job <- ignore_band;
    Atomic.set mb.done_ true;
    (* Wake the dispatcher if it stopped spinning and parked. *)
    Mutex.lock mb.lock;
    Condition.signal mb.signal;
    Mutex.unlock mb.lock;
    worker_loop mb
  end

let spawn_worker () =
  let mb =
    (* lint: alloc=mb -- one mailbox per worker, once per high-water mark *)
    {
      lock = Mutex.create ();
      signal = Condition.create ();
      state = Idle;
      done_ = Atomic.make true;
      job = ignore_band;
      band = 0;
      failed = No_failure;
    }
  in
  (* The worker and the dispatcher hand the mutable mailbox back and
     forth under its own lock (job/band/state) and the [done_] atomic
     (completion, failure visibility); no field is ever written
     concurrently.  The pair and worker thunk below are built once per
     pool worker, never per dispatch. *)
  (* lint: guarded=mb alloc=tuple,closure -- hand-off under mb.lock *)
  (mb, Domain.spawn (fun () -> worker_loop mb))

(* Grow the pool to at least [wanted] workers.  Caller holds
   [dispatch_lock]. *)
let ensure wanted =
  let current = Atomic.get workers in
  let have = Array.length current in
  if have >= wanted then current
  else begin
    let grown =
      (* lint: alloc=grown,closure -- pool growth, once per high-water mark *)
      Array.init wanted (fun i ->
          if i < have then current.(i) else spawn_worker ())
    in
    Atomic.set workers grown;
    grown
  end

let arm mb f band =
  mb.failed <- No_failure;
  Atomic.set mb.done_ false;
  Mutex.lock mb.lock;
  mb.job <- f;
  mb.band <- band;
  mb.state <- Armed;
  Condition.signal mb.signal;
  Mutex.unlock mb.lock

(* Bands are triangular-work-balanced, so the skew between the caller's
   band 0 and a worker band is a small fraction of the band itself:
   a short spin almost always observes completion without a syscall.
   Oversubscribed runs (more bands than cores) stop burning the core
   after [spin_budget] relaxations and park on the condvar instead. *)
let spin_budget = 10_000

(* Top-level (not a closure over the mailbox) so awaiting allocates
   nothing on the dispatch path. *)
let rec await_spin mb n =
  if Atomic.get mb.done_ then ()
  else if n > 0 then begin
    Domain.cpu_relax ();
    await_spin mb (n - 1)
  end
  else begin
    Mutex.lock mb.lock;
    while not (Atomic.get mb.done_) do
      Condition.wait mb.signal mb.lock
    done;
    Mutex.unlock mb.lock
  end

let await mb = await_spin mb spin_budget

(* Await workers 1..bands-1 in band order, keeping the first failure
   (threaded as an argument: no ref cell on the dispatch path). *)
let rec collect ws band bands worst =
  if band >= bands then worst
  else begin
    let mb, _ = ws.(band - 1) in
    await mb;
    let worst = if worst == No_failure then mb.failed else worst in
    collect ws (band + 1) bands worst
  end

let run_inline bands f =
  for i = 0 to bands - 1 do
    f i
  done

let run ~bands f =
  if bands < 1 then invalid_arg "Band_pool.run: bands must be >= 1"
  else if bands = 1 then f 0
  else if not (Mutex.try_lock dispatch_lock) then
    (* A fan-out is already in flight (nested banding, or another
       domain's combine): run the bands inline, in band order —
       bit-identical, since bands write disjoint rows. *)
    run_inline bands f
  else begin
    match ensure (bands - 1) with
    | exception e ->
        Mutex.unlock dispatch_lock;
        raise e
    | ws ->
        for band = 1 to bands - 1 do
          let mb, _ = ws.(band - 1) in
          arm mb f band
        done;
        let caller_failed =
          match f 0 with () -> No_failure | exception e -> e
        in
        let worker_failed = collect ws 1 bands No_failure in
        Mutex.unlock dispatch_lock;
        if caller_failed != No_failure then raise caller_failed
        else if worker_failed != No_failure then raise worker_failed
  end

let size () = Array.length (Atomic.get workers)

let shutdown () =
  Mutex.lock dispatch_lock;
  let ws = Atomic.get workers in
  Atomic.set workers [||];
  (* Quit each mailbox before unlocking dispatch: no run can be in
     flight (we hold the lock), so every worker is idle or about to
     re-check its state. *)
  Array.iter
    (fun (mb, _) ->
      Mutex.lock mb.lock;
      mb.state <- Quit;
      Condition.signal mb.signal;
      Mutex.unlock mb.lock)
    ws;
  Mutex.unlock dispatch_lock;
  Array.iter (fun (_, d) -> Domain.join d) ws
