(** Algorithm 2: the mean-value recurrence on normalisation-constant
    ratios (paper Section 5.1).

    Works directly with [F_i(n) = Q(n - 1_i)/Q(n)], which stay within a
    factor of [max(N1, N2)] of unity, so no scaling is ever needed — the
    numerical-stability advantage the paper claims for this algorithm.

    The printed Algorithm 2 boundary conditions are garbled (see
    DESIGN.md); this implementation re-derives the lattice propagation
    from equations (12)–(20):

    - solve for [F_i] at a new point from equation (18) written as
      [n_i = F_i(p) (1 + sum_r a_r rho_r L_ir(p) D_r(p - a_r I))] with the
      path products [L_ir] taken over already-computed [F] values;
    - propagate the cross ratio by the exact identity
      [F_2(p) = F_1(p) F_2(p - 1_1) / F_1(p - 1_2)];
    - accumulate [D_r(p) = 1 + (beta_r/mu_r) H_r(p) D_r(p - a_r I)]
      (the paper's equation (19) corrected — see DESIGN.md).

    Complexity [O(N1 N2 (R1 + R2) max_r a_r)] time and
    [O(N1 N2 (2 + R2))] space — the space/robustness trade-off the paper
    describes. *)

type t
(** A solved ratio lattice. *)

type d_recurrence =
  | Corrected
      (** [D_r(p) = 1 + (beta_r/mu_r) H_r(p) D_r(p - a_r I)] — the
          recurrence that follows from the definition (17); matches brute
          force and Algorithm 1 exactly. *)
  | As_printed
      (** The recurrence exactly as typeset in the paper's equation (19),
          [D_r(p) = H_r(p) + (beta_r/mu_r) D_r(p - a_r I)] with
          [D_r(0) = 0].  [H_r] is a Q-ratio of magnitude ~[N1 N2], so this
          is dimensionally inconsistent and diverges from the exact values
          rapidly — kept as an executable demonstration that equation (19)
          as printed cannot be what the authors ran (see EXPERIMENTS.md
          for the forensic analysis of Table 2). *)

val solve : ?d_recurrence:d_recurrence -> Model.t -> t
(** Default [d_recurrence] is [Corrected]. *)

val model : t -> Model.t

val measures : t -> Measures.t
(** Measures from Step 3 of Algorithm 2. *)

val f1 : t -> inputs:int -> outputs:int -> float
(** The ratio [F_1(n1, n2) = Q(n1 - 1, n2)/Q(n1, n2)] (0 when [n1 = 0]).
    @raise Invalid_argument outside the lattice. *)

val f2 : t -> inputs:int -> outputs:int -> float
(** The ratio [F_2(n1, n2) = Q(n1, n2 - 1)/Q(n1, n2)] (0 when [n2 = 0]). *)

val log_normalization : t -> float
(** [log G(N1, N2)] recovered by summing ratio logarithms along a lattice
    path from the origin — used to cross-check against {!Convolution} and
    {!Brute}. *)
